package expr

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumWord // starts with a digit; may contain digits, '/', 'W', 'Q'
	tokString  // quoted value literal
	tokPunct   // one of [ ] { } ( ) , .
	tokOp      // < <= = != >= >
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "")
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case c == '"' || c == '\'':
			if err := l.lexString(c); err != nil {
				return nil, err
			}
		case isDigit(c):
			l.lexNumWord()
		case isIdentStart(c):
			l.lexIdent()
		case strings.IndexByte("[]{}(),.", c) >= 0:
			l.emit(tokPunct, string(c))
			l.pos++
		case c == '<':
			if l.peek(1) == '=' {
				l.emit(tokOp, "<=")
				l.pos += 2
			} else if l.peek(1) == '>' {
				l.emit(tokOp, "!=")
				l.pos += 2
			} else {
				l.emit(tokOp, "<")
				l.pos++
			}
		case c == '>':
			if l.peek(1) == '=' {
				l.emit(tokOp, ">=")
				l.pos += 2
			} else {
				l.emit(tokOp, ">")
				l.pos++
			}
		case c == '=':
			if l.peek(1) == '=' {
				l.pos++ // tolerate "=="
			}
			l.emit(tokOp, "=")
			l.pos++
		case c == '!':
			if l.peek(1) != '=' {
				return nil, fmt.Errorf("expr: lex: stray '!' at offset %d", l.pos)
			}
			l.emit(tokOp, "!=")
			l.pos += 2
		case c == '+':
			l.emit(tokOp, "+")
			l.pos++
		case c == '-':
			l.emit(tokOp, "-")
			l.pos++
		default:
			return nil, fmt.Errorf("expr: lex: unexpected character %q at offset %d", c, l.pos)
		}
	}
}

func (l *lexer) emit(k tokKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: l.pos})
}

func (l *lexer) peek(ahead int) byte {
	if l.pos+ahead >= len(l.src) {
		return 0
	}
	return l.src[l.pos+ahead]
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case ' ', '\t', '\n', '\r':
			l.pos++
		default:
			return
		}
	}
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }

func (l *lexer) lexString(quote byte) error {
	start := l.pos
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			l.pos++
			return nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			c = l.src[l.pos]
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("expr: lex: unterminated string at offset %d", start)
}

// lexNumWord scans a token beginning with a digit: a plain number ("6"),
// or a time literal ("1999", "1999/12", "1999/12/4", "1999W48", "1999Q4").
func (l *lexer) lexNumWord() {
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isDigit(c) || c == '/' {
			l.pos++
			continue
		}
		// W and Q join week/quarter literals only when followed by a digit.
		if (c == 'W' || c == 'Q') && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
			l.pos++
			continue
		}
		break
	}
	l.toks = append(l.toks, token{kind: tokNumWord, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}
