package expr

import "testing"

// FuzzParsePred checks the parser never panics and that accepted inputs
// survive a print/re-parse round trip with stable rendering. Runs its
// seed corpus under plain `go test`; use `go test -fuzz=FuzzParsePred`
// for continuous fuzzing.
func FuzzParsePred(f *testing.F) {
	seeds := []string{
		`true`,
		`false`,
		`URL.domain_grp = ".com" and NOW - 12 months < Time.month and Time.month <= NOW - 6 months`,
		`Time.quarter in {1999Q4, 2000Q1}`,
		`URL.domain not in {"a.com", "b.com"}`,
		`not (Time.year = 1999) or Time.week <= 1999W48`,
		`Time.month > NOW - 12 months + 1 day`,
		`Time.day = 1999/12/4`,
		`((true))`,
		`Time.month <= 1999/12 and (URL.url != "x" or false)`,
		// Hostile shapes.
		`Time.month <`,
		`"unclosed`,
		`1999Q5 <= Time.quarter`,
		`a.b = c.d`,
		`not not not true`,
		`Time.month in {}`,
		`NOW < NOW`,
		`Time.month <= NOW - 99999999999999999999 months`,
		"Time.month \x00 1999",
		`Time.month = 1999/2/30`,
		// Year overflow: must be rejected, not rendered as a negative year.
		`A.A=100000000000000000/1`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParsePred(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		rendered := p.String()
		q, err := ParsePred(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rendering %q fails to re-parse: %v", src, rendered, err)
		}
		if q.String() != rendered {
			t.Fatalf("unstable rendering: %q -> %q", rendered, q.String())
		}
		// DNF must also round-trip through the predicate tree.
		d, err := ToDNF(p)
		if err != nil {
			t.Fatalf("accepted %q but ToDNF fails: %v", src, err)
		}
		_ = d.Pred().String()
	})
}

// FuzzParseAction does the same for full action specifications,
// including the deletion form.
func FuzzParseAction(f *testing.F) {
	seeds := []string{
		`aggregate [Time.month, URL.domain]`,
		`aggregate [Time.month, URL.domain] where true`,
		`aggregate [Time.quarter, URL.domain] where URL.domain_grp = ".com" and Time.quarter <= NOW - 4 quarters`,
		`delete where Time.year <= NOW - 5 years`,
		`delete`,
		`aggregate []`,
		`aggregate [Time.month`,
		`delete where`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		a, err := ParseAction(src)
		if err != nil {
			return
		}
		rendered := a.String()
		b, err := ParseAction(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rendering %q fails to re-parse: %v", src, rendered, err)
		}
		if b.String() != rendered {
			t.Fatalf("unstable rendering: %q -> %q", rendered, b.String())
		}
	})
}
