package expr

import "testing"

const benchSrc = `aggregate [Time.month, URL.domain] where URL.domain_grp = ".com" and NOW - 12 months < Time.month and Time.month <= NOW - 6 months`

func BenchmarkParseAction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseAction(benchSrc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkToDNF(b *testing.B) {
	p, err := ParsePred(`not (URL.a = "x" or not (URL.b = "y" and URL.c = "z")) and (URL.d = "w" or URL.e = "v")`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ToDNF(p); err != nil {
			b.Fatal(err)
		}
	}
}
