package expr

import "fmt"

// Disjunct is one conjunct list of a DNF predicate: the conjunction of
// its atoms (each a TimeCmp, TimeIn, ValueCmp or ValueIn; Bool constants
// are simplified away).
type Disjunct []Pred

// DNF is a predicate in disjunctive normal form: the disjunction of its
// disjuncts. An empty DNF is the constant false; a DNF containing an
// empty disjunct is (after simplification only occurs alone) the
// constant true.
type DNF struct {
	Disjuncts []Disjunct
}

// IsFalse reports whether the DNF is the constant false.
func (d DNF) IsFalse() bool { return len(d.Disjuncts) == 0 }

// IsTrue reports whether the DNF is the constant true.
func (d DNF) IsTrue() bool {
	return len(d.Disjuncts) == 1 && len(d.Disjuncts[0]) == 0
}

// Pred converts the DNF back to a predicate tree.
func (d DNF) Pred() Pred {
	if d.IsFalse() {
		return Bool{Value: false}
	}
	ors := make([]Pred, 0, len(d.Disjuncts))
	for _, dj := range d.Disjuncts {
		switch len(dj) {
		case 0:
			return Bool{Value: true}
		case 1:
			ors = append(ors, dj[0])
		default:
			ors = append(ors, And{Ps: append([]Pred(nil), dj...)})
		}
	}
	if len(ors) == 1 {
		return ors[0]
	}
	return Or{Ps: ors}
}

// String renders the DNF in concrete syntax.
func (d DNF) String() string { return d.Pred().String() }

// ToDNF normalizes a predicate to disjunctive normal form, as the paper
// requires of selection predicates and as the pre-processing step of
// Section 5.3 performs before the Growing check. Negations are pushed
// onto atoms by complementing operators; double negations cancel.
//
// The transformation can grow exponentially in the nesting of and/or;
// reduction specifications are small, so this is acceptable (and the
// paper makes the same assumption for its |A|^2 NonCrossing check).
func ToDNF(p Pred) (DNF, error) {
	return toDNF(p, false)
}

func toDNF(p Pred, negate bool) (DNF, error) {
	switch q := p.(type) {
	case Bool:
		v := q.Value != negate
		if v {
			return DNF{Disjuncts: []Disjunct{{}}}, nil
		}
		return DNF{}, nil
	case Not:
		return toDNF(q.P, !negate)
	case And:
		if negate {
			// ¬(a ∧ b) = ¬a ∨ ¬b
			return orDNF(q.Ps, true)
		}
		return andDNF(q.Ps, false)
	case Or:
		if negate {
			// ¬(a ∨ b) = ¬a ∧ ¬b
			return andDNF(q.Ps, true)
		}
		return orDNF(q.Ps, false)
	case TimeCmp:
		if negate {
			q.Op = q.Op.Negate()
		}
		return DNF{Disjuncts: []Disjunct{{q}}}, nil
	case TimeIn:
		if negate {
			q.Negate = !q.Negate
		}
		return DNF{Disjuncts: []Disjunct{{q}}}, nil
	case ValueCmp:
		if negate {
			q.Op = q.Op.Negate()
		}
		return DNF{Disjuncts: []Disjunct{{q}}}, nil
	case ValueIn:
		if negate {
			q.Negate = !q.Negate
		}
		return DNF{Disjuncts: []Disjunct{{q}}}, nil
	case nil:
		return DNF{}, fmt.Errorf("expr: ToDNF: nil predicate")
	}
	return DNF{}, fmt.Errorf("expr: ToDNF: unknown predicate type %T", p)
}

func orDNF(ps []Pred, negate bool) (DNF, error) {
	var out DNF
	for _, p := range ps {
		d, err := toDNF(p, negate)
		if err != nil {
			return DNF{}, err
		}
		if d.IsTrue() {
			return DNF{Disjuncts: []Disjunct{{}}}, nil
		}
		out.Disjuncts = append(out.Disjuncts, d.Disjuncts...)
	}
	return out, nil
}

func andDNF(ps []Pred, negate bool) (DNF, error) {
	// Distribute: start from the single empty disjunct (true) and cross
	// with each operand's DNF.
	acc := []Disjunct{{}}
	for _, p := range ps {
		d, err := toDNF(p, negate)
		if err != nil {
			return DNF{}, err
		}
		if d.IsFalse() {
			return DNF{}, nil
		}
		next := make([]Disjunct, 0, len(acc)*len(d.Disjuncts))
		for _, a := range acc {
			for _, b := range d.Disjuncts {
				merged := make(Disjunct, 0, len(a)+len(b))
				merged = append(merged, a...)
				merged = append(merged, b...)
				next = append(next, merged)
			}
		}
		acc = next
	}
	return DNF{Disjuncts: acc}, nil
}
