// Package expr implements the data reduction specification language of
// Table 1 in Skyt, Jensen & Pedersen: selection predicates over
// dimension categories with time expressions (including the NOW
// variable and unanchored spans), and action specifications
// "p(α[Clist] σ[Pexp](O))". It provides a lexer, a parser for a concrete
// syntax of the grammar, disjunctive-normal-form normalization (the
// paper requires predicates in DNF), and printing.
//
// Concrete syntax example (action a1 of the paper, Eq. 4):
//
//	aggregate [Time.month, URL.domain]
//	  where URL.domain_grp = ".com"
//	    and NOW - 12 months < Time.month <= NOW - 6 months
package expr

import (
	"fmt"
	"strings"

	"dimred/internal/caltime"
)

// Op is a comparison operator of the grammar.
type Op int

const (
	OpLT Op = iota
	OpLE
	OpEQ
	OpNE
	OpGE
	OpGT
	OpIn
	OpNotIn
)

var opNames = [...]string{"<", "<=", "=", "!=", ">=", ">", "in", "not in"}

// String returns the operator's concrete syntax.
func (o Op) String() string {
	if o < OpLT || o > OpNotIn {
		return fmt.Sprintf("Op(%d)", int(o))
	}
	return opNames[o]
}

// Negate returns the complementary operator, used when pushing negations
// inward during DNF normalization.
func (o Op) Negate() Op {
	switch o {
	case OpLT:
		return OpGE
	case OpLE:
		return OpGT
	case OpEQ:
		return OpNE
	case OpNE:
		return OpEQ
	case OpGE:
		return OpLT
	case OpGT:
		return OpLE
	case OpIn:
		return OpNotIn
	case OpNotIn:
		return OpIn
	}
	panic(fmt.Sprintf("expr: Negate: bad op %d", o))
}

// Flip returns the operator with its operands swapped (a < b iff b > a).
func (o Op) Flip() Op {
	switch o {
	case OpLT:
		return OpGT
	case OpLE:
		return OpGE
	case OpGT:
		return OpLT
	case OpGE:
		return OpLE
	default:
		return o
	}
}

// CatRef names a category of a dimension, e.g. Time.month.
type CatRef struct {
	Dim, Cat string
}

// String returns "Dim.cat".
func (c CatRef) String() string { return c.Dim + "." + c.Cat }

// Pred is a selection predicate node.
type Pred interface {
	fmt.Stringer
	isPred()
}

// Bool is the constant predicate true or false.
type Bool struct{ Value bool }

// Not negates a predicate.
type Not struct{ P Pred }

// And is an n-ary conjunction.
type And struct{ Ps []Pred }

// Or is an n-ary disjunction.
type Or struct{ Ps []Pred }

// TimeCmp compares a time category against a time expression:
// "Time.month <= NOW - 6 months".
type TimeCmp struct {
	Ref CatRef
	Op  Op // OpLT..OpGT
	RHS caltime.Expr
}

// TimeIn tests membership of a time category in a set of time
// expressions: "Time.quarter in {1999Q4, 2000Q1}". Negate gives "not in".
type TimeIn struct {
	Ref    CatRef
	Set    []caltime.Expr
	Negate bool
}

// ValueCmp compares a non-time category against a value literal:
// `URL.domain_grp = ".com"`.
type ValueCmp struct {
	Ref CatRef
	Op  Op // OpLT..OpGT
	RHS string
}

// ValueIn tests membership of a non-time category in a set of value
// literals. Negate gives "not in".
type ValueIn struct {
	Ref    CatRef
	Set    []string
	Negate bool
}

func (Bool) isPred()     {}
func (Not) isPred()      {}
func (And) isPred()      {}
func (Or) isPred()       {}
func (TimeCmp) isPred()  {}
func (TimeIn) isPred()   {}
func (ValueCmp) isPred() {}
func (ValueIn) isPred()  {}

func (p Bool) String() string {
	if p.Value {
		return "true"
	}
	return "false"
}

func (p Not) String() string { return "not (" + p.P.String() + ")" }

func joinPreds(ps []Pred, sep string) string {
	parts := make([]string, len(ps))
	for i, q := range ps {
		switch q.(type) {
		case And, Or:
			parts[i] = "(" + q.String() + ")"
		default:
			parts[i] = q.String()
		}
	}
	return strings.Join(parts, sep)
}

func (p And) String() string { return joinPreds(p.Ps, " and ") }
func (p Or) String() string  { return joinPreds(p.Ps, " or ") }

func (p TimeCmp) String() string {
	return fmt.Sprintf("%s %s %s", p.Ref, p.Op, p.RHS)
}

func (p TimeIn) String() string {
	items := make([]string, len(p.Set))
	for i, e := range p.Set {
		items[i] = e.String()
	}
	op := "in"
	if p.Negate {
		op = "not in"
	}
	return fmt.Sprintf("%s %s {%s}", p.Ref, op, strings.Join(items, ", "))
}

// quoteValue renders a value literal in the concrete syntax: the lexer
// understands exactly backslash-escaped quotes and backslashes, so the
// printer escapes exactly those (unlike %q, which would escape
// non-printable bytes the lexer cannot un-escape).
func quoteValue(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' || s[i] == '\\' {
			b.WriteByte('\\')
		}
		b.WriteByte(s[i])
	}
	b.WriteByte('"')
	return b.String()
}

func (p ValueCmp) String() string {
	return fmt.Sprintf("%s %s %s", p.Ref, p.Op, quoteValue(p.RHS))
}

func (p ValueIn) String() string {
	items := make([]string, len(p.Set))
	for i, v := range p.Set {
		items[i] = quoteValue(v)
	}
	op := "in"
	if p.Negate {
		op = "not in"
	}
	return fmt.Sprintf("%s %s {%s}", p.Ref, op, strings.Join(items, ", "))
}

// ActionSpec is a parsed action "p(α[Clist] σ[Pexp](O))": the target
// granularity Clist (one category reference per dimension) and the
// selection predicate. Delete marks a fact-deletion action ("delete
// where <pred>"), the extension the paper's Section 8 names as future
// work; deletion behaves as aggregation to a granularity above
// everything, so it slots into the <=_V order naturally.
type ActionSpec struct {
	Targets []CatRef
	Pred    Pred
	Delete  bool
}

// String renders the action in concrete syntax.
func (a ActionSpec) String() string {
	var s string
	if a.Delete {
		s = "delete"
	} else {
		refs := make([]string, len(a.Targets))
		for i, r := range a.Targets {
			refs[i] = r.String()
		}
		s = "aggregate [" + strings.Join(refs, ", ") + "]"
	}
	if a.Pred != nil {
		if b, ok := a.Pred.(Bool); !ok || !b.Value {
			s += " where " + a.Pred.String()
		}
	}
	return s
}

// Atoms appends every atomic predicate in p (TimeCmp, TimeIn, ValueCmp,
// ValueIn, Bool) to dst and returns it.
func Atoms(p Pred, dst []Pred) []Pred {
	switch q := p.(type) {
	case Not:
		return Atoms(q.P, dst)
	case And:
		for _, c := range q.Ps {
			dst = Atoms(c, dst)
		}
		return dst
	case Or:
		for _, c := range q.Ps {
			dst = Atoms(c, dst)
		}
		return dst
	default:
		return append(dst, p)
	}
}

// References appends every category reference in p to dst and returns it.
func References(p Pred, dst []CatRef) []CatRef {
	for _, a := range Atoms(p, nil) {
		switch q := a.(type) {
		case TimeCmp:
			dst = append(dst, q.Ref)
		case TimeIn:
			dst = append(dst, q.Ref)
		case ValueCmp:
			dst = append(dst, q.Ref)
		case ValueIn:
			dst = append(dst, q.Ref)
		}
	}
	return dst
}

// UsesNow reports whether any time expression in p references NOW, which
// makes the action dynamic in the sense of Section 4.3.
func UsesNow(p Pred) bool {
	for _, a := range Atoms(p, nil) {
		switch q := a.(type) {
		case TimeCmp:
			if q.RHS.IsNowRelative() {
				return true
			}
		case TimeIn:
			for _, e := range q.Set {
				if e.IsNowRelative() {
					return true
				}
			}
		}
	}
	return false
}
