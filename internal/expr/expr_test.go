package expr

import (
	"math/rand"
	"strings"
	"testing"

	"dimred/internal/caltime"
)

// Concrete-syntax renderings of the paper's actions.
const (
	srcA1 = `aggregate [Time.month, URL.domain] where URL.domain_grp = ".com" and NOW - 12 months < Time.month <= NOW - 6 months`
	srcA2 = `aggregate [Time.quarter, URL.domain] where URL.domain_grp = ".com" and Time.quarter <= NOW - 4 quarters`
	srcA3 = `aggregate [Time.month, URL.domain_grp] where URL.url = "www.cnn.com/health" and Time.month <= 1999/12`
	srcA4 = `aggregate [Time.week, URL.url] where URL.url = "www.cnn.com/health" and Time.month <= 1999/12`
	srcA7 = `aggregate [Time.month, URL.domain] where Time.month <= NOW - 12 months`
	srcA8 = `aggregate [Time.month, URL.domain] where Time.month <= 1999/12`
)

func TestParsePaperActions(t *testing.T) {
	for _, src := range []string{srcA1, srcA2, srcA3, srcA4, srcA7, srcA8} {
		a, err := ParseAction(src)
		if err != nil {
			t.Fatalf("ParseAction(%q): %v", src, err)
		}
		if len(a.Targets) != 2 {
			t.Errorf("targets = %v", a.Targets)
		}
	}
}

func TestParseActionA1Structure(t *testing.T) {
	a, err := ParseAction(srcA1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Targets[0] != (CatRef{"Time", "month"}) || a.Targets[1] != (CatRef{"URL", "domain"}) {
		t.Errorf("targets = %v", a.Targets)
	}
	and, ok := a.Pred.(And)
	if !ok {
		t.Fatalf("predicate is %T, want And", a.Pred)
	}
	// URL.domain_grp = ".com", then the chained range desugared to two
	// TimeCmp atoms.
	if len(and.Ps) != 3 {
		t.Fatalf("conjuncts = %d, want 3: %v", len(and.Ps), a.Pred)
	}
	vc, ok := and.Ps[0].(ValueCmp)
	if !ok || vc.RHS != ".com" || vc.Op != OpEQ {
		t.Errorf("first conjunct = %v", and.Ps[0])
	}
	// "NOW - 12 months < Time.month" must flip to Time.month > NOW - 12 months.
	tc1, ok := and.Ps[1].(TimeCmp)
	if !ok || tc1.Op != OpGT || !tc1.RHS.IsNowRelative() {
		t.Errorf("second conjunct = %v", and.Ps[1])
	}
	tc2, ok := and.Ps[2].(TimeCmp)
	if !ok || tc2.Op != OpLE {
		t.Errorf("third conjunct = %v", and.Ps[2])
	}
	now, _ := caltime.ParseDay("2000/11/5")
	if got := tc2.RHS.EvalPeriod(now, caltime.UnitMonth).String(); got != "2000/5" {
		t.Errorf("upper bound at 2000/11/5 = %s, want 2000/5", got)
	}
	if !UsesNow(a.Pred) {
		t.Error("a1 should use NOW")
	}
}

func TestParseAnchoredAction(t *testing.T) {
	a, err := ParseAction(srcA8)
	if err != nil {
		t.Fatal(err)
	}
	if UsesNow(a.Pred) {
		t.Error("a8 should not use NOW")
	}
	tc := a.Pred.(TimeCmp)
	u, ok := tc.RHS.BaseUnit()
	if !ok || u != caltime.UnitMonth {
		t.Errorf("anchor unit = %v, %v", u, ok)
	}
}

func TestParseInSets(t *testing.T) {
	p, err := ParsePred(`Time.quarter in {1999Q4, 2000Q1}`)
	if err != nil {
		t.Fatal(err)
	}
	ti, ok := p.(TimeIn)
	if !ok || len(ti.Set) != 2 || ti.Negate {
		t.Fatalf("parsed %v", p)
	}
	p, err = ParsePred(`URL.domain not in {"cnn.com", "amazon.com"}`)
	if err != nil {
		t.Fatal(err)
	}
	vi, ok := p.(ValueIn)
	if !ok || len(vi.Set) != 2 || !vi.Negate {
		t.Fatalf("parsed %v", p)
	}
	if _, err := ParsePred(`URL.domain in {"cnn.com", 1999Q4}`); err == nil {
		t.Error("mixed in-set accepted")
	}
}

func TestParseNotAndParens(t *testing.T) {
	// The Section 7.1 catch-all action a_bottom (Eq. 44) uses negated
	// conjunctions.
	src := `not (URL.domain_grp = ".com" and Time.month <= NOW - 6 months) and not (URL.domain = "gatech.edu" and Time.week <= NOW - 36 weeks)`
	p, err := ParsePred(src)
	if err != nil {
		t.Fatal(err)
	}
	and, ok := p.(And)
	if !ok || len(and.Ps) != 2 {
		t.Fatalf("parsed %v", p)
	}
	for _, c := range and.Ps {
		if _, ok := c.(Not); !ok {
			t.Errorf("conjunct %v is not a negation", c)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`aggregate`,
		`aggregate [Time.month`,
		`aggregate [Time.month] where`,
		`aggregate [Time] where true`,
		`Time.month <`,
		`Time.month < URL.domain`,          // two category references
		`1999/12 < 2000/1`,                 // no category reference
		`Time.month ! 1999`,                // stray !
		`Time.month < 1999/13`,             // bad literal
		`Time.month in {}`,                 // empty set
		`Time.month < NOW - 6`,             // span missing unit
		`Time.month < NOW - 6 lightyears`,  // bad unit
		`Time.month < "x`,                  // unterminated string
		`Time.month < 1999 trailing stuff`, // trailing input
		`not`,
		`Time.month not 1999`,
	}
	for _, src := range bad {
		if _, err := ParsePred(src); err == nil {
			t.Errorf("ParsePred(%q) succeeded, want error", src)
		}
	}
}

func TestActionStringRoundTrip(t *testing.T) {
	for _, src := range []string{srcA1, srcA2, srcA3, srcA4, srcA7, srcA8} {
		a, err := ParseAction(src)
		if err != nil {
			t.Fatal(err)
		}
		rendered := a.String()
		b, err := ParseAction(rendered)
		if err != nil {
			t.Fatalf("re-parse of %q: %v", rendered, err)
		}
		if b.String() != rendered {
			t.Errorf("round-trip unstable:\n  %q\n  %q", rendered, b.String())
		}
	}
}

func TestPredStringRoundTrip(t *testing.T) {
	srcs := []string{
		`true`,
		`false`,
		`Time.quarter in {1999Q4, 2000Q1}`,
		`URL.domain not in {"a.com", "b.com"}`,
		`Time.week <= 1999W48 or Time.day >= 2000/1/4 and URL.url != "x"`,
		`not (Time.year = 1999)`,
		`Time.month > NOW - 12 months + 1 day`,
	}
	for _, src := range srcs {
		p, err := ParsePred(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		rendered := p.String()
		q, err := ParsePred(rendered)
		if err != nil {
			t.Fatalf("re-parse of %q: %v", rendered, err)
		}
		if q.String() != rendered {
			t.Errorf("round-trip unstable: %q vs %q", rendered, q.String())
		}
	}
}

func TestAtomsAndReferences(t *testing.T) {
	p, err := ParsePred(`URL.domain_grp = ".com" and (Time.month <= 1999/12 or Time.week <= 1999W48)`)
	if err != nil {
		t.Fatal(err)
	}
	atoms := Atoms(p, nil)
	if len(atoms) != 3 {
		t.Errorf("atoms = %d, want 3", len(atoms))
	}
	refs := References(p, nil)
	if len(refs) != 3 || refs[0].Dim != "URL" || refs[1].Cat != "month" || refs[2].Cat != "week" {
		t.Errorf("refs = %v", refs)
	}
}

// evalBool evaluates the boolean skeleton of a predicate, treating each
// atom as an opaque variable looked up by its rendered form.
func evalBool(p Pred, env map[string]bool) bool {
	switch q := p.(type) {
	case Bool:
		return q.Value
	case Not:
		return !evalBool(q.P, env)
	case And:
		for _, c := range q.Ps {
			if !evalBool(c, env) {
				return false
			}
		}
		return true
	case Or:
		for _, c := range q.Ps {
			if evalBool(c, env) {
				return true
			}
		}
		return false
	default:
		return env[p.String()]
	}
}

// TestToDNFPreservesSemantics checks ToDNF against a truth-assignment
// oracle. The environment assigns each atom and its complemented form
// opposite values, so negation pushing is semantically visible. Only
// EQ/NE and In/NotIn atoms appear, whose negations are complements.
func TestToDNFPreservesSemantics(t *testing.T) {
	srcs := []string{
		`URL.a = "x" and (URL.b = "y" or URL.c = "z")`,
		`not (URL.a = "x" and URL.b = "y")`,
		`not (URL.a = "x" or not (URL.b = "y" and URL.c = "z"))`,
		`URL.a = "x" or URL.b = "y" and URL.c = "z" or not URL.d = "w"`,
		`true and URL.a = "x"`,
		`false or URL.a = "x"`,
		`not true`,
		`URL.a in {"1", "2"} and not (URL.b not in {"3"})`,
	}
	vars := []string{`URL.a = "x"`, `URL.b = "y"`, `URL.c = "z"`, `URL.d = "w"`,
		`URL.a in {"1", "2"}`, `URL.b in {"3"}`}
	rng := rand.New(rand.NewSource(7))
	for _, src := range srcs {
		p, err := ParsePred(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		d, err := ToDNF(p)
		if err != nil {
			t.Fatalf("ToDNF(%q): %v", src, err)
		}
		q := d.Pred()
		for trial := 0; trial < 64; trial++ {
			env := make(map[string]bool)
			for _, v := range vars {
				val := rng.Intn(2) == 0
				env[v] = val
				// The complemented atom gets the complemented value.
				env[strings.Replace(strings.Replace(v, " = ", " != ", 1), " in ", " not in ", 1)] = !val
			}
			if evalBool(p, env) != evalBool(q, env) {
				t.Fatalf("DNF changed semantics of %q under %v:\n  dnf = %v", src, env, q)
			}
		}
	}
}

func TestToDNFShape(t *testing.T) {
	p, err := ParsePred(`URL.a = "x" and (URL.b = "y" or URL.c = "z")`)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ToDNF(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Disjuncts) != 2 || len(d.Disjuncts[0]) != 2 || len(d.Disjuncts[1]) != 2 {
		t.Errorf("DNF shape = %v", d)
	}
	// Constants.
	dTrue, _ := ToDNF(Bool{Value: true})
	if !dTrue.IsTrue() || dTrue.IsFalse() {
		t.Error("true DNF misclassified")
	}
	dFalse, _ := ToDNF(Bool{Value: false})
	if !dFalse.IsFalse() || dFalse.IsTrue() {
		t.Error("false DNF misclassified")
	}
	if _, err := ToDNF(nil); err == nil {
		t.Error("nil predicate accepted")
	}
	// An action split per Section 5.3: "A or B" yields two disjuncts.
	p2, _ := ParsePred(`URL.a = "x" or Time.month <= 1999/12`)
	d2, _ := ToDNF(p2)
	if len(d2.Disjuncts) != 2 {
		t.Errorf("split into %d disjuncts, want 2", len(d2.Disjuncts))
	}
}

func TestOpHelpers(t *testing.T) {
	negatePairs := map[Op]Op{OpLT: OpGE, OpLE: OpGT, OpEQ: OpNE, OpIn: OpNotIn}
	for a, b := range negatePairs {
		if a.Negate() != b || b.Negate() != a {
			t.Errorf("Negate(%v) pair broken", a)
		}
	}
	flipPairs := map[Op]Op{OpLT: OpGT, OpLE: OpGE, OpEQ: OpEQ, OpNE: OpNE}
	for a, b := range flipPairs {
		if a.Flip() != b {
			t.Errorf("Flip(%v) = %v, want %v", a, a.Flip(), b)
		}
	}
}

func TestLexerEdgeCases(t *testing.T) {
	// "==" and "<>" are tolerated as "=" and "!=".
	p, err := ParsePred(`URL.a == "x"`)
	if err != nil {
		t.Fatal(err)
	}
	if p.(ValueCmp).Op != OpEQ {
		t.Error("== not treated as =")
	}
	p, err = ParsePred(`URL.a <> "x"`)
	if err != nil {
		t.Fatal(err)
	}
	if p.(ValueCmp).Op != OpNE {
		t.Error("<> not treated as !=")
	}
	// Week literal vs identifier starting with W.
	p, err = ParsePred(`Time.week <= 2000W1`)
	if err != nil {
		t.Fatal(err)
	}
	if p.(TimeCmp).RHS.Anchor.Unit != caltime.UnitWeek {
		t.Error("week literal not recognized")
	}
}
