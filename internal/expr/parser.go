package expr

import (
	"fmt"
	"strconv"
	"strings"

	"dimred/internal/caltime"
)

// ParseAction parses an action specification in concrete syntax:
//
//	aggregate [Time.month, URL.domain] where URL.domain_grp = ".com"
//	  and NOW - 12 months < Time.month <= NOW - 6 months
//
// An omitted where-clause means the predicate true.
func ParseAction(src string) (ActionSpec, error) {
	toks, err := lex(src)
	if err != nil {
		return ActionSpec{}, err
	}
	p := &parser{toks: toks}
	a, err := p.parseAction()
	if err != nil {
		return ActionSpec{}, err
	}
	if !p.at(tokEOF, "") {
		return ActionSpec{}, fmt.Errorf("expr: parse: trailing input at %s (offset %d)", p.cur(), p.cur().pos)
	}
	return a, nil
}

// ParsePred parses a bare selection predicate in concrete syntax.
func ParsePred(src string) (Pred, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	pred, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("expr: parse: trailing input at %s (offset %d)", p.cur(), p.cur().pos)
	}
	return pred, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) at(k tokKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) atKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) expectPunct(s string) error {
	if !p.at(tokPunct, s) {
		return fmt.Errorf("expr: parse: expected %q, found %s (offset %d)", s, p.cur(), p.cur().pos)
	}
	p.i++
	return nil
}

func (p *parser) parseAction() (ActionSpec, error) {
	if p.atKeyword("delete") {
		p.i++
		var pred Pred = Bool{Value: true}
		if p.atKeyword("where") {
			p.i++
			var err error
			pred, err = p.parseOr()
			if err != nil {
				return ActionSpec{}, err
			}
		}
		return ActionSpec{Delete: true, Pred: pred}, nil
	}
	if !p.atKeyword("aggregate") {
		return ActionSpec{}, fmt.Errorf("expr: parse: expected 'aggregate' or 'delete', found %s", p.cur())
	}
	p.i++
	if err := p.expectPunct("["); err != nil {
		return ActionSpec{}, err
	}
	var targets []CatRef
	for {
		ref, err := p.parseCatRef()
		if err != nil {
			return ActionSpec{}, err
		}
		targets = append(targets, ref)
		if p.at(tokPunct, ",") {
			p.i++
			continue
		}
		break
	}
	if err := p.expectPunct("]"); err != nil {
		return ActionSpec{}, err
	}
	var pred Pred = Bool{Value: true}
	if p.atKeyword("where") {
		p.i++
		var err error
		pred, err = p.parseOr()
		if err != nil {
			return ActionSpec{}, err
		}
	}
	return ActionSpec{Targets: targets, Pred: pred}, nil
}

func (p *parser) parseCatRef() (CatRef, error) {
	if !p.at(tokIdent, "") {
		return CatRef{}, fmt.Errorf("expr: parse: expected dimension name, found %s", p.cur())
	}
	dim := p.next().text
	if err := p.expectPunct("."); err != nil {
		return CatRef{}, err
	}
	if !p.at(tokIdent, "") {
		return CatRef{}, fmt.Errorf("expr: parse: expected category name after %q., found %s", dim, p.cur())
	}
	return CatRef{Dim: dim, Cat: p.next().text}, nil
}

func (p *parser) parseOr() (Pred, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	ps := flattenOr(nil, left)
	for p.atKeyword("or") {
		p.i++
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		ps = flattenOr(ps, right)
	}
	if len(ps) == 1 {
		return ps[0], nil
	}
	return Or{Ps: ps}, nil
}

func (p *parser) parseAnd() (Pred, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	ps := flattenAnd(nil, left)
	for p.atKeyword("and") {
		p.i++
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		ps = flattenAnd(ps, right)
	}
	if len(ps) == 1 {
		return ps[0], nil
	}
	return And{Ps: ps}, nil
}

// flattenAnd splices a nested conjunction (e.g. one produced by
// desugaring a chained comparison) into the enclosing conjunct list.
func flattenAnd(dst []Pred, p Pred) []Pred {
	if a, ok := p.(And); ok {
		return append(dst, a.Ps...)
	}
	return append(dst, p)
}

func flattenOr(dst []Pred, p Pred) []Pred {
	if o, ok := p.(Or); ok {
		return append(dst, o.Ps...)
	}
	return append(dst, p)
}

func (p *parser) parseUnary() (Pred, error) {
	if p.atKeyword("not") {
		// "not (pred)" or "not <atom>"; "not in" is handled by the chain.
		save := p.i
		p.i++
		if p.atKeyword("in") {
			p.i = save // let parseChain consume it
		} else {
			inner, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return Not{P: inner}, nil
		}
	}
	if p.atKeyword("true") {
		p.i++
		return Bool{Value: true}, nil
	}
	if p.atKeyword("false") {
		p.i++
		return Bool{Value: false}, nil
	}
	if p.at(tokPunct, "(") {
		p.i++
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.parseChain()
}

// operand is one side of a comparison: a category reference, a time
// expression, or a quoted value literal.
type operand struct {
	ref     *CatRef
	timeExp *caltime.Expr
	value   *string
}

// parseChain parses "operand relop operand (relop operand)*" or
// "catref [not] in { items }", desugaring chained comparisons such as
// "tt1 < Time.month <= tt2" into a conjunction.
func (p *parser) parseChain() (Pred, error) {
	first, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	// Membership clause.
	negate := false
	if p.atKeyword("not") {
		save := p.i
		p.i++
		if !p.atKeyword("in") {
			p.i = save
		} else {
			negate = true
		}
	}
	if p.atKeyword("in") {
		p.i++
		if first.ref == nil {
			return nil, fmt.Errorf("expr: parse: left side of 'in' must be a category reference")
		}
		return p.parseInSet(*first.ref, negate)
	}
	if negate {
		return nil, fmt.Errorf("expr: parse: expected 'in' after 'not', found %s", p.cur())
	}

	if !p.at(tokOp, "") || !isRelOp(p.cur().text) {
		return nil, fmt.Errorf("expr: parse: expected a comparison operator, found %s (offset %d)", p.cur(), p.cur().pos)
	}
	var conj []Pred
	prev := first
	for p.at(tokOp, "") && isRelOp(p.cur().text) {
		op := relOpFromText(p.next().text)
		next, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		atom, err := makeCmp(prev, op, next)
		if err != nil {
			return nil, err
		}
		conj = append(conj, atom)
		prev = next
	}
	if len(conj) == 1 {
		return conj[0], nil
	}
	return And{Ps: conj}, nil
}

func isRelOp(s string) bool {
	switch s {
	case "<", "<=", "=", "!=", ">=", ">":
		return true
	}
	return false
}

func relOpFromText(s string) Op {
	switch s {
	case "<":
		return OpLT
	case "<=":
		return OpLE
	case "=":
		return OpEQ
	case "!=":
		return OpNE
	case ">=":
		return OpGE
	case ">":
		return OpGT
	}
	panic("expr: relOpFromText: " + s)
}

// makeCmp builds the atom for "left op right", normalizing so the
// category reference is on the left. Exactly one side must be a
// reference.
func makeCmp(left operand, op Op, right operand) (Pred, error) {
	if left.ref != nil && right.ref != nil {
		return nil, fmt.Errorf("expr: parse: comparison between two category references (%s, %s) is not in the grammar",
			left.ref, right.ref)
	}
	if left.ref == nil && right.ref == nil {
		return nil, fmt.Errorf("expr: parse: comparison needs a category reference on one side")
	}
	ref, rhs := left.ref, right
	if ref == nil {
		ref, rhs, op = right.ref, left, op.Flip()
	}
	switch {
	case rhs.timeExp != nil:
		return TimeCmp{Ref: *ref, Op: op, RHS: *rhs.timeExp}, nil
	case rhs.value != nil:
		// The grammar permits any op "defined for elements of this type";
		// whether an inequality is defined for the referenced category is
		// a semantic check made when the predicate is compiled against a
		// schema.
		return ValueCmp{Ref: *ref, Op: op, RHS: *rhs.value}, nil
	}
	return nil, fmt.Errorf("expr: parse: internal: empty operand")
}

func (p *parser) parseInSet(ref CatRef, negate bool) (Pred, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var times []caltime.Expr
	var vals []string
	for {
		o, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		switch {
		case o.timeExp != nil:
			times = append(times, *o.timeExp)
		case o.value != nil:
			vals = append(vals, *o.value)
		default:
			return nil, fmt.Errorf("expr: parse: category reference inside 'in' set")
		}
		if p.at(tokPunct, ",") {
			p.i++
			continue
		}
		break
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	if len(times) > 0 && len(vals) > 0 {
		return nil, fmt.Errorf("expr: parse: 'in' set mixes time and value literals")
	}
	if len(times) > 0 {
		return TimeIn{Ref: ref, Set: times, Negate: negate}, nil
	}
	return ValueIn{Ref: ref, Set: vals, Negate: negate}, nil
}

func (p *parser) parseOperand() (operand, error) {
	t := p.cur()
	switch {
	case t.kind == tokString:
		p.i++
		s := t.text
		return operand{value: &s}, nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "NOW"):
		p.i++
		e := caltime.NowExpr()
		e, err := p.parseSpanTail(e)
		if err != nil {
			return operand{}, err
		}
		return operand{timeExp: &e}, nil
	case t.kind == tokIdent:
		ref, err := p.parseCatRef()
		if err != nil {
			return operand{}, err
		}
		return operand{ref: &ref}, nil
	case t.kind == tokNumWord:
		period, err := caltime.ParsePeriod(t.text)
		if err != nil {
			return operand{}, fmt.Errorf("expr: parse: %w", err)
		}
		p.i++
		e := caltime.AnchorExpr(period)
		e, err = p.parseSpanTail(e)
		if err != nil {
			return operand{}, err
		}
		return operand{timeExp: &e}, nil
	}
	return operand{}, fmt.Errorf("expr: parse: expected an operand, found %s (offset %d)", t, t.pos)
}

// parseSpanTail consumes "(+|-) N unit" adjustments following a time
// base. A '+'/'-' not followed by "N unit" is left for the caller (it
// cannot occur in valid input, so it surfaces as a parse error there).
func (p *parser) parseSpanTail(e caltime.Expr) (caltime.Expr, error) {
	for p.at(tokOp, "+") || p.at(tokOp, "-") {
		sign := p.cur().text
		if p.toks[p.i+1].kind != tokNumWord {
			break
		}
		nTok := p.toks[p.i+1]
		if p.toks[p.i+2].kind != tokIdent {
			return e, fmt.Errorf("expr: parse: expected a span unit after %q", nTok.text)
		}
		n, err := strconv.ParseInt(nTok.text, 10, 64)
		if err != nil {
			return e, fmt.Errorf("expr: parse: span count %q: %w", nTok.text, err)
		}
		u, err := caltime.ParseUnit(p.toks[p.i+2].text)
		if err != nil {
			return e, fmt.Errorf("expr: parse: %w", err)
		}
		p.i += 3
		if sign == "-" {
			e = e.Minus(caltime.Span{N: n, Unit: u})
		} else {
			e = e.Plus(caltime.Span{N: n, Unit: u})
		}
	}
	return e, nil
}
