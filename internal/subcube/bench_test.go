package subcube

import (
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/spec"
	"dimred/internal/workload"
)

func benchCubeSet(b *testing.B) (*workload.ClickObject, *spec.Spec, *CubeSet) {
	b.Helper()
	obj, err := workload.BuildClickMO(workload.ClickConfig{
		Seed: 11, Start: caltime.Date(2000, 1, 1), Days: 240,
		ClicksPerDay: 60, Domains: 12, URLsPerDomain: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	env, err := spec.NewEnv(obj.Schema, "Time", obj.Time)
	if err != nil {
		b.Fatal(err)
	}
	s, err := spec.New(env,
		spec.MustCompileString("m", `aggregate [Time.month, URL.domain] where Time.month <= NOW - 2 months`, env),
		spec.MustCompileString("q", `aggregate [Time.quarter, URL.domain_grp] where Time.quarter <= NOW - 2 quarters`, env))
	if err != nil {
		b.Fatal(err)
	}
	cs, err := New(s)
	if err != nil {
		b.Fatal(err)
	}
	if err := cs.InsertMO(obj.MO); err != nil {
		b.Fatal(err)
	}
	return obj, s, cs
}

// BenchmarkQuerySyncVsUnsync is the Section 7.3 ablation: evaluating
// against synchronized cubes versus building per-cube parent views on
// the fly in the un-synchronized state.
func BenchmarkQuerySyncVsUnsync(b *testing.B) {
	_, s, cs := benchCubeSet(b)
	syncAt := caltime.Date(2000, 9, 1)
	if _, err := cs.Sync(syncAt); err != nil {
		b.Fatal(err)
	}
	q := MustParseQuery(`aggregate [Time.month, URL.domain_grp]`, s.Env())
	b.Run("synchronized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cs.Evaluate(q, syncAt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unsynchronized", func(b *testing.B) {
		stale := caltime.Date(2000, 9, 20) // within one significant period
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cs.Evaluate(q, stale); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkIncrementalSyncSteps(b *testing.B) {
	// Cost of monthly synchronization steps over a year of aging.
	obj, _, _ := benchCubeSet(b)
	_ = obj
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		_, _, cs := benchCubeSet(b)
		b.StartTimer()
		for m := 3; m <= 14; m++ {
			if _, err := cs.Sync(caltime.Date(2000, m, 2)); err != nil {
				b.Fatal(err)
			}
		}
	}
}
