package subcube

import (
	"fmt"
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/core"
	"dimred/internal/query"
	"dimred/internal/spec"
	"dimred/internal/workload"
)

// TestRandomizedEquivalence drives the subcube engine and the
// Definition 2 semantics with generated click-streams under several
// specifications and checks that query answers agree at every time
// point. This is the strong form of the S5 experiment.
func TestRandomizedEquivalence(t *testing.T) {
	specs := [][]string{
		{
			`aggregate [Time.month, URL.domain] where Time.month <= NOW - 2 months`,
		},
		{
			`aggregate [Time.month, URL.domain] where Time.month <= NOW - 2 months`,
			`aggregate [Time.quarter, URL.domain_grp] where Time.quarter <= NOW - 3 quarters`,
		},
		{
			// Shrinking window covered by a coarser action.
			`aggregate [Time.month, URL.domain] where NOW - 9 months < Time.month and Time.month <= NOW - 2 months`,
			`aggregate [Time.quarter, URL.domain] where Time.quarter <= NOW - 3 quarters`,
		},
		{
			// Group-restricted actions plus a catch-all deletion.
			`aggregate [Time.month, URL.domain] where URL.domain_grp = ".com" and Time.month <= NOW - 2 months`,
			`aggregate [Time.month, URL.domain_grp] where URL.domain_grp = ".edu" and Time.month <= NOW - 2 months`,
			`delete where Time.year <= NOW - 3 years`,
		},
	}
	queries := []string{
		`aggregate [Time.quarter, URL.domain_grp]`,
		`aggregate [Time.month, URL.domain] where URL.domain_grp = ".com"`,
		`aggregate [Time.year, URL.TOP]`,
	}
	times := []caltime.Day{
		caltime.Date(2000, 4, 1), caltime.Date(2000, 9, 13),
		caltime.Date(2001, 2, 1), caltime.Date(2002, 7, 4),
		caltime.Date(2004, 1, 2),
	}
	for si, srcs := range specs {
		si, srcs := si, srcs
		t.Run(fmt.Sprintf("spec%d", si), func(t *testing.T) {
			obj, err := workload.BuildClickMO(workload.ClickConfig{
				Seed: int64(100 + si), Start: caltime.Date(2000, 1, 1),
				Days: 180, ClicksPerDay: 25, Domains: 8, URLsPerDomain: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			env, err := spec.NewEnv(obj.Schema, "Time", obj.Time)
			if err != nil {
				t.Fatal(err)
			}
			var actions []*spec.Action
			for i, src := range srcs {
				actions = append(actions, spec.MustCompileString(fmt.Sprintf("a%d", i), src, env))
			}
			s, err := spec.New(env, actions...)
			if err != nil {
				t.Fatal(err)
			}
			cs, err := New(s)
			if err != nil {
				t.Fatal(err)
			}
			if err := cs.InsertMO(obj.MO); err != nil {
				t.Fatal(err)
			}
			for _, at := range times {
				if _, err := cs.Sync(at); err != nil {
					t.Fatal(err)
				}
				red, err := core.Reduce(s, obj.MO, at)
				if err != nil {
					t.Fatal(err)
				}
				for _, qsrc := range queries {
					q := MustParseQuery(qsrc, env)
					engine, err := cs.Evaluate(q, at)
					if err != nil {
						t.Fatal(err)
					}
					sel := red.MO
					if q.Pred != nil {
						sel, err = query.Select(red.MO, q.Pred, at, query.Conservative)
						if err != nil {
							t.Fatal(err)
						}
					}
					direct, err := query.Aggregate(sel, q.Target, query.Availability)
					if err != nil {
						t.Fatal(err)
					}
					if canon(engine) != canon(direct) {
						t.Fatalf("divergence at %v, query %q:\nengine:\n%s\ndirect:\n%s",
							at, qsrc, canon(engine), canon(direct))
					}
				}
			}
		})
	}
}

// TestRandomizedStaleQueryEquivalence checks that un-synchronized
// evaluation matches synchronized evaluation under a generated stream,
// when the staleness is within one significant period (the paper's
// one-generation assumption).
func TestRandomizedStaleQueryEquivalence(t *testing.T) {
	obj, err := workload.BuildClickMO(workload.ClickConfig{
		Seed: 77, Start: caltime.Date(2000, 1, 1),
		Days: 240, ClicksPerDay: 20, Domains: 6, URLsPerDomain: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	env, err := spec.NewEnv(obj.Schema, "Time", obj.Time)
	if err != nil {
		t.Fatal(err)
	}
	s, err := spec.New(env,
		spec.MustCompileString("m", `aggregate [Time.month, URL.domain] where Time.month <= NOW - 2 months`, env),
		spec.MustCompileString("q", `aggregate [Time.quarter, URL.domain_grp] where Time.quarter <= NOW - 2 quarters`, env))
	if err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery(`aggregate [Time.month, URL.domain_grp]`, env)
	for _, step := range []struct {
		syncAt, queryAt caltime.Day
	}{
		{caltime.Date(2000, 6, 15), caltime.Date(2000, 7, 10)},
		{caltime.Date(2000, 9, 1), caltime.Date(2000, 9, 25)},
		{caltime.Date(2001, 1, 5), caltime.Date(2001, 2, 2)},
	} {
		cs, err := New(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := cs.InsertMO(obj.MO); err != nil {
			t.Fatal(err)
		}
		if _, err := cs.Sync(step.syncAt); err != nil {
			t.Fatal(err)
		}
		stale, err := cs.Evaluate(q, step.queryAt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cs.Sync(step.queryAt); err != nil {
			t.Fatal(err)
		}
		fresh, err := cs.Evaluate(q, step.queryAt)
		if err != nil {
			t.Fatal(err)
		}
		if canon(stale) != canon(fresh) {
			t.Errorf("stale/fresh divergence for sync=%v query=%v:\nstale:\n%s\nfresh:\n%s",
				step.syncAt, step.queryAt, canon(stale), canon(fresh))
		}
	}
}
