package subcube

import (
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/core"
	"dimred/internal/query"
	"dimred/internal/spec"
	"dimred/internal/workload"
)

func zoneMapSetup(t *testing.T) (*workload.ClickObject, *spec.Spec, *CubeSet, caltime.Day) {
	t.Helper()
	obj, err := workload.BuildClickMO(workload.ClickConfig{
		Seed: 61, Start: caltime.Date(2000, 1, 1), Days: 365,
		ClicksPerDay: 20, Domains: 6, URLsPerDomain: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	env, err := spec.NewEnv(obj.Schema, "Time", obj.Time)
	if err != nil {
		t.Fatal(err)
	}
	s, err := spec.New(env,
		spec.MustCompileString("m", `aggregate [Time.month, URL.domain] where Time.month <= NOW - 2 months`, env),
		spec.MustCompileString("q", `aggregate [Time.quarter, URL.domain_grp] where Time.quarter <= NOW - 2 quarters`, env))
	if err != nil {
		t.Fatal(err)
	}
	cs, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.InsertMO(obj.MO); err != nil {
		t.Fatal(err)
	}
	at := caltime.Date(2001, 1, 10)
	if _, err := cs.Sync(at); err != nil {
		t.Fatal(err)
	}
	return obj, s, cs, at
}

func TestZoneMapRanges(t *testing.T) {
	_, _, cs, _ := zoneMapSetup(t)
	for _, c := range cs.Cubes() {
		lo, hi, ok := c.DayRange()
		if c.Rows() == 0 {
			continue
		}
		if !ok {
			t.Errorf("cube %d has rows but no range", c.ID())
			continue
		}
		if lo > hi {
			t.Errorf("cube %d inverted range %v..%v", c.ID(), lo, hi)
		}
		// The range must cover the stream (conservatively).
		if hi < caltime.Date(2000, 1, 1) || lo > caltime.Date(2001, 1, 1) {
			t.Errorf("cube %d range %v..%v misses the data", c.ID(), lo, hi)
		}
	}
}

func TestZoneMapPruningPreservesAnswers(t *testing.T) {
	obj, s, cs, at := zoneMapSetup(t)
	// Narrow time queries that prune at least one cube, compared against
	// the Definition 2 pipeline.
	queries := []string{
		`aggregate [Time.month, URL.domain_grp] where Time.month = 2000/2`,
		`aggregate [Time.day, URL.domain] where 2000/12/20 <= Time.day and Time.day <= 2000/12/31`,
		`aggregate [Time.quarter, URL.domain_grp] where Time.quarter in {2000Q1}`,
		`aggregate [Time.month, URL.domain] where Time.month >= 2002/1`, // beyond the data: everything pruned
	}
	red, err := core.Reduce(s, obj.MO, at)
	if err != nil {
		t.Fatal(err)
	}
	for _, qsrc := range queries {
		q := MustParseQuery(qsrc, s.Env())
		engine, err := cs.Evaluate(q, at)
		if err != nil {
			t.Fatal(err)
		}
		sel, err := query.Select(red.MO, q.Pred, at, query.Conservative)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := query.Aggregate(sel, q.Target, query.Availability)
		if err != nil {
			t.Fatal(err)
		}
		if canon(engine) != canon(direct) {
			t.Errorf("pruned query %q diverges:\nengine:\n%s\ndirect:\n%s", qsrc, canon(engine), canon(direct))
		}
	}
}

func TestPredicateTimeBounds(t *testing.T) {
	_, s, _, at := zoneMapSetup(t)
	env := s.Env()
	cases := []struct {
		src     string
		bounded bool
	}{
		{`Time.month = 2000/2`, true},
		{`Time.month <= NOW - 2 months`, true},
		{`Time.quarter in {2000Q1, 2000Q3}`, true},
		{`URL.domain_grp = ".com"`, false},
		{`Time.month != 2000/2`, false},
		{`Time.month <= 2000/6 or URL.domain = "x"`, false}, // second disjunct is time-free
	}
	for _, c := range cases {
		p, err := query.ParsePred(c.src, env)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi, bounded := p.TimeBounds(at)
		if bounded != c.bounded {
			t.Errorf("%s: bounded = %v, want %v", c.src, bounded, c.bounded)
			continue
		}
		if bounded && lo > hi {
			t.Errorf("%s: inverted bounds %v..%v", c.src, lo, hi)
		}
	}
	// Concrete hull: month = 2000/2 spans exactly February 2000.
	p, _ := query.ParsePred(`Time.month = 2000/2`, env)
	lo, hi, _ := p.TimeBounds(at)
	if lo != caltime.Date(2000, 2, 1) || hi != caltime.Date(2000, 2, 29) {
		t.Errorf("hull = %v..%v", lo, hi)
	}
}

func BenchmarkZoneMapPruning(b *testing.B) {
	obj, err := workload.BuildClickMO(workload.ClickConfig{
		Seed: 62, Start: caltime.Date(2000, 1, 1), Days: 365,
		ClicksPerDay: 100, Domains: 10, URLsPerDomain: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	env, err := spec.NewEnv(obj.Schema, "Time", obj.Time)
	if err != nil {
		b.Fatal(err)
	}
	s, err := spec.New(env,
		spec.MustCompileString("m", `aggregate [Time.month, URL.domain] where Time.month <= NOW - 2 months`, env))
	if err != nil {
		b.Fatal(err)
	}
	cs, err := New(s)
	if err != nil {
		b.Fatal(err)
	}
	if err := cs.InsertMO(obj.MO); err != nil {
		b.Fatal(err)
	}
	at := caltime.Date(2001, 1, 10)
	if _, err := cs.Sync(at); err != nil {
		b.Fatal(err)
	}
	// The month cube holds ~11 months of data; the bottom cube the rest.
	// A query over old months prunes the (large) bottom cube.
	pruned := MustParseQuery(`aggregate [Time.month, URL.domain_grp] where Time.month <= 2000/6`, s.Env())
	unpruned := MustParseQuery(`aggregate [Time.month, URL.domain_grp]`, s.Env())
	b.Run("time-selective", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cs.Evaluate(pruned, at); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cs.Evaluate(unpruned, at); err != nil {
				b.Fatal(err)
			}
		}
	})
}
