package subcube

import (
	"dimred/internal/mdm"
	"dimred/internal/storage"
)

// cellIndex maps a cube cell to its physical row. When every value of
// a cell fits in 64/nDims bits the cell packs into one uint64 and the
// lookup is allocation-free; cells with larger (or negative) values
// fall back to a string-keyed map. A given cell always packs the same
// way, so each cell lives in exactly one of the two maps.
type cellIndex struct {
	packed map[uint64]storage.RowID
	str    map[string]storage.RowID
	width  uint // bits per dimension value; 0 disables packing
	buf    []byte
}

func newCellIndex(nDims int) *cellIndex {
	ix := &cellIndex{packed: make(map[uint64]storage.RowID)}
	if nDims > 0 && nDims <= 64 {
		ix.width = uint(64 / nDims)
	}
	return ix
}

// pack encodes the cell into one uint64, width bits per value. ok is
// false when a value needs more bits: uint64(ValueID) sign-extends, so
// negative values overflow the width check and reject themselves.
func (ix *cellIndex) pack(cell []mdm.ValueID) (uint64, bool) {
	if ix.width == 0 {
		return 0, false
	}
	var k uint64
	for _, v := range cell {
		u := uint64(v)
		if u>>ix.width != 0 {
			return 0, false
		}
		k = k<<ix.width | u
	}
	return k, true
}

func (ix *cellIndex) get(cell []mdm.ValueID) (storage.RowID, bool) {
	if k, ok := ix.pack(cell); ok {
		r, hit := ix.packed[k]
		return r, hit
	}
	if ix.str == nil {
		return 0, false
	}
	buf, _ := cellKey(ix.buf, cell)
	ix.buf = buf
	r, hit := ix.str[string(buf)]
	return r, hit
}

func (ix *cellIndex) put(cell []mdm.ValueID, r storage.RowID) {
	if k, ok := ix.pack(cell); ok {
		ix.packed[k] = r
		return
	}
	if ix.str == nil {
		ix.str = make(map[string]storage.RowID)
	}
	_, key := cellKey(ix.buf, cell)
	ix.str[key] = r
}

func (ix *cellIndex) del(cell []mdm.ValueID) {
	if k, ok := ix.pack(cell); ok {
		delete(ix.packed, k)
		return
	}
	if ix.str == nil {
		return
	}
	buf, _ := cellKey(ix.buf, cell)
	ix.buf = buf
	delete(ix.str, string(buf))
}

// clone returns an independent copy of the index (the scratch buffer
// is not shared: the clone starts with a nil buf and grows its own).
func (ix *cellIndex) clone() *cellIndex {
	c := &cellIndex{width: ix.width, packed: make(map[uint64]storage.RowID, len(ix.packed)), buf: nil}
	for k, r := range ix.packed {
		c.packed[k] = r
	}
	if ix.str != nil {
		c.str = make(map[string]storage.RowID, len(ix.str))
		for k, r := range ix.str {
			c.str[k] = r
		}
	}
	return c
}

// applyRemap rewrites every entry through the row remapping returned
// by Store.Compact, dropping entries whose rows were reclaimed.
func (ix *cellIndex) applyRemap(remap []storage.RowID) {
	for k, r := range ix.packed {
		if nr := remap[r]; nr < 0 {
			delete(ix.packed, k)
		} else {
			ix.packed[k] = nr
		}
	}
	for k, r := range ix.str {
		if nr := remap[r]; nr < 0 {
			delete(ix.str, k)
		} else {
			ix.str[k] = nr
		}
	}
}
