package subcube

import (
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/mdm"
)

// TestMergeIntoAllocationFree pins the packed-cell-key fast path: once
// a cell is resident, merging further rows into it allocates nothing —
// the index probe packs the cell into a uint64 and the measure fold
// mutates in place.
func TestMergeIntoAllocationFree(t *testing.T) {
	obj, env := syncTestObj(t, 31)
	s := syncTestSpec(t, env)
	cs, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	bottom := cs.cubes[0]
	refs := obj.MO.Refs(0)
	meas := obj.MO.Measures(0)
	if err := cs.mergeInto(bottom, refs, meas, 1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := cs.mergeInto(bottom, refs, meas, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("mergeInto on a resident cell allocated %.1f times per run, want 0", allocs)
	}
}

// TestCellIndexPackedRouting: with two dimensions every in-range cell
// must take the packed uint64 map, never the string fallback; negative
// values (mdm.NoValue) must fall back rather than alias a packed key.
func TestCellIndexPackedRouting(t *testing.T) {
	ix := newCellIndex(2)
	if ix.width == 0 {
		t.Fatal("two-dimension index did not enable packing")
	}
	ix.put([]mdm.ValueID{3, 4}, 7)
	if r, ok := ix.get([]mdm.ValueID{3, 4}); !ok || r != 7 {
		t.Fatalf("get = %v, %v; want 7, true", r, ok)
	}
	if len(ix.str) != 0 {
		t.Fatal("in-range cell landed in the string fallback map")
	}
	ix.put([]mdm.ValueID{mdm.NoValue, 4}, 9)
	if len(ix.str) != 1 {
		t.Fatal("negative value did not take the string fallback")
	}
	if r, ok := ix.get([]mdm.ValueID{mdm.NoValue, 4}); !ok || r != 9 {
		t.Fatalf("fallback get = %v, %v; want 9, true", r, ok)
	}
	ix.del([]mdm.ValueID{3, 4})
	if _, ok := ix.get([]mdm.ValueID{3, 4}); ok {
		t.Fatal("deleted packed cell still resolves")
	}
}

// TestViewOfEvalAllocationProfile guards the hoisted scratch in the
// unsynchronized query view: building a cube view probes the compiled
// router without per-row allocations beyond the view MO itself. It is
// a smoke check that the eval seam stays on the compiled path.
func TestViewOfEvalAllocationProfile(t *testing.T) {
	obj, env := syncTestObj(t, 32)
	s := syncTestSpec(t, env)
	cs, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.InsertMO(obj.MO); err != nil {
		t.Fatal(err)
	}
	eval := cs.newCellEval(cs.sp, caltime.Date(2000, 9, 1))
	if eval.router == nil {
		t.Fatal("default cell evaluator is not on the compiled path")
	}
	mo, scanned, err := cs.viewOf(cs.cubes[0], eval)
	if err != nil {
		t.Fatal(err)
	}
	if scanned == 0 || mo == nil {
		t.Fatalf("view scanned %d rows", scanned)
	}
	if eval.probes == 0 {
		t.Fatal("view did not count router probes")
	}
}
