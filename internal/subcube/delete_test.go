package subcube

import (
	"testing"

	"dimred/internal/core"
	"dimred/internal/dims"
	"dimred/internal/spec"
)

// deletionSpec ages data month -> quarter -> deleted.
func deletionSpec(t *testing.T) (*dims.PaperObject, *spec.Spec) {
	t.Helper()
	p := dims.MustPaperMO()
	env, err := spec.NewEnv(p.Schema, "Time", p.Time)
	if err != nil {
		t.Fatal(err)
	}
	s, err := spec.New(env,
		spec.MustCompileString("a1",
			`aggregate [Time.month, URL.domain] where URL.domain_grp = ".com" and NOW - 12 months < Time.month and Time.month <= NOW - 6 months`, env),
		spec.MustCompileString("a2",
			`aggregate [Time.quarter, URL.domain] where URL.domain_grp = ".com" and Time.quarter <= NOW - 4 quarters`, env),
		spec.MustCompileString("purge",
			`delete where Time.year <= NOW - 4 years`, env),
	)
	if err != nil {
		t.Fatal(err)
	}
	return p, s
}

func TestDeletionActionHasNoCube(t *testing.T) {
	_, s := deletionSpec(t)
	cs, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	// bottom + (month, domain) + (quarter, domain); no all-top cube.
	if len(cs.Cubes()) != 3 {
		t.Fatalf("cubes = %d, want 3", len(cs.Cubes()))
	}
}

func TestDeletionSyncRemovesOldRows(t *testing.T) {
	p, s := deletionSpec(t)
	cs, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.InsertMO(p.MO); err != nil {
		t.Fatal(err)
	}
	// 2002: the 1999 facts are quarter-level, nothing deleted.
	if _, err := cs.Sync(day(t, "2002/6/1")); err != nil {
		t.Fatal(err)
	}
	if cs.DeletedFacts() != 0 {
		t.Errorf("deleted = %d at 2002", cs.DeletedFacts())
	}
	// 2004: the 1999 and 2000 facts fall past NOW - 4 years.
	if _, err := cs.Sync(day(t, "2004/6/1")); err != nil {
		t.Fatal(err)
	}
	if cs.DeletedFacts() != 7 {
		t.Errorf("deleted = %d at 2004, want 7", cs.DeletedFacts())
	}
	if cs.TotalRows() != 0 {
		t.Errorf("rows = %d after full deletion", cs.TotalRows())
	}
	// Reduce agrees: the functional semantics drops the same facts.
	res, err := core.Reduce(s, p.MO, day(t, "2004/6/1"))
	if err != nil {
		t.Fatal(err)
	}
	if res.MO.Len() != 0 {
		t.Errorf("Reduce kept %d facts", res.MO.Len())
	}
	if got := len(res.Deleted["purge"]); got != 7 {
		t.Errorf("Reduce.Deleted = %d, want 7", got)
	}
}

func TestDeletionQueriesSkipDoomedRowsWhenStale(t *testing.T) {
	// In the un-synchronized state, rows already past their deletion
	// time must not appear in query answers.
	p, s := deletionSpec(t)
	cs, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.InsertMO(p.MO); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Sync(day(t, "2002/6/1")); err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery(`aggregate [Time.TOP, URL.TOP]`, s.Env())
	// Query far in the future without synchronizing: everything doomed.
	res, err := cs.Evaluate(q, day(t, "2005/1/1"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Errorf("stale query returned %d facts, want 0:\n%s", res.Len(), res.Dump())
	}
	// At the sync time itself the data is all present.
	res, err = cs.Evaluate(q, day(t, "2002/6/1"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Measure(0, 1) != 4165 {
		t.Errorf("synced query = %v", res.Dump())
	}
}

func TestDeletionApplySpecDropsRows(t *testing.T) {
	p, s := deletionSpec(t)
	cs, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.InsertMO(p.MO); err != nil {
		t.Fatal(err)
	}
	at := day(t, "2004/6/1")
	// ApplySpec at a time past the deletion horizon must drop the rows
	// during the rebuild.
	if err := cs.ApplySpec(s, at); err != nil {
		t.Fatal(err)
	}
	if cs.TotalRows() != 0 || cs.DeletedFacts() != 7 {
		t.Errorf("rows=%d deleted=%d after ApplySpec", cs.TotalRows(), cs.DeletedFacts())
	}
}
