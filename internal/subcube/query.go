package subcube

import (
	"fmt"
	"sync"

	"dimred/internal/caltime"
	"dimred/internal/expr"
	"dimred/internal/mdm"
	"dimred/internal/obs"
	"dimred/internal/query"
	"dimred/internal/spec"
	"dimred/internal/storage"
)

// Query is an OLAP query against a cube set: an optional selection
// predicate followed by aggregate formation to the target granularity,
// i.e. α[Target](σ[Pred](O)).
type Query struct {
	Pred   *query.Predicate // nil selects everything
	Target mdm.Granularity
	Sel    query.Approach
	Agg    query.AggApproach
}

// ParseQuery builds a Query from the action-specification syntax, e.g.
// "aggregate [Time.month, URL.domain_grp] where 1999/6 < Time.month and
// Time.month <= 2000/5", with the paper's default approaches
// (conservative selection, availability aggregation).
func ParseQuery(src string, env *spec.Env) (Query, error) {
	parsed, err := expr.ParseAction(src)
	if err != nil {
		return Query{}, fmt.Errorf("subcube: ParseQuery: %w", err)
	}
	refs := make([]string, len(parsed.Targets))
	for i, r := range parsed.Targets {
		refs[i] = r.String()
	}
	target, err := env.Schema.ParseGranularity(refs)
	if err != nil {
		return Query{}, fmt.Errorf("subcube: ParseQuery: %w", err)
	}
	var pred *query.Predicate
	if parsed.Pred != nil {
		if b, ok := parsed.Pred.(expr.Bool); !ok || !b.Value {
			pred, err = query.CompilePred(parsed.Pred, env)
			if err != nil {
				return Query{}, fmt.Errorf("subcube: ParseQuery: %w", err)
			}
		}
	}
	return Query{Pred: pred, Target: target, Sel: query.Conservative, Agg: query.Availability}, nil
}

// ViewEligible reports whether the query may be answered from a
// materialized rollup view: no selection predicate (predicate
// evaluation is granularity-sensitive — the conservative, liberal and
// weighted approaches disagree exactly on rows a view has pre-folded
// away) and the paper's default availability aggregation (the other
// approaches derive their effective target or per-row weights from the
// base fact set, which a pre-rolled view no longer exposes).
func (q Query) ViewEligible() bool {
	return q.Pred == nil && q.Agg == query.Availability
}

// MustParseQuery panics on error; for constant query strings.
func MustParseQuery(src string, env *spec.Env) Query {
	q, err := ParseQuery(src, env)
	if err != nil {
		panic(err)
	}
	return q
}

// Evaluate runs the query at time t following Section 7.3: each subcube
// is evaluated independently and in parallel; when the cube set is not
// synchronized at t, each subcube's input is first replaced by its
// synchronized view α[G_i]σ[P_i](K_i ∪ parents(K_i)) — the rows, from
// the cube and its parent cubes, whose current aggregation level is G_i,
// rolled up to G_i. The disjoint subresults are then combined by one
// final distributive aggregation to the query's target granularity.
func (cs *CubeSet) Evaluate(q Query, t caltime.Day) (*mdm.MO, error) {
	return cs.EvaluateTraced(q, t, nil)
}

// EvaluateTraced runs the query like Evaluate and additionally fills tr
// (when non-nil) with which subcubes were consulted or zone-map-pruned,
// rows scanned versus kept per cube, and per-stage durations. Each
// parallel goroutine writes only its own pre-sized trace entry and
// publishes engine counters with single atomic adds, so tracing adds no
// locks to the scan path.
func (cs *CubeSet) EvaluateTraced(q Query, t caltime.Day, tr *obs.Trace) (*mdm.MO, error) {
	if len(q.Target) != cs.env.Schema.NumDims() {
		return nil, fmt.Errorf("subcube: Evaluate: target granularity needs %d categories", cs.env.Schema.NumDims())
	}
	clk := cs.met.Clock()
	start := clk.Now()
	synced := cs.synced && cs.lastSync == t
	cs.met.Queries.Inc()
	if tr != nil {
		tr.Synced = synced
		tr.Cubes = make([]obs.CubeTrace, len(cs.cubes))
		for i, c := range cs.cubes {
			tr.Cubes[i] = obs.CubeTrace{Cube: c.id, Granularity: cs.env.Schema.GranString(c.gran)}
		}
	}

	// Zone-map pruning: a cube whose day-range hull cannot intersect the
	// predicate's time bounds contributes nothing (sound for every
	// approach — the hull covers all drill-down days of every row).
	// Pruning applies only in the synchronized state; a stale cube may
	// still feed rows into other cubes' views.
	var predLo, predHi caltime.Day
	pruneByTime := false
	if synced && q.Pred != nil {
		predLo, predHi, pruneByTime = q.Pred.TimeBounds(t)
	}

	// Unsynchronized queries rebuild each cube's view per row; compile
	// the specification once and share the day-pinned router across the
	// per-cube goroutines (each carries its own probe counter).
	var baseEval *cellEval
	if !synced {
		baseEval = cs.newCellEval(cs.sp, t)
	}

	subresults := make([]*mdm.MO, len(cs.cubes))
	errs := make([]error, len(cs.cubes))
	evals := make([]*cellEval, len(cs.cubes))
	var wg sync.WaitGroup
	for i, c := range cs.cubes {
		if pruneByTime {
			if lo, hi, ok := c.DayRange(); ok && (hi < predLo || lo > predHi) {
				cs.met.CubesPruned.Inc()
				if tr != nil {
					tr.Cubes[i].Pruned = true
				}
				continue // the cube cannot contribute
			}
		}
		cs.met.CubesConsulted.Inc()
		wg.Add(1)
		go func(i int, c *Cube) {
			defer wg.Done()
			cubeStart := clk.Now()
			var mo *mdm.MO
			var weights []float64
			var err error
			scanned, kept := 0, 0
			if synced {
				// Fast path: evaluate the predicate during the cube scan
				// and materialize only the selected rows (with their
				// certainty weights under the weighted approach).
				mo, weights, scanned, kept, err = cs.selectedMO(c, q, t)
			} else {
				e := &cellEval{router: baseEval.router, sp: baseEval.sp, t: baseEval.t}
				evals[i] = e
				mo, scanned, err = cs.viewOf(c, e)
				if err == nil && q.Pred != nil {
					if q.Sel == query.Weighted {
						mo, weights, err = query.SelectWeighted(mo, q.Pred, t)
					} else {
						mo, err = query.Select(mo, q.Pred, t, q.Sel)
					}
				}
				if err == nil {
					kept = mo.Len()
				}
			}
			cs.met.RowsScanned.Add(int64(scanned))
			cs.met.RowsSelected.Add(int64(kept))
			if tr != nil {
				e := &tr.Cubes[i]
				e.FastPath = synced
				e.RowsScanned = scanned
				e.RowsKept = kept
				e.Duration = clk.Since(cubeStart)
			}
			if err != nil {
				errs[i] = err
				return
			}
			if weights != nil {
				// Weighted approach: scale each row's SUM contributions
				// by its certainty weight while folding to the target
				// (Definition 5/6 expected values). The pre-scaled
				// subresult stays distributive, so the final cross-cube
				// aggregation below needs no weights.
				subresults[i], errs[i] = query.AggregateWeighted(mo, weights, q.Target, q.Agg)
			} else {
				subresults[i], errs[i] = query.Aggregate(mo, q.Target, q.Agg)
			}
		}(i, c)
	}
	wg.Wait()
	scanDone := clk.Now()
	if tr != nil {
		tr.AddStage("parallel subcube scan", scanDone.Sub(start))
	}
	var probes int64
	for _, e := range evals {
		if e != nil {
			probes += e.probes
		}
	}
	if probes > 0 {
		cs.met.ProgramProbes.Add(probes)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Union the disjoint subresults, then a final aggregation merges
	// cells that were split across subcubes (fact_45 + fact_9 →
	// fact_459 in Figure 8) — sound because the default aggregate
	// functions are distributive.
	union := mdm.NewMO(cs.env.Schema)
	for _, sub := range subresults {
		if sub == nil {
			continue // cube pruned by the zone map
		}
		for f := 0; f < sub.Len(); f++ {
			fid := mdm.FactID(f)
			if _, err := union.AddFactAt(sub.Refs(fid), sub.Measures(fid), sub.BaseCount(fid), ""); err != nil {
				return nil, fmt.Errorf("subcube: Evaluate: %w", err)
			}
		}
	}
	out, err := query.Aggregate(union, q.Target, q.Agg)
	now := clk.Now()
	cs.met.QueryDuration.Observe(now.Sub(start))
	if tr != nil {
		tr.AddStage("combine + final aggregate", now.Sub(scanDone))
		tr.Total = now.Sub(start)
		if err == nil {
			tr.ResultCells = out.Len()
		}
	}
	return out, err
}

// selectedMO materializes the rows of cube c that satisfy the query's
// predicate (under its selection approach) as an MO, evaluating the
// predicate against storage rows directly. Under the weighted approach
// it also returns each kept row's certainty weight, aligned with the
// result MO's fact ids (cube cells are unique, so AddFactAt never
// merges and the alignment holds). It reports how many rows the scan
// visited and how many survived the predicate, for the observability
// layer.
func (cs *CubeSet) selectedMO(c *Cube, q Query, t caltime.Day) (mo *mdm.MO, weights []float64, scanned, kept int, err error) {
	schema := cs.env.Schema
	mo = mdm.NewMO(schema)
	mo.SetFloors(c.gran)
	refs := make([]mdm.ValueID, schema.NumDims())
	meas := make([]float64, len(schema.Measures))
	var prep *query.Prepared
	if q.Pred != nil {
		prep = q.Pred.Prepare(t)
	}
	var failed error
	c.store.Scan(func(r storage.RowID) bool {
		scanned++
		c.store.Refs(r, refs)
		if prep != nil {
			cons, lib, w := prep.EvaluateCell(query.Cell(refs))
			keep := cons
			switch q.Sel {
			case query.Liberal:
				keep = lib
			case query.Weighted:
				// Match SelectWeighted: keep rows that might satisfy,
				// carrying the certainty out to the aggregation fold.
				keep = lib && w > 0
			}
			if !keep {
				return true
			}
			if q.Sel == query.Weighted {
				weights = append(weights, w)
			}
		}
		kept++
		for j := range meas {
			meas[j] = c.store.Measure(r, j)
		}
		if _, err := mo.AddFactAt(refs, meas, c.store.Base(r), ""); err != nil {
			failed = err
			return false
		}
		return true
	})
	return mo, weights, scanned, kept, failed
}

// viewOf builds the synchronized view of cube c at the evaluator's day
// from c and its parent cubes: the rows whose current aggregation level
// equals c's granularity, rolled up to it and merged by cell. scanned
// reports the rows visited across the cube and its parents. The
// per-row up/meas scratch is hoisted: MO.AddFactAt copies its inputs.
func (cs *CubeSet) viewOf(c *Cube, e *cellEval) (mo *mdm.MO, scanned int, err error) {
	schema := cs.env.Schema
	mo = mdm.NewMO(schema)
	mo.SetFloors(c.gran)
	index := make(map[string]mdm.FactID)

	sources := append([]*Cube{c}, c.parents...)
	cell := make([]mdm.ValueID, schema.NumDims())
	level := make(mdm.Granularity, schema.NumDims())
	up := make([]mdm.ValueID, schema.NumDims())
	meas := make([]float64, len(schema.Measures))
	var keyBuf []byte
	for _, src := range sources {
		var failed error
		src.store.Scan(func(r storage.RowID) bool {
			scanned++
			src.store.Refs(r, cell)
			if e.deletedBy(cell) != nil {
				return true // already past its deletion time
			}
			e.aggLevelInto(cell, level, nil)
			if !schema.GranEq(level, c.gran) {
				return true
			}
			for i, d := range schema.Dims {
				up[i] = d.AncestorAt(cell[i], level[i])
				if up[i] == mdm.NoValue {
					failed = fmt.Errorf("subcube: view: value %s has no ancestor at %s",
						d.ValueName(cell[i]), d.Category(level[i]).Name)
					return false
				}
			}
			keyBuf = keyBuf[:0]
			for _, v := range up {
				keyBuf = append(keyBuf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
			}
			if fid, ok := index[string(keyBuf)]; ok {
				for j, m := range schema.Measures {
					merged := m.Agg.Merge(mo.Measure(fid, j), src.store.Measure(r, j))
					mo.SetMeasure(fid, j, merged)
				}
				mo.AddBaseCount(fid, src.store.Base(r))
				return true
			}
			for j := range meas {
				meas[j] = src.store.Measure(r, j)
			}
			fid, err := mo.AddFactAt(up, meas, src.store.Base(r), "")
			if err != nil {
				failed = err
				return false
			}
			index[string(keyBuf)] = fid
			return true
		})
		if failed != nil {
			// Report the rows actually visited even on failure, so the
			// RowsScanned counter and per-cube traces stay truthful.
			return nil, scanned, failed
		}
	}
	return mo, scanned, nil
}
