package subcube

import (
	"math"
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/core"
	"dimred/internal/mdm"
	"dimred/internal/query"
	"dimred/internal/spec"
	"dimred/internal/workload"
)

// weightedSetup builds a click stream whose reduced form holds
// month-granularity facts, plus a query whose day-level time bound cuts
// through one of those months — the configuration where the weighted
// approach gives answers strictly between conservative and liberal.
func weightedSetup(t *testing.T) (*workload.ClickObject, *spec.Spec, Query) {
	t.Helper()
	obj, err := workload.BuildClickMO(workload.ClickConfig{
		Seed: 19, Start: caltime.Date(2000, 1, 1),
		Days: 240, ClicksPerDay: 12, Domains: 6, URLsPerDomain: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	env, err := spec.NewEnv(obj.Schema, "Time", obj.Time)
	if err != nil {
		t.Fatal(err)
	}
	s, err := spec.New(env,
		spec.MustCompileString("m", `aggregate [Time.month, URL.domain] where Time.month <= NOW - 2 months`, env),
		spec.MustCompileString("q", `aggregate [Time.quarter, URL.domain_grp] where Time.quarter <= NOW - 3 quarters`, env))
	if err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery(`aggregate [Time.year, URL.domain_grp] where Time.day <= 2000/3/15`, env)
	q.Sel = query.Weighted
	return obj, s, q
}

// cells maps an MO to cell → measures for approximate comparison.
func cells(mo *mdm.MO) map[string][]float64 {
	out := make(map[string][]float64, mo.Len())
	for f := 0; f < mo.Len(); f++ {
		fid := mdm.FactID(f)
		out[mo.CellString(fid)] = append([]float64(nil), mo.Measures(fid)...)
	}
	return out
}

// approxEqualMO compares two MOs cell by cell with a relative
// tolerance: weighted answers sum the same weight-scaled terms in
// different association orders on the engine and oracle paths, so
// exact float equality is not guaranteed.
func approxEqualMO(t *testing.T, label string, got, want *mdm.MO) {
	t.Helper()
	g, w := cells(got), cells(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d result cells, want %d\ngot: %v\nwant: %v", label, len(g), len(w), g, w)
	}
	for cell, wm := range w {
		gm, ok := g[cell]
		if !ok {
			t.Fatalf("%s: missing cell %s", label, cell)
		}
		for j := range wm {
			if !approx(gm[j], wm[j]) {
				t.Fatalf("%s: cell %s measure %d = %v, want %v", label, cell, j, gm[j], wm[j])
			}
		}
	}
}

func approx(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestWeightedQueryMatchesOracle is the headline regression test for
// the weighted approach: the engine's weighted answer must equal
// AggregateWeighted over the weighted selection of the Definition 2
// reduced MO — not the liberal answer the engine silently degraded to
// before the weights were wired through. It checks every engine
// configuration: compiled and interpreted, synchronized and
// unsynchronized.
func TestWeightedQueryMatchesOracle(t *testing.T) {
	obj, s, q := weightedSetup(t)
	at := caltime.Date(2000, 9, 13)

	red, err := core.Reduce(s, obj.MO, at)
	if err != nil {
		t.Fatal(err)
	}
	selW, weights, err := query.SelectWeighted(red.MO, q.Pred, at)
	if err != nil {
		t.Fatal(err)
	}
	want, err := query.AggregateWeighted(selW, weights, q.Target, q.Agg)
	if err != nil {
		t.Fatal(err)
	}

	// The setup must actually exercise fractional weights: the weighted
	// oracle has to differ from the liberal answer, otherwise this test
	// could not catch the weighted→liberal degradation.
	selL, err := query.Select(red.MO, q.Pred, at, query.Liberal)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := query.Aggregate(selL, q.Target, q.Agg)
	if err != nil {
		t.Fatal(err)
	}
	fractional := false
	wc, lc := cells(want), cells(lib)
	for cell, wm := range wc {
		if lm, ok := lc[cell]; ok {
			for j := range wm {
				if !approx(wm[j], lm[j]) {
					fractional = true
				}
			}
		}
	}
	if !fractional {
		t.Fatal("setup produced no fractional weights; weighted equals liberal and the test is vacuous")
	}

	for _, interpret := range []bool{false, true} {
		name := map[bool]string{false: "compiled", true: "interpreted"}[interpret]
		t.Run(name, func(t *testing.T) {
			// Synchronized: the predicate runs against cube rows directly
			// (selectedMO) with per-row certainty weights.
			cs, err := New(s)
			if err != nil {
				t.Fatal(err)
			}
			cs.SetInterpreted(interpret)
			if err := cs.InsertMO(obj.MO); err != nil {
				t.Fatal(err)
			}
			if _, err := cs.Sync(at); err != nil {
				t.Fatal(err)
			}
			synced, err := cs.Evaluate(q, at)
			if err != nil {
				t.Fatal(err)
			}
			approxEqualMO(t, "synced", synced, want)

			// Unsynchronized (last sync in the same significant period):
			// each cube's view is rebuilt per row, then SelectWeighted
			// carries the weights into the fold.
			cs2, err := New(s)
			if err != nil {
				t.Fatal(err)
			}
			cs2.SetInterpreted(interpret)
			if err := cs2.InsertMO(obj.MO); err != nil {
				t.Fatal(err)
			}
			if _, err := cs2.Sync(caltime.Date(2000, 9, 1)); err != nil {
				t.Fatal(err)
			}
			unsynced, err := cs2.Evaluate(q, at)
			if err != nil {
				t.Fatal(err)
			}
			approxEqualMO(t, "unsynced", unsynced, want)
		})
	}
}

// TestWeightedBetweenBounds checks the per-cell ordering the weighted
// approach promises for non-negative SUM measures: conservative ≤
// weighted ≤ liberal, on every target cell, under every engine
// configuration.
func TestWeightedBetweenBounds(t *testing.T) {
	obj, s, q := weightedSetup(t)
	at := caltime.Date(2000, 9, 13)
	for _, interpret := range []bool{false, true} {
		cs, err := New(s)
		if err != nil {
			t.Fatal(err)
		}
		cs.SetInterpreted(interpret)
		if err := cs.InsertMO(obj.MO); err != nil {
			t.Fatal(err)
		}
		if _, err := cs.Sync(at); err != nil {
			t.Fatal(err)
		}
		answers := map[query.Approach]map[string][]float64{}
		for _, ap := range []query.Approach{query.Conservative, query.Weighted, query.Liberal} {
			qa := q
			qa.Sel = ap
			mo, err := cs.Evaluate(qa, at)
			if err != nil {
				t.Fatal(err)
			}
			answers[ap] = cells(mo)
		}
		slack := 1e-9
		for cell, lm := range answers[query.Liberal] {
			wm := answers[query.Weighted][cell]
			cm := answers[query.Conservative][cell] // may be absent: zero
			for j, lv := range lm {
				var cv, wv float64
				if cm != nil {
					cv = cm[j]
				}
				if wm != nil {
					wv = wm[j]
				}
				if cv > wv+slack*math.Abs(cv) || wv > lv+slack*math.Abs(lv) {
					t.Fatalf("interpret=%v cell %s measure %d: conservative %v, weighted %v, liberal %v — ordering violated",
						interpret, cell, j, cv, wv, lv)
				}
			}
		}
		// Every weighted cell must exist liberally (weighted selects a
		// subset of the liberal facts).
		for cell := range answers[query.Weighted] {
			if _, ok := answers[query.Liberal][cell]; !ok {
				t.Fatalf("interpret=%v: weighted produced cell %s the liberal answer lacks", interpret, cell)
			}
		}
	}
}

// TestWeightedTraceCountsKept checks the trace/metric plumbing on the
// weighted synced path: rows kept equals the number of weights used.
func TestWeightedTraceCountsKept(t *testing.T) {
	obj, s, q := weightedSetup(t)
	at := caltime.Date(2000, 9, 13)
	cs, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.InsertMO(obj.MO); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Sync(at); err != nil {
		t.Fatal(err)
	}
	for _, c := range cs.Cubes() {
		mo, weights, scanned, kept, err := cs.selectedMO(c, q, at)
		if err != nil {
			t.Fatal(err)
		}
		if kept != mo.Len() {
			t.Fatalf("cube %d: kept %d rows but materialized %d", c.ID(), kept, mo.Len())
		}
		if len(weights) != kept {
			t.Fatalf("cube %d: %d weights for %d kept rows", c.ID(), len(weights), kept)
		}
		if scanned < kept {
			t.Fatalf("cube %d: scanned %d < kept %d", c.ID(), scanned, kept)
		}
		for i, w := range weights {
			if w <= 0 || w > 1 {
				t.Fatalf("cube %d: weight[%d] = %v outside (0, 1]", c.ID(), i, w)
			}
		}
	}
}
