package subcube

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/core"
	"dimred/internal/dims"
	"dimred/internal/mdm"
	"dimred/internal/query"
	"dimred/internal/spec"
)

func day(t *testing.T, s string) caltime.Day {
	t.Helper()
	d, err := caltime.ParseDay(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// section71Spec is the Section 7.1 example: a1 and a2 of the running
// example plus a3 = α[week, domain] σ[domain = gatech.edu ∧ week <=
// NOW - 36 weeks]. Its subcubes are a_bottom (day, url), (month,
// domain), (quarter, domain) and (week, domain).
func section71Spec(t *testing.T) (*dims.PaperObject, *spec.Spec) {
	t.Helper()
	p := dims.MustPaperMO()
	env, err := spec.NewEnv(p.Schema, "Time", p.Time)
	if err != nil {
		t.Fatal(err)
	}
	a1 := spec.MustCompileString("a1",
		`aggregate [Time.month, URL.domain] where URL.domain_grp = ".com" and NOW - 12 months < Time.month and Time.month <= NOW - 6 months`, env)
	a2 := spec.MustCompileString("a2",
		`aggregate [Time.quarter, URL.domain] where URL.domain_grp = ".com" and Time.quarter <= NOW - 4 quarters`, env)
	a3 := spec.MustCompileString("a3",
		`aggregate [Time.week, URL.domain] where URL.domain = "gatech.edu" and Time.week <= NOW - 36 weeks`, env)
	s, err := spec.New(env, a1, a2, a3)
	if err != nil {
		t.Fatal(err)
	}
	return p, s
}

func TestE12DisjointLayoutAndDAG(t *testing.T) {
	_, s := section71Spec(t)
	cs, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Cubes()) != 4 {
		t.Fatalf("cubes = %d, want 4 (bottom + 3 granularities)", len(cs.Cubes()))
	}
	byGran := map[string]*Cube{}
	for _, c := range cs.Cubes() {
		byGran[s.Env().Schema.GranString(c.Gran())] = c
	}
	bottom := byGran["(Time.day, URL.url)"]
	month := byGran["(Time.month, URL.domain)"]
	quarter := byGran["(Time.quarter, URL.domain)"]
	week := byGran["(Time.week, URL.domain)"]
	if bottom == nil || month == nil || quarter == nil || week == nil {
		t.Fatalf("missing cube granularities: %v", byGran)
	}
	if len(bottom.Actions()) != 0 {
		t.Error("bottom cube should have no actions")
	}
	// Section 7.1: "All new data enters into a_bottom which is the parent
	// of both a1' and a3, while a1' is the parent of a2."
	parentIDs := func(c *Cube) []int {
		var ids []int
		for _, p := range c.Parents() {
			ids = append(ids, p.ID())
		}
		sort.Ints(ids)
		return ids
	}
	if got := parentIDs(month); len(got) != 1 || got[0] != bottom.ID() {
		t.Errorf("month cube parents = %v", got)
	}
	if got := parentIDs(week); len(got) != 1 || got[0] != bottom.ID() {
		t.Errorf("week cube parents = %v", got)
	}
	wantQ := []int{bottom.ID(), month.ID()}
	sort.Ints(wantQ)
	if got := parentIDs(quarter); fmt.Sprint(got) != fmt.Sprint(wantQ) {
		t.Errorf("quarter cube parents = %v, want %v", got, wantQ)
	}
	// The description names the excluded higher action (Eq. 41's
	// transformed predicate excludes a2's region from a1's cube).
	desc := cs.Describe()
	if !strings.Contains(desc, "exclude a2") {
		t.Errorf("Describe missing exclusion:\n%s", desc)
	}
	if !strings.Contains(desc, "[bottom]") {
		t.Errorf("Describe missing bottom marker:\n%s", desc)
	}
}

func TestInsertValidation(t *testing.T) {
	p, s := section71Spec(t)
	cs, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	// Non-bottom insert rejected.
	q4, _ := p.Time.PeriodValue(mustPeriod(t, "1999Q4"))
	cnn, _ := p.URL.ValueByName(p.URL.Domain, "cnn.com")
	if err := cs.Insert([]mdm.ValueID{q4, cnn}, []float64{1, 1, 1, 1}); err == nil {
		t.Error("non-bottom insert accepted")
	}
	if err := cs.Insert([]mdm.ValueID{q4}, []float64{1}); err == nil {
		t.Error("short row accepted")
	}
	if err := cs.InsertMO(p.MO); err != nil {
		t.Fatal(err)
	}
	if cs.TotalRows() != 7 || cs.Cubes()[0].Rows() != 7 {
		t.Errorf("rows = %d (bottom %d)", cs.TotalRows(), cs.Cubes()[0].Rows())
	}
	if cs.TotalBytes() == 0 {
		t.Error("TotalBytes = 0")
	}
}

func mustPeriod(t *testing.T, s string) caltime.Period {
	t.Helper()
	p, err := caltime.ParsePeriod(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// figure78Setup builds the Figure 7/8 configuration: the running
// example's facts plus fact_7 (2000/5/7, cnn health), fact_8 (2000/7/8,
// gatech), fact_9 (2000/1/10, amazon) and fact_10 (2000/4/12, cnn), over
// the spec {cA: cnn 6-12 months → (month, domain), cB: amazon 6-12
// months → (month, url), cC: old .com → (quarter, domain_grp), cD: old
// gatech → (week, domain)}.
func figure78Setup(t *testing.T) (*dims.PaperObject, *spec.Spec, *CubeSet) {
	t.Helper()
	p := dims.MustPaperMO()
	env, err := spec.NewEnv(p.Schema, "Time", p.Time)
	if err != nil {
		t.Fatal(err)
	}
	cA := spec.MustCompileString("cA",
		`aggregate [Time.month, URL.domain] where URL.domain = "cnn.com" and NOW - 4 quarters < Time.quarter and Time.month <= NOW - 6 months`, env)
	cB := spec.MustCompileString("cB",
		`aggregate [Time.month, URL.url] where URL.domain = "amazon.com" and NOW - 4 quarters < Time.quarter and Time.month <= NOW - 6 months`, env)
	cC := spec.MustCompileString("cC",
		`aggregate [Time.quarter, URL.domain_grp] where URL.domain_grp = ".com" and Time.quarter <= NOW - 4 quarters`, env)
	cD := spec.MustCompileString("cD",
		`aggregate [Time.week, URL.domain] where URL.domain = "gatech.edu" and Time.week <= NOW - 36 weeks`, env)
	s, err := spec.New(env, cA, cB, cC, cD)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.InsertMO(p.MO); err != nil {
		t.Fatal(err)
	}
	extra := []struct {
		day, url string
		dwell    float64
	}{
		{"2000/5/7", "http://www.cnn.com/health", 100}, // fact_7
		{"2000/7/8", "http://www.cc.gatech.edu/", 200}, // fact_8
		{"2000/1/10", dims.PaperURLs[3], 300},          // fact_9 (amazon)
		{"2000/4/12", "http://www.cnn.com/", 400},      // fact_10
	}
	for _, e := range extra {
		dv := p.Time.EnsureDay(day(t, e.day))
		uv := p.URL.MustEnsureURL(e.url)
		if err := cs.Insert([]mdm.ValueID{dv, uv}, []float64{1, e.dwell, 1, 10}); err != nil {
			t.Fatal(err)
		}
	}
	return p, s, cs
}

// cubeCells renders a cube's rows as "cell|measures" lines.
func cubeCells(t *testing.T, schema *mdm.Schema, c *Cube) []string {
	t.Helper()
	mo, err := c.MO(schema)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for f := 0; f < mo.Len(); f++ {
		fid := mdm.FactID(f)
		out = append(out, fmt.Sprintf("%s | dwell=%v", mo.CellString(fid), mo.Measure(fid, 1)))
	}
	sort.Strings(out)
	return out
}

func TestE13SynchronizationFigure7(t *testing.T) {
	p, s, cs := figure78Setup(t)
	schema := s.Env().Schema

	// Synchronize at 2000/12/5 (Figure 7, upper half).
	if _, err := cs.Sync(day(t, "2000/12/5")); err != nil {
		t.Fatal(err)
	}
	byGran := map[string]*Cube{}
	for _, c := range cs.Cubes() {
		byGran[schema.GranString(c.Gran())] = c
	}
	k1 := byGran["(Time.month, URL.domain)"]
	k2 := byGran["(Time.quarter, URL.domain_grp)"]
	k4 := byGran["(Time.month, URL.url)"]

	// K2 holds the merged 1999 facts: one row (1999Q4, .com).
	k2Cells := cubeCells(t, schema, k2)
	if len(k2Cells) != 1 || !strings.HasPrefix(k2Cells[0], "1999Q4, .com") {
		t.Errorf("K2 = %v", k2Cells)
	}
	// K1 holds cnn facts 6-12 months old: (2000/1, cnn.com) from
	// fact_4+fact_5, (2000/4, cnn.com) from fact_10, and (2000/5,
	// cnn.com) from fact_7 (7 months old at 2000/12/5).
	k1Cells := cubeCells(t, schema, k1)
	if len(k1Cells) != 3 {
		t.Errorf("K1 = %v", k1Cells)
	}
	// K4 holds the amazon fact_9 at (2000/1, url).
	k4Cells := cubeCells(t, schema, k4)
	if len(k4Cells) != 1 || !strings.Contains(k4Cells[0], "2000/1, http://www.amazon.com") {
		t.Errorf("K4 = %v", k4Cells)
	}

	// One month later (Figure 7, lower half): fact_45 and fact_9 migrate
	// into K2 and merge as fact_459 (2000Q1, .com).
	moved, err := cs.Sync(day(t, "2001/1/5"))
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Error("nothing migrated")
	}
	k2Cells = cubeCells(t, schema, k2)
	if len(k2Cells) != 2 {
		t.Fatalf("K2 after month = %v", k2Cells)
	}
	found := false
	for _, c := range k2Cells {
		// fact_459 = fact_4 + fact_5 + fact_9: dwell 654+301+300 = 1255.
		if strings.HasPrefix(c, "2000Q1, .com") && strings.Contains(c, "dwell=1255") {
			found = true
		}
	}
	if !found {
		t.Errorf("fact_459 missing from K2: %v", k2Cells)
	}
	if len(cubeCells(t, schema, k4)) != 0 {
		t.Error("K4 should be empty after migration")
	}
	// fact_10 (2000/4) remains in K1.
	k1Cells = cubeCells(t, schema, k1)
	joined := strings.Join(k1Cells, "\n")
	if !strings.Contains(joined, "2000/4, cnn.com") {
		t.Errorf("K1 lost fact_10: %v", k1Cells)
	}
	_ = p
}

// canon renders an MO's facts as sorted "cell|measures" lines, ignoring
// fact names, so results from different engines can be compared.
func canon(mo *mdm.MO) string {
	var lines []string
	for f := 0; f < mo.Len(); f++ {
		fid := mdm.FactID(f)
		var b strings.Builder
		b.WriteString(mo.CellString(fid))
		for j := range mo.Schema().Measures {
			fmt.Fprintf(&b, " | %v", mo.Measure(fid, j))
		}
		lines = append(lines, b.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func TestE14QueryPlanFigure8(t *testing.T) {
	// Figure 8: Q = α[month, domain_grp](σ[1999/6 < month <= 2000/5](O))
	// over the five synchronized subcubes at 2000/10/20.
	_, s, cs := figure78Setup(t)
	at := day(t, "2000/10/20")
	if _, err := cs.Sync(at); err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery(
		`aggregate [Time.month, URL.domain_grp] where 1999/6 < Time.month and Time.month <= 2000/5`, s.Env())
	res, err := cs.Evaluate(q, at)
	if err != nil {
		t.Fatal(err)
	}
	// Expected S5: fact_0312 (1999Q4, .com), fact_459 (2000/1, .com),
	// fact_10 (2000/4, .com), fact_7 (2000/5, .com), fact_6 (2000/1,
	// .edu); fact_8 (2000/7) is excluded by the selection.
	want := map[string]float64{
		"1999Q4, .com": 677 + 2335 + 154 + 12, // 3178
		"2000/1, .com": 654 + 301 + 300,       // fact_45 + fact_9 = 1255
		"2000/4, .com": 400,
		"2000/5, .com": 100,
		"2000/1, .edu": 32,
	}
	if res.Len() != len(want) {
		t.Fatalf("result has %d facts, want %d:\n%s", res.Len(), len(want), res.Dump())
	}
	for f := 0; f < res.Len(); f++ {
		fid := mdm.FactID(f)
		cell := res.CellString(fid)
		w, ok := want[cell]
		if !ok {
			t.Errorf("unexpected result cell %q", cell)
			continue
		}
		if got := res.Measure(fid, 1); got != w {
			t.Errorf("cell %q dwell = %v, want %v", cell, got, w)
		}
	}
}

func TestE15UnsynchronizedQueryFigure9(t *testing.T) {
	// Figure 9: the cubes were last synchronized at 2000/10/20; the
	// query runs at 2001/1/20. The un-synchronized evaluation must match
	// what a fresh synchronization would produce.
	_, s, cs := figure78Setup(t)
	if _, err := cs.Sync(day(t, "2000/10/20")); err != nil {
		t.Fatal(err)
	}
	at := day(t, "2001/1/20")
	q := MustParseQuery(
		`aggregate [Time.month, URL.domain_grp] where 1999/6 < Time.month and Time.month <= 2000/5`, s.Env())

	// Evaluate while stale (un-synchronized path).
	stale, err := cs.Evaluate(q, at)
	if err != nil {
		t.Fatal(err)
	}
	// Now synchronize and evaluate again (synchronized path).
	if _, err := cs.Sync(at); err != nil {
		t.Fatal(err)
	}
	fresh, err := cs.Evaluate(q, at)
	if err != nil {
		t.Fatal(err)
	}
	if canon(stale) != canon(fresh) {
		t.Errorf("un-synchronized evaluation differs:\nstale:\n%s\nfresh:\n%s", canon(stale), canon(fresh))
	}
	if stale.Len() == 0 {
		t.Error("empty result")
	}
}

func TestS5EngineMatchesDefinition2(t *testing.T) {
	// The subcube engine must agree with the Definition 2 semantics
	// (core.Reduce) on query answers at every time point.
	p, s := section71Spec(t)
	cs, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.InsertMO(p.MO); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`aggregate [Time.quarter, URL.domain_grp]`,
		`aggregate [Time.month, URL.domain] where URL.domain_grp = ".com"`,
		`aggregate [Time.year, URL.TOP]`,
		`aggregate [Time.month, URL.domain] where Time.month <= 2000/1`,
	}
	for _, at := range []string{"2000/4/5", "2000/6/5", "2000/11/5", "2001/6/1", "2002/3/1"} {
		tt := day(t, at)
		if _, err := cs.Sync(tt); err != nil {
			t.Fatal(err)
		}
		red, err := core.Reduce(s, p.MO, tt)
		if err != nil {
			t.Fatal(err)
		}
		for _, qsrc := range queries {
			q := MustParseQuery(qsrc, s.Env())
			engine, err := cs.Evaluate(q, tt)
			if err != nil {
				t.Fatal(err)
			}
			var sel *mdm.MO = red.MO
			if q.Pred != nil {
				sel, err = query.Select(red.MO, q.Pred, tt, query.Conservative)
				if err != nil {
					t.Fatal(err)
				}
			}
			direct, err := query.Aggregate(sel, q.Target, query.Availability)
			if err != nil {
				t.Fatal(err)
			}
			if canon(engine) != canon(direct) {
				t.Errorf("at %s, query %q:\nengine:\n%s\ndirect:\n%s",
					at, qsrc, canon(engine), canon(direct))
			}
		}
	}
}

func TestApplySpecRebuild(t *testing.T) {
	// Section 7.2's infrequent synchronization: change the spec, rebuild
	// the cubes, and verify totals are conserved and the layout matches
	// the new spec.
	p, s := section71Spec(t)
	cs, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.InsertMO(p.MO); err != nil {
		t.Fatal(err)
	}
	at := day(t, "2000/11/5")
	if _, err := cs.Sync(at); err != nil {
		t.Fatal(err)
	}
	totalBefore := totalDwell(t, cs)

	// New spec: additionally collapse old .com data to (year, domain).
	// (The .com restriction keeps a4 NonCrossing with a3, whose week
	// target is incomparable with year.)
	env := s.Env()
	a4 := spec.MustCompileString("a4",
		`aggregate [Time.year, URL.domain] where URL.domain_grp = ".com" and Time.year <= NOW - 3 years`, env)
	if err := s.Insert(a4); err != nil {
		t.Fatal(err)
	}
	if err := cs.ApplySpec(s, at); err != nil {
		t.Fatal(err)
	}
	if len(cs.Cubes()) != 5 {
		t.Errorf("cubes after spec change = %d, want 5", len(cs.Cubes()))
	}
	if got := totalDwell(t, cs); got != totalBefore {
		t.Errorf("dwell total changed: %v -> %v", totalBefore, got)
	}
	// Later, the old facts collapse into the year cube.
	later := day(t, "2003/1/1")
	if _, err := cs.Sync(later); err != nil {
		t.Fatal(err)
	}
	year := cs.byGran[granKey(mustGran(t, env, "Time.year", "URL.domain"))]
	if year == nil || year.Rows() == 0 {
		t.Error("year cube empty after aging")
	}
}

func totalDwell(t *testing.T, cs *CubeSet) float64 {
	t.Helper()
	var total float64
	for _, c := range cs.Cubes() {
		mo, err := c.MO(cs.Spec().Env().Schema)
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < mo.Len(); f++ {
			total += mo.Measure(mdm.FactID(f), 1)
		}
	}
	return total
}

func mustGran(t *testing.T, env *spec.Env, refs ...string) mdm.Granularity {
	t.Helper()
	g, err := env.Schema.ParseGranularity(refs)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestParseQueryErrors(t *testing.T) {
	_, s := section71Spec(t)
	bad := []string{
		`aggregate [Time.month]`,
		`aggregate [Time.month, URL.domain] where Shop.x = "y"`,
		`garbage`,
	}
	for _, src := range bad {
		if _, err := ParseQuery(src, s.Env()); err == nil {
			t.Errorf("ParseQuery(%q) succeeded", src)
		}
	}
	// Evaluate with a malformed target.
	cs, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Evaluate(Query{Target: mdm.Granularity{0}}, 0); err == nil {
		t.Error("short target accepted")
	}
}

func TestLateArrivalsFlowThroughBottom(t *testing.T) {
	// Old data bulk-loaded after synchronization must aggregate directly
	// from the bottom cube on the next sync.
	p, s := section71Spec(t)
	cs, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	at := day(t, "2000/11/5")
	if _, err := cs.Sync(at); err != nil {
		t.Fatal(err)
	}
	// A late 1999 cnn click.
	dv := p.Time.EnsureDay(day(t, "1999/12/20"))
	uv := p.URL.MustEnsureURL("http://www.cnn.com/")
	if err := cs.Insert([]mdm.ValueID{dv, uv}, []float64{1, 50, 1, 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Sync(at); err != nil {
		t.Fatal(err)
	}
	quarter := cs.byGran[granKey(mustGran(t, s.Env(), "Time.quarter", "URL.domain"))]
	if quarter.Rows() != 1 {
		t.Errorf("quarter cube rows = %d, want 1", quarter.Rows())
	}
	if cs.Cubes()[0].Rows() != 0 {
		t.Errorf("bottom cube rows = %d, want 0", cs.Cubes()[0].Rows())
	}
}
