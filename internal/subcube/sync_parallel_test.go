package subcube

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/mdm"
	"dimred/internal/spec"
	"dimred/internal/storage"
	"dimred/internal/workload"
)

// syncTestSpec is the click spec the parallel-apply tests run under:
// two aggregation stages plus a deletion action, so synchronization
// exercises cube→cube migration chains and the delete path.
func syncTestSpec(t testing.TB, env *spec.Env) *spec.Spec {
	t.Helper()
	s, err := spec.New(env,
		spec.MustCompileString("m", `aggregate [Time.month, URL.domain] where Time.month <= NOW - 2 months`, env),
		spec.MustCompileString("q", `aggregate [Time.quarter, URL.domain_grp] where Time.quarter <= NOW - 4 quarters`, env),
		spec.MustCompileString("del", `delete where Time.year <= NOW - 2 years`, env))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func syncTestObj(t testing.TB, seed int64) (*workload.ClickObject, *spec.Env) {
	t.Helper()
	obj, err := workload.BuildClickMO(workload.ClickConfig{
		Seed: seed, Start: caltime.Date(2000, 1, 1), Days: 150,
		ClicksPerDay: 8, Domains: 12, URLsPerDomain: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	env, err := spec.NewEnv(obj.Schema, "Time", obj.Time)
	if err != nil {
		t.Fatal(err)
	}
	return obj, env
}

// dumpCubes renders every live row of every cube. With canonical set,
// rows are sorted within each cube so dumps compare physical contents
// independent of row order; without it the dump also pins the physical
// row order.
func dumpCubes(cs *CubeSet, canonical bool) string {
	schema := cs.env.Schema
	var all []string
	for _, c := range cs.cubes {
		refs := make([]mdm.ValueID, schema.NumDims())
		var rows []string
		c.store.Scan(func(r storage.RowID) bool {
			c.store.Refs(r, refs)
			var b strings.Builder
			fmt.Fprintf(&b, "K%d|%v|", c.id, refs)
			for j := range schema.Measures {
				fmt.Fprintf(&b, "%g,", c.store.Measure(r, j))
			}
			fmt.Fprintf(&b, "|%d", c.store.Base(r))
			rows = append(rows, b.String())
			return true
		})
		if canonical {
			sort.Strings(rows)
		}
		all = append(all, rows...)
	}
	return strings.Join(all, "\n")
}

// syncDays is the evaluation-day ladder the determinism tests sync
// through: it drives rows bottom→month, month→quarter, and finally
// into the deletion window.
var syncDays = []caltime.Day{
	caltime.Date(2000, 4, 1),
	caltime.Date(2000, 9, 1),
	caltime.Date(2001, 6, 1),
	caltime.Date(2002, 8, 1),
}

// TestSyncCompiledMatchesInterpreted: the compiled parallel Sync and
// the interpreted serial Sync must produce identical cube contents,
// migration counts and deletion totals through a whole ladder of
// synchronization days.
func TestSyncCompiledMatchesInterpreted(t *testing.T) {
	obj, env := syncTestObj(t, 21)
	s := syncTestSpec(t, env)

	compiled, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	interpreted, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	interpreted.SetInterpreted(true)
	if err := compiled.InsertMO(obj.MO); err != nil {
		t.Fatal(err)
	}
	if err := interpreted.InsertMO(obj.MO); err != nil {
		t.Fatal(err)
	}

	for _, at := range syncDays {
		mc, err := compiled.Sync(at)
		if err != nil {
			t.Fatal(err)
		}
		mi, err := interpreted.Sync(at)
		if err != nil {
			t.Fatal(err)
		}
		if mc != mi {
			t.Fatalf("sync at %v: compiled moved %d rows, interpreted %d", at, mc, mi)
		}
		if got, want := dumpCubes(compiled, true), dumpCubes(interpreted, true); got != want {
			t.Fatalf("sync at %v: cube contents diverge\ncompiled:\n%s\ninterpreted:\n%s", at, got, want)
		}
		if compiled.DeletedFacts() != interpreted.DeletedFacts() {
			t.Fatalf("sync at %v: compiled deleted %d facts, interpreted %d",
				at, compiled.DeletedFacts(), interpreted.DeletedFacts())
		}
	}
	if compiled.DeletedFacts() == 0 {
		t.Fatal("deletion window never fired; the ladder is too short to exercise the delete path")
	}
}

// TestSyncShuffledInsertDeterminism: inserting the same facts in a
// shuffled order must leave the same cube contents after the compiled
// parallel Sync — the Group_high fold and the sharded apply phase may
// not depend on arrival order.
func TestSyncShuffledInsertDeterminism(t *testing.T) {
	obj, env := syncTestObj(t, 22)
	s := syncTestSpec(t, env)

	n := obj.MO.Len()
	perm := rand.New(rand.NewSource(5)).Perm(n)

	ordered, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	shuffled, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < n; f++ {
		if err := ordered.Insert(obj.MO.Refs(mdm.FactID(f)), obj.MO.Measures(mdm.FactID(f))); err != nil {
			t.Fatal(err)
		}
		g := mdm.FactID(perm[f])
		if err := shuffled.Insert(obj.MO.Refs(g), obj.MO.Measures(g)); err != nil {
			t.Fatal(err)
		}
	}
	for _, at := range syncDays {
		if _, err := ordered.Sync(at); err != nil {
			t.Fatal(err)
		}
		if _, err := shuffled.Sync(at); err != nil {
			t.Fatal(err)
		}
		if got, want := dumpCubes(shuffled, true), dumpCubes(ordered, true); got != want {
			t.Fatalf("sync at %v: shuffled insert order changed cube contents", at)
		}
	}
}

// TestSyncGOMAXPROCSDeterminism: the parallel apply phase must be
// schedule-independent — syncing identical cube sets under
// GOMAXPROCS=1 and GOMAXPROCS=4 produces byte-identical dumps
// including physical row order.
func TestSyncGOMAXPROCSDeterminism(t *testing.T) {
	obj, env := syncTestObj(t, 23)
	s := syncTestSpec(t, env)

	dumps := make([]string, 2)
	for i, procs := range []int{1, 4} {
		cs, err := New(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := cs.InsertMO(obj.MO); err != nil {
			t.Fatal(err)
		}
		prev := runtime.GOMAXPROCS(procs)
		for _, at := range syncDays {
			if _, err := cs.Sync(at); err != nil {
				runtime.GOMAXPROCS(prev)
				t.Fatal(err)
			}
		}
		runtime.GOMAXPROCS(prev)
		dumps[i] = dumpCubes(cs, false)
	}
	if dumps[0] != dumps[1] {
		t.Fatal("cube contents depend on GOMAXPROCS")
	}
}

// TestSyncProgramCounters: a compiled sync compiles exactly one
// program per round and publishes its per-row probes; the interpreted
// path touches neither counter.
func TestSyncProgramCounters(t *testing.T) {
	obj, env := syncTestObj(t, 24)
	// A plain (non-time) URL restriction gives the program a static
	// bitset mask, so the byte gauge is exercised too; time-only specs
	// legitimately report zero compile-time bitset bytes.
	s, err := spec.New(env,
		spec.MustCompileString("m", `aggregate [Time.month, URL.domain] where URL.domain_grp = ".com" and Time.month <= NOW - 2 months`, env),
		spec.MustCompileString("del", `delete where Time.year <= NOW - 2 years`, env))
	if err != nil {
		t.Fatal(err)
	}
	cs, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.InsertMO(obj.MO); err != nil {
		t.Fatal(err)
	}

	before := cs.Metrics().Snapshot()
	if _, err := cs.Sync(caltime.Date(2000, 9, 1)); err != nil {
		t.Fatal(err)
	}
	delta := cs.Metrics().Snapshot().Sub(before)
	if delta.ProgramCompiles != 1 {
		t.Fatalf("compiled sync: ProgramCompiles = %d, want 1", delta.ProgramCompiles)
	}
	if delta.ProgramProbes == 0 {
		t.Fatal("compiled sync: ProgramProbes = 0, want > 0")
	}
	if delta.BitsetBytes <= 0 {
		t.Fatalf("compiled sync: BitsetBytes = %d, want > 0", delta.BitsetBytes)
	}

	cs.SetInterpreted(true)
	before = cs.Metrics().Snapshot()
	if _, err := cs.Sync(caltime.Date(2000, 10, 1)); err != nil {
		t.Fatal(err)
	}
	delta = cs.Metrics().Snapshot().Sub(before)
	if delta.ProgramCompiles != 0 || delta.ProgramProbes != 0 {
		t.Fatalf("interpreted sync bumped program counters: compiles=%d probes=%d",
			delta.ProgramCompiles, delta.ProgramProbes)
	}
}
