// Package subcube implements the paper's Section 7 strategy for
// realizing data reduction on standard warehouse technology: the action
// set is transformed into disjoint actions grouped by identical target
// granularity, each group backed by one physical subcube (a fact table
// at a fixed granularity), plus one subcube at the bottom granularity
// that receives all new data. As NOW advances, synchronization migrates
// rows along the parent→child DAG, aggregating them into coarser
// subcubes; queries evaluate per subcube — in parallel — and combine the
// disjoint subresults with one final distributive aggregation, in both
// the synchronized and the un-synchronized state (Section 7.3).
package subcube

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"dimred/internal/caltime"
	"dimred/internal/mdm"
	"dimred/internal/obs"
	"dimred/internal/spec"
	"dimred/internal/specexec"
	"dimred/internal/storage"
)

// Cube is one physical subcube: a fact table at a fixed granularity with
// a cell index for in-place aggregation, plus a day-range zone map used
// to skip the cube for time-selective queries. The zone map is
// conservative: deletes and migrations never shrink it, so it can only
// over-approximate the live range.
type Cube struct {
	id   int
	gran mdm.Granularity
	//dimred:shared compiled actions are immutable after spec validation; every clone shares them
	actions []*spec.Action // actions targeting this granularity (empty for the bottom cube)
	store   *storage.Store
	index   *cellIndex
	parents []*Cube

	dayLo, dayHi caltime.Day
	hasRange     bool
	timeUnbound  bool // the cube's time category has no calendar unit (e.g. TOP)
}

// DayRange returns the zone map: the hull of the days covered by rows
// ever merged into the cube. ok is false when the cube has no range
// information (empty, no time dimension, or time aggregated to TOP).
func (c *Cube) DayRange() (lo, hi caltime.Day, ok bool) {
	if c.timeUnbound || !c.hasRange {
		return 0, 0, false
	}
	return c.dayLo, c.dayHi, true
}

// ID returns the cube's index within its CubeSet (0 is the bottom cube).
func (c *Cube) ID() int { return c.id }

// Gran returns the cube's fixed granularity.
func (c *Cube) Gran() mdm.Granularity { return c.gran }

// Actions returns the actions whose target granularity this cube
// realizes. The bottom cube has none.
func (c *Cube) Actions() []*spec.Action { return c.actions }

// Parents returns the cubes data migrates into this cube from.
func (c *Cube) Parents() []*Cube { return c.parents }

// Rows returns the number of live rows.
func (c *Cube) Rows() int { return c.store.Live() }

// Dead returns the number of tombstoned rows awaiting compaction.
func (c *Cube) Dead() int { return c.store.Dead() }

// Bytes returns the modeled storage size of the cube's live rows.
func (c *Cube) Bytes() int64 { return c.store.Bytes() }

// CubeSet is the collection of subcubes realizing one reduction
// specification over one schema.
type CubeSet struct {
	sp *spec.Spec
	//dimred:shared the schema environment is frozen after construction; clones deliberately share it
	env      *spec.Env
	cubes    []*Cube
	byGran   map[string]*Cube
	lastSync caltime.Day
	synced   bool
	// deletedBase counts user facts physically removed by deletion
	// actions.
	deletedBase int64
	// met is the engine metric set; it survives ApplySpec rebuilds so
	// counters are cumulative over the cube set's lifetime.
	//dimred:shared the metric substrate is all-atomic by design (atomicfield enforces it); clones record into the same instance
	met *obs.Metrics
	// cache memoizes the compiled specexec program keyed on the spec's
	// mutation generation, plus day-pinned routers, so steady-state
	// queries between spec changes and clock advances are compile-free.
	// Lookups are atomic loads, safe under the warehouse read lock.
	cache *specexec.Cache
	// interpret forces the uncompiled evaluation path (per-row predicate
	// interpretation and serial apply). The differential tests and the
	// before/after benchmarks flip it; production leaves it false.
	interpret bool
}

// SetInterpreted selects the interpreted evaluation path (true) or the
// compiled specexec path (false, the default) for Sync, ApplySpec and
// unsynchronized query views. The two paths compute identical results;
// the flag exists so tests can prove it and benchmarks can price it.
func (cs *CubeSet) SetInterpreted(v bool) { cs.interpret = v }

// Metrics returns the cube set's metric set; the scheduler and the
// warehouse facade record into the same instance.
func (cs *CubeSet) Metrics() *obs.Metrics { return cs.met }

// SetMetrics redirects the cube set's instrumentation (including its
// compiled-program cache's) to m. The epoch-snapshot warehouse uses it
// to flip a retired side onto a discard metric set while replaying an
// already-counted operation; it is not synchronized, so only call it on
// a cube set that is off the published read path.
func (cs *CubeSet) SetMetrics(m *obs.Metrics) {
	cs.met = m
	cs.cache.SetMetrics(m)
}

// Clone returns a deep copy of the cube set: an independent
// specification clone (sharing the immutable actions), independent
// stores and cell indexes, and a fresh empty program cache recording
// into the same metric set. Cube IDs, row IDs and sync state carry
// over, so a deterministic operation applied to both the original and
// the clone leaves them in identical states. Clone only reads the
// receiver and may run concurrently with queries against it.
func (cs *CubeSet) Clone() *CubeSet {
	c2 := &CubeSet{
		sp:          cs.sp.Clone(),
		env:         cs.env,
		byGran:      make(map[string]*Cube, len(cs.byGran)),
		lastSync:    cs.lastSync,
		synced:      cs.synced,
		deletedBase: cs.deletedBase,
		met:         cs.met,
		interpret:   cs.interpret,
	}
	c2.cache = specexec.NewCache(cs.met)
	for _, c := range cs.cubes {
		nc := &Cube{
			id:          c.id,
			gran:        append(mdm.Granularity(nil), c.gran...),
			actions:     c.actions,
			store:       c.store.Clone(),
			index:       c.index.clone(),
			dayLo:       c.dayLo,
			dayHi:       c.dayHi,
			hasRange:    c.hasRange,
			timeUnbound: c.timeUnbound,
		}
		c2.cubes = append(c2.cubes, nc)
		c2.byGran[granKey(nc.gran)] = nc
	}
	// Parent edges point at the clone's cubes; IDs are positions, so the
	// remap is a direct lookup.
	for i, c := range cs.cubes {
		for _, p := range c.parents {
			c2.cubes[i].parents = append(c2.cubes[i].parents, c2.cubes[p.id])
		}
	}
	return c2
}

// New builds the subcube layout for a specification: one cube per
// distinct action target granularity, plus the bottom cube (which
// corresponds to the catch-all disjoint action a_bottom of the Section
// 7.1 example).
func New(sp *spec.Spec) (*CubeSet, error) {
	env := sp.Env()
	cs := &CubeSet{sp: sp, env: env, byGran: make(map[string]*Cube), met: obs.NewMetrics()}
	cs.cache = specexec.NewCache(cs.met)
	layout := storage.Layout{DimCols: env.Schema.NumDims(), MeasCols: len(env.Schema.Measures)}

	bottom := &Cube{id: 0, gran: env.Schema.BottomGranularity(), store: storage.New(layout), index: newCellIndex(layout.DimCols)}
	cs.cubes = append(cs.cubes, bottom)
	cs.byGran[granKey(bottom.gran)] = bottom

	for _, a := range sp.Actions() {
		if a.IsDelete() {
			continue // deletion actions have no physical cube
		}
		key := granKey(a.Target())
		c, ok := cs.byGran[key]
		if !ok {
			c = &Cube{id: len(cs.cubes), gran: a.Target(), store: storage.New(layout), index: newCellIndex(layout.DimCols)}
			cs.cubes = append(cs.cubes, c)
			cs.byGran[key] = c
		}
		c.actions = append(c.actions, a)
	}
	cs.computeDAG()
	return cs, nil
}

func granKey(g mdm.Granularity) string {
	var b []byte
	for _, c := range g {
		b = append(b, byte(c), byte(c>>8))
	}
	return string(b)
}

func cellKey(buf []byte, cell []mdm.ValueID) ([]byte, string) {
	buf = buf[:0]
	for _, v := range cell {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return buf, string(buf)
}

// computeDAG derives the parent→child edges of Section 7.1: the bottom
// cube is a parent of every other cube (new and late-arriving data can
// migrate from it directly), and a non-bottom cube p is a parent of c
// when an action of p is dominated by an action of c whose predicates
// can select common cells at some time.
func (cs *CubeSet) computeDAG() {
	for _, c := range cs.cubes {
		c.parents = nil
	}
	for _, c := range cs.cubes[1:] {
		c.parents = append(c.parents, cs.cubes[0])
		for _, p := range cs.cubes[1:] {
			if p == c || !cs.env.Schema.GranLE(p.gran, c.gran) {
				continue
			}
			if cs.cubesLinked(p, c) {
				c.parents = append(c.parents, p)
			}
		}
	}
}

// cubesLinked reports whether rows can migrate directly from p to c: an
// action of p is dominated by an action of c that can select, one day
// later, a cell p's action selects — either because the predicates
// overlap outright or because c's region catches cells released by p's
// shrinking bound.
func (cs *CubeSet) cubesLinked(p, c *Cube) bool {
	for _, pa := range p.actions {
		for _, ca := range c.actions {
			if spec.LessEq(pa, ca) && spec.ActionFeeds(cs.env, pa, ca) {
				return true
			}
		}
	}
	return false
}

// Cubes returns the subcubes (index 0 is the bottom cube).
func (cs *CubeSet) Cubes() []*Cube { return cs.cubes }

// Spec returns the specification this cube set realizes.
func (cs *CubeSet) Spec() *spec.Spec { return cs.sp }

// LastSync returns the time of the last synchronization; ok is false if
// the set was never synchronized.
func (cs *CubeSet) LastSync() (caltime.Day, bool) { return cs.lastSync, cs.synced }

// Insert adds one user fact at the bottom granularity. Measures of
// COUNT kind are initialized to 1 regardless of the supplied value.
func (cs *CubeSet) Insert(refs []mdm.ValueID, meas []float64) error {
	schema := cs.env.Schema
	if len(refs) != schema.NumDims() || len(meas) != len(schema.Measures) {
		return fmt.Errorf("subcube: Insert: row shape mismatch")
	}
	bottom := cs.cubes[0]
	for i, d := range schema.Dims {
		if got := d.CategoryOf(refs[i]); got != bottom.gran[i] {
			return fmt.Errorf("subcube: Insert: dimension %s value at category %s, want bottom category %s",
				d.Name(), d.Category(got).Name, d.Category(bottom.gran[i]).Name)
		}
	}
	init := make([]float64, len(meas))
	for j, m := range schema.Measures {
		init[j] = m.Agg.Init(meas[j])
		if m.Agg == mdm.AggCount {
			init[j] = 1
		}
	}
	return cs.mergeInto(bottom, refs, init, 1)
}

// InsertMO bulk-loads every fact of a bottom-granularity MO.
func (cs *CubeSet) InsertMO(mo *mdm.MO) error {
	for f := 0; f < mo.Len(); f++ {
		fid := mdm.FactID(f)
		if err := cs.Insert(mo.Refs(fid), mo.Measures(fid)); err != nil {
			return err
		}
	}
	return nil
}

// mergeInto adds (or merges) a row at the cube's granularity. It is the
// physical Group_high fold: sync order must not affect the result, so it
// carries the distributivity obligation.
//
//dimred:aggregate
func (cs *CubeSet) mergeInto(c *Cube, refs []mdm.ValueID, meas []float64, base int64) error {
	cs.extendZoneMap(c, refs)
	if r, ok := c.index.get(refs); ok && c.store.Alive(r) {
		for j, m := range cs.env.Schema.Measures {
			c.store.SetMeasure(r, j, m.Agg.Merge(c.store.Measure(r, j), meas[j]))
		}
		c.store.AddBase(r, base)
		cs.met.RowsMerged.Inc()
		return nil
	}
	r, err := c.store.Append(refs, meas, base)
	if err != nil {
		return fmt.Errorf("subcube: %w", err)
	}
	c.index.put(refs, r)
	cs.met.RowsAppended.Inc()
	return nil
}

// cellEval evaluates DeletedBy/AggLevel per cell through either the
// compiled router or the interpreted specification, behind one seam so
// viewOf and ApplySpec need a single implementation. It counts router
// probes locally; callers publish the count with one atomic add.
type cellEval struct {
	router *specexec.Router // nil selects the interpreted path
	sp     *spec.Spec
	t      caltime.Day
	probes int64
}

func (cs *CubeSet) newCellEval(sp *spec.Spec, t caltime.Day) *cellEval {
	e := &cellEval{sp: sp, t: t}
	if !cs.interpret {
		e.router = cs.cache.RouterAt(sp, t)
	}
	return e
}

func (e *cellEval) deletedBy(cell []mdm.ValueID) *spec.Action {
	if e.router != nil {
		e.probes++
		return e.router.DeletedBy(cell)
	}
	return e.sp.DeletedBy(cell, e.t)
}

func (e *cellEval) aggLevelInto(cell []mdm.ValueID, level mdm.Granularity, resp []*spec.Action) {
	if e.router != nil {
		e.probes++
		e.router.AggLevelInto(cell, level, resp)
		return
	}
	lv, rs := e.sp.AggLevel(cell, e.t)
	copy(level, lv)
	if resp != nil {
		copy(resp, rs)
	}
}

// cubeUntouchedAt reports whether synchronization can skip cube c at
// time t: every action that could raise (or delete) the cube's rows has
// a time hull disjoint from the cube's day-range zone map. Rows whose
// level could change must satisfy some action's predicate, so disjoint
// hulls mean no row moves.
func (cs *CubeSet) cubeUntouchedAt(c *Cube, t caltime.Day) bool {
	lo, hi, ok := c.DayRange()
	if !ok {
		return c.store.Live() == 0
	}
	for _, a := range cs.sp.Actions() {
		if !a.IsDelete() && cs.env.Schema.GranLE(a.Target(), c.gran) && !cs.env.Schema.GranEq(a.Target(), c.gran) {
			continue // cannot raise the cube's level
		}
		if a.IsDelete() || !cs.env.Schema.GranEq(a.Target(), c.gran) {
			aLo, aHi, bounded := a.TimeHullAt(t)
			if !bounded || (aHi >= lo && aLo <= hi) {
				return false // the action may select rows of this cube
			}
		}
	}
	return true
}

// extendZoneMap widens the cube's day-range hull by the row's time
// value.
func (cs *CubeSet) extendZoneMap(c *Cube, refs []mdm.ValueID) {
	if cs.env.TimeDim < 0 || c.timeUnbound {
		return
	}
	td := cs.env.Schema.Dims[cs.env.TimeDim]
	v := refs[cs.env.TimeDim]
	u, ok := cs.env.Time.UnitForCategory(td.CategoryOf(v))
	if !ok {
		c.timeUnbound = true
		return
	}
	p := caltime.Period{Unit: u, Index: td.ValueOrd(v)}
	lo, hi := p.First(), p.Last()
	if !c.hasRange {
		c.dayLo, c.dayHi, c.hasRange = lo, hi, true
		return
	}
	if lo < c.dayLo {
		c.dayLo = lo
	}
	if hi > c.dayHi {
		c.dayHi = hi
	}
}

// Sync migrates every row to the subcube of its current aggregation
// level at time t (Section 7.2): for each cube, rows whose AggLevel has
// risen are rolled up and merged into the destination cube. The
// default path compiles the specification into a specexec program,
// probes it during the parallel scan, and applies the migrations with
// one goroutine per cube; SetInterpreted(true) selects the per-row
// interpreted evaluation with a serial apply phase. Both return the
// number of migrated rows and produce identical cube contents.
func (cs *CubeSet) Sync(t caltime.Day) (int, error) {
	if cs.interpret {
		return cs.syncInterpreted(t)
	}
	return cs.syncCompiled(t)
}

// syncInterpreted is the uncompiled synchronization: a parallel
// read-only mover scan evaluating Spec.DeletedBy/AggLevel per row,
// then a serial apply phase.
func (cs *CubeSet) syncInterpreted(t caltime.Day) (int, error) {
	schema := cs.env.Schema
	moved := 0

	// Phase 1 (parallel): collect the movers per cube. Each goroutine
	// accumulates its scan count locally and publishes one atomic add,
	// keeping the instrumented path race-clean and allocation-free.
	movers := make([][]storage.RowID, len(cs.cubes))
	var wg sync.WaitGroup
	for ci, c := range cs.cubes {
		if cs.cubeUntouchedAt(c, t) {
			cs.met.SyncSkips.Inc()
			continue // no action can select any of the cube's rows at t
		}
		wg.Add(1)
		go func(ci int, c *Cube) {
			defer wg.Done()
			cell := make([]mdm.ValueID, schema.NumDims())
			var migrate []storage.RowID
			scanned := 0
			c.store.Scan(func(r storage.RowID) bool {
				scanned++
				c.store.Refs(r, cell)
				if cs.sp.DeletedBy(cell, t) != nil {
					migrate = append(migrate, r)
					return true
				}
				level, _ := cs.sp.AggLevel(cell, t)
				if !schema.GranEq(level, c.gran) {
					migrate = append(migrate, r)
				}
				return true
			})
			movers[ci] = migrate
			cs.met.SyncScanned.Add(int64(scanned))
		}(ci, c)
	}
	wg.Wait()

	// Phase 2 (serial): roll movers up and merge into their targets.
	cell := make([]mdm.ValueID, schema.NumDims())
	for ci, c := range cs.cubes {
		for _, r := range movers[ci] {
			c.store.Refs(r, cell)
			if cs.sp.DeletedBy(cell, t) != nil {
				cs.deletedBase += c.store.Base(r)
				cs.met.FactsDeleted.Add(c.store.Base(r))
				c.index.del(cell)
				c.store.Delete(r)
				moved++
				continue
			}
			level, _ := cs.sp.AggLevel(cell, t)
			dst, ok := cs.byGran[granKey(level)]
			if !ok {
				return moved, fmt.Errorf("subcube: Sync: no cube at granularity %s", schema.GranString(level))
			}
			up := make([]mdm.ValueID, len(cell))
			for i, d := range schema.Dims {
				up[i] = d.AncestorAt(cell[i], level[i])
				if up[i] == mdm.NoValue {
					return moved, fmt.Errorf("subcube: Sync: value %s has no ancestor at %s",
						d.ValueName(cell[i]), d.Category(level[i]).Name)
				}
			}
			meas := make([]float64, len(schema.Measures))
			for j := range meas {
				meas[j] = c.store.Measure(r, j)
			}
			if err := cs.mergeInto(dst, up, meas, c.store.Base(r)); err != nil {
				return moved, err
			}
			c.index.del(cell)
			c.store.Delete(r)
			moved++
		}
		// Reclaim space once tombstones dominate.
		if c.store.Rows() > 64 && c.store.Live()*2 < c.store.Rows() {
			cs.compact(c)
		}
	}
	cs.lastSync, cs.synced = t, true
	cs.met.RowsFolded.Add(int64(moved))
	return moved, nil
}

// cubeMovers is one cube's phase-1 result under the compiled path:
// rows to tombstone-delete, and for each migrating row its destination
// cube, rolled-up cell, measures and base count — extracted up front
// into flat per-cube scratch so the parallel apply phase never reads
// another goroutine's store.
type cubeMovers struct {
	delRows []storage.RowID
	delBase int64
	rows    []storage.RowID // migrating rows, ascending
	dsts    []int32         // destination cube id per migrating row
	ups     []mdm.ValueID   // rolled-up cells, nDims entries per row
	meas    []float64       // measures, nMeas entries per row
	base    []int64
	scanned int
	probes  int64
	err     error
}

// granPack encodes a granularity into one uint64, 8 bits per category
// (a dimension holds at most 63 categories). ok is false above 8
// dimensions; callers then fall back to the string key.
func granPack(g mdm.Granularity) (uint64, bool) {
	if len(g) > 8 {
		return 0, false
	}
	var k uint64
	for _, c := range g {
		k = k<<8 | uint64(c)
	}
	return k, true
}

// syncCompiled is the compiled synchronization. Phase 1 fetches the
// day-pinned router from the program cache (compiling only when the
// spec generation changed), then scans the cubes in parallel, probing the
// day-pinned router per row and extracting every mover's rolled-up row
// into per-cube scratch. Phase 2 is parallel too: one goroutine per
// cube owns that cube's store and index outright — it tombstones the
// cube's deleted and outbound rows and merges the inbound movers, in
// (source cube, source row) order so the result is deterministic. A
// mover's destination cell can never coincide with a cell leaving the
// same cube at the same t (equal cells have equal AggLevel), so the
// deferred deletes commute with the merges and the contents match the
// interpreted serial path exactly.
func (cs *CubeSet) syncCompiled(t caltime.Day) (int, error) {
	schema := cs.env.Schema
	nDims := schema.NumDims()
	nMeas := len(schema.Measures)

	router := cs.cache.RouterAt(cs.sp, t)

	// Destination lookup by packed granularity, falling back to the
	// string-keyed byGran map above 8 dimensions.
	var dstPacked map[uint64]*Cube
	if _, ok := granPack(cs.cubes[0].gran); ok {
		dstPacked = make(map[uint64]*Cube, len(cs.cubes))
		for _, c := range cs.cubes {
			k, _ := granPack(c.gran)
			dstPacked[k] = c
		}
	}

	// Phase 1 (parallel): find movers and extract their rolled-up rows.
	movers := make([]cubeMovers, len(cs.cubes))
	var wg sync.WaitGroup
	for ci, c := range cs.cubes {
		if cs.cubeUntouchedAt(c, t) {
			cs.met.SyncSkips.Inc()
			continue
		}
		wg.Add(1)
		go func(m *cubeMovers, c *Cube) {
			defer wg.Done()
			cell := make([]mdm.ValueID, nDims)
			level := make(mdm.Granularity, nDims)
			c.store.Scan(func(r storage.RowID) bool {
				m.scanned++
				c.store.Refs(r, cell)
				m.probes++
				if router.DeletedBy(cell) != nil {
					m.delRows = append(m.delRows, r)
					m.delBase += c.store.Base(r)
					return true
				}
				m.probes++
				router.AggLevelInto(cell, level, nil)
				if schema.GranEq(level, c.gran) {
					return true
				}
				var dst *Cube
				if dstPacked != nil {
					k, _ := granPack(level)
					dst = dstPacked[k]
				} else {
					dst = cs.byGran[granKey(level)]
				}
				if dst == nil {
					m.err = fmt.Errorf("subcube: Sync: no cube at granularity %s", schema.GranString(level))
					return false
				}
				for i, d := range schema.Dims {
					up := d.AncestorAt(cell[i], level[i])
					if up == mdm.NoValue {
						m.err = fmt.Errorf("subcube: Sync: value %s has no ancestor at %s",
							d.ValueName(cell[i]), d.Category(level[i]).Name)
						return false
					}
					m.ups = append(m.ups, up)
				}
				for j := 0; j < nMeas; j++ {
					m.meas = append(m.meas, c.store.Measure(r, j))
				}
				m.rows = append(m.rows, r)
				m.dsts = append(m.dsts, int32(dst.id))
				m.base = append(m.base, c.store.Base(r))
				return true
			})
		}(&movers[ci], c)
	}
	wg.Wait()

	moved := 0
	for ci := range movers {
		m := &movers[ci]
		cs.met.SyncScanned.Add(int64(m.scanned))
		cs.met.ProgramProbes.Add(m.probes)
		if m.err != nil {
			return 0, m.err
		}
		moved += len(m.delRows) + len(m.rows)
	}
	if moved == 0 {
		cs.lastSync, cs.synced = t, true
		return 0, nil
	}

	// Regroup movers by destination, in (source cube, source row)
	// order — the order the serial path merges in.
	type moverRef struct {
		src, idx int32
	}
	inbound := make([][]moverRef, len(cs.cubes))
	for si := range movers {
		for k, d := range movers[si].dsts {
			inbound[d] = append(inbound[d], moverRef{src: int32(si), idx: int32(k)})
		}
	}

	// Phase 2 (parallel): each goroutine owns exactly one cube —
	// tombstones its outbound and deleted rows, merges its inbound
	// rows, then compacts if tombstones dominate.
	errs := make([]error, len(cs.cubes))
	for ci, c := range cs.cubes {
		if len(inbound[ci]) == 0 && len(movers[ci].delRows) == 0 && len(movers[ci].rows) == 0 {
			continue
		}
		wg.Add(1)
		go func(ci int, c *Cube) {
			defer wg.Done()
			cell := make([]mdm.ValueID, nDims)
			m := &movers[ci]
			for _, r := range m.delRows {
				c.store.Refs(r, cell)
				c.index.del(cell)
				c.store.Delete(r)
			}
			for _, r := range m.rows {
				c.store.Refs(r, cell)
				c.index.del(cell)
				c.store.Delete(r)
			}
			for _, ref := range inbound[ci] {
				src := &movers[ref.src]
				up := src.ups[int(ref.idx)*nDims : (int(ref.idx)+1)*nDims]
				meas := src.meas[int(ref.idx)*nMeas : (int(ref.idx)+1)*nMeas]
				if err := cs.mergeInto(c, up, meas, src.base[ref.idx]); err != nil {
					errs[ci] = err
					return
				}
			}
			if c.store.Rows() > 64 && c.store.Live()*2 < c.store.Rows() {
				cs.compact(c)
			}
		}(ci, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}

	var deleted int64
	for ci := range movers {
		deleted += movers[ci].delBase
	}
	cs.deletedBase += deleted
	cs.met.FactsDeleted.Add(deleted)
	cs.lastSync, cs.synced = t, true
	cs.met.RowsFolded.Add(int64(moved))
	return moved, nil
}

func (cs *CubeSet) compact(c *Cube) {
	cs.met.Compactions.Inc()
	c.index.applyRemap(c.store.Compact())
}

// ApplySpec rebuilds the cube layout for an updated specification (the
// infrequent synchronization of Section 7.2): new subcubes are created,
// every row is re-routed by its aggregation level at time t, and cubes
// whose granularity no longer appears are dropped.
func (cs *CubeSet) ApplySpec(sp *spec.Spec, t caltime.Day) error {
	if sp.Env() != cs.env {
		return fmt.Errorf("subcube: ApplySpec: specification bound to a different environment")
	}
	old := cs.cubes
	next, err := New(sp)
	if err != nil {
		return err
	}
	// The rebuilt set records into the same metric instance, so ingest
	// and fold counters stay cumulative across specification changes.
	next.met = cs.met
	cs.met.SpecRebuilds.Inc()
	schema := cs.env.Schema
	eval := cs.newCellEval(sp, t)
	cell := make([]mdm.ValueID, schema.NumDims())
	level := make(mdm.Granularity, schema.NumDims())
	up := make([]mdm.ValueID, schema.NumDims())
	meas := make([]float64, len(schema.Measures))
	for _, c := range old {
		var failed error
		c.store.Scan(func(r storage.RowID) bool {
			c.store.Refs(r, cell)
			if eval.deletedBy(cell) != nil {
				next.deletedBase += c.store.Base(r)
				return true
			}
			eval.aggLevelInto(cell, level, nil)
			dst, ok := next.byGran[granKey(level)]
			if !ok {
				failed = fmt.Errorf("subcube: ApplySpec: no cube at granularity %s", schema.GranString(level))
				return false
			}
			for i, d := range schema.Dims {
				up[i] = d.AncestorAt(cell[i], level[i])
			}
			for j := range meas {
				meas[j] = c.store.Measure(r, j)
			}
			if err := next.mergeInto(dst, up, meas, c.store.Base(r)); err != nil {
				failed = err
				return false
			}
			return true
		})
		if failed != nil {
			return failed
		}
	}
	cs.met.ProgramProbes.Add(eval.probes)
	cs.sp = sp
	cs.cubes = next.cubes
	cs.byGran = next.byGran
	cs.deletedBase += next.deletedBase
	cs.lastSync, cs.synced = t, true
	return nil
}

// DeletedFacts returns the number of user facts physically removed by
// deletion actions so far.
func (cs *CubeSet) DeletedFacts() int64 { return cs.deletedBase }

// RestoreRow re-injects a row saved from a snapshot: it is merged into
// the cube whose granularity matches the row's own. The measures are
// taken as already-aggregated partials.
func (cs *CubeSet) RestoreRow(refs []mdm.ValueID, meas []float64, base int64) error {
	schema := cs.env.Schema
	if len(refs) != schema.NumDims() || len(meas) != len(schema.Measures) {
		return fmt.Errorf("subcube: RestoreRow: row shape mismatch")
	}
	gran := make(mdm.Granularity, len(refs))
	for i, d := range schema.Dims {
		gran[i] = d.CategoryOf(refs[i])
	}
	c, ok := cs.byGran[granKey(gran)]
	if !ok {
		return fmt.Errorf("subcube: RestoreRow: no cube at granularity %s", schema.GranString(gran))
	}
	return cs.mergeInto(c, refs, meas, base)
}

// RestoreSyncState re-applies snapshot bookkeeping: the last
// synchronization time and the deleted-fact count.
func (cs *CubeSet) RestoreSyncState(lastSync caltime.Day, synced bool, deleted int64) {
	cs.lastSync, cs.synced = lastSync, synced
	cs.deletedBase = deleted
}

// TotalRows returns the number of live rows across all cubes.
func (cs *CubeSet) TotalRows() int {
	n := 0
	for _, c := range cs.cubes {
		n += c.Rows()
	}
	return n
}

// TotalBytes returns the modeled storage across all cubes.
func (cs *CubeSet) TotalBytes() int64 {
	var n int64
	for _, c := range cs.cubes {
		n += c.Bytes()
	}
	return n
}

// MO materializes one cube as a multidimensional object (used by the
// query evaluator and the experiments).
func (c *Cube) MO(schema *mdm.Schema) (*mdm.MO, error) {
	mo := mdm.NewMO(schema)
	mo.SetFloors(c.gran)
	var err error
	refs := make([]mdm.ValueID, schema.NumDims())
	meas := make([]float64, len(schema.Measures))
	c.store.Scan(func(r storage.RowID) bool {
		c.store.Refs(r, refs)
		for j := range meas {
			meas[j] = c.store.Measure(r, j)
		}
		if _, e := mo.AddFactAt(refs, meas, c.store.Base(r), ""); e != nil {
			err = e
			return false
		}
		return true
	})
	return mo, err
}

// Describe renders the cube layout with the disjoint-action view of
// Section 7.1: each cube's granularity, its actions, and the
// higher-target actions its predicate excludes (the negated conjuncts of
// Eq. 41-44); the bottom cube excludes every action.
func (cs *CubeSet) Describe() string {
	var b strings.Builder
	for _, c := range cs.cubes {
		fmt.Fprintf(&b, "K%d %s", c.id, cs.env.Schema.GranString(c.gran))
		if len(c.actions) == 0 {
			b.WriteString(" [bottom]")
		}
		var parents []string
		for _, p := range c.parents {
			parents = append(parents, fmt.Sprintf("K%d", p.id))
		}
		sort.Strings(parents)
		if len(parents) > 0 {
			fmt.Fprintf(&b, " parents={%s}", strings.Join(parents, ","))
		}
		b.WriteByte('\n')
		for _, a := range c.actions {
			fmt.Fprintf(&b, "  include %s\n", a.String())
		}
		for _, excl := range cs.excludedBy(c) {
			fmt.Fprintf(&b, "  exclude %s\n", excl)
		}
	}
	return b.String()
}

// excludedBy lists the actions whose (strictly higher) targets carve
// cells out of cube c's disjoint predicate.
func (cs *CubeSet) excludedBy(c *Cube) []string {
	var out []string
	for _, a := range cs.sp.Actions() {
		if granKey(a.Target()) == granKey(c.gran) {
			continue
		}
		if len(c.actions) == 0 {
			// Bottom cube: everything aggregated elsewhere is excluded.
			out = append(out, a.Name())
			continue
		}
		for _, own := range c.actions {
			if spec.LessEq(own, a) && spec.ActionsOverlap(cs.env, own, a) {
				out = append(out, a.Name())
				break
			}
		}
	}
	sort.Strings(out)
	return out
}
