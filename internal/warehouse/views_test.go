package warehouse

import (
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/query"
	"dimred/internal/spec"
	"dimred/internal/subcube"
	"dimred/internal/views"
	"dimred/internal/workload"
)

// viewShapeQueries is a battery of view-eligible (predicate-free,
// availability) query shapes over the click schema.
var viewShapeQueries = []string{
	`aggregate [Time.month, URL.domain]`,
	`aggregate [Time.quarter, URL.domain]`,
	`aggregate [Time.quarter, URL.domain_grp]`,
	`aggregate [Time.year, URL.domain_grp]`,
}

// openViewWarehouse loads a synced click warehouse, records the shape
// battery, and enables views so every shape is materialized.
func openViewWarehouse(t *testing.T) (*Warehouse, *workload.ClickObject) {
	t.Helper()
	w, obj := openClickWarehouse(t)
	start := caltime.Date(2000, 1, 1)
	if err := w.AdvanceTo(start); err != nil {
		t.Fatal(err)
	}
	cfg := workload.ClickConfig{Seed: 11, Start: start, Days: 120, ClicksPerDay: 40, Domains: 6, URLsPerDomain: 4}
	loadStream(t, w, obj, cfg)
	// Record the shapes the selector should learn, then refresh.
	for _, src := range viewShapeQueries {
		if _, err := w.Query(src); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.EnableViews(views.Config{}); err != nil {
		t.Fatal(err)
	}
	return w, obj
}

func TestWarehouseViewServing(t *testing.T) {
	w, _ := openViewWarehouse(t)
	if n, bytes := w.ViewStats(); n == 0 || bytes <= 0 {
		t.Fatalf("no views published: count=%d bytes=%d", n, bytes)
	}
	before := w.Metrics()
	if before.ViewBuilds == 0 || before.ViewBytes <= 0 {
		t.Fatalf("view build counters empty: %+v", before)
	}

	// Every recorded shape must now be view-served, byte-identical to
	// the base path (answered with views disabled).
	viewAnswers := make([]string, len(viewShapeQueries))
	for i, src := range viewShapeQueries {
		mo, err := w.Query(src)
		if err != nil {
			t.Fatal(err)
		}
		viewAnswers[i] = mo.DumpCells()
	}
	after := w.Metrics().Sub(before)
	if after.ViewHits != int64(len(viewShapeQueries)) {
		t.Fatalf("ViewHits = %d, want %d (misses %d)", after.ViewHits, len(viewShapeQueries), after.ViewMisses)
	}
	if after.Queries != 0 {
		t.Fatalf("view-served queries still ran %d base evaluations", after.Queries)
	}

	w.DisableViews()
	if n, bytes := w.ViewStats(); n != 0 || bytes != 0 {
		t.Fatalf("views survived DisableViews: count=%d bytes=%d", n, bytes)
	}
	if got := w.Metrics().ViewBytes; got != 0 {
		t.Fatalf("ViewBytes = %d after DisableViews", got)
	}
	for i, src := range viewShapeQueries {
		mo, err := w.Query(src)
		if err != nil {
			t.Fatal(err)
		}
		if mo.DumpCells() != viewAnswers[i] {
			t.Errorf("query %q: view answer differs from base path:\nview:\n%s\nbase:\n%s",
				src, viewAnswers[i], mo.DumpCells())
		}
	}
}

func TestViewsInvalidatedByMutationAndClock(t *testing.T) {
	w, obj := openViewWarehouse(t)
	src := viewShapeQueries[0]

	assertServed := func(want bool, when string) {
		t.Helper()
		before := w.Metrics()
		if _, err := w.Query(src); err != nil {
			t.Fatal(err)
		}
		d := w.Metrics().Sub(before)
		if want && d.ViewHits != 1 {
			t.Fatalf("%s: not view-served (hits=%d misses=%d)", when, d.ViewHits, d.ViewMisses)
		}
		if !want && d.ViewHits != 0 {
			t.Fatalf("%s: unexpectedly view-served", when)
		}
	}
	assertServed(true, "after enable")

	// A single-fact load invalidates: the published snapshot carries no
	// views until the next sync-carrying commit rebuilds them.
	c := workload.Click{Day: w.Now(), URL: "http://www.site0.com/page/0", Dwell: 5, Delivery: 1, SizeKB: 10}
	refs, meas, err := obj.Row(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Load(refs, meas); err != nil {
		t.Fatal(err)
	}
	if n, _ := w.ViewStats(); n != 0 {
		t.Fatalf("%d views survived a mutating commit", n)
	}
	assertServed(false, "after load")
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	assertServed(true, "after sync rebuild")

	// A clock-only advance carries the views but their build clock no
	// longer matches NOW: stale views are skipped, not served...
	oldNow := w.Now()
	if err := w.AdvanceTo(oldNow + 1); err != nil {
		t.Fatal(err)
	}
	if w.Now() != oldNow+1 {
		t.Skip("advance crossed a sync boundary; clock-only staleness not exercised")
	}
	if n, _ := w.ViewStats(); n == 0 {
		t.Fatal("clock-only advance dropped the views")
	}
	assertServed(false, "after clock-only advance")
	// ...but an explicit query back at their build clock may use them:
	// the cubes are untouched, so they are exact there.
	q := subcube.MustParseQuery(src, w.Env())
	before := w.Metrics()
	if _, err := w.QueryAt(q, oldNow); err != nil {
		t.Fatal(err)
	}
	if d := w.Metrics().Sub(before); d.ViewHits != 1 {
		t.Fatalf("QueryAt(build clock) not view-served (hits=%d misses=%d)", d.ViewHits, d.ViewMisses)
	}

	// A specification update bumps the generation and invalidates.
	if err := w.RefreshViews(); err != nil {
		t.Fatal(err)
	}
	assertServed(true, "after refresh at new clock")
	env := w.Env()
	a3 := spec.MustCompileString("to-year",
		`aggregate [Time.year, URL.domain_grp] where Time.year <= NOW - 2 years`, env)
	if err := w.InsertActions(a3); err != nil {
		t.Fatal(err)
	}
	if n, _ := w.ViewStats(); n != 0 {
		t.Fatalf("%d views survived a spec update", n)
	}
	assertServed(false, "after spec update")
}

func TestViewServingAllApproachesFallBack(t *testing.T) {
	// Non-availability aggregation and predicated queries are never
	// view-eligible: they fall back to the base path and still agree
	// with it trivially; here we pin that they are not even counted as
	// view traffic.
	w, _ := openViewWarehouse(t)
	env := w.Env()
	q := subcube.MustParseQuery(viewShapeQueries[1], env)
	before := w.Metrics()
	for _, agg := range []query.AggApproach{query.Strict, query.LUB, query.Disaggregated} {
		qa := q
		qa.Agg = agg
		if _, err := w.QueryAt(qa, w.Now()); err != nil {
			t.Fatal(err)
		}
	}
	pq := subcube.MustParseQuery(
		`aggregate [Time.quarter, URL.domain] where URL.domain_grp = ".com"`, env)
	if _, err := w.QueryAt(pq, w.Now()); err != nil {
		t.Fatal(err)
	}
	d := w.Metrics().Sub(before)
	if d.ViewHits != 0 || d.ViewMisses != 0 {
		t.Fatalf("ineligible queries touched view counters: hits=%d misses=%d", d.ViewHits, d.ViewMisses)
	}
	if d.Queries != 4 {
		t.Fatalf("base path ran %d evaluations, want 4", d.Queries)
	}
}
