package warehouse

import (
	"encoding/gob"
	"fmt"
	"io"

	"dimred/internal/caltime"
	"dimred/internal/dims"
	"dimred/internal/mdm"
	"dimred/internal/spec"
	"dimred/internal/subcube"
	"dimred/internal/views"
)

// snapshot DTOs: plain exported structs gob-encoded to disk. The format
// is versioned; Load rejects unknown versions but accepts every prior
// one (gob leaves absent fields at their zero values, which for the v2
// view-state additions means views-off and an empty shape trace —
// exactly what a v1 snapshot recorded).
//
// Version history:
//
//	1: dimensions, specification, rows, clock state.
//	2: + view state (ViewsOn, view budget, query-shape trace).
const snapshotVersion = 2

type snapValue struct {
	Cat     int32
	Name    string
	Ord     int64
	Parents map[int32]int32 // category -> value id, TOP parents omitted
}

type snapCategory struct {
	Name    string
	Ordered bool
	Anc     []int32 // immediate ancestor category ids (TOP omitted)
}

type snapDimension struct {
	Name       string
	Categories []snapCategory // excluding the auto-added TOP
	Values     []snapValue    // in value-id order, excluding the TOP value
}

type snapMeasure struct {
	Name string
	Agg  int32
}

type snapAction struct {
	Name string
	Src  string
}

type snapRow struct {
	Refs []int32
	Meas []float64
	Base int64
}

type snapshotFile struct {
	Version     int
	FactType    string
	TimeDimName string
	Dimensions  []snapDimension
	Measures    []snapMeasure
	Actions     []snapAction
	Rows        []snapRow // across all cubes; routed by granularity on load
	Loaded      int64
	Deleted     int64
	Now         int64
	LastSync    int64
	Synced      bool

	// Since version 2: materialized-view state. The views themselves are
	// derived data and are rebuilt on load from the restored rows; what
	// must survive the round-trip is the enablement, the budget, and the
	// observed query-shape trace the greedy selector feeds on.
	ViewsOn      bool
	ViewMaxBytes int64
	ViewMaxViews int
	Shapes       map[string]int64
}

// Save serializes the warehouse — dimensions, specification, subcube
// rows and clock state — so Load can reconstruct it byte-for-byte
// equivalent (same value ids, same rows, same specification).
func (w *Warehouse) Save(out io.Writer) error {
	// View configuration is writer state, copied under wmu before
	// pinning — pin-then-lock would deadlock against a publishing writer
	// draining this reader's pin. The shape trace is lock-free.
	w.wmu.Lock()
	viewsOn, vcfg := w.viewsOn, w.vcfg
	w.wmu.Unlock()

	s, p := w.pin()
	defer p.Unpin()

	sf := snapshotFile{
		Version:      snapshotVersion,
		FactType:     w.env.Schema.FactType,
		Loaded:       w.loaded.Load(),
		Deleted:      s.cubes.DeletedFacts(),
		Now:          int64(s.now),
		ViewsOn:      viewsOn,
		ViewMaxBytes: vcfg.MaxBytes,
		ViewMaxViews: vcfg.MaxViews,
		Shapes:       w.shapes.Counts(),
	}
	if w.env.TimeDim >= 0 {
		sf.TimeDimName = w.env.Schema.Dims[w.env.TimeDim].Name()
	}
	if last, ok := s.cubes.LastSync(); ok {
		sf.LastSync, sf.Synced = int64(last), true
	}
	for _, d := range w.env.Schema.Dims {
		sf.Dimensions = append(sf.Dimensions, snapDimensionOf(d))
	}
	for _, m := range w.env.Schema.Measures {
		sf.Measures = append(sf.Measures, snapMeasure{Name: m.Name, Agg: int32(m.Agg)})
	}
	for _, a := range s.cubes.Spec().Actions() {
		sf.Actions = append(sf.Actions, snapAction{Name: a.Name(), Src: a.Source().String()})
	}
	for _, c := range s.cubes.Cubes() {
		mo, err := c.MO(w.env.Schema)
		if err != nil {
			return err
		}
		for f := 0; f < mo.Len(); f++ {
			fid := mdm.FactID(f)
			refs := mo.Refs(fid)
			r := snapRow{Refs: make([]int32, len(refs)), Meas: mo.Measures(fid), Base: mo.BaseCount(fid)}
			for i, v := range refs {
				r.Refs[i] = int32(v)
			}
			sf.Rows = append(sf.Rows, r)
		}
	}
	return gob.NewEncoder(out).Encode(sf)
}

func snapDimensionOf(d *mdm.Dimension) snapDimension {
	sd := snapDimension{Name: d.Name()}
	top := d.Top()
	for c := 0; c < d.NumCategories(); c++ {
		cid := mdm.CategoryID(c)
		if cid == top {
			continue
		}
		cat := d.Category(cid)
		sc := snapCategory{Name: cat.Name, Ordered: cat.Ordered}
		for _, a := range d.Anc(cid) {
			if a != top {
				sc.Anc = append(sc.Anc, int32(a))
			}
		}
		sd.Categories = append(sd.Categories, sc)
	}
	topValue := d.TopValueID()
	for v := 0; v < d.NumValues(); v++ {
		vid := mdm.ValueID(v)
		if vid == topValue {
			continue
		}
		sv := snapValue{
			Cat:     int32(d.CategoryOf(vid)),
			Name:    d.ValueName(vid),
			Ord:     d.ValueOrd(vid),
			Parents: map[int32]int32{},
		}
		for pc, pv := range d.ParentsOf(vid) {
			if pc == top {
				continue
			}
			sv.Parents[int32(pc)] = int32(pv)
		}
		sd.Values = append(sd.Values, sv)
	}
	return sd
}

// LoadedDims gives callers access to the reconstructed dimensions of a
// loaded warehouse, so they can keep inserting facts (EnsureDay,
// EnsureURL, ...).
type LoadedDims struct {
	Time   *dims.TimeDim // nil when the schema has no time dimension
	ByName map[string]*mdm.Dimension
}

// Load reconstructs a warehouse from a snapshot written by Save.
func Load(in io.Reader) (*Warehouse, *LoadedDims, error) {
	var sf snapshotFile
	if err := gob.NewDecoder(in).Decode(&sf); err != nil {
		return nil, nil, fmt.Errorf("warehouse: Load: %w", err)
	}
	if sf.Version < 1 || sf.Version > snapshotVersion {
		return nil, nil, fmt.Errorf("warehouse: Load: unsupported snapshot version %d", sf.Version)
	}

	loaded := &LoadedDims{ByName: make(map[string]*mdm.Dimension)}
	var dimensions []*mdm.Dimension
	for _, sd := range sf.Dimensions {
		d, err := restoreDimension(sd)
		if err != nil {
			return nil, nil, err
		}
		dimensions = append(dimensions, d)
		loaded.ByName[sd.Name] = d
	}
	measures := make([]mdm.Measure, len(sf.Measures))
	for j, m := range sf.Measures {
		measures[j] = mdm.Measure{Name: m.Name, Agg: mdm.AggKind(m.Agg)}
	}
	schema, err := mdm.NewSchema(sf.FactType, dimensions, measures)
	if err != nil {
		return nil, nil, fmt.Errorf("warehouse: Load: %w", err)
	}
	var tm spec.TimeModel
	if sf.TimeDimName != "" {
		td, err := dims.TimeDimFrom(loaded.ByName[sf.TimeDimName])
		if err != nil {
			return nil, nil, fmt.Errorf("warehouse: Load: %w", err)
		}
		loaded.Time = td
		tm = td
	}
	env, err := spec.NewEnv(schema, sf.TimeDimName, tm)
	if err != nil {
		return nil, nil, fmt.Errorf("warehouse: Load: %w", err)
	}
	actions := make([]*spec.Action, len(sf.Actions))
	for i, sa := range sf.Actions {
		actions[i], err = spec.CompileString(sa.Name, sa.Src, env)
		if err != nil {
			return nil, nil, fmt.Errorf("warehouse: Load: %w", err)
		}
	}
	w, err := Open(env, actions...)
	if err != nil {
		return nil, nil, fmt.Errorf("warehouse: Load: %w", err)
	}
	// Restore rows and clock through the left-right commit so both
	// cube-set sides converge and the published snapshot carries the
	// restored clock. View state restores with it: the shape trace seeds
	// the selector, and a views-on snapshot rebuilds its views from the
	// restored rows inside the same commit, so the first published
	// snapshot already serves them.
	w.wmu.Lock()
	w.sched.Restore(caltime.Day(sf.Now), sf.Synced)
	for k, n := range sf.Shapes {
		w.shapes.Add(k, n)
	}
	w.viewsOn = sf.ViewsOn
	if sf.ViewsOn {
		w.vcfg = views.Config{MaxBytes: sf.ViewMaxBytes, MaxViews: sf.ViewMaxViews}
	}
	err = w.commitWithViewsLocked(func(cs *subcube.CubeSet) error {
		refs := make([]mdm.ValueID, len(dimensions))
		for _, r := range sf.Rows {
			if len(r.Refs) != len(refs) {
				return fmt.Errorf("warehouse: Load: row arity mismatch")
			}
			for i, v := range r.Refs {
				refs[i] = mdm.ValueID(v)
			}
			if err := cs.RestoreRow(refs, r.Meas, r.Base); err != nil {
				return err
			}
		}
		cs.RestoreSyncState(caltime.Day(sf.LastSync), sf.Synced, sf.Deleted)
		return nil
	}, sf.ViewsOn)
	w.wmu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	w.loaded.Store(sf.Loaded)
	// Seed the cumulative metrics from the snapshot's bookkeeping so
	// Metrics() agrees with Stats() after a restore.
	w.met.FactsLoaded.Add(sf.Loaded)
	w.met.FactsDeleted.Add(sf.Deleted)
	return w, loaded, nil
}

func restoreDimension(sd snapDimension) (*mdm.Dimension, error) {
	d := mdm.NewDimension(sd.Name)
	ids := make([]mdm.CategoryID, len(sd.Categories))
	for i, sc := range sd.Categories {
		id, err := d.AddCategory(sc.Name, sc.Ordered)
		if err != nil {
			return nil, fmt.Errorf("warehouse: Load: %w", err)
		}
		if int(id) != i {
			return nil, fmt.Errorf("warehouse: Load: category id drift in dimension %s", sd.Name)
		}
		ids[i] = id
	}
	for i, sc := range sd.Categories {
		for _, a := range sc.Anc {
			if int(a) >= len(ids) {
				return nil, fmt.Errorf("warehouse: Load: bad ancestor category in dimension %s", sd.Name)
			}
			if err := d.Contains(ids[i], ids[a]); err != nil {
				return nil, fmt.Errorf("warehouse: Load: %w", err)
			}
		}
	}
	if err := d.Finalize(); err != nil {
		return nil, fmt.Errorf("warehouse: Load: %w", err)
	}
	// The TOP value was created by Finalize with the same id (0) it had
	// originally; remaining values restore in id order.
	for _, sv := range sd.Values {
		parents := make(map[mdm.CategoryID]mdm.ValueID, len(sv.Parents))
		for pc, pv := range sv.Parents {
			parents[mdm.CategoryID(pc)] = mdm.ValueID(pv)
		}
		if _, err := d.AddValue(mdm.CategoryID(sv.Cat), sv.Name, sv.Ord, parents); err != nil {
			return nil, fmt.Errorf("warehouse: Load: %w", err)
		}
	}
	return d, nil
}
