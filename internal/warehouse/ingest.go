package warehouse

import (
	"fmt"

	"dimred/internal/ingest"
	"dimred/internal/mdm"
	"dimred/internal/subcube"
)

// Streaming ingest: Ingest appends facts to a sharded delta buffer
// without touching the served snapshot; a background compactor (or an
// explicit FlushIngest) drains the buffer and folds the batch into the
// subcube DAG through the same sync-carrying commit as LoadBatch, so
// readers see either the pre-fold warehouse or the fully reduced
// post-fold one — never a half-folded delta. A fact whose day is
// already inside a reduced region is counted late and, because the fold
// synchronizes at the commit clock, lands at Cell(f, t)'s granularity
// and merges distributively (the Growing invariant makes the delta fold
// exact — see the replay differential in ingest_test.go).

// validateFact mirrors CubeSet.Insert's shape checks against the
// immutable schema, so a producer gets the error at Ingest time instead
// of a poisoned batch at compaction time. Read-only on the schema,
// hence safe without wmu.
func (w *Warehouse) validateFact(refs []mdm.ValueID, meas []float64) error {
	schema := w.env.Schema
	if len(refs) != schema.NumDims() || len(meas) != len(schema.Measures) {
		return fmt.Errorf("warehouse: Ingest: row shape mismatch")
	}
	bottom := schema.BottomGranularity()
	for i, d := range schema.Dims {
		if d.CategoryOf(refs[i]) != bottom[i] {
			return fmt.Errorf("warehouse: Ingest: dimension %s value not at bottom category %s",
				d.Name(), d.Category(bottom[i]).Name)
		}
	}
	return nil
}

// Ingest buffers one bottom-granularity fact for asynchronous
// compaction. It never touches the served snapshot or the writer lock:
// the fact is validated against the schema, deep-copied into a buffer
// shard, and becomes queryable when the background compactor (or an
// explicit FlushIngest) folds the accumulated deltas. Safe for any
// number of concurrent producers.
func (w *Warehouse) Ingest(refs []mdm.ValueID, meas []float64) error {
	if err := w.validateFact(refs, meas); err != nil {
		return err
	}
	w.buf.Append(refs, meas)
	w.met.IngestQueued.Inc()
	return nil
}

// IngestPending reports the number of ingested facts buffered but not
// yet compacted.
func (w *Warehouse) IngestPending() int64 { return w.buf.Pending() }

// StartIngest launches the background compactor: a detached loop that
// wakes on ingest arrivals and folds batches of at least cfg.MinBatch
// facts through the sync-carrying commit path. The delta buffer itself
// exists from Open (Ingest works with or without a compactor); this
// only starts the automatic folding. Returns an error if a compactor is
// already running.
func (w *Warehouse) StartIngest(cfg ingest.Config) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	if w.comp != nil {
		return fmt.Errorf("warehouse: StartIngest: compactor already running")
	}
	w.comp = ingest.StartCompactor(w.buf, cfg, w.compactDeltas)
	return nil
}

// StopIngest stops the background compactor after a final
// drain-and-fold, returning the first fold error the compactor hit (if
// any). A no-op when no compactor is running. Facts ingested after
// StopIngest keep buffering and wait for a FlushIngest or the next
// StartIngest.
func (w *Warehouse) StopIngest() error {
	w.wmu.Lock()
	comp := w.comp
	w.comp = nil
	w.wmu.Unlock()
	if comp == nil {
		return nil
	}
	// Stop joins a final fold that takes wmu itself, so the lock must be
	// released before waiting.
	return comp.Stop()
}

// FlushIngest synchronously drains the delta buffer and folds the batch
// into the warehouse. Concurrent with a running compactor this is safe:
// Drain hands out disjoint batches and the folds serialize on the
// writer lock (the fold is commutative — distributive merges — so the
// interleaving order cannot change the result).
func (w *Warehouse) FlushIngest() error {
	return w.compactDeltas(w.buf.Drain())
}

// compactDeltas folds one drained batch into the subcube DAG as a
// single sync-carrying publication: insert every row at the bottom,
// then synchronize at the current clock, so each fact lands at
// Cell(f, t)'s granularity and readers never observe the unfolded
// batch. It is the Compactor's fold callback and FlushIngest's body.
func (w *Warehouse) compactDeltas(rows []ingest.Row) error {
	if len(rows) == 0 {
		return nil
	}
	clk := w.met.Clock()
	start := clk.Now()
	w.wmu.Lock()
	defer w.wmu.Unlock()
	late := w.countLateLocked(rows)
	err := w.syncWithLocked(func(cs *subcube.CubeSet) error {
		for _, r := range rows {
			if err := cs.Insert(r.Refs, r.Meas); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	n := int64(len(rows))
	w.loaded.Add(n)
	w.met.FactsLoaded.Add(n)
	w.met.IngestCompacted.Add(n)
	w.met.IngestLate.Add(late)
	w.met.CompactionDuration.Observe(clk.Since(start))
	return nil
}

// countLateLocked counts the batch rows whose day already sits inside a
// reduced region: the warehouse has synchronized, and as of that last
// synchronization the specification either aggregates the fact's cell
// above the bottom or deletes it outright.
func (w *Warehouse) countLateLocked(rows []ingest.Row) int64 {
	var late int64
	for _, r := range rows {
		if w.lateLocked(r.Refs) {
			late++
		}
	}
	return late
}

// lateLocked reports whether a bottom-granularity fact with the given
// refs would land inside an already-reduced region: Cell(f, t) at the
// last synchronization time is above the bottom granularity (or the
// fact is deleted there). Never-synchronized warehouses have no reduced
// region. Invalid refs are not late — the insert path reports them.
func (w *Warehouse) lateLocked(refs []mdm.ValueID) bool {
	ts, ok := w.working.LastSync()
	if !ok {
		return false
	}
	if w.validateFact(refs, make([]float64, len(w.env.Schema.Measures))) != nil {
		return false
	}
	sp := w.working.Spec()
	if sp.DeletedBy(refs, ts) != nil {
		return true
	}
	gran, _ := sp.AggLevel(refs, ts)
	return !w.env.Schema.GranEq(gran, w.env.Schema.BottomGranularity())
}
