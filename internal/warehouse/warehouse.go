// Package warehouse is the top-level facade of the library: a
// dimensional data warehouse whose detail data is gradually and
// automatically reduced under a specification, exactly the system the
// paper describes end to end — load click (or any) facts, let time pass,
// and query the warehouse at any granularity while storage shrinks and
// the specified summaries remain exact.
package warehouse

import (
	"fmt"
	"strings"
	"sync"

	"dimred/internal/caltime"
	"dimred/internal/mdm"
	"dimred/internal/obs"
	"dimred/internal/query"
	"dimred/internal/relstore"
	"dimred/internal/sched"
	"dimred/internal/spec"
	"dimred/internal/storage"
	"dimred/internal/subcube"
)

// Warehouse combines a reduction specification, its subcube realization
// and the synchronization scheduler behind a single API.
// A Warehouse is safe for concurrent use: queries and stats may run in
// parallel; loads, clock advances and specification updates are
// serialized behind a write lock.
type Warehouse struct {
	mu    sync.RWMutex
	env   *spec.Env
	sp    *spec.Spec
	cubes *subcube.CubeSet
	sched *sched.Scheduler
	// met is the engine metric set, shared with the cube set and the
	// scheduler so every layer records into one instance.
	met *obs.Metrics
	// loaded counts user facts ever loaded.
	loaded int64
}

// Open creates a warehouse for the given environment and initial action
// set (which must form a valid — Growing and NonCrossing —
// specification).
func Open(env *spec.Env, actions ...*spec.Action) (*Warehouse, error) {
	sp, err := spec.New(env, actions...)
	if err != nil {
		return nil, err
	}
	cs, err := subcube.New(sp)
	if err != nil {
		return nil, err
	}
	return &Warehouse{env: env, sp: sp, cubes: cs, sched: sched.New(cs), met: cs.Metrics()}, nil
}

// Env returns the schema environment.
func (w *Warehouse) Env() *spec.Env { return w.env }

// Spec returns the active reduction specification.
func (w *Warehouse) Spec() *spec.Spec { return w.sp }

// Cubes returns the subcube realization.
func (w *Warehouse) Cubes() *subcube.CubeSet { return w.cubes }

// Now returns the warehouse clock.
func (w *Warehouse) Now() caltime.Day {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.sched.Now()
}

// AdvanceTo moves the clock to t; the scheduler synchronizes the
// subcubes when a significant period boundary has been crossed.
func (w *Warehouse) AdvanceTo(t caltime.Day) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.met.Advances.Inc()
	_, err := w.sched.AdvanceTo(t)
	return err
}

// Load ingests one bottom-granularity fact.
func (w *Warehouse) Load(refs []mdm.ValueID, meas []float64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.loadLocked(refs, meas)
}

func (w *Warehouse) loadLocked(refs []mdm.ValueID, meas []float64) error {
	if err := w.cubes.Insert(refs, meas); err != nil {
		return err
	}
	w.loaded++
	w.met.FactsLoaded.Inc()
	return nil
}

// LoadBatch ingests facts and then synchronizes, the paper's bulk-load
// discipline.
func (w *Warehouse) LoadBatch(rows func(load func(refs []mdm.ValueID, meas []float64) error) error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.met.BatchLoads.Inc()
	if err := rows(w.loadLocked); err != nil {
		return err
	}
	return w.sched.OnBulkLoad()
}

// Query evaluates an OLAP query (the action-specification syntax,
// e.g. "aggregate [Time.month, URL.domain] where ...") at the current
// clock, using the paper's default approaches.
func (w *Warehouse) Query(src string) (*mdm.MO, error) {
	q, err := subcube.ParseQuery(src, w.env)
	if err != nil {
		return nil, err
	}
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.cubes.Evaluate(q, w.sched.Now())
}

// QueryWith evaluates a query with explicit selection and aggregation
// approaches (the defaults are conservative and availability).
func (w *Warehouse) QueryWith(src string, sel query.Approach, agg query.AggApproach) (*mdm.MO, error) {
	q, err := subcube.ParseQuery(src, w.env)
	if err != nil {
		return nil, err
	}
	q.Sel, q.Agg = sel, agg
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.cubes.Evaluate(q, w.sched.Now())
}

// QueryAt evaluates a prepared query at an explicit time.
func (w *Warehouse) QueryAt(q subcube.Query, t caltime.Day) (*mdm.MO, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.cubes.Evaluate(q, t)
}

// QueryTraced evaluates a query like Query and additionally returns an
// execution trace: which subcubes were consulted or zone-map-pruned,
// rows scanned versus kept per cube, and per-stage durations.
func (w *Warehouse) QueryTraced(src string) (*mdm.MO, *obs.Trace, error) {
	q, err := subcube.ParseQuery(src, w.env)
	if err != nil {
		return nil, nil, err
	}
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.queryTracedLocked(src, q, w.sched.Now())
}

// QueryAtTraced evaluates a prepared query at an explicit time with an
// execution trace.
func (w *Warehouse) QueryAtTraced(q subcube.Query, t caltime.Day) (*mdm.MO, *obs.Trace, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.queryTracedLocked("", q, t)
}

func (w *Warehouse) queryTracedLocked(src string, q subcube.Query, t caltime.Day) (*mdm.MO, *obs.Trace, error) {
	tr := &obs.Trace{Query: src, At: t.String()}
	mo, err := w.cubes.EvaluateTraced(q, t, tr)
	if err != nil {
		return nil, nil, err
	}
	return mo, tr, nil
}

// InsertActions extends the specification (Definition 3) and rebuilds
// the subcube layout for it.
func (w *Warehouse) InsertActions(actions ...*spec.Action) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.sp.Insert(actions...); err != nil {
		return err
	}
	return w.cubes.ApplySpec(w.sp, w.sched.Now())
}

// DeleteActions removes actions (Definition 4: all or none, and only if
// no removed action is responsible for any current row's level) and
// rebuilds the subcube layout.
func (w *Warehouse) DeleteActions(names ...string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	// Materialize the current facts so the responsibility check of
	// Definition 4 sees the warehouse state.
	mo, err := w.materialize()
	if err != nil {
		return err
	}
	if err := w.sp.Delete(mo, w.sched.Now(), names...); err != nil {
		return err
	}
	return w.cubes.ApplySpec(w.sp, w.sched.Now())
}

func (w *Warehouse) materialize() (*mdm.MO, error) {
	out := mdm.NewMO(w.env.Schema)
	for _, c := range w.cubes.Cubes() {
		mo, err := c.MO(w.env.Schema)
		if err != nil {
			return nil, err
		}
		for f := 0; f < mo.Len(); f++ {
			fid := mdm.FactID(f)
			if _, err := out.AddFactAt(mo.Refs(fid), mo.Measures(fid), mo.BaseCount(fid), ""); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Explain reports which actions apply to a cell at the warehouse clock
// and what level each dimension is aggregated to — the paper's "why is
// my data aggregated this way" requirement, at the facade.
func (w *Warehouse) Explain(refs []mdm.ValueID) string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.sp.Explain(refs, w.sched.Now())
}

// ExportStar materializes the warehouse's current contents — rows of
// every subcube, at their mixed granularities — as a relational star
// schema (Section 7's "standard data warehouse technology"): one
// denormalized dimension table per dimension and one fact table whose
// rows reference dimension values at whatever level they live at.
func (w *Warehouse) ExportStar() (*relstore.Star, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	mo, err := w.materialize()
	if err != nil {
		return nil, err
	}
	return relstore.BuildStar(mo)
}

// CubeStat describes one subcube in Stats.
type CubeStat struct {
	Granularity string
	Rows        int
	Dead        int // tombstoned rows awaiting compaction
	Bytes       int64
}

// Stats is a storage report for the warehouse.
type Stats struct {
	LoadedFacts    int64
	Rows           int
	FactBytes      int64
	DimensionBytes int64
	// UnreducedBytes models what the fact data would occupy with no
	// reduction (loaded facts at the bottom layout).
	UnreducedBytes int64
	PerCube        []CubeStat
}

// Savings returns the fraction of fact storage saved versus keeping all
// detail.
func (s Stats) Savings() float64 {
	if s.UnreducedBytes == 0 {
		return 0
	}
	return 1 - float64(s.FactBytes)/float64(s.UnreducedBytes)
}

// String renders the report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "facts loaded: %d, rows stored: %d\n", s.LoadedFacts, s.Rows)
	fmt.Fprintf(&b, "fact bytes: %d (unreduced: %d, savings: %.1f%%), dimension bytes: %d\n",
		s.FactBytes, s.UnreducedBytes, 100*s.Savings(), s.DimensionBytes)
	for _, c := range s.PerCube {
		fmt.Fprintf(&b, "  %-40s rows=%-8d bytes=%d\n", c.Granularity, c.Rows, c.Bytes)
	}
	return b.String()
}

// Stats reports the warehouse's storage state.
func (w *Warehouse) Stats() Stats {
	w.mu.RLock()
	defer w.mu.RUnlock()
	st := Stats{LoadedFacts: w.loaded}
	layout := storage.Layout{DimCols: w.env.Schema.NumDims(), MeasCols: len(w.env.Schema.Measures)}
	st.UnreducedBytes = w.loaded * layout.RowBytes()
	for _, c := range w.cubes.Cubes() {
		st.Rows += c.Rows()
		st.FactBytes += c.Bytes()
		st.PerCube = append(st.PerCube, CubeStat{
			Granularity: w.env.Schema.GranString(c.Gran()),
			Rows:        c.Rows(),
			Dead:        c.Dead(),
			Bytes:       c.Bytes(),
		})
	}
	for _, d := range w.env.Schema.Dims {
		st.DimensionBytes += storage.DimensionBytes(d)
	}
	return st
}

// Metrics refreshes the storage gauges and returns a point-in-time
// snapshot of the engine metrics: ingest and fold counters, query and
// synchronization latency histograms, and storage accounting. Counters
// are cumulative since Open (or seeded from the snapshot after a
// restore); snapshots may be subtracted to meter a window of work.
func (w *Warehouse) Metrics() obs.MetricsSnapshot {
	w.mu.RLock()
	defer w.mu.RUnlock()
	var rows, dead int
	var bytes int64
	for _, c := range w.cubes.Cubes() {
		rows += c.Rows()
		dead += c.Dead()
		bytes += c.Bytes()
	}
	var dimBytes int64
	for _, d := range w.env.Schema.Dims {
		dimBytes += storage.DimensionBytes(d)
	}
	w.met.LiveRows.Set(int64(rows))
	w.met.DeadRows.Set(int64(dead))
	w.met.LiveBytes.Set(bytes)
	w.met.DimBytes.Set(dimBytes)
	w.met.CubeCount.Set(int64(len(w.cubes.Cubes())))
	return w.met.Snapshot()
}
