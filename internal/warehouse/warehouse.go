// Package warehouse is the top-level facade of the library: a
// dimensional data warehouse whose detail data is gradually and
// automatically reduced under a specification, exactly the system the
// paper describes end to end — load click (or any) facts, let time pass,
// and query the warehouse at any granularity while storage shrinks and
// the specified summaries remain exact.
package warehouse

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"dimred/internal/caltime"
	"dimred/internal/ingest"
	"dimred/internal/mdm"
	"dimred/internal/obs"
	"dimred/internal/query"
	"dimred/internal/relstore"
	"dimred/internal/sched"
	"dimred/internal/spec"
	"dimred/internal/storage"
	"dimred/internal/subcube"
	"dimred/internal/views"
)

// Warehouse combines a reduction specification, its subcube realization
// and the synchronization scheduler behind a single API.
//
// A Warehouse is safe for concurrent use, with a lock-free read path:
// it keeps two cube-set sides and publishes one of them, together with
// the clock it was built at, as an immutable snapshot behind an atomic
// pointer. Queries pin the current snapshot on an epoch counter and run
// against it without taking any lock, so they can never observe a
// half-applied specification or a mid-synchronization cube. Writers
// (loads, clock advances, specification updates) serialize on wmu,
// apply each operation to the unpublished working side, publish it with
// one pointer swap, wait for readers pinned to the retired side to
// drain, and then replay the same deterministic operation on the
// retired side so the two sides converge — the retired side becomes the
// next working side.
type Warehouse struct {
	env *spec.Env
	// met is the engine metric set, shared with both cube-set sides and
	// the scheduler so every layer records into one instance. discard
	// absorbs the replay of an already-counted operation on the retired
	// side, keeping counters single-counted.
	met     *obs.Metrics
	discard *obs.Metrics
	// epoch counts pinned readers per side; publishing drains the
	// retired side on it before the replay mutates that side.
	epoch *obs.Epoch
	// cur is the published snapshot. Written only under wmu; read by
	// anyone.
	cur atomic.Pointer[snapshot]
	// loaded counts user facts ever loaded. It is updated after an
	// operation commits, so a concurrent reader may briefly see a count
	// one batch behind the published rows; Stats and Metrics pin a
	// snapshot, so the skew is monitoring-only.
	loaded atomic.Int64
	// shapes accumulates view-eligible query shapes from the lock-free
	// read path (one sync.Map probe plus an atomic add per query); the
	// greedy view selector reads the trace on each refresh.
	shapes obs.ShapeStats
	// buf is the streaming-ingest delta buffer, created once at Open and
	// never replaced: Ingest appends to it without any warehouse lock,
	// and compaction drains it before taking wmu (shard mutexes are
	// leaves in the lock order).
	buf *ingest.Buffer

	// wmu serializes writers and guards the fields below.
	wmu sync.Mutex
	// working is the unpublished side the next operation applies to.
	working *subcube.CubeSet
	sched   *sched.Scheduler
	seq     int64 // snapshot sequence, surfaced as SnapshotEpoch
	// viewsOn enables materialized rollup views; vcfg bounds them.
	// Both only steer what sync-carrying commits build — the read path
	// learns about views exclusively through the published snapshot.
	viewsOn bool
	vcfg    views.Config
	// comp is the running background compactor, nil when streaming
	// ingest is stopped.
	comp *ingest.Compactor
}

// snapshot is one published read state: a cube-set side and the clock
// it was built at. Snapshots are immutable once published — readers pin
// them and evaluate without synchronization — and every publish
// allocates a fresh one, so a pinned snapshot can never be recycled
// under a reader.
//
//dimred:immutable
type snapshot struct {
	cubes *subcube.CubeSet
	now   caltime.Day
	side  uint32 // epoch side the cube set pins on
	seq   int64
	// views is the materialized rollup-view set frozen into this
	// snapshot, nil when none are published. gen is the cube set's
	// specification generation at publish; a view set whose recorded
	// generation (or build clock) disagrees is stale and is skipped,
	// never served.
	views *views.Set
	gen   uint64
}

// Open creates a warehouse for the given environment and initial action
// set (which must form a valid — Growing and NonCrossing —
// specification).
func Open(env *spec.Env, actions ...*spec.Action) (*Warehouse, error) {
	sp, err := spec.New(env, actions...)
	if err != nil {
		return nil, err
	}
	cs, err := subcube.New(sp)
	if err != nil {
		return nil, err
	}
	w := &Warehouse{
		env:     env,
		met:     cs.Metrics(),
		discard: obs.NewMetrics(),
		epoch:   obs.NewEpoch(),
		sched:   sched.New(sp),
		buf:     ingest.NewBuffer(ingest.DefaultShards),
	}
	w.working = cs.Clone()
	w.cur.Store(&snapshot{cubes: cs, side: 0, seq: 0, gen: cs.Spec().Generation()})
	return w, nil
}

// pin returns the published snapshot with its side pinned against
// reclamation; the caller must Unpin when done. The recheck closes the
// publish race: a reader that pinned a side just as a writer swapped
// the pointer retries, so after Drain observes zero pins the writer
// knows no reader still holds (or can still acquire) the retired
// snapshot.
func (w *Warehouse) pin() (*snapshot, *obs.Pin) {
	for {
		s := w.cur.Load()
		p := w.epoch.Pin(s.side)
		if w.cur.Load() == s {
			return s, p
		}
		p.Unpin()
	}
}

// commitLocked runs one deterministic mutation through the left-right
// protocol. Plain mutating commits publish without views: any views
// the previous snapshot held are invalidated by dropping them from the
// new one (the mutation may have changed the facts or the
// specification generation they summarize), and the next sync-carrying
// commit rebuilds them.
func (w *Warehouse) commitLocked(op func(cs *subcube.CubeSet) error) error {
	return w.commitWithViewsLocked(op, false)
}

// commitWithViewsLocked runs one deterministic mutation through the
// left-right protocol: apply to the working side, optionally
// materialize the selected rollup views from the post-op working side
// (so the published snapshot and its views are one atomic unit —
// readers never observe a half-built view), publish, drain readers off
// the retired side, replay on the retired side (with instrumentation
// redirected to the discard metric set, so the operation is counted
// once), and adopt the retired side as the next working side. An error
// from the first application publishes nothing and rebuilds the working
// side from a clone of the published one, restoring the two-side
// invariant.
//
//dimred:replay the retired side is drained of readers before the replay writes; this is the left-right protocol's sanctioned second application
func (w *Warehouse) commitWithViewsLocked(op func(cs *subcube.CubeSet) error, refresh bool) error {
	if err := op(w.working); err != nil {
		w.rebuildWorkingLocked()
		return err
	}
	var vs *views.Set
	if refresh && w.viewsOn {
		vs = w.buildViewsLocked()
	}
	retired := w.publishWorkingLocked(vs)
	rcs := retired.cubes
	//dimred:allow snapalias the retired side is drained of readers before replay; the metrics redirect is the replay protocol
	rcs.SetMetrics(w.discard)
	err := op(rcs)
	//dimred:allow snapalias the retired side is drained of readers before replay; the metrics redirect is the replay protocol
	rcs.SetMetrics(w.met)
	if err != nil {
		// A deterministic op that succeeded on one side cannot fail on
		// the other; if it somehow does, resynchronize the sides from
		// the published state rather than diverge.
		w.met.SnapshotRebuilds.Inc()
		w.rebuildWorkingLocked()
		return nil
	}
	w.working = rcs
	return nil
}

// publishWorkingLocked swaps the working side in as the published
// snapshot — together with the view set vs materialized from it (nil
// invalidates any previously published views) — and waits for readers
// pinned to the previously published side to drain. It returns the
// retired snapshot, whose cube set the caller now owns exclusively.
func (w *Warehouse) publishWorkingLocked(vs *views.Set) *snapshot {
	old := w.cur.Load()
	w.seq++
	w.cur.Store(&snapshot{
		cubes: w.working,
		now:   w.sched.Now(),
		side:  1 - old.side,
		seq:   w.seq,
		views: vs,
		gen:   w.working.Spec().Generation(),
	})
	w.met.SnapshotPublishes.Inc()
	w.met.SnapshotEpoch.Set(w.seq)
	w.met.ViewBytes.Set(vs.Bytes())
	w.met.SnapshotsRetained.Set(1)
	if w.epoch.Drain(old.side) {
		w.met.SnapshotDrainWaits.Inc()
	}
	w.met.SnapshotsRetained.Set(0)
	return old
}

// publishClockLocked republishes the current cube set with an updated
// clock: clock-only advances change what queries evaluate NOW to, but
// mutate no cube, so the snapshot keeps its side and nothing drains.
// Views carry over unchanged — their build clock now disagrees with the
// snapshot clock, so the freshness rule skips them until the next
// sync-carrying commit rebuilds them at the new NOW (an explicit
// QueryAt back at their build clock may still use them: the cubes are
// untouched, so they are exact there).
func (w *Warehouse) publishClockLocked() {
	old := w.cur.Load()
	w.seq++
	w.cur.Store(&snapshot{
		cubes: old.cubes,
		now:   w.sched.Now(),
		side:  old.side,
		seq:   w.seq,
		views: old.views,
		gen:   old.gen,
	})
	w.met.SnapshotPublishes.Inc()
	w.met.SnapshotEpoch.Set(w.seq)
}

// rebuildWorkingLocked discards the working side and reclones it from
// the published snapshot, after a failed operation left it (or could
// have left it) diverged.
func (w *Warehouse) rebuildWorkingLocked() {
	w.working = w.cur.Load().cubes.Clone()
}

// buildViewsLocked selects rollup granularities from the observed
// query-shape trace (greedy benefit per byte under the configured
// budget) and materializes them from the post-op working side, before
// it is published. The working side's instrumentation is redirected to
// the discard set for the duration: a view build scans cubes with the
// same machinery as a user query and must not inflate the query
// counters, while ViewBuilds and ViewBytes land on the real set. A
// build problem yields a nil set (queries fall back to the base
// subcubes), never a failed commit.
func (w *Warehouse) buildViewsLocked() *views.Set {
	layout := storage.Layout{DimCols: w.env.Schema.NumDims(), MeasCols: len(w.env.Schema.Measures)}
	cands := views.Candidates(w.env, w.shapes.Counts(), int64(w.working.TotalRows()), layout)
	picked := views.Select(cands, w.vcfg)
	if len(picked) == 0 {
		return nil
	}
	//dimred:allow snapalias the working side is off the published read path under wmu; the metrics redirect keeps view builds out of the query counters
	w.working.SetMetrics(w.discard)
	set := views.Build(w.env, w.working, picked, w.sched.Now(), w.vcfg, w.met)
	//dimred:allow snapalias the working side is off the published read path under wmu; this restores the real metric set after the build
	w.working.SetMetrics(w.met)
	return set
}

// syncLocked runs one timed synchronization round through the
// left-right protocol and reports it to the scheduler.
func (w *Warehouse) syncLocked() error { return w.syncWithLocked(nil) }

// syncWithLocked is syncLocked with an optional preparatory operation
// folded into the same commit: prep's mutations and the synchronization
// that folds them publish as one snapshot, so readers never observe the
// intermediate (e.g. a bulk-loaded but not yet reduced) state.
func (w *Warehouse) syncWithLocked(prep func(cs *subcube.CubeSet) error) error {
	clk := w.met.Clock()
	start := clk.Now()
	t := w.sched.Now()
	var moved int
	// Sync-carrying commits are where views refresh: the cube set is
	// synchronized at the commit's clock, so the materialized rollups
	// and the published snapshot agree on NOW and spec generation.
	err := w.commitWithViewsLocked(func(cs *subcube.CubeSet) error {
		if prep != nil {
			if err := prep(cs); err != nil {
				return err
			}
		}
		m, err := cs.Sync(t)
		moved = m
		return err
	}, true)
	if err != nil {
		return err
	}
	w.met.Syncs.Inc()
	w.met.SyncDuration.Observe(clk.Since(start))
	w.sched.NoteSync(moved)
	return nil
}

// Env returns the schema environment.
func (w *Warehouse) Env() *spec.Env { return w.env }

// Spec returns the active reduction specification (the published
// side's; specification updates swap in a new snapshot).
func (w *Warehouse) Spec() *spec.Spec { return w.cur.Load().cubes.Spec() }

// Cubes returns the published subcube realization, for inspection.
// The returned cube set is the live read side: treat it as read-only,
// and prefer the Warehouse methods (Sync, SetInterpreted) for anything
// that mutates — mutating it directly races with lock-free readers.
func (w *Warehouse) Cubes() *subcube.CubeSet { return w.cur.Load().cubes }

// Now returns the warehouse clock.
func (w *Warehouse) Now() caltime.Day { return w.cur.Load().now }

// AdvanceTo moves the clock to t; the scheduler synchronizes the
// subcubes when a significant period boundary has been crossed, and a
// clock-only advance republishes the snapshot so queries evaluate NOW
// at the new clock.
func (w *Warehouse) AdvanceTo(t caltime.Day) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	w.met.Advances.Inc()
	if w.sched.AdvanceTo(t) {
		return w.syncLocked()
	}
	w.publishClockLocked()
	return nil
}

// Sync forces a synchronization round at the current clock, outside the
// scheduler's significant-period cadence.
func (w *Warehouse) Sync() error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return w.syncLocked()
}

// EnableViews turns on the materialized rollup-view lattice under the
// given budget and refreshes it immediately from the query shapes
// observed so far. Until queries have recorded shapes there is nothing
// to select, so a typical sequence is: enable, run (or replay) the
// workload, and let the next sync — or an explicit RefreshViews —
// materialize the winners.
func (w *Warehouse) EnableViews(cfg views.Config) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	w.viewsOn = true
	w.vcfg = cfg
	return w.commitWithViewsLocked(noopOp, true)
}

// DisableViews turns the view lattice off and publishes a view-free
// snapshot; recorded query shapes are kept for a later re-enable.
func (w *Warehouse) DisableViews() {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	w.viewsOn = false
	_ = w.commitLocked(noopOp)
}

// RefreshViews re-selects and rebuilds the materialized views from the
// current query-shape trace at the current clock. A no-op when views
// are disabled.
func (w *Warehouse) RefreshViews() error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	if !w.viewsOn {
		return nil
	}
	return w.commitWithViewsLocked(noopOp, true)
}

// noopOp commits nothing: the left-right protocol still publishes a
// fresh snapshot, which is how view enable/refresh/disable reach
// readers without a cube mutation.
func noopOp(*subcube.CubeSet) error { return nil }

// ViewStats reports the published view set: how many views are live
// and the modeled bytes they retain.
func (w *Warehouse) ViewStats() (count int, bytes int64) {
	s, p := w.pin()
	defer p.Unpin()
	return s.views.Len(), s.views.Bytes()
}

// SetInterpreted selects the interpreted evaluation path (true) or the
// compiled specexec path (false, the default) on both cube-set sides.
func (w *Warehouse) SetInterpreted(v bool) {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	// The flag is read by lock-free queries, so it flips through the
	// same publish-and-drain protocol as any other mutation. The op
	// cannot fail.
	_ = w.commitLocked(func(cs *subcube.CubeSet) error {
		cs.SetInterpreted(v)
		return nil
	})
}

// Load ingests one bottom-granularity fact. A fact whose day is
// already inside a reduced region — the specification aggregates (or
// deletes) its cell as of the last synchronization — is late: leaving
// it at the bottom until the next scheduled sync would let queries
// observe it at a granularity the Growing invariant says no longer
// exists there, so the commit carries a synchronization and the fact
// lands at Cell(f, t)'s granularity immediately, merged distributively.
func (w *Warehouse) Load(refs []mdm.ValueID, meas []float64) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	op := func(cs *subcube.CubeSet) error {
		return cs.Insert(refs, meas)
	}
	var err error
	if w.lateLocked(refs) {
		err = w.syncWithLocked(op)
	} else {
		err = w.commitLocked(op)
	}
	if err != nil {
		return err
	}
	w.loaded.Add(1)
	w.met.FactsLoaded.Inc()
	return nil
}

// LoadBatch ingests facts and synchronizes, the paper's bulk-load
// discipline. The batch and its synchronization commit as one
// publication: queries see either the pre-batch warehouse or the
// reduced post-sync one — never the loaded-but-unfolded batch — and a
// row that fails validation publishes nothing.
func (w *Warehouse) LoadBatch(rows func(load func(refs []mdm.ValueID, meas []float64) error) error) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	// Buffer the callback's rows: the commit applies the batch to both
	// sides, and user code must not be re-entered (or observe a
	// half-applied side) on the replay.
	type bufRow struct {
		refs []mdm.ValueID
		meas []float64
	}
	var buf []bufRow
	err := rows(func(refs []mdm.ValueID, meas []float64) error {
		buf = append(buf, bufRow{
			refs: append([]mdm.ValueID(nil), refs...),
			meas: append([]float64(nil), meas...),
		})
		return nil
	})
	if err != nil {
		return err
	}
	// An empty batch publishes nothing: no sync, no snapshot churn, no
	// view rebuild — and no BatchLoads tick, so the metrics pin the
	// short-circuit.
	if len(buf) == 0 {
		return nil
	}
	w.met.BatchLoads.Inc()
	err = w.syncWithLocked(func(cs *subcube.CubeSet) error {
		for _, r := range buf {
			if err := cs.Insert(r.refs, r.meas); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	w.loaded.Add(int64(len(buf)))
	w.met.FactsLoaded.Add(int64(len(buf)))
	return nil
}

// Query evaluates an OLAP query (the action-specification syntax,
// e.g. "aggregate [Time.month, URL.domain] where ...") at the current
// clock, using the paper's default approaches.
func (w *Warehouse) Query(src string) (*mdm.MO, error) {
	q, err := subcube.ParseQuery(src, w.env)
	if err != nil {
		return nil, err
	}
	s, p := w.pin()
	defer p.Unpin()
	if mo, ok := w.viewAnswer(s, q, s.now); ok {
		return mo, nil
	}
	return s.cubes.Evaluate(q, s.now)
}

// QueryWith evaluates a query with explicit selection and aggregation
// approaches (the defaults are conservative and availability).
func (w *Warehouse) QueryWith(src string, sel query.Approach, agg query.AggApproach) (*mdm.MO, error) {
	q, err := subcube.ParseQuery(src, w.env)
	if err != nil {
		return nil, err
	}
	q.Sel, q.Agg = sel, agg
	s, p := w.pin()
	defer p.Unpin()
	if mo, ok := w.viewAnswer(s, q, s.now); ok {
		return mo, nil
	}
	return s.cubes.Evaluate(q, s.now)
}

// QueryAt evaluates a prepared query at an explicit time.
func (w *Warehouse) QueryAt(q subcube.Query, t caltime.Day) (*mdm.MO, error) {
	s, p := w.pin()
	defer p.Unpin()
	if mo, ok := w.viewAnswer(s, q, t); ok {
		return mo, nil
	}
	return s.cubes.Evaluate(q, t)
}

// viewAnswer tries to answer q from the snapshot's materialized views:
// the smallest view whose granularity rolls up to the target, provided
// the set was built at exactly clock t under the snapshot's spec
// generation (a stale view is skipped, not served — the base subcubes
// answer instead). Every view-eligible query records its shape into
// the selector's trace, hit or miss; misses are counted only while a
// view set is published, so a views-off warehouse pays one map probe
// and nothing else.
func (w *Warehouse) viewAnswer(s *snapshot, q subcube.Query, t caltime.Day) (*mdm.MO, bool) {
	if !q.ViewEligible() || len(q.Target) != w.env.Schema.NumDims() {
		return nil, false
	}
	w.shapes.Record(spec.EncodeGran(q.Target))
	if s.views == nil {
		return nil, false
	}
	mo, ok := s.views.Answer(w.env.Schema, q, t, s.gen)
	if !ok {
		w.met.ViewMisses.Inc()
		return nil, false
	}
	w.met.ViewHits.Inc()
	return mo, true
}

// QueryTraced evaluates a query like Query and additionally returns an
// execution trace: which subcubes were consulted or zone-map-pruned,
// rows scanned versus kept per cube, and per-stage durations.
func (w *Warehouse) QueryTraced(src string) (*mdm.MO, *obs.Trace, error) {
	q, err := subcube.ParseQuery(src, w.env)
	if err != nil {
		return nil, nil, err
	}
	s, p := w.pin()
	defer p.Unpin()
	return queryTraced(s, src, q, s.now)
}

// QueryAtTraced evaluates a prepared query at an explicit time with an
// execution trace.
func (w *Warehouse) QueryAtTraced(q subcube.Query, t caltime.Day) (*mdm.MO, *obs.Trace, error) {
	s, p := w.pin()
	defer p.Unpin()
	return queryTraced(s, "", q, t)
}

func queryTraced(s *snapshot, src string, q subcube.Query, t caltime.Day) (*mdm.MO, *obs.Trace, error) {
	tr := &obs.Trace{Query: src, At: t.String()}
	mo, err := s.cubes.EvaluateTraced(q, t, tr)
	if err != nil {
		return nil, nil, err
	}
	return mo, tr, nil
}

// InsertActions extends the specification (Definition 3) and rebuilds
// the subcube layout for it. Queries racing with the update see either
// the old layout or the new one, never a mixture.
func (w *Warehouse) InsertActions(actions ...*spec.Action) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	t := w.sched.Now()
	return w.commitLocked(func(cs *subcube.CubeSet) error {
		sp := cs.Spec()
		if err := sp.Insert(actions...); err != nil {
			return err
		}
		return cs.ApplySpec(sp, t)
	})
}

// DeleteActions removes actions (Definition 4: all or none, and only if
// no removed action is responsible for any current row's level) and
// rebuilds the subcube layout.
func (w *Warehouse) DeleteActions(names ...string) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	t := w.sched.Now()
	return w.commitLocked(func(cs *subcube.CubeSet) error {
		// Materialize the current facts so the responsibility check of
		// Definition 4 sees the warehouse state.
		mo, err := materialize(w.env, cs)
		if err != nil {
			return err
		}
		sp := cs.Spec()
		if err := sp.Delete(mo, t, names...); err != nil {
			return err
		}
		return cs.ApplySpec(sp, t)
	})
}

func materialize(env *spec.Env, cs *subcube.CubeSet) (*mdm.MO, error) {
	out := mdm.NewMO(env.Schema)
	for _, c := range cs.Cubes() {
		mo, err := c.MO(env.Schema)
		if err != nil {
			return nil, err
		}
		for f := 0; f < mo.Len(); f++ {
			fid := mdm.FactID(f)
			if _, err := out.AddFactAt(mo.Refs(fid), mo.Measures(fid), mo.BaseCount(fid), ""); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Explain reports which actions apply to a cell at the warehouse clock
// and what level each dimension is aggregated to — the paper's "why is
// my data aggregated this way" requirement, at the facade.
func (w *Warehouse) Explain(refs []mdm.ValueID) string {
	s, p := w.pin()
	defer p.Unpin()
	return s.cubes.Spec().Explain(refs, s.now)
}

// ExportStar materializes the warehouse's current contents — rows of
// every subcube, at their mixed granularities — as a relational star
// schema (Section 7's "standard data warehouse technology"): one
// denormalized dimension table per dimension and one fact table whose
// rows reference dimension values at whatever level they live at.
func (w *Warehouse) ExportStar() (*relstore.Star, error) {
	s, p := w.pin()
	defer p.Unpin()
	mo, err := materialize(w.env, s.cubes)
	if err != nil {
		return nil, err
	}
	return relstore.BuildStar(mo)
}

// CubeStat describes one subcube in Stats.
type CubeStat struct {
	Granularity string
	Rows        int
	Dead        int // tombstoned rows awaiting compaction
	Bytes       int64
}

// Stats is a storage report for the warehouse.
type Stats struct {
	LoadedFacts    int64
	Rows           int
	FactBytes      int64
	DimensionBytes int64
	// UnreducedBytes models what the fact data would occupy with no
	// reduction (loaded facts at the bottom layout).
	UnreducedBytes int64
	PerCube        []CubeStat
}

// Savings returns the fraction of fact storage saved versus keeping all
// detail.
func (s Stats) Savings() float64 {
	if s.UnreducedBytes == 0 {
		return 0
	}
	return 1 - float64(s.FactBytes)/float64(s.UnreducedBytes)
}

// String renders the report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "facts loaded: %d, rows stored: %d\n", s.LoadedFacts, s.Rows)
	fmt.Fprintf(&b, "fact bytes: %d (unreduced: %d, savings: %.1f%%), dimension bytes: %d\n",
		s.FactBytes, s.UnreducedBytes, 100*s.Savings(), s.DimensionBytes)
	for _, c := range s.PerCube {
		fmt.Fprintf(&b, "  %-40s rows=%-8d bytes=%d\n", c.Granularity, c.Rows, c.Bytes)
	}
	return b.String()
}

// Stats reports the warehouse's storage state.
func (w *Warehouse) Stats() Stats {
	s, p := w.pin()
	defer p.Unpin()
	st := Stats{LoadedFacts: w.loaded.Load()}
	layout := storage.Layout{DimCols: w.env.Schema.NumDims(), MeasCols: len(w.env.Schema.Measures)}
	st.UnreducedBytes = st.LoadedFacts * layout.RowBytes()
	for _, c := range s.cubes.Cubes() {
		st.Rows += c.Rows()
		st.FactBytes += c.Bytes()
		st.PerCube = append(st.PerCube, CubeStat{
			Granularity: w.env.Schema.GranString(c.Gran()),
			Rows:        c.Rows(),
			Dead:        c.Dead(),
			Bytes:       c.Bytes(),
		})
	}
	for _, d := range w.env.Schema.Dims {
		st.DimensionBytes += storage.DimensionBytes(d)
	}
	return st
}

// Metrics refreshes the storage gauges and returns a point-in-time
// snapshot of the engine metrics: ingest and fold counters, query and
// synchronization latency histograms, snapshot lifecycle counters, and
// storage accounting. Counters are cumulative since Open (or seeded
// from the snapshot after a restore); snapshots may be subtracted to
// meter a window of work.
func (w *Warehouse) Metrics() obs.MetricsSnapshot {
	s, p := w.pin()
	defer p.Unpin()
	var rows, dead int
	var bytes int64
	for _, c := range s.cubes.Cubes() {
		rows += c.Rows()
		dead += c.Dead()
		bytes += c.Bytes()
	}
	var dimBytes int64
	for _, d := range w.env.Schema.Dims {
		dimBytes += storage.DimensionBytes(d)
	}
	w.met.LiveRows.Set(int64(rows))
	w.met.DeadRows.Set(int64(dead))
	w.met.LiveBytes.Set(bytes)
	w.met.DimBytes.Set(dimBytes)
	w.met.CubeCount.Set(int64(len(s.cubes.Cubes())))
	w.met.IngestPending.Set(w.buf.Pending())
	return w.met.Snapshot()
}
