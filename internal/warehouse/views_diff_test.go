package warehouse

import (
	"fmt"
	"sync"
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/mdm"
	"dimred/internal/query"
	"dimred/internal/spec"
	"dimred/internal/subcube"
	"dimred/internal/views"
	"dimred/internal/workload"
)

// viewDiffBattery is the query battery the three-way differential runs
// at every step: the view-servable shapes, a predicated shape, and the
// quarter shape under every selection and aggregation approach —
// Liberal, Weighted, Strict, LUB and Disaggregated all fall back to the
// base path, and must agree with the oracle whether or not a view also
// answered the availability form.
func viewDiffBattery(env *spec.Env) []subcube.Query {
	var out []subcube.Query
	for _, src := range viewShapeQueries {
		out = append(out, subcube.MustParseQuery(src, env))
	}
	out = append(out, subcube.MustParseQuery(
		`aggregate [Time.month, URL.domain] where Time.month <= NOW - 2 months`, env))
	base := subcube.MustParseQuery(`aggregate [Time.quarter, URL.domain_grp]`, env)
	for _, agg := range []query.AggApproach{query.Strict, query.LUB, query.Disaggregated} {
		q := base
		q.Agg = agg
		out = append(out, q)
	}
	liberal := base
	liberal.Sel = query.Liberal
	out = append(out, liberal)
	weighted := subcube.MustParseQuery(
		`aggregate [Time.quarter, URL.domain_grp] where Time.month <= NOW - 1 months`, env)
	weighted.Sel = query.Weighted
	out = append(out, weighted)
	return out
}

// TestDifferentialViewsVsBaseVsOracle drives a views-enabled warehouse,
// a views-disabled warehouse and an interpreted oracle cube set through
// one op script — batch loads, single-fact loads that leave the
// published snapshot without views, clock advances across sync
// boundaries, spec churn — and asserts the full battery answers
// byte-identically (canonical cells, measures and base counts) on all
// three at every step. View serving must be a pure read optimization:
// no query result may depend on whether a view answered it.
func TestDifferentialViewsVsBaseVsOracle(t *testing.T) {
	obj, err := workload.NewClickSchema()
	if err != nil {
		t.Fatal(err)
	}
	env, err := spec.NewEnv(obj.Schema, "Time", obj.Time)
	if err != nil {
		t.Fatal(err)
	}
	mAct, qAct, churn := stressSpec(t, env)
	wOn, err := Open(env, mAct, qAct)
	if err != nil {
		t.Fatal(err)
	}
	wOff, err := Open(env, mAct, qAct)
	if err != nil {
		t.Fatal(err)
	}
	oracleSpec, err := spec.New(env, mAct, qAct)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := subcube.New(oracleSpec)
	if err != nil {
		t.Fatal(err)
	}
	oracle.SetInterpreted(true)

	start := caltime.Date(2000, 1, 1)
	refs, meas := stressRows(t, obj, 240, start)
	battery := viewDiffBattery(env)

	compare := func(step string) {
		t.Helper()
		at := wOn.Now()
		for i, q := range battery {
			got, err := wOn.QueryAt(q, at)
			if err != nil {
				t.Fatalf("%s: views-on query %d: %v", step, i, err)
			}
			base, err := wOff.QueryAt(q, at)
			if err != nil {
				t.Fatalf("%s: views-off query %d: %v", step, i, err)
			}
			want, err := oracle.Evaluate(q, at)
			if err != nil {
				t.Fatalf("%s: oracle query %d: %v", step, i, err)
			}
			if g, b := got.DumpCells(), base.DumpCells(); g != b {
				t.Fatalf("%s: query %d diverged\nviews-on:\n%s\nviews-off:\n%s", step, i, g, b)
			}
			if g, o := got.DumpCells(), want.DumpCells(); g != o {
				t.Fatalf("%s: query %d diverged\nviews-on:\n%s\ninterpreted oracle:\n%s", step, i, g, o)
			}
		}
	}

	// Mirror warehouse syncs onto the oracle; both warehouses run the
	// same script, so their sync counts stay in lockstep.
	syncsSeen := wOn.Metrics().Syncs
	mirrorSync := func() {
		t.Helper()
		if on, off := wOn.Metrics().Syncs, wOff.Metrics().Syncs; on != off {
			t.Fatalf("warehouses out of lockstep: %d vs %d syncs", on, off)
		}
		if n := wOn.Metrics().Syncs; n != syncsSeen {
			syncsSeen = n
			if _, err := oracle.Sync(wOn.Now()); err != nil {
				t.Fatal(err)
			}
		}
	}
	advance := func(d caltime.Day) {
		t.Helper()
		if err := wOn.AdvanceTo(d); err != nil {
			t.Fatal(err)
		}
		if err := wOff.AdvanceTo(d); err != nil {
			t.Fatal(err)
		}
		mirrorSync()
		compare(fmt.Sprintf("advance to %v", d))
	}
	loadBoth := func(lo, hi int) {
		t.Helper()
		for _, w := range []*Warehouse{wOn, wOff} {
			err := w.LoadBatch(func(ld func([]mdm.ValueID, []float64) error) error {
				for i := lo; i < hi; i++ {
					if err := ld(refs[i], meas[i]); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		for i := lo; i < hi; i++ {
			if err := oracle.Insert(refs[i], meas[i]); err != nil {
				t.Fatal(err)
			}
		}
		mirrorSync()
		compare(fmt.Sprintf("load [%d,%d)", lo, hi))
	}

	advance(caltime.Date(2000, 6, 1))
	compare("before enable") // also records the battery's shapes on wOn
	if err := wOn.EnableViews(views.Config{}); err != nil {
		t.Fatal(err)
	}
	loadBoth(0, 80)
	advance(caltime.Date(2000, 8, 1))
	if n, _ := wOn.ViewStats(); n == 0 {
		t.Fatal("no views materialized by the sync-carrying advance")
	}
	compare("with views live")

	// An on-time single-fact load invalidates the views mid-script: the
	// published snapshot answers from base until the next sync, and must
	// still agree everywhere. (A late fact would not exercise this path:
	// it folds at Cell(f, t) with a sync-carrying commit, which rebuilds
	// the views in the same publication.)
	onTimeRefs, onTimeMeas, err := obj.Row(workload.Click{
		Day: wOn.Now(), URL: "http://www.site0.com/page/0",
		Dwell: 2, Delivery: 3, SizeKB: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := wOn.Load(onTimeRefs, onTimeMeas); err != nil {
		t.Fatal(err)
	}
	if err := wOff.Load(onTimeRefs, onTimeMeas); err != nil {
		t.Fatal(err)
	}
	if err := oracle.Insert(onTimeRefs, onTimeMeas); err != nil {
		t.Fatal(err)
	}
	if n, _ := wOn.ViewStats(); n != 0 {
		t.Fatalf("%d views survived a mutating commit", n)
	}
	compare("unsynced single-fact load")

	// And a late single-fact load — refs[80]'s day is deep inside the
	// reduced region at this clock — folds immediately and must agree on
	// all three paths with the views rebuilt by its carried sync.
	if err := wOn.Load(refs[80], meas[80]); err != nil {
		t.Fatal(err)
	}
	if err := wOff.Load(refs[80], meas[80]); err != nil {
		t.Fatal(err)
	}
	if err := oracle.Insert(refs[80], meas[80]); err != nil {
		t.Fatal(err)
	}
	mirrorSync()
	if n, _ := wOn.ViewStats(); n == 0 {
		t.Fatal("late single-fact load's carried sync did not rebuild the views")
	}
	compare("late single-fact load")
	loadBoth(81, 160)

	// Spec churn bumps the generation on both warehouses and the oracle.
	for _, w := range []*Warehouse{wOn, wOff} {
		if err := w.InsertActions(churn); err != nil {
			t.Fatal(err)
		}
	}
	if err := oracleSpec.Insert(churn); err != nil {
		t.Fatal(err)
	}
	if err := oracle.ApplySpec(oracleSpec, wOn.Now()); err != nil {
		t.Fatal(err)
	}
	compare("insert churn action")
	if err := wOn.RefreshViews(); err != nil {
		t.Fatal(err)
	}
	compare("refresh under churned spec")

	advance(caltime.Date(2001, 1, 1))
	loadBoth(160, 240)
	advance(caltime.Date(2001, 6, 1))

	if hits := wOn.Metrics().ViewHits; hits == 0 {
		t.Error("differential never exercised a view-served answer")
	}
}

// TestStressViewsNeverServeStale races readers against a writer that
// interleaves batch loads, clock advances, spec churn and view
// enable/refresh/disable, with the rollup-view lattice live. Readers
// re-check the snapshot atomicity invariants on a view-servable shape:
// totals advance in whole batches and never go backwards. A view
// serving a stale generation or build clock would answer with a
// pre-batch total after a newer one was observed, breaking
// monotonicity; under -race this also checks the view set rides the
// pin/publish/drain protocol's happens-before edges.
func TestStressViewsNeverServeStale(t *testing.T) {
	obj, err := workload.NewClickSchema()
	if err != nil {
		t.Fatal(err)
	}
	env, err := spec.NewEnv(obj.Schema, "Time", obj.Time)
	if err != nil {
		t.Fatal(err)
	}
	mAct, qAct, churn := stressSpec(t, env)
	w, err := Open(env, mAct, qAct)
	if err != nil {
		t.Fatal(err)
	}
	start := caltime.Date(2000, 1, 1)
	if err := w.AdvanceTo(caltime.Date(2000, 6, 1)); err != nil {
		t.Fatal(err)
	}

	const (
		initRows   = 200
		batches    = 24
		batchRows  = 25
		readerGoro = 4
	)
	refs, meas := stressRows(t, obj, initRows+batches*batchRows, start)
	load := func(lo, hi int) error {
		return w.LoadBatch(func(ld func([]mdm.ValueID, []float64) error) error {
			for i := lo; i < hi; i++ {
				if err := ld(refs[i], meas[i]); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if err := load(0, initRows); err != nil {
		t.Fatal(err)
	}

	q := subcube.MustParseQuery(`aggregate [Time.quarter, URL.domain_grp]`, env)
	// Seed the shape trace so every refresh has a view to build.
	if _, err := w.QueryAt(q, w.Now()); err != nil {
		t.Fatal(err)
	}
	if err := w.EnableViews(views.Config{}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readerGoro; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastCount := float64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := w.QueryAt(q, w.Now())
				if err != nil {
					t.Error(err)
					return
				}
				tot := grandTotals(res)
				count := tot[0]
				k := (count - initRows) / batchRows
				if k != float64(int(k)) || k < 0 || k > batches {
					t.Errorf("count %v is not initial %d plus whole batches of %d", count, initRows, batchRows)
					return
				}
				if count < lastCount {
					t.Errorf("count went backwards: %v after %v — a stale view was served", count, lastCount)
					return
				}
				lastCount = count
				if tot[1] != 2*count || tot[2] != 3*count || tot[3] != 5*count {
					t.Errorf("measure totals %v out of lockstep with count %v", tot, count)
					return
				}
			}
		}()
	}

	for b := 0; b < batches; b++ {
		lo := initRows + b*batchRows
		if err := load(lo, lo+batchRows); err != nil {
			t.Fatal(err)
		}
		switch b % 6 {
		case 1:
			if err := w.InsertActions(churn); err != nil {
				t.Fatal(err)
			}
		case 3:
			if err := w.DeleteActions("y"); err != nil {
				t.Fatal(err)
			}
		case 2:
			if err := w.AdvanceTo(w.Now() + 1); err != nil {
				t.Fatal(err)
			}
		case 4:
			if err := w.RefreshViews(); err != nil {
				t.Fatal(err)
			}
		case 5:
			w.DisableViews()
			if err := w.EnableViews(views.Config{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()

	res, err := w.QueryAt(q, w.Now())
	if err != nil {
		t.Fatal(err)
	}
	if tot := grandTotals(res); tot[0] != initRows+batches*batchRows {
		t.Errorf("final count = %v, want %d", tot[0], initRows+batches*batchRows)
	}
	m := w.Metrics()
	if m.ViewBuilds == 0 {
		t.Error("storm never built a view")
	}
}
