package warehouse

import (
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/mdm"
	"dimred/internal/spec"
	"dimred/internal/workload"
)

// TestSoakThreeYearLifecycle is a long-haul end-to-end run: three years
// of weekly bulk loads under a three-tier policy with a deletion tail,
// verifying after every load that (a) grand totals equal what was
// loaded minus what was deleted, (b) storage never exceeds the
// unreduced footprint, and (c) the bottom cube holds only recent data.
// Skipped with -short.
func TestSoakThreeYearLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	obj, err := workload.NewClickSchema()
	if err != nil {
		t.Fatal(err)
	}
	env, err := spec.NewEnv(obj.Schema, "Time", obj.Time)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Open(env,
		spec.MustCompileString("m", `aggregate [Time.month, URL.domain] where Time.month <= NOW - 2 months`, env),
		spec.MustCompileString("q", `aggregate [Time.quarter, URL.domain_grp] where Time.quarter <= NOW - 4 quarters`, env),
		spec.MustCompileString("purge", `delete where Time.year <= NOW - 3 years`, env))
	if err != nil {
		t.Fatal(err)
	}
	start := caltime.Date(2000, 1, 3)
	if err := w.AdvanceTo(start); err != nil {
		t.Fatal(err)
	}

	var loadedClicks float64
	week := 0
	for day := start; day < caltime.Date(2003, 1, 1); day += 7 {
		week++
		cfg := workload.ClickConfig{
			Seed: int64(week), Start: day, Days: 7, ClicksPerDay: 40,
			Domains: 8, URLsPerDomain: 4,
		}
		err := w.LoadBatch(func(load func([]mdm.ValueID, []float64) error) error {
			return workload.GenerateClicks(cfg, func(c workload.Click) error {
				refs, meas, err := obj.Row(c)
				if err != nil {
					return err
				}
				loadedClicks++
				return load(refs, meas)
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.AdvanceTo(day + 7); err != nil {
			t.Fatal(err)
		}
		if week%13 != 0 {
			continue // verify quarterly to keep the soak fast
		}
		res, err := w.Query(`aggregate [Time.TOP, URL.TOP]`)
		if err != nil {
			t.Fatal(err)
		}
		var have float64
		if res.Len() > 0 {
			have = res.Measure(0, 0)
		}
		deleted := float64(w.Cubes().DeletedFacts())
		if have+deleted != loadedClicks {
			t.Fatalf("week %d: have %v + deleted %v != loaded %v", week, have, deleted, loadedClicks)
		}
		st := w.Stats()
		if st.FactBytes > st.UnreducedBytes {
			t.Fatalf("week %d: fact bytes exceed unreduced footprint", week)
		}
		// The bottom cube's live rows should be at most ~3 months old
		// (its zone map is a never-shrinking hull, so inspect the rows).
		bottom := w.Cubes().Cubes()[0]
		bmo, err := bottom.MO(env.Schema)
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < bmo.Len(); f++ {
			v := bmo.Ref(mdm.FactID(f), 0)
			p, ok := obj.Time.PeriodOfValue(v)
			if !ok {
				t.Fatal("bottom row without period")
			}
			if age := day - caltime.Day(p.Index); age > 150 {
				t.Fatalf("week %d: bottom cube holds a row %d days old", week, age)
			}
		}
	}
	// After three years, the 2000 data has been deleted.
	if w.Cubes().DeletedFacts() == 0 {
		t.Error("nothing was purged over three years")
	}
	st := w.Stats()
	if st.Savings() < 0.9 {
		t.Errorf("final savings = %.2f", st.Savings())
	}
	t.Logf("soak: loaded %v clicks, deleted %d, final rows %d, savings %.1f%%",
		loadedClicks, w.Cubes().DeletedFacts(), st.Rows, 100*st.Savings())
}
