package warehouse

import (
	"sync"
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/mdm"
	"dimred/internal/spec"
	"dimred/internal/workload"
)

// TestConcurrentQueriesAndLoads hammers a warehouse with parallel
// queries while a writer interleaves loads and clock advances; run with
// -race this validates the locking discipline.
//
// Note: dimension builders are not concurrent-safe, so the writer
// resolves dimension values before handing rows to the warehouse.
func TestConcurrentQueriesAndLoads(t *testing.T) {
	obj, err := workload.NewClickSchema()
	if err != nil {
		t.Fatal(err)
	}
	env, err := spec.NewEnv(obj.Schema, "Time", obj.Time)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Open(env,
		spec.MustCompileString("m", `aggregate [Time.month, URL.domain] where Time.month <= NOW - 1 month`, env))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AdvanceTo(caltime.Date(2000, 1, 1)); err != nil {
		t.Fatal(err)
	}

	// Pre-resolve all rows (dimension mutation happens here, before the
	// concurrent phase).
	type row struct {
		refs []mdm.ValueID
		meas []float64
	}
	var rows []row
	cfg := workload.ClickConfig{Seed: 13, Start: caltime.Date(2000, 1, 1), Days: 90, ClicksPerDay: 10}
	err = workload.GenerateClicks(cfg, func(c workload.Click) error {
		refs, meas, err := obj.Row(c)
		if err != nil {
			return err
		}
		rows = append(rows, row{refs, meas})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := w.Query(`aggregate [Time.month, URL.domain_grp]`); err != nil {
					t.Error(err)
					return
				}
				_ = w.Stats()
				_ = w.Now()
			}
		}()
	}
	// Writer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		day := caltime.Date(2000, 1, 2)
		for i, r := range rows {
			if err := w.Load(r.refs, r.meas); err != nil {
				t.Error(err)
				return
			}
			if i%200 == 199 {
				day += 20
				if err := w.AdvanceTo(day); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()

	// Everything loaded is queryable.
	if err := w.AdvanceTo(caltime.Date(2000, 8, 1)); err != nil {
		t.Fatal(err)
	}
	res, err := w.Query(`aggregate [Time.TOP, URL.TOP]`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Measure(0, 0) != float64(len(rows)) {
		t.Errorf("grand count = %v, want %d", res.Measure(0, 0), len(rows))
	}
}
