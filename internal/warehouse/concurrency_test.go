package warehouse

import (
	"sync"
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/mdm"
	"dimred/internal/spec"
	"dimred/internal/workload"
)

// TestConcurrentQueriesAndLoads hammers a warehouse with parallel
// queries while a writer interleaves loads and clock advances; run with
// -race this validates the locking discipline.
//
// Note: dimension builders are not concurrent-safe, so the writer
// resolves dimension values before handing rows to the warehouse.
func TestConcurrentQueriesAndLoads(t *testing.T) {
	obj, err := workload.NewClickSchema()
	if err != nil {
		t.Fatal(err)
	}
	env, err := spec.NewEnv(obj.Schema, "Time", obj.Time)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Open(env,
		spec.MustCompileString("m", `aggregate [Time.month, URL.domain] where Time.month <= NOW - 1 month`, env))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AdvanceTo(caltime.Date(2000, 1, 1)); err != nil {
		t.Fatal(err)
	}

	// Pre-resolve all rows (dimension mutation happens here, before the
	// concurrent phase).
	type row struct {
		refs []mdm.ValueID
		meas []float64
	}
	var rows []row
	cfg := workload.ClickConfig{Seed: 13, Start: caltime.Date(2000, 1, 1), Days: 90, ClicksPerDay: 10}
	err = workload.GenerateClicks(cfg, func(c workload.Click) error {
		refs, meas, err := obj.Row(c)
		if err != nil {
			return err
		}
		rows = append(rows, row{refs, meas})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := w.Query(`aggregate [Time.month, URL.domain_grp]`); err != nil {
					t.Error(err)
					return
				}
				_ = w.Stats()
				_ = w.Now()
			}
		}()
	}
	// Writer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		day := caltime.Date(2000, 1, 2)
		for i, r := range rows {
			if err := w.Load(r.refs, r.meas); err != nil {
				t.Error(err)
				return
			}
			if i%200 == 199 {
				day += 20
				if err := w.AdvanceTo(day); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()

	// Everything loaded is queryable.
	if err := w.AdvanceTo(caltime.Date(2000, 8, 1)); err != nil {
		t.Fatal(err)
	}
	res, err := w.Query(`aggregate [Time.TOP, URL.TOP]`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Measure(0, 0) != float64(len(rows)) {
		t.Errorf("grand count = %v, want %d", res.Measure(0, 0), len(rows))
	}
}

// TestConcurrentQueryMutateAdvance stresses the generation-keyed
// program cache under -race: readers query (compiled path, cache
// lookups under the read lock) while one writer interleaves
// specification mutations — each bumping the generation and
// invalidating the cache — with clock advances. The queried totals
// must stay exact throughout, and the cache counters must show both
// reuse and invalidation.
func TestConcurrentQueryMutateAdvance(t *testing.T) {
	obj, err := workload.NewClickSchema()
	if err != nil {
		t.Fatal(err)
	}
	env, err := spec.NewEnv(obj.Schema, "Time", obj.Time)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Open(env,
		spec.MustCompileString("m", `aggregate [Time.month, URL.domain] where Time.month <= NOW - 1 month`, env))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AdvanceTo(caltime.Date(2000, 1, 1)); err != nil {
		t.Fatal(err)
	}

	// Resolve all dimension values before the concurrent phase, including
	// a domain that never receives facts: the churn action below
	// restricts to it, so Definition 4's responsibility check always
	// lets the action go again.
	if _, err := obj.URL.EnsureURL("http://www.unused.com/none"); err != nil {
		t.Fatal(err)
	}
	cfg := workload.ClickConfig{Seed: 29, Start: caltime.Date(2000, 1, 1), Days: 60, ClicksPerDay: 8}
	loaded := 0
	err = workload.GenerateClicks(cfg, func(c workload.Click) error {
		refs, meas, err := obj.Row(c)
		if err != nil {
			return err
		}
		loaded++
		return w.Load(refs, meas)
	})
	if err != nil {
		t.Fatal(err)
	}
	churn := spec.MustCompileString("churn",
		`aggregate [Time.month, URL.domain] where URL.domain = "unused.com" and Time.month <= NOW - 2 months`, env)
	// Prove the mutation pair is accepted before racing it.
	if err := w.InsertActions(churn); err != nil {
		t.Fatal(err)
	}
	if err := w.DeleteActions("churn"); err != nil {
		t.Fatal(err)
	}
	gen0 := w.Spec().Generation()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := w.Query(`aggregate [Time.TOP, URL.TOP]`)
				if err != nil {
					t.Error(err)
					return
				}
				// Every mutation keeps the same facts, so the grand
				// total is invariant no matter which generation of the
				// compiled program a query raced against.
				if res.Len() != 1 || res.Measure(0, 0) != float64(loaded) {
					t.Errorf("grand count = %v, want %d", res.Measure(0, 0), loaded)
					return
				}
				_ = w.Metrics()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		day := caltime.Date(2000, 3, 1)
		for i := 0; i < 20; i++ {
			if err := w.InsertActions(churn); err != nil {
				t.Error(err)
				return
			}
			if err := w.DeleteActions("churn"); err != nil {
				t.Error(err)
				return
			}
			if i%5 == 4 {
				day += 10
				if err := w.AdvanceTo(day); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()

	if got, want := w.Spec().Generation(), gen0+40; got != want {
		t.Errorf("spec generation = %d after 40 committed mutations, want %d", got, want)
	}
	snap := w.Metrics()
	if snap.ProgramCacheMisses == 0 || snap.ProgramCacheHits == 0 {
		t.Errorf("cache counters show no churn: hits=%d misses=%d", snap.ProgramCacheHits, snap.ProgramCacheMisses)
	}
	if snap.ProgramCompiles < snap.ProgramCacheMisses {
		t.Errorf("compiles=%d < misses=%d: every miss must compile", snap.ProgramCompiles, snap.ProgramCacheMisses)
	}
	res, err := w.Query(`aggregate [Time.TOP, URL.TOP]`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Measure(0, 0) != float64(loaded) {
		t.Errorf("final grand count = %v, want %d", res.Measure(0, 0), loaded)
	}
}
