package warehouse

import (
	"bytes"
	"strings"
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/mdm"
	"dimred/internal/spec"
	"dimred/internal/workload"
)

func TestSnapshotRoundTrip(t *testing.T) {
	// Build, load and age a warehouse.
	obj, err := workload.NewClickSchema()
	if err != nil {
		t.Fatal(err)
	}
	env, err := spec.NewEnv(obj.Schema, "Time", obj.Time)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Open(env,
		spec.MustCompileString("m", `aggregate [Time.month, URL.domain] where Time.month <= NOW - 2 months`, env),
		spec.MustCompileString("q", `aggregate [Time.quarter, URL.domain_grp] where Time.quarter <= NOW - 4 quarters`, env),
		spec.MustCompileString("purge", `delete where Time.year <= NOW - 5 years`, env))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AdvanceTo(caltime.Date(2000, 1, 1)); err != nil {
		t.Fatal(err)
	}
	cfg := workload.ClickConfig{Seed: 17, Start: caltime.Date(2000, 1, 1), Days: 200, ClicksPerDay: 12}
	err = w.LoadBatch(func(load func([]mdm.ValueID, []float64) error) error {
		return workload.GenerateClicks(cfg, func(c workload.Click) error {
			refs, meas, err := obj.Row(c)
			if err != nil {
				return err
			}
			return load(refs, meas)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AdvanceTo(caltime.Date(2001, 3, 10)); err != nil {
		t.Fatal(err)
	}

	// Save and load.
	var buf bytes.Buffer
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	w2, ld, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ld.Time == nil || len(ld.ByName) != 2 {
		t.Fatal("LoadedDims incomplete")
	}

	// Identical state: clock, stats, query answers.
	if w2.Now() != w.Now() {
		t.Errorf("clock %v vs %v", w2.Now(), w.Now())
	}
	s1, s2 := w.Stats(), w2.Stats()
	if s1.Rows != s2.Rows || s1.FactBytes != s2.FactBytes || s1.LoadedFacts != s2.LoadedFacts {
		t.Errorf("stats differ:\n%v\nvs\n%v", s1, s2)
	}
	for _, q := range []string{
		`aggregate [Time.TOP, URL.TOP]`,
		`aggregate [Time.month, URL.domain_grp]`,
		`aggregate [Time.quarter, URL.domain] where URL.domain_grp = ".com"`,
	} {
		r1, err := w.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := w2.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Dump() != r2.Dump() {
			t.Errorf("query %q differs after round trip:\n%s\nvs\n%s", q, r1.Dump(), r2.Dump())
		}
	}

	// The loaded warehouse keeps living: new facts, more aging.
	err = w2.LoadBatch(func(load func([]mdm.ValueID, []float64) error) error {
		d := ld.Time.EnsureDay(caltime.Date(2001, 3, 9))
		u, ok := ld.ByName["URL"]
		if !ok {
			t.Fatal("URL dimension missing")
		}
		// Re-use an existing url value (the dimension was restored).
		urlCat, _ := u.CategoryByName("url")
		v := u.ValuesIn(urlCat)[0]
		return load([]mdm.ValueID{d, v}, []float64{1, 42, 1, 7})
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.AdvanceTo(caltime.Date(2002, 1, 5)); err != nil {
		t.Fatal(err)
	}
	res, err := w2.Query(`aggregate [Time.TOP, URL.TOP]`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Measure(0, 0) != float64(200*12+1) {
		t.Errorf("post-restore count = %v", res.Measure(0, 0))
	}
}

// TestSnapshotRoundTripKeepsViewState pins the bugfix for view state
// dropped by Save/Load: enablement, budget, and the learned shape trace
// persist, and the loaded warehouse rebuilds its materialized views so
// the recorded battery is view-served immediately — no silent fallback
// to the base path after a restore.
func TestSnapshotRoundTripKeepsViewState(t *testing.T) {
	w, _ := openViewWarehouse(t)
	n1, bytes1 := w.ViewStats()
	if n1 == 0 {
		t.Fatal("no views before save")
	}
	answers := make([]string, len(viewShapeQueries))
	for i, src := range viewShapeQueries {
		mo, err := w.Query(src)
		if err != nil {
			t.Fatal(err)
		}
		answers[i] = mo.DumpCells()
	}

	var buf bytes.Buffer
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	w2, _, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	n2, bytes2 := w2.ViewStats()
	if n2 != n1 || bytes2 != bytes1 {
		t.Fatalf("views after load: %d views/%d bytes, want %d/%d", n2, bytes2, n1, bytes1)
	}
	m := w2.Metrics()
	if m.ViewBuilds == 0 {
		t.Fatal("loaded warehouse never rebuilt its views")
	}
	before := w2.Metrics()
	for i, src := range viewShapeQueries {
		mo, err := w2.Query(src)
		if err != nil {
			t.Fatal(err)
		}
		if mo.DumpCells() != answers[i] {
			t.Errorf("query %q differs after restore:\n%s\nvs\n%s", src, mo.DumpCells(), answers[i])
		}
	}
	d := w2.Metrics().Sub(before)
	if d.ViewHits != int64(len(viewShapeQueries)) {
		t.Fatalf("restored battery view-served %d/%d (misses %d)", d.ViewHits, len(viewShapeQueries), d.ViewMisses)
	}
	if d.Queries != 0 {
		t.Fatalf("restored battery ran %d base evaluations", d.Queries)
	}
}

// TestSnapshotRoundTripViewsDisabled pins the complementary default: a
// warehouse saved with views off loads with views off.
func TestSnapshotRoundTripViewsDisabled(t *testing.T) {
	w, _ := openClickWarehouse(t)
	var buf bytes.Buffer
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	w2, _, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n, b := w2.ViewStats(); n != 0 || b != 0 {
		t.Fatalf("views materialized on a views-off snapshot: %d/%d", n, b)
	}
	if got := w2.Metrics().ViewBuilds; got != 0 {
		t.Fatalf("ViewBuilds = %d on a views-off snapshot", got)
	}
}

func TestSnapshotLoadErrors(t *testing.T) {
	if _, _, err := Load(strings.NewReader("not a snapshot")); err == nil {
		t.Error("garbage accepted")
	}
	if _, _, err := Load(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestSnapshotOfPaperWarehouse(t *testing.T) {
	// The running example through a save/load cycle keeps Figure 3's
	// third snapshot intact.
	w, obj := openClickWarehouse(t)
	_ = obj
	var buf bytes.Buffer
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	w2, _, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(w2.Spec().Actions()); got != 2 {
		t.Errorf("actions after load = %d", got)
	}
	if u, ok := w2.Cubes().LastSync(); ok != false {
		_ = u // never synced in openClickWarehouse; both should agree
		if l1, ok1 := w.Cubes().LastSync(); !ok1 || l1 != u {
			t.Error("sync state drift")
		}
	}
}
