package warehouse

import (
	"fmt"
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/core"
	"dimred/internal/ingest"
	"dimred/internal/mdm"
	"dimred/internal/spec"
	"dimred/internal/workload"
)

// ingestSpecActions compiles the standing click actions plus a purge
// used by the ingest tests: month-level and quarter-level aggregation
// horizons plus a five-year delete, so an out-of-order stream has real
// reduced regions for its late tail to land in.
func ingestSpecActions(t *testing.T, env *spec.Env) []*spec.Action {
	t.Helper()
	return []*spec.Action{
		spec.MustCompileString("m", `aggregate [Time.month, URL.domain] where Time.month <= NOW - 2 months`, env),
		spec.MustCompileString("q", `aggregate [Time.quarter, URL.domain_grp] where Time.quarter <= NOW - 4 quarters`, env),
		spec.MustCompileString("purge", `delete where Time.year <= NOW - 5 years`, env),
	}
}

// TestDifferentialIngestVsReplayOracle is the tentpole pin: an
// out-of-order click stream ingested through the delta buffers and the
// background compactor must leave the warehouse byte-identical — cell
// for cell, measure for measure, base count for base count — to
// replaying every fact seen so far through core.Reduce on a fresh MO at
// the same clock. This is the paper's exactness claim for the Growing
// invariant extended to streaming: distributive merges make the
// incremental delta fold equal to the one-shot reduction, including
// facts that arrive after their day's region was already reduced.
func TestDifferentialIngestVsReplayOracle(t *testing.T) {
	cfg := workload.OutOfOrderConfig{
		ClickConfig: workload.ClickConfig{
			Seed: 7, Start: caltime.Date(2000, 1, 1),
			Days: 100, ClicksPerDay: 12, Domains: 5, URLsPerDomain: 3,
		},
		LateFraction: 0.3,
		MeanLateDays: 30,
		MaxLateDays:  75,
	}
	obj, stream, err := workload.BuildOutOfOrder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	env, err := spec.NewEnv(obj.Schema, "Time", obj.Time)
	if err != nil {
		t.Fatal(err)
	}
	actions := ingestSpecActions(t, env)
	w, err := Open(env, actions...)
	if err != nil {
		t.Fatal(err)
	}
	oracleSpec, err := spec.New(env, actions...)
	if err != nil {
		t.Fatal(err)
	}
	oracleMO := mdm.NewMO(obj.Schema)

	compare := func(step string) {
		t.Helper()
		// The warehouse must be synchronized at its clock for the
		// comparison to be meaningful; checkpoints call Sync first.
		got, err := materialize(env, w.Cubes())
		if err != nil {
			t.Fatalf("%s: materialize: %v", step, err)
		}
		want, err := core.ReduceInterpreted(oracleSpec, oracleMO, w.Now())
		if err != nil {
			t.Fatalf("%s: replay oracle: %v", step, err)
		}
		if g, o := got.DumpCells(), want.MO.DumpCells(); g != o {
			t.Fatalf("%s: delta-path warehouse diverged from core.Reduce replay\nwarehouse:\n%s\noracle:\n%s", step, g, o)
		}
	}

	if err := w.StartIngest(ingest.Config{MinBatch: 1}); err != nil {
		t.Fatal(err)
	}
	checkpoint := func(step string) {
		t.Helper()
		// Join the compactor so every ingested fact is folded, force a
		// synchronization at the current clock, and compare.
		if err := w.StopIngest(); err != nil {
			t.Fatalf("%s: StopIngest: %v", step, err)
		}
		if err := w.Sync(); err != nil {
			t.Fatalf("%s: Sync: %v", step, err)
		}
		compare(step)
		if err := w.StartIngest(ingest.Config{MinBatch: 1}); err != nil {
			t.Fatalf("%s: StartIngest: %v", step, err)
		}
	}

	lastArrival := caltime.Day(0)
	for i, r := range stream {
		if r.Arrival != lastArrival {
			if err := w.AdvanceTo(r.Arrival); err != nil {
				t.Fatal(err)
			}
			lastArrival = r.Arrival
		}
		if err := w.Ingest(r.Refs, r.Meas); err != nil {
			t.Fatal(err)
		}
		if _, err := oracleMO.AddFact(r.Refs, r.Meas); err != nil {
			t.Fatal(err)
		}
		if (i+1)%400 == 0 {
			checkpoint(fmt.Sprintf("after %d arrivals (clock %v)", i+1, w.Now()))
		}
	}
	if err := w.StopIngest(); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	compare("final stream state")

	m := w.Metrics()
	if m.IngestQueued != int64(len(stream)) || m.IngestCompacted != int64(len(stream)) {
		t.Fatalf("queued %d / compacted %d, want both %d", m.IngestQueued, m.IngestCompacted, len(stream))
	}
	if m.IngestLate == 0 {
		t.Fatal("stream produced no late compactions; the differential never exercised a reduced region")
	}
	if m.IngestPending != 0 {
		t.Fatalf("IngestPending = %d after StopIngest", m.IngestPending)
	}

	// Age everything past the purge horizon: the warehouse deletes, the
	// oracle's Reduce skips — both must agree on the (empty) remainder.
	if err := w.AdvanceTo(caltime.Date(2006, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	compare("after purge horizon")
}

// TestLoadLateSingleFactMatchesReplayOracle pins the satellite bugfix:
// a single-fact Load whose day sits inside an already-reduced region
// must land at Cell(f, t)'s granularity immediately (merged
// distributively), not linger at the bottom until the next scheduled
// sync where a day-level query could observe it at a granularity the
// Growing invariant says no longer exists.
func TestLoadLateSingleFactMatchesReplayOracle(t *testing.T) {
	obj, err := workload.NewClickSchema()
	if err != nil {
		t.Fatal(err)
	}
	env, err := spec.NewEnv(obj.Schema, "Time", obj.Time)
	if err != nil {
		t.Fatal(err)
	}
	actions := ingestSpecActions(t, env)
	w, err := Open(env, actions...)
	if err != nil {
		t.Fatal(err)
	}
	oracleSpec, err := spec.New(env, actions...)
	if err != nil {
		t.Fatal(err)
	}
	oracleMO := mdm.NewMO(obj.Schema)

	start := caltime.Date(2000, 1, 1)
	if err := w.AdvanceTo(start); err != nil {
		t.Fatal(err)
	}
	cfg := workload.ClickConfig{Seed: 3, Start: start, Days: 60, ClicksPerDay: 10, Domains: 4, URLsPerDomain: 3}
	var rows []workload.Click
	if err := workload.GenerateClicks(cfg, func(c workload.Click) error {
		rows = append(rows, c)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	err = w.LoadBatch(func(load func([]mdm.ValueID, []float64) error) error {
		for _, c := range rows {
			refs, meas, err := obj.Row(c)
			if err != nil {
				return err
			}
			if _, err := oracleMO.AddFact(refs, meas); err != nil {
				return err
			}
			if err := load(refs, meas); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Age the stream so the first months are reduced to month/domain.
	if err := w.AdvanceTo(caltime.Date(2000, 8, 1)); err != nil {
		t.Fatal(err)
	}

	// The late fact: a click on a day deep inside the reduced region.
	lateRefs, lateMeas, err := obj.Row(workload.Click{
		Day: start + 3, URL: "http://www.site0.com/page/0",
		Dwell: 7, Delivery: 2, SizeKB: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := w.Metrics()
	if err := w.Load(lateRefs, lateMeas); err != nil {
		t.Fatal(err)
	}
	if _, err := oracleMO.AddFact(lateRefs, lateMeas); err != nil {
		t.Fatal(err)
	}
	// The late path carries a synchronization with the commit.
	if d := w.Metrics().Sub(before); d.Syncs != 1 {
		t.Fatalf("late single-fact Load ran %d syncs, want 1 (fold-on-commit)", d.Syncs)
	}

	got, err := materialize(env, w.Cubes())
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.ReduceInterpreted(oracleSpec, oracleMO, w.Now())
	if err != nil {
		t.Fatal(err)
	}
	if g, o := got.DumpCells(), want.MO.DumpCells(); g != o {
		t.Fatalf("late single-fact Load diverged from replay oracle\nwarehouse:\n%s\noracle:\n%s", g, o)
	}

	// And the observable symptom of the old bug: the whole stream is
	// older than the month horizon, so nothing — the late fact included —
	// may linger at bottom granularity waiting for the next sync.
	for f := 0; f < got.Len(); f++ {
		if g := got.Gran(mdm.FactID(f)); env.Schema.GranEq(g, env.Schema.BottomGranularity()) {
			t.Fatalf("fact %d still at bottom granularity inside the reduced region", f)
		}
	}

	// An on-time fact (today) still takes the plain commit — no sync.
	onTimeRefs, onTimeMeas, err := obj.Row(workload.Click{
		Day: w.Now(), URL: "http://www.site1.com/page/1",
		Dwell: 1, Delivery: 1, SizeKB: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	before = w.Metrics()
	if err := w.Load(onTimeRefs, onTimeMeas); err != nil {
		t.Fatal(err)
	}
	if d := w.Metrics().Sub(before); d.Syncs != 0 {
		t.Fatalf("on-time Load ran %d syncs, want 0", d.Syncs)
	}
}

// TestLoadBatchEmptyPublishesNothing pins the empty-batch short
// circuit: a zero-row batch must not sync, publish a snapshot, rebuild
// materialized views, or count as a batch load.
func TestLoadBatchEmptyPublishesNothing(t *testing.T) {
	w, _ := openViewWarehouse(t)
	before := w.Metrics()
	err := w.LoadBatch(func(load func([]mdm.ValueID, []float64) error) error {
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	d := w.Metrics().Sub(before)
	if d.BatchLoads != 0 || d.Syncs != 0 || d.ViewBuilds != 0 || d.SnapshotPublishes != 0 || d.FactsLoaded != 0 {
		t.Fatalf("empty batch churned: BatchLoads=%d Syncs=%d ViewBuilds=%d SnapshotPublishes=%d FactsLoaded=%d",
			d.BatchLoads, d.Syncs, d.ViewBuilds, d.SnapshotPublishes, d.FactsLoaded)
	}
	// An erroring callback still propagates without churn.
	wantErr := fmt.Errorf("boom")
	if err := w.LoadBatch(func(func([]mdm.ValueID, []float64) error) error { return wantErr }); err != wantErr {
		t.Fatalf("callback error = %v, want %v", err, wantErr)
	}
	if d := w.Metrics().Sub(before); d.BatchLoads != 0 || d.SnapshotPublishes != 0 {
		t.Fatalf("erroring batch churned: %+v", d)
	}
}

func TestIngestValidatesEagerly(t *testing.T) {
	w, obj := openClickWarehouse(t)
	if err := w.Ingest([]mdm.ValueID{1}, []float64{1, 2, 3, 4}); err == nil {
		t.Fatal("short refs accepted")
	}
	refs, meas, err := obj.Row(workload.Click{Day: caltime.Date(2000, 1, 1), URL: "http://www.x.com/p/1", Dwell: 1, Delivery: 1, SizeKB: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Ingest(refs, meas[:2]); err == nil {
		t.Fatal("short measures accepted")
	}
	// A non-bottom value (the month ancestor) must be rejected.
	monthCat, ok := obj.Time.Dimension.CategoryByName("month")
	if !ok {
		t.Fatal("no month category")
	}
	badRefs := append([]mdm.ValueID(nil), refs...)
	badRefs[0] = obj.Time.Dimension.AncestorAt(refs[0], monthCat)
	if err := w.Ingest(badRefs, meas); err == nil {
		t.Fatal("non-bottom ref accepted")
	}
	if got := w.Metrics().IngestQueued; got != 0 {
		t.Fatalf("rejected facts still queued: %d", got)
	}
	if err := w.Ingest(refs, meas); err != nil {
		t.Fatal(err)
	}
	if got, pend := w.Metrics().IngestQueued, w.IngestPending(); got != 1 || pend != 1 {
		t.Fatalf("IngestQueued=%d IngestPending=%d, want 1/1", got, pend)
	}
	if err := w.FlushIngest(); err != nil {
		t.Fatal(err)
	}
	m := w.Metrics()
	if m.IngestCompacted != 1 || m.IngestPending != 0 || m.FactsLoaded != 1 {
		t.Fatalf("after flush: compacted=%d pending=%d loaded=%d", m.IngestCompacted, m.IngestPending, m.FactsLoaded)
	}
	res, err := w.Query(`aggregate [Time.TOP, URL.TOP]`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Measure(0, 0) != 1 {
		t.Fatalf("flushed fact not queryable: count=%v", res.Measure(0, 0))
	}
}

func TestStartIngestTwiceAndStopIdle(t *testing.T) {
	w, _ := openClickWarehouse(t)
	if err := w.StopIngest(); err != nil {
		t.Fatalf("StopIngest with no compactor: %v", err)
	}
	if err := w.StartIngest(ingest.Config{}); err != nil {
		t.Fatal(err)
	}
	if err := w.StartIngest(ingest.Config{}); err == nil {
		t.Fatal("second StartIngest accepted")
	}
	if err := w.StopIngest(); err != nil {
		t.Fatal(err)
	}
	// Stop/start cycles are fine.
	if err := w.StartIngest(ingest.Config{MinBatch: 4}); err != nil {
		t.Fatal(err)
	}
	if err := w.StopIngest(); err != nil {
		t.Fatal(err)
	}
}
