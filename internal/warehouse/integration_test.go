package warehouse

import (
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/mdm"
	"dimred/internal/spec"
	"dimred/internal/workload"
)

// TestLifecycleWithPeriodicBulkLoads drives a warehouse the way the
// paper envisions production use: monthly bulk loads interleaved with
// the passage of time, a specification change mid-life, late-arriving
// old facts, and continuous queries — asserting conservation and
// correct storage behaviour throughout.
func TestLifecycleWithPeriodicBulkLoads(t *testing.T) {
	obj, err := workload.NewClickSchema()
	if err != nil {
		t.Fatal(err)
	}
	env, err := spec.NewEnv(obj.Schema, "Time", obj.Time)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Open(env,
		spec.MustCompileString("m", `aggregate [Time.month, URL.domain] where Time.month <= NOW - 2 months`, env),
		spec.MustCompileString("q", `aggregate [Time.quarter, URL.domain_grp] where Time.quarter <= NOW - 4 quarters`, env))
	if err != nil {
		t.Fatal(err)
	}

	var loadedDwell float64
	loadMonth := func(year, month int) {
		t.Helper()
		cfg := workload.ClickConfig{
			Seed: int64(year*100 + month), Start: caltime.Date(year, month, 1),
			Days: 28, ClicksPerDay: 15, Domains: 5, URLsPerDomain: 2,
		}
		err := w.LoadBatch(func(load func([]mdm.ValueID, []float64) error) error {
			return workload.GenerateClicks(cfg, func(c workload.Click) error {
				refs, meas, err := obj.Row(c)
				if err != nil {
					return err
				}
				loadedDwell += meas[1]
				return load(refs, meas)
			})
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	queryDwell := func() float64 {
		t.Helper()
		res, err := w.Query(`aggregate [Time.TOP, URL.TOP]`)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() == 0 {
			return 0
		}
		return res.Measure(0, 1)
	}

	// Twelve monthly bulk loads across 2000, advancing the clock.
	for m := 1; m <= 12; m++ {
		if err := w.AdvanceTo(caltime.Date(2000, m, 1)); err != nil {
			t.Fatal(err)
		}
		loadMonth(2000, m)
		if got := queryDwell(); got != loadedDwell {
			t.Fatalf("month %d: query total %v != loaded %v", m, got, loadedDwell)
		}
	}

	// Mid-life spec change: add a yearly roll-up above everything.
	if err := w.AdvanceTo(caltime.Date(2001, 3, 1)); err != nil {
		t.Fatal(err)
	}
	y := spec.MustCompileString("y",
		`aggregate [Time.year, URL.domain_grp] where Time.year <= NOW - 2 years`, env)
	if err := w.InsertActions(y); err != nil {
		t.Fatal(err)
	}
	if got := queryDwell(); got != loadedDwell {
		t.Fatalf("after spec change: query total %v != loaded %v", got, loadedDwell)
	}

	// Late arrival of very old data: it flows through the bottom cube
	// and aggregates straight to its level on the bulk-load sync.
	err = w.LoadBatch(func(load func([]mdm.ValueID, []float64) error) error {
		d := obj.Time.EnsureDay(caltime.Date(2000, 2, 14))
		u, err := obj.URL.EnsureURL("http://late.example.com/x")
		if err != nil {
			return err
		}
		loadedDwell += 500
		return load([]mdm.ValueID{d, u}, []float64{1, 500, 1, 9})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := queryDwell(); got != loadedDwell {
		t.Fatalf("after late arrival: query total %v != loaded %v", got, loadedDwell)
	}
	bottomRows := w.Cubes().Cubes()[0].Rows()
	if bottomRows != 0 {
		t.Errorf("late arrival left %d rows in the bottom cube after sync", bottomRows)
	}

	// Years later everything is at (year, domain_grp); storage collapsed,
	// totals exact.
	if err := w.AdvanceTo(caltime.Date(2004, 1, 2)); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Savings() < 0.95 {
		t.Errorf("savings = %.3f, want > 0.95", st.Savings())
	}
	if got := queryDwell(); got != loadedDwell {
		t.Fatalf("final: query total %v != loaded %v", got, loadedDwell)
	}

	// The star export carries the mixed-granularity state.
	star, err := w.ExportStar()
	if err != nil {
		t.Fatal(err)
	}
	if star.Fact.Rows() != st.Rows {
		t.Errorf("star fact rows = %d, warehouse rows = %d", star.Fact.Rows(), st.Rows)
	}
	rows, err := star.SumByLevel([]string{"URL.domain_grp"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var starDwell float64
	for _, r := range rows {
		starDwell += r.Measures[1]
	}
	if starDwell != loadedDwell {
		t.Errorf("star dwell total %v != loaded %v", starDwell, loadedDwell)
	}
}

// TestWarehouseWithDeletionPolicy runs the full retention ladder
// including physical deletion (the Section 8 extension): detail →
// month → quarter → gone, with the deleted volume reported.
func TestWarehouseWithDeletionPolicy(t *testing.T) {
	obj, err := workload.NewClickSchema()
	if err != nil {
		t.Fatal(err)
	}
	env, err := spec.NewEnv(obj.Schema, "Time", obj.Time)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Open(env,
		spec.MustCompileString("m", `aggregate [Time.month, URL.domain] where Time.month <= NOW - 2 months`, env),
		spec.MustCompileString("q", `aggregate [Time.quarter, URL.domain_grp] where Time.quarter <= NOW - 4 quarters`, env),
		spec.MustCompileString("purge", `delete where Time.year <= NOW - 3 years`, env))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AdvanceTo(caltime.Date(2000, 1, 1)); err != nil {
		t.Fatal(err)
	}
	cfg := workload.ClickConfig{Seed: 9, Start: caltime.Date(2000, 1, 1), Days: 90, ClicksPerDay: 10}
	err = w.LoadBatch(func(load func([]mdm.ValueID, []float64) error) error {
		return workload.GenerateClicks(cfg, func(c workload.Click) error {
			refs, meas, err := obj.Row(c)
			if err != nil {
				return err
			}
			return load(refs, meas)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2002: aggregated but present.
	if err := w.AdvanceTo(caltime.Date(2002, 6, 1)); err != nil {
		t.Fatal(err)
	}
	res, err := w.Query(`aggregate [Time.TOP, URL.TOP]`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Measure(0, 0) != 900 {
		t.Fatalf("2002 grand count = %v", res.Dump())
	}
	// 2005: everything purged.
	if err := w.AdvanceTo(caltime.Date(2005, 1, 2)); err != nil {
		t.Fatal(err)
	}
	res, err = w.Query(`aggregate [Time.TOP, URL.TOP]`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Errorf("2005 result = %v", res.Dump())
	}
	if got := w.Cubes().DeletedFacts(); got != 900 {
		t.Errorf("deleted facts = %d, want 900", got)
	}
	if st := w.Stats(); st.Rows != 0 || st.FactBytes != 0 {
		t.Errorf("stats after purge: %+v", st)
	}
}
