package warehouse

import (
	"sync"
	"sync/atomic"
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/ingest"
	"dimred/internal/spec"
	"dimred/internal/subcube"
	"dimred/internal/views"
	"dimred/internal/workload"
)

// TestStressIngestWithConcurrentReaders races producers calling Ingest
// against the background compactor, query-serving readers, and a writer
// that advances the clock and toggles materialized views, asserting
// from the reader side that delta compaction preserves the snapshot
// guarantees:
//
//   - no half-folded delta is ever observable: each compaction is one
//     publication, so every query sees whole folds — the per-measure
//     totals stay in exact lockstep with the count total;
//   - monotonicity: one reader's successive totals never decrease;
//   - no invented facts: the observed count never exceeds the number of
//     facts handed to Ingest so far.
//
// The pre-resolved rows span days far behind the clock, so a large
// share of the folds take the late-arrival path (IngestLate > 0) while
// the race runs. With -race this also validates the buffer's
// shard-mutex edges against the pin/publish/drain protocol.
func TestStressIngestWithConcurrentReaders(t *testing.T) {
	obj, err := workload.NewClickSchema()
	if err != nil {
		t.Fatal(err)
	}
	env, err := spec.NewEnv(obj.Schema, "Time", obj.Time)
	if err != nil {
		t.Fatal(err)
	}
	mAct, qAct, _ := stressSpec(t, env)
	w, err := Open(env, mAct, qAct)
	if err != nil {
		t.Fatal(err)
	}
	start := caltime.Date(2000, 1, 1)
	if err := w.AdvanceTo(caltime.Date(2000, 6, 1)); err != nil {
		t.Fatal(err)
	}

	const (
		producers   = 4
		perProducer = 250
		readerGoro  = 3
	)
	total := producers * perProducer
	refs, meas := stressRows(t, obj, total, start)

	if err := w.StartIngest(ingest.Config{MinBatch: 8}); err != nil {
		t.Fatal(err)
	}

	// ingested counts facts handed to Ingest, incremented BEFORE the
	// append: the warehouse cannot serve a fact that was never appended,
	// so every observation must satisfy observed <= ingested.
	var ingested atomic.Int64
	var wg, rwg sync.WaitGroup
	stop := make(chan struct{})

	q := subcube.MustParseQuery(`aggregate [Time.quarter, URL.domain_grp]`, env)
	at := caltime.Date(2000, 6, 1)
	for r := 0; r < readerGoro; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			last := float64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				hi := ingested.Load() // loaded before the query: observed <= hi + in-flight
				res, err := w.QueryAt(q, at)
				if err != nil {
					t.Error(err)
					return
				}
				tot := grandTotals(res)
				count := tot[0]
				if tot[1] != 2*count || tot[2] != 3*count || tot[3] != 5*count {
					t.Errorf("half-folded delta observed: measure totals %v out of lockstep with count %v", tot, count)
					return
				}
				if count < last {
					t.Errorf("count went backwards: %v after %v", count, last)
					return
				}
				last = count
				// hi was read before the query, but Ingest counts before
				// appending, so the snapshot can only trail the counter.
				if count > float64(ingested.Load()) {
					t.Errorf("observed %v facts, only %d ingested (hi was %d)", count, ingested.Load(), hi)
					return
				}
			}
		}()
	}

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				j := p*perProducer + i
				ingested.Add(1)
				if err := w.Ingest(refs[j], meas[j]); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}

	// The mutator interleaves clock advances and view toggles with the
	// ingest traffic: every combination of compaction × view rebuild ×
	// snapshot publish runs under the race detector.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			switch i % 4 {
			case 0, 2:
				if err := w.AdvanceTo(w.Now() + 1); err != nil {
					t.Error(err)
					return
				}
			case 1:
				if err := w.EnableViews(views.Config{}); err != nil {
					t.Error(err)
					return
				}
			case 3:
				w.DisableViews()
			}
		}
	}()

	wg.Wait()
	if err := w.StopIngest(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	rwg.Wait()

	// Every ingested fact is folded and accounted for.
	res, err := w.QueryAt(q, at)
	if err != nil {
		t.Fatal(err)
	}
	if tot := grandTotals(res); tot[0] != float64(total) {
		t.Errorf("final count = %v, want %d", tot[0], total)
	}
	m := w.Metrics()
	if m.IngestQueued != int64(total) || m.IngestCompacted != int64(total) {
		t.Errorf("queued %d / compacted %d, want both %d", m.IngestQueued, m.IngestCompacted, total)
	}
	if m.IngestLate == 0 {
		t.Error("stress stream folded no late facts; the late path went unexercised")
	}
	if m.IngestPending != 0 {
		t.Errorf("IngestPending = %d after StopIngest", m.IngestPending)
	}
	if m.CompactionDuration.Count == 0 {
		t.Error("no compaction latency samples recorded")
	}
}
