package warehouse

import (
	"strings"
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/mdm"
	"dimred/internal/query"
	"dimred/internal/spec"
	"dimred/internal/workload"
)

func openClickWarehouse(t *testing.T) (*Warehouse, *workload.ClickObject) {
	t.Helper()
	obj, err := workload.NewClickSchema()
	if err != nil {
		t.Fatal(err)
	}
	env, err := spec.NewEnv(obj.Schema, "Time", obj.Time)
	if err != nil {
		t.Fatal(err)
	}
	a1 := spec.MustCompileString("to-month",
		`aggregate [Time.month, URL.domain] where Time.month <= NOW - 2 months`, env)
	a2 := spec.MustCompileString("to-quarter",
		`aggregate [Time.quarter, URL.domain] where Time.quarter <= NOW - 4 quarters`, env)
	w, err := Open(env, a1, a2)
	if err != nil {
		t.Fatal(err)
	}
	return w, obj
}

func loadStream(t *testing.T, w *Warehouse, obj *workload.ClickObject, cfg workload.ClickConfig) {
	t.Helper()
	err := w.LoadBatch(func(load func([]mdm.ValueID, []float64) error) error {
		return workload.GenerateClicks(cfg, func(c workload.Click) error {
			refs, meas, err := obj.Row(c)
			if err != nil {
				return err
			}
			return load(refs, meas)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWarehouseLifecycle(t *testing.T) {
	w, obj := openClickWarehouse(t)
	start := caltime.Date(2000, 1, 1)
	if err := w.AdvanceTo(start); err != nil {
		t.Fatal(err)
	}
	cfg := workload.ClickConfig{Seed: 4, Start: start, Days: 90, ClicksPerDay: 30, Domains: 6, URLsPerDomain: 4}
	loadStream(t, w, obj, cfg)

	st := w.Stats()
	if st.LoadedFacts != 90*30 {
		t.Errorf("loaded = %d", st.LoadedFacts)
	}
	rowsBefore := st.Rows

	// Age the warehouse one year: the detail collapses to months.
	if err := w.AdvanceTo(caltime.Date(2001, 1, 15)); err != nil {
		t.Fatal(err)
	}
	st = w.Stats()
	if st.Rows >= rowsBefore {
		t.Errorf("rows did not shrink: %d -> %d", rowsBefore, st.Rows)
	}
	if st.Savings() <= 0.5 {
		t.Errorf("savings = %.2f, expected substantial reduction", st.Savings())
	}
	if !strings.Contains(st.String(), "savings") {
		t.Error("Stats.String missing savings")
	}

	// Totals are preserved through reduction: query the grand total.
	res, err := w.Query(`aggregate [Time.TOP, URL.TOP]`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Measure(0, 0) != float64(90*30) {
		t.Errorf("grand total = %v", res.Measure(0, 0))
	}

	// A domain-level monthly query still answers after reduction.
	res, err = w.Query(`aggregate [Time.month, URL.domain]`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Error("monthly query empty")
	}

	// Clock accessor.
	if w.Now() != caltime.Date(2001, 1, 15) {
		t.Error("Now wrong")
	}
	if w.Spec() == nil || w.Cubes() == nil || w.Env() == nil {
		t.Error("accessors")
	}
}

func TestWarehouseSpecEvolution(t *testing.T) {
	w, obj := openClickWarehouse(t)
	start := caltime.Date(2000, 1, 1)
	if err := w.AdvanceTo(start); err != nil {
		t.Fatal(err)
	}
	cfg := workload.ClickConfig{Seed: 6, Start: start, Days: 60, ClicksPerDay: 10}
	loadStream(t, w, obj, cfg)
	if err := w.AdvanceTo(caltime.Date(2002, 6, 1)); err != nil {
		t.Fatal(err)
	}
	total := grandTotal(t, w)

	// Add a year-level action; storage can only shrink further.
	env := w.Env()
	a3 := spec.MustCompileString("to-year",
		`aggregate [Time.year, URL.domain_grp] where Time.year <= NOW - 2 years`, env)
	bytesBefore := w.Stats().FactBytes
	if err := w.InsertActions(a3); err != nil {
		t.Fatal(err)
	}
	if err := w.AdvanceTo(caltime.Date(2003, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().FactBytes; got > bytesBefore {
		t.Errorf("bytes grew after adding a coarser action: %d -> %d", bytesBefore, got)
	}
	if got := grandTotal(t, w); got != total {
		t.Errorf("grand total changed: %v -> %v", total, got)
	}

	// Deleting to-year must be rejected: it is responsible for the rows
	// currently at (year, domain_grp) and no remaining action matches
	// that level (Definition 4). Deleting to-quarter, by contrast, is
	// legal here: everything has aggregated beyond its level.
	if err := w.DeleteActions("to-year"); err == nil {
		t.Error("deleting a responsible action succeeded")
	}
	if err := w.DeleteActions("to-quarter"); err != nil {
		t.Errorf("deleting a superseded action failed: %v", err)
	}
	if got := grandTotal(t, w); got != total {
		t.Errorf("grand total changed by delete: %v -> %v", total, got)
	}
	// Deleting an unknown action fails cleanly.
	if err := w.DeleteActions("nope"); err == nil {
		t.Error("deleting unknown action succeeded")
	}
}

func grandTotal(t *testing.T, w *Warehouse) float64 {
	t.Helper()
	res, err := w.Query(`aggregate [Time.TOP, URL.TOP]`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("grand total rows = %d", res.Len())
	}
	return res.Measure(0, 1)
}

func TestWarehouseQueryErrors(t *testing.T) {
	w, _ := openClickWarehouse(t)
	if _, err := w.Query(`garbage`); err == nil {
		t.Error("bad query accepted")
	}
	if _, err := w.Query(`aggregate [Time.month]`); err == nil {
		t.Error("short target accepted")
	}
}

func TestOpenRejectsInvalidSpec(t *testing.T) {
	obj, err := workload.NewClickSchema()
	if err != nil {
		t.Fatal(err)
	}
	env, err := spec.NewEnv(obj.Schema, "Time", obj.Time)
	if err != nil {
		t.Fatal(err)
	}
	// A shrinking action without cover violates Growing.
	bad := spec.MustCompileString("bad",
		`aggregate [Time.month, URL.domain] where NOW - 12 months < Time.month and Time.month <= NOW - 6 months`, env)
	if _, err := Open(env, bad); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestQueryWithApproaches(t *testing.T) {
	w, obj := openClickWarehouse(t)
	if err := w.AdvanceTo(caltime.Date(2000, 1, 1)); err != nil {
		t.Fatal(err)
	}
	loadStream(t, w, obj, workload.ClickConfig{
		Seed: 31, Start: caltime.Date(2000, 1, 1), Days: 120, ClicksPerDay: 10,
	})
	if err := w.AdvanceTo(caltime.Date(2000, 9, 1)); err != nil {
		t.Fatal(err)
	}
	// A week-range query on month-level data: conservative yields
	// nothing certain, liberal includes the overlapping months.
	src := `aggregate [Time.month, URL.domain_grp] where Time.week <= 2000W5`
	cons, err := w.QueryWith(src, query.Conservative, query.Availability)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := w.QueryWith(src, query.Liberal, query.Availability)
	if err != nil {
		t.Fatal(err)
	}
	if lib.Len() < cons.Len() {
		t.Errorf("liberal (%d) returned less than conservative (%d)", lib.Len(), cons.Len())
	}
	strict, err := w.QueryWith(`aggregate [Time.day, URL.url]`, query.Conservative, query.Strict)
	if err != nil {
		t.Fatal(err)
	}
	all, err := w.QueryWith(`aggregate [Time.day, URL.url]`, query.Conservative, query.Availability)
	if err != nil {
		t.Fatal(err)
	}
	if strict.Len() > all.Len() {
		t.Error("strict returned more than availability")
	}
	// Spec renders.
	if w.Spec().String() == "" {
		t.Error("Spec.String empty")
	}
}
