package warehouse

import (
	"fmt"
	"sync"
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/mdm"
	"dimred/internal/spec"
	"dimred/internal/subcube"
	"dimred/internal/workload"
)

// stressRows pre-resolves n bottom rows with integer measures. Integer
// measures make grand totals exact under float64 summation in any
// association order, so the stress invariants can compare with ==.
// Dimension builders are not concurrent-safe; all resolution happens
// here, before any goroutines start.
func stressRows(t *testing.T, obj *workload.ClickObject, n int, start caltime.Day) ([][]mdm.ValueID, [][]float64) {
	t.Helper()
	refs := make([][]mdm.ValueID, 0, n)
	meas := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		r, m, err := obj.Row(workload.Click{
			Day:      start + caltime.Day(i%120),
			URL:      fmt.Sprintf("http://www.site%d.com/page/%d", i%7, i%3),
			Dwell:    2,
			Delivery: 3,
			SizeKB:   5,
		})
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
		meas = append(meas, m)
	}
	return refs, meas
}

// grandTotals sums every cell of a query result per measure.
func grandTotals(mo *mdm.MO) [4]float64 {
	var tot [4]float64
	for f := 0; f < mo.Len(); f++ {
		m := mo.Measures(mdm.FactID(f))
		for j := range tot {
			tot[j] += m[j]
		}
	}
	return tot
}

// stressSpec returns the two standing actions plus the churn action the
// writer repeatedly inserts and deletes. The churn action is year-level
// with a cutoff no test row ever reaches, so its cube stays empty and
// Definition 4 always permits the delete — but each insert/delete still
// rebuilds the cube layout and bumps the spec generation under load.
func stressSpec(t *testing.T, env *spec.Env) (m, q, churn *spec.Action) {
	t.Helper()
	m = spec.MustCompileString("m", `aggregate [Time.month, URL.domain] where Time.month <= NOW - 2 months`, env)
	q = spec.MustCompileString("q", `aggregate [Time.quarter, URL.domain_grp] where Time.quarter <= NOW - 4 quarters`, env)
	churn = spec.MustCompileString("y", `aggregate [Time.year, URL.domain_grp] where Time.year <= NOW - 2 years`, env)
	return m, q, churn
}

// TestStressSnapshotAtomicity races readers against a writer that
// interleaves batch loads, clock advances and spec mutations, and
// asserts from the reader side that every query observed one atomic
// snapshot end-to-end:
//
//   - batch atomicity: LoadBatch commits load+sync as one publication,
//     so any observed grand total is the initial total plus an integer
//     number of whole batches — a torn read (partial batch, or a query
//     spanning two spec generations that double- or under-counts rows
//     mid-ApplySpec) breaks the divisibility;
//   - monotonicity: snapshots publish in sequence order, so one
//     reader's successive totals never decrease;
//   - conservation: folding and spec churn only regroup rows, so the
//     per-measure totals stay in lockstep with the count total.
//
// Run with -race this also validates the pin/publish/drain protocol's
// happens-before edges.
func TestStressSnapshotAtomicity(t *testing.T) {
	obj, err := workload.NewClickSchema()
	if err != nil {
		t.Fatal(err)
	}
	env, err := spec.NewEnv(obj.Schema, "Time", obj.Time)
	if err != nil {
		t.Fatal(err)
	}
	mAct, qAct, churn := stressSpec(t, env)
	w, err := Open(env, mAct, qAct)
	if err != nil {
		t.Fatal(err)
	}
	start := caltime.Date(2000, 1, 1)
	if err := w.AdvanceTo(caltime.Date(2000, 6, 1)); err != nil {
		t.Fatal(err)
	}

	const (
		initRows   = 200
		batches    = 24
		batchRows  = 25
		readerGoro = 4
	)
	refs, meas := stressRows(t, obj, initRows+batches*batchRows, start)
	load := func(lo, hi int) error {
		return w.LoadBatch(func(ld func([]mdm.ValueID, []float64) error) error {
			for i := lo; i < hi; i++ {
				if err := ld(refs[i], meas[i]); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if err := load(0, initRows); err != nil {
		t.Fatal(err)
	}

	q := subcube.MustParseQuery(`aggregate [Time.quarter, URL.domain_grp]`, env)
	at := caltime.Date(2000, 6, 1)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readerGoro; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastCount := float64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := w.QueryAt(q, at)
				if err != nil {
					t.Error(err)
					return
				}
				tot := grandTotals(res)
				count := tot[0]
				// Batch atomicity: totals advance in whole batches.
				k := (count - initRows) / batchRows
				if k != float64(int(k)) || k < 0 || k > batches {
					t.Errorf("count %v is not initial %d plus whole batches of %d", count, initRows, batchRows)
					return
				}
				// Monotonicity: snapshots publish in order.
				if count < lastCount {
					t.Errorf("count went backwards: %v after %v", count, lastCount)
					return
				}
				lastCount = count
				// Conservation: regrouping preserves each measure.
				if tot[1] != 2*count || tot[2] != 3*count || tot[3] != 5*count {
					t.Errorf("measure totals %v out of lockstep with count %v", tot, count)
					return
				}
			}
		}()
	}

	for b := 0; b < batches; b++ {
		lo := initRows + b*batchRows
		if err := load(lo, lo+batchRows); err != nil {
			t.Fatal(err)
		}
		switch b % 4 {
		case 1:
			if err := w.InsertActions(churn); err != nil {
				t.Fatal(err)
			}
		case 3:
			if err := w.DeleteActions("y"); err != nil {
				t.Fatal(err)
			}
		case 2:
			if err := w.AdvanceTo(w.Now() + 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()

	// The final state must account for every loaded row.
	res, err := w.QueryAt(q, at)
	if err != nil {
		t.Fatal(err)
	}
	if tot := grandTotals(res); tot[0] != initRows+batches*batchRows {
		t.Errorf("final count = %v, want %d", tot[0], initRows+batches*batchRows)
	}
}

// TestDifferentialSnapshotVsInterpretedOracle drives the epoch-snapshot
// warehouse (compiled evaluation) and a plain interpreted cube set
// through the same op script — batch loads, clock advances across sync
// boundaries, spec churn — mirroring every synchronization, and asserts
// the two answer an identical query battery identically at every step.
// Dump() renders facts sorted by cell, so string equality is exact MO
// equality; integer measures keep the sums exact on both paths.
func TestDifferentialSnapshotVsInterpretedOracle(t *testing.T) {
	obj, err := workload.NewClickSchema()
	if err != nil {
		t.Fatal(err)
	}
	env, err := spec.NewEnv(obj.Schema, "Time", obj.Time)
	if err != nil {
		t.Fatal(err)
	}
	mAct, qAct, churn := stressSpec(t, env)
	w, err := Open(env, mAct, qAct)
	if err != nil {
		t.Fatal(err)
	}
	oracleSpec, err := spec.New(env, mAct, qAct)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := subcube.New(oracleSpec)
	if err != nil {
		t.Fatal(err)
	}
	oracle.SetInterpreted(true)

	start := caltime.Date(2000, 1, 1)
	refs, meas := stressRows(t, obj, 240, start)

	queries := []string{
		`aggregate [Time.day, URL.url]`,
		`aggregate [Time.month, URL.domain]`,
		`aggregate [Time.quarter, URL.domain_grp]`,
		`aggregate [Time.month, URL.domain] where Time.month <= NOW - 2 months`,
	}
	compare := func(step string) {
		t.Helper()
		at := w.Now()
		for _, src := range queries {
			pq := subcube.MustParseQuery(src, env)
			got, err := w.QueryAt(pq, at)
			if err != nil {
				t.Fatalf("%s: warehouse %q: %v", step, src, err)
			}
			want, err := oracle.Evaluate(pq, at)
			if err != nil {
				t.Fatalf("%s: oracle %q: %v", step, src, err)
			}
			if g, o := got.Dump(), want.Dump(); g != o {
				t.Fatalf("%s: %q diverged\nsnapshot+compiled:\n%s\ninterpreted oracle:\n%s", step, src, g, o)
			}
		}
	}
	// syncsSeen mirrors warehouse syncs onto the oracle: LoadBatch always
	// synchronizes, AdvanceTo only on a significant-period boundary, and
	// fine-granularity query results depend on what has been folded — so
	// the oracle must fold exactly when the warehouse did.
	syncsSeen := w.Metrics().Syncs
	mirrorSync := func() {
		if n := w.Metrics().Syncs; n != syncsSeen {
			syncsSeen = n
			if _, err := oracle.Sync(w.Now()); err != nil {
				t.Fatal(err)
			}
		}
	}

	advance := func(d caltime.Day) {
		if err := w.AdvanceTo(d); err != nil {
			t.Fatal(err)
		}
		mirrorSync()
		compare(fmt.Sprintf("advance to %v", d))
	}
	loadBoth := func(lo, hi int) {
		err := w.LoadBatch(func(ld func([]mdm.ValueID, []float64) error) error {
			for i := lo; i < hi; i++ {
				if err := ld(refs[i], meas[i]); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := lo; i < hi; i++ {
			if err := oracle.Insert(refs[i], meas[i]); err != nil {
				t.Fatal(err)
			}
		}
		mirrorSync()
		compare(fmt.Sprintf("load [%d,%d)", lo, hi))
	}

	advance(caltime.Date(2000, 3, 1))
	loadBoth(0, 80)
	advance(caltime.Date(2000, 5, 1))
	loadBoth(80, 160)

	// Spec churn, mirrored through the same Insert/Delete + ApplySpec
	// sequence the warehouse applies per side.
	if err := w.InsertActions(churn); err != nil {
		t.Fatal(err)
	}
	if err := oracleSpec.Insert(churn); err != nil {
		t.Fatal(err)
	}
	if err := oracle.ApplySpec(oracleSpec, w.Now()); err != nil {
		t.Fatal(err)
	}
	compare("insert churn action")

	advance(caltime.Date(2000, 8, 1))
	loadBoth(160, 240)

	if err := w.DeleteActions("y"); err != nil {
		t.Fatal(err)
	}
	mo, err := materialize(env, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if err := oracleSpec.Delete(mo, w.Now(), "y"); err != nil {
		t.Fatal(err)
	}
	if err := oracle.ApplySpec(oracleSpec, w.Now()); err != nil {
		t.Fatal(err)
	}
	compare("delete churn action")

	advance(caltime.Date(2001, 1, 1))
	advance(caltime.Date(2001, 6, 1))
}
