package warehouse

import (
	"strings"
	"sync"
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/workload"
)

// TestMetricsEndToEnd drives a full warehouse lifecycle — load, advance
// the clock past a reduction boundary, query — and asserts the
// observability layer saw every stage: non-zero fold, scan and latency
// counters, coherent gauges.
func TestMetricsEndToEnd(t *testing.T) {
	w, obj := openClickWarehouse(t)
	start := caltime.Date(2000, 1, 1)
	if err := w.AdvanceTo(start); err != nil {
		t.Fatal(err)
	}
	cfg := workload.ClickConfig{Seed: 7, Start: start, Days: 90, ClicksPerDay: 25, Domains: 5, URLsPerDomain: 3}
	loadStream(t, w, obj, cfg)

	m := w.Metrics()
	if m.FactsLoaded != 90*25 {
		t.Errorf("FactsLoaded = %d, want %d", m.FactsLoaded, 90*25)
	}
	if m.BatchLoads != 1 {
		t.Errorf("BatchLoads = %d, want 1", m.BatchLoads)
	}
	if m.RowsAppended == 0 {
		t.Error("RowsAppended = 0 after loading")
	}
	if m.Syncs == 0 {
		t.Error("Syncs = 0 after a bulk load")
	}
	if m.LiveRows == 0 || m.LiveBytes == 0 || m.DimBytes == 0 || m.CubeCount < 2 {
		t.Errorf("storage gauges not populated: %+v", m)
	}

	// Cross the to-month reduction boundary: the sync must fold rows.
	if err := w.AdvanceTo(caltime.Date(2001, 1, 15)); err != nil {
		t.Fatal(err)
	}
	m2 := w.Metrics()
	if m2.RowsFolded == 0 {
		t.Error("RowsFolded = 0 after advancing past the reduction boundary")
	}
	if m2.SyncScanned == 0 {
		t.Error("SyncScanned = 0 after a migrating sync")
	}
	if m2.Syncs <= m.Syncs {
		t.Errorf("Syncs did not advance: %d -> %d", m.Syncs, m2.Syncs)
	}
	if m2.SyncDuration.Count != m2.Syncs {
		t.Errorf("SyncDuration.Count = %d, want %d", m2.SyncDuration.Count, m2.Syncs)
	}
	if m2.LiveRows >= m.LiveRows {
		t.Errorf("LiveRows gauge did not shrink: %d -> %d", m.LiveRows, m2.LiveRows)
	}

	// Query: scan counters and the latency histogram must move.
	res, err := w.Query(`aggregate [Time.month, URL.domain]`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("query returned no cells")
	}
	m3 := w.Metrics()
	if m3.Queries != 1 {
		t.Errorf("Queries = %d, want 1", m3.Queries)
	}
	if m3.CubesConsulted == 0 {
		t.Error("CubesConsulted = 0 after a query")
	}
	if m3.RowsScanned == 0 || m3.RowsSelected == 0 {
		t.Errorf("query scan counters empty: scanned=%d selected=%d", m3.RowsScanned, m3.RowsSelected)
	}
	if m3.QueryDuration.Count != 1 {
		t.Errorf("QueryDuration.Count = %d, want 1", m3.QueryDuration.Count)
	}

	// The delta helper meters just the query window.
	d := m3.Sub(m2)
	if d.Queries != 1 || d.FactsLoaded != 0 {
		t.Errorf("delta wrong: Queries=%d FactsLoaded=%d", d.Queries, d.FactsLoaded)
	}
	if !strings.Contains(m3.String(), "rows folded") {
		t.Errorf("Metrics.String missing rows folded:\n%s", m3)
	}
}

// TestQueryTraced checks the per-query trace: every subcube appears,
// scanned/kept totals match the engine counters, and time-selective
// queries report zone-map pruning.
func TestQueryTraced(t *testing.T) {
	w, obj := openClickWarehouse(t)
	start := caltime.Date(2000, 1, 1)
	if err := w.AdvanceTo(start); err != nil {
		t.Fatal(err)
	}
	cfg := workload.ClickConfig{Seed: 3, Start: start, Days: 120, ClicksPerDay: 20, Domains: 4, URLsPerDomain: 3}
	loadStream(t, w, obj, cfg)
	if err := w.AdvanceTo(caltime.Date(2001, 6, 1)); err != nil {
		t.Fatal(err)
	}

	before := w.Metrics()
	res, tr, err := w.QueryTraced(`aggregate [Time.month, URL.domain]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Cubes) != int(w.Metrics().CubeCount) {
		t.Errorf("trace covers %d cubes, layout has %d", len(tr.Cubes), w.Metrics().CubeCount)
	}
	if !tr.Synced {
		t.Error("trace should report the synchronized state after AdvanceTo")
	}
	if tr.RowsScanned() == 0 {
		t.Error("trace rows scanned = 0")
	}
	if tr.ResultCells != res.Len() {
		t.Errorf("trace result cells %d != result %d", tr.ResultCells, res.Len())
	}
	delta := w.Metrics().Sub(before)
	if int(delta.RowsScanned) != tr.RowsScanned() || int(delta.RowsSelected) != tr.RowsKept() {
		t.Errorf("trace totals diverge from counters: trace (%d, %d), counters (%d, %d)",
			tr.RowsScanned(), tr.RowsKept(), delta.RowsScanned, delta.RowsSelected)
	}
	if len(tr.Stages) != 2 {
		t.Errorf("expected 2 stages, got %v", tr.Stages)
	}
	out := tr.String()
	for _, want := range []string{"query:", "(synchronized)", "result cells"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace rendering missing %q:\n%s", want, out)
		}
	}

	// A query over only the recent past must prune the coarse cubes
	// whose day hull lies outside the predicate's bounds.
	_, tr2, err := w.QueryTraced(`aggregate [Time.day, URL.url] where 2001/4 < Time.month`)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.CubesPruned() == 0 {
		t.Errorf("time-selective query pruned no cubes:\n%s", tr2)
	}
}

// TestMetricsConcurrentQueries runs parallel traced and untraced
// queries against concurrent Metrics() snapshots — the pattern the race
// CI job guards.
func TestMetricsConcurrentQueries(t *testing.T) {
	w, obj := openClickWarehouse(t)
	start := caltime.Date(2000, 1, 1)
	if err := w.AdvanceTo(start); err != nil {
		t.Fatal(err)
	}
	cfg := workload.ClickConfig{Seed: 9, Start: start, Days: 60, ClicksPerDay: 15, Domains: 4, URLsPerDomain: 2}
	loadStream(t, w, obj, cfg)

	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if i%2 == 0 {
					_, _, err := w.QueryTraced(`aggregate [Time.month, URL.domain]`)
					if err != nil {
						errs[i] = err
						return
					}
				} else if _, err := w.Query(`aggregate [Time.month, URL.domain]`); err != nil {
					errs[i] = err
					return
				}
				_ = w.Metrics()
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Metrics().Queries; got != workers*10 {
		t.Errorf("Queries = %d, want %d", got, workers*10)
	}
}
