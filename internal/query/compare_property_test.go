package query

import (
	"math/rand"
	"testing"

	"dimred/internal/expr"
)

// bruteVerdicts computes the Definition 5 verdicts by direct expansion
// of the quantifier structure, as an oracle for compareSets.
func bruteVerdicts(op expr.Op, l, r ordSet) (cons, lib bool) {
	all := func(pred func(a int64) bool) bool {
		for _, a := range l {
			if !pred(a) {
				return false
			}
		}
		return true
	}
	exists := func(pred func(a int64) bool) bool {
		for _, a := range l {
			if pred(a) {
				return true
			}
		}
		return false
	}
	anyR := func(pred func(b int64) bool) bool {
		for _, b := range r {
			if pred(b) {
				return true
			}
		}
		return false
	}
	allR := func(pred func(b int64) bool) bool {
		for _, b := range r {
			if !pred(b) {
				return false
			}
		}
		return true
	}
	switch op {
	case expr.OpLT:
		return all(func(a int64) bool { return allR(func(b int64) bool { return a < b }) }),
			exists(func(a int64) bool { return anyR(func(b int64) bool { return a < b }) })
	case expr.OpGT:
		return all(func(a int64) bool { return allR(func(b int64) bool { return a > b }) }),
			exists(func(a int64) bool { return anyR(func(b int64) bool { return a > b }) })
	case expr.OpLE:
		return all(func(a int64) bool { return anyR(func(b int64) bool { return a <= b }) }),
			exists(func(a int64) bool { return anyR(func(b int64) bool { return a <= b }) })
	case expr.OpGE:
		return all(func(a int64) bool { return anyR(func(b int64) bool { return a >= b }) }),
			exists(func(a int64) bool { return anyR(func(b int64) bool { return a >= b }) })
	case expr.OpEQ:
		return l.equal(r), !l.disjoint(r)
	case expr.OpNE:
		return l.disjoint(r), !(len(l) == 1 && len(r) == 1 && l[0] == r[0])
	case expr.OpIn:
		return all(func(a int64) bool { return anyR(func(b int64) bool { return a == b }) }),
			exists(func(a int64) bool { return anyR(func(b int64) bool { return a == b }) })
	case expr.OpNotIn:
		return l.disjoint(r), !l.subsetOf(r)
	}
	return false, false
}

func randomOrdSet(rng *rand.Rand) ordSet {
	n := 1 + rng.Intn(4)
	seen := map[int64]bool{}
	var s ordSet
	for len(s) < n {
		x := int64(rng.Intn(10))
		if !seen[x] {
			seen[x] = true
			s = append(s, x)
		}
	}
	sortOrds(s)
	return s
}

// TestCompareSetsAgainstQuantifierOracle cross-checks the closed-form
// comparisons in compareSets against the quantified Definition 5
// formulas, and validates the cross-approach laws: conservative implies
// liberal, and weight is 1 on conservative, 0 off liberal, in [0,1]
// always.
func TestCompareSetsAgainstQuantifierOracle(t *testing.T) {
	ops := []expr.Op{expr.OpLT, expr.OpLE, expr.OpEQ, expr.OpNE, expr.OpGE, expr.OpGT, expr.OpIn, expr.OpNotIn}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 3000; trial++ {
		l, r := randomOrdSet(rng), randomOrdSet(rng)
		op := ops[rng.Intn(len(ops))]
		cons, lib, w := compareSets(op, l, r)
		oc, ol := bruteVerdicts(op, l, r)
		if cons != oc || lib != ol {
			t.Fatalf("op %v l=%v r=%v: got (%v,%v), oracle (%v,%v)", op, l, r, cons, lib, oc, ol)
		}
		if cons && !lib {
			t.Fatalf("op %v l=%v r=%v: conservative without liberal", op, l, r)
		}
		if w < 0 || w > 1 {
			t.Fatalf("op %v: weight %v out of range", op, w)
		}
		if !lib && w != 0 {
			t.Fatalf("op %v l=%v r=%v: weight %v despite liberal=false", op, l, r, w)
		}
	}
}

// TestCompareSetsEmpty covers degenerate inputs.
func TestCompareSetsEmpty(t *testing.T) {
	l := ordSet{1}
	if c, lib, w := compareSets(expr.OpLT, nil, l); c || lib || w != 0 {
		t.Error("empty left should fail all approaches")
	}
	if c, lib, w := compareSets(expr.OpLT, l, nil); c || lib || w != 0 {
		t.Error("empty right should fail all approaches")
	}
	if c, _, _ := compareSets(expr.Op(99), l, l); c {
		t.Error("unknown op should fail")
	}
}
