package query

import (
	"fmt"
	"sort"
	"strings"

	"dimred/internal/mdm"
)

// AggApproach selects how aggregate formation treats facts whose
// granularity is already above the requested level (Section 6.3).
type AggApproach int

const (
	// Availability returns each fact at the finest available granularity
	// at or above the requested one — the paper's default ("the most
	// detailed answer that is still guaranteed to be correct").
	Availability AggApproach = iota
	// Strict considers only facts at or below the requested granularity.
	Strict
	// LUB aggregates everything to the finest common granularity that is
	// at or above the requested one and available for all facts.
	LUB
	// Disaggregated forces the requested granularity, splitting coarse
	// SUM measures evenly over their populated drill-down cells
	// (imprecise, as the paper notes, citing Dyreson).
	Disaggregated
)

var aggApproachNames = [...]string{"availability", "strict", "LUB", "disaggregated"}

// String returns the approach name.
func (a AggApproach) String() string {
	if a < Availability || a > Disaggregated {
		return fmt.Sprintf("AggApproach(%d)", int(a))
	}
	return aggApproachNames[a]
}

// Project is the projection operator π (Eq. 37): it retains the named
// dimensions and measures. The fact set is unchanged — duplicates are
// not removed, as in regular star schemas.
func Project(mo *mdm.MO, dimNames, measureNames []string) (*mdm.MO, error) {
	schema := mo.Schema()
	var dims []*mdm.Dimension
	var dimIdx []int
	for _, n := range dimNames {
		i := schema.DimIndex(n)
		if i < 0 {
			return nil, fmt.Errorf("query: Project: unknown dimension %q", n)
		}
		dims = append(dims, schema.Dims[i])
		dimIdx = append(dimIdx, i)
	}
	var meas []mdm.Measure
	var measIdx []int
	for _, n := range measureNames {
		j := schema.MeasureIndex(n)
		if j < 0 {
			return nil, fmt.Errorf("query: Project: unknown measure %q", n)
		}
		meas = append(meas, schema.Measures[j])
		measIdx = append(measIdx, j)
	}
	outSchema, err := mdm.NewSchema(schema.FactType, dims, meas)
	if err != nil {
		return nil, fmt.Errorf("query: Project: %w", err)
	}
	out := mdm.NewMO(outSchema)
	floors := make(mdm.Granularity, len(dimIdx))
	for k, i := range dimIdx {
		floors[k] = mo.Floors()[i]
	}
	out.SetFloors(floors)
	for f := 0; f < mo.Len(); f++ {
		fid := mdm.FactID(f)
		refs := make([]mdm.ValueID, len(dimIdx))
		for k, i := range dimIdx {
			refs[k] = mo.Ref(fid, i)
		}
		ms := make([]float64, len(measIdx))
		for k, j := range measIdx {
			ms[k] = mo.Measure(fid, j)
		}
		if _, err := out.AddFactAt(refs, ms, mo.BaseCount(fid), mo.Name(fid)); err != nil {
			return nil, fmt.Errorf("query: Project: %w", err)
		}
	}
	return out, nil
}

// GroupHigh implements Group_high (Eq. 38): the facts characterized by
// every value of the cell, where values above the requested granularity
// must additionally be mapped to directly (so a fact is aggregated into
// exactly one group).
//
//dimred:aggregate
func GroupHigh(mo *mdm.MO, cell []mdm.ValueID, target mdm.Granularity) []mdm.FactID {
	schema := mo.Schema()
	var out []mdm.FactID
	for f := 0; f < mo.Len(); f++ {
		fid := mdm.FactID(f)
		match := true
		for i, d := range schema.Dims {
			vc := d.CategoryOf(cell[i])
			if d.CatLE(vc, target[i]) && vc != target[i] {
				match = false // cell below the requested granularity
				break
			}
			if vc == target[i] {
				if !mo.CharacterizedBy(fid, i, cell[i]) {
					match = false
					break
				}
			} else {
				// Higher than requested: direct mapping required.
				if mo.Ref(fid, i) != cell[i] {
					match = false
					break
				}
			}
		}
		if match {
			out = append(out, fid)
		}
	}
	return out
}

// Aggregate is the aggregate formation operator α[C1,...,Cn](O)
// (Definition 6) at the requested granularity under the given approach.
// Each result fact's measures are folded with the measures' default
// aggregate functions. The result MO keeps the schema and dimensions;
// its insert floors are raised to the result granularity (the formal
// definition restricts the schema to a subdimension, which
// mdm.Dimension.Subdimension materializes for callers that need it).
//
//dimred:aggregate
func Aggregate(mo *mdm.MO, target mdm.Granularity, approach AggApproach) (*mdm.MO, error) {
	schema := mo.Schema()
	if len(target) != len(schema.Dims) {
		return nil, fmt.Errorf("query: Aggregate: granularity needs %d categories", len(schema.Dims))
	}
	switch approach {
	case Availability, Strict, LUB, Disaggregated:
	default:
		return nil, fmt.Errorf("query: Aggregate: unknown approach %d", approach)
	}

	effTarget := target
	if approach == LUB {
		// Finest common granularity >= target available for all facts.
		eff := append(mdm.Granularity(nil), target...)
		for f := 0; f < mo.Len(); f++ {
			g := mo.Gran(mdm.FactID(f))
			for i, d := range schema.Dims {
				if !d.CatLE(g[i], eff[i]) {
					// Raise eff[i] to an upper bound of both. For the
					// category orders in this model the least upper
					// bound is the lowest category above both.
					eff[i] = leastUpper(d, eff[i], g[i])
				}
			}
		}
		effTarget = eff
	}

	type group struct {
		cell    []mdm.ValueID
		meas    []float64
		base    int64
		sources []string
	}
	groups := make(map[string]*group)
	var order []string
	var keyBuf []byte

	addTo := func(cell []mdm.ValueID, fid mdm.FactID, scale float64) {
		keyBuf = keyBuf[:0]
		for _, v := range cell {
			keyBuf = append(keyBuf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		key := string(keyBuf)
		g, ok := groups[key]
		if !ok {
			g = &group{cell: append([]mdm.ValueID(nil), cell...), meas: make([]float64, len(schema.Measures))}
			for j := range schema.Measures {
				g.meas[j] = scaledInit(schema.Measures[j].Agg, mo, fid, j, scale)
			}
			g.base = mo.BaseCount(fid)
			g.sources = append(g.sources, mo.Name(fid))
			groups[key] = g
			order = append(order, key)
			return
		}
		for j := range schema.Measures {
			agg := schema.Measures[j].Agg
			g.meas[j] = agg.Merge(g.meas[j], scaledInit(agg, mo, fid, j, scale))
		}
		g.base += mo.BaseCount(fid)
		g.sources = append(g.sources, mo.Name(fid))
	}

	for f := 0; f < mo.Len(); f++ {
		fid := mdm.FactID(f)
		gran := mo.Gran(fid)
		cell := make([]mdm.ValueID, len(schema.Dims))
		above := false // some dimension is above the requested level
		ok := true
		for i, d := range schema.Dims {
			switch {
			case d.CatLE(gran[i], effTarget[i]):
				cell[i] = d.AncestorAt(mo.Ref(fid, i), effTarget[i])
				if cell[i] == mdm.NoValue {
					ok = false
				}
			default:
				// The category is above or parallel to the requested one.
				// Figure 8's evaluation rolls a week-granularity fact up
				// to the month level because all its populated days lie
				// in one month: when the drill-down reaches a unique
				// ancestor at the requested category, the roll-up is
				// unambiguous and the fact attains the requested
				// granularity; otherwise it keeps its own value
				// (availability semantics).
				if u, uok := unambiguousRollUp(d, mo.Ref(fid, i), effTarget[i]); uok {
					cell[i] = u
					continue
				}
				above = true
				cell[i] = mo.Ref(fid, i)
			}
		}
		if !ok {
			return nil, fmt.Errorf("query: Aggregate: fact %s has no ancestor at the requested granularity", mo.Name(fid))
		}
		switch approach {
		case Strict:
			if above {
				continue // drop facts coarser than requested
			}
			addTo(cell, fid, 1)
		case Availability, LUB:
			// LUB's effTarget dominates every fact, so above is false.
			addTo(cell, fid, 1)
		case Disaggregated:
			if !above {
				addTo(cell, fid, 1)
				continue
			}
			disaggregate(mo, fid, cell, effTarget, addTo)
		}
	}

	out := mdm.NewMO(schema)
	out.SetFloors(effTarget)
	for _, key := range order {
		g := groups[key]
		if _, err := out.AddFactAt(g.cell, g.meas, g.base, mergedName(g.sources)); err != nil {
			return nil, fmt.Errorf("query: Aggregate: %w", err)
		}
	}
	return out, nil
}

// AggregateWeighted folds a weighted selection result (from
// SelectWeighted) to the target granularity: each fact's SUM and COUNT
// contributions are scaled by its certainty weight, yielding expected
// values under the weighted approach of Section 6.1. MIN/MAX measures
// are aggregated unscaled (extrema have no meaningful expectation under
// even weighting). weights must align with mo's fact ids.
func AggregateWeighted(mo *mdm.MO, weights []float64, target mdm.Granularity, approach AggApproach) (*mdm.MO, error) {
	if len(weights) != mo.Len() {
		return nil, fmt.Errorf("query: AggregateWeighted: %d weights for %d facts", len(weights), mo.Len())
	}
	// Scale a copy's SUM measures by the weights, then aggregate
	// normally. COUNT cannot be pre-scaled through BaseCount (integral),
	// so COUNT measures lose fractional weighting here; the conservative
	// and liberal approaches bound the exact answer.
	scaled := mo.Clone()
	schema := mo.Schema()
	for f := 0; f < scaled.Len(); f++ {
		fid := mdm.FactID(f)
		for j, m := range schema.Measures {
			if m.Agg == mdm.AggSum {
				scaled.SetMeasure(fid, j, scaled.Measure(fid, j)*weights[f])
			}
		}
	}
	return Aggregate(scaled, target, approach)
}

// scaledInit lifts a base measure into the aggregate domain, scaling SUM
// and COUNT measures for disaggregation shares.
func scaledInit(agg mdm.AggKind, mo *mdm.MO, fid mdm.FactID, j int, scale float64) float64 {
	switch agg {
	case mdm.AggCount:
		return float64(mo.BaseCount(fid)) * scale
	case mdm.AggSum:
		return mo.Measure(fid, j) * scale
	default:
		// MIN/MAX replicate: disaggregation cannot split extrema.
		return mo.Measure(fid, j)
	}
}

// disaggregate splits a coarse fact evenly over the populated drill-down
// cells below it, per dimension, multiplying the shares across
// dimensions.
func disaggregate(mo *mdm.MO, fid mdm.FactID, cell []mdm.ValueID, target mdm.Granularity, addTo func([]mdm.ValueID, mdm.FactID, float64)) {
	schema := mo.Schema()
	// Collect per-dimension candidate lists at the target granularity.
	choices := make([][]mdm.ValueID, len(cell))
	total := 1
	for i, d := range schema.Dims {
		if d.CatLE(d.CategoryOf(cell[i]), target[i]) {
			choices[i] = []mdm.ValueID{cell[i]}
			continue
		}
		dd := d.DrillDown(cell[i], target[i])
		if len(dd) == 0 {
			return // nothing populated below: the fact cannot be placed
		}
		choices[i] = dd
		total *= len(dd)
	}
	share := 1 / float64(total)
	// Enumerate the cross product.
	idx := make([]int, len(choices))
	sub := make([]mdm.ValueID, len(choices))
	for {
		for i := range choices {
			sub[i] = choices[i][idx[i]]
		}
		addTo(sub, fid, share)
		carry := len(choices) - 1
		for carry >= 0 {
			idx[carry]++
			if idx[carry] < len(choices[carry]) {
				break
			}
			idx[carry] = 0
			carry--
		}
		if carry < 0 {
			break
		}
	}
}

// unambiguousRollUp maps a value whose category is not below cat onto
// its unique ancestor-through-leaves at cat, when one exists: all
// populated descendants at the GLB category must share the same ancestor
// at cat.
func unambiguousRollUp(d *mdm.Dimension, v mdm.ValueID, cat mdm.CategoryID) (mdm.ValueID, bool) {
	glb := d.GLB(d.CategoryOf(v), cat)
	dd := d.DrillDown(v, glb)
	if len(dd) == 0 {
		return mdm.NoValue, false
	}
	first := d.AncestorAt(dd[0], cat)
	if first == mdm.NoValue {
		return mdm.NoValue, false
	}
	for _, w := range dd[1:] {
		if d.AncestorAt(w, cat) != first {
			return mdm.NoValue, false
		}
	}
	return first, true
}

// leastUpper returns the lowest category above both a and b.
func leastUpper(d *mdm.Dimension, a, b mdm.CategoryID) mdm.CategoryID {
	best := d.Top()
	for c := 0; c < d.NumCategories(); c++ {
		cid := mdm.CategoryID(c)
		if d.CatLE(a, cid) && d.CatLE(b, cid) && d.CatLE(cid, best) {
			best = cid
		}
	}
	return best
}

// mergedName mirrors the reduction engine's fact naming: fact_4 and
// fact_5 aggregate to "fact_45".
func mergedName(sources []string) string {
	if len(sources) == 1 {
		return sources[0]
	}
	suffixes := make([]string, 0, len(sources))
	for _, name := range sources {
		rest, ok := strings.CutPrefix(name, "fact_")
		if !ok {
			return fmt.Sprintf("agg(%d facts)", len(sources))
		}
		suffixes = append(suffixes, rest)
	}
	sort.Strings(suffixes)
	return "fact_" + strings.Join(suffixes, "")
}
