package query

import (
	"fmt"

	"dimred/internal/mdm"
)

// Union is the MO union operator of the extended algebra the paper
// builds on (Pedersen et al. [13]): the facts of both objects over the
// same schema, with facts mapping to the same cell merged by the default
// aggregate functions (facts are identified by their characterization,
// as in the reduction semantics). The result's insert floors are the
// pointwise meet of the operands'.
func Union(a, b *mdm.MO) (*mdm.MO, error) {
	if a.Schema() != b.Schema() {
		return nil, fmt.Errorf("query: Union: operands have different schemas")
	}
	schema := a.Schema()
	out := mdm.NewMO(schema)
	floors := make(mdm.Granularity, schema.NumDims())
	for i, d := range schema.Dims {
		floors[i] = d.GLB(a.Floors()[i], b.Floors()[i])
	}
	out.SetFloors(floors)

	index := make(map[string]mdm.FactID)
	var keyBuf []byte
	add := func(mo *mdm.MO, f mdm.FactID) error {
		refs := mo.Refs(f)
		keyBuf = keyBuf[:0]
		for _, v := range refs {
			keyBuf = append(keyBuf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		key := string(keyBuf)
		if ex, ok := index[key]; ok {
			for j, m := range schema.Measures {
				out.SetMeasure(ex, j, m.Agg.Merge(out.Measure(ex, j), mo.Measure(f, j)))
			}
			out.AddBaseCount(ex, mo.BaseCount(f))
			return nil
		}
		nf, err := out.AddFactAt(refs, mo.Measures(f), mo.BaseCount(f), mo.Name(f))
		if err != nil {
			return err
		}
		index[key] = nf
		return nil
	}
	for f := 0; f < a.Len(); f++ {
		if err := add(a, mdm.FactID(f)); err != nil {
			return nil, fmt.Errorf("query: Union: %w", err)
		}
	}
	for f := 0; f < b.Len(); f++ {
		if err := add(b, mdm.FactID(f)); err != nil {
			return nil, fmt.Errorf("query: Union: %w", err)
		}
	}
	return out, nil
}

// Difference returns the facts of a whose cell does not appear in b —
// cell-identity difference over the same schema ([13]). Measures are
// not subtracted: a fact either survives untouched or is removed.
func Difference(a, b *mdm.MO) (*mdm.MO, error) {
	if a.Schema() != b.Schema() {
		return nil, fmt.Errorf("query: Difference: operands have different schemas")
	}
	schema := a.Schema()
	drop := make(map[string]bool, b.Len())
	var keyBuf []byte
	cellOf := func(mo *mdm.MO, f mdm.FactID) string {
		keyBuf = keyBuf[:0]
		for _, v := range mo.Refs(f) {
			keyBuf = append(keyBuf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		return string(keyBuf)
	}
	for f := 0; f < b.Len(); f++ {
		drop[cellOf(b, mdm.FactID(f))] = true
	}
	out := mdm.NewMO(schema)
	out.SetFloors(a.Floors())
	for f := 0; f < a.Len(); f++ {
		fid := mdm.FactID(f)
		if drop[cellOf(a, fid)] {
			continue
		}
		if _, err := out.AddFactAt(a.Refs(fid), a.Measures(fid), a.BaseCount(fid), a.Name(fid)); err != nil {
			return nil, fmt.Errorf("query: Difference: %w", err)
		}
	}
	return out, nil
}
