package query

import (
	"strings"
	"testing"

	"dimred/internal/dims"
	"dimred/internal/mdm"
	"dimred/internal/spec"
)

// TestSelectRejectsWeightedApproach pins the API contract: Select
// cannot honor the weighted approach (it has nowhere to put the
// per-fact certainty weights), so it must fail loudly instead of
// silently degrading to the liberal answer, and the error must point
// the caller at SelectWeighted.
func TestSelectRejectsWeightedApproach(t *testing.T) {
	p := dims.MustPaperMO()
	env, err := spec.NewEnv(p.Schema, "Time", p.Time)
	if err != nil {
		t.Fatal(err)
	}
	pred := MustParsePred(`URL.domain_grp = ".com"`, env)
	mo := mdm.NewMO(p.Schema)
	if _, err := Select(mo, pred, 0, Weighted); err == nil {
		t.Fatal("Select accepted the weighted approach")
	} else if !strings.Contains(err.Error(), "SelectWeighted") {
		t.Fatalf("Select's weighted error does not direct the caller to SelectWeighted: %v", err)
	}
}
