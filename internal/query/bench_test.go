package query

import (
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/mdm"
	"dimred/internal/spec"
	"dimred/internal/workload"
)

func benchReducedStream(b *testing.B) (*workload.ClickObject, *spec.Env, *mdm.MO) {
	b.Helper()
	obj, err := workload.BuildClickMO(workload.ClickConfig{
		Seed: 5, Start: caltime.Date(2000, 1, 1), Days: 120,
		ClicksPerDay: 50, Domains: 10, URLsPerDomain: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	env, err := spec.NewEnv(obj.Schema, "Time", obj.Time)
	if err != nil {
		b.Fatal(err)
	}
	return obj, env, obj.MO
}

// BenchmarkSelectApproaches is the selection-approach ablation: the
// conservative, liberal and weighted evaluations share the drill-down
// machinery but differ in verdict computation.
func BenchmarkSelectApproaches(b *testing.B) {
	obj, env, mo := benchReducedStream(b)
	_ = obj
	pred, err := ParsePred(`Time.week <= 2000W10`, env)
	if err != nil {
		b.Fatal(err)
	}
	at := caltime.Date(2000, 6, 1)
	for _, ap := range []Approach{Conservative, Liberal, Weighted} {
		b.Run(ap.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if ap == Weighted {
					if _, _, err := SelectWeighted(mo, pred, at); err != nil {
						b.Fatal(err)
					}
				} else if _, err := Select(mo, pred, at, ap); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAggregateApproaches is the aggregate-formation ablation over
// the four Section 6.3 approaches, on a mixed-granularity MO.
func BenchmarkAggregateApproaches(b *testing.B) {
	_, env, mo := benchReducedStream(b)
	mid, err := env.Schema.ParseGranularity([]string{"Time.month", "URL.domain"})
	if err != nil {
		b.Fatal(err)
	}
	mixed, err := Aggregate(mo, mid, Availability)
	if err != nil {
		b.Fatal(err)
	}
	target, err := env.Schema.ParseGranularity([]string{"Time.quarter", "URL.domain_grp"})
	if err != nil {
		b.Fatal(err)
	}
	for _, ap := range []AggApproach{Availability, Strict, LUB, Disaggregated} {
		b.Run(ap.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Aggregate(mixed, target, ap); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
