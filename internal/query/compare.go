// Package query implements the algebraic query language of Section 6
// over (possibly reduced) multidimensional objects: selection under the
// varying-granularity comparison semantics of Definition 5
// (conservative, liberal and weighted approaches), projection (Eq. 37),
// and aggregate formation (Definition 6) with the strict, LUB,
// availability and disaggregated approaches, built on the Group_high
// grouping (Eq. 38).
//
// Comparisons between values of different granularities drill both sides
// down to their categories' greatest lower bound (Eq. 33) and compare
// the resulting value sets. Following the paper's Appendix A examples,
// drill-down uses the values actually populated in the dimension ("week
// 1999W48 consists of only one day, as quarter 1999Q4 consists of only 3
// days"); a time literal that is not populated falls back to its
// calendar day range.
package query

import (
	"fmt"

	"dimred/internal/expr"
	"dimred/internal/mdm"
)

// Approach selects how selection treats facts whose granularity is too
// coarse to decide the predicate exactly (Section 6.1).
type Approach int

const (
	// Conservative returns only facts known to satisfy the predicate —
	// the paper's default for warehouse applications.
	Conservative Approach = iota
	// Liberal returns every fact that might satisfy the predicate.
	Liberal
	// Weighted returns facts that might satisfy the predicate, each with
	// a certainty weight in (0, 1].
	Weighted
)

var approachNames = [...]string{"conservative", "liberal", "weighted"}

// String returns the approach name.
func (a Approach) String() string {
	if a < Conservative || a > Weighted {
		return fmt.Sprintf("Approach(%d)", int(a))
	}
	return approachNames[a]
}

// ordSet is a set of comparable ordinals: for ordered categories the
// value order keys, for unordered categories the value ids themselves
// (equality-only operators).
type ordSet []int64

func (s ordSet) min() int64 { return s[0] }
func (s ordSet) max() int64 { return s[len(s)-1] }

func (s ordSet) contains(x int64) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == x
}

func (s ordSet) subsetOf(o ordSet) bool {
	for _, x := range s {
		if !o.contains(x) {
			return false
		}
	}
	return true
}

func (s ordSet) disjoint(o ordSet) bool {
	for _, x := range s {
		if o.contains(x) {
			return false
		}
	}
	return true
}

func (s ordSet) equal(o ordSet) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// compareSets evaluates "L op R" on drill-down ordinal sets per
// Definition 5. It returns the conservative verdict, the liberal
// verdict, and the weighted certainty (the fraction of L's elements that
// individually satisfy the operator against R). Both sets must be
// non-empty and sorted ascending.
func compareSets(op expr.Op, l, r ordSet) (cons, lib bool, weight float64) {
	if len(l) == 0 || len(r) == 0 {
		return false, false, 0
	}
	switch op {
	case expr.OpLT:
		cons = l.max() < r.min()
		lib = l.min() < r.max()
		weight = fractionBelow(l, r.min(), false)
	case expr.OpGT:
		cons = l.min() > r.max()
		lib = l.max() > r.min()
		weight = fractionAbove(l, r.max(), false)
	case expr.OpLE:
		// Conservative (Eq. 34, weak form): every element of L has an
		// element of R above-or-equal, i.e. max(L) <= max(R).
		cons = l.max() <= r.max()
		lib = l.min() <= r.max()
		weight = fractionBelow(l, r.max(), true)
	case expr.OpGE:
		cons = l.min() >= r.min()
		lib = l.max() >= r.min()
		weight = fractionAbove(l, r.min(), true)
	case expr.OpEQ:
		cons = l.equal(r)
		lib = !l.disjoint(r)
		weight = fractionIn(l, r)
	case expr.OpNE:
		cons = l.disjoint(r)
		lib = !(len(l) == 1 && len(r) == 1 && l[0] == r[0])
		weight = 1 - fractionIn(l, r)
	case expr.OpIn:
		// Eq. 35: every element of L equals some drill-down element of
		// the set's members.
		cons = l.subsetOf(r)
		lib = !l.disjoint(r)
		weight = fractionIn(l, r)
	case expr.OpNotIn:
		cons = l.disjoint(r)
		lib = !l.subsetOf(r)
		weight = 1 - fractionIn(l, r)
	default:
		return false, false, 0
	}
	return cons, lib, weight
}

func fractionBelow(l ordSet, bound int64, inclusive bool) float64 {
	n := 0
	for _, x := range l {
		if x < bound || (inclusive && x == bound) {
			n++
		}
	}
	return float64(n) / float64(len(l))
}

func fractionAbove(l ordSet, bound int64, inclusive bool) float64 {
	n := 0
	for _, x := range l {
		if x > bound || (inclusive && x == bound) {
			n++
		}
	}
	return float64(n) / float64(len(l))
}

func fractionIn(l, r ordSet) float64 {
	n := 0
	for _, x := range l {
		if r.contains(x) {
			n++
		}
	}
	return float64(n) / float64(len(l))
}

// drillOrds returns the ordinal set of value v drilled down to category
// cat: the ordering keys for ordered categories, value ids otherwise.
// The result is sorted.
func drillOrds(d *mdm.Dimension, v mdm.ValueID, cat mdm.CategoryID, ordered bool) ordSet {
	// AncestorAt covers the common case where v is at or below cat.
	if a := d.AncestorAt(v, cat); a != mdm.NoValue {
		if ordered {
			return ordSet{d.ValueOrd(a)}
		}
		return ordSet{int64(a)}
	}
	dd := d.DrillDown(v, cat)
	out := make(ordSet, 0, len(dd))
	for _, w := range dd {
		if ordered {
			out = append(out, d.ValueOrd(w))
		} else {
			out = append(out, int64(w))
		}
	}
	sortOrds(out)
	return out
}

func sortOrds(s ordSet) {
	// Insertion sort: drill-down sets are small and mostly sorted
	// (DrillDown returns them ordered by ord already).
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
