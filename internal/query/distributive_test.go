package query

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/mdm"
	"dimred/internal/spec"
	"dimred/internal/workload"
)

// canonAgg renders an MO's cells and measures for comparison, ignoring
// fact names.
func canonAgg(mo *mdm.MO) string {
	var lines []string
	for f := 0; f < mo.Len(); f++ {
		fid := mdm.FactID(f)
		var b strings.Builder
		b.WriteString(mo.CellString(fid))
		for j := range mo.Schema().Measures {
			fmt.Fprintf(&b, "|%v", mo.Measure(fid, j))
		}
		lines = append(lines, b.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestTwoStepAggregationDistributive validates the claim underpinning
// the Figure 8 evaluation plan: because the default aggregate functions
// are distributive, aggregating first to an intermediate granularity and
// then to the target equals aggregating directly — for every
// intermediate level between bottom and target.
func TestTwoStepAggregationDistributive(t *testing.T) {
	obj, err := workload.BuildClickMO(workload.ClickConfig{
		Seed: 21, Start: caltime.Date(2000, 3, 1), Days: 60,
		ClicksPerDay: 40, Domains: 7, URLsPerDomain: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	schema := obj.Schema
	target, err := schema.ParseGranularity([]string{"Time.quarter", "URL.domain_grp"})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Aggregate(obj.MO, target, Availability)
	if err != nil {
		t.Fatal(err)
	}
	intermediates := [][]string{
		{"Time.day", "URL.domain"},
		{"Time.month", "URL.url"},
		{"Time.month", "URL.domain"},
		{"Time.quarter", "URL.domain"},
		{"Time.month", "URL.domain_grp"},
	}
	for _, refs := range intermediates {
		mid, err := schema.ParseGranularity(refs)
		if err != nil {
			t.Fatal(err)
		}
		step1, err := Aggregate(obj.MO, mid, Availability)
		if err != nil {
			t.Fatal(err)
		}
		step2, err := Aggregate(step1, target, Availability)
		if err != nil {
			t.Fatal(err)
		}
		if canonAgg(step2) != canonAgg(direct) {
			t.Errorf("two-step via %v differs from direct:\n%s\nvs\n%s",
				refs, canonAgg(step2), canonAgg(direct))
		}
		// The materialized-view planner serves α[target] from a view
		// α[mid] whenever mid <=_g target; byte equality of the
		// canonical cell dump (measures and base counts) is exactly the
		// soundness condition it relies on.
		if step2.DumpCells() != direct.DumpCells() {
			t.Errorf("two-step via %v changes base counts:\n%s\nvs\n%s",
				refs, step2.DumpCells(), direct.DumpCells())
		}
	}
}

// TestAggregateWeightedExpectedValues checks the weighted pipeline: a
// predicate each quarter fact satisfies with weight 2/3 yields expected
// SUM contributions scaled by 2/3.
func TestAggregateWeightedExpectedValues(t *testing.T) {
	td := mdm.NewDimension("T")
	leaf := td.MustAddCategory("leaf", true)
	grp := td.MustAddCategory("grp", false)
	if err := td.Contains(leaf, grp); err != nil {
		t.Fatal(err)
	}
	td.MustFinalize()
	g1 := td.MustAddValue(grp, "g1", 0, nil)
	l1 := td.MustAddValue(leaf, "l1", 1, map[mdm.CategoryID]mdm.ValueID{grp: g1})
	l2 := td.MustAddValue(leaf, "l2", 2, map[mdm.CategoryID]mdm.ValueID{grp: g1})
	l3 := td.MustAddValue(leaf, "l3", 3, map[mdm.CategoryID]mdm.ValueID{grp: g1})
	_ = l2
	_ = l3
	schema, err := mdm.NewSchema("F", []*mdm.Dimension{td}, []mdm.Measure{{Name: "v", Agg: mdm.AggSum}})
	if err != nil {
		t.Fatal(err)
	}
	mo := mdm.NewMO(schema)
	// One fact already aggregated to g1 (covers leaves l1..l3).
	if _, err := mo.AddFactAt([]mdm.ValueID{g1}, []float64{90}, 3, "agg"); err != nil {
		t.Fatal(err)
	}
	// A second fact at leaf level that certainly matches.
	if _, err := mo.AddFact([]mdm.ValueID{l1}, []float64{10}); err != nil {
		t.Fatal(err)
	}
	// Predicate: leaf in {l1, l2} — the g1 fact matches with weight 2/3.
	// (This dimension has no time model, so build the predicate
	// programmatically against a time-free env.)
	env := timeFreeEnv(t, schema)
	pred, err := ParsePred(`T.leaf in {"l1", "l2"}`, env)
	if err != nil {
		t.Fatal(err)
	}
	sel, ws, err := SelectWeighted(mo, pred, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Len() != 2 {
		t.Fatalf("weighted selection = %d facts", sel.Len())
	}
	res, err := AggregateWeighted(sel, ws, mdm.Granularity{grp}, Availability)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("result = %d facts", res.Len())
	}
	// Expected: 90 * 2/3 + 10 * 1 = 70.
	if got := res.Measure(0, 0); got != 70 {
		t.Errorf("expected value = %v, want 70", got)
	}
	// Weight arity mismatch is rejected.
	if _, err := AggregateWeighted(sel, ws[:1], mdm.Granularity{grp}, Availability); err == nil {
		t.Error("short weights accepted")
	}
}

func timeFreeEnv(t *testing.T, schema *mdm.Schema) *spec.Env {
	t.Helper()
	env, err := spec.NewEnv(schema, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// TestAggregationWithMinMaxMeasures exercises distributivity for MIN and
// MAX default aggregate functions, which the SUM-only paper example does
// not cover.
func TestAggregationWithMinMaxMeasures(t *testing.T) {
	td := mdm.NewDimension("T")
	leaf := td.MustAddCategory("leaf", true)
	grp := td.MustAddCategory("grp", false)
	if err := td.Contains(leaf, grp); err != nil {
		t.Fatal(err)
	}
	td.MustFinalize()
	g1 := td.MustAddValue(grp, "g1", 0, nil)
	g2 := td.MustAddValue(grp, "g2", 0, nil)
	l1 := td.MustAddValue(leaf, "l1", 1, map[mdm.CategoryID]mdm.ValueID{grp: g1})
	l2 := td.MustAddValue(leaf, "l2", 2, map[mdm.CategoryID]mdm.ValueID{grp: g1})
	l3 := td.MustAddValue(leaf, "l3", 3, map[mdm.CategoryID]mdm.ValueID{grp: g2})
	schema, err := mdm.NewSchema("F", []*mdm.Dimension{td}, []mdm.Measure{
		{Name: "lo", Agg: mdm.AggMin},
		{Name: "hi", Agg: mdm.AggMax},
		{Name: "n", Agg: mdm.AggCount},
	})
	if err != nil {
		t.Fatal(err)
	}
	mo := mdm.NewMO(schema)
	for i, v := range []mdm.ValueID{l1, l2, l3} {
		if _, err := mo.AddFact([]mdm.ValueID{v}, []float64{float64(10 - i), float64(i), 99}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Aggregate(mo, mdm.Granularity{grp}, Availability)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("groups = %d", res.Len())
	}
	for f := 0; f < res.Len(); f++ {
		fid := mdm.FactID(f)
		switch res.CellString(fid) {
		case "g1":
			if res.Measure(fid, 0) != 9 { // min(10, 9)
				t.Errorf("g1 min = %v", res.Measure(fid, 0))
			}
			if res.Measure(fid, 1) != 1 { // max(0, 1)
				t.Errorf("g1 max = %v", res.Measure(fid, 1))
			}
			if res.Measure(fid, 2) != 2 { // COUNT ignores the stored 99
				t.Errorf("g1 count = %v", res.Measure(fid, 2))
			}
		case "g2":
			if res.Measure(fid, 0) != 8 || res.Measure(fid, 1) != 2 || res.Measure(fid, 2) != 1 {
				t.Errorf("g2 = %v %v %v", res.Measure(fid, 0), res.Measure(fid, 1), res.Measure(fid, 2))
			}
		default:
			t.Errorf("unexpected cell %q", res.CellString(fid))
		}
	}
	// Two-step TOP roll-up stays distributive for MIN/MAX/COUNT.
	top, err := Aggregate(res, mdm.Granularity{td.Top()}, Availability)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Aggregate(mo, mdm.Granularity{td.Top()}, Availability)
	if err != nil {
		t.Fatal(err)
	}
	if canonAgg(top) != canonAgg(direct) {
		t.Errorf("MIN/MAX/COUNT two-step differs:\n%s\nvs\n%s", canonAgg(top), canonAgg(direct))
	}
}
