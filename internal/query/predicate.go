package query

import (
	"fmt"

	"dimred/internal/caltime"
	"dimred/internal/expr"
	"dimred/internal/mdm"
	"dimred/internal/spec"
)

// qtest is one compiled atomic constraint of a query predicate.
type qtest struct {
	dim     int
	cat     mdm.CategoryID
	isTime  bool
	op      expr.Op
	unit    caltime.Unit
	timeRHS []caltime.Expr
	valRHS  []string
	isTrue  bool // constant-true sentinel
	isFalse bool // constant-false sentinel
}

// Predicate is a selection predicate compiled against a schema for
// evaluation on facts of any granularity, in DNF (negations are pushed
// onto atoms, which is required for the conservative and liberal
// approaches to stay sound under negation).
type Predicate struct {
	env       *spec.Env
	disjuncts [][]qtest
	src       expr.Pred
}

// CompilePred compiles a parsed predicate against the environment.
// Unlike action predicates, query predicates may reference any category
// and are evaluated with the Definition 5 drill-down semantics.
func CompilePred(p expr.Pred, env *spec.Env) (*Predicate, error) {
	d, err := expr.ToDNF(p)
	if err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	out := &Predicate{env: env, src: p}
	for _, dj := range d.Disjuncts {
		tests := make([]qtest, 0, len(dj))
		for _, atom := range dj {
			t, err := compileQueryAtom(atom, env)
			if err != nil {
				return nil, err
			}
			tests = append(tests, t)
		}
		out.disjuncts = append(out.disjuncts, tests)
	}
	return out, nil
}

// ParsePred parses and compiles a concrete-syntax predicate.
func ParsePred(src string, env *spec.Env) (*Predicate, error) {
	p, err := expr.ParsePred(src)
	if err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	return CompilePred(p, env)
}

// MustParsePred panics on error; for constant predicates in tests and
// examples.
func MustParsePred(src string, env *spec.Env) *Predicate {
	p, err := ParsePred(src, env)
	if err != nil {
		panic(err)
	}
	return p
}

func compileQueryAtom(atom expr.Pred, env *spec.Env) (qtest, error) {
	resolve := func(ref expr.CatRef) (int, mdm.CategoryID, error) {
		di := env.Schema.DimIndex(ref.Dim)
		if di < 0 {
			return 0, 0, fmt.Errorf("query: unknown dimension %q", ref.Dim)
		}
		c, ok := env.Schema.Dims[di].CategoryByName(ref.Cat)
		if !ok {
			return 0, 0, fmt.Errorf("query: dimension %s has no category %q", ref.Dim, ref.Cat)
		}
		return di, c, nil
	}
	switch q := atom.(type) {
	case expr.TimeCmp:
		di, c, err := resolve(q.Ref)
		if err != nil {
			return qtest{}, err
		}
		u, err := queryTimeUnit(q.Ref, di, c, env, []caltime.Expr{q.RHS})
		if err != nil {
			return qtest{}, err
		}
		return qtest{dim: di, cat: c, isTime: true, op: q.Op, unit: u, timeRHS: []caltime.Expr{q.RHS}}, nil
	case expr.TimeIn:
		di, c, err := resolve(q.Ref)
		if err != nil {
			return qtest{}, err
		}
		u, err := queryTimeUnit(q.Ref, di, c, env, q.Set)
		if err != nil {
			return qtest{}, err
		}
		op := expr.OpIn
		if q.Negate {
			op = expr.OpNotIn
		}
		return qtest{dim: di, cat: c, isTime: true, op: op, unit: u, timeRHS: q.Set}, nil
	case expr.ValueCmp:
		di, c, err := resolve(q.Ref)
		if err != nil {
			return qtest{}, err
		}
		if di == env.TimeDim {
			return qtest{}, fmt.Errorf("query: time category %s compared against value literal %q", q.Ref, q.RHS)
		}
		if q.Op != expr.OpEQ && q.Op != expr.OpNE && !env.Schema.Dims[di].Category(c).Ordered {
			return qtest{}, fmt.Errorf("query: operator %s is not defined for unordered category %s", q.Op, q.Ref)
		}
		return qtest{dim: di, cat: c, op: q.Op, valRHS: []string{q.RHS}}, nil
	case expr.ValueIn:
		di, c, err := resolve(q.Ref)
		if err != nil {
			return qtest{}, err
		}
		if di == env.TimeDim {
			return qtest{}, fmt.Errorf("query: time category %s tested against value literals", q.Ref)
		}
		op := expr.OpIn
		if q.Negate {
			op = expr.OpNotIn
		}
		return qtest{dim: di, cat: c, op: op, valRHS: q.Set}, nil
	case expr.Bool:
		return qtest{isTrue: q.Value, isFalse: !q.Value, dim: -1}, nil
	}
	return qtest{}, fmt.Errorf("query: unsupported atom %T", atom)
}

func queryTimeUnit(ref expr.CatRef, di int, c mdm.CategoryID, env *spec.Env, exprs []caltime.Expr) (caltime.Unit, error) {
	if di != env.TimeDim {
		return 0, fmt.Errorf("query: time expression constrains non-time dimension %s", ref.Dim)
	}
	u, ok := env.Time.UnitForCategory(c)
	if !ok {
		return 0, fmt.Errorf("query: category %s has no calendar unit", ref)
	}
	for _, e := range exprs {
		if bu, anchored := e.BaseUnit(); anchored && bu != u {
			return 0, fmt.Errorf("query: literal %s has type %s, category %s requires %s", e, bu, ref, u)
		}
	}
	return u, nil
}

// EvaluateFact evaluates the predicate on fact f of mo at query time t
// (binding NOW). It returns the conservative and liberal verdicts and
// the weighted certainty.
func (p *Predicate) EvaluateFact(mo *mdm.MO, f mdm.FactID, t caltime.Day) (cons, lib bool, weight float64) {
	return p.EvaluateCell(cellReader{mo: mo, f: f}, t)
}

// CellReader supplies a fact's direct dimension values; it lets storage
// engines evaluate predicates on their rows without materializing an MO.
type CellReader interface {
	Ref(dim int) mdm.ValueID
}

type cellReader struct {
	mo *mdm.MO
	f  mdm.FactID
}

func (c cellReader) Ref(dim int) mdm.ValueID { return c.mo.Ref(c.f, dim) }

// Cell adapts a plain value slice to a CellReader.
type Cell []mdm.ValueID

// Ref implements CellReader.
func (c Cell) Ref(dim int) mdm.ValueID { return c[dim] }

// EvaluateCell evaluates the predicate on a cell at query time t. For
// evaluation over many facts at the same t, Prepare amortizes the
// right-hand-side resolution.
func (p *Predicate) EvaluateCell(cell CellReader, t caltime.Day) (cons, lib bool, weight float64) {
	return p.Prepare(t).EvaluateCell(cell)
}

// Prepared is a predicate bound to a query time: the right-hand sides of
// every atom are resolved once, so per-fact evaluation only drills the
// fact's own values. A Prepared lazily caches comparand sets and is NOT
// safe for concurrent use — Prepare is cheap, so each goroutine prepares
// its own instance (as the subcube evaluator does).
type Prepared struct {
	p *Predicate
	t caltime.Day
	// rhs[d][i] caches the comparand ordinals of disjunct d's atom i,
	// keyed by the GLB category the comparison lands on (the fact side
	// determines the GLB, so a small per-category map is needed).
	rhs []map[int]map[mdm.CategoryID]ordSet
}

// Prepare binds the predicate to a query time.
func (p *Predicate) Prepare(t caltime.Day) *Prepared {
	pr := &Prepared{p: p, t: t, rhs: make([]map[int]map[mdm.CategoryID]ordSet, len(p.disjuncts))}
	for d := range p.disjuncts {
		pr.rhs[d] = make(map[int]map[mdm.CategoryID]ordSet, len(p.disjuncts[d]))
	}
	return pr
}

// EvaluateCell evaluates the prepared predicate on a cell.
func (pr *Prepared) EvaluateCell(cell CellReader) (cons, lib bool, weight float64) {
	for d, dj := range pr.p.disjuncts {
		c, l, w := pr.evalDisjunct(d, dj, cell)
		cons = cons || c
		lib = lib || l
		if w > weight {
			weight = w
		}
	}
	return cons, lib, weight
}

func (pr *Prepared) evalDisjunct(d int, dj []qtest, cell CellReader) (cons, lib bool, weight float64) {
	cons, lib, weight = true, true, 1
	for i := range dj {
		c, l, w := pr.evalTest(d, i, cell)
		cons = cons && c
		lib = lib && l
		weight *= w
		if !lib {
			return false, false, 0
		}
	}
	return cons, lib, weight
}

func (pr *Prepared) evalTest(d, i int, cell CellReader) (cons, lib bool, weight float64) {
	tst := pr.p.disjuncts[d][i]
	if tst.dim < 0 {
		if tst.isTrue {
			return true, true, 1
		}
		return false, false, 0
	}
	dim := pr.p.env.Schema.Dims[tst.dim]
	v := cell.Ref(tst.dim)

	// Lift the fact's value to the predicate category when possible
	// (f ~> v evaluation); otherwise Definition 5 drills both sides to
	// the GLB category.
	lhs := v
	if a := dim.AncestorAt(v, tst.cat); a != mdm.NoValue {
		lhs = a
	}
	glb := dim.GLB(dim.CategoryOf(lhs), tst.cat)
	ordered := dim.Category(glb).Ordered

	las := drillOrds(dim, lhs, glb, ordered)
	if len(las) == 0 {
		return false, false, 0
	}
	rbs := pr.rhsFor(d, i, tst, dim, glb, ordered)
	if len(rbs) == 0 {
		// Unknown comparands: equality-style tests fail, inequality-style
		// negations hold liberally. Keep it simple and sound: nothing is
		// known to satisfy, nothing might.
		return false, false, 0
	}
	return compareSets(tst.op, las, rbs)
}

// rhsFor returns the cached comparand set of atom (d, i) at GLB category
// glb, resolving it on first use.
func (pr *Prepared) rhsFor(d, i int, tst qtest, dim *mdm.Dimension, glb mdm.CategoryID, ordered bool) ordSet {
	byCat := pr.rhs[d][i]
	if byCat == nil {
		byCat = make(map[mdm.CategoryID]ordSet, 2)
		pr.rhs[d][i] = byCat
	}
	if cached, ok := byCat[glb]; ok {
		return cached
	}
	rbs := pr.p.rhsOrds(tst, dim, glb, ordered, pr.t)
	byCat[glb] = rbs
	return rbs
}

// rhsOrds materializes the right-hand side's drill-down ordinals at the
// GLB category.
func (p *Predicate) rhsOrds(tst qtest, d *mdm.Dimension, glb mdm.CategoryID, ordered bool, t caltime.Day) ordSet {
	var out ordSet
	if tst.isTime {
		glbUnit, ok := p.env.Time.UnitForCategory(glb)
		if !ok {
			return nil
		}
		for _, e := range tst.timeRHS {
			period := e.EvalPeriod(t, tst.unit)
			// Prefer the populated value's drill-down; fall back to the
			// calendar range of the period at the GLB unit.
			if v, okv := d.ValueByName(tst.cat, period.String()); okv {
				out = append(out, drillOrds(d, v, glb, ordered)...)
				continue
			}
			lo := caltime.PeriodOf(period.First(), glbUnit).Index
			hi := caltime.PeriodOf(period.Last(), glbUnit).Index
			for x := lo; x <= hi; x++ {
				out = append(out, x)
			}
		}
	} else {
		for _, name := range tst.valRHS {
			v, ok := d.ValueByName(tst.cat, name)
			if !ok {
				continue
			}
			out = append(out, drillOrds(d, v, glb, ordered)...)
		}
	}
	sortOrds(out)
	// De-duplicate (set members may share drill-down values).
	dedup := out[:0]
	for i, x := range out {
		if i == 0 || x != out[i-1] {
			dedup = append(dedup, x)
		}
	}
	return dedup
}

// String renders the predicate's source form.
func (p *Predicate) String() string { return p.src.String() }

const (
	minDay = caltime.Day(-1 << 60)
	maxDay = caltime.Day(1 << 60)
)

// TimeBounds returns a day-interval hull of the predicate at query time
// t: no fact whose time value lies entirely outside [lo, hi] can satisfy
// the predicate, under any approach. bounded is false when the predicate
// does not constrain time (or some disjunct doesn't). Storage engines
// use this as a zone map to skip partitions.
func (p *Predicate) TimeBounds(t caltime.Day) (lo, hi caltime.Day, bounded bool) {
	if p.env.TimeDim < 0 {
		return 0, 0, false
	}
	lo, hi = maxDay, minDay
	for _, dj := range p.disjuncts {
		dLo, dHi := minDay, maxDay
		constrained := false
		for _, tst := range dj {
			if !tst.isTime {
				continue
			}
			switch tst.op {
			case expr.OpLT:
				period := tst.timeRHS[0].EvalPeriod(t, tst.unit)
				dHi = minD(dHi, period.First()-1)
				constrained = true
			case expr.OpLE:
				period := tst.timeRHS[0].EvalPeriod(t, tst.unit)
				dHi = minD(dHi, period.Last())
				constrained = true
			case expr.OpEQ:
				period := tst.timeRHS[0].EvalPeriod(t, tst.unit)
				dLo = maxD(dLo, period.First())
				dHi = minD(dHi, period.Last())
				constrained = true
			case expr.OpGE:
				period := tst.timeRHS[0].EvalPeriod(t, tst.unit)
				dLo = maxD(dLo, period.First())
				constrained = true
			case expr.OpGT:
				period := tst.timeRHS[0].EvalPeriod(t, tst.unit)
				dLo = maxD(dLo, period.Last()+1)
				constrained = true
			case expr.OpIn:
				inLo, inHi := maxDay, minDay
				for _, e := range tst.timeRHS {
					period := e.EvalPeriod(t, tst.unit)
					inLo = minD(inLo, period.First())
					inHi = maxD(inHi, period.Last())
				}
				dLo = maxD(dLo, inLo)
				dHi = minD(dHi, inHi)
				constrained = true
			default:
				// NE and NotIn exclude a region: no hull contribution.
			}
		}
		if !constrained {
			return 0, 0, false // this disjunct admits any time
		}
		lo = minD(lo, dLo)
		hi = maxD(hi, dHi)
	}
	if len(p.disjuncts) == 0 {
		return 0, 0, false // constant false: callers see an empty result anyway
	}
	return lo, hi, true
}

func minD(a, b caltime.Day) caltime.Day {
	if a < b {
		return a
	}
	return b
}

func maxD(a, b caltime.Day) caltime.Day {
	if a > b {
		return a
	}
	return b
}

// Select is the selection operator σ[p](O) (Eq. 36) under the
// conservative or liberal approach, evaluated at query time t (binding
// NOW in the predicate). The result MO has the same schema and
// dimensions; facts are restricted to those selected. The weighted
// approach is not expressible as a plain fact subset — its result is
// only meaningful together with the per-fact certainty weights — so
// passing Weighted is an error: call SelectWeighted and fold the pair
// with AggregateWeighted instead.
func Select(mo *mdm.MO, p *Predicate, t caltime.Day, approach Approach) (*mdm.MO, error) {
	if approach == Weighted {
		return nil, fmt.Errorf("query: Select: the weighted approach needs per-fact certainty weights; use SelectWeighted with AggregateWeighted")
	}
	out := mdm.NewMO(mo.Schema())
	out.SetFloors(mo.Floors())
	prep := p.Prepare(t)
	for f := 0; f < mo.Len(); f++ {
		fid := mdm.FactID(f)
		cons, lib, _ := prep.EvaluateCell(cellReader{mo: mo, f: fid})
		keep := cons
		if approach == Liberal {
			keep = lib
		}
		if !keep {
			continue
		}
		nf, err := out.AddFactAt(mo.Refs(fid), mo.Measures(fid), mo.BaseCount(fid), mo.Name(fid))
		if err != nil {
			return nil, fmt.Errorf("query: Select: %w", err)
		}
		_ = nf
	}
	return out, nil
}

// SelectWeighted is selection under the weighted approach: facts that
// might satisfy the predicate, each with its certainty weight, aligned
// with the result MO's fact ids.
func SelectWeighted(mo *mdm.MO, p *Predicate, t caltime.Day) (*mdm.MO, []float64, error) {
	out := mdm.NewMO(mo.Schema())
	out.SetFloors(mo.Floors())
	var weights []float64
	prep := p.Prepare(t)
	for f := 0; f < mo.Len(); f++ {
		fid := mdm.FactID(f)
		_, lib, w := prep.EvaluateCell(cellReader{mo: mo, f: fid})
		if !lib || w <= 0 {
			continue
		}
		if _, err := out.AddFactAt(mo.Refs(fid), mo.Measures(fid), mo.BaseCount(fid), mo.Name(fid)); err != nil {
			return nil, nil, fmt.Errorf("query: SelectWeighted: %w", err)
		}
		weights = append(weights, w)
	}
	return out, weights, nil
}
