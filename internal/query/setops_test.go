package query

import (
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/mdm"
)

func TestUnionAndDifference(t *testing.T) {
	_, env, red := reducedPaperMO(t)
	schema := env.Schema
	at := day(t, "2000/11/5")

	// Split the reduced MO by domain group and reunite it.
	com, err := Select(red, MustParsePred(`URL.domain_grp = ".com"`, env), at, Conservative)
	if err != nil {
		t.Fatal(err)
	}
	edu, err := Select(red, MustParsePred(`URL.domain_grp = ".edu"`, env), at, Conservative)
	if err != nil {
		t.Fatal(err)
	}
	if com.Len()+edu.Len() != red.Len() {
		t.Fatalf("partition sizes %d + %d != %d", com.Len(), edu.Len(), red.Len())
	}
	u, err := Union(com, edu)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != red.Len() {
		t.Errorf("union size = %d, want %d", u.Len(), red.Len())
	}
	for j := range schema.Measures {
		if u.TotalMeasure(j) != red.TotalMeasure(j) {
			t.Errorf("union measure %d total = %v, want %v", j, u.TotalMeasure(j), red.TotalMeasure(j))
		}
	}

	// Overlapping union merges same-cell facts by the default functions.
	u2, err := Union(com, com)
	if err != nil {
		t.Fatal(err)
	}
	if u2.Len() != com.Len() {
		t.Errorf("self-union size = %d, want %d", u2.Len(), com.Len())
	}
	if got, want := u2.TotalMeasure(1), 2*com.TotalMeasure(1); got != want {
		t.Errorf("self-union dwell = %v, want %v", got, want)
	}

	// Difference removes cells present in the subtrahend.
	d, err := Difference(red, com)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != edu.Len() {
		t.Errorf("difference size = %d, want %d", d.Len(), edu.Len())
	}
	// A \ A = empty; A \ empty = A.
	empty, err := Difference(red, red)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Error("A \\ A not empty")
	}
	same, err := Difference(red, mdm.NewMO(schema))
	if err != nil {
		t.Fatal(err)
	}
	if same.Len() != red.Len() {
		t.Error("A \\ {} changed")
	}

	// Mixed schemas are rejected.
	other := mdm.NewMO(mustOtherSchema(t))
	if _, err := Union(red, other); err == nil {
		t.Error("cross-schema union accepted")
	}
	if _, err := Difference(red, other); err == nil {
		t.Error("cross-schema difference accepted")
	}
	_ = caltime.Day(0)
}

func mustOtherSchema(t *testing.T) *mdm.Schema {
	t.Helper()
	d := mdm.NewDimension("X")
	d.MustAddCategory("leaf", false)
	d.MustFinalize()
	s, err := mdm.NewSchema("F", []*mdm.Dimension{d}, []mdm.Measure{{Name: "m", Agg: mdm.AggSum}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}
