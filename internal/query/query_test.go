package query

import (
	"strings"
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/core"
	"dimred/internal/dims"
	"dimred/internal/mdm"
	"dimred/internal/spec"
)

const (
	srcA1 = `aggregate [Time.month, URL.domain] where URL.domain_grp = ".com" and NOW - 12 months < Time.month and Time.month <= NOW - 6 months`
	srcA2 = `aggregate [Time.quarter, URL.domain] where URL.domain_grp = ".com" and Time.quarter <= NOW - 4 quarters`
)

// reducedPaperMO returns the paper's MO reduced at 2000/11/5 (Figure 3,
// third snapshot: fact_03, fact_12, fact_45, fact_6) plus the env.
func reducedPaperMO(t *testing.T) (*dims.PaperObject, *spec.Env, *mdm.MO) {
	t.Helper()
	p := dims.MustPaperMO()
	env, err := spec.NewEnv(p.Schema, "Time", p.Time)
	if err != nil {
		t.Fatal(err)
	}
	s, err := spec.New(env,
		spec.MustCompileString("a1", srcA1, env),
		spec.MustCompileString("a2", srcA2, env))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Reduce(s, p.MO, day(t, "2000/11/5"))
	if err != nil {
		t.Fatal(err)
	}
	return p, env, res.MO
}

func day(t *testing.T, s string) caltime.Day {
	t.Helper()
	d, err := caltime.ParseDay(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func factNames(mo *mdm.MO) []string {
	var out []string
	for f := 0; f < mo.Len(); f++ {
		out = append(out, mo.Name(mdm.FactID(f)))
	}
	return out
}

func hasFact(mo *mdm.MO, name string) bool {
	for f := 0; f < mo.Len(); f++ {
		if mo.Name(mdm.FactID(f)) == name {
			return true
		}
	}
	return false
}

// --- Definition 5 comparison semantics (Section 6.1 worked examples) ---

// comparePaperValues compares two time values of the reduced MO's Time
// dimension under Definition 5 by compiling a tiny predicate.
func evalCompare(t *testing.T, env *spec.Env, mo *mdm.MO, factName, predSrc string, at string) (bool, bool, float64) {
	t.Helper()
	p := MustParsePred(predSrc, env)
	for f := 0; f < mo.Len(); f++ {
		if mo.Name(mdm.FactID(f)) == factName {
			return p.EvaluateFact(mo, mdm.FactID(f), day(t, at))
		}
	}
	t.Fatalf("no fact %q", factName)
	return false, false, 0
}

func TestDef5StrictLess(t *testing.T) {
	// Paper: "1999Q4 < 1999W48" evaluates FALSE (1999/12/31 is not
	// before 1999/12/4); "1999Q4 < 2000W1" evaluates TRUE with the
	// populated days (the example dimension's 2000W1 contains only
	// 2000/1/4).
	_, env, red := reducedPaperMO(t)
	cons, _, _ := evalCompare(t, env, red, "fact_03", `Time.week < 1999W48`, "2000/11/5")
	if cons {
		t.Error("1999Q4 < 1999W48 should be FALSE")
	}
	cons, _, _ = evalCompare(t, env, red, "fact_03", `Time.week < 2000W1`, "2000/11/5")
	if !cons {
		t.Error("1999Q4 < 2000W1 should be TRUE")
	}
}

func TestDef5InSet(t *testing.T) {
	// Paper: 1999Q4 in {1999W39..2000W1} is TRUE; in {1999W39..1999W51}
	// is FALSE (1999/12/31 lies in 1999W52).
	_, env, red := reducedPaperMO(t)
	wide := `Time.week in {1999W47, 1999W48, 1999W52, 2000W1}`
	cons, _, _ := evalCompare(t, env, red, "fact_03", wide, "2000/11/5")
	if !cons {
		t.Error("1999Q4 in {..2000W1} should be TRUE")
	}
	narrow := `Time.week in {1999W47, 1999W48, 1999W51}`
	cons, lib, w := evalCompare(t, env, red, "fact_03", narrow, "2000/11/5")
	if cons {
		t.Error("1999Q4 in {..1999W51} should be FALSE")
	}
	// Liberally it might satisfy (two of three days match).
	if !lib {
		t.Error("liberal approach should keep the fact")
	}
	if w <= 0.5 || w >= 1 {
		t.Errorf("weight = %v, want 2/3", w)
	}
}

func TestSelectionQ1Q2Q3(t *testing.T) {
	// Section 6.1 queries on the reduced MO at 2000/11/5.
	_, env, red := reducedPaperMO(t)
	at := "2000/11/5"

	// Q1: quarter <= 1999Q3 — unaffected by reduction; no fact matches.
	q1, err := Select(red, MustParsePred(`Time.quarter <= 1999Q3`, env), day(t, at), Conservative)
	if err != nil {
		t.Fatal(err)
	}
	if q1.Len() != 0 {
		t.Errorf("Q1 = %v", factNames(q1))
	}
	// quarter <= 1999Q4 selects the two quarter-level facts.
	q1b, err := Select(red, MustParsePred(`Time.quarter <= 1999Q4`, env), day(t, at), Conservative)
	if err != nil {
		t.Fatal(err)
	}
	if q1b.Len() != 2 || !hasFact(q1b, "fact_03") || !hasFact(q1b, "fact_12") {
		t.Errorf("quarter <= 1999Q4 = %v", factNames(q1b))
	}

	// Q2: month <= 1999/10 — the quarter facts only partly satisfy;
	// conservative excludes them.
	q2, err := Select(red, MustParsePred(`Time.month <= 1999/10`, env), day(t, at), Conservative)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Len() != 0 {
		t.Errorf("Q2 = %v", factNames(q2))
	}

	// Q3: week <= 1999W48 — requires drilling down to days; the quarter
	// facts include 1999/12/31 > 1999/12/4, so nothing qualifies.
	q3, err := Select(red, MustParsePred(`Time.week <= 1999W48`, env), day(t, at), Conservative)
	if err != nil {
		t.Fatal(err)
	}
	if q3.Len() != 0 {
		t.Errorf("Q3 = %v", factNames(q3))
	}
	// Liberal Q3 keeps the quarter facts (they might satisfy).
	q3lib, err := Select(red, MustParsePred(`Time.week <= 1999W48`, env), day(t, at), Liberal)
	if err != nil {
		t.Fatal(err)
	}
	if !hasFact(q3lib, "fact_03") || !hasFact(q3lib, "fact_12") {
		t.Errorf("liberal Q3 = %v", factNames(q3lib))
	}
}

func TestSelectionOnValueDimension(t *testing.T) {
	_, env, red := reducedPaperMO(t)
	at := day(t, "2000/11/5")
	sel, err := Select(red, MustParsePred(`URL.domain = "cnn.com"`, env), at, Conservative)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Len() != 2 || !hasFact(sel, "fact_12") || !hasFact(sel, "fact_45") {
		t.Errorf("domain = cnn.com -> %v", factNames(sel))
	}
	// domain_grp works on facts at domain granularity via ancestors.
	sel, err = Select(red, MustParsePred(`URL.domain_grp = ".edu"`, env), at, Conservative)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Len() != 1 || !hasFact(sel, "fact_6") {
		t.Errorf(".edu -> %v", factNames(sel))
	}
	// Selecting on url: domain-level facts cannot be known to match one
	// url (cnn.com has two populated urls) — conservative excludes,
	// liberal includes.
	selC, err := Select(red, MustParsePred(`URL.url = "http://www.cnn.com/health"`, env), at, Conservative)
	if err != nil {
		t.Fatal(err)
	}
	if selC.Len() != 0 {
		t.Errorf("conservative url select = %v", factNames(selC))
	}
	selL, err := Select(red, MustParsePred(`URL.url = "http://www.cnn.com/health"`, env), at, Liberal)
	if err != nil {
		t.Fatal(err)
	}
	if !hasFact(selL, "fact_12") || !hasFact(selL, "fact_45") {
		t.Errorf("liberal url select = %v", factNames(selL))
	}
	// Weighted attaches 1/2 to each cnn.com fact.
	selW, ws, err := SelectWeighted(red, MustParsePred(`URL.url = "http://www.cnn.com/health"`, env), at)
	if err != nil {
		t.Fatal(err)
	}
	if selW.Len() != 2 {
		t.Fatalf("weighted select = %v", factNames(selW))
	}
	for i, w := range ws {
		if w != 0.5 {
			t.Errorf("weight[%d] = %v, want 0.5", i, w)
		}
	}
	// Unknown value: conservative and liberal both empty.
	selU, err := Select(red, MustParsePred(`URL.domain = "nosuch.org"`, env), at, Liberal)
	if err != nil {
		t.Fatal(err)
	}
	if selU.Len() != 0 {
		t.Errorf("unknown value select = %v", factNames(selU))
	}
}

func TestSelectionTrueFalse(t *testing.T) {
	_, env, red := reducedPaperMO(t)
	at := day(t, "2000/11/5")
	all, err := Select(red, MustParsePred(`true`, env), at, Conservative)
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != red.Len() {
		t.Error("true should select everything")
	}
	none, err := Select(red, MustParsePred(`false`, env), at, Liberal)
	if err != nil {
		t.Fatal(err)
	}
	if none.Len() != 0 {
		t.Error("false should select nothing")
	}
}

func TestConservativeSubsetOfLiberal(t *testing.T) {
	// Property: for every predicate, conservative selection returns a
	// subset of liberal selection.
	_, env, red := reducedPaperMO(t)
	at := day(t, "2000/11/5")
	preds := []string{
		`Time.month <= 1999/12`,
		`Time.week < 2000W1`,
		`Time.day >= 2000/1/4`,
		`URL.domain = "cnn.com" and Time.quarter <= 2000Q1`,
		`URL.url != "http://www.cnn.com/"`,
		`Time.quarter in {1999Q4}`,
		`URL.domain not in {"cnn.com"}`,
		`Time.year = 1999 or URL.domain_grp = ".edu"`,
	}
	for _, src := range preds {
		p := MustParsePred(src, env)
		consSet := make(map[string]bool)
		cmo, err := Select(red, p, at, Conservative)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range factNames(cmo) {
			consSet[n] = true
		}
		lmo, err := Select(red, p, at, Liberal)
		if err != nil {
			t.Fatal(err)
		}
		libSet := make(map[string]bool)
		for _, n := range factNames(lmo) {
			libSet[n] = true
		}
		for n := range consSet {
			if !libSet[n] {
				t.Errorf("%s: conservative fact %s missing from liberal", src, n)
			}
		}
		// Weighted: weight 1 iff conservative (for these DNF predicates).
		wmo, ws, err := SelectWeighted(red, p, at)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < wmo.Len(); i++ {
			n := wmo.Name(mdm.FactID(i))
			if consSet[n] && ws[i] < 1 {
				t.Errorf("%s: conservative fact %s has weight %v", src, n, ws[i])
			}
			if !libSet[n] {
				t.Errorf("%s: weighted fact %s missing from liberal", src, n)
			}
		}
	}
}

func TestCompileErrors(t *testing.T) {
	_, env, _ := reducedPaperMO(t)
	bad := []string{
		`Shop.name = "x"`,
		`Time.fortnight <= 1999/12`,
		`URL.domain < "a"`,
		`Time.month = "1999/12"`,
		`URL.domain <= 1999/12`,
		`Time.month <= 1999Q4`,
	}
	for _, src := range bad {
		if _, err := ParsePred(src, env); err == nil {
			t.Errorf("ParsePred(%q) succeeded", src)
		}
	}
}

// --- Projection (Figure 4) ---

func TestProjectionFigure4(t *testing.T) {
	_, _, red := reducedPaperMO(t)
	proj, err := Project(red, []string{"URL"}, []string{"Number_of", "Dwell_time"})
	if err != nil {
		t.Fatal(err)
	}
	if proj.Len() != 4 {
		t.Fatalf("projection has %d facts, want 4", proj.Len())
	}
	if proj.Schema().NumDims() != 1 || len(proj.Schema().Measures) != 2 {
		t.Error("projection schema wrong")
	}
	// Figure 4's facts: fact_03 -> amazon.com (2, 689); fact_12 ->
	// cnn.com (2, 2489); fact_45 -> cnn.com (2, 955); fact_6 ->
	// gatech.edu (1, 32). Duplicated cnn.com cells are retained.
	want := map[string][2]float64{
		"fact_03": {2, 689},
		"fact_12": {2, 2489},
		"fact_45": {2, 955},
		"fact_6":  {1, 32},
	}
	cnn := 0
	for f := 0; f < proj.Len(); f++ {
		fid := mdm.FactID(f)
		m, ok := want[proj.Name(fid)]
		if !ok {
			t.Fatalf("unexpected fact %s", proj.Name(fid))
		}
		if proj.Measure(fid, 0) != m[0] || proj.Measure(fid, 1) != m[1] {
			t.Errorf("%s measures = %v, %v", proj.Name(fid), proj.Measure(fid, 0), proj.Measure(fid, 1))
		}
		if proj.CellString(fid) == "cnn.com" {
			cnn++
		}
	}
	if cnn != 2 {
		t.Errorf("cnn.com duplicates = %d, want 2", cnn)
	}
	// Unknown names fail.
	if _, err := Project(red, []string{"Nope"}, nil); err == nil {
		t.Error("unknown dimension accepted")
	}
	if _, err := Project(red, []string{"URL"}, []string{"Nope"}); err == nil {
		t.Error("unknown measure accepted")
	}
}

// --- Aggregate formation (Figure 5, Section 6.3) ---

func granOf(t *testing.T, env *spec.Env, refs ...string) mdm.Granularity {
	t.Helper()
	g, err := env.Schema.ParseGranularity(refs)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGroupHighExamples(t *testing.T) {
	// Section 6.3's Group_high examples on the reduced MO at 2000/11/5.
	p, env, red := reducedPaperMO(t)
	target := granOf(t, env, "Time.month", "URL.domain")

	q4, _ := p.Time.PeriodValue(mustPeriod(t, "1999Q4"))
	y1999, _ := p.Time.PeriodValue(mustPeriod(t, "1999"))
	m200001, _ := p.Time.PeriodValue(mustPeriod(t, "2000/1"))
	amazon, _ := p.URL.ValueByName(p.URL.Domain, "amazon.com")
	gatech, _ := p.URL.ValueByName(p.URL.Domain, "gatech.edu")

	g1 := GroupHigh(red, []mdm.ValueID{q4, amazon}, target)
	if len(g1) != 1 || red.Name(g1[0]) != "fact_03" {
		t.Errorf("Group_high((1999Q4, amazon.com)) = %v", g1)
	}
	g2 := GroupHigh(red, []mdm.ValueID{y1999, amazon}, target)
	if len(g2) != 0 {
		t.Errorf("Group_high((1999, amazon.com)) = %v, want empty", g2)
	}
	g3 := GroupHigh(red, []mdm.ValueID{m200001, gatech}, target)
	if len(g3) != 1 || red.Name(g3[0]) != "fact_6" {
		t.Errorf("Group_high((2000/1, gatech.edu)) = %v", g3)
	}
}

func mustPeriod(t *testing.T, s string) caltime.Period {
	t.Helper()
	p, err := caltime.ParsePeriod(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAggregateQ5Figure5(t *testing.T) {
	// Q5 = α[Time.month, URL.domain] under availability: fact_03 and
	// fact_12 stay at quarter granularity, fact_45 stays at month,
	// fact_6 aggregates to (2000/1, gatech.edu).
	_, env, red := reducedPaperMO(t)
	res, err := Aggregate(red, granOf(t, env, "Time.month", "URL.domain"), Availability)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Fatalf("Q5 has %d facts, want 4:\n%s", res.Len(), res.Dump())
	}
	want := map[string]string{
		"fact_03": "1999Q4, amazon.com",
		"fact_12": "1999Q4, cnn.com",
		"fact_45": "2000/1, cnn.com",
		"fact_6":  "2000/1, gatech.edu",
	}
	for f := 0; f < res.Len(); f++ {
		fid := mdm.FactID(f)
		if cell, ok := want[res.Name(fid)]; !ok || res.CellString(fid) != cell {
			t.Errorf("%s -> %q, want %q", res.Name(fid), res.CellString(fid), cell)
		}
	}
	// Figure 5's measures for fact_6 at month level: (1, 32, 1, 12k).
	for f := 0; f < res.Len(); f++ {
		fid := mdm.FactID(f)
		if res.Name(fid) == "fact_6" && res.Measure(fid, 1) != 32 {
			t.Errorf("fact_6 dwell = %v", res.Measure(fid, 1))
		}
	}
}

func TestAggregateQ4YearDomain(t *testing.T) {
	// Q4 = α[Time.year, URL.domain]: every fact reaches the requested
	// granularity; the 1999 cnn/amazon facts stay separate by domain.
	_, env, red := reducedPaperMO(t)
	res, err := Aggregate(red, granOf(t, env, "Time.year", "URL.domain"), Availability)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Fatalf("Q4 has %d facts, want 4:\n%s", res.Len(), res.Dump())
	}
	for f := 0; f < res.Len(); f++ {
		g := res.Gran(mdm.FactID(f))
		if got := env.Schema.GranString(g); got != "(Time.year, URL.domain)" {
			t.Errorf("Q4 fact granularity = %s", got)
		}
	}
}

func TestAggregateStrictVsAvailability(t *testing.T) {
	_, env, red := reducedPaperMO(t)
	target := granOf(t, env, "Time.month", "URL.domain")
	strict, err := Aggregate(red, target, Strict)
	if err != nil {
		t.Fatal(err)
	}
	// Strict drops fact_03 and fact_12 (quarter > month).
	if strict.Len() != 2 || hasFact(strict, "fact_03") || hasFact(strict, "fact_12") {
		t.Errorf("strict = %v", factNames(strict))
	}
}

func TestAggregateLUB(t *testing.T) {
	// LUB raises the requested (month, domain) to the finest common
	// granularity (quarter, domain), giving a single-granularity answer.
	_, env, red := reducedPaperMO(t)
	res, err := Aggregate(red, granOf(t, env, "Time.month", "URL.domain"), LUB)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < res.Len(); f++ {
		if got := env.Schema.GranString(res.Gran(mdm.FactID(f))); got != "(Time.quarter, URL.domain)" {
			t.Errorf("LUB granularity = %s", got)
		}
	}
	// fact_45 and fact_6 move to quarter: (2000Q1, cnn.com) and
	// (2000Q1, gatech.edu); 3 result facts in total... fact_03 and
	// fact_12 differ by domain, so 4.
	if res.Len() != 4 {
		t.Errorf("LUB facts = %v", factNames(res))
	}
}

func TestAggregateDisaggregated(t *testing.T) {
	// Disaggregating the quarter facts to month splits SUM measures
	// evenly over the populated months of 1999Q4 (1999/11, 1999/12).
	_, env, red := reducedPaperMO(t)
	res, err := Aggregate(red, granOf(t, env, "Time.month", "URL.domain"), Disaggregated)
	if err != nil {
		t.Fatal(err)
	}
	// All facts at (month, domain).
	total := 0.0
	for f := 0; f < res.Len(); f++ {
		fid := mdm.FactID(f)
		if got := env.Schema.GranString(res.Gran(fid)); got != "(Time.month, URL.domain)" {
			t.Errorf("disaggregated granularity = %s", got)
		}
		total += res.Measure(fid, 1)
	}
	// SUM totals are preserved by even splitting.
	if want := red.TotalMeasure(1); total != want {
		t.Errorf("dwell total = %v, want %v", total, want)
	}
	// fact_03's 689 dwell splits 344.5 + 344.5 across two months.
	found := false
	for f := 0; f < res.Len(); f++ {
		fid := mdm.FactID(f)
		if strings.Contains(res.CellString(fid), "1999/11, amazon.com") {
			found = true
			if res.Measure(fid, 1) != 344.5 {
				t.Errorf("split dwell = %v, want 344.5", res.Measure(fid, 1))
			}
		}
	}
	if !found {
		t.Errorf("no disaggregated amazon fact:\n%s", res.Dump())
	}
}

func TestAggregatePreservesSumTotals(t *testing.T) {
	_, env, red := reducedPaperMO(t)
	targets := [][]string{
		{"Time.month", "URL.domain"},
		{"Time.year", "URL.domain_grp"},
		{"Time.quarter", "URL.TOP"},
		{"Time.TOP", "URL.TOP"},
	}
	for _, refs := range targets {
		res, err := Aggregate(red, granOf(t, env, refs...), Availability)
		if err != nil {
			t.Fatal(err)
		}
		for j := range env.Schema.Measures {
			if got, want := res.TotalMeasure(j), red.TotalMeasure(j); got != want {
				t.Errorf("α%v measure %d total = %v, want %v", refs, j, got, want)
			}
		}
	}
}

func TestAggregateTopIsGrandTotal(t *testing.T) {
	_, env, red := reducedPaperMO(t)
	res, err := Aggregate(red, granOf(t, env, "Time.TOP", "URL.TOP"), Availability)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("grand total has %d facts", res.Len())
	}
	// Total clicks = 7, total dwell = 4165.
	if res.Measure(0, 0) != 7 || res.Measure(0, 1) != 4165 {
		t.Errorf("grand totals = %v, %v", res.Measure(0, 0), res.Measure(0, 1))
	}
}

func TestAggregateErrors(t *testing.T) {
	_, env, red := reducedPaperMO(t)
	if _, err := Aggregate(red, mdm.Granularity{0}, Availability); err == nil {
		t.Error("short granularity accepted")
	}
	if _, err := Aggregate(red, granOf(t, env, "Time.month", "URL.domain"), AggApproach(99)); err == nil {
		t.Error("unknown approach accepted")
	}
}

func TestApproachStrings(t *testing.T) {
	if Conservative.String() != "conservative" || Weighted.String() != "weighted" {
		t.Error("Approach names")
	}
	if Availability.String() != "availability" || Disaggregated.String() != "disaggregated" {
		t.Error("AggApproach names")
	}
}
