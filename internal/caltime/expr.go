package caltime

import "strings"

// Expr is a time expression from the specification grammar (Table 1):
//
//	tt ::= tt - tt | tt + tt | (tt) | t | s
//
// where t is an anchored time value or the variable NOW and s is a span.
// After parsing, every expression normalizes to one base (an anchored
// period or NOW) adjusted by a sequence of signed spans, e.g.
// "NOW - 12 months" or "1999/12 + 2 quarters".
type Expr struct {
	Now    bool   // base is the NOW variable
	Anchor Period // base period, when !Now
	Spans  []Span // signed adjustments, applied left to right
}

// NowExpr returns the expression "NOW" adjusted by the given spans.
func NowExpr(spans ...Span) Expr { return Expr{Now: true, Spans: spans} }

// AnchorExpr returns the expression for an anchored period adjusted by the
// given spans.
func AnchorExpr(p Period, spans ...Span) Expr { return Expr{Anchor: p, Spans: spans} }

// Minus returns e adjusted backwards by span s.
func (e Expr) Minus(s Span) Expr {
	spans := append(append([]Span(nil), e.Spans...), Span{-s.N, s.Unit})
	return Expr{Now: e.Now, Anchor: e.Anchor, Spans: spans}
}

// Plus returns e adjusted forwards by span s.
func (e Expr) Plus(s Span) Expr {
	spans := append(append([]Span(nil), e.Spans...), s)
	return Expr{Now: e.Now, Anchor: e.Anchor, Spans: spans}
}

// IsNowRelative reports whether the expression depends on NOW.
func (e Expr) IsNowRelative() bool { return e.Now }

// EvalDay resolves the expression to a day: the base day (NOW bound to
// now, or the first day of the anchor period) shifted by the spans.
func (e Expr) EvalDay(now Day) Day {
	d := now
	if !e.Now {
		d = e.Anchor.First()
	}
	for _, s := range e.Spans {
		d = AddSpan(d, s)
	}
	return d
}

// EvalPeriod resolves the expression at unit u, binding NOW to now. This
// matches the paper's worked examples: at now = 2000/11/5, the expression
// "NOW - 4 quarters" at unit quarter is 1999Q4 ("2000Q4 - 4").
func (e Expr) EvalPeriod(now Day, u Unit) Period {
	return PeriodOf(e.EvalDay(now), u)
}

// BaseUnit returns the unit of the anchored base and true, or (0, false)
// for NOW-relative expressions (whose unit is the comparison category's).
func (e Expr) BaseUnit() (Unit, bool) {
	if e.Now {
		return 0, false
	}
	return e.Anchor.Unit, true
}

// MaxOffsetDays bounds, in days, how far the expression's value can lie
// from its base. The soundness decision procedure uses it to size the
// time horizon it iterates over.
func (e Expr) MaxOffsetDays() int64 {
	var total int64
	for _, s := range e.Spans {
		total += s.MaxSpanDays()
	}
	return total
}

// String renders the expression in the paper's notation, e.g.
// "NOW - 6 months".
func (e Expr) String() string {
	var b strings.Builder
	if e.Now {
		b.WriteString("NOW")
	} else {
		b.WriteString(e.Anchor.String())
	}
	for _, s := range e.Spans {
		if s.N < 0 {
			b.WriteString(" - ")
			b.WriteString(Span{-s.N, s.Unit}.String())
		} else {
			b.WriteString(" + ")
			b.WriteString(s.String())
		}
	}
	return b.String()
}
