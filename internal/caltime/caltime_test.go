package caltime

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestDateRoundTrip(t *testing.T) {
	cases := []struct {
		y, m, d int
	}{
		{1970, 1, 1}, {1969, 12, 31}, {2000, 2, 29}, {1900, 2, 28},
		{1999, 11, 23}, {1999, 12, 4}, {1999, 12, 31}, {2000, 1, 4},
		{2000, 1, 20}, {1600, 1, 1}, {2400, 12, 31}, {1, 1, 1},
	}
	for _, c := range cases {
		d := Date(c.y, c.m, c.d)
		y, m, dd := d.Civil()
		if y != c.y || m != c.m || dd != c.d {
			t.Errorf("Date(%d,%d,%d) round-trips to (%d,%d,%d)", c.y, c.m, c.d, y, m, dd)
		}
	}
}

func TestDateEpoch(t *testing.T) {
	if d := Date(1970, 1, 1); d != 0 {
		t.Fatalf("epoch = %d, want 0", d)
	}
	if d := Date(1970, 1, 2); d != 1 {
		t.Fatalf("epoch+1 = %d, want 1", d)
	}
	if d := Date(1969, 12, 31); d != -1 {
		t.Fatalf("epoch-1 = %d, want -1", d)
	}
}

func TestDateAgainstStdlib(t *testing.T) {
	// Cross-check a sample of dates against the standard library.
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		y := 1800 + r.Intn(500)
		m := 1 + r.Intn(12)
		d := 1 + r.Intn(28)
		got := Date(y, m, d)
		want := time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC).Unix() / 86400
		if int64(got) != want {
			t.Fatalf("Date(%d,%d,%d) = %d, stdlib says %d", y, m, d, got, want)
		}
	}
}

func TestWeekday(t *testing.T) {
	// 1970-01-01 was a Thursday.
	if wd := Date(1970, 1, 1).Weekday(); wd != 4 {
		t.Errorf("1970/1/1 weekday = %d, want 4", wd)
	}
	// 1999-12-04 was a Saturday.
	if wd := Date(1999, 12, 4).Weekday(); wd != 6 {
		t.Errorf("1999/12/4 weekday = %d, want 6", wd)
	}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		d := Day(r.Int63n(200000) - 50000)
		y, m, dd := d.Civil()
		want := int(time.Date(y, time.Month(m), dd, 0, 0, 0, 0, time.UTC).Weekday())
		if want == 0 {
			want = 7
		}
		if got := d.Weekday(); got != want {
			t.Fatalf("Weekday(%v) = %d, want %d", d, got, want)
		}
	}
}

func TestISOWeek(t *testing.T) {
	cases := []struct {
		y, m, d int
		wy, ww  int
	}{
		{1999, 11, 23, 1999, 47},
		{1999, 12, 4, 1999, 48},
		{1999, 12, 31, 1999, 52},
		{2000, 1, 4, 2000, 1},
		{2000, 1, 20, 2000, 3},
		{2005, 1, 1, 2004, 53}, // Saturday of ISO week 2004-W53
		{2007, 12, 31, 2008, 1},
	}
	for _, c := range cases {
		wy, ww := Date(c.y, c.m, c.d).ISOWeek()
		if wy != c.wy || ww != c.ww {
			t.Errorf("ISOWeek(%d/%d/%d) = %dW%d, want %dW%d", c.y, c.m, c.d, wy, ww, c.wy, c.ww)
		}
	}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		d := Day(r.Int63n(100000) - 20000)
		y, m, dd := d.Civil()
		wy, ww := time.Date(y, time.Month(m), dd, 0, 0, 0, 0, time.UTC).ISOWeek()
		gy, gw := d.ISOWeek()
		if gy != wy || gw != ww {
			t.Fatalf("ISOWeek(%v) = %dW%d, stdlib says %dW%d", d, gy, gw, wy, ww)
		}
	}
}

func TestParseDay(t *testing.T) {
	d, err := ParseDay("1999/12/4")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.String(); got != "1999/12/4" {
		t.Errorf("String = %q", got)
	}
	for _, bad := range []string{"1999/2/30", "1999/13/1", "1999/0/1", "x/y/z", "1999/12", "", "-4/1/1", "100000000000000000/1/1"} {
		if _, err := ParseDay(bad); err == nil {
			t.Errorf("ParseDay(%q) succeeded, want error", bad)
		}
	}
}

func TestPeriodOfAndBounds(t *testing.T) {
	d := Date(1999, 12, 4)
	cases := []struct {
		u           Unit
		str         string
		first, last Day
	}{
		{UnitDay, "1999/12/4", d, d},
		{UnitWeek, "1999W48", Date(1999, 11, 29), Date(1999, 12, 5)},
		{UnitMonth, "1999/12", Date(1999, 12, 1), Date(1999, 12, 31)},
		{UnitQuarter, "1999Q4", Date(1999, 10, 1), Date(1999, 12, 31)},
		{UnitYear, "1999", Date(1999, 1, 1), Date(1999, 12, 31)},
	}
	for _, c := range cases {
		p := PeriodOf(d, c.u)
		if p.String() != c.str {
			t.Errorf("PeriodOf(%v, %v) = %q, want %q", d, c.u, p.String(), c.str)
		}
		if p.First() != c.first {
			t.Errorf("%v First = %v, want %v", p, p.First(), c.first)
		}
		if p.Last() != c.last {
			t.Errorf("%v Last = %v, want %v", p, p.Last(), c.last)
		}
		if !p.Contains(d) {
			t.Errorf("%v does not contain %v", p, d)
		}
	}
}

func TestPeriodStringParseRoundTrip(t *testing.T) {
	for _, s := range []string{"1999/12/4", "1999W48", "2000W1", "1999/12", "1999Q4", "2000Q1", "1999", "2005W52"} {
		p, err := ParsePeriod(s)
		if err != nil {
			t.Fatalf("ParsePeriod(%q): %v", s, err)
		}
		if got := p.String(); got != s {
			t.Errorf("ParsePeriod(%q).String() = %q", s, got)
		}
	}
	// Years outside [MinYear, MaxYear] must be rejected in every literal
	// form: an unbounded year overflows the period index encodings and
	// renders as a negative literal that cannot re-parse.
	for _, bad := range []string{
		"1999W54", "1999Q5", "1999/13", "abc", "1999/2/30", "W48",
		"100000000000000000/1", "100000000000000000/1/1", "100000000000000000",
		"100000000000000000Q1", "100000000000000000W1", "-1/1", "-1", "-1Q1",
	} {
		if _, err := ParsePeriod(bad); err == nil {
			t.Errorf("ParsePeriod(%q) succeeded, want error", bad)
		}
	}
}

func TestPeriodContiguity(t *testing.T) {
	// Property: for every unit, periods tile the day line with no gaps.
	f := func(raw int32, unitRaw uint8) bool {
		d := Day(int64(raw) % 300000)
		u := Unit(unitRaw % 5)
		p := PeriodOf(d, u)
		if !p.Contains(d) {
			return false
		}
		if p.First() > d || p.Last() < d {
			return false
		}
		next := Period{u, p.Index + 1}
		return next.First() == p.Last()+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestPeriodMonotone(t *testing.T) {
	// Property: PeriodOf is monotone in the day for every unit.
	f := func(raw int32, delta uint16, unitRaw uint8) bool {
		d1 := Day(int64(raw) % 300000)
		d2 := d1 + Day(delta)
		u := Unit(unitRaw % 5)
		return PeriodOf(d1, u).Index <= PeriodOf(d2, u).Index
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestAddSpan(t *testing.T) {
	cases := []struct {
		d    string
		s    Span
		want string
	}{
		{"2000/11/5", Span{-6, UnitMonth}, "2000/5/5"},
		{"2000/11/5", Span{-4, UnitQuarter}, "1999/11/5"},
		{"2000/11/5", Span{-12, UnitMonth}, "1999/11/5"},
		{"1999/1/31", Span{1, UnitMonth}, "1999/2/28"},
		{"2000/1/31", Span{1, UnitMonth}, "2000/2/29"},
		{"2000/2/29", Span{1, UnitYear}, "2001/2/28"},
		{"1999/12/4", Span{2, UnitWeek}, "1999/12/18"},
		{"1999/12/4", Span{-10, UnitDay}, "1999/11/24"},
		{"1999/12/4", Span{0, UnitYear}, "1999/12/4"},
	}
	for _, c := range cases {
		d, err := ParseDay(c.d)
		if err != nil {
			t.Fatal(err)
		}
		if got := AddSpan(d, c.s).String(); got != c.want {
			t.Errorf("AddSpan(%s, %v) = %s, want %s", c.d, c.s, got, c.want)
		}
	}
}

func TestSubSpanInverseForDays(t *testing.T) {
	f := func(raw int32, n uint8) bool {
		d := Day(int64(raw) % 300000)
		s := Span{int64(n), UnitDay}
		return SubSpan(AddSpan(d, s), s) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseSpan(t *testing.T) {
	cases := map[string]Span{
		"6 months":  {6, UnitMonth},
		"4quarters": {4, UnitQuarter},
		"1 day":     {1, UnitDay},
		"-2 weeks":  {-2, UnitWeek},
		"3 years":   {3, UnitYear},
		"36 weeks":  {36, UnitWeek},
	}
	for s, want := range cases {
		got, err := ParseSpan(s)
		if err != nil {
			t.Fatalf("ParseSpan(%q): %v", s, err)
		}
		if got != want {
			t.Errorf("ParseSpan(%q) = %v, want %v", s, got, want)
		}
	}
	for _, bad := range []string{"months", "6", "6 lightyears", ""} {
		if _, err := ParseSpan(bad); err == nil {
			t.Errorf("ParseSpan(%q) succeeded, want error", bad)
		}
	}
}

func TestParseUnit(t *testing.T) {
	for s, want := range map[string]Unit{"day": UnitDay, "Weeks": UnitWeek, "month": UnitMonth, "quarters": UnitQuarter, "YEAR": UnitYear} {
		got, err := ParseUnit(s)
		if err != nil || got != want {
			t.Errorf("ParseUnit(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseUnit("fortnight"); err == nil {
		t.Error("ParseUnit(fortnight) succeeded")
	}
}

func TestExprEval(t *testing.T) {
	now, _ := ParseDay("2000/11/5")

	// The paper's Section 4.2 example: at 2000/11/5, "NOW - 4 quarters"
	// at quarter granularity is 1999Q4 ("2000Q4 - 4").
	e := NowExpr().Minus(Span{4, UnitQuarter})
	if got := e.EvalPeriod(now, UnitQuarter).String(); got != "1999Q4" {
		t.Errorf("NOW - 4 quarters @ 2000/11/5 = %s, want 1999Q4", got)
	}
	e = NowExpr().Minus(Span{6, UnitMonth})
	if got := e.EvalPeriod(now, UnitMonth).String(); got != "2000/5" {
		t.Errorf("NOW - 6 months @ 2000/11/5 = %s, want 2000/5", got)
	}
	e = NowExpr().Minus(Span{12, UnitMonth})
	if got := e.EvalPeriod(now, UnitMonth).String(); got != "1999/11" {
		t.Errorf("NOW - 12 months @ 2000/11/5 = %s, want 1999/11", got)
	}

	p, _ := ParsePeriod("1999/12")
	a := AnchorExpr(p)
	if got := a.EvalPeriod(now, UnitMonth).String(); got != "1999/12" {
		t.Errorf("anchored 1999/12 = %s", got)
	}
	if a.IsNowRelative() {
		t.Error("anchored expression claims NOW-relative")
	}
	if !e.IsNowRelative() {
		t.Error("NOW expression claims anchored")
	}
}

func TestExprString(t *testing.T) {
	e := NowExpr().Minus(Span{6, UnitMonth})
	if got := e.String(); got != "NOW - 6 months" {
		t.Errorf("String = %q", got)
	}
	p, _ := ParsePeriod("1999Q4")
	a := AnchorExpr(p).Plus(Span{1, UnitQuarter})
	if got := a.String(); got != "1999Q4 + 1 quarter" {
		t.Errorf("String = %q", got)
	}
}

func TestExprMaxOffsetDays(t *testing.T) {
	e := NowExpr().Minus(Span{12, UnitMonth}).Minus(Span{1, UnitDay})
	if got := e.MaxOffsetDays(); got < 365 || got > 500 {
		t.Errorf("MaxOffsetDays = %d, want a tight bound above 365", got)
	}
}

func TestExprBaseUnit(t *testing.T) {
	p, _ := ParsePeriod("1999W48")
	if u, ok := AnchorExpr(p).BaseUnit(); !ok || u != UnitWeek {
		t.Errorf("BaseUnit = %v, %v", u, ok)
	}
	if _, ok := NowExpr().BaseUnit(); ok {
		t.Error("NOW has a base unit")
	}
}

func TestExprEvalDayMonotoneInNow(t *testing.T) {
	// Property: for NOW-relative expressions, EvalDay is monotone in now.
	e := NowExpr().Minus(Span{6, UnitMonth})
	f := func(raw int32, delta uint16) bool {
		n1 := Day(int64(raw) % 300000)
		n2 := n1 + Day(delta)
		return e.EvalDay(n1) <= e.EvalDay(n2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
