package caltime

import "testing"

func BenchmarkPeriodOf(b *testing.B) {
	d := Date(1999, 12, 4)
	for i := 0; i < b.N; i++ {
		for u := UnitDay; u <= UnitYear; u++ {
			_ = PeriodOf(d, u)
		}
	}
}

func BenchmarkISOWeek(b *testing.B) {
	d := Date(1999, 12, 4)
	for i := 0; i < b.N; i++ {
		_, _ = d.ISOWeek()
	}
}

func BenchmarkAddSpanMonths(b *testing.B) {
	d := Date(2000, 11, 5)
	s := Span{N: -6, Unit: UnitMonth}
	for i := 0; i < b.N; i++ {
		_ = AddSpan(d, s)
	}
}

func BenchmarkParsePeriod(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParsePeriod("1999W48"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExprEvalPeriod(b *testing.B) {
	e := NowExpr().Minus(Span{N: 6, Unit: UnitMonth})
	now := Date(2000, 11, 5)
	for i := 0; i < b.N; i++ {
		_ = e.EvalPeriod(now, UnitMonth)
	}
}
