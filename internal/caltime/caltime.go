// Package caltime provides the calendar-time substrate for the data
// reduction engine: civil dates at day granularity, the coarser calendar
// granularities used by the paper's Time dimension (ISO week, month,
// quarter, year), unanchored time spans, and NOW-relative time expressions
// in the sense of Clifford et al. ("On the Semantics of 'Now' in
// Databases", TODS 1997), which the reduction specification language of
// Skyt, Jensen & Pedersen builds on.
//
// All arithmetic is proleptic Gregorian and purely integral, so results
// are exact and independent of time zones, which matters because the
// soundness checks for reduction specifications (NonCrossing, Growing)
// are decided by exhaustive iteration over day indices.
package caltime

import (
	"fmt"
	"strconv"
	"strings"
)

// Day is a civil date encoded as the number of days since the epoch
// 1970-01-01 (day 0). Negative values are valid and denote days before
// the epoch.
type Day int64

// Unit is a calendar granularity. The order of the constants follows the
// paper's Time dimension from fine to coarse; Week and Month are
// incomparable (parallel hierarchies), which callers must handle via the
// dimension's partial order rather than by comparing Units.
type Unit int

const (
	UnitDay Unit = iota
	UnitWeek
	UnitMonth
	UnitQuarter
	UnitYear
)

var unitNames = [...]string{"day", "week", "month", "quarter", "year"}

// String returns the lower-case name of the unit, e.g. "month".
func (u Unit) String() string {
	if u < UnitDay || u > UnitYear {
		return fmt.Sprintf("Unit(%d)", int(u))
	}
	return unitNames[u]
}

// ParseUnit parses a unit name, accepting singular and plural forms
// ("month", "months").
func ParseUnit(s string) (Unit, error) {
	switch strings.ToLower(strings.TrimSuffix(strings.TrimSpace(s), "s")) {
	case "day":
		return UnitDay, nil
	case "week":
		return UnitWeek, nil
	case "month":
		return UnitMonth, nil
	case "quarter":
		return UnitQuarter, nil
	case "year":
		return UnitYear, nil
	}
	return 0, fmt.Errorf("caltime: unknown unit %q", s)
}

// daysFromCivil converts a civil date to days since 1970-01-01.
// Algorithm from Howard Hinnant's chrono-compatible date algorithms.
func daysFromCivil(y, m, d int) int64 {
	yy := int64(y)
	if m <= 2 {
		yy--
	}
	var era int64
	if yy >= 0 {
		era = yy / 400
	} else {
		era = (yy - 399) / 400
	}
	yoe := yy - era*400 // [0, 399]
	var mp int64
	if m > 2 {
		mp = int64(m) - 3
	} else {
		mp = int64(m) + 9
	}
	doy := (153*mp+2)/5 + int64(d) - 1     // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy // [0, 146096]
	return era*146097 + doe - 719468       // shift epoch to 1970-01-01
}

// civilFromDays converts days since 1970-01-01 to a civil date.
func civilFromDays(z int64) (y, m, d int) {
	z += 719468
	var era int64
	if z >= 0 {
		era = z / 146097
	} else {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097                                  // [0, 146096]
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365 // [0, 399]
	yy := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100) // [0, 365]
	mp := (5*doy + 2) / 153                  // [0, 11]
	d = int(doy - (153*mp+2)/5 + 1)          // [1, 31]
	if mp < 10 {
		m = int(mp + 3)
	} else {
		m = int(mp - 9)
	}
	if m <= 2 {
		yy++
	}
	return int(yy), m, d
}

// Date constructs a Day from a civil year, month (1-12) and day of month.
// Out-of-range months or days are normalized arithmetically (as in
// time.Date), which the tests rely on for span arithmetic.
func Date(year, month, day int) Day {
	// Normalize month into [1,12], adjusting the year.
	y, m := year, month
	if m < 1 || m > 12 {
		y += (m - 1) / 12
		m = (m-1)%12 + 1
		if m < 1 {
			m += 12
			y--
		}
	}
	return Day(daysFromCivil(y, m, day))
}

// Civil returns the civil (year, month, day) of d.
func (d Day) Civil() (year, month, day int) { return civilFromDays(int64(d)) }

// Year returns the calendar year of d.
func (d Day) Year() int { y, _, _ := d.Civil(); return y }

// Weekday returns the ISO weekday of d: 1 = Monday ... 7 = Sunday.
func (d Day) Weekday() int {
	// 1970-01-01 was a Thursday (ISO weekday 4).
	w := (int64(d)%7 + 7) % 7 // 0 for Thursday
	return int((w+3)%7) + 1
}

// ISOWeek returns the ISO-8601 week-numbering year and week of d.
func (d Day) ISOWeek() (year, week int) {
	// Find the Thursday of d's ISO week; its calendar year is the ISO year.
	thursday := d + Day(4-d.Weekday())
	y := thursday.Year()
	jan1 := Date(y, 1, 1)
	week = int(thursday-jan1)/7 + 1
	return y, week
}

// String formats d as the paper writes day values, e.g. "1999/12/4".
func (d Day) String() string {
	y, m, dd := d.Civil()
	return fmt.Sprintf("%d/%d/%d", y, m, dd)
}

// MinYear and MaxYear bound the years accepted in time literals. Every
// period index encoding multiplies the year (by 12, by 4), so an
// unbounded year would overflow int64 and render as a negative literal
// the grammar cannot re-parse; a million years comfortably covers any
// warehouse clock while staying far from the overflow edge.
const (
	MinYear = 0
	MaxYear = 999999
)

// ParseDay parses "1999/12/4" (also accepting zero-padded components).
func ParseDay(s string) (Day, error) {
	parts := strings.Split(s, "/")
	if len(parts) != 3 {
		return 0, fmt.Errorf("caltime: invalid day literal %q", s)
	}
	nums := make([]int, 3)
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil {
			return 0, fmt.Errorf("caltime: invalid day literal %q: %w", s, err)
		}
		nums[i] = n
	}
	y, m, dd := nums[0], nums[1], nums[2]
	if y < MinYear || y > MaxYear || m < 1 || m > 12 || dd < 1 || dd > 31 {
		return 0, fmt.Errorf("caltime: day literal %q out of range", s)
	}
	d := Date(y, m, dd)
	// Reject normalized overflow such as 1999/2/30.
	if ry, rm, rd := d.Civil(); ry != y || rm != m || rd != dd {
		return 0, fmt.Errorf("caltime: day literal %q is not a real date", s)
	}
	return d, nil
}

// Period identifies one calendar period at a given unit: a specific day,
// ISO week, month, quarter or year. Periods of the same unit are totally
// ordered by Index.
type Period struct {
	Unit  Unit
	Index int64
}

// PeriodOf returns the period of unit u containing day d.
//
// Index encodings: day = days since epoch; week = ISO weeks since the week
// containing the epoch; month = 12*year + (month-1); quarter = 4*year +
// (quarter-1); year = year.
func PeriodOf(d Day, u Unit) Period {
	switch u {
	case UnitDay:
		return Period{u, int64(d)}
	case UnitWeek:
		// Monday of d's ISO week, in weeks since the Monday on/before epoch.
		monday := int64(d) - int64(d.Weekday()-1)
		// Epoch (Thursday) belongs to the week whose Monday is day -3.
		return Period{u, (monday + 3) / 7}
	case UnitMonth:
		y, m, _ := d.Civil()
		return Period{u, int64(y)*12 + int64(m-1)}
	case UnitQuarter:
		y, m, _ := d.Civil()
		return Period{u, int64(y)*4 + int64((m-1)/3)}
	case UnitYear:
		return Period{u, int64(d.Year())}
	}
	panic(fmt.Sprintf("caltime: PeriodOf: bad unit %d", u))
}

// First returns the first day of the period.
func (p Period) First() Day {
	switch p.Unit {
	case UnitDay:
		return Day(p.Index)
	case UnitWeek:
		return Day(p.Index*7 - 3)
	case UnitMonth:
		y := p.Index / 12
		m := p.Index % 12
		if m < 0 {
			m += 12
			y--
		}
		return Date(int(y), int(m)+1, 1)
	case UnitQuarter:
		y := p.Index / 4
		q := p.Index % 4
		if q < 0 {
			q += 4
			y--
		}
		return Date(int(y), int(q)*3+1, 1)
	case UnitYear:
		return Date(int(p.Index), 1, 1)
	}
	panic(fmt.Sprintf("caltime: First: bad unit %d", p.Unit))
}

// Last returns the last day of the period.
func (p Period) Last() Day {
	return Period{p.Unit, p.Index + 1}.First() - 1
}

// Contains reports whether day d falls within the period.
func (p Period) Contains(d Day) bool { return PeriodOf(d, p.Unit).Index == p.Index }

// String formats the period as the paper writes time values:
// "1999/12/4" (day), "1999W48" (week), "1999/12" (month), "1999Q4"
// (quarter), "1999" (year).
func (p Period) String() string {
	switch p.Unit {
	case UnitDay:
		return Day(p.Index).String()
	case UnitWeek:
		y, w := p.First().ISOWeek()
		return fmt.Sprintf("%dW%d", y, w)
	case UnitMonth:
		f := p.First()
		y, m, _ := f.Civil()
		return fmt.Sprintf("%d/%d", y, m)
	case UnitQuarter:
		f := p.First()
		y, m, _ := f.Civil()
		return fmt.Sprintf("%dQ%d", y, (m-1)/3+1)
	case UnitYear:
		return strconv.FormatInt(p.Index, 10)
	}
	return fmt.Sprintf("Period{%d,%d}", p.Unit, p.Index)
}

// ParsePeriod parses a time literal in the paper's notation and returns
// the period along with its unit: "1999/12/4" (day), "1999W48" (week),
// "1999/12" (month), "1999Q4" (quarter), "1999" (year).
func ParsePeriod(s string) (Period, error) {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, 'W'); i > 0 {
		y, err1 := strconv.Atoi(s[:i])
		w, err2 := strconv.Atoi(s[i+1:])
		if err1 != nil || err2 != nil || y < MinYear || y > MaxYear || w < 1 || w > 53 {
			return Period{}, fmt.Errorf("caltime: invalid week literal %q", s)
		}
		// Week w of ISO year y: the week containing January 4th is week 1.
		jan4 := Date(y, 1, 4)
		week1 := PeriodOf(jan4, UnitWeek)
		p := Period{UnitWeek, week1.Index + int64(w-1)}
		if iy, iw := p.First().ISOWeek(); iy != y || iw != w {
			return Period{}, fmt.Errorf("caltime: week literal %q does not exist", s)
		}
		return p, nil
	}
	if i := strings.IndexByte(s, 'Q'); i > 0 {
		y, err1 := strconv.Atoi(s[:i])
		q, err2 := strconv.Atoi(s[i+1:])
		if err1 != nil || err2 != nil || y < MinYear || y > MaxYear || q < 1 || q > 4 {
			return Period{}, fmt.Errorf("caltime: invalid quarter literal %q", s)
		}
		return Period{UnitQuarter, int64(y)*4 + int64(q-1)}, nil
	}
	switch strings.Count(s, "/") {
	case 2:
		d, err := ParseDay(s)
		if err != nil {
			return Period{}, err
		}
		return Period{UnitDay, int64(d)}, nil
	case 1:
		parts := strings.SplitN(s, "/", 2)
		y, err1 := strconv.Atoi(parts[0])
		m, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || y < MinYear || y > MaxYear || m < 1 || m > 12 {
			return Period{}, fmt.Errorf("caltime: invalid month literal %q", s)
		}
		return Period{UnitMonth, int64(y)*12 + int64(m-1)}, nil
	case 0:
		y, err := strconv.Atoi(s)
		if err != nil || y < MinYear || y > MaxYear {
			return Period{}, fmt.Errorf("caltime: invalid time literal %q", s)
		}
		return Period{UnitYear, int64(y)}, nil
	}
	return Period{}, fmt.Errorf("caltime: invalid time literal %q", s)
}

// Span is an unanchored time interval such as "6 months" or "4 quarters"
// (set S in the paper's grammar, Table 1). Spans may be negative.
type Span struct {
	N    int64
	Unit Unit
}

// String formats the span, e.g. "6 months".
func (s Span) String() string {
	if s.N == 1 || s.N == -1 {
		return fmt.Sprintf("%d %s", s.N, s.Unit)
	}
	return fmt.Sprintf("%d %ss", s.N, s.Unit)
}

// ParseSpan parses "6 months", "1 day", "4quarters" etc.
func ParseSpan(s string) (Span, error) {
	s = strings.TrimSpace(s)
	i := 0
	for i < len(s) && (s[i] == '-' || s[i] == '+' || (s[i] >= '0' && s[i] <= '9')) {
		i++
	}
	if i == 0 || i == len(s) {
		return Span{}, fmt.Errorf("caltime: invalid span %q", s)
	}
	n, err := strconv.ParseInt(s[:i], 10, 64)
	if err != nil {
		return Span{}, fmt.Errorf("caltime: invalid span %q: %w", s, err)
	}
	u, err := ParseUnit(s[i:])
	if err != nil {
		return Span{}, fmt.Errorf("caltime: invalid span %q: %w", s, err)
	}
	return Span{n, u}, nil
}

// AddSpan shifts day d by span s. Month-based units shift calendar-wise,
// clamping the day of month (1999/1/31 + 1 month = 1999/2/28), matching
// the usual data-warehouse interpretation of "6 months old".
func AddSpan(d Day, s Span) Day {
	switch s.Unit {
	case UnitDay:
		return d + Day(s.N)
	case UnitWeek:
		return d + Day(7*s.N)
	case UnitMonth, UnitQuarter, UnitYear:
		factor := int64(1)
		switch s.Unit {
		case UnitQuarter:
			factor = 3
		case UnitYear:
			factor = 12
		}
		y, m, dd := d.Civil()
		total := int64(y)*12 + int64(m-1) + s.N*factor
		ny := total / 12
		nm := total % 12
		if nm < 0 {
			nm += 12
			ny--
		}
		// Clamp the day of month.
		last := Period{UnitMonth, ny*12 + nm}.Last()
		_, _, lastDOM := last.Civil()
		if dd > lastDOM {
			dd = lastDOM
		}
		return Date(int(ny), int(nm)+1, dd)
	}
	panic(fmt.Sprintf("caltime: AddSpan: bad unit %d", s.Unit))
}

// SubSpan shifts day d backwards by span s.
func SubSpan(d Day, s Span) Day { return AddSpan(d, Span{-s.N, s.Unit}) }

// MaxSpanDays returns a safe upper bound, in days, on the magnitude of the
// span. It is used by the soundness decision procedure to bound the time
// horizon over which NOW-relative predicates must be examined.
func (s Span) MaxSpanDays() int64 {
	n := s.N
	if n < 0 {
		n = -n
	}
	switch s.Unit {
	case UnitDay:
		return n
	case UnitWeek:
		return n * 7
	case UnitMonth:
		return n*31 + 31
	case UnitQuarter:
		return n*92 + 92
	case UnitYear:
		return n*366 + 366
	}
	return n * 366
}
