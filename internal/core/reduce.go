// Package core implements the paper's primary contribution: the
// semantics of reducing a multidimensional object under a data reduction
// specification (Section 4.2 auxiliary functions and the Definition 2
// reduction semantics), including per-fact provenance so that, as the
// paper requires, "for any fact in a reduced MO it is possible to
// determine the specific action that caused the fact to be aggregated to
// its current level".
//
// Reduce is purely functional: it never mutates its input MO. The
// subcube engine (package subcube) is the incremental, operational
// counterpart; integration tests verify the two agree.
package core

import (
	"fmt"
	"sort"
	"strings"

	"dimred/internal/caltime"
	"dimred/internal/mdm"
	"dimred/internal/spec"
	"dimred/internal/specexec"
)

// SpecGran returns Spec_gran(f, t) (Eq. 11): the set of granularities
// specified as aggregation levels for fact f at time t — the targets of
// every action whose predicate f's direct cell satisfies, plus f's own
// granularity (so the set is never empty).
func SpecGran(s *spec.Spec, mo *mdm.MO, f mdm.FactID, t caltime.Day) []mdm.Granularity {
	cell := mo.Refs(f)
	out := []mdm.Granularity{mo.Gran(f)}
	for _, a := range s.Actions() {
		if a.IsDelete() {
			continue // deletion is handled separately (Spec.DeletedBy)
		}
		if a.SatisfiedBy(cell, t) {
			out = append(out, a.Target())
		}
	}
	return out
}

// Cell returns Cell(f, t) (Eq. 12): the cell of dimension values fact f
// aggregates to at time t — f's values rolled up to the maximum
// granularity in Spec_gran(f, t) — together with that granularity and,
// per dimension, the action responsible for the level (nil where f's own
// granularity prevails). It fails if the specified granularities have no
// maximum, which a NonCrossing specification never produces.
func Cell(s *spec.Spec, mo *mdm.MO, f mdm.FactID, t caltime.Day) ([]mdm.ValueID, mdm.Granularity, []*spec.Action, error) {
	schema := s.Env().Schema
	grans := SpecGran(s, mo, f, t)
	max, err := schema.MaxGranularity(grans)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: Cell(%s): %w", mo.Name(f), err)
	}
	cell := mo.Refs(f)
	out := make([]mdm.ValueID, len(cell))
	for i, d := range schema.Dims {
		v := d.AncestorAt(cell[i], max[i])
		if v == mdm.NoValue {
			return nil, nil, nil, fmt.Errorf("core: Cell(%s): value %s has no ancestor in category %s",
				mo.Name(f), d.ValueName(cell[i]), d.Category(max[i]).Name)
		}
		out[i] = v
	}
	// Per-dimension responsibility from AggLevel; its levels coincide
	// with max for a NonCrossing specification.
	_, resp := s.AggLevel(cell, t)
	return out, max, resp, nil
}

// Provenance records how one reduced fact came to be.
type Provenance struct {
	Sources     []mdm.FactID   // facts of the input MO aggregated into it
	Responsible []*spec.Action // per dimension; nil where no action raised the level
}

// Result is the outcome of a reduction: the reduced MO (Definition 2)
// plus provenance per reduced fact. Deleted records facts of the input
// MO removed by deletion actions (the Section 8 extension), keyed by the
// responsible action's name.
type Result struct {
	MO      *mdm.MO
	Prov    map[mdm.FactID]Provenance
	Deleted map[string][]mdm.FactID
}

// Reduce computes the reduced multidimensional object O'(t) of
// Definition 2: facts are grouped by the cell they aggregate to at time
// t, each group becomes one fact mapped directly to that cell, and each
// measure is folded with its default aggregate function over the group.
// The schema and dimensions are unchanged, so new facts conforming to
// the original schema may still be inserted afterwards.
//
// The specification is compiled to a specexec program first, so the
// per-fact work is a bitset probe pass instead of the double predicate
// interpretation of SpecGran followed by AggLevel; ReduceInterpreted
// keeps the uncompiled evaluation for differential testing and
// benchmark baselines. Both produce identical results. Repeated calls
// with an unmutated specification reuse the compiled program through a
// generation-keyed cache — memoization of a pure compile, so Reduce
// stays referentially transparent (a duplicate compile on a cache race
// yields an identical program).
//
//dimred:aggregate
func Reduce(s *spec.Spec, mo *mdm.MO, t caltime.Day) (*Result, error) {
	return reduceWith(s, mo, t, progCache.RouterAt(s, t))
}

// progCache memoizes the compiled program of the most recent
// specification Reduce saw, keyed on its mutation generation. Reduce
// has no metric set (it is a pure function over its arguments), so the
// cache is uninstrumented; the subcube engine's cache carries the
// engine counters.
var progCache = specexec.NewCache(nil)

// ReduceInterpreted is Reduce on the uncompiled evaluation path: every
// action predicate is re-interpreted per fact (SpecGran, then AggLevel
// over the same actions).
//
//dimred:aggregate
func ReduceInterpreted(s *spec.Spec, mo *mdm.MO, t caltime.Day) (*Result, error) {
	return reduceWith(s, mo, t, nil)
}

func reduceWith(s *spec.Spec, mo *mdm.MO, t caltime.Day, router *specexec.Router) (*Result, error) {
	schema := s.Env().Schema
	type group struct {
		cell    []mdm.ValueID
		sources []mdm.FactID
		meas    []float64
		base    int64
		resp    []*spec.Action
	}
	groups := make(map[string]*group)
	order := make([]string, 0)
	deleted := make(map[string][]mdm.FactID)

	n := schema.NumDims()
	var keyBuf []byte
	var satScratch []*spec.Action
	var granScratch []mdm.Granularity
	cellScratch := make([]mdm.ValueID, n)
	levelScratch := make(mdm.Granularity, n)
	respScratch := make([]*spec.Action, n)
	for f := 0; f < mo.Len(); f++ {
		fid := mdm.FactID(f)
		refs := mo.Refs(fid)
		var del *spec.Action
		if router != nil {
			del = router.DeletedBy(refs)
		} else {
			del = s.DeletedBy(refs, t)
		}
		if del != nil {
			deleted[del.Name()] = append(deleted[del.Name()], fid)
			continue
		}
		var cell []mdm.ValueID
		var resp []*spec.Action
		if router != nil {
			// One probe pass yields the satisfied actions; Spec_gran,
			// the maximum granularity and per-dimension responsibility
			// all derive from it without re-evaluating any predicate.
			satScratch = router.AppendSatisfied(satScratch[:0], refs)
			granScratch = append(granScratch[:0], mo.Gran(fid))
			for _, a := range satScratch {
				granScratch = append(granScratch, a.Target())
			}
			max, err := schema.MaxGranularity(granScratch)
			if err != nil {
				return nil, fmt.Errorf("core: Cell(%s): %w", mo.Name(fid), err)
			}
			for i, d := range schema.Dims {
				v := d.AncestorAt(refs[i], max[i])
				if v == mdm.NoValue {
					return nil, fmt.Errorf("core: Cell(%s): value %s has no ancestor in category %s",
						mo.Name(fid), d.ValueName(refs[i]), d.Category(max[i]).Name)
				}
				cellScratch[i] = v
			}
			for i, d := range schema.Dims {
				levelScratch[i] = d.CategoryOf(refs[i])
				respScratch[i] = nil
			}
			for _, a := range satScratch {
				for i, d := range schema.Dims {
					if d.CatLE(levelScratch[i], a.TargetIn(i)) && levelScratch[i] != a.TargetIn(i) {
						levelScratch[i] = a.TargetIn(i)
						respScratch[i] = a
					}
				}
			}
			cell, resp = cellScratch, respScratch
		} else {
			var err error
			cell, _, resp, err = Cell(s, mo, fid, t)
			if err != nil {
				return nil, err
			}
		}
		keyBuf = keyBuf[:0]
		for _, v := range cell {
			keyBuf = append(keyBuf,
				byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		g, ok := groups[string(keyBuf)]
		if !ok {
			key := string(keyBuf)
			g = &group{
				cell: append([]mdm.ValueID(nil), cell...),
				meas: make([]float64, len(schema.Measures)),
				resp: append([]*spec.Action(nil), resp...),
			}
			for j := range schema.Measures {
				g.meas[j] = schema.Measures[j].Agg.Init(mo.Measure(fid, j))
				if schema.Measures[j].Agg == mdm.AggCount {
					g.meas[j] = float64(mo.BaseCount(fid))
				}
			}
			g.base = mo.BaseCount(fid)
			g.sources = append(g.sources, fid)
			groups[key] = g
			order = append(order, key)
			continue
		}
		for j := range schema.Measures {
			agg := schema.Measures[j].Agg
			x := agg.Init(mo.Measure(fid, j))
			if agg == mdm.AggCount {
				x = float64(mo.BaseCount(fid))
			}
			g.meas[j] = agg.Merge(g.meas[j], x)
		}
		g.base += mo.BaseCount(fid)
		g.sources = append(g.sources, fid)
		// Keep the responsibility that raised levels highest: per
		// dimension, prefer the action with the higher target category,
		// breaking ties deterministically by action name.
		for i := range resp {
			g.resp[i] = higherResp(schema, i, g.resp[i], resp[i])
		}
	}

	out := mdm.NewMO(schema)
	res := &Result{MO: out, Prov: make(map[mdm.FactID]Provenance, len(order)), Deleted: deleted}
	for _, key := range order {
		g := groups[key]
		name := mergedName(mo, g.sources)
		nf, err := out.AddFactAt(g.cell, g.meas, g.base, name)
		if err != nil {
			return nil, fmt.Errorf("core: Reduce: %w", err)
		}
		res.Prov[nf] = Provenance{Sources: g.sources, Responsible: g.resp}
	}
	return res, nil
}

// higherResp merges two candidate responsible actions for dimension i:
// the one aggregating the dimension to the higher target category wins;
// equal (or incomparable) targets tie-break by action name so the
// merged provenance does not depend on fact order.
func higherResp(schema *mdm.Schema, i int, cur, cand *spec.Action) *spec.Action {
	if cand == nil {
		return cur
	}
	if cur == nil {
		return cand
	}
	cc, nc := cur.TargetIn(i), cand.TargetIn(i)
	d := schema.Dims[i]
	switch {
	case cc == nc || !d.CatComparable(cc, nc):
		if cand.Name() < cur.Name() {
			return cand
		}
		return cur
	case d.CatLE(cc, nc):
		return cand
	default:
		return cur
	}
}

// mergedName derives the display name of a reduced fact from its
// sources, following the paper's figures: fact_0 and fact_3 aggregate to
// "fact_03", fact_4 and fact_5 to "fact_45". A single source keeps its
// name; sources without the fact_<digits> shape fall back to
// "agg(<n> facts)".
func mergedName(mo *mdm.MO, sources []mdm.FactID) string {
	if len(sources) == 1 {
		return mo.Name(sources[0])
	}
	suffixes := make([]string, 0, len(sources))
	for _, f := range sources {
		name := mo.Name(f)
		rest, ok := strings.CutPrefix(name, "fact_")
		if !ok {
			return fmt.Sprintf("agg(%d facts)", len(sources))
		}
		suffixes = append(suffixes, rest)
	}
	sort.Strings(suffixes)
	return "fact_" + strings.Join(suffixes, "")
}
