package core

import (
	"fmt"
	"reflect"
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/mdm"
	"dimred/internal/spec"
	"dimred/internal/workload"
)

func respTestEnv(t *testing.T) (*workload.ClickObject, *spec.Env) {
	t.Helper()
	obj, err := workload.BuildClickMO(workload.ClickConfig{
		Seed: 61, Start: caltime.Date(2000, 1, 1), Days: 100,
		ClicksPerDay: 6, Domains: 8, URLsPerDomain: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	env, err := spec.NewEnv(obj.Schema, "Time", obj.Time)
	if err != nil {
		t.Fatal(err)
	}
	return obj, env
}

// TestHigherRespMerge pins the responsibility-merge rule: when facts
// with different responsible actions land in one reduced group, the
// action aggregating the dimension to the higher target category wins,
// and equal targets tie-break by action name — never by fact order.
func TestHigherRespMerge(t *testing.T) {
	_, env := respTestEnv(t)
	schema := env.Schema
	month := spec.MustCompileString("bm", `aggregate [Time.month, URL.domain] where Time.month <= NOW - 2 months`, env)
	quarter := spec.MustCompileString("aq", `aggregate [Time.quarter, URL.domain] where Time.quarter <= NOW - 4 quarters`, env)
	monthToo := spec.MustCompileString("am", `aggregate [Time.month, URL.domain] where Time.month <= NOW - 3 months`, env)

	if got := higherResp(schema, 0, nil, nil); got != nil {
		t.Fatalf("higherResp(nil, nil) = %v, want nil", got)
	}
	if got := higherResp(schema, 0, nil, month); got != month {
		t.Fatalf("higherResp(nil, bm) = %v, want bm", got)
	}
	if got := higherResp(schema, 0, month, nil); got != month {
		t.Fatalf("higherResp(bm, nil) = %v, want bm", got)
	}
	// Higher target category wins in either argument order.
	if got := higherResp(schema, 0, month, quarter); got != quarter {
		t.Fatalf("higherResp(bm, aq) = %s, want aq", got.Name())
	}
	if got := higherResp(schema, 0, quarter, month); got != quarter {
		t.Fatalf("higherResp(aq, bm) = %s, want aq", got.Name())
	}
	// Equal targets: the lexicographically smaller name wins both ways.
	if got := higherResp(schema, 0, month, monthToo); got != monthToo {
		t.Fatalf("higherResp(bm, am) = %s, want am", got.Name())
	}
	if got := higherResp(schema, 0, monthToo, month); got != monthToo {
		t.Fatalf("higherResp(am, bm) = %s, want am", got.Name())
	}
}

// TestReduceCompiledMatchesInterpreted: the compiled Reduce and
// ReduceInterpreted must agree exactly — reduced facts (cells,
// measures, base counts, names), per-fact provenance and the deleted
// sets — across synchronization days covering aggregation and
// deletion.
func TestReduceCompiledMatchesInterpreted(t *testing.T) {
	obj, env := respTestEnv(t)
	s, err := spec.New(env,
		spec.MustCompileString("m", `aggregate [Time.month, URL.domain] where Time.month <= NOW - 2 months`, env),
		spec.MustCompileString("q", `aggregate [Time.quarter, URL.domain_grp] where Time.quarter <= NOW - 4 quarters`, env),
		spec.MustCompileString("del", `delete where Time.year <= NOW - 2 years`, env))
	if err != nil {
		t.Fatal(err)
	}
	days := []caltime.Day{
		caltime.Date(2000, 2, 1), caltime.Date(2000, 9, 1),
		caltime.Date(2001, 3, 1), caltime.Date(2002, 7, 1), caltime.Date(2003, 1, 2),
	}
	sawDeleted := false
	for _, at := range days {
		got, err := Reduce(s, obj.MO, at)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ReduceInterpreted(s, obj.MO, at)
		if err != nil {
			t.Fatal(err)
		}
		if got.MO.Len() != want.MO.Len() {
			t.Fatalf("at %v: compiled %d facts, interpreted %d", at, got.MO.Len(), want.MO.Len())
		}
		for f := 0; f < got.MO.Len(); f++ {
			fid := mdm.FactID(f)
			if fmt.Sprint(got.MO.Refs(fid)) != fmt.Sprint(want.MO.Refs(fid)) ||
				fmt.Sprint(got.MO.Measures(fid)) != fmt.Sprint(want.MO.Measures(fid)) ||
				got.MO.BaseCount(fid) != want.MO.BaseCount(fid) ||
				got.MO.Name(fid) != want.MO.Name(fid) {
				t.Fatalf("at %v fact %d: compiled (%v %v %d %q) != interpreted (%v %v %d %q)", at, f,
					got.MO.Refs(fid), got.MO.Measures(fid), got.MO.BaseCount(fid), got.MO.Name(fid),
					want.MO.Refs(fid), want.MO.Measures(fid), want.MO.BaseCount(fid), want.MO.Name(fid))
			}
			if !reflect.DeepEqual(got.Prov[fid], want.Prov[fid]) {
				t.Fatalf("at %v fact %d: provenance diverges:\ncompiled:    %+v\ninterpreted: %+v",
					at, f, got.Prov[fid], want.Prov[fid])
			}
		}
		if !reflect.DeepEqual(got.Deleted, want.Deleted) {
			t.Fatalf("at %v: deleted sets diverge: compiled %v, interpreted %v", at, got.Deleted, want.Deleted)
		}
		if len(got.Deleted) > 0 {
			sawDeleted = true
		}
	}
	if !sawDeleted {
		t.Fatal("deletion window never fired; widen the day ladder")
	}
}
