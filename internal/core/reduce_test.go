package core

import (
	"strings"
	"testing"
	"testing/quick"

	"dimred/internal/caltime"
	"dimred/internal/dims"
	"dimred/internal/mdm"
	"dimred/internal/spec"
)

const (
	srcA1 = `aggregate [Time.month, URL.domain] where URL.domain_grp = ".com" and NOW - 12 months < Time.month and Time.month <= NOW - 6 months`
	srcA2 = `aggregate [Time.quarter, URL.domain] where URL.domain_grp = ".com" and Time.quarter <= NOW - 4 quarters`
)

func paperSpec(t *testing.T) (*dims.PaperObject, *spec.Spec) {
	t.Helper()
	p := dims.MustPaperMO()
	env, err := spec.NewEnv(p.Schema, "Time", p.Time)
	if err != nil {
		t.Fatal(err)
	}
	a1 := spec.MustCompileString("a1", srcA1, env)
	a2 := spec.MustCompileString("a2", srcA2, env)
	s, err := spec.New(env, a1, a2)
	if err != nil {
		t.Fatal(err)
	}
	return p, s
}

func day(t *testing.T, s string) caltime.Day {
	t.Helper()
	d, err := caltime.ParseDay(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSpecGranPaperExample(t *testing.T) {
	// Section 4.2: Spec_gran(fact_1, 2000/11/5) = {(day, url),
	// (month, domain), (quarter, domain)} — wait: the paper writes
	// (month, url) for a1's entry because its example keeps URL at url in
	// Gran; our compiled a1 targets (month, domain). The set must contain
	// the fact's own granularity plus both action targets.
	p, s := paperSpec(t)
	grans := SpecGran(s, p.MO, p.Facts[1], day(t, "2000/11/5"))
	if len(grans) != 3 {
		t.Fatalf("Spec_gran has %d entries, want 3", len(grans))
	}
	schema := p.Schema
	want := []string{
		"(Time.day, URL.url)",
		"(Time.month, URL.domain)",
		"(Time.quarter, URL.domain)",
	}
	got := make([]string, len(grans))
	for i, g := range grans {
		got[i] = schema.GranString(g)
	}
	for _, w := range want {
		found := false
		for _, g := range got {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Errorf("Spec_gran missing %s (got %v)", w, got)
		}
	}
}

func TestCellPaperExample(t *testing.T) {
	// Section 4.2: Cell(fact_1, 2000/11/5) = (1999Q4, cnn.com).
	p, s := paperSpec(t)
	cell, gran, resp, err := Cell(s, p.MO, p.Facts[1], day(t, "2000/11/5"))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Time.ValueName(cell[0]); got != "1999Q4" {
		t.Errorf("cell time = %q, want 1999Q4", got)
	}
	if got := p.URL.ValueName(cell[1]); got != "cnn.com" {
		t.Errorf("cell url = %q, want cnn.com", got)
	}
	if got := p.Schema.GranString(gran); got != "(Time.quarter, URL.domain)" {
		t.Errorf("granularity = %s", got)
	}
	if resp[0] == nil || resp[0].Name() != "a2" {
		t.Errorf("responsible for time should be a2, got %v", resp[0])
	}
}

// reduceAt is a helper running Reduce and failing the test on error.
func reduceAt(t *testing.T, s *spec.Spec, mo *mdm.MO, at string) *Result {
	t.Helper()
	res, err := Reduce(s, mo, day(t, at))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestReduceFigure3Snapshot1(t *testing.T) {
	// At 2000/4/5 no fact satisfies any predicate: the reduced MO equals
	// the original.
	p, s := paperSpec(t)
	res := reduceAt(t, s, p.MO, "2000/4/5")
	if res.MO.Len() != 7 {
		t.Fatalf("facts = %d, want 7", res.MO.Len())
	}
	for f := 0; f < res.MO.Len(); f++ {
		g := res.MO.Gran(mdm.FactID(f))
		if got := p.Schema.GranString(g); got != "(Time.day, URL.url)" {
			t.Errorf("fact %d granularity = %s", f, got)
		}
	}
}

func findFact(t *testing.T, mo *mdm.MO, name string) mdm.FactID {
	t.Helper()
	for f := 0; f < mo.Len(); f++ {
		if mo.Name(mdm.FactID(f)) == name {
			return mdm.FactID(f)
		}
	}
	t.Fatalf("no fact named %q in\n%s", name, mo.Dump())
	return 0
}

func TestReduceFigure3Snapshot2(t *testing.T) {
	// At 2000/6/5: fact_1 and fact_2 aggregate into fact_12 at
	// (1999/12, cnn.com) with measures (2, 2489, 7, 94k); fact_0 and
	// fact_3 move to month granularity individually; the 2000 facts are
	// untouched.
	p, s := paperSpec(t)
	res := reduceAt(t, s, p.MO, "2000/6/5")
	if res.MO.Len() != 6 {
		t.Fatalf("facts = %d, want 6:\n%s", res.MO.Len(), res.MO.Dump())
	}
	f12 := findFact(t, res.MO, "fact_12")
	if got := res.MO.CellString(f12); got != "1999/12, cnn.com" {
		t.Errorf("fact_12 cell = %q", got)
	}
	wantMeasures := []float64{2, 2489, 7, 94}
	for j, w := range wantMeasures {
		if got := res.MO.Measure(f12, j); got != w {
			t.Errorf("fact_12 measure %d = %v, want %v", j, got, w)
		}
	}
	f0 := findFact(t, res.MO, "fact_0")
	if got := res.MO.CellString(f0); got != "1999/11, amazon.com" {
		t.Errorf("fact_0 cell = %q", got)
	}
	f3 := findFact(t, res.MO, "fact_3")
	if got := res.MO.CellString(f3); got != "1999/12, amazon.com" {
		t.Errorf("fact_3 cell = %q", got)
	}
	for _, name := range []string{"fact_4", "fact_5", "fact_6"} {
		f := findFact(t, res.MO, name)
		if got := p.Schema.GranString(res.MO.Gran(f)); got != "(Time.day, URL.url)" {
			t.Errorf("%s granularity = %s", name, got)
		}
	}
	// Provenance of fact_12: sources fact_1 and fact_2, a1 responsible.
	prov := res.Prov[f12]
	if len(prov.Sources) != 2 {
		t.Errorf("fact_12 sources = %v", prov.Sources)
	}
	if prov.Responsible[0] == nil || prov.Responsible[0].Name() != "a1" {
		t.Errorf("fact_12 responsible = %v", prov.Responsible)
	}
}

func TestReduceFigure3Snapshot3(t *testing.T) {
	// At 2000/11/5: fact_03 (1999Q4, amazon.com) = (2, 689, 3, 68k);
	// fact_12 (1999Q4, cnn.com) = (2, 2489, 7, 94k); fact_45
	// (2000/1, cnn.com) = (2, 955, 10, 99k); fact_6 untouched.
	p, s := paperSpec(t)
	res := reduceAt(t, s, p.MO, "2000/11/5")
	if res.MO.Len() != 4 {
		t.Fatalf("facts = %d, want 4:\n%s", res.MO.Len(), res.MO.Dump())
	}
	checks := []struct {
		name, cell string
		meas       []float64
	}{
		{"fact_03", "1999Q4, amazon.com", []float64{2, 689, 3, 68}},
		{"fact_12", "1999Q4, cnn.com", []float64{2, 2489, 7, 94}},
		{"fact_45", "2000/1, cnn.com", []float64{2, 955, 10, 99}},
		{"fact_6", "2000/1/20, http://www.cc.gatech.edu/", []float64{1, 32, 1, 12}},
	}
	for _, c := range checks {
		f := findFact(t, res.MO, c.name)
		if got := res.MO.CellString(f); got != c.cell {
			t.Errorf("%s cell = %q, want %q", c.name, got, c.cell)
		}
		for j, w := range c.meas {
			if got := res.MO.Measure(f, j); got != w {
				t.Errorf("%s measure %d = %v, want %v", c.name, j, got, w)
			}
		}
	}
}

func TestReducePreservesSumTotals(t *testing.T) {
	// Conservation law: SUM measures are invariant under reduction at
	// any time.
	p, s := paperSpec(t)
	for _, at := range []string{"2000/4/5", "2000/6/5", "2000/11/5", "2002/1/1"} {
		res := reduceAt(t, s, p.MO, at)
		for j := range p.Schema.Measures {
			if got, want := res.MO.TotalMeasure(j), p.MO.TotalMeasure(j); got != want {
				t.Errorf("at %s: measure %d total = %v, want %v", at, j, got, want)
			}
		}
	}
}

func TestReduceIdempotentAtFixedTime(t *testing.T) {
	// Reducing an already-reduced MO at the same time is the identity
	// (up to fact order), because aggregated cells satisfy the same
	// predicates.
	p, s := paperSpec(t)
	for _, at := range []string{"2000/6/5", "2000/11/5"} {
		res1 := reduceAt(t, s, p.MO, at)
		res2 := reduceAt(t, s, res1.MO, at)
		if res1.MO.Len() != res2.MO.Len() {
			t.Fatalf("at %s: second reduction changed fact count %d -> %d",
				at, res1.MO.Len(), res2.MO.Len())
		}
		if d1, d2 := res1.MO.Dump(), res2.MO.Dump(); d1 != d2 {
			t.Errorf("at %s: second reduction changed facts:\n%s\nvs\n%s", at, d1, d2)
		}
	}
}

func TestReduceMonotoneOverTime(t *testing.T) {
	// Reducing at a later time never yields more facts (growing spec).
	p, s := paperSpec(t)
	times := []string{"2000/4/5", "2000/6/5", "2000/9/1", "2000/11/5", "2001/6/1", "2002/1/1"}
	prev := 1 << 30
	for _, at := range times {
		res := reduceAt(t, s, p.MO, at)
		if res.MO.Len() > prev {
			t.Errorf("fact count grew over time at %s: %d > %d", at, res.MO.Len(), prev)
		}
		prev = res.MO.Len()
	}
}

func TestReduceIncrementalEqualsDirect(t *testing.T) {
	// Reducing at t1 and then at t2 equals reducing directly at t2: the
	// gradual process the paper describes is confluent.
	p, s := paperSpec(t)
	step1 := reduceAt(t, s, p.MO, "2000/6/5")
	step2 := reduceAt(t, s, step1.MO, "2000/11/5")
	direct := reduceAt(t, s, p.MO, "2000/11/5")
	if step2.MO.Dump() != direct.MO.Dump() {
		t.Errorf("incremental and direct reduction differ:\n%s\nvs\n%s",
			step2.MO.Dump(), direct.MO.Dump())
	}
}

func TestMergedNameFallback(t *testing.T) {
	p, s := paperSpec(t)
	// Rename a source so the fact_<digits> scheme breaks.
	mo := p.MO.Clone()
	mo.SetName(p.Facts[0], "clickA")
	res, err := Reduce(s, mo, day(t, "2000/11/5"))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for f := 0; f < res.MO.Len(); f++ {
		if strings.HasPrefix(res.MO.Name(mdm.FactID(f)), "agg(") {
			found = true
		}
	}
	if !found {
		t.Errorf("fallback name not used:\n%s", res.MO.Dump())
	}
}

func TestCellErrorsOnCrossingHackedSpec(t *testing.T) {
	// Failure injection: Cell surfaces an error when the specified
	// granularities have no maximum. We bypass Insert's checks by
	// building two specs and merging their action lists through the
	// public API is impossible — so instead check MaxGranularity's error
	// through SpecGran on a spec whose actions cross for a hypothetical
	// fact. Constructing such a spec via New fails, which is itself the
	// guarantee; assert that here.
	p := dims.MustPaperMO()
	env, err := spec.NewEnv(p.Schema, "Time", p.Time)
	if err != nil {
		t.Fatal(err)
	}
	a2 := spec.MustCompileString("a2", srcA2, env)
	c3 := spec.MustCompileString("c3", `aggregate [Time.month, URL.domain_grp] where URL.domain_grp = ".com" and Time.month <= 1999/12`, env)
	if _, err := spec.New(env, a2, c3); err == nil {
		t.Error("crossing spec accepted by New")
	}
}

// TestReduceConservationQuick drives Reduce with randomized measure
// values and times via testing/quick: for any assignment, SUM totals
// are conserved and fact counts never increase.
func TestReduceConservationQuick(t *testing.T) {
	p, s := paperSpec(t)
	base := day(t, "2000/1/1")
	f := func(dwell [7]uint16, dayOffset uint16) bool {
		mo := p.MO.Clone()
		var want float64
		for i := 0; i < 7; i++ {
			mo.SetMeasure(mdm.FactID(i), 1, float64(dwell[i]))
			want += float64(dwell[i])
		}
		at := base + caltime.Day(dayOffset%1200)
		res, err := Reduce(s, mo, at)
		if err != nil {
			return false
		}
		return res.MO.TotalMeasure(1) == want && res.MO.Len() <= mo.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
