package workload

import (
	"errors"
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/mdm"
)

func TestGenerateClicksDeterministic(t *testing.T) {
	cfg := ClickConfig{Seed: 42, Start: caltime.Date(2000, 1, 1), Days: 5, ClicksPerDay: 20}
	collect := func() []Click {
		var out []Click
		if err := GenerateClicks(cfg, func(c Click) error { out = append(out, c); return nil }); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := collect(), collect()
	if len(a) != 100 || len(b) != 100 {
		t.Fatalf("clicks = %d, %d; want 100", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generation not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Days are in order and within range.
	for _, c := range a {
		if c.Day < cfg.Start || c.Day >= cfg.Start+5 {
			t.Errorf("day %v out of range", c.Day)
		}
		if c.Dwell <= 0 || c.SizeKB <= 0 {
			t.Errorf("bad measures: %+v", c)
		}
	}
}

func TestGenerateClicksStopsOnError(t *testing.T) {
	cfg := ClickConfig{Seed: 1, Start: 0, Days: 10, ClicksPerDay: 10}
	boom := errors.New("boom")
	n := 0
	err := GenerateClicks(cfg, func(Click) error {
		n++
		if n == 7 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || n != 7 {
		t.Errorf("err=%v n=%d", err, n)
	}
}

func TestZipfSkew(t *testing.T) {
	// The most popular URL should receive far more clicks than the
	// median one.
	cfg := ClickConfig{Seed: 7, Start: 0, Days: 10, ClicksPerDay: 500, Domains: 10, URLsPerDomain: 10}
	counts := map[string]int{}
	if err := GenerateClicks(cfg, func(c Click) error { counts[c.URL]++; return nil }); err != nil {
		t.Fatal(err)
	}
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	if max < 1000 { // out of 5000 clicks, the head should dominate
		t.Errorf("head url count = %d; distribution not skewed", max)
	}
}

func TestBuildClickMO(t *testing.T) {
	cfg := ClickConfig{Seed: 3, Start: caltime.Date(1999, 11, 1), Days: 14, ClicksPerDay: 30, Domains: 6, URLsPerDomain: 4}
	obj, err := BuildClickMO(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if obj.MO.Len() != 14*30 {
		t.Fatalf("facts = %d", obj.MO.Len())
	}
	// All facts at bottom granularity.
	g := obj.MO.Gran(0)
	if obj.Schema.GranString(g) != "(Time.day, URL.url)" {
		t.Errorf("granularity = %s", obj.Schema.GranString(g))
	}
	// The Time dimension covers the generated range sparsely.
	min, max, ok := obj.Time.Range()
	if !ok || min != cfg.Start || max != cfg.Start+13 {
		t.Errorf("time range = %v..%v", min, max)
	}
	// Number_of sums to the click count.
	if got := obj.MO.TotalMeasure(0); got != float64(obj.MO.Len()) {
		t.Errorf("Number_of total = %v", got)
	}
	// URL groups respected.
	if got := len(obj.URL.ValuesIn(obj.URL.Group)); got != 3 {
		t.Errorf("groups = %d", got)
	}
}

func TestBuildRetailMO(t *testing.T) {
	cfg := RetailConfig{Seed: 5, Start: caltime.Date(2020, 1, 1), Days: 10, SalesPerDay: 20, Stores: 6, Products: 15}
	obj, err := BuildRetailMO(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if obj.MO.Len() != 200 {
		t.Fatalf("facts = %d", obj.MO.Len())
	}
	if obj.Schema.NumDims() != 3 {
		t.Error("retail schema should have 3 dimensions")
	}
	// Store hierarchy: 6 stores over 2 cities over 1 region.
	if got := len(obj.Store.ValuesIn(obj.Store.Levels[0])); got != 6 {
		t.Errorf("stores = %d", got)
	}
	if got := len(obj.Store.ValuesIn(obj.Store.Levels[1])); got != 2 {
		t.Errorf("cities = %d", got)
	}
	// Amount total is positive and reproducible.
	a1 := obj.MO.TotalMeasure(1)
	obj2, err := BuildRetailMO(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a2 := obj2.MO.TotalMeasure(1); a1 != a2 || a1 <= 0 {
		t.Errorf("amount totals %v vs %v", a1, a2)
	}
	_ = mdm.FactID(0)
}
