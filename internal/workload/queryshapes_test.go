package workload

import "testing"

func TestSkewedShapesDeterministicAndInRange(t *testing.T) {
	cfg := QueryMixConfig{Seed: 7, Shapes: 6}
	a, err := SkewedShapes(cfg, 5000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SkewedShapes(cfg, 5000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("not deterministic at %d: %d vs %d", i, a[i], b[i])
		}
		if a[i] < 0 || a[i] >= cfg.Shapes {
			t.Fatalf("shape %d out of range at %d", a[i], i)
		}
	}
	if c, err := SkewedShapes(QueryMixConfig{Seed: 8, Shapes: 6}, 5000); err != nil || c[0] == a[0] && c[1] == a[1] && c[2] == a[2] && c[3] == a[3] && c[4] == a[4] && c[5] == a[5] {
		t.Fatalf("different seeds produced the same prefix (err=%v)", err)
	}
}

func TestSkewedShapesDistribution(t *testing.T) {
	const n = 20000
	cfg := QueryMixConfig{Seed: 42, Shapes: 6}
	shapes, err := SkewedShapes(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, cfg.Shapes)
	for _, s := range shapes {
		counts[s]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("shape %d never drawn in %d samples", i, n)
		}
	}
	// Zipf skew: the head shape dominates and frequencies fall with
	// rank. Adjacent ranks can jitter at this sample size; head versus
	// mid versus tail must not.
	if counts[0] < 2*counts[2] {
		t.Errorf("head shape not dominant: counts=%v", counts)
	}
	if counts[2] < counts[5] {
		t.Errorf("mid rank rarer than tail: counts=%v", counts)
	}
	if counts[0] < n/3 {
		t.Errorf("head shape has %d of %d samples; want a heavy head, counts=%v", counts[0], n, counts)
	}
}

func TestSkewedShapesRejectsEmptyCatalog(t *testing.T) {
	if _, err := SkewedShapes(QueryMixConfig{Seed: 1}, 10); err == nil {
		t.Fatal("empty catalog accepted")
	}
}
