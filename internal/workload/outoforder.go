package workload

import (
	"math/rand"
	"sort"

	"dimred/internal/caltime"
	"dimred/internal/mdm"
)

// OutOfOrderConfig parameterizes the out-of-order click stream: the
// paper's §1 ISP scenario as it actually occurs in production, where
// facts arrive continuously and a fraction of them arrive days after
// the event they record — potentially after the warehouse has already
// reduced the region their day falls in.
type OutOfOrderConfig struct {
	ClickConfig
	// LateFraction is the probability a click arrives after its event
	// day, clamped to [0, 1]; 0 disables lateness.
	LateFraction float64
	// MeanLateDays is the mean of the exponential lateness distribution
	// for late clicks; default MaxLateDays/4.
	MeanLateDays float64
	// MaxLateDays caps the lateness of any single click; default 45 —
	// comfortably past a "reduce after a month" action's horizon, so a
	// late tail lands inside reduced regions.
	MaxLateDays int
}

func (c OutOfOrderConfig) withDefaults() OutOfOrderConfig {
	c.ClickConfig = c.ClickConfig.withDefaults()
	if c.LateFraction < 0 {
		c.LateFraction = 0
	}
	if c.LateFraction > 1 {
		c.LateFraction = 1
	}
	if c.MaxLateDays <= 0 {
		c.MaxLateDays = 45
	}
	if c.MeanLateDays <= 0 {
		c.MeanLateDays = float64(c.MaxLateDays) / 4
	}
	return c
}

// ArrivingClick is a click fact together with its arrival day: the day
// the warehouse learns about it, ≥ the event day it records.
type ArrivingClick struct {
	Click
	Arrival caltime.Day
}

// Late reports whether the click arrived after its event day.
func (a ArrivingClick) Late() bool { return a.Arrival > a.Day }

// GenerateOutOfOrder streams the configured click workload in arrival
// order: each click is generated in event-day order (the same stream
// GenerateClicks yields for the embedded config), assigned an arrival
// day — the event day itself, or for a LateFraction of clicks an
// exponentially distributed number of days later, capped at MaxLateDays
// — and delivered to fn sorted by arrival (stably, so same-arrival
// clicks keep event order). Deterministic under Seed.
func GenerateOutOfOrder(cfg OutOfOrderConfig, fn func(ArrivingClick) error) error {
	cfg = cfg.withDefaults()
	var stream []ArrivingClick
	err := GenerateClicks(cfg.ClickConfig, func(c Click) error {
		stream = append(stream, ArrivingClick{Click: c, Arrival: c.Day})
		return nil
	})
	if err != nil {
		return err
	}
	// A distinct deterministic source for lateness, so the embedded
	// click stream is bit-identical to the in-order one.
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	for i := range stream {
		if cfg.LateFraction == 0 || rng.Float64() >= cfg.LateFraction {
			continue
		}
		late := 1 + int(rng.ExpFloat64()*cfg.MeanLateDays)
		if late > cfg.MaxLateDays {
			late = cfg.MaxLateDays
		}
		stream[i].Arrival += caltime.Day(late)
	}
	sort.SliceStable(stream, func(i, j int) bool { return stream[i].Arrival < stream[j].Arrival })
	for _, a := range stream {
		if err := fn(a); err != nil {
			return err
		}
	}
	return nil
}

// ResolvedArrival is an arriving click with its dimension refs and
// measure vector resolved against a ClickObject's dimensions, ready to
// feed Warehouse.Ingest or Load directly.
type ResolvedArrival struct {
	ArrivingClick
	Refs []mdm.ValueID
	Meas []float64
}

// BuildOutOfOrder materializes the arrival-ordered stream against a
// fresh click schema, returning the object (whose MO holds all facts in
// arrival order) and the stream itself with dimension refs resolved.
func BuildOutOfOrder(cfg OutOfOrderConfig) (*ClickObject, []ResolvedArrival, error) {
	obj, err := NewClickSchema()
	if err != nil {
		return nil, nil, err
	}
	var out []ResolvedArrival
	err = GenerateOutOfOrder(cfg, func(a ArrivingClick) error {
		refs, meas, err := obj.Row(a.Click)
		if err != nil {
			return err
		}
		if _, err := obj.MO.AddFact(refs, meas); err != nil {
			return err
		}
		out = append(out, ResolvedArrival{ArrivingClick: a, Refs: refs, Meas: meas})
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return obj, out, nil
}
