package workload

import (
	"testing"

	"dimred/internal/caltime"
)

func outOfOrderCfg() OutOfOrderConfig {
	return OutOfOrderConfig{
		ClickConfig: ClickConfig{
			Seed: 42, Start: caltime.Date(2000, 1, 1),
			Days: 60, ClicksPerDay: 20, Domains: 5, URLsPerDomain: 3,
		},
		LateFraction: 0.3,
		MaxLateDays:  40,
	}
}

func collect(t *testing.T, cfg OutOfOrderConfig) []ArrivingClick {
	t.Helper()
	var out []ArrivingClick
	if err := GenerateOutOfOrder(cfg, func(a ArrivingClick) error {
		out = append(out, a)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestOutOfOrderDeterministicAndComplete(t *testing.T) {
	cfg := outOfOrderCfg()
	a, b := collect(t, cfg), collect(t, cfg)
	if len(a) != cfg.Days*cfg.ClicksPerDay {
		t.Fatalf("stream has %d clicks, want %d", len(a), cfg.Days*cfg.ClicksPerDay)
	}
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestOutOfOrderArrivalInvariants(t *testing.T) {
	cfg := outOfOrderCfg()
	stream := collect(t, cfg)
	late := 0
	var prev caltime.Day
	for i, a := range stream {
		if a.Arrival < a.Day {
			t.Fatalf("click %d arrives before its event day: %+v", i, a)
		}
		if d := int(a.Arrival - a.Day); d > cfg.MaxLateDays {
			t.Fatalf("click %d is %d days late, cap is %d", i, d, cfg.MaxLateDays)
		}
		if i > 0 && a.Arrival < prev {
			t.Fatalf("arrivals out of order at %d: %v after %v", i, a.Arrival, prev)
		}
		prev = a.Arrival
		if a.Late() {
			late++
		}
	}
	frac := float64(late) / float64(len(stream))
	if frac < cfg.LateFraction/2 || frac > cfg.LateFraction*2 {
		t.Fatalf("late fraction %.3f far from configured %.3f", frac, cfg.LateFraction)
	}
}

// TestOutOfOrderEmbedsClickStream pins that the event stream is the
// same clicks GenerateClicks yields for the embedded config — lateness
// only reschedules arrivals, it never invents or drops facts.
func TestOutOfOrderEmbedsClickStream(t *testing.T) {
	cfg := outOfOrderCfg()
	var plain []Click
	if err := GenerateClicks(cfg.ClickConfig, func(c Click) error {
		plain = append(plain, c)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	seen := map[Click]int{}
	for _, a := range collect(t, cfg) {
		seen[a.Click]++
	}
	want := map[Click]int{}
	for _, c := range plain {
		want[c]++
	}
	if len(seen) != len(want) {
		t.Fatalf("distinct clicks %d vs %d", len(seen), len(want))
	}
	for c, n := range want {
		if seen[c] != n {
			t.Fatalf("click %+v count %d, want %d", c, seen[c], n)
		}
	}
}

func TestOutOfOrderZeroLateFractionIsInOrder(t *testing.T) {
	cfg := outOfOrderCfg()
	cfg.LateFraction = 0
	for i, a := range collect(t, cfg) {
		if a.Late() {
			t.Fatalf("click %d late with LateFraction 0: %+v", i, a)
		}
	}
}

func TestBuildOutOfOrderResolvesRefs(t *testing.T) {
	cfg := outOfOrderCfg()
	obj, stream, err := BuildOutOfOrder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if obj.MO.Len() != len(stream) || len(stream) != cfg.Days*cfg.ClicksPerDay {
		t.Fatalf("MO has %d facts, stream %d, want %d", obj.MO.Len(), len(stream), cfg.Days*cfg.ClicksPerDay)
	}
	for i, r := range stream {
		if len(r.Refs) != 2 || len(r.Meas) != 4 {
			t.Fatalf("row %d unresolved: %+v", i, r)
		}
	}
}
