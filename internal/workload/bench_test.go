package workload

import (
	"testing"

	"dimred/internal/caltime"
)

func BenchmarkGenerateClicks(b *testing.B) {
	cfg := ClickConfig{Seed: 1, Start: caltime.Date(2000, 1, 1), Days: 30, ClicksPerDay: 1000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := GenerateClicks(cfg, func(Click) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(30000, "clicks/op")
}

func BenchmarkBuildRetailMO(b *testing.B) {
	cfg := RetailConfig{Seed: 1, Start: caltime.Date(2020, 1, 1), Days: 30, SalesPerDay: 200}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildRetailMO(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
