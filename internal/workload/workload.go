// Package workload generates synthetic datasets for the experiments:
// an ISP click-stream in the shape of the paper's Section 2 scenario
// (Zipf-distributed URL popularity, time-ordered arrivals over a day
// range) and a retail sales stream matching the paper's introductory
// example ("sums of sales should be aggregated from the daily to the
// monthly level when between six months and three years old"). All
// generation is deterministic under a seed.
package workload

import (
	"fmt"
	"math/rand"

	"dimred/internal/caltime"
	"dimred/internal/dims"
	"dimred/internal/mdm"
)

// ClickConfig parameterizes the click-stream generator.
type ClickConfig struct {
	Seed          int64
	Start         caltime.Day // first day of the stream
	Days          int         // number of days
	ClicksPerDay  int
	Domains       int      // number of second-level domains
	URLsPerDomain int      // distinct urls per domain
	Groups        []string // top-level groups; default {".com", ".edu", ".org"}
	ZipfS         float64  // Zipf skew (> 1); default 1.3
}

func (c ClickConfig) withDefaults() ClickConfig {
	if len(c.Groups) == 0 {
		c.Groups = []string{".com", ".edu", ".org"}
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.3
	}
	if c.Domains <= 0 {
		c.Domains = 20
	}
	if c.URLsPerDomain <= 0 {
		c.URLsPerDomain = 10
	}
	if c.Days <= 0 {
		c.Days = 30
	}
	if c.ClicksPerDay <= 0 {
		c.ClicksPerDay = 100
	}
	return c
}

// Click is one generated click fact: measures follow the paper's fact
// signature (Number_of, Dwell_time, Delivery_time, Datasize).
type Click struct {
	Day      caltime.Day
	URL      string
	Dwell    float64
	Delivery float64
	SizeKB   float64
}

// GenerateClicks streams the click facts in day order, calling fn for
// each; generation stops at the first error.
func GenerateClicks(cfg ClickConfig, fn func(Click) error) error {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	nURLs := cfg.Domains * cfg.URLsPerDomain
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(nURLs-1))
	if zipf == nil {
		return fmt.Errorf("workload: invalid Zipf parameters (s=%v)", cfg.ZipfS)
	}
	for day := 0; day < cfg.Days; day++ {
		d := cfg.Start + caltime.Day(day)
		for i := 0; i < cfg.ClicksPerDay; i++ {
			u := int(zipf.Uint64())
			click := Click{
				Day:      d,
				URL:      urlName(cfg, u),
				Dwell:    float64(1 + rng.Intn(600)),
				Delivery: float64(1 + rng.Intn(10)),
				SizeKB:   float64(1 + rng.Intn(100)),
			}
			if err := fn(click); err != nil {
				return err
			}
		}
	}
	return nil
}

// urlName derives the i'th URL of the pool: domains rotate through the
// groups, urls are paths under the domain.
func urlName(cfg ClickConfig, i int) string {
	domain := i / cfg.URLsPerDomain
	path := i % cfg.URLsPerDomain
	group := cfg.Groups[domain%len(cfg.Groups)]
	return fmt.Sprintf("http://www.site%d%s/page/%d", domain, group, path)
}

// ClickObject bundles a generated click-stream MO with its dimensions,
// mirroring dims.PaperObject.
type ClickObject struct {
	MO     *mdm.MO
	Schema *mdm.Schema
	Time   *dims.TimeDim
	URL    *dims.URLDim
}

// NewClickSchema constructs the click-stream schema over fresh Time and
// URL dimensions.
func NewClickSchema() (*ClickObject, error) {
	td := dims.NewTimeDim()
	ud := dims.NewURLDim()
	schema, err := mdm.NewSchema("Click",
		[]*mdm.Dimension{td.Dimension, ud.Dimension},
		[]mdm.Measure{
			{Name: "Number_of", Agg: mdm.AggSum},
			{Name: "Dwell_time", Agg: mdm.AggSum},
			{Name: "Delivery_time", Agg: mdm.AggSum},
			{Name: "Datasize", Agg: mdm.AggSum},
		})
	if err != nil {
		return nil, err
	}
	obj := &ClickObject{Schema: schema, Time: td, URL: ud}
	obj.MO = mdm.NewMO(schema)
	return obj, nil
}

// Row converts a click to a bottom-granularity fact row against the
// object's dimensions, creating dimension values as needed.
func (o *ClickObject) Row(c Click) ([]mdm.ValueID, []float64, error) {
	dv := o.Time.EnsureDay(c.Day)
	uv, err := o.URL.EnsureURL(c.URL)
	if err != nil {
		return nil, nil, err
	}
	return []mdm.ValueID{dv, uv}, []float64{1, c.Dwell, c.Delivery, c.SizeKB}, nil
}

// BuildClickMO generates the configured click-stream into a fresh MO.
func BuildClickMO(cfg ClickConfig) (*ClickObject, error) {
	obj, err := NewClickSchema()
	if err != nil {
		return nil, err
	}
	err = GenerateClicks(cfg, func(c Click) error {
		refs, meas, err := obj.Row(c)
		if err != nil {
			return err
		}
		_, err = obj.MO.AddFact(refs, meas)
		return err
	})
	if err != nil {
		return nil, err
	}
	return obj, nil
}

// RetailConfig parameterizes the retail sales generator.
type RetailConfig struct {
	Seed        int64
	Start       caltime.Day
	Days        int
	SalesPerDay int
	Stores      int // stores, grouped into cities and regions
	Products    int // products, grouped into categories and departments
}

func (c RetailConfig) withDefaults() RetailConfig {
	if c.Days <= 0 {
		c.Days = 30
	}
	if c.SalesPerDay <= 0 {
		c.SalesPerDay = 50
	}
	if c.Stores <= 0 {
		c.Stores = 12
	}
	if c.Products <= 0 {
		c.Products = 40
	}
	return c
}

// RetailObject bundles a generated retail MO with its dimensions.
type RetailObject struct {
	MO      *mdm.MO
	Schema  *mdm.Schema
	Time    *dims.TimeDim
	Store   *dims.LinearDim
	Product *dims.LinearDim
}

// BuildRetailMO generates a three-dimensional retail sales MO: Time ×
// Store (store < city < region) × Product (product < category <
// department), with SUM measures Quantity and Amount.
func BuildRetailMO(cfg RetailConfig) (*RetailObject, error) {
	cfg = cfg.withDefaults()
	td := dims.NewTimeDim()
	sd, err := dims.NewLinearDim("Store", "store", "city", "region")
	if err != nil {
		return nil, err
	}
	pd, err := dims.NewLinearDim("Product", "product", "category", "department")
	if err != nil {
		return nil, err
	}
	schema, err := mdm.NewSchema("Sale",
		[]*mdm.Dimension{td.Dimension, sd.Dimension, pd.Dimension},
		[]mdm.Measure{
			{Name: "Quantity", Agg: mdm.AggSum},
			{Name: "Amount", Agg: mdm.AggSum},
		})
	if err != nil {
		return nil, err
	}
	obj := &RetailObject{MO: mdm.NewMO(schema), Schema: schema, Time: td, Store: sd, Product: pd}

	rng := rand.New(rand.NewSource(cfg.Seed))
	storeVals := make([]mdm.ValueID, cfg.Stores)
	for i := range storeVals {
		city := i / 3
		region := city / 2
		storeVals[i], err = sd.Ensure(
			fmt.Sprintf("store-%d", i),
			fmt.Sprintf("city-%d", city),
			fmt.Sprintf("region-%d", region))
		if err != nil {
			return nil, err
		}
	}
	productVals := make([]mdm.ValueID, cfg.Products)
	for i := range productVals {
		cat := i / 5
		dept := cat / 3
		productVals[i], err = pd.Ensure(
			fmt.Sprintf("product-%d", i),
			fmt.Sprintf("category-%d", cat),
			fmt.Sprintf("department-%d", dept))
		if err != nil {
			return nil, err
		}
	}
	for day := 0; day < cfg.Days; day++ {
		dv := td.EnsureDay(cfg.Start + caltime.Day(day))
		for i := 0; i < cfg.SalesPerDay; i++ {
			qty := float64(1 + rng.Intn(5))
			price := float64(1+rng.Intn(200)) / 2
			_, err := obj.MO.AddFact(
				[]mdm.ValueID{dv, storeVals[rng.Intn(cfg.Stores)], productVals[rng.Intn(cfg.Products)]},
				[]float64{qty, qty * price})
			if err != nil {
				return nil, err
			}
		}
	}
	return obj, nil
}
