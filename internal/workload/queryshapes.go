package workload

import (
	"fmt"
	"math/rand"
)

// QueryMixConfig parameterizes the Zipf-skewed query-shape generator:
// real OLAP workloads ask a few Group_high levels over and over (the
// dashboard queries) with a long tail of ad-hoc shapes, which is
// exactly the regime where a greedy benefit-per-byte view selector
// wins. Shape index 0 is the most popular.
type QueryMixConfig struct {
	Seed   int64
	Shapes int     // catalog size; indices are drawn from [0, Shapes)
	ZipfS  float64 // Zipf skew (> 1); default 1.5
}

func (c QueryMixConfig) withDefaults() QueryMixConfig {
	if c.ZipfS <= 1 {
		c.ZipfS = 1.5
	}
	return c
}

// SkewedShapes draws n query-shape indices from the Zipf distribution
// over the catalog, deterministically under the seed. The caller maps
// each index to a Group_high level (a parsed query) and replays the
// sequence against the warehouse, both to feed the view selector's
// shape trace and to benchmark view-served against base-path serving.
func SkewedShapes(cfg QueryMixConfig, n int) ([]int, error) {
	cfg = cfg.withDefaults()
	if cfg.Shapes <= 0 {
		return nil, fmt.Errorf("workload: SkewedShapes: catalog size %d", cfg.Shapes)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	z := rand.NewZipf(r, cfg.ZipfS, 1, uint64(cfg.Shapes-1))
	out := make([]int, n)
	for i := range out {
		out[i] = int(z.Uint64())
	}
	return out, nil
}
