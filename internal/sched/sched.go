// Package sched schedules subcube synchronization per Section 7.2 of
// the paper: subcubes get un-synchronized only when time passes or data
// is bulk-loaded, and it suffices to synchronize on every bulk load and
// "at least once per significant time period, the second-lowest
// granularity at which the NOW-variable is used in an action" — then a
// fact is never more than one parent-child generation out of place,
// which is the assumption the un-synchronized query strategy relies on.
package sched

import (
	"dimred/internal/caltime"
	"dimred/internal/spec"
	"dimred/internal/subcube"
)

// SignificantPeriod derives the synchronization period from a
// specification: the second-lowest calendar unit among the NOW-relative
// constraints (the lowest when only one unit occurs). ok is false when
// the specification has no NOW-relative action, in which case time alone
// never un-synchronizes the cubes.
func SignificantPeriod(sp *spec.Spec) (caltime.Unit, bool) {
	seen := make(map[caltime.Unit]bool)
	var units []caltime.Unit
	for _, a := range sp.Actions() {
		for _, u := range a.NowUnits(nil) {
			if !seen[u] {
				seen[u] = true
				units = append(units, u)
			}
		}
	}
	if len(units) == 0 {
		return 0, false
	}
	// Order by containment-period length: day < week < month < quarter <
	// year. The Unit constants are already in that order.
	lo, second := units[0], units[0]
	for _, u := range units[1:] {
		if u < lo {
			second = lo
			lo = u
		} else if u < second || second == lo {
			second = u
		}
	}
	if len(units) == 1 {
		return lo, true
	}
	return second, true
}

// Scheduler drives a cube set's synchronization against a virtual clock.
type Scheduler struct {
	cubes  *subcube.CubeSet
	unit   caltime.Unit
	timed  bool // time passage requires syncing
	now    caltime.Day
	synced bool
	// Syncs counts synchronizations performed, for experiments.
	Syncs int
	// Moved counts rows migrated across all synchronizations.
	Moved int
}

// New derives a scheduler for the cube set's specification.
func New(cs *subcube.CubeSet) *Scheduler {
	u, ok := SignificantPeriod(cs.Spec())
	return &Scheduler{cubes: cs, unit: u, timed: ok}
}

// Unit returns the significant period's unit; ok is false when time
// passage never requires synchronization.
func (s *Scheduler) Unit() (caltime.Unit, bool) { return s.unit, s.timed }

// Now returns the scheduler's current clock.
func (s *Scheduler) Now() caltime.Day { return s.now }

// AdvanceTo moves the clock to t, synchronizing when a significant
// period boundary was crossed since the last synchronization. It reports
// whether a synchronization ran.
func (s *Scheduler) AdvanceTo(t caltime.Day) (bool, error) {
	if t < s.now {
		return false, nil // the clock never runs backwards
	}
	prev := s.now
	s.now = t
	if !s.timed {
		return false, nil
	}
	if s.synced && caltime.PeriodOf(prev, s.unit) == caltime.PeriodOf(t, s.unit) {
		return false, nil
	}
	return true, s.syncNow()
}

// OnBulkLoad synchronizes after a bulk load, as the paper prescribes
// ("synchronization is scheduled at the time of insertion").
func (s *Scheduler) OnBulkLoad() error { return s.syncNow() }

// Restore re-applies snapshot bookkeeping without synchronizing.
func (s *Scheduler) Restore(now caltime.Day, synced bool) {
	s.now, s.synced = now, synced
}

func (s *Scheduler) syncNow() error {
	met := s.cubes.Metrics()
	clk := met.Clock()
	start := clk.Now()
	moved, err := s.cubes.Sync(s.now)
	if err != nil {
		return err
	}
	met.Syncs.Inc()
	met.SyncDuration.Observe(clk.Since(start))
	s.Syncs++
	s.Moved += moved
	s.synced = true
	return nil
}
