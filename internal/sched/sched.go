// Package sched schedules subcube synchronization per Section 7.2 of
// the paper: subcubes get un-synchronized only when time passes or data
// is bulk-loaded, and it suffices to synchronize on every bulk load and
// "at least once per significant time period, the second-lowest
// granularity at which the NOW-variable is used in an action" — then a
// fact is never more than one parent-child generation out of place,
// which is the assumption the un-synchronized query strategy relies on.
package sched

import (
	"dimred/internal/caltime"
	"dimred/internal/spec"
	"dimred/internal/subcube"
)

// SignificantPeriod derives the synchronization period from a
// specification: the second-lowest calendar unit among the NOW-relative
// constraints (the lowest when only one unit occurs). ok is false when
// the specification has no NOW-relative action, in which case time alone
// never un-synchronizes the cubes.
func SignificantPeriod(sp *spec.Spec) (caltime.Unit, bool) {
	seen := make(map[caltime.Unit]bool)
	var units []caltime.Unit
	for _, a := range sp.Actions() {
		for _, u := range a.NowUnits(nil) {
			if !seen[u] {
				seen[u] = true
				units = append(units, u)
			}
		}
	}
	if len(units) == 0 {
		return 0, false
	}
	// Order by containment-period length: day < week < month < quarter <
	// year. The Unit constants are already in that order.
	lo, second := units[0], units[0]
	for _, u := range units[1:] {
		if u < lo {
			second = lo
			lo = u
		} else if u < second || second == lo {
			second = u
		}
	}
	if len(units) == 1 {
		return lo, true
	}
	return second, true
}

// Scheduler decides when a cube set must synchronize against a virtual
// clock. It holds no reference to the cubes themselves: the caller asks
// AdvanceTo whether a clock move crossed a significant-period boundary,
// performs the synchronization against whichever cube set it owns (the
// epoch-snapshot warehouse applies it to both of its sides), and
// reports back with NoteSync. SyncNow packages the common
// single-cube-set case.
type Scheduler struct {
	unit   caltime.Unit
	timed  bool // time passage requires syncing
	now    caltime.Day
	synced bool
	// Syncs counts synchronizations reported via NoteSync, for
	// experiments.
	Syncs int
	// Moved counts rows migrated across all reported synchronizations.
	Moved int
}

// New derives a scheduler for the specification.
func New(sp *spec.Spec) *Scheduler {
	u, ok := SignificantPeriod(sp)
	return &Scheduler{unit: u, timed: ok}
}

// Unit returns the significant period's unit; ok is false when time
// passage never requires synchronization.
func (s *Scheduler) Unit() (caltime.Unit, bool) { return s.unit, s.timed }

// Now returns the scheduler's current clock.
func (s *Scheduler) Now() caltime.Day { return s.now }

// AdvanceTo moves the clock to t and reports whether the caller must
// synchronize: a significant-period boundary was crossed since the last
// reported synchronization (or none ever ran). A true return obliges
// the caller to run the synchronization and report it with NoteSync;
// skipping it leaves the scheduler demanding a sync on every subsequent
// advance.
func (s *Scheduler) AdvanceTo(t caltime.Day) bool {
	if t < s.now {
		return false // the clock never runs backwards
	}
	prev := s.now
	s.now = t
	if !s.timed {
		return false
	}
	if s.synced && caltime.PeriodOf(prev, s.unit) == caltime.PeriodOf(t, s.unit) {
		return false
	}
	return true
}

// NoteSync records a completed synchronization that moved the given
// number of rows, satisfying the obligation created by AdvanceTo (and
// the bulk-load rule: the paper schedules synchronization at the time
// of insertion, so loaders call it after their post-load sync too).
func (s *Scheduler) NoteSync(moved int) {
	s.Syncs++
	s.Moved += moved
	s.synced = true
}

// Restore re-applies snapshot bookkeeping without synchronizing.
func (s *Scheduler) Restore(now caltime.Day, synced bool) {
	s.now, s.synced = now, synced
}

// SyncNow synchronizes cs at the scheduler's clock, timing the round
// into the cube set's metric set and reporting it to the scheduler. It
// is the single-cube-set driver used by tests and experiments; the
// warehouse owns two cube-set sides and runs the equivalent sequence
// itself.
func SyncNow(s *Scheduler, cs *subcube.CubeSet) error {
	met := cs.Metrics()
	clk := met.Clock()
	start := clk.Now()
	moved, err := cs.Sync(s.Now())
	if err != nil {
		return err
	}
	met.Syncs.Inc()
	met.SyncDuration.Observe(clk.Since(start))
	s.NoteSync(moved)
	return nil
}
