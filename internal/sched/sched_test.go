package sched

import (
	"testing"
	"time"

	"dimred/internal/caltime"
	"dimred/internal/dims"
	"dimred/internal/obs"
	"dimred/internal/spec"
	"dimred/internal/subcube"
)

func buildSpec(t *testing.T, actions ...string) (*dims.PaperObject, *spec.Spec) {
	t.Helper()
	p := dims.MustPaperMO()
	env, err := spec.NewEnv(p.Schema, "Time", p.Time)
	if err != nil {
		t.Fatal(err)
	}
	var compiled []*spec.Action
	for i, src := range actions {
		compiled = append(compiled, spec.MustCompileString(
			[]string{"x1", "x2", "x3"}[i], src, env))
	}
	s, err := spec.New(env, compiled...)
	if err != nil {
		t.Fatal(err)
	}
	return p, s
}

func TestSignificantPeriod(t *testing.T) {
	// The paper's example: NOW at month and quarter granularity →
	// synchronize once per quarter.
	_, s := buildSpec(t,
		`aggregate [Time.month, URL.domain] where URL.domain_grp = ".com" and NOW - 12 months < Time.month and Time.month <= NOW - 6 months`,
		`aggregate [Time.quarter, URL.domain] where URL.domain_grp = ".com" and Time.quarter <= NOW - 4 quarters`)
	u, ok := SignificantPeriod(s)
	if !ok || u != caltime.UnitQuarter {
		t.Errorf("period = %v, %v; want quarter", u, ok)
	}

	// A single NOW unit gives that unit.
	_, s2 := buildSpec(t,
		`aggregate [Time.month, URL.domain] where Time.month <= NOW - 6 months`)
	u, ok = SignificantPeriod(s2)
	if !ok || u != caltime.UnitMonth {
		t.Errorf("period = %v, %v; want month", u, ok)
	}

	// No NOW usage: time passage never un-synchronizes.
	_, s3 := buildSpec(t,
		`aggregate [Time.month, URL.domain] where Time.month <= 1999/12`)
	if _, ok := SignificantPeriod(s3); ok {
		t.Error("fixed spec should have no significant period")
	}
}

func TestSchedulerAdvance(t *testing.T) {
	p, s := buildSpec(t,
		`aggregate [Time.month, URL.domain] where Time.month <= NOW - 6 months`)
	cs, err := subcube.New(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.InsertMO(p.MO); err != nil {
		t.Fatal(err)
	}
	sc := New(s)
	if u, ok := sc.Unit(); !ok || u != caltime.UnitMonth {
		t.Fatalf("unit = %v %v", u, ok)
	}
	// First advance synchronizes.
	if !sc.AdvanceTo(caltime.Date(2000, 3, 10)) {
		t.Fatal("first advance did not demand a sync")
	}
	if err := SyncNow(sc, cs); err != nil {
		t.Fatal(err)
	}
	// Same month: no re-sync.
	if sc.AdvanceTo(caltime.Date(2000, 3, 25)) {
		t.Error("same-month advance demanded a sync")
	}
	// Next month: sync again, and the June-1999-or-older facts migrate.
	if !sc.AdvanceTo(caltime.Date(2000, 6, 2)) {
		t.Error("cross-month advance did not demand a sync")
	} else if err := SyncNow(sc, cs); err != nil {
		t.Fatal(err)
	}
	if sc.Syncs != 2 {
		t.Errorf("Syncs = %d", sc.Syncs)
	}
	if sc.Moved == 0 {
		t.Error("no rows migrated by 2000/6")
	}
	// Clock never runs backwards.
	if sc.AdvanceTo(caltime.Date(2000, 1, 1)) {
		t.Error("backwards advance demanded a sync")
	}
	if sc.Now() != caltime.Date(2000, 6, 2) {
		t.Error("backwards advance moved the clock")
	}
	// Bulk load forces a sync regardless of period.
	if err := SyncNow(sc, cs); err != nil {
		t.Fatal(err)
	}
	if sc.Syncs != 3 {
		t.Errorf("Syncs after bulk load = %d", sc.Syncs)
	}
}

// TestSyncLatencyDeterministic drives the scheduler against the obs
// fake clock: each sync round brackets its work with one Now/Since
// pair, and with a 5ms step per read the latency histogram must record
// exactly one 5ms observation per round — no flaky wall-clock slack.
func TestSyncLatencyDeterministic(t *testing.T) {
	p, s := buildSpec(t,
		`aggregate [Time.month, URL.domain] where Time.month <= NOW - 6 months`)
	cs, err := subcube.New(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.InsertMO(p.MO); err != nil {
		t.Fatal(err)
	}
	const step = 5 * time.Millisecond
	clk := obs.NewFakeClock(time.Date(2000, 3, 1, 0, 0, 0, 0, time.UTC))
	clk.SetStep(step)
	cs.Metrics().SetClock(clk)

	sc := New(s)
	for _, d := range []caltime.Day{caltime.Date(2000, 3, 10), caltime.Date(2000, 4, 2)} {
		if sc.AdvanceTo(d) {
			if err := SyncNow(sc, cs); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := SyncNow(sc, cs); err != nil { // bulk-load sync
		t.Fatal(err)
	}
	h := cs.Metrics().SyncDuration.Snapshot()
	if h.Count != 3 {
		t.Fatalf("sync latency count = %d, want 3", h.Count)
	}
	if h.Max != step || h.Mean != step || h.Sum != 3*step {
		t.Errorf("sync latency max=%v mean=%v sum=%v, want %v/%v/%v",
			h.Max, h.Mean, h.Sum, step, step, 3*step)
	}
}

func TestSchedulerFixedSpecNeverTimesOut(t *testing.T) {
	p, s := buildSpec(t,
		`aggregate [Time.month, URL.domain] where Time.month <= 1999/12`)
	cs, err := subcube.New(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.InsertMO(p.MO); err != nil {
		t.Fatal(err)
	}
	sc := New(s)
	for _, d := range []caltime.Day{caltime.Date(2000, 1, 1), caltime.Date(2003, 1, 1)} {
		if sc.AdvanceTo(d) {
			t.Errorf("fixed spec demanded a sync at %v", d)
		}
	}
	// But bulk loads still synchronize.
	if err := SyncNow(sc, cs); err != nil {
		t.Fatal(err)
	}
	if sc.Syncs != 1 {
		t.Errorf("Syncs = %d", sc.Syncs)
	}
}
