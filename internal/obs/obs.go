// Package obs is the engine's observability layer: allocation-light
// atomic counters, gauges and fixed-bucket latency histograms, plus an
// optional per-query trace. The paper's whole point is *gradual*
// reduction — storage shrinks and queries change character as NOW
// advances — so the engine must be able to report how many rows a
// synchronization folded, which subcubes a query consulted or pruned,
// and how long the parallel stages took. Every primitive here is safe
// for concurrent use from the parallel scan paths and never allocates
// on the hot path.
package obs

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; negative deltas belong to Gauge).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (row counts, byte totals).
type Gauge struct{ v atomic.Int64 }

// Set overwrites the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the number of exponential latency buckets: bucket i
// counts observations with duration < 2^i microseconds, so the range
// runs from 1µs to ~34s with the last bucket catching everything above.
const histBuckets = 26

// Histogram is a fixed-bucket latency histogram with power-of-two
// microsecond bucket bounds. Observing is two atomic adds and one
// atomic increment; no allocation, no locks.
type Histogram struct {
	count   atomic.Int64
	sumNano atomic.Int64
	maxNano atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sumNano.Add(int64(d))
	for {
		cur := h.maxNano.Load()
		if int64(d) <= cur || h.maxNano.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	h.buckets[bucketFor(d)].Add(1)
}

// Time runs fn and observes its duration.
func (h *Histogram) Time(fn func()) {
	start := time.Now()
	fn()
	h.Observe(time.Since(start))
}

// bucketFor maps a duration to its bucket: the number of bits in the
// microsecond value, capped at the last bucket.
func bucketFor(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	b := bits.Len64(us)
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// bucketBound returns the exclusive upper bound of bucket i.
func bucketBound(i int) time.Duration {
	return time.Duration(1<<uint(i)) * time.Microsecond
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNano.Load()) }

// Max returns the largest observed duration.
func (h *Histogram) Max() time.Duration { return time.Duration(h.maxNano.Load()) }

// Mean returns the average observed duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNano.Load() / n)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) from
// the bucket bounds: the bound of the first bucket whose cumulative
// count reaches q of the total. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	need := int64(math.Ceil(q * float64(total)))
	if need < 1 {
		need = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= need {
			// The bucket bound is an upper estimate; the observed max
			// is a tighter one when the quantile lands in the top bucket.
			if b := bucketBound(i); i < histBuckets-1 && b < h.Max() {
				return b
			}
			return h.Max()
		}
	}
	return h.Max()
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count int64
	Sum   time.Duration
	Max   time.Duration
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
}

// Snapshot copies the histogram's current state. Concurrent observers
// may land between the atomic reads; the snapshot is consistent enough
// for reporting, never for accounting.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Max:   h.Max(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// String renders the snapshot on one line.
func (s HistogramSnapshot) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%s p50<%s p95<%s max=%s",
		s.Count, fmtDur(s.Mean), fmtDur(s.P50), fmtDur(s.P95), fmtDur(s.Max))
}

// fmtDur trims a duration to a compact human-readable form.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%dµs", d/time.Microsecond)
	}
}

// pad right-aligns counter rows in the String renderings.
func padLabel(b *strings.Builder, label string) {
	fmt.Fprintf(b, "  %-26s", label)
}
