package obs

import (
	"fmt"
	"strings"
)

// Metrics is the engine-wide metric set, shared by the warehouse
// facade, the scheduler and the subcube engine. One instance is created
// per CubeSet and survives specification rebuilds, so counters are
// cumulative over the warehouse's lifetime. All fields are safe for
// concurrent use.
type Metrics struct {
	// clock times the histogram-observed stages. Nil means System; set
	// it once with SetClock before handing the metric set to concurrent
	// users.
	clock Clock

	// Load path.
	FactsLoaded  Counter // user facts ingested via Load/LoadBatch
	BatchLoads   Counter // LoadBatch calls
	RowsAppended Counter // physical rows appended to any cube store
	RowsMerged   Counter // in-place cell merges (row already present)

	// Clock and synchronization.
	Advances      Counter   // clock advances
	Syncs         Counter   // synchronization rounds
	SyncSkips     Counter   // cubes skipped by the zone-map untouched check
	SyncScanned   Counter   // rows visited by sync mover scans
	RowsFolded    Counter   // rows migrated to a coarser subcube or deleted
	FactsDeleted  Counter   // user facts physically removed by delete actions
	Compactions   Counter   // store compactions reclaiming tombstones
	SpecRebuilds  Counter   // ApplySpec layout rebuilds
	SyncDuration  Histogram // wall time per synchronization round
	QueryDuration Histogram // wall time per cube-set query evaluation

	// Compiled evaluation (specexec).
	ProgramCompiles    Counter // spec→bitset program compilations
	ProgramCacheHits   Counter // program-cache hits (spec generation unchanged)
	ProgramCacheMisses Counter // program-cache misses forcing a compile
	RouterCacheHits    Counter // day-pinned router reuses from the cache
	ProgramProbes      Counter // per-row compiled router probes
	BitsetBytes        Gauge   // bitset bytes retained by the cached program

	// Query path.
	Queries        Counter // cube-set evaluations
	CubesConsulted Counter // subcubes scanned by queries
	CubesPruned    Counter // subcubes skipped by the zone map
	RowsScanned    Counter // rows visited by query scans
	RowsSelected   Counter // scanned rows surviving the predicate

	// Materialized rollup views (warehouse).
	ViewHits   Counter // queries answered from a materialized view
	ViewMisses Counter // view-eligible queries that fell back to the base subcubes
	ViewBuilds Counter // views materialized by commit-path refreshes
	ViewBytes  Gauge   // modeled bytes retained by the published view set

	// Streaming ingest (warehouse delta buffers).
	IngestQueued       Counter   // facts appended to the delta buffer
	IngestCompacted    Counter   // buffered facts folded into the subcube DAG
	IngestLate         Counter   // compacted facts landing inside an already-reduced region
	IngestPending      Gauge     // facts waiting in the delta buffer, refreshed on snapshot
	CompactionDuration Histogram // wall time per delta-fold compaction

	// Epoch-snapshot read path (warehouse).
	SnapshotPublishes  Counter // snapshots published by writers (including clock-only refreshes)
	SnapshotDrainWaits Counter // publishes that had to wait for pinned readers to drain
	SnapshotRebuilds   Counter // sides rebuilt from a full clone after a failed operation
	SnapshotEpoch      Gauge   // sequence number of the currently published snapshot
	SnapshotsRetained  Gauge   // retired snapshots awaiting reader drain and replay

	// Storage gauges, refreshed on snapshot.
	LiveRows  Gauge // live rows across all cubes
	LiveBytes Gauge // modeled fact bytes across all cubes
	DeadRows  Gauge // tombstoned rows awaiting compaction
	DimBytes  Gauge // modeled dimension-table bytes
	CubeCount Gauge // physical subcubes in the layout
}

// NewMetrics creates an empty metric set timed by the System clock.
func NewMetrics() *Metrics { return &Metrics{} }

// Clock returns the clock the engine must use to time the stages this
// metric set observes.
func (m *Metrics) Clock() Clock {
	if m.clock == nil {
		return System
	}
	return m.clock
}

// SetClock substitutes the timing source (a FakeClock in tests). Call
// it before the metric set is shared with concurrent users; the field
// is read without synchronization afterwards.
func (m *Metrics) SetClock(c Clock) { m.clock = c }

// MetricsSnapshot is a point-in-time copy of every metric, safe to
// retain and compare (e.g. before/after a bench run).
type MetricsSnapshot struct {
	FactsLoaded  int64
	BatchLoads   int64
	RowsAppended int64
	RowsMerged   int64

	Advances     int64
	Syncs        int64
	SyncSkips    int64
	SyncScanned  int64
	RowsFolded   int64
	FactsDeleted int64
	Compactions  int64
	SpecRebuilds int64

	ProgramCompiles    int64
	ProgramCacheHits   int64
	ProgramCacheMisses int64
	RouterCacheHits    int64
	ProgramProbes      int64
	BitsetBytes        int64

	Queries        int64
	CubesConsulted int64
	CubesPruned    int64
	RowsScanned    int64
	RowsSelected   int64

	ViewHits   int64
	ViewMisses int64
	ViewBuilds int64
	ViewBytes  int64

	IngestQueued    int64
	IngestCompacted int64
	IngestLate      int64
	IngestPending   int64

	SnapshotPublishes  int64
	SnapshotDrainWaits int64
	SnapshotRebuilds   int64
	SnapshotEpoch      int64
	SnapshotsRetained  int64

	SyncDuration       HistogramSnapshot
	QueryDuration      HistogramSnapshot
	CompactionDuration HistogramSnapshot

	LiveRows  int64
	LiveBytes int64
	DeadRows  int64
	DimBytes  int64
	CubeCount int64
}

// Snapshot copies the current values.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		FactsLoaded:  m.FactsLoaded.Load(),
		BatchLoads:   m.BatchLoads.Load(),
		RowsAppended: m.RowsAppended.Load(),
		RowsMerged:   m.RowsMerged.Load(),

		Advances:     m.Advances.Load(),
		Syncs:        m.Syncs.Load(),
		SyncSkips:    m.SyncSkips.Load(),
		SyncScanned:  m.SyncScanned.Load(),
		RowsFolded:   m.RowsFolded.Load(),
		FactsDeleted: m.FactsDeleted.Load(),
		Compactions:  m.Compactions.Load(),
		SpecRebuilds: m.SpecRebuilds.Load(),

		ProgramCompiles:    m.ProgramCompiles.Load(),
		ProgramCacheHits:   m.ProgramCacheHits.Load(),
		ProgramCacheMisses: m.ProgramCacheMisses.Load(),
		RouterCacheHits:    m.RouterCacheHits.Load(),
		ProgramProbes:      m.ProgramProbes.Load(),
		BitsetBytes:        m.BitsetBytes.Load(),

		Queries:        m.Queries.Load(),
		CubesConsulted: m.CubesConsulted.Load(),
		CubesPruned:    m.CubesPruned.Load(),
		RowsScanned:    m.RowsScanned.Load(),
		RowsSelected:   m.RowsSelected.Load(),

		ViewHits:   m.ViewHits.Load(),
		ViewMisses: m.ViewMisses.Load(),
		ViewBuilds: m.ViewBuilds.Load(),
		ViewBytes:  m.ViewBytes.Load(),

		IngestQueued:    m.IngestQueued.Load(),
		IngestCompacted: m.IngestCompacted.Load(),
		IngestLate:      m.IngestLate.Load(),
		IngestPending:   m.IngestPending.Load(),

		SnapshotPublishes:  m.SnapshotPublishes.Load(),
		SnapshotDrainWaits: m.SnapshotDrainWaits.Load(),
		SnapshotRebuilds:   m.SnapshotRebuilds.Load(),
		SnapshotEpoch:      m.SnapshotEpoch.Load(),
		SnapshotsRetained:  m.SnapshotsRetained.Load(),

		SyncDuration:       m.SyncDuration.Snapshot(),
		QueryDuration:      m.QueryDuration.Snapshot(),
		CompactionDuration: m.CompactionDuration.Snapshot(),

		LiveRows:  m.LiveRows.Load(),
		LiveBytes: m.LiveBytes.Load(),
		DeadRows:  m.DeadRows.Load(),
		DimBytes:  m.DimBytes.Load(),
		CubeCount: m.CubeCount.Load(),
	}
}

// Sub returns the delta snapshot s - prev, counter by counter; the
// histogram and gauge fields keep s's values (deltas of latency
// distributions and instantaneous gauges are not meaningful).
func (s MetricsSnapshot) Sub(prev MetricsSnapshot) MetricsSnapshot {
	d := s
	d.FactsLoaded -= prev.FactsLoaded
	d.BatchLoads -= prev.BatchLoads
	d.RowsAppended -= prev.RowsAppended
	d.RowsMerged -= prev.RowsMerged
	d.Advances -= prev.Advances
	d.Syncs -= prev.Syncs
	d.SyncSkips -= prev.SyncSkips
	d.SyncScanned -= prev.SyncScanned
	d.RowsFolded -= prev.RowsFolded
	d.FactsDeleted -= prev.FactsDeleted
	d.Compactions -= prev.Compactions
	d.SpecRebuilds -= prev.SpecRebuilds
	d.ProgramCompiles -= prev.ProgramCompiles
	d.ProgramCacheHits -= prev.ProgramCacheHits
	d.ProgramCacheMisses -= prev.ProgramCacheMisses
	d.RouterCacheHits -= prev.RouterCacheHits
	d.ProgramProbes -= prev.ProgramProbes
	d.Queries -= prev.Queries
	d.CubesConsulted -= prev.CubesConsulted
	d.CubesPruned -= prev.CubesPruned
	d.RowsScanned -= prev.RowsScanned
	d.RowsSelected -= prev.RowsSelected
	d.ViewHits -= prev.ViewHits
	d.ViewMisses -= prev.ViewMisses
	d.ViewBuilds -= prev.ViewBuilds
	d.IngestQueued -= prev.IngestQueued
	d.IngestCompacted -= prev.IngestCompacted
	d.IngestLate -= prev.IngestLate
	d.SnapshotPublishes -= prev.SnapshotPublishes
	d.SnapshotDrainWaits -= prev.SnapshotDrainWaits
	d.SnapshotRebuilds -= prev.SnapshotRebuilds
	return d
}

// String renders the snapshot as a human-readable report, grouped the
// way the engine works: ingest, synchronization, queries, storage.
func (s MetricsSnapshot) String() string {
	var b strings.Builder
	b.WriteString("ingest:\n")
	row(&b, "facts loaded", s.FactsLoaded)
	row(&b, "batch loads", s.BatchLoads)
	row(&b, "rows appended", s.RowsAppended)
	row(&b, "rows merged in place", s.RowsMerged)
	row(&b, "ingest queued", s.IngestQueued)
	row(&b, "ingest compacted", s.IngestCompacted)
	row(&b, "ingest late facts", s.IngestLate)
	row(&b, "ingest pending", s.IngestPending)
	padLabel(&b, "compaction latency")
	b.WriteString(s.CompactionDuration.String())
	b.WriteByte('\n')

	b.WriteString("synchronization:\n")
	row(&b, "clock advances", s.Advances)
	row(&b, "sync rounds", s.Syncs)
	row(&b, "cubes skipped (zone map)", s.SyncSkips)
	row(&b, "rows scanned", s.SyncScanned)
	row(&b, "rows folded", s.RowsFolded)
	row(&b, "facts deleted", s.FactsDeleted)
	row(&b, "compactions", s.Compactions)
	row(&b, "spec rebuilds", s.SpecRebuilds)
	row(&b, "program compiles", s.ProgramCompiles)
	row(&b, "program cache hits", s.ProgramCacheHits)
	row(&b, "program cache misses", s.ProgramCacheMisses)
	row(&b, "router cache hits", s.RouterCacheHits)
	row(&b, "program probes", s.ProgramProbes)
	row(&b, "program bitset bytes", s.BitsetBytes)
	padLabel(&b, "sync latency")
	b.WriteString(s.SyncDuration.String())
	b.WriteByte('\n')

	b.WriteString("snapshots:\n")
	row(&b, "publishes", s.SnapshotPublishes)
	row(&b, "drain waits", s.SnapshotDrainWaits)
	row(&b, "side rebuilds", s.SnapshotRebuilds)
	row(&b, "epoch", s.SnapshotEpoch)
	row(&b, "retained", s.SnapshotsRetained)

	b.WriteString("queries:\n")
	row(&b, "queries", s.Queries)
	row(&b, "cubes consulted", s.CubesConsulted)
	row(&b, "cubes pruned (zone map)", s.CubesPruned)
	row(&b, "rows scanned", s.RowsScanned)
	row(&b, "rows selected", s.RowsSelected)
	row(&b, "view hits", s.ViewHits)
	row(&b, "view misses", s.ViewMisses)
	row(&b, "view builds", s.ViewBuilds)
	row(&b, "view bytes", s.ViewBytes)
	padLabel(&b, "query latency")
	b.WriteString(s.QueryDuration.String())
	b.WriteByte('\n')

	b.WriteString("storage:\n")
	row(&b, "subcubes", s.CubeCount)
	row(&b, "live rows", s.LiveRows)
	row(&b, "dead rows", s.DeadRows)
	row(&b, "fact bytes", s.LiveBytes)
	row(&b, "dimension bytes", s.DimBytes)
	return b.String()
}

func row(b *strings.Builder, label string, v int64) {
	padLabel(b, label)
	fmt.Fprintf(b, "%d\n", v)
}
