package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one counter from many goroutines and
// checks nothing is lost — the property the parallel scan paths rely on.
func TestCounterConcurrent(t *testing.T) {
	const workers, perWorker = 16, 10000
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if i%2 == 0 {
					c.Inc()
				} else {
					c.Add(3)
				}
			}
		}()
	}
	wg.Wait()
	want := int64(workers * (perWorker/2 + 3*perWorker/2))
	if got := c.Load(); got != want {
		t.Fatalf("Counter: got %d, want %d", got, want)
	}
}

func TestGaugeConcurrent(t *testing.T) {
	const workers, perWorker = 8, 5000
	var g Gauge
	g.Set(100)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				g.Add(2)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Load(); got != 100+int64(workers*perWorker) {
		t.Fatalf("Gauge: got %d, want %d", got, 100+workers*perWorker)
	}
}

// TestHistogramConcurrent checks count/sum/max under concurrent
// observers and that the bucket-derived quantiles bound the data.
func TestHistogramConcurrent(t *testing.T) {
	const workers, perWorker = 8, 2000
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(time.Duration(w*perWorker+i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if got, want := h.Count(), int64(workers*perWorker); got != want {
		t.Fatalf("Count: got %d, want %d", got, want)
	}
	n := int64(workers * perWorker)
	wantSum := time.Duration(n*(n-1)/2) * time.Microsecond
	if got := h.Sum(); got != wantSum {
		t.Fatalf("Sum: got %v, want %v", got, wantSum)
	}
	wantMax := time.Duration(n-1) * time.Microsecond
	if got := h.Max(); got != wantMax {
		t.Fatalf("Max: got %v, want %v", got, wantMax)
	}
	if h.Mean() != wantSum/time.Duration(n) {
		t.Fatalf("Mean: got %v", h.Mean())
	}
	// The true median is ~8000µs; the bucket bound must cover it without
	// exceeding the next power of two.
	p50 := h.Quantile(0.5)
	if p50 < 8*time.Millisecond || p50 > 16384*time.Microsecond {
		t.Fatalf("P50 bound %v outside [8ms, 16.384ms]", p50)
	}
	if h.Quantile(1) != wantMax {
		t.Fatalf("Quantile(1): got %v, want max %v", h.Quantile(1), wantMax)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	if got := bucketFor(0); got != 0 {
		t.Fatalf("bucketFor(0) = %d", got)
	}
	if got := bucketFor(time.Microsecond); got != 1 {
		t.Fatalf("bucketFor(1µs) = %d", got)
	}
	// Durations beyond the last bound land in the overflow bucket.
	if got := bucketFor(time.Hour); got != histBuckets-1 {
		t.Fatalf("bucketFor(1h) = %d, want %d", got, histBuckets-1)
	}
	h.Observe(-time.Second) // clamped, not a panic
	if h.Count() != 1 || h.Sum() != 0 {
		t.Fatalf("negative observation not clamped: count=%d sum=%v", h.Count(), h.Sum())
	}
	if s := h.Snapshot(); s.Count != 1 {
		t.Fatalf("Snapshot count = %d", s.Count)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	if s := h.Snapshot().String(); s != "n=0" {
		t.Fatalf("empty snapshot renders %q", s)
	}
}

// TestMetricsSnapshotSub checks the before/after delta helper.
func TestMetricsSnapshotSub(t *testing.T) {
	m := NewMetrics()
	m.Queries.Add(3)
	m.RowsScanned.Add(100)
	before := m.Snapshot()
	m.Queries.Add(2)
	m.RowsScanned.Add(50)
	m.RowsFolded.Add(7)
	d := m.Snapshot().Sub(before)
	if d.Queries != 2 || d.RowsScanned != 50 || d.RowsFolded != 7 {
		t.Fatalf("delta wrong: %+v", d)
	}
}

// TestMetricsConcurrent exercises the full metric set from parallel
// writers while snapshots are taken, mirroring queries-during-stats.
func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.RowsScanned.Add(10)
				m.CubesConsulted.Inc()
				m.QueryDuration.Observe(time.Duration(i) * time.Microsecond)
				m.LiveRows.Set(int64(i))
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = m.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	s := m.Snapshot()
	if s.RowsScanned != 80000 || s.CubesConsulted != 8000 || s.QueryDuration.Count != 8000 {
		t.Fatalf("lost updates: %+v", s)
	}
	if !strings.Contains(s.String(), "rows scanned") {
		t.Fatalf("String() missing rows scanned:\n%s", s)
	}
}

func TestTrace(t *testing.T) {
	tr := &Trace{Query: "aggregate [Time.month, URL.domain]", At: "2001/6/1", Synced: true}
	tr.Cubes = []CubeTrace{
		{Cube: 0, Granularity: "[Time.day, URL.url]", FastPath: true, RowsScanned: 90, RowsKept: 30, Duration: time.Millisecond},
		{Cube: 1, Granularity: "[Time.month, URL.domain]", Pruned: true},
	}
	tr.AddStage("scan", 2*time.Millisecond)
	tr.AddStage("combine", time.Millisecond)
	tr.ResultCells = 12
	tr.Total = 3 * time.Millisecond
	if tr.RowsScanned() != 90 || tr.RowsKept() != 30 || tr.CubesPruned() != 1 {
		t.Fatalf("trace totals wrong: %+v", tr)
	}
	out := tr.String()
	for _, want := range []string{"pruned by zone map", "scan rows=90", "stage scan", "1/2 cubes pruned", "(synchronized)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace rendering missing %q:\n%s", want, out)
		}
	}
}
