package obs

import "sync"

// ShapeStats is a lock-free frequency table of observed query shapes,
// keyed by an opaque shape string (the warehouse encodes the requested
// target granularity). The lock-free query path records into it with
// one sync.Map load plus one atomic add in steady state, and the
// materialized-view selector reads the accumulated trace to learn which
// rollup levels the workload actually asks for. The table is bounded by
// the category-type lattice: there are only as many distinct shapes as
// granularities, so it never needs eviction.
type ShapeStats struct {
	m sync.Map // shape key → *Counter
}

// Record counts one observation of the shape.
func (s *ShapeStats) Record(key string) {
	if c, ok := s.m.Load(key); ok {
		c.(*Counter).Inc()
		return
	}
	c, _ := s.m.LoadOrStore(key, &Counter{})
	c.(*Counter).Inc()
}

// Add seeds n observations of the shape in one step. Snapshot restore
// uses it to rebuild a persisted trace without n calls to Record.
func (s *ShapeStats) Add(key string, n int64) {
	if n == 0 {
		return
	}
	if c, ok := s.m.Load(key); ok {
		c.(*Counter).Add(n)
		return
	}
	c, _ := s.m.LoadOrStore(key, &Counter{})
	c.(*Counter).Add(n)
}

// Counts copies the current per-shape totals. Concurrent recorders may
// land between the reads; the copy is consistent enough for view
// selection, never for accounting.
func (s *ShapeStats) Counts() map[string]int64 {
	out := map[string]int64{}
	s.m.Range(func(k, v any) bool {
		out[k.(string)] = v.(*Counter).Load()
		return true
	})
	return out
}
