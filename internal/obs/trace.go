package obs

import (
	"fmt"
	"strings"
	"time"
)

// CubeTrace records what one subcube contributed to a traced query.
// During parallel evaluation each goroutine writes only its own entry
// (the slice is pre-sized to the cube count), so no locking is needed.
type CubeTrace struct {
	Cube        int    // cube id (0 is the bottom cube)
	Granularity string // the cube's fixed granularity
	Pruned      bool   // skipped entirely by the zone map
	FastPath    bool   // synchronized scan (vs. un-synchronized view)
	RowsScanned int    // rows visited in the cube (and its parents, un-synced)
	RowsKept    int    // rows surviving the predicate
	Duration    time.Duration
}

// Stage is one timed phase of a traced query.
type Stage struct {
	Name     string
	Duration time.Duration
}

// Trace is a per-query execution trace: which subcubes were consulted
// or pruned, rows scanned versus kept, and per-stage wall time. A nil
// *Trace disables tracing at zero cost.
type Trace struct {
	Query       string // the query's source text, when known
	At          string // the evaluation time, rendered by the caller
	Synced      bool   // whether the cube set was synchronized at query time
	Cubes       []CubeTrace
	Stages      []Stage
	ResultCells int // cells in the final result
	Total       time.Duration
}

// AddStage appends a timed stage.
func (t *Trace) AddStage(name string, d time.Duration) {
	t.Stages = append(t.Stages, Stage{Name: name, Duration: d})
}

// RowsScanned totals the rows visited across all consulted cubes.
func (t *Trace) RowsScanned() int {
	n := 0
	for _, c := range t.Cubes {
		n += c.RowsScanned
	}
	return n
}

// RowsKept totals the rows surviving the predicate across all cubes.
func (t *Trace) RowsKept() int {
	n := 0
	for _, c := range t.Cubes {
		n += c.RowsKept
	}
	return n
}

// CubesPruned counts the cubes skipped by the zone map.
func (t *Trace) CubesPruned() int {
	n := 0
	for _, c := range t.Cubes {
		if c.Pruned {
			n++
		}
	}
	return n
}

// String renders the trace as a per-cube table plus stage timings.
func (t *Trace) String() string {
	var b strings.Builder
	if t.Query != "" {
		fmt.Fprintf(&b, "query: %s\n", t.Query)
	}
	if t.At != "" {
		fmt.Fprintf(&b, "at: %s", t.At)
		if t.Synced {
			b.WriteString(" (synchronized)")
		} else {
			b.WriteString(" (un-synchronized)")
		}
		b.WriteByte('\n')
	}
	for _, c := range t.Cubes {
		fmt.Fprintf(&b, "  K%-3d %-36s", c.Cube, c.Granularity)
		if c.Pruned {
			b.WriteString(" pruned by zone map\n")
			continue
		}
		path := "view"
		if c.FastPath {
			path = "scan"
		}
		fmt.Fprintf(&b, " %s rows=%d kept=%d in %s\n", path, c.RowsScanned, c.RowsKept, fmtDur(c.Duration))
	}
	for _, st := range t.Stages {
		fmt.Fprintf(&b, "  stage %-33s %s\n", st.Name, fmtDur(st.Duration))
	}
	fmt.Fprintf(&b, "  %d/%d cubes pruned, %d rows scanned, %d kept, %d result cells, total %s\n",
		t.CubesPruned(), len(t.Cubes), t.RowsScanned(), t.RowsKept(), t.ResultCells, fmtDur(t.Total))
	return b.String()
}
