package obs

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// epochShards is the number of pin-counter slots per snapshot side.
// Sharding spreads the per-query pin/unpin pair over several cache
// lines so concurrent readers do not serialize on one contended
// counter — the contention the epoch-snapshot read path exists to
// remove. Eight slots cover typical reader parallelism; above that,
// slots are shared round-robin and still scale far better than one.
const epochShards = 8

// epochSlot is one padded pin counter. The padding keeps neighbouring
// slots on distinct cache lines (64-byte lines; the counter itself is
// 8 bytes).
type epochSlot struct {
	n atomic.Int64
	_ [56]byte
}

// Epoch counts pinned readers per snapshot side of an RCU-style
// double-buffered structure. A reader Pins the side its snapshot lives
// on, re-validates the snapshot pointer, and Unpins when done; the
// writer, after republishing, Drains the retired side before mutating
// it. Pin handles are pooled and carry a fixed shard assignment, so a
// steady-state pin/unpin is two uncontended atomic adds and no
// allocation.
type Epoch struct {
	slots [2][epochShards]epochSlot
	next  atomic.Uint64
	pool  sync.Pool
}

// NewEpoch creates an epoch with no pinned readers on either side.
func NewEpoch() *Epoch {
	e := &Epoch{}
	e.pool.New = func() any {
		return &Pin{e: e, shard: uint32(e.next.Add(1) % epochShards)}
	}
	return e
}

// Pin is one reader's hold on a snapshot side. It is valid until
// Unpin, which recycles it; a Pin must not be shared across goroutines
// or used after Unpin.
type Pin struct {
	e     *Epoch
	shard uint32
	side  uint32
}

// Pin marks one reader active on the given side (0 or 1) and returns
// the handle to release it with. Pinning alone does not make the side
// safe to read: the caller must re-check that the snapshot it loaded
// is still the published one, and retry if not (the writer may already
// have drained the side before the pin landed).
func (e *Epoch) Pin(side uint32) *Pin {
	p := e.pool.Get().(*Pin)
	p.side = side & 1
	e.slots[p.side][p.shard].n.Add(1)
	return p
}

// Unpin releases the pin and recycles the handle.
func (p *Pin) Unpin() {
	p.e.slots[p.side][p.shard].n.Add(-1)
	p.e.pool.Put(p)
}

// Pins returns the number of currently pinned readers on side. Each
// slot's count never dips below zero (a handle unpins the slot it
// pinned), so a reader that pinned before the call and has not
// unpinned keeps the sum positive.
func (e *Epoch) Pins(side uint32) int64 {
	var n int64
	for i := range e.slots[side&1] {
		n += e.slots[side&1][i].n.Load()
	}
	return n
}

// Drain waits until side has no pinned readers, yielding the processor
// between polls, and reports whether it had to wait at all. Once the
// published snapshot no longer references the side, the pin-recheck
// protocol guarantees no new reader settles on it, so Drain
// terminates as soon as the in-flight readers finish.
func (e *Epoch) Drain(side uint32) bool {
	if e.Pins(side) == 0 {
		return false
	}
	for e.Pins(side) != 0 {
		runtime.Gosched()
	}
	return true
}
