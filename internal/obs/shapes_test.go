package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestShapeStatsConcurrent(t *testing.T) {
	var s ShapeStats
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Record(fmt.Sprintf("shape-%d", i%3))
			}
		}(w)
	}
	wg.Wait()
	counts := s.Counts()
	if len(counts) != 3 {
		t.Fatalf("got %d shapes, want 3", len(counts))
	}
	var total int64
	for k, n := range counts {
		if n <= 0 {
			t.Errorf("shape %s has non-positive count %d", k, n)
		}
		total += n
	}
	if total != workers*per {
		t.Fatalf("total = %d, want %d", total, workers*per)
	}
}

func TestShapeStatsEmpty(t *testing.T) {
	var s ShapeStats
	if got := s.Counts(); len(got) != 0 {
		t.Fatalf("empty stats returned %v", got)
	}
}
