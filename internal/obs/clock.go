package obs

import (
	"sync"
	"time"
)

// Clock is the engine's sanctioned source of wall-clock time. Semantic
// packages never call time.Now directly — evaluation time flows in as
// an explicit caltime.Day parameter — and the timing of operational
// stages (sync rounds, query scans) is measured through a Clock so
// tests can substitute a deterministic fake. The dimredlint `wallclock`
// analyzer enforces this: obs is the only package below the facade
// allowed to touch the time package's ambient clock.
type Clock interface {
	// Now returns the current time. Real implementations carry a
	// monotonic reading so Since is immune to wall-clock steps.
	Now() time.Time
	// Since returns the elapsed time between t and Now.
	Since(t time.Time) time.Duration
}

// systemClock is the real clock.
type systemClock struct{}

func (systemClock) Now() time.Time                  { return time.Now() }
func (systemClock) Since(t time.Time) time.Duration { return time.Since(t) }

// System is the process-wide real clock.
var System Clock = systemClock{}

// FakeClock is a manually driven Clock for deterministic timing tests.
// Time moves only through Advance or the per-read Step. Safe for
// concurrent use.
type FakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

// NewFakeClock returns a fake clock frozen at start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{t: start}
}

// Now returns the fake instant, then advances the clock by the
// configured Step (zero by default), so a start/stop measurement pair
// observes exactly one step.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.t
	c.t = c.t.Add(c.step)
	return now
}

// Since returns the elapsed fake time between t and Now.
func (c *FakeClock) Since(t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// Advance moves the clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// SetStep makes every subsequent Now advance the clock by d after
// reading it, so code under test that brackets work with Now/Since
// observes a deterministic non-zero duration per bracket.
func (c *FakeClock) SetStep(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.step = d
}
