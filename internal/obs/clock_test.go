package obs

import (
	"testing"
	"time"
)

func TestSystemClockMonotonicSince(t *testing.T) {
	start := System.Now()
	if d := System.Since(start); d < 0 {
		t.Errorf("Since went backwards: %v", d)
	}
}

func TestFakeClockAdvance(t *testing.T) {
	t0 := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	clk := NewFakeClock(t0)
	if got := clk.Now(); !got.Equal(t0) {
		t.Fatalf("Now = %v, want %v", got, t0)
	}
	clk.Advance(3 * time.Second)
	if d := clk.Since(t0); d != 3*time.Second {
		t.Errorf("Since = %v, want 3s", d)
	}
}

func TestFakeClockStep(t *testing.T) {
	t0 := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	clk := NewFakeClock(t0)
	clk.SetStep(time.Millisecond)
	start := clk.Now() // returns t0, advances to t0+1ms
	if d := clk.Since(start); d != time.Millisecond {
		t.Errorf("Since = %v, want 1ms", d)
	}
}

func TestMetricsClockDefaultsToSystem(t *testing.T) {
	m := NewMetrics()
	if m.Clock() != System {
		t.Error("fresh metric set should use the System clock")
	}
	clk := NewFakeClock(time.Unix(0, 0))
	m.SetClock(clk)
	if m.Clock() != Clock(clk) {
		t.Error("SetClock not honored")
	}
}
