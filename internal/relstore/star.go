package relstore

import (
	"fmt"
	"sort"
	"strings"

	"dimred/internal/mdm"
)

// Star is a multidimensional object materialized as a star schema: one
// denormalized dimension table per dimension (a surrogate key plus one
// column per category, holding the ancestor value's name or "" where the
// category is not above the keyed value) and one fact table with
// surrogate keys and measure columns — the layout of Appendix A,
// Table 2.
type Star struct {
	DB     *DB
	Fact   *Table
	Dims   []*Table
	schema *mdm.Schema
	// keyCol[i] is the fact table's key column for dimension i;
	// measCol[j] the column of measure j.
	keyCol  []int
	measCol []int
}

// BuildStar materializes mo. Facts at any granularity are supported: the
// fact's surrogate key references the dimension row of whatever value it
// maps to directly, and that row's category columns expose the available
// roll-ups — which is how the paper's subcubes live in relational
// technology.
func BuildStar(mo *mdm.MO) (*Star, error) {
	schema := mo.Schema()
	db := NewDB()
	star := &Star{DB: db, schema: schema}

	for _, d := range schema.Dims {
		cols := []Column{{Name: strings.ToLower(d.Name()) + "_id", Kind: KindInt64}}
		for c := 0; c < d.NumCategories(); c++ {
			cols = append(cols, Column{Name: d.Category(mdm.CategoryID(c)).Name, Kind: KindString})
		}
		t, err := NewTable(d.Name()+" Dimension", cols, cols[0].Name)
		if err != nil {
			return nil, err
		}
		for v := 0; v < d.NumValues(); v++ {
			vals := make([]interface{}, len(cols))
			vals[0] = int64(v)
			for c := 0; c < d.NumCategories(); c++ {
				a := d.AncestorAt(mdm.ValueID(v), mdm.CategoryID(c))
				if a == mdm.NoValue {
					vals[c+1] = ""
				} else {
					vals[c+1] = d.ValueName(a)
				}
			}
			if err := t.Insert(vals...); err != nil {
				return nil, err
			}
		}
		if err := db.Add(t); err != nil {
			return nil, err
		}
		star.Dims = append(star.Dims, t)
	}

	factCols := []Column{{Name: "fact_id", Kind: KindInt64}}
	star.keyCol = make([]int, len(schema.Dims))
	for i, d := range schema.Dims {
		star.keyCol[i] = len(factCols)
		factCols = append(factCols, Column{Name: strings.ToLower(d.Name()) + "_id", Kind: KindInt64})
	}
	star.measCol = make([]int, len(schema.Measures))
	for j, m := range schema.Measures {
		star.measCol[j] = len(factCols)
		factCols = append(factCols, Column{Name: m.Name, Kind: KindFloat64})
	}
	fact, err := NewTable(schema.FactType+" Fact", factCols, "fact_id")
	if err != nil {
		return nil, err
	}
	for f := 0; f < mo.Len(); f++ {
		fid := mdm.FactID(f)
		vals := make([]interface{}, len(factCols))
		vals[0] = int64(f)
		for i := range schema.Dims {
			vals[star.keyCol[i]] = int64(mo.Ref(fid, i))
		}
		for j := range schema.Measures {
			vals[star.measCol[j]] = mo.Measure(fid, j)
		}
		if err := fact.Insert(vals...); err != nil {
			return nil, err
		}
	}
	if err := db.Add(fact); err != nil {
		return nil, err
	}
	star.Fact = fact
	return star, nil
}

// Bytes models the star schema's total storage: the fact table plus
// every dimension table, under the Table cost model. FactBytes and
// DimBytes split the total the way the paper's storage claim does
// (facts dominate warehouse storage).
func (s *Star) Bytes() (total, factBytes, dimBytes int64) {
	factBytes = s.Fact.Bytes()
	for _, d := range s.Dims {
		dimBytes += d.Bytes()
	}
	return factBytes + dimBytes, factBytes, dimBytes
}

// GroupRow is one result row of a star aggregation: the group-by column
// values joined from the dimension tables, plus aggregated measures.
type GroupRow struct {
	Keys     []string
	Measures []float64
}

// SumByLevel runs the prototypical star-join aggregation: SELECT
// <levels>, SUM(measures) FROM fact JOIN dims GROUP BY <levels>, with an
// optional per-fact filter that sees the joined dimension rows. levels
// name one category per listed dimension as "Dim.category". Facts whose
// dimension row has no value at a requested level (the category is not
// above the fact's granularity) are skipped, which is the strict
// approach of Section 6.3 in relational clothes.
func (s *Star) SumByLevel(levels []string, filter func(dimRows []int) bool) ([]GroupRow, error) {
	type lvl struct {
		dim int
		col int
	}
	var lvls []lvl
	for _, ref := range levels {
		dot := strings.IndexByte(ref, '.')
		if dot < 0 {
			return nil, fmt.Errorf("relstore: level %q must be Dim.category", ref)
		}
		di := s.schema.DimIndex(ref[:dot])
		if di < 0 {
			return nil, fmt.Errorf("relstore: unknown dimension in %q", ref)
		}
		col := s.Dims[di].ColumnIndex(ref[dot+1:])
		if col < 0 {
			return nil, fmt.Errorf("relstore: unknown category in %q", ref)
		}
		lvls = append(lvls, lvl{dim: di, col: col})
	}
	groups := make(map[string]*GroupRow)
	dimRows := make([]int, len(s.schema.Dims))
	var scanErr error
	s.Fact.Scan(func(r int) bool {
		for i := range s.schema.Dims {
			key := s.Fact.Int(r, s.keyCol[i])
			row, ok := s.Dims[i].Lookup(key)
			if !ok {
				scanErr = fmt.Errorf("relstore: dangling %s key %d", s.schema.Dims[i].Name(), key)
				return false
			}
			dimRows[i] = row
		}
		if filter != nil && !filter(dimRows) {
			return true
		}
		keys := make([]string, len(lvls))
		for k, l := range lvls {
			keys[k] = s.Dims[l.dim].Str(dimRows[l.dim], l.col)
			if keys[k] == "" {
				return true // no value at the requested level: skip (strict)
			}
		}
		gk := strings.Join(keys, "\x00")
		g, ok := groups[gk]
		if !ok {
			g = &GroupRow{Keys: keys, Measures: make([]float64, len(s.measCol))}
			groups[gk] = g
		}
		for j, col := range s.measCol {
			g.Measures[j] += s.Fact.Float(r, col)
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	out := make([]GroupRow, 0, len(groups))
	for _, g := range groups {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].Keys, "\x00") < strings.Join(out[j].Keys, "\x00")
	})
	return out, nil
}

// FormatAll renders every table, Appendix A style.
func (s *Star) FormatAll() string {
	var b strings.Builder
	for _, t := range s.DB.Tables() {
		b.WriteString(t.Format())
		b.WriteByte('\n')
	}
	return b.String()
}
