package relstore

import (
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/workload"
)

func BenchmarkBuildStar(b *testing.B) {
	obj, err := workload.BuildClickMO(workload.ClickConfig{
		Seed: 8, Start: caltime.Date(2000, 1, 1), Days: 90, ClicksPerDay: 100,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildStar(obj.MO); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSumByLevel(b *testing.B) {
	obj, err := workload.BuildClickMO(workload.ClickConfig{
		Seed: 8, Start: caltime.Date(2000, 1, 1), Days: 90, ClicksPerDay: 100,
	})
	if err != nil {
		b.Fatal(err)
	}
	star, err := BuildStar(obj.MO)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := star.SumByLevel([]string{"Time.month", "URL.domain_grp"}, nil); err != nil {
			b.Fatal(err)
		}
	}
}
