package relstore

import (
	"strings"
	"testing"

	"dimred/internal/dims"
)

func TestTableBasics(t *testing.T) {
	tab, err := NewTable("T", []Column{
		{Name: "id", Kind: KindInt64},
		{Name: "name", Kind: KindString},
		{Name: "v", Kind: KindFloat64},
	}, "id")
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(int64(1), "a", 1.5); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(int64(2), "b", 2.5); err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 2 {
		t.Fatal("rows")
	}
	r, ok := tab.Lookup(2)
	if !ok || tab.Str(r, 1) != "b" || tab.Float(r, 2) != 2.5 || tab.Int(r, 0) != 2 {
		t.Error("lookup/read wrong")
	}
	if _, ok := tab.Lookup(99); ok {
		t.Error("phantom lookup")
	}
	// Type and arity errors.
	if err := tab.Insert(int64(3), "c"); err == nil {
		t.Error("short row accepted")
	}
	if err := tab.Insert("x", "c", 1.0); err == nil {
		t.Error("wrong pk type accepted")
	}
	if err := tab.Insert(int64(4), 5, 1.0); err == nil {
		t.Error("wrong string type accepted")
	}
	if err := tab.Insert(int64(1), "dup", 0.0); err == nil {
		t.Error("duplicate pk accepted")
	}
	if tab.Rows() != 2 {
		t.Error("failed inserts changed row count")
	}
	// Cell accessor covers all kinds.
	if tab.Cell(0, 0) != int64(1) || tab.Cell(0, 1) != "a" || tab.Cell(0, 2) != 1.5 {
		t.Error("Cell wrong")
	}
	if !strings.Contains(tab.Format(), "id | name | v") {
		t.Error("Format header missing")
	}
}

func TestNewTableErrors(t *testing.T) {
	if _, err := NewTable("T", nil, ""); err == nil {
		t.Error("no columns accepted")
	}
	if _, err := NewTable("T", []Column{{Name: "a", Kind: KindString}, {Name: "a", Kind: KindString}}, ""); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := NewTable("T", []Column{{Name: "a", Kind: KindString}}, "b"); err == nil {
		t.Error("missing pk column accepted")
	}
	if _, err := NewTable("T", []Column{{Name: "a", Kind: KindString}}, "a"); err == nil {
		t.Error("non-int pk accepted")
	}
}

func TestDB(t *testing.T) {
	db := NewDB()
	tab, _ := NewTable("A", []Column{{Name: "x", Kind: KindInt64}}, "")
	if err := db.Add(tab); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(tab); err == nil {
		t.Error("duplicate table accepted")
	}
	if got, ok := db.Table("A"); !ok || got != tab {
		t.Error("Table lookup")
	}
	if len(db.Tables()) != 1 {
		t.Error("Tables")
	}
}

func TestBuildStarPaperTable2(t *testing.T) {
	p := dims.MustPaperMO()
	star, err := BuildStar(p.MO)
	if err != nil {
		t.Fatal(err)
	}
	// 2 dimension tables + 1 fact table.
	if len(star.DB.Tables()) != 3 {
		t.Fatalf("tables = %d", len(star.DB.Tables()))
	}
	fact := star.Fact
	if fact.Rows() != 7 {
		t.Errorf("fact rows = %d", fact.Rows())
	}
	// The URL dimension table exposes Table 2's denormalized columns.
	urlTab := star.Dims[1]
	if urlTab.ColumnIndex("url") < 0 || urlTab.ColumnIndex("domain") < 0 || urlTab.ColumnIndex("domain_grp") < 0 {
		t.Error("URL dimension columns missing")
	}
	// Find www.cnn.com/health's row: domain cnn.com, group .com.
	found := false
	urlCol := urlTab.ColumnIndex("url")
	domCol := urlTab.ColumnIndex("domain")
	grpCol := urlTab.ColumnIndex("domain_grp")
	urlTab.Scan(func(r int) bool {
		if urlTab.Str(r, urlCol) == "http://www.cnn.com/health" {
			found = true
			if urlTab.Str(r, domCol) != "cnn.com" || urlTab.Str(r, grpCol) != ".com" {
				t.Error("denormalized roll-up wrong")
			}
		}
		return true
	})
	if !found {
		t.Error("health url missing")
	}
	// Appendix A render includes the fact table header.
	all := star.FormatAll()
	if !strings.Contains(all, "Click Fact") || !strings.Contains(all, "Time Dimension") {
		t.Errorf("FormatAll missing tables:\n%s", all)
	}
}

func TestSumByLevel(t *testing.T) {
	p := dims.MustPaperMO()
	star, err := BuildStar(p.MO)
	if err != nil {
		t.Fatal(err)
	}
	// SELECT domain_grp, SUM(...) GROUP BY domain_grp.
	rows, err := star.SumByLevel([]string{"URL.domain_grp"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("groups = %d", len(rows))
	}
	// .com dwell total = 677+2335+154+12+654+301 = 4133; .edu = 32.
	for _, r := range rows {
		switch r.Keys[0] {
		case ".com":
			if r.Measures[1] != 4133 {
				t.Errorf(".com dwell = %v", r.Measures[1])
			}
		case ".edu":
			if r.Measures[1] != 32 {
				t.Errorf(".edu dwell = %v", r.Measures[1])
			}
		default:
			t.Errorf("unexpected group %q", r.Keys[0])
		}
	}
	// Two-level group-by with a filter on the joined dimension row.
	grpCol := star.Dims[1].ColumnIndex("domain_grp")
	rows, err = star.SumByLevel([]string{"Time.month", "URL.domain"}, func(dimRows []int) bool {
		return star.Dims[1].Str(dimRows[1], grpCol) == ".com"
	})
	if err != nil {
		t.Fatal(err)
	}
	// Groups: (1999/11, amazon), (1999/12, amazon), (1999/12, cnn),
	// (2000/1, cnn).
	if len(rows) != 4 {
		for _, r := range rows {
			t.Logf("row %v %v", r.Keys, r.Measures)
		}
		t.Errorf("groups = %d, want 4", len(rows))
	}
	// Errors.
	if _, err := star.SumByLevel([]string{"nodot"}, nil); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := star.SumByLevel([]string{"Nope.month"}, nil); err == nil {
		t.Error("unknown dimension accepted")
	}
	if _, err := star.SumByLevel([]string{"Time.nope"}, nil); err == nil {
		t.Error("unknown category accepted")
	}
}

func TestStarOnReducedGranularities(t *testing.T) {
	// Facts at mixed granularities: dimension rows with "" at
	// unavailable levels are skipped by SumByLevel (strict approach).
	p := dims.MustPaperMO()
	star, err := BuildStar(p.MO)
	if err != nil {
		t.Fatal(err)
	}
	// Grouping by url works for the bottom-granularity paper MO: 4 urls.
	rows, err := star.SumByLevel([]string{"URL.url"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Errorf("url groups = %d", len(rows))
	}
}

func TestSecondaryIndex(t *testing.T) {
	tab, err := NewTable("T", []Column{
		{Name: "id", Kind: KindInt64},
		{Name: "k", Kind: KindInt64},
	}, "id")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := tab.Insert(int64(i), int64(i%7)); err != nil {
			t.Fatal(err)
		}
	}
	// Scan fallback (no index).
	scanRows := tab.LookupAll("k", 3)
	if len(scanRows) != 14 { // i%7==3 for i in [0,100): 3,10,...,94
		t.Errorf("scan lookup = %d rows", len(scanRows))
	}
	// Indexed.
	if err := tab.AddIndex("k"); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddIndex("k"); err != nil { // idempotent
		t.Fatal(err)
	}
	idxRows := tab.LookupAll("k", 3)
	if len(idxRows) != len(scanRows) {
		t.Errorf("indexed lookup = %d, scan = %d", len(idxRows), len(scanRows))
	}
	// Lazy catch-up after more inserts.
	for i := 100; i < 107; i++ {
		if err := tab.Insert(int64(i), int64(i%7)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(tab.LookupAll("k", 3)); got != 15 { // 101 joins
		t.Errorf("after catch-up = %d, want 15", got)
	}
	// Errors.
	if err := tab.AddIndex("nope"); err == nil {
		t.Error("missing column accepted")
	}
	tab2, _ := NewTable("S", []Column{{Name: "s", Kind: KindString}}, "")
	if err := tab2.AddIndex("s"); err == nil {
		t.Error("string index accepted")
	}
	if rows := tab.LookupAll("nope", 1); rows != nil {
		t.Error("lookup on missing column returned rows")
	}
}

func BenchmarkLookupIndexedVsScan(b *testing.B) {
	mk := func(indexed bool) *Table {
		tab, _ := NewTable("T", []Column{
			{Name: "id", Kind: KindInt64},
			{Name: "k", Kind: KindInt64},
		}, "id")
		for i := 0; i < 50000; i++ {
			if err := tab.Insert(int64(i), int64(i%997)); err != nil {
				b.Fatal(err)
			}
		}
		if indexed {
			if err := tab.AddIndex("k"); err != nil {
				b.Fatal(err)
			}
			tab.LookupAll("k", 0) // build
		}
		return tab
	}
	b.Run("scan", func(b *testing.B) {
		tab := mk(false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = tab.LookupAll("k", int64(i%997))
		}
	})
	b.Run("indexed", func(b *testing.B) {
		tab := mk(true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = tab.LookupAll("k", int64(i%997))
		}
	})
}
