// Package relstore is a small in-memory relational engine with typed
// columnar tables, primary-key hash indexes, scans and hash group-by —
// enough "standard data warehouse technology" (Section 7) to materialize
// a multidimensional object as the star schema of Appendix A, Table 2:
// one denormalized dimension table per dimension (one column per
// category) and one fact table with surrogate keys and measure columns.
package relstore

import (
	"fmt"
	"sort"
	"strings"
)

// Kind is a column type.
type Kind int

const (
	KindInt64 Kind = iota
	KindFloat64
	KindString
)

// String returns the SQL-ish type name.
func (k Kind) String() string {
	switch k {
	case KindInt64:
		return "BIGINT"
	case KindFloat64:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Column describes one table column.
type Column struct {
	Name string
	Kind Kind
}

// Table is a typed columnar table with an optional int64 primary key.
type Table struct {
	name    string
	cols    []Column
	colIdx  map[string]int
	ints    [][]int64
	floats  [][]float64
	strs    [][]string
	rows    int
	pkCol   int // -1 for none
	pkIndex map[int64]int
	indexes []*secondary
}

// NewTable creates a table. pkCol names the primary-key column (must be
// KindInt64) or is empty for none.
func NewTable(name string, cols []Column, pkCol string) (*Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("relstore: table %s: no columns", name)
	}
	t := &Table{
		name:   name,
		cols:   cols,
		colIdx: make(map[string]int, len(cols)),
		ints:   make([][]int64, len(cols)),
		floats: make([][]float64, len(cols)),
		strs:   make([][]string, len(cols)),
		pkCol:  -1,
	}
	for i, c := range cols {
		if _, dup := t.colIdx[c.Name]; dup {
			return nil, fmt.Errorf("relstore: table %s: duplicate column %q", name, c.Name)
		}
		t.colIdx[c.Name] = i
	}
	if pkCol != "" {
		i, ok := t.colIdx[pkCol]
		if !ok {
			return nil, fmt.Errorf("relstore: table %s: no column %q for primary key", name, pkCol)
		}
		if cols[i].Kind != KindInt64 {
			return nil, fmt.Errorf("relstore: table %s: primary key %q must be BIGINT", name, pkCol)
		}
		t.pkCol = i
		t.pkIndex = make(map[int64]int)
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Columns returns the column definitions.
func (t *Table) Columns() []Column { return t.cols }

// ColumnIndex resolves a column name; -1 when absent.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colIdx[name]; ok {
		return i
	}
	return -1
}

// Rows returns the row count.
func (t *Table) Rows() int { return t.rows }

// Bytes models the table's relational storage footprint, surfaced by
// the observability layer: 8 bytes per BIGINT or DOUBLE cell, string
// length per VARCHAR cell, plus 8 bytes of per-row metadata — the same
// cost model internal/storage applies to fact rows.
func (t *Table) Bytes() int64 {
	var total int64 = int64(t.rows) * 8
	for i, c := range t.cols {
		switch c.Kind {
		case KindInt64, KindFloat64:
			total += int64(t.rows) * 8
		case KindString:
			for _, s := range t.strs[i] {
				total += int64(len(s))
			}
		}
	}
	return total
}

// Insert adds a row; values must match the column kinds (int64, float64
// or string). Primary-key duplicates are rejected.
func (t *Table) Insert(vals ...interface{}) error {
	if len(vals) != len(t.cols) {
		return fmt.Errorf("relstore: table %s: %d values for %d columns", t.name, len(vals), len(t.cols))
	}
	if t.pkCol >= 0 {
		pk, ok := vals[t.pkCol].(int64)
		if !ok {
			return fmt.Errorf("relstore: table %s: primary key must be int64", t.name)
		}
		if _, dup := t.pkIndex[pk]; dup {
			return fmt.Errorf("relstore: table %s: duplicate primary key %d", t.name, pk)
		}
	}
	for i, c := range t.cols {
		switch c.Kind {
		case KindInt64:
			v, ok := vals[i].(int64)
			if !ok {
				return fmt.Errorf("relstore: table %s: column %s expects int64, got %T", t.name, c.Name, vals[i])
			}
			t.ints[i] = append(t.ints[i], v)
		case KindFloat64:
			v, ok := vals[i].(float64)
			if !ok {
				return fmt.Errorf("relstore: table %s: column %s expects float64, got %T", t.name, c.Name, vals[i])
			}
			t.floats[i] = append(t.floats[i], v)
		case KindString:
			v, ok := vals[i].(string)
			if !ok {
				return fmt.Errorf("relstore: table %s: column %s expects string, got %T", t.name, c.Name, vals[i])
			}
			t.strs[i] = append(t.strs[i], v)
		}
	}
	if t.pkCol >= 0 {
		t.pkIndex[vals[t.pkCol].(int64)] = t.rows
	}
	t.rows++
	return nil
}

// Lookup finds the row with the given primary key.
func (t *Table) Lookup(pk int64) (int, bool) {
	if t.pkIndex == nil {
		return 0, false
	}
	r, ok := t.pkIndex[pk]
	return r, ok
}

// Int reads an int64 cell.
func (t *Table) Int(row, col int) int64 { return t.ints[col][row] }

// Float reads a float64 cell.
func (t *Table) Float(row, col int) float64 { return t.floats[col][row] }

// Str reads a string cell.
func (t *Table) Str(row, col int) string { return t.strs[col][row] }

// Cell reads any cell as an interface value.
func (t *Table) Cell(row, col int) interface{} {
	switch t.cols[col].Kind {
	case KindInt64:
		return t.ints[col][row]
	case KindFloat64:
		return t.floats[col][row]
	default:
		return t.strs[col][row]
	}
}

// Scan calls fn for each row until it returns false.
func (t *Table) Scan(fn func(row int) bool) {
	for r := 0; r < t.rows; r++ {
		if !fn(r) {
			return
		}
	}
}

// secondary is a non-unique hash index over one int64 column.
type secondary struct {
	col  int
	rows map[int64][]int
	upto int // rows indexed so far
}

// AddIndex creates (or returns) a secondary hash index on an int64
// column, enabling LookupAll point queries without a scan. The index is
// maintained lazily: it catches up with appended rows on first use.
func (t *Table) AddIndex(col string) error {
	i := t.ColumnIndex(col)
	if i < 0 {
		return fmt.Errorf("relstore: table %s: no column %q", t.name, col)
	}
	if t.cols[i].Kind != KindInt64 {
		return fmt.Errorf("relstore: table %s: index column %q must be BIGINT", t.name, col)
	}
	for _, s := range t.indexes {
		if s.col == i {
			return nil
		}
	}
	t.indexes = append(t.indexes, &secondary{col: i, rows: make(map[int64][]int)})
	return nil
}

// LookupAll returns the rows whose int64 column equals v, using a
// secondary index when one exists (building it up lazily) and a scan
// otherwise.
func (t *Table) LookupAll(col string, v int64) []int {
	i := t.ColumnIndex(col)
	if i < 0 {
		return nil
	}
	for _, s := range t.indexes {
		if s.col != i {
			continue
		}
		for ; s.upto < t.rows; s.upto++ {
			key := t.ints[i][s.upto]
			s.rows[key] = append(s.rows[key], s.upto)
		}
		return s.rows[v]
	}
	var out []int
	for r := 0; r < t.rows; r++ {
		if t.ints[i][r] == v {
			out = append(out, r)
		}
	}
	return out
}

// Format renders the table content, sorted by primary key (or insertion
// order), in the layout of the paper's Table 2.
func (t *Table) Format() string {
	var b strings.Builder
	b.WriteString(t.name)
	b.WriteByte('\n')
	names := make([]string, len(t.cols))
	for i, c := range t.cols {
		names[i] = c.Name
	}
	b.WriteString(strings.Join(names, " | "))
	b.WriteByte('\n')
	order := make([]int, t.rows)
	for i := range order {
		order[i] = i
	}
	if t.pkCol >= 0 {
		sort.Slice(order, func(i, j int) bool {
			return t.ints[t.pkCol][order[i]] < t.ints[t.pkCol][order[j]]
		})
	}
	for _, r := range order {
		cells := make([]string, len(t.cols))
		for i := range t.cols {
			cells[i] = fmt.Sprint(t.Cell(r, i))
		}
		b.WriteString(strings.Join(cells, " | "))
		b.WriteByte('\n')
	}
	return b.String()
}

// DB is a named collection of tables.
type DB struct {
	tables map[string]*Table
	order  []string
}

// NewDB creates an empty database.
func NewDB() *DB { return &DB{tables: make(map[string]*Table)} }

// Add registers a table; duplicate names are rejected.
func (db *DB) Add(t *Table) error {
	if _, dup := db.tables[t.name]; dup {
		return fmt.Errorf("relstore: duplicate table %q", t.name)
	}
	db.tables[t.name] = t
	db.order = append(db.order, t.name)
	return nil
}

// Table looks up a table by name.
func (db *DB) Table(name string) (*Table, bool) {
	t, ok := db.tables[name]
	return t, ok
}

// Tables returns the tables in registration order.
func (db *DB) Tables() []*Table {
	out := make([]*Table, 0, len(db.order))
	for _, n := range db.order {
		out = append(out, db.tables[n])
	}
	return out
}
