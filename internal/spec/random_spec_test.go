package spec

import (
	"fmt"
	"math/rand"
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/mdm"
	"dimred/internal/workload"
)

// candidateActions is a pool of syntactically valid actions with varied
// granularities, windows and restrictions; random subsets of it form
// random specifications.
var candidateActions = []string{
	`aggregate [Time.month, URL.domain] where Time.month <= NOW - 2 months`,
	`aggregate [Time.month, URL.domain] where NOW - 8 months < Time.month and Time.month <= NOW - 2 months`,
	`aggregate [Time.month, URL.url] where URL.domain_grp = ".com" and Time.month <= NOW - 1 month`,
	`aggregate [Time.quarter, URL.domain] where Time.quarter <= NOW - 2 quarters`,
	`aggregate [Time.quarter, URL.domain_grp] where Time.quarter <= NOW - 3 quarters`,
	`aggregate [Time.year, URL.domain_grp] where Time.year <= NOW - 1 year`,
	`aggregate [Time.week, URL.domain] where URL.domain_grp = ".edu" and Time.week <= NOW - 10 weeks`,
	`aggregate [Time.month, URL.domain_grp] where URL.domain_grp = ".org" and Time.month <= NOW - 3 months`,
	`aggregate [Time.month, URL.domain] where Time.month <= 2000/3`,
	`delete where Time.year <= NOW - 2 years`,
	`aggregate [Time.day, URL.domain] where URL.domain_grp = ".com" and Time.day <= NOW - 10 days`,
}

// TestRandomSpecsSoundness draws random action subsets; whenever the
// constructor accepts one (i.e. the decision procedures certified
// NonCrossing and Growing), the semantic guarantees are validated
// empirically over a generated fact population: Cell/AggLevel never hit
// an incomparable maximum, the aggregation level never decreases over
// time, and deletion, once triggered, is permanent.
func TestRandomSpecsSoundness(t *testing.T) {
	obj, err := workload.BuildClickMO(workload.ClickConfig{
		Seed: 55, Start: caltime.Date(2000, 1, 1), Days: 120,
		ClicksPerDay: 6, Domains: 9, URLsPerDomain: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(obj.Schema, "Time", obj.Time)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	accepted, rejected := 0, 0
	times := []caltime.Day{
		caltime.Date(2000, 3, 1), caltime.Date(2000, 7, 9),
		caltime.Date(2000, 12, 30), caltime.Date(2001, 1, 1),
		caltime.Date(2001, 8, 17), caltime.Date(2003, 2, 2),
	}
	for trial := 0; trial < 40; trial++ {
		// Random subset of 1-4 candidates.
		perm := rng.Perm(len(candidateActions))
		n := 1 + rng.Intn(4)
		var actions []*Action
		for i := 0; i < n; i++ {
			a, err := CompileString(fmt.Sprintf("r%d", i), candidateActions[perm[i]], env)
			if err != nil {
				t.Fatal(err)
			}
			actions = append(actions, a)
		}
		s, err := New(env, actions...)
		if err != nil {
			rejected++
			continue
		}
		accepted++

		// Empirical validation over a sample of facts.
		for f := 0; f < obj.MO.Len(); f += 13 {
			cell := obj.MO.Refs(mdm.FactID(f))
			var prev mdm.Granularity
			wasDeleted := false
			for _, at := range times {
				if del := s.DeletedBy(cell, at); del != nil {
					wasDeleted = true
					continue
				}
				if wasDeleted {
					t.Fatalf("trial %d: fact undeleted at %v under accepted spec %v",
						trial, at, names(actions))
				}
				lvl, _ := s.AggLevel(cell, at)
				if prev != nil {
					for i := range lvl {
						if !env.Schema.Dims[i].CatLE(prev[i], lvl[i]) {
							t.Fatalf("trial %d: AggLevel decreased in dim %d at %v under accepted spec %v",
								trial, i, at, names(actions))
						}
					}
				}
				prev = lvl
			}
		}
	}
	if accepted == 0 {
		t.Error("no random spec was accepted; the pool is too hostile")
	}
	if rejected == 0 {
		t.Error("no random spec was rejected; the pool is too tame")
	}
	t.Logf("accepted %d, rejected %d", accepted, rejected)
}

func names(as []*Action) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Source().String()
	}
	return out
}

// TestRandomSpecsDeletionMonotone: under accepted specs containing
// deletion actions, DeletedBy is monotone in time for anchored-or-
// growing deletion windows.
func TestRandomSpecsDeletionMonotone(t *testing.T) {
	obj, err := workload.BuildClickMO(workload.ClickConfig{
		Seed: 56, Start: caltime.Date(2000, 1, 1), Days: 60, ClicksPerDay: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(obj.Schema, "Time", obj.Time)
	if err != nil {
		t.Fatal(err)
	}
	del := MustCompileString("purge", `delete where Time.quarter <= NOW - 2 quarters`, env)
	s, err := New(env, del)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < obj.MO.Len(); f += 7 {
		cell := obj.MO.Refs(mdm.FactID(f))
		deleted := false
		for d := caltime.Date(2000, 1, 1); d < caltime.Date(2002, 1, 1); d += 30 {
			now := s.DeletedBy(cell, d) != nil
			if deleted && !now {
				t.Fatalf("deletion not monotone for fact %d at %v", f, d)
			}
			deleted = now
		}
		if !deleted {
			t.Errorf("fact %d never deleted", f)
		}
	}
}
