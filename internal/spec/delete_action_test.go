package spec

import (
	"strings"
	"testing"

	"dimred/internal/mdm"
)

// Tests for the fact-deletion extension (the paper's Section 8 future
// work): "delete where <pred>" actions slot into the <=_V order above
// every aggregation.

func TestDeleteActionCompileAndOrder(t *testing.T) {
	_, env := paperEnv(t)
	del := MustCompileString("purge",
		`delete where Time.year <= NOW - 5 years`, env)
	if !del.IsDelete() {
		t.Fatal("IsDelete false")
	}
	if !del.Growing() {
		t.Error("deletion actions carry no Growing obligation")
	}
	if !strings.HasPrefix(del.Source().String(), "delete where") {
		t.Errorf("rendering = %q", del.Source().String())
	}
	a1 := MustCompileString("a1", srcA1, env)
	if !LessEq(a1, del) {
		t.Error("aggregation should be <=_V deletion")
	}
	if LessEq(del, a1) {
		t.Error("deletion should not be <=_V aggregation")
	}
	del2 := MustCompileString("purge2", `delete where Time.year <= NOW - 9 years`, env)
	if !LessEq(del, del2) || !LessEq(del2, del) {
		t.Error("deletions should be mutually comparable")
	}
}

func TestDeleteActionCoversShrinkingWindow(t *testing.T) {
	// A shrinking aggregation window covered by deletion instead of a
	// coarser aggregation: cells escaping the window are removed, which
	// preserves irreversibility.
	_, env := paperEnv(t)
	a1 := MustCompileString("a1", srcA1, env)
	if err := CheckGrowing(env, []*Action{a1}); err == nil {
		t.Fatal("a1 alone should violate Growing")
	}
	del := MustCompileString("purge",
		`delete where URL.domain_grp = ".com" and Time.month <= NOW - 12 months`, env)
	if err := CheckGrowing(env, []*Action{a1, del}); err != nil {
		t.Errorf("deletion should cover a1's shrinkage: %v", err)
	}
	if err := CheckNonCrossing(env, []*Action{a1, del}); err != nil {
		t.Errorf("deletion is ordered above everything: %v", err)
	}
}

func TestDeletedByAndAggLevel(t *testing.T) {
	p, env := paperEnv(t)
	del := MustCompileString("purge", `delete where Time.year <= NOW - 3 years`, env)
	a2 := MustCompileString("a2", srcA2, env)
	s, err := New(env, a2, del)
	if err != nil {
		t.Fatal(err)
	}
	cell := p.MO.Refs(p.Facts[0]) // 1999/11/23
	// At 2001: aggregated by a2, not deleted.
	at := day(t, "2001/6/1")
	if s.DeletedBy(cell, at) != nil {
		t.Error("fact_0 should not be deleted at 2001/6/1")
	}
	lvl, _ := s.AggLevel(cell, at)
	if got := env.Schema.GranString(lvl); got != "(Time.quarter, URL.domain)" {
		t.Errorf("AggLevel = %s", got)
	}
	// At 2003: 1999 <= 2003-3 -> deleted. AggLevel must ignore the
	// deletion action's synthetic all-top target.
	late := day(t, "2003/6/1")
	if got := s.DeletedBy(cell, late); got == nil || got.Name() != "purge" {
		t.Errorf("DeletedBy = %v", got)
	}
	lvl, _ = s.AggLevel(cell, late)
	if got := env.Schema.GranString(lvl); got != "(Time.quarter, URL.domain)" {
		t.Errorf("AggLevel with deletion pending = %s", got)
	}
}

func TestDeleteActionInSpecLifecycle(t *testing.T) {
	p, env := paperEnv(t)
	a2 := MustCompileString("a2", srcA2, env)
	del := MustCompileString("purge", `delete where Time.year <= NOW - 3 years`, env)
	s, err := New(env, a2, del)
	if err != nil {
		t.Fatal(err)
	}
	// Removing the deletion action later is permitted while it is not
	// responsible for anything (the facts are merely old, not yet
	// deleted — responsibility concerns current granularity only).
	if err := s.Delete(p.MO, day(t, "2001/1/1"), "purge"); err != nil {
		t.Errorf("deleting an idle purge action: %v", err)
	}
	_ = mdm.FactID(0)
}
