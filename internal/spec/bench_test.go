package spec

import (
	"fmt"
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/workload"
)

// BenchmarkCheckGrowingScaling is the soundness-check ablation: cost of
// the Growing decision as the number of chained shrinking windows (each
// covered by the next) grows. The paper argues the |A|^2 NonCrossing
// cost is acceptable because specs are small and updates rare; this
// measures our exact Growing procedure under the same assumption.
func BenchmarkCheckGrowingScaling(b *testing.B) {
	obj, err := workload.BuildClickMO(workload.ClickConfig{
		Seed: 3, Start: caltime.Date(2000, 1, 1), Days: 365, ClicksPerDay: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	env, err := NewEnv(obj.Schema, "Time", obj.Time)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("windows=%d", n), func(b *testing.B) {
			var actions []*Action
			// Chain: window i covers (NOW-6(i+1), NOW-6i] months at
			// granularity month; a final unbounded quarter action covers
			// the last window's shrinkage.
			for i := 0; i < n; i++ {
				src := fmt.Sprintf(
					`aggregate [Time.month, URL.domain] where NOW - %d months < Time.month and Time.month <= NOW - %d months`,
					6*(i+2), 6*(i+1))
				actions = append(actions, MustCompileString(fmt.Sprintf("w%d", i), src, env))
			}
			actions = append(actions, MustCompileString("tail",
				fmt.Sprintf(`aggregate [Time.quarter, URL.domain] where Time.quarter <= NOW - %d quarters`, 2*(n+1)), env))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := CheckGrowing(env, actions); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSatisfiedBy(b *testing.B) {
	obj, err := workload.BuildClickMO(workload.ClickConfig{
		Seed: 4, Start: caltime.Date(2000, 1, 1), Days: 60, ClicksPerDay: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	env, err := NewEnv(obj.Schema, "Time", obj.Time)
	if err != nil {
		b.Fatal(err)
	}
	a := MustCompileString("a",
		`aggregate [Time.month, URL.domain] where URL.domain_grp = ".com" and Time.month <= NOW - 2 months`, env)
	cell := obj.MO.Refs(0)
	at := caltime.Date(2000, 6, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.SatisfiedBy(cell, at)
	}
}

// BenchmarkTheorem1Ablation measures what the paper's Theorem 1 buys:
// growing actions are accepted without discharging the coverage
// obligation, versus the exhaustive check that sweeps them anyway.
func BenchmarkTheorem1Ablation(b *testing.B) {
	obj, err := workload.BuildClickMO(workload.ClickConfig{
		Seed: 6, Start: caltime.Date(2000, 1, 1), Days: 365, ClicksPerDay: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	env, err := NewEnv(obj.Schema, "Time", obj.Time)
	if err != nil {
		b.Fatal(err)
	}
	// All-growing spec: the shortcut skips every action.
	actions := []*Action{
		MustCompileString("m", `aggregate [Time.month, URL.domain] where Time.month <= NOW - 2 months`, env),
		MustCompileString("q", `aggregate [Time.quarter, URL.domain_grp] where Time.quarter <= NOW - 4 quarters`, env),
		MustCompileString("y", `aggregate [Time.year, URL.domain_grp] where Time.year <= NOW - 2 years`, env),
	}
	b.Run("with-theorem1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := CheckGrowing(env, actions); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := CheckGrowingExhaustive(env, actions); err != nil {
				b.Fatal(err)
			}
		}
	})
}
