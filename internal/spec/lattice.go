package spec

import (
	"fmt"
	"strconv"
	"strings"

	"dimred/internal/mdm"
)

// This file is the category-type-lattice helper behind materialized
// rollup views (Gray et al.'s data-cube lattice over grouping levels).
// Granularities form a lattice under <=_g (Eq. 6); a view materialized
// at granularity G can answer a query at granularity G_q exactly when
// G <=_g G_q, because Definition 6's distributive aggregate functions
// make the two-step fold α[G_q](α[G](O)) equal to the direct α[G_q](O).

// RollupReachable reports whether facts materialized at granularity
// `from` can be further aggregated to granularity `to`: the lattice
// order <=_g, pointwise over each dimension's category hierarchy.
// Parallel hierarchies (e.g. Time.week versus Time.month) are
// incomparable, so neither can serve the other.
func RollupReachable(env *Env, from, to mdm.Granularity) bool {
	return RollupReachableSchema(env.Schema, from, to)
}

// RollupReachableSchema is RollupReachable for callers that hold only
// the schema.
func RollupReachableSchema(schema *mdm.Schema, from, to mdm.Granularity) bool {
	n := schema.NumDims()
	if len(from) != n || len(to) != n {
		return false
	}
	return schema.GranLE(from, to)
}

// EstimateCells bounds the number of cells a view materialized at g can
// hold: the product of each category's value-universe size, saturating
// on overflow. The greedy selector uses it to estimate bytes saved
// before paying for a build.
func EstimateCells(env *Env, g mdm.Granularity) int64 {
	var cells int64 = 1
	for i, d := range env.Schema.Dims {
		n := int64(len(d.ValuesIn(g[i])))
		if n == 0 {
			n = 1
		}
		if cells > (1<<62)/n {
			return 1 << 62 // saturate: the bound only ranks candidates
		}
		cells *= n
	}
	return cells
}

// EncodeGran renders a granularity as a compact, order-stable shape key
// ("3.1" for category ids 3 and 1 in dimension order), the currency of
// the obs query-shape trace. DecodeGran inverts it.
func EncodeGran(g mdm.Granularity) string {
	var b strings.Builder
	for i, c := range g {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.Itoa(int(c)))
	}
	return b.String()
}

// DecodeGran parses an EncodeGran key back into a granularity,
// validating every category id against the schema so a corrupt key can
// never index out of a dimension's category table.
func DecodeGran(env *Env, key string) (mdm.Granularity, error) {
	parts := strings.Split(key, ".")
	if len(parts) != env.Schema.NumDims() {
		return nil, fmt.Errorf("spec: shape key %q has %d categories, schema needs %d",
			key, len(parts), env.Schema.NumDims())
	}
	g := make(mdm.Granularity, len(parts))
	for i, p := range parts {
		c, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("spec: shape key %q: %w", key, err)
		}
		if c < 0 || c >= env.Schema.Dims[i].NumCategories() {
			return nil, fmt.Errorf("spec: shape key %q: category %d out of range for dimension %s",
				key, c, env.Schema.Dims[i].Name())
		}
		g[i] = mdm.CategoryID(c)
	}
	return g, nil
}
