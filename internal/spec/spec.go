package spec

import (
	"fmt"
	"strings"

	"dimred/internal/caltime"
	"dimred/internal/mdm"
	"dimred/internal/prover"
)

// Spec is a data reduction specification V = (A, <=_V): a set of actions
// with the granularity order. A Spec always satisfies NonCrossing and
// Growing: the constructors and the insert/delete operators reject
// updates that would violate them, per Definitions 3 and 4.
type Spec struct {
	//dimred:shared the schema environment is frozen after construction; every Spec over a schema shares one Env
	env     *Env
	actions []*Action
	// gen counts committed mutations of the action set. Specifications
	// mutate in place, so derived structures (compiled specexec
	// programs) cannot be cached by pointer alone; they key on
	// (pointer, generation) instead and every mutator must bump the
	// generation when it commits — the invariantcall lint analyzer
	// enforces the discipline alongside the NonCrossing/Growing checks.
	gen uint64
}

// Generation returns the specification's mutation generation: it
// increases on every committed Insert or Delete and never otherwise, so
// an unchanged generation (for the same *Spec) guarantees an unchanged
// action set. Reads and mutations must be externally synchronized, as
// for the action set itself (the warehouse holds its write lock across
// mutators).
func (s *Spec) Generation() uint64 { return s.gen }

// bumpGeneration records a committed mutation of the action set. Every
// write path of s.actions must call it (see Generation).
func (s *Spec) bumpGeneration() { s.gen++ }

// Empty returns a specification with no actions.
func Empty(env *Env) *Spec {
	return &Spec{env: env}
}

// New builds a specification from the given actions, verifying
// NonCrossing and Growing.
func New(env *Env, actions ...*Action) (*Spec, error) {
	s := &Spec{env: env}
	if err := s.Insert(actions...); err != nil {
		return nil, err
	}
	return s, nil
}

// Clone returns an independent specification with the same action set
// and the same generation. Compiled actions are immutable, so the clone
// shares them; the action slice itself is copied, and later mutations
// of either specification leave the other untouched. The generation
// carries over so that generation-keyed caches treat the clone as the
// same logical state, and lockstep mutations of two clones keep their
// generations equal.
func (s *Spec) Clone() *Spec {
	return &Spec{env: s.env, actions: append([]*Action(nil), s.actions...), gen: s.gen}
}

// Env returns the schema environment the specification is bound to.
func (s *Spec) Env() *Env { return s.env }

// Actions returns the current action set. The caller must not modify the
// returned slice.
func (s *Spec) Actions() []*Action { return s.actions }

// ActionByName looks up an action.
func (s *Spec) ActionByName(name string) (*Action, bool) {
	for _, a := range s.actions {
		if a.name == name {
			return a, true
		}
	}
	return nil, false
}

// Insert is the insert-operator of Definition 3: it adds the whole set of
// new actions if the resulting specification is Growing and NonCrossing,
// and leaves the specification unchanged otherwise (returning the reason).
func (s *Spec) Insert(newActions ...*Action) error {
	for _, a := range newActions {
		if a == nil {
			return fmt.Errorf("spec: Insert: nil action")
		}
		if a.env != s.env {
			return fmt.Errorf("spec: Insert: action %s compiled against a different environment", a.name)
		}
		if _, dup := s.ActionByName(a.name); dup {
			return fmt.Errorf("spec: Insert: duplicate action name %q", a.name)
		}
	}
	for i, a := range newActions {
		for _, b := range newActions[i+1:] {
			if a.name == b.name {
				return fmt.Errorf("spec: Insert: duplicate action name %q", a.name)
			}
		}
	}
	candidate := append(append([]*Action(nil), s.actions...), newActions...)
	if err := CheckNonCrossing(s.env, candidate); err != nil {
		return fmt.Errorf("spec: Insert rejected: %w", err)
	}
	if err := CheckGrowing(s.env, candidate); err != nil {
		return fmt.Errorf("spec: Insert rejected: %w", err)
	}
	s.actions = candidate
	s.bumpGeneration()
	return nil
}

// Delete is the delete-operator of Definition 4 at time t: the named
// actions are removed together if (a) the remaining specification is
// still Growing and NonCrossing, and (b) none of the removed actions is
// currently responsible for the aggregation level of any fact in the MO.
// Otherwise the specification is unchanged and the reason is returned.
func (s *Spec) Delete(mo *mdm.MO, t caltime.Day, names ...string) error {
	doomed := make(map[string]bool, len(names))
	var removed []*Action
	for _, n := range names {
		a, ok := s.ActionByName(n)
		if !ok {
			return fmt.Errorf("spec: Delete: no action %q", n)
		}
		if !doomed[n] {
			doomed[n] = true
			removed = append(removed, a)
		}
	}
	var remaining []*Action
	for _, a := range s.actions {
		if !doomed[a.name] {
			remaining = append(remaining, a)
		}
	}
	if err := CheckNonCrossing(s.env, remaining); err != nil {
		return fmt.Errorf("spec: Delete rejected: %w", err)
	}
	if err := CheckGrowing(s.env, remaining); err != nil {
		return fmt.Errorf("spec: Delete rejected: %w", err)
	}
	// Responsibility check against the facts actually in the MO: for
	// every fact whose direct cell satisfies a removed action's
	// predicate, either the fact is already at a granularity strictly
	// above the action's target, or a remaining action with the same
	// target granularity also selects it.
	if mo != nil {
		for _, a := range removed {
			for f := 0; f < mo.Len(); f++ {
				cell := mo.Refs(mdm.FactID(f))
				if !a.SatisfiedBy(cell, t) {
					continue
				}
				gran := mo.Gran(mdm.FactID(f))
				if s.env.Schema.GranLE(a.target, gran) && !s.env.Schema.GranEq(a.target, gran) {
					continue // already aggregated beyond a's level
				}
				substituted := false
				for _, b := range remaining {
					if s.env.Schema.GranEq(b.target, a.target) && b.SatisfiedBy(cell, t) {
						substituted = true
						break
					}
				}
				if !substituted {
					return fmt.Errorf("spec: Delete rejected: action %s is responsible for fact %s at %s",
						a.name, mo.Name(mdm.FactID(f)), t)
				}
			}
		}
	}
	s.actions = remaining
	s.bumpGeneration()
	return nil
}

// AggLevel returns AggLevel_i for every dimension (Eq. 13): for the
// given cell at time t, the highest category each dimension is
// aggregated to by any satisfied action, bottoming out at the cell's
// own granularity. The second result names, per dimension, the action
// responsible for that level (nil where the cell's own granularity
// prevails), supporting the paper's requirement that users can be told
// why data is aggregated the way it is.
func (s *Spec) AggLevel(cell []mdm.ValueID, t caltime.Day) (mdm.Granularity, []*Action) {
	n := len(s.env.Schema.Dims)
	level := make(mdm.Granularity, n)
	resp := make([]*Action, n)
	for i, d := range s.env.Schema.Dims {
		level[i] = d.CategoryOf(cell[i])
	}
	for _, a := range s.actions {
		if a.isDelete || !a.SatisfiedBy(cell, t) {
			continue
		}
		for i, d := range s.env.Schema.Dims {
			if d.CatLE(level[i], a.target[i]) && level[i] != a.target[i] {
				level[i] = a.target[i]
				resp[i] = a
			}
		}
	}
	return level, resp
}

// DeletedBy returns the first deletion action whose predicate the cell
// satisfies at time t, or nil. Deletion dominates aggregation: a cell
// selected by a deletion action is physically removed regardless of
// other actions.
func (s *Spec) DeletedBy(cell []mdm.ValueID, t caltime.Day) *Action {
	for _, a := range s.actions {
		if a.isDelete && a.SatisfiedBy(cell, t) {
			return a
		}
	}
	return nil
}

// Explain renders, for a cell at time t, which actions apply and what
// each dimension's aggregation level is — the paper's requirement that
// users can be told "why data is aggregated the way it is" (Section 4).
func (s *Spec) Explain(cell []mdm.ValueID, t caltime.Day) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cell (")
	for i, d := range s.env.Schema.Dims {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(d.ValueName(cell[i]))
	}
	fmt.Fprintf(&b, ") at %s:\n", t)
	if del := s.DeletedBy(cell, t); del != nil {
		fmt.Fprintf(&b, "  physically deleted by action %s\n", del.Name())
		return b.String()
	}
	level, resp := s.AggLevel(cell, t)
	for i, d := range s.env.Schema.Dims {
		fmt.Fprintf(&b, "  %s -> %s", d.Name(), d.Category(level[i]).Name)
		if resp[i] != nil {
			fmt.Fprintf(&b, " (by action %s)", resp[i].Name())
		} else {
			b.WriteString(" (own granularity)")
		}
		b.WriteByte('\n')
	}
	for _, a := range s.actions {
		if !a.isDelete && a.SatisfiedBy(cell, t) {
			fmt.Fprintf(&b, "  satisfies %s\n", a)
		}
	}
	return b.String()
}

// String renders the specification, one action per line.
func (s *Spec) String() string {
	var b strings.Builder
	for _, a := range s.actions {
		b.WriteString(a.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// CheckNonCrossing verifies the NonCrossing property (Eq. 14) over an
// action set, using the operational algorithm of Section 5.2: for every
// unordered pair, decide whether a time exists at which both predicates
// select a common cell.
func CheckNonCrossing(env *Env, actions []*Action) error {
	hz, ok := env.Horizon(actions)
	for i, a := range actions {
		for _, b := range actions[i+1:] {
			if LessEq(a, b) || LessEq(b, a) {
				continue // ordered: crossing impossible
			}
			if !ok {
				// No temporal information: predicates are either
				// time-free or vacuous; check a single instant.
				hz = prover.Horizon{Min: 0, Max: 0}
			}
			overlap, at := overlapAnyDisjunct(env, a, b, hz)
			if overlap {
				return fmt.Errorf("noncrossing violated: actions %s and %s are unordered but overlap at %s (targets %s vs %s)",
					a.name, b.name, at, a.DescribeTargets(), b.DescribeTargets())
			}
		}
	}
	return nil
}

// ActionsOverlap reports whether two actions' predicates can select a
// common cell at some time — the building block of the NonCrossing check,
// exported for the subcube engine's parent/child analysis.
func ActionsOverlap(env *Env, a, b *Action) bool {
	hz, ok := env.Horizon([]*Action{a, b})
	if !ok {
		hz = prover.Horizon{Min: 0, Max: 0}
	}
	overlap, _ := overlapAnyDisjunct(env, a, b, hz)
	return overlap
}

// ActionFeeds reports whether a cell selected by action a at some time t
// can be selected by action b at t+1 — the migration-edge criterion of
// the subcube DAG: when a's (shrinking) predicate releases a cell, b's
// predicate catches it the next day even though the two regions never
// overlap at the same instant.
func ActionFeeds(env *Env, a, b *Action) bool {
	hz, ok := env.Horizon([]*Action{a, b})
	if !ok {
		hz = prover.Horizon{Min: 0, Max: 0}
	}
	universes := env.Universes()
	for _, ra := range a.Regions() {
		for _, rb := range b.Regions() {
			if ok, _ := prover.OverlapsShifted(ra, rb, 1, hz, universes); ok {
				return true
			}
		}
	}
	return false
}

func overlapAnyDisjunct(env *Env, a, b *Action, hz prover.Horizon) (bool, caltime.Day) {
	universes := env.Universes()
	for _, ra := range a.Regions() {
		for _, rb := range b.Regions() {
			if ok, at := prover.Overlaps(ra, rb, hz, universes); ok {
				return true, at
			}
		}
	}
	return false, 0
}

// CheckGrowing verifies the Growing property (Eq. 17) over an action
// set, following Section 5.3: growing actions (boundary categories A-E)
// are accepted by Theorem 1; for each non-growing action a (categories
// F-H) the Eq. 23 obligation is discharged — every cell a selects at
// time t must, at time t+1, still be selected by a or by an action
// aggregating at least as high (the candidate set A' = {a_j | a <=_V
// a_j}). The obligation is decided exactly over the model's horizon.
func CheckGrowing(env *Env, actions []*Action) error {
	return checkGrowing(env, actions, true)
}

// CheckGrowingExhaustive runs the Growing check without the Theorem 1
// shortcut, discharging the coverage obligation for every action
// including the provably-growing ones. It exists to measure what the
// theorem saves (see the ablation benchmarks); its verdicts always
// match CheckGrowing's.
func CheckGrowingExhaustive(env *Env, actions []*Action) error {
	return checkGrowing(env, actions, false)
}

func checkGrowing(env *Env, actions []*Action, useTheorem1 bool) error {
	hz, ok := env.Horizon(actions)
	if !ok {
		return nil // no temporal information: vacuously growing
	}
	universes := env.Universes()
	for _, a := range actions {
		if useTheorem1 && a.Growing() {
			continue
		}
		// Candidate covers: a itself tomorrow, plus every action
		// aggregating at least as high.
		var covers []prover.Region
		for _, b := range actions {
			if LessEq(a, b) {
				covers = append(covers, b.Regions()...)
			}
		}
		for _, ra := range a.Regions() {
			for t := hz.SweepStart(); t <= hz.SweepEnd(); t++ {
				if !prover.CoversAtTimes(ra, t, covers, t+1, hz, universes) {
					return fmt.Errorf("growing violated: cells selected by action %s at %s are no longer aggregated to %s at %s",
						a.name, t, a.DescribeTargets(), t+1)
				}
			}
		}
	}
	return nil
}
