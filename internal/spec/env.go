// Package spec implements data reduction specifications (Section 4 of
// Skyt, Jensen & Pedersen): reduction actions compiled against a schema,
// the partial order <=_V on actions, the evaluation of action predicates
// on cells (the function Pred), the per-dimension aggregation level
// AggLevel_i, the soundness properties NonCrossing and Growing with
// their operational checks (Sections 4.3, 5.2 and 5.3, with the
// theorem-prover obligations discharged by package prover), and the
// insert and delete operators for actions (Definitions 3 and 4).
package spec

import (
	"fmt"

	"dimred/internal/caltime"
	"dimred/internal/mdm"
	"dimred/internal/prover"
)

// TimeModel exposes the calendar interpretation of the time dimension;
// *dims.TimeDim satisfies it.
type TimeModel interface {
	// UnitForCategory maps a category of the time dimension to its
	// calendar unit; ok is false for the top category.
	UnitForCategory(c mdm.CategoryID) (caltime.Unit, bool)
	// Range returns the smallest and largest day value present; ok is
	// false when the dimension has no days yet.
	Range() (min, max caltime.Day, ok bool)
}

// Env binds a schema to its time dimension. At most one dimension may be
// temporal; the NOW variable and time literals may only constrain it, as
// in the paper ("variables occur in predicates only for the time
// dimension").
type Env struct {
	Schema  *mdm.Schema
	TimeDim int // index into Schema.Dims, or -1
	Time    TimeModel
}

// NewEnv creates an environment. timeDimName may be empty for schemas
// with no temporal dimension (NOW-relative actions are then rejected).
func NewEnv(schema *mdm.Schema, timeDimName string, tm TimeModel) (*Env, error) {
	e := &Env{Schema: schema, TimeDim: -1}
	if timeDimName != "" {
		i := schema.DimIndex(timeDimName)
		if i < 0 {
			return nil, fmt.Errorf("spec: no dimension %q in schema", timeDimName)
		}
		if tm == nil {
			return nil, fmt.Errorf("spec: time dimension %q needs a TimeModel", timeDimName)
		}
		e.TimeDim = i
		e.Time = tm
	}
	return e, nil
}

// unitOf resolves the calendar unit of a time-dimension category.
func (e *Env) unitOf(c mdm.CategoryID) (caltime.Unit, bool) {
	if e.Time == nil {
		return 0, false
	}
	return e.Time.UnitForCategory(c)
}

// Universes returns the leaf-universe sizes per dimension for the
// decision procedure (the time dimension's entry is unused). Checks are
// closed-world over the populated values — the same domain knowledge the
// paper feeds its theorem prover (Eq. 29) — except that a dimension with
// no values yet contributes one phantom leaf, standing for "some future
// value that satisfies no specific value constraint", so specification
// checks on an empty warehouse are not vacuous.
func (e *Env) Universes() []int {
	u := make([]int, len(e.Schema.Dims))
	for i, d := range e.Schema.Dims {
		u[i] = len(d.ValuesIn(d.Bottom()))
		if u[i] == 0 {
			u[i] = 1
		}
	}
	return u
}

// Horizon computes the decision-procedure horizon for a set of actions:
// the populated day range of the time dimension, extended to include
// every anchored literal in the actions, padded by the largest NOW
// offset. ok is false when there is no temporal information at all, in
// which case time checks hold vacuously.
func (e *Env) Horizon(actions []*Action) (prover.Horizon, bool) {
	var hz prover.Horizon
	have := false
	if e.Time != nil {
		if min, max, ok := e.Time.Range(); ok {
			hz.Min, hz.Max, have = min, max, true
		}
	}
	var maxOff int64
	for _, a := range actions {
		for _, d := range a.disjuncts {
			for _, tst := range d.tests {
				if !tst.isTime {
					continue
				}
				for _, ex := range tst.timeRHS {
					if o := ex.MaxOffsetDays(); o > maxOff {
						maxOff = o
					}
					if u, anchored := ex.BaseUnit(); anchored {
						p := caltime.Period{Unit: u, Index: ex.Anchor.Index}
						lo, hi := p.First(), p.Last()
						if !have {
							hz.Min, hz.Max, have = lo, hi, true
						} else {
							if lo < hz.Min {
								hz.Min = lo
							}
							if hi > hz.Max {
								hz.Max = hi
							}
						}
					}
				}
			}
		}
	}
	if !have {
		if maxOff == 0 {
			// No temporal constraints at all: time checks are vacuous.
			return prover.Horizon{}, false
		}
		// NOW-relative actions over an empty model: the paper requires
		// insert checks to depend on the specification only, and
		// NOW-relative behaviour is translation-invariant, so a
		// synthetic canonical window sized to the offsets decides the
		// checks for data wherever it later arrives.
		//dimred:allow nowflow synthetic canonical window, not an evaluation time: NOW-relative checks are translation-invariant over an empty model
		hz.Min = caltime.Date(2000, 1, 1)
		hz.Max = caltime.Date(2000, 1, 1) + caltime.Day(2*maxOff+800)
		have = true
	}
	hz.MaxOffset = maxOff
	// Pad by the coarsest period length so boundary periods are complete.
	hz.Min = caltime.PeriodOf(hz.Min, caltime.UnitYear).First() - 1
	hz.Max = caltime.PeriodOf(hz.Max, caltime.UnitYear).Last() + 1
	return hz, true
}
