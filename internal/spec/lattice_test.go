package spec

import (
	"testing"

	"dimred/internal/mdm"
)

func granOf(t *testing.T, env *Env, refs ...string) mdm.Granularity {
	t.Helper()
	g, err := env.Schema.ParseGranularity(refs)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRollupReachable(t *testing.T) {
	_, env := paperEnv(t)
	monthDomain := granOf(t, env, "Time.month", "URL.domain")
	quarterDomain := granOf(t, env, "Time.quarter", "URL.domain")
	quarterGrp := granOf(t, env, "Time.quarter", "URL.domain_grp")
	weekURL := granOf(t, env, "Time.week", "URL.url")
	weekDomain := granOf(t, env, "Time.week", "URL.domain")

	cases := []struct {
		name     string
		from, to mdm.Granularity
		want     bool
	}{
		{"reflexive", monthDomain, monthDomain, true},
		{"month rolls to quarter", monthDomain, quarterDomain, true},
		{"both dims roll up", monthDomain, quarterGrp, true},
		{"quarter cannot refine to month", quarterDomain, monthDomain, false},
		{"week and month are parallel", weekDomain, monthDomain, false},
		{"month cannot serve week", monthDomain, weekDomain, false},
		{"bottom-ish week.url rolls to week.domain", weekURL, weekDomain, true},
	}
	for _, c := range cases {
		if got := RollupReachable(env, c.from, c.to); got != c.want {
			t.Errorf("%s: RollupReachable(%s, %s) = %v, want %v", c.name,
				env.Schema.GranString(c.from), env.Schema.GranString(c.to), got, c.want)
		}
	}
	// Malformed tuples never reach GranLE.
	if RollupReachable(env, monthDomain[:1], quarterDomain) {
		t.Error("short granularity should not be reachable")
	}
}

func TestEncodeDecodeGranRoundTrip(t *testing.T) {
	_, env := paperEnv(t)
	for _, refs := range [][]string{
		{"Time.month", "URL.domain"},
		{"Time.quarter", "URL.domain_grp"},
		{"Time.week", "URL.url"},
		{"Time.day", "URL.url"},
	} {
		g := granOf(t, env, refs...)
		key := EncodeGran(g)
		back, err := DecodeGran(env, key)
		if err != nil {
			t.Fatalf("DecodeGran(%q): %v", key, err)
		}
		if !env.Schema.GranEq(g, back) {
			t.Errorf("round trip of %s via %q gave %s",
				env.Schema.GranString(g), key, env.Schema.GranString(back))
		}
	}
}

func TestDecodeGranRejectsMalformedKeys(t *testing.T) {
	_, env := paperEnv(t)
	for _, key := range []string{"", "1", "1.2.3", "x.1", "-1.0", "999.0"} {
		if g, err := DecodeGran(env, key); err == nil {
			t.Errorf("DecodeGran(%q) = %v, want error", key, g)
		}
	}
}

func TestEstimateCells(t *testing.T) {
	_, env := paperEnv(t)
	day := granOf(t, env, "Time.day", "URL.url")
	month := granOf(t, env, "Time.month", "URL.domain")
	top := make(mdm.Granularity, env.Schema.NumDims())
	for i, d := range env.Schema.Dims {
		top[i] = d.Top()
	}
	if got := EstimateCells(env, month); got <= 0 {
		t.Fatalf("EstimateCells(month) = %d", got)
	}
	if EstimateCells(env, month) > EstimateCells(env, day) {
		t.Error("coarser granularity should not estimate more cells than finer")
	}
	// The all-top granularity collapses to few cells (top categories have
	// one value each).
	if got := EstimateCells(env, top); got != 1 {
		t.Errorf("EstimateCells(top) = %d, want 1", got)
	}
}
