package spec

import (
	"strings"
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/mdm"
)

// orderedEnv builds a schema with an ordered non-time dimension (Price
// bands keyed by their ordinal) plus a time dimension, to exercise the
// value-comparison operators the paper's URL dimension cannot.
func orderedEnv(t *testing.T) (*Env, *mdm.Dimension, map[string]mdm.ValueID) {
	t.Helper()
	p, _ := paperEnv(t)
	price := mdm.NewDimension("Price")
	band := price.MustAddCategory("band", true)
	tier := price.MustAddCategory("tier", false)
	if err := price.Contains(band, tier); err != nil {
		t.Fatal(err)
	}
	price.MustFinalize()
	vals := map[string]mdm.ValueID{}
	lo := price.MustAddValue(tier, "low", 0, nil)
	hi := price.MustAddValue(tier, "high", 0, nil)
	for i, n := range []string{"b0", "b1", "b2", "b3"} {
		parent := lo
		if i >= 2 {
			parent = hi
		}
		vals[n] = price.MustAddValue(band, n, int64(i), map[mdm.CategoryID]mdm.ValueID{tier: parent})
	}
	schema, err := mdm.NewSchema("Sale", []*mdm.Dimension{p.Time.Dimension, price},
		[]mdm.Measure{{Name: "amount", Agg: mdm.AggSum}})
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(schema, "Time", p.Time)
	if err != nil {
		t.Fatal(err)
	}
	// Ensure at least one day exists.
	p.Time.EnsureDay(caltime.Date(2000, 1, 1))
	return env, price, vals
}

func TestOrderedValueComparisons(t *testing.T) {
	env, price, vals := orderedEnv(t)
	a := MustCompileString("cheap",
		`aggregate [Time.month, Price.band] where Price.band < "b2" and Time.month <= NOW - 1 month`, env)
	td := env.Schema.Dims[0]
	dayVal := td.ValuesIn(td.Bottom())[0]
	at := caltime.Date(2000, 6, 1)

	if !a.SatisfiedBy([]mdm.ValueID{dayVal, vals["b1"]}, at) {
		t.Error("b1 < b2 should satisfy")
	}
	if a.SatisfiedBy([]mdm.ValueID{dayVal, vals["b2"]}, at) {
		t.Error("b2 < b2 should not satisfy")
	}
	// The remaining ordered operators.
	cases := []struct {
		src  string
		band string
		want bool
	}{
		{`Price.band <= "b2"`, "b2", true},
		{`Price.band <= "b2"`, "b3", false},
		{`Price.band >= "b2"`, "b2", true},
		{`Price.band >= "b2"`, "b1", false},
		{`Price.band > "b2"`, "b3", true},
		{`Price.band > "b2"`, "b2", false},
		{`Price.band != "b2"`, "b1", true},
		{`Price.band != "b2"`, "b2", false},
		{`Price.band in {"b0", "b3"}`, "b3", true},
		{`Price.band in {"b0", "b3"}`, "b1", false},
		{`Price.band not in {"b0", "b3"}`, "b1", true},
		{`Price.band not in {"b0", "b3"}`, "b0", false},
		// Comparison against an unknown operand satisfies nothing.
		{`Price.band < "zz"`, "b0", false},
	}
	for _, cc := range cases {
		a := MustCompileString("x", `aggregate [Time.month, Price.band] where `+cc.src, env)
		got := a.SatisfiedBy([]mdm.ValueID{dayVal, vals[cc.band]}, at)
		if got != cc.want {
			t.Errorf("%s on %s = %v, want %v", cc.src, cc.band, got, cc.want)
		}
	}
	_ = price
}

func TestTimeInPredicate(t *testing.T) {
	p, env := paperEnv(t)
	a := MustCompileString("pick",
		`aggregate [Time.quarter, URL.domain] where Time.quarter in {1999Q4} and URL.domain_grp = ".com"`, env)
	at := day(t, "2000/11/5")
	if !a.SatisfiedBy(p.MO.Refs(p.Facts[0]), at) {
		t.Error("fact_0 (1999Q4) should satisfy the in-set")
	}
	if a.SatisfiedBy(p.MO.Refs(p.Facts[4]), at) {
		t.Error("fact_4 (2000Q1) should not satisfy the in-set")
	}
	n := MustCompileString("skip",
		`aggregate [Time.quarter, URL.domain] where Time.quarter not in {1999Q4} and URL.domain_grp = ".com"`, env)
	if n.SatisfiedBy(p.MO.Refs(p.Facts[0]), at) {
		t.Error("fact_0 should fail the not-in-set")
	}
	if !n.SatisfiedBy(p.MO.Refs(p.Facts[4]), at) {
		t.Error("fact_4 should satisfy the not-in-set")
	}
	// NOW-relative membership: quarter in {NOW - 4 quarters}.
	rel := MustCompileString("rel",
		`aggregate [Time.quarter, URL.domain] where Time.quarter in {NOW - 4 quarters} and URL.domain_grp = ".com"`, env)
	if !rel.SatisfiedBy(p.MO.Refs(p.Facts[0]), at) {
		t.Error("1999Q4 = 2000Q4 - 4 should satisfy at 2000/11/5")
	}
	if rel.Growing() {
		t.Error("NOW-relative membership is a moving window: not growing")
	}
}

func TestTimeEqualityAndNE(t *testing.T) {
	p, env := paperEnv(t)
	at := day(t, "2000/11/5")
	eq := MustCompileString("eq",
		`aggregate [Time.month, URL.domain] where Time.month = 1999/12`, env)
	if !eq.SatisfiedBy(p.MO.Refs(p.Facts[1]), at) {
		t.Error("fact_1 (1999/12/4) should satisfy month = 1999/12")
	}
	if eq.SatisfiedBy(p.MO.Refs(p.Facts[0]), at) {
		t.Error("fact_0 (1999/11/23) should not satisfy month = 1999/12")
	}
	ne := MustCompileString("ne",
		`aggregate [Time.month, URL.domain] where Time.month != 1999/12`, env)
	if ne.SatisfiedBy(p.MO.Refs(p.Facts[1]), at) || !ne.SatisfiedBy(p.MO.Refs(p.Facts[0]), at) {
		t.Error("!= semantics wrong")
	}
	ge := MustCompileString("ge",
		`aggregate [Time.month, URL.domain] where Time.month >= 2000/1 and Time.month <= 2000/1`, env)
	if !ge.SatisfiedBy(p.MO.Refs(p.Facts[4]), at) || ge.SatisfiedBy(p.MO.Refs(p.Facts[1]), at) {
		t.Error(">= semantics wrong")
	}
	lt := MustCompileString("lt",
		`aggregate [Time.day, URL.url] where Time.day < 1999/12/4`, env)
	if !lt.SatisfiedBy(p.MO.Refs(p.Facts[0]), at) || lt.SatisfiedBy(p.MO.Refs(p.Facts[1]), at) {
		t.Error("< semantics wrong")
	}
}

func TestActionAccessors(t *testing.T) {
	_, env := paperEnv(t)
	a := MustCompileString("a1", srcA1, env)
	if len(a.Target()) != 2 {
		t.Error("Target")
	}
	if a.TargetIn(1) != a.Target()[1] {
		t.Error("TargetIn")
	}
	if a.String() == "" || a.Name() != "a1" {
		t.Error("String/Name")
	}
	// a1 has two NOW-relative month bounds; both report their unit (the
	// scheduler de-duplicates).
	units := a.NowUnits(nil)
	if len(units) == 0 {
		t.Error("NowUnits empty")
	}
	for _, u := range units {
		if u != caltime.UnitMonth {
			t.Errorf("NowUnits = %v", units)
		}
	}
	if env != a.env {
		t.Error("env binding")
	}
	s, err := New(env, a, MustCompileString("a2", srcA2, env))
	if err != nil {
		t.Fatal(err)
	}
	if s.Env() != env {
		t.Error("Spec.Env")
	}
}

func TestDisjunctivePredicates(t *testing.T) {
	// An OR predicate splits into disjuncts (the Section 5.3
	// pre-processing); satisfaction is the union.
	p, env := paperEnv(t)
	a := MustCompileString("either",
		`aggregate [Time.month, URL.domain] where (URL.domain = "cnn.com" and Time.month <= 1999/12) or (URL.domain = "gatech.edu" and Time.month <= 2000/1)`, env)
	at := day(t, "2000/11/5")
	if !a.SatisfiedBy(p.MO.Refs(p.Facts[1]), at) { // cnn 1999/12
		t.Error("first disjunct should fire")
	}
	if !a.SatisfiedBy(p.MO.Refs(p.Facts[6]), at) { // gatech 2000/1
		t.Error("second disjunct should fire")
	}
	if a.SatisfiedBy(p.MO.Refs(p.Facts[4]), at) { // cnn 2000/1
		t.Error("neither disjunct should fire for fact_4")
	}
	if len(a.Regions()) != 2 {
		t.Errorf("regions = %d, want 2", len(a.Regions()))
	}
}

func TestExplain(t *testing.T) {
	p, env := paperEnv(t)
	s, err := New(env,
		MustCompileString("a1", srcA1, env),
		MustCompileString("a2", srcA2, env),
		MustCompileString("purge", `delete where Time.year <= NOW - 20 years`, env))
	if err != nil {
		t.Fatal(err)
	}
	out := s.Explain(p.MO.Refs(p.Facts[1]), day(t, "2000/11/5"))
	for _, want := range []string{"Time -> quarter (by action a2)", "URL -> domain", "satisfies a1", "satisfies a2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	// A fresh fact explains as own granularity.
	out = s.Explain(p.MO.Refs(p.Facts[6]), day(t, "2000/11/5"))
	if !strings.Contains(out, "own granularity") {
		t.Errorf("Explain:\n%s", out)
	}
	// A deleted cell explains the deletion.
	out = s.Explain(p.MO.Refs(p.Facts[0]), day(t, "2025/1/1"))
	if !strings.Contains(out, "physically deleted by action purge") {
		t.Errorf("Explain:\n%s", out)
	}
}

func TestCheckGrowingExhaustiveAgrees(t *testing.T) {
	_, env := paperEnv(t)
	a1 := MustCompileString("a1", srcA1, env)
	a2 := MustCompileString("a2", srcA2, env)
	if err := CheckGrowingExhaustive(env, []*Action{a1, a2}); err != nil {
		t.Errorf("exhaustive check rejected a valid spec: %v", err)
	}
	if err := CheckGrowingExhaustive(env, []*Action{a1}); err == nil {
		t.Error("exhaustive check accepted an invalid spec")
	}
}
