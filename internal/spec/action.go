package spec

import (
	"fmt"

	"dimred/internal/caltime"
	"dimred/internal/expr"
	"dimred/internal/mdm"
	"dimred/internal/prover"
)

// test is one compiled atomic constraint of a DNF disjunct: a comparison
// or membership test on one category of one dimension. Value operands
// are kept by name so the test stays correct as new dimension values
// arrive after compilation.
type test struct {
	dim     int
	cat     mdm.CategoryID
	isTime  bool
	op      expr.Op
	unit    caltime.Unit   // time tests
	timeRHS []caltime.Expr // time tests: 1 expr for comparisons, n for sets
	valRHS  []string       // value tests: 1 name for comparisons, n for sets
}

// disjunct is one conjunct list of the action's DNF predicate.
type disjunct struct {
	tests []test
	never bool // the disjunct contained the constant false
}

// Action is a compiled reduction action p(α[Clist] σ[Pexp](O)), or a
// fact-deletion action "delete σ[Pexp](O)" (the Section 8 extension),
// which behaves as aggregation to a granularity above everything.
type Action struct {
	name      string
	src       expr.ActionSpec
	env       *Env
	target    mdm.Granularity // the function Cat (Eq. 8); all-top for deletions
	isDelete  bool
	disjuncts []disjunct
	usesNow   bool
	growing   bool
}

// Compile validates and compiles a parsed action specification against
// the environment, enforcing the conventions of Section 4.1:
//
//   - Clist names exactly one category per dimension of the schema;
//   - for every predicate constraint on dimension i at category C, the
//     Clist category C_i satisfies C_i <=_T C, so the predicate remains
//     evaluable on aggregated facts;
//   - comparison operators must be defined for the category (inequalities
//     need an ordered category);
//   - anchored time literals must have the type of the compared category;
//   - time expressions (and NOW) may only constrain the time dimension.
func Compile(name string, src expr.ActionSpec, env *Env) (*Action, error) {
	var target mdm.Granularity
	if src.Delete {
		// Deletion aggregates "to nothing": model it as the all-top
		// granularity so the <=_V order places it above every action.
		target = make(mdm.Granularity, len(env.Schema.Dims))
		for i, dim := range env.Schema.Dims {
			target[i] = dim.Top()
		}
	} else {
		refs := make([]string, len(src.Targets))
		for i, r := range src.Targets {
			refs[i] = r.String()
		}
		var err error
		target, err = env.Schema.ParseGranularity(refs)
		if err != nil {
			return nil, fmt.Errorf("spec: action %s: %w", name, err)
		}
	}
	d, err := expr.ToDNF(src.Pred)
	if err != nil {
		return nil, fmt.Errorf("spec: action %s: %w", name, err)
	}
	a := &Action{name: name, src: src, env: env, target: target, isDelete: src.Delete, usesNow: expr.UsesNow(src.Pred)}
	for _, dj := range d.Disjuncts {
		cd := disjunct{}
		for _, atom := range dj {
			t, err := compileAtom(name, atom, env)
			if err != nil {
				return nil, err
			}
			// The Clist category must not exceed the predicate category.
			// (Deletion removes the facts, so continuous evaluability of
			// the predicate is moot and the check does not apply.)
			if !src.Delete && !env.Schema.Dims[t.dim].CatLE(target[t.dim], t.cat) {
				return nil, fmt.Errorf("spec: action %s: aggregates dimension %s to %s, above predicate category %s",
					name, env.Schema.Dims[t.dim].Name(),
					env.Schema.Dims[t.dim].Category(target[t.dim]).Name,
					env.Schema.Dims[t.dim].Category(t.cat).Name)
			}
			cd.tests = append(cd.tests, t)
		}
		a.disjuncts = append(a.disjuncts, cd)
	}
	a.growing = a.classifyGrowing()
	return a, nil
}

// MustCompileString parses and compiles a concrete-syntax action,
// panicking on error; intended for tests and example setup with constant
// inputs.
func MustCompileString(name, src string, env *Env) *Action {
	parsed, err := expr.ParseAction(src)
	if err != nil {
		panic(err)
	}
	a, err := Compile(name, parsed, env)
	if err != nil {
		panic(err)
	}
	return a
}

// CompileString parses and compiles a concrete-syntax action.
func CompileString(name, src string, env *Env) (*Action, error) {
	parsed, err := expr.ParseAction(src)
	if err != nil {
		return nil, fmt.Errorf("spec: action %s: %w", name, err)
	}
	return Compile(name, parsed, env)
}

func compileAtom(name string, atom expr.Pred, env *Env) (test, error) {
	resolve := func(ref expr.CatRef) (int, mdm.CategoryID, error) {
		di := env.Schema.DimIndex(ref.Dim)
		if di < 0 {
			return 0, 0, fmt.Errorf("spec: action %s: unknown dimension %q", name, ref.Dim)
		}
		c, ok := env.Schema.Dims[di].CategoryByName(ref.Cat)
		if !ok {
			return 0, 0, fmt.Errorf("spec: action %s: dimension %s has no category %q", name, ref.Dim, ref.Cat)
		}
		return di, c, nil
	}
	switch q := atom.(type) {
	case expr.TimeCmp:
		di, c, err := resolve(q.Ref)
		if err != nil {
			return test{}, err
		}
		u, err := timeUnit(name, q.Ref, di, c, env, []caltime.Expr{q.RHS})
		if err != nil {
			return test{}, err
		}
		return test{dim: di, cat: c, isTime: true, op: q.Op, unit: u, timeRHS: []caltime.Expr{q.RHS}}, nil
	case expr.TimeIn:
		di, c, err := resolve(q.Ref)
		if err != nil {
			return test{}, err
		}
		u, err := timeUnit(name, q.Ref, di, c, env, q.Set)
		if err != nil {
			return test{}, err
		}
		op := expr.OpIn
		if q.Negate {
			op = expr.OpNotIn
		}
		return test{dim: di, cat: c, isTime: true, op: op, unit: u, timeRHS: q.Set}, nil
	case expr.ValueCmp:
		di, c, err := resolve(q.Ref)
		if err != nil {
			return test{}, err
		}
		if di == env.TimeDim {
			return test{}, fmt.Errorf("spec: action %s: time category %s compared against value literal %q",
				name, q.Ref, q.RHS)
		}
		if q.Op != expr.OpEQ && q.Op != expr.OpNE && !env.Schema.Dims[di].Category(c).Ordered {
			return test{}, fmt.Errorf("spec: action %s: operator %s is not defined for unordered category %s",
				name, q.Op, q.Ref)
		}
		return test{dim: di, cat: c, op: q.Op, valRHS: []string{q.RHS}}, nil
	case expr.ValueIn:
		di, c, err := resolve(q.Ref)
		if err != nil {
			return test{}, err
		}
		if di == env.TimeDim {
			return test{}, fmt.Errorf("spec: action %s: time category %s tested against value literals", name, q.Ref)
		}
		op := expr.OpIn
		if q.Negate {
			op = expr.OpNotIn
		}
		return test{dim: di, cat: c, op: op, valRHS: q.Set}, nil
	case expr.Bool:
		// The constant true compiles to an empty test list; false marks
		// the disjunct unsatisfiable. Encode as a sentinel test on dim 0.
		if q.Value {
			return test{dim: -1}, nil
		}
		return test{dim: -2}, nil
	}
	return test{}, fmt.Errorf("spec: action %s: unsupported atom %T", name, atom)
}

func timeUnit(name string, ref expr.CatRef, di int, c mdm.CategoryID, env *Env, exprs []caltime.Expr) (caltime.Unit, error) {
	if di != env.TimeDim {
		return 0, fmt.Errorf("spec: action %s: time expression constrains non-time dimension %s", name, ref.Dim)
	}
	u, ok := env.unitOf(c)
	if !ok {
		return 0, fmt.Errorf("spec: action %s: category %s has no calendar unit", name, ref)
	}
	for _, e := range exprs {
		if bu, anchored := e.BaseUnit(); anchored && bu != u {
			return 0, fmt.Errorf("spec: action %s: literal %s has type %s, category %s requires %s",
				name, e, bu, ref, u)
		}
	}
	return u, nil
}

// Name returns the action's name within its specification.
func (a *Action) Name() string { return a.name }

// Source returns the parsed form the action was compiled from.
func (a *Action) Source() expr.ActionSpec { return a.src }

// Target returns Cat(a): the granularity the action aggregates to
// (Eq. 8). The caller must not modify the slice.
func (a *Action) Target() mdm.Granularity { return a.target }

// TargetIn returns Cat_i(a) (Eq. 7).
func (a *Action) TargetIn(dim int) mdm.CategoryID { return a.target[dim] }

// UsesNow reports whether the action is dynamic (references NOW).
func (a *Action) UsesNow() bool { return a.usesNow }

// IsDelete reports whether the action physically deletes the selected
// facts rather than aggregating them.
func (a *Action) IsDelete() bool { return a.isDelete }

// Growing reports whether the action is growing by itself: once a cell
// satisfies its predicate it always will (boundary categories A-E of
// Section 5.3). Fixed predicates are growing; a NOW-relative bound is
// growing only where it extends the selected window over time.
func (a *Action) Growing() bool { return a.growing }

func (a *Action) classifyGrowing() bool {
	if a.isDelete {
		// Deletion is its own irreversibility: cells escaping a shrunken
		// window were already physically removed, so no aggregation
		// level ever decreases. Deletion actions carry no Growing
		// obligation (they still serve as covers for others).
		return true
	}
	for _, d := range a.disjuncts {
		for _, t := range d.tests {
			if !t.isTime {
				continue
			}
			nowRel := false
			for _, e := range t.timeRHS {
				if e.IsNowRelative() {
					nowRel = true
					break
				}
			}
			if !nowRel {
				continue
			}
			switch t.op {
			case expr.OpLT, expr.OpLE:
				// Growing upper bound (categories B and D).
			default:
				// A NOW-relative lower bound (>, >=), equality or
				// membership moves cells out of the window over time:
				// categories F, G, H.
				return false
			}
		}
	}
	return true
}

// TimeHullAt returns a day-interval hull of the action's predicate with
// NOW bound to t: no cell whose time value lies entirely outside
// [lo, hi] satisfies the predicate at t. bounded is false when some
// disjunct leaves time unconstrained. The subcube engine uses this to
// skip cubes during synchronization.
func (a *Action) TimeHullAt(t caltime.Day) (lo, hi caltime.Day, bounded bool) {
	const (
		minDay = caltime.Day(-1 << 60)
		maxDay = caltime.Day(1 << 60)
	)
	lo, hi = maxDay, minDay
	for _, d := range a.disjuncts {
		dLo, dHi := minDay, maxDay
		constrained := false
		for _, tst := range d.tests {
			if !tst.isTime {
				continue
			}
			switch tst.op {
			case expr.OpLT:
				p := tst.timeRHS[0].EvalPeriod(t, tst.unit)
				if v := p.First() - 1; v < dHi {
					dHi = v
				}
				constrained = true
			case expr.OpLE:
				p := tst.timeRHS[0].EvalPeriod(t, tst.unit)
				if v := p.Last(); v < dHi {
					dHi = v
				}
				constrained = true
			case expr.OpEQ:
				p := tst.timeRHS[0].EvalPeriod(t, tst.unit)
				if v := p.First(); v > dLo {
					dLo = v
				}
				if v := p.Last(); v < dHi {
					dHi = v
				}
				constrained = true
			case expr.OpGE:
				p := tst.timeRHS[0].EvalPeriod(t, tst.unit)
				if v := p.First(); v > dLo {
					dLo = v
				}
				constrained = true
			case expr.OpGT:
				p := tst.timeRHS[0].EvalPeriod(t, tst.unit)
				if v := p.Last() + 1; v > dLo {
					dLo = v
				}
				constrained = true
			case expr.OpIn:
				inLo, inHi := maxDay, minDay
				for _, e := range tst.timeRHS {
					p := e.EvalPeriod(t, tst.unit)
					if v := p.First(); v < inLo {
						inLo = v
					}
					if v := p.Last(); v > inHi {
						inHi = v
					}
				}
				if inLo > dLo {
					dLo = inLo
				}
				if inHi < dHi {
					dHi = inHi
				}
				constrained = true
			}
		}
		if !constrained {
			return 0, 0, false
		}
		if dLo < lo {
			lo = dLo
		}
		if dHi > hi {
			hi = dHi
		}
	}
	if len(a.disjuncts) == 0 {
		return 0, 0, false
	}
	return lo, hi, true
}

// NowUnits appends the calendar units of every NOW-relative time
// constraint in the action to dst; the synchronization scheduler derives
// the "significant time period" of Section 7.2 from these.
func (a *Action) NowUnits(dst []caltime.Unit) []caltime.Unit {
	for _, d := range a.disjuncts {
		for _, t := range d.tests {
			if !t.isTime {
				continue
			}
			for _, e := range t.timeRHS {
				if e.IsNowRelative() {
					dst = append(dst, t.unit)
					break
				}
			}
		}
	}
	return dst
}

// LessEq reports a1 <=_V a2 (Eq. 3): a2 aggregates at least as high in
// every dimension. Deletion actions sit strictly above every
// aggregation (and are mutually comparable).
func LessEq(a1, a2 *Action) bool {
	if a2.isDelete {
		return true
	}
	if a1.isDelete {
		return false
	}
	return a1.env.Schema.GranLE(a1.target, a2.target)
}

// SatisfiedBy evaluates the action's predicate on a cell at time t: the
// membership test of Pred(a, t) (Eq. 9), with NOW bound to t. The cell
// holds one value per dimension, at any granularity. A constraint at a
// category below the cell's granularity is evaluated conservatively
// (every populated descendant must satisfy it).
func (a *Action) SatisfiedBy(cell []mdm.ValueID, t caltime.Day) bool {
	for _, d := range a.disjuncts {
		if a.disjunctSatisfied(d, cell, t) {
			return true
		}
	}
	return false
}

func (a *Action) disjunctSatisfied(d disjunct, cell []mdm.ValueID, t caltime.Day) bool {
	if d.never {
		return false
	}
	for _, tst := range d.tests {
		switch tst.dim {
		case -1: // constant true
			continue
		case -2: // constant false
			return false
		}
		if !a.cellValueVerdict(tst, cell[tst.dim], t) {
			return false
		}
	}
	return true
}

// cellValueVerdict evaluates one test on the cell's value for the
// test's dimension: the value's ancestor at the constrained category
// when one exists, otherwise the conservative evaluation over its
// populated descendants (every descendant must satisfy the test, and
// there must be at least one).
func (a *Action) cellValueVerdict(tst test, v mdm.ValueID, t caltime.Day) bool {
	dim := a.env.Schema.Dims[tst.dim]
	anc := dim.AncestorAt(v, tst.cat)
	if anc != mdm.NoValue {
		return a.testValue(tst, dim, anc, t)
	}
	descendants := dim.DrillDown(v, tst.cat)
	if len(descendants) == 0 {
		return false
	}
	for _, w := range descendants {
		if !a.testValue(tst, dim, w, t) {
			return false
		}
	}
	return true
}

// plainCellValueVerdict is cellValueVerdict for non-time tests. It
// exists apart so that compile-time callers (the specexec bitset
// compiler) need not conjure an evaluation time they do not have.
func (a *Action) plainCellValueVerdict(tst test, v mdm.ValueID) bool {
	dim := a.env.Schema.Dims[tst.dim]
	anc := dim.AncestorAt(v, tst.cat)
	if anc != mdm.NoValue {
		return a.testPlainValue(tst, dim, anc)
	}
	descendants := dim.DrillDown(v, tst.cat)
	if len(descendants) == 0 {
		return false
	}
	for _, w := range descendants {
		if !a.testPlainValue(tst, dim, w) {
			return false
		}
	}
	return true
}

func (a *Action) testValue(tst test, dim *mdm.Dimension, v mdm.ValueID, t caltime.Day) bool {
	if tst.isTime {
		idx := dim.ValueOrd(v)
		switch tst.op {
		case expr.OpIn, expr.OpNotIn:
			found := false
			for _, e := range tst.timeRHS {
				if e.EvalPeriod(t, tst.unit).Index == idx {
					found = true
					break
				}
			}
			return found == (tst.op == expr.OpIn)
		}
		rhs := tst.timeRHS[0].EvalPeriod(t, tst.unit).Index
		switch tst.op {
		case expr.OpLT:
			return idx < rhs
		case expr.OpLE:
			return idx <= rhs
		case expr.OpEQ:
			return idx == rhs
		case expr.OpNE:
			return idx != rhs
		case expr.OpGE:
			return idx >= rhs
		case expr.OpGT:
			return idx > rhs
		}
		return false
	}
	return a.testPlainValue(tst, dim, v)
}

// testPlainValue evaluates a non-time value test. It exists apart from
// testValue so that NOW-independent callers (leafSetFor) need not
// conjure an evaluation time they do not have.
func (a *Action) testPlainValue(tst test, dim *mdm.Dimension, v mdm.ValueID) bool {
	name := dim.ValueName(v)
	switch tst.op {
	case expr.OpIn, expr.OpNotIn:
		found := false
		for _, s := range tst.valRHS {
			if s == name {
				found = true
				break
			}
		}
		return found == (tst.op == expr.OpIn)
	case expr.OpEQ:
		return name == tst.valRHS[0]
	case expr.OpNE:
		return name != tst.valRHS[0]
	}
	// Ordered comparison on a non-time category: compare by the
	// category's value order; an unknown operand satisfies nothing.
	rhs, ok := dim.ValueByName(tst.cat, tst.valRHS[0])
	if !ok {
		return false
	}
	lhs, rhsOrd := dim.ValueOrd(v), dim.ValueOrd(rhs)
	switch tst.op {
	case expr.OpLT:
		return lhs < rhsOrd
	case expr.OpLE:
		return lhs <= rhsOrd
	case expr.OpGE:
		return lhs >= rhsOrd
	case expr.OpGT:
		return lhs > rhsOrd
	}
	return false
}

// --- Compiler views -------------------------------------------------
//
// The methods below expose the action's compiled DNF structure to the
// specexec bitset compiler without leaking the test representation: the
// compiler asks for each test's shape (dimension, time-ness, constant
// sentinels) and then materializes the per-value verdict — including
// the conservative descendant evaluation of SatisfiedBy — into bitsets
// over the dimension's value space.

// NumDisjuncts returns the number of DNF disjuncts of the predicate.
func (a *Action) NumDisjuncts() int { return len(a.disjuncts) }

// DisjunctNever reports whether disjunct i is unsatisfiable (it
// contained the constant false).
func (a *Action) DisjunctNever(i int) bool { return a.disjuncts[i].never }

// NumTests returns the number of compiled tests in disjunct i.
func (a *Action) NumTests(i int) int { return len(a.disjuncts[i].tests) }

// TestShape describes test j of disjunct i: the constrained dimension
// index (TestConstTrue / TestConstFalse for the constant sentinels) and
// whether the test is a time test (whose right-hand side may depend on
// NOW and must be re-resolved per evaluation day).
func (a *Action) TestShape(i, j int) (dim int, isTime bool) {
	tst := a.disjuncts[i].tests[j]
	return tst.dim, tst.isTime
}

// Sentinel dimension indices returned by TestShape for the constant
// atoms true and false.
const (
	TestConstTrue  = -1
	TestConstFalse = -2
)

// PlainTestVerdict evaluates the non-time test j of disjunct i on a
// single dimension value v (of the test's dimension, at any category),
// with the conservative descendant evaluation of SatisfiedBy. It
// panics on time or constant tests — their verdicts depend on the
// evaluation day (TimeTestVerdict) or on nothing at all.
func (a *Action) PlainTestVerdict(i, j int, v mdm.ValueID) bool {
	tst := a.disjuncts[i].tests[j]
	if tst.dim < 0 || tst.isTime {
		panic("spec: PlainTestVerdict on a time or constant test")
	}
	return a.plainCellValueVerdict(tst, v)
}

// TimeTestVerdict evaluates the time test j of disjunct i on a single
// dimension value v with NOW bound to t, with the conservative
// descendant evaluation of SatisfiedBy. It panics on non-time tests.
func (a *Action) TimeTestVerdict(i, j int, v mdm.ValueID, t caltime.Day) bool {
	tst := a.disjuncts[i].tests[j]
	if tst.dim < 0 || !tst.isTime {
		panic("spec: TimeTestVerdict on a non-time test")
	}
	return a.cellValueVerdict(tst, v, t)
}

// Regions materializes the action's DNF disjuncts as decision-procedure
// regions against the current dimension contents. Regions are built on
// demand because the value population (and hence leaf universes) grows
// over time.
func (a *Action) Regions() []prover.Region {
	out := make([]prover.Region, 0, len(a.disjuncts))
	for _, d := range a.disjuncts {
		out = append(out, a.regionOf(d))
	}
	return out
}

func (a *Action) regionOf(d disjunct) prover.Region {
	n := len(a.env.Schema.Dims)
	r := prover.Region{Dims: make([]prover.DimConstraint, n)}
	for i := range r.Dims {
		r.Dims[i].IsTime = i == a.env.TimeDim
	}
	if d.never {
		r.False = true
		return r
	}
	for _, tst := range d.tests {
		switch tst.dim {
		case -1:
			continue
		case -2:
			r.False = true
			return r
		}
		if tst.isTime {
			r.Dims[tst.dim].Time = append(r.Dims[tst.dim].Time, prover.TimeAtom{
				Unit: tst.unit, Op: tst.op, Exprs: tst.timeRHS,
			})
			continue
		}
		dim := a.env.Schema.Dims[tst.dim]
		leaf := a.leafSetFor(tst, dim)
		if r.Dims[tst.dim].Fixed == nil {
			r.Dims[tst.dim].Fixed = leaf
		} else {
			r.Dims[tst.dim].Fixed.IntersectWith(leaf)
		}
	}
	return r
}

// leafSetFor materializes the bottom-category value set selected by a
// value test.
func (a *Action) leafSetFor(tst test, dim *mdm.Dimension) *prover.Set {
	bottom := dim.Bottom()
	leaves := dim.ValuesIn(bottom)
	// Size matches Env.Universes: an empty dimension has one phantom
	// leaf, which no value test selects.
	n := len(leaves)
	if n == 0 {
		n = 1
	}
	set := prover.NewSet(n)
	// Leaf index = position in the bottom category's insertion order.
	for idx, leaf := range leaves {
		anc := dim.AncestorAt(leaf, tst.cat)
		if anc == mdm.NoValue {
			continue
		}
		if a.testPlainValue(tst, dim, anc) {
			set.Add(idx)
		}
	}
	return set
}

// String renders the action as "name: <concrete syntax>".
func (a *Action) String() string {
	return a.name + ": " + a.src.String()
}

// DescribeTargets renders Cat(a), e.g. "(Time.month, URL.domain)".
func (a *Action) DescribeTargets() string {
	return a.env.Schema.GranString(a.target)
}
