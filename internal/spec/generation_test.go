package spec

import "testing"

// TestGenerationTracksCommittedMutations pins the Generation contract
// the specexec program cache depends on: every committed Insert or
// Delete bumps it exactly once, and rejected mutations leave it alone.
func TestGenerationTracksCommittedMutations(t *testing.T) {
	_, env := paperEnv(t)
	s, err := New(env, MustCompileString("a2", srcA2, env))
	if err != nil {
		t.Fatal(err)
	}
	// New commits through Insert, so a fresh spec is at generation 1
	// even when constructed from several actions.
	if s.Generation() != 1 {
		t.Fatalf("fresh spec generation = %d, want 1", s.Generation())
	}
	if Empty(env).Generation() != 0 {
		t.Fatal("empty spec generation != 0")
	}

	// a1's bounded window is Growing only under a2's coarser cover, so
	// it is insertable now.
	a1 := MustCompileString("a1", srcA1, env)
	if err := s.Insert(a1); err != nil {
		t.Fatal(err)
	}
	if s.Generation() != 2 {
		t.Fatalf("after Insert: generation = %d, want 2", s.Generation())
	}

	// Rejected mutations (duplicate name, nil action, unknown delete)
	// must not bump.
	if err := s.Insert(a1); err == nil {
		t.Fatal("duplicate Insert accepted")
	}
	if err := s.Insert(nil); err == nil {
		t.Fatal("nil Insert accepted")
	}
	if err := s.Delete(nil, 0, "nosuch"); err == nil {
		t.Fatal("Delete of unknown action accepted")
	}
	if s.Generation() != 2 {
		t.Fatalf("rejected mutations bumped generation to %d", s.Generation())
	}

	if err := s.Delete(nil, 0, "a1"); err != nil {
		t.Fatal(err)
	}
	if s.Generation() != 3 {
		t.Fatalf("after Delete: generation = %d, want 3", s.Generation())
	}
}
