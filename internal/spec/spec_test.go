package spec

import (
	"strings"
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/dims"
	"dimred/internal/mdm"
)

// Paper actions in concrete syntax. The TR's prose writes the upper bound
// of a1 with "<" but its worked figures (Sections 4.3, 4.4) treat it
// inclusively; we encode the bound as "<=", which reproduces the figures.
const (
	srcA1 = `aggregate [Time.month, URL.domain] where URL.domain_grp = ".com" and NOW - 12 months < Time.month and Time.month <= NOW - 6 months`
	srcA2 = `aggregate [Time.quarter, URL.domain] where URL.domain_grp = ".com" and Time.quarter <= NOW - 4 quarters`
	srcA3 = `aggregate [Time.month, URL.domain_grp] where URL.url = "http://www.cnn.com/health" and Time.month <= 1999/12`
	srcA4 = `aggregate [Time.week, URL.url] where URL.url = "http://www.cnn.com/health" and Time.month <= 1999/12`
	srcA7 = `aggregate [Time.month, URL.domain] where Time.month <= NOW - 12 months`
	srcA8 = `aggregate [Time.month, URL.domain] where Time.month <= 1999/12`
)

func paperEnv(t *testing.T) (*dims.PaperObject, *Env) {
	t.Helper()
	p := dims.MustPaperMO()
	env, err := NewEnv(p.Schema, "Time", p.Time)
	if err != nil {
		t.Fatal(err)
	}
	return p, env
}

func day(t *testing.T, s string) caltime.Day {
	t.Helper()
	d, err := caltime.ParseDay(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCompilePaperActions(t *testing.T) {
	_, env := paperEnv(t)
	a1 := MustCompileString("a1", srcA1, env)
	a2 := MustCompileString("a2", srcA2, env)

	if got := a1.DescribeTargets(); got != "(Time.month, URL.domain)" {
		t.Errorf("a1 targets = %s", got)
	}
	if got := a2.DescribeTargets(); got != "(Time.quarter, URL.domain)" {
		t.Errorf("a2 targets = %s", got)
	}
	if !a1.UsesNow() || !a2.UsesNow() {
		t.Error("a1, a2 should use NOW")
	}
	// E02: a1 <=_V a2 and the order is strict.
	if !LessEq(a1, a2) {
		t.Error("a1 <=_V a2 should hold")
	}
	if LessEq(a2, a1) {
		t.Error("a2 <=_V a1 should not hold")
	}
	// a1 has a NOW-relative lower bound: shrinking (category F).
	if a1.Growing() {
		t.Error("a1 should not be growing")
	}
	// a2 has only a growing upper bound (category B).
	if !a2.Growing() {
		t.Error("a2 should be growing")
	}
	// a8 is fixed (category A).
	if !MustCompileString("a8", srcA8, env).Growing() {
		t.Error("a8 should be growing (fixed)")
	}
}

func TestCompileErrors(t *testing.T) {
	_, env := paperEnv(t)
	bad := []struct{ name, src string }{
		{"missing-dim", `aggregate [Time.month] where true`},
		{"unknown-cat", `aggregate [Time.fortnight, URL.domain] where true`},
		{"unknown-dim", `aggregate [Time.month, Shop.name] where true`},
		// Aggregating above the predicate category: predicate on month,
		// aggregation to quarter in the same dimension.
		{"above-pred", `aggregate [Time.quarter, URL.domain] where Time.month <= 1999/12`},
		// Value literal against the time dimension.
		{"time-vs-value", `aggregate [Time.month, URL.domain] where Time.month = "1999/12"`},
		// Time expression against a non-time dimension.
		{"value-vs-time", `aggregate [Time.month, URL.domain] where URL.domain <= 1999/12`},
		// Inequality on an unordered category.
		{"unordered-ineq", `aggregate [Time.month, URL.domain] where URL.domain < "cnn.com"`},
		// Anchored literal of the wrong type.
		{"unit-mismatch", `aggregate [Time.month, URL.domain] where Time.month <= 1999Q4`},
	}
	for _, c := range bad {
		if _, err := CompileString(c.name, c.src, env); err == nil {
			t.Errorf("%s: compile succeeded, want error", c.name)
		}
	}
}

func TestSatisfiedByPaperExample(t *testing.T) {
	// Section 4.2: at 2000/11/5, fact_1 (1999/12/4, www.cnn.com/health)
	// satisfies both a1 and a2.
	p, env := paperEnv(t)
	a1 := MustCompileString("a1", srcA1, env)
	a2 := MustCompileString("a2", srcA2, env)
	now := day(t, "2000/11/5")

	cell := p.MO.Refs(p.Facts[1])
	if !a1.SatisfiedBy(cell, now) {
		t.Error("fact_1 should satisfy a1 at 2000/11/5")
	}
	if !a2.SatisfiedBy(cell, now) {
		t.Error("fact_1 should satisfy a2 at 2000/11/5")
	}
	// fact_6 (2000/1/20, gatech.edu) is .edu: satisfies neither.
	cell6 := p.MO.Refs(p.Facts[6])
	if a1.SatisfiedBy(cell6, now) || a2.SatisfiedBy(cell6, now) {
		t.Error("fact_6 should satisfy neither action")
	}
	// At 2000/4/5, nothing satisfies (Figure 3, first snapshot).
	early := day(t, "2000/4/5")
	for i, f := range p.Facts {
		cell := p.MO.Refs(f)
		if a1.SatisfiedBy(cell, early) || a2.SatisfiedBy(cell, early) {
			t.Errorf("fact_%d satisfied at 2000/4/5", i)
		}
	}
	// At 2000/6/5, the 1999 facts satisfy a1 but not a2 (Figure 3,
	// second snapshot).
	mid := day(t, "2000/6/5")
	for _, i := range []int{0, 1, 2, 3} {
		cell := p.MO.Refs(p.Facts[i])
		if !a1.SatisfiedBy(cell, mid) {
			t.Errorf("fact_%d should satisfy a1 at 2000/6/5", i)
		}
		if a2.SatisfiedBy(cell, mid) {
			t.Errorf("fact_%d should not satisfy a2 at 2000/6/5", i)
		}
	}
	// The 2000 facts satisfy neither at 2000/6/5.
	for _, i := range []int{4, 5, 6} {
		cell := p.MO.Refs(p.Facts[i])
		if a1.SatisfiedBy(cell, mid) || a2.SatisfiedBy(cell, mid) {
			t.Errorf("fact_%d satisfied at 2000/6/5", i)
		}
	}
}

func TestSatisfiedByHigherGranularityCell(t *testing.T) {
	// A cell already aggregated to (quarter, domain) evaluates a2's
	// quarter predicate directly and a1's month predicate conservatively.
	p, env := paperEnv(t)
	a2 := MustCompileString("a2", srcA2, env)
	q4, _ := p.Time.PeriodValue(mustPeriod(t, "1999Q4"))
	cnn, _ := p.URL.ValueByName(p.URL.Domain, "cnn.com")
	cell := []mdm.ValueID{q4, cnn}
	if !a2.SatisfiedBy(cell, day(t, "2000/11/5")) {
		t.Error("aggregated cell should satisfy a2 at 2000/11/5")
	}
	if a2.SatisfiedBy(cell, day(t, "2000/6/5")) {
		t.Error("aggregated cell should not satisfy a2 at 2000/6/5")
	}
}

func mustPeriod(t *testing.T, s string) caltime.Period {
	t.Helper()
	p, err := caltime.ParsePeriod(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPaperA3A4RejectedAtCompile(t *testing.T) {
	// The paper's a3 (Eq. 15) and a4 (Eq. 16) illustrate NonCrossing
	// violations, but as written they already violate the paper's own
	// Section 4.1 convention that the Clist category must not exceed the
	// predicate category (a3 aggregates URL to domain_grp while selecting
	// on URL.url; a4 aggregates Time to week while selecting on
	// Time.month, and week and month are incomparable). The compiler
	// therefore rejects them before any crossing check is needed.
	_, env := paperEnv(t)
	if _, err := CompileString("a3", srcA3, env); err == nil {
		t.Error("a3 should be rejected at compile time")
	}
	if _, err := CompileString("a4", srcA4, env); err == nil {
		t.Error("a4 should be rejected at compile time")
	}
}

func TestNonCrossingViolations(t *testing.T) {
	// Rule-conforming variants of the Section 4.3 counterexamples.
	_, env := paperEnv(t)
	a2 := MustCompileString("a2", srcA2, env)

	// c3 selects and aggregates in ways that cross a2: a2 = (quarter,
	// domain), c3 = (month, domain_grp) — quarter > month but
	// domain < domain_grp — and both select old .com cells.
	c3 := MustCompileString("c3", `aggregate [Time.month, URL.domain_grp] where URL.domain_grp = ".com" and Time.month <= 1999/12`, env)
	if LessEq(a2, c3) || LessEq(c3, a2) {
		t.Error("a2 and c3 should be unordered")
	}
	if err := CheckNonCrossing(env, []*Action{a2, c3}); err == nil {
		t.Error("a2 vs c3 crossing not detected")
	}

	// c4 aggregates into the parallel Time branch (week vs a2's
	// quarter), the paper's second counterexample.
	c4 := MustCompileString("c4", `aggregate [Time.week, URL.domain] where URL.domain_grp = ".com" and Time.week <= 1999W52`, env)
	if LessEq(a2, c4) || LessEq(c4, a2) {
		t.Error("a2 and c4 should be unordered")
	}
	if err := CheckNonCrossing(env, []*Action{a2, c4}); err == nil {
		t.Error("a2 vs c4 crossing (parallel hierarchies) not detected")
	}
	// Each alone is fine.
	if err := CheckNonCrossing(env, []*Action{c3}); err != nil {
		t.Errorf("single action rejected: %v", err)
	}
}

func TestNonCrossingDisjointPredicates(t *testing.T) {
	// Unordered targets but predicates that can never overlap: the .com
	// and .edu restrictions make the actions compatible.
	_, env := paperEnv(t)
	com := MustCompileString("com", `aggregate [Time.quarter, URL.domain] where URL.domain_grp = ".com" and Time.quarter <= NOW - 4 quarters`, env)
	edu := MustCompileString("edu", `aggregate [Time.month, URL.domain_grp] where URL.domain_grp = ".edu" and Time.month <= 1999/12`, env)
	if LessEq(com, edu) || LessEq(edu, com) {
		t.Error("com and edu should be unordered")
	}
	if err := CheckNonCrossing(env, []*Action{com, edu}); err != nil {
		t.Errorf("disjoint unordered actions rejected: %v", err)
	}
}

func TestGrowingViolationFigure2(t *testing.T) {
	// E05: {a1} alone violates Growing (fact_0 would be reclaimed when
	// the window's lower bound passes it); adding a2 repairs it.
	_, env := paperEnv(t)
	a1 := MustCompileString("a1", srcA1, env)
	a2 := MustCompileString("a2", srcA2, env)

	err := CheckGrowing(env, []*Action{a1})
	if err == nil {
		t.Fatal("spec {a1} should violate Growing")
	}
	if !strings.Contains(err.Error(), "a1") {
		t.Errorf("error should name a1: %v", err)
	}
	if err := CheckGrowing(env, []*Action{a1, a2}); err != nil {
		t.Errorf("spec {a1, a2} should be Growing: %v", err)
	}
	// And it is NonCrossing (the actions are ordered).
	if err := CheckNonCrossing(env, []*Action{a1, a2}); err != nil {
		t.Errorf("spec {a1, a2} should be NonCrossing: %v", err)
	}
}

func TestGrowingSection53Example(t *testing.T) {
	// E11: Eq. 24-26. b1 aggregates everything younger than 4 years to
	// (month, domain); b2 catches old .com data, b3 catches old .edu
	// data. Together they are Growing because .com and .edu exhaust the
	// URL domain groups — exactly the domain knowledge the paper's
	// theorem prover needs (Eq. 29).
	_, env := paperEnv(t)
	b1 := MustCompileString("b1", `aggregate [Time.month, URL.domain] where NOW - 4 years < Time.year and Time.year < NOW`, env)
	b2 := MustCompileString("b2", `aggregate [Time.quarter, URL.domain] where Time.year <= NOW - 4 years and URL.domain_grp = ".com"`, env)
	b3 := MustCompileString("b3", `aggregate [Time.quarter, URL.domain_grp] where Time.year <= NOW - 4 years and URL.domain_grp = ".edu"`, env)

	if b1.Growing() {
		t.Error("b1 has a moving lower bound and is not growing by itself")
	}
	if !b2.Growing() || !b3.Growing() {
		t.Error("b2 and b3 are growing")
	}
	if err := CheckGrowing(env, []*Action{b1, b2, b3}); err != nil {
		t.Errorf("Eq. 24-26 spec should be Growing: %v", err)
	}
	// Without b3 the .edu cells escape b1 uncovered (Eq. 29 fails).
	if err := CheckGrowing(env, []*Action{b1, b2}); err == nil {
		t.Error("dropping b3 should violate Growing")
	}
	if err := CheckNonCrossing(env, []*Action{b1, b2, b3}); err != nil {
		t.Errorf("Eq. 24-26 spec should be NonCrossing: %v", err)
	}
}

func TestSpecInsert(t *testing.T) {
	_, env := paperEnv(t)
	a1 := MustCompileString("a1", srcA1, env)
	a2 := MustCompileString("a2", srcA2, env)

	// Inserting a1 alone is rejected (Growing), the spec is unchanged.
	s := Empty(env)
	if err := s.Insert(a1); err == nil {
		t.Fatal("Insert(a1) alone should be rejected")
	}
	if len(s.Actions()) != 0 {
		t.Fatal("rejected insert modified the spec")
	}
	// Inserting both together succeeds (Definition 3 inserts sets).
	if err := s.Insert(a1, a2); err != nil {
		t.Fatalf("Insert(a1, a2): %v", err)
	}
	if len(s.Actions()) != 2 {
		t.Fatal("insert did not commit")
	}
	// Duplicate names are rejected.
	dup := MustCompileString("a1", srcA8, env)
	if err := s.Insert(dup); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, ok := s.ActionByName("a2"); !ok {
		t.Error("ActionByName(a2) failed")
	}
	if _, ok := s.ActionByName("zzz"); ok {
		t.Error("ActionByName(zzz) found something")
	}
}

func TestSpecDeleteA7A8Example(t *testing.T) {
	// Section 5.1's NOW-relative handling example: insert a8 (fixed),
	// then a7 (NOW-relative) can be deleted during month 2000/12 because
	// a8 aggregates the exact same facts to the same level.
	p, env := paperEnv(t)
	a7 := MustCompileString("a7", srcA7, env)
	s, err := New(env, a7)
	if err != nil {
		t.Fatal(err)
	}
	now := day(t, "2000/12/15")

	// Deleting a7 alone is rejected: it is responsible for the 1999
	// facts (their cells satisfy it, no substitute exists).
	if err := s.Delete(p.MO, now, "a7"); err == nil {
		t.Fatal("Delete(a7) without substitute should be rejected")
	}
	a8 := MustCompileString("a8", srcA8, env)
	if err := s.Insert(a8); err != nil {
		t.Fatalf("Insert(a8): %v", err)
	}
	if err := s.Delete(p.MO, now, "a7"); err != nil {
		t.Fatalf("Delete(a7) after inserting a8: %v", err)
	}
	if _, ok := s.ActionByName("a7"); ok {
		t.Error("a7 still present")
	}
	if _, ok := s.ActionByName("a8"); !ok {
		t.Error("a8 removed")
	}
	// Deleting an unknown action fails.
	if err := s.Delete(p.MO, now, "nope"); err == nil {
		t.Error("unknown delete accepted")
	}
}

func TestSpecDeleteKeepsGrowing(t *testing.T) {
	// Deleting the covering action of a non-growing action must be
	// rejected even if it is not responsible for any current fact.
	_, env := paperEnv(t)
	a1 := MustCompileString("a1", srcA1, env)
	a2 := MustCompileString("a2", srcA2, env)
	s, err := New(env, a1, a2)
	if err != nil {
		t.Fatal(err)
	}
	// Before any fact matches (early time), a2 is not responsible for
	// anything, but removing it would leave {a1}, which shrinks.
	empty := mdm.NewMO(env.Schema)
	if err := s.Delete(empty, day(t, "2000/1/1"), "a2"); err == nil {
		t.Error("deleting the covering action should be rejected")
	}
}

func TestAggLevelSnapshots(t *testing.T) {
	// AggLevel per Figure 3: at 2000/6/5 the 1999 facts are at (month,
	// domain); at 2000/11/5 they are at (quarter, domain).
	p, env := paperEnv(t)
	a1 := MustCompileString("a1", srcA1, env)
	a2 := MustCompileString("a2", srcA2, env)
	s, err := New(env, a1, a2)
	if err != nil {
		t.Fatal(err)
	}

	cell := p.MO.Refs(p.Facts[1])
	lvl, resp := s.AggLevel(cell, day(t, "2000/6/5"))
	if got := env.Schema.GranString(lvl); got != "(Time.month, URL.domain)" {
		t.Errorf("AggLevel @2000/6/5 = %s", got)
	}
	if resp[0] != a1 || resp[1] != a1 {
		t.Errorf("responsible = %v, want a1", resp)
	}
	lvl, resp = s.AggLevel(cell, day(t, "2000/11/5"))
	if got := env.Schema.GranString(lvl); got != "(Time.quarter, URL.domain)" {
		t.Errorf("AggLevel @2000/11/5 = %s", got)
	}
	if resp[0] != a2 {
		t.Errorf("responsible for time = %v, want a2", resp[0])
	}
	// Untouched fact: bottom granularity, nobody responsible.
	lvl, resp = s.AggLevel(p.MO.Refs(p.Facts[6]), day(t, "2000/11/5"))
	if got := env.Schema.GranString(lvl); got != "(Time.day, URL.url)" {
		t.Errorf("fact_6 AggLevel = %s", got)
	}
	if resp[0] != nil || resp[1] != nil {
		t.Error("fact_6 should have no responsible action")
	}
}

func TestAggLevelMonotoneOverTime(t *testing.T) {
	// Property (Eq. 17): for a valid spec, AggLevel never decreases as
	// time passes, for any fact cell.
	p, env := paperEnv(t)
	a1 := MustCompileString("a1", srcA1, env)
	a2 := MustCompileString("a2", srcA2, env)
	s, err := New(env, a1, a2)
	if err != nil {
		t.Fatal(err)
	}
	start := day(t, "2000/1/1")
	for _, f := range p.Facts {
		cell := p.MO.Refs(f)
		prev, _ := s.AggLevel(cell, start)
		for d := start + 7; d < start+800; d += 7 {
			cur, _ := s.AggLevel(cell, d)
			for i := range cur {
				if !env.Schema.Dims[i].CatLE(prev[i], cur[i]) {
					t.Fatalf("AggLevel decreased for %s in dim %d between %v and %v",
						p.MO.Name(f), i, d-7, d)
				}
			}
			prev = cur
		}
	}
}

func TestEnvErrors(t *testing.T) {
	p, _ := paperEnv(t)
	if _, err := NewEnv(p.Schema, "Nope", p.Time); err == nil {
		t.Error("unknown time dimension accepted")
	}
	if _, err := NewEnv(p.Schema, "Time", nil); err == nil {
		t.Error("nil TimeModel accepted")
	}
	env, err := NewEnv(p.Schema, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Without a time dimension, time-typed predicates fail to compile.
	if _, err := CompileString("x", srcA8, env); err == nil {
		t.Error("time predicate without time dimension accepted")
	}
}

func TestHorizonIncludesAnchors(t *testing.T) {
	_, env := paperEnv(t)
	// An anchored literal far outside the populated range must widen the
	// horizon so checks see it.
	a := MustCompileString("far", `aggregate [Time.month, URL.domain] where Time.month <= 1990/6`, env)
	hz, ok := env.Horizon([]*Action{a})
	if !ok {
		t.Fatal("no horizon")
	}
	if hz.Min > day(t, "1990/6/1") {
		t.Errorf("horizon min %v does not include the anchor", hz.Min)
	}
}
