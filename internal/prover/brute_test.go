package prover

import (
	"math/rand"
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/expr"
)

// randomAtom builds a random time atom over month/quarter units with
// anchored or NOW-relative bounds near the test horizon.
func randomAtom(rng *rand.Rand) TimeAtom {
	units := []caltime.Unit{caltime.UnitMonth, caltime.UnitQuarter, caltime.UnitWeek}
	unit := units[rng.Intn(len(units))]
	ops := []expr.Op{expr.OpLT, expr.OpLE, expr.OpEQ, expr.OpGE, expr.OpGT}
	op := ops[rng.Intn(len(ops))]
	var e caltime.Expr
	if rng.Intn(2) == 0 {
		// Anchored somewhere in 1999-2001.
		d := caltime.Date(1999, 1, 1) + caltime.Day(rng.Intn(1000))
		e = caltime.AnchorExpr(caltime.PeriodOf(d, unit))
	} else {
		spanUnits := []caltime.Unit{caltime.UnitMonth, caltime.UnitQuarter}
		e = caltime.NowExpr().Minus(caltime.Span{
			N:    int64(rng.Intn(14)),
			Unit: spanUnits[rng.Intn(len(spanUnits))],
		})
	}
	return TimeAtom{Unit: unit, Op: op, Exprs: []caltime.Expr{e}}
}

func randomRegion(rng *rand.Rand) Region {
	var atoms []TimeAtom
	for i := 0; i < 1+rng.Intn(2); i++ {
		atoms = append(atoms, randomAtom(rng))
	}
	leaf := NewSet(3)
	for i := 0; i < 3; i++ {
		if rng.Intn(2) == 0 {
			leaf.Add(i)
		}
	}
	return Region{Dims: []DimConstraint{
		{IsTime: true, Time: atoms},
		{Fixed: leaf},
	}}
}

// bruteOverlap decides ∃t overlap by direct scan over every (day, leaf,
// t) triple of a small horizon.
func bruteOverlap(a, b Region, hz Horizon, universes []int) bool {
	for t := hz.SweepStart(); t <= hz.SweepEnd(); t++ {
		as := a.At(t, hz, universes)
		if as == nil {
			continue
		}
		bs := b.At(t, hz, universes)
		if bs == nil {
			continue
		}
		ok := true
		for i := range as {
			if !as[i].Intersects(bs[i]) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestOverlapsAgainstBruteForce cross-checks the production Overlaps
// (which short-circuits NOW-free pairs and non-time dimensions) against
// the plain exhaustive scan.
func TestOverlapsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	hz := Horizon{
		Min:       caltime.Date(1999, 6, 1),
		Max:       caltime.Date(2000, 6, 30),
		MaxOffset: 450,
	}
	universes := []int{0, 3}
	for trial := 0; trial < 60; trial++ {
		a := randomRegion(rng)
		b := randomRegion(rng)
		got, _ := Overlaps(a, b, hz, universes)
		want := bruteOverlap(a, b, hz, universes)
		if got != want {
			t.Fatalf("trial %d: Overlaps=%v brute=%v\na=%+v\nb=%+v", trial, got, want, a, b)
		}
	}
}

// TestCoversAlwaysAgainstPointwise cross-checks CoversAlways against
// per-instant CoversAt over the sweep.
func TestCoversAlwaysAgainstPointwise(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	hz := Horizon{
		Min:       caltime.Date(1999, 10, 1),
		Max:       caltime.Date(2000, 3, 31),
		MaxOffset: 430,
	}
	universes := []int{0, 3}
	for trial := 0; trial < 25; trial++ {
		a := randomRegion(rng)
		bs := []Region{randomRegion(rng), randomRegion(rng)}
		got, _ := CoversAlways(a, bs, hz, universes)
		want := true
		for tt := hz.SweepStart(); tt <= hz.SweepEnd() && want; tt++ {
			if !CoversAt(a, bs, tt, hz, universes) {
				want = false
			}
		}
		if got != want {
			t.Fatalf("trial %d: CoversAlways=%v pointwise=%v", trial, got, want)
		}
	}
}
