// Package prover is the decision procedure the reduction engine uses
// where the paper delegates to a theorem prover (PVS, Sections 5.2 and
// 5.3). The paper's predicate grammar (Table 1), once normalized to DNF,
// only produces conjunctions of per-dimension range/membership
// constraints whose time bounds are affine in NOW, over finite non-time
// domains. For that class the three checks the paper needs —
// satisfiability, temporal overlap (does there exist a time t at which
// two predicates select a common cell), and coverage (is every cell
// selected by one predicate also selected by some predicate in a set) —
// are decidable exactly:
//
//   - every non-time constraint is materialized as a bitset over the
//     bottom-category values of its dimension (cells are characterized by
//     their leaf values, so leaf-level reasoning is exact);
//   - every time constraint is materialized, for a given binding of NOW,
//     as a bitset of day indices over a bounded horizon (the dimension's
//     populated day range extended by the largest NOW offset appearing in
//     any predicate — beyond that horizon NOW-relative windows saturate,
//     so the sweep is exhaustive for the model);
//   - existential time quantification sweeps NOW over the horizon;
//   - coverage of a product region by a union of product regions is
//     decided by orthant decomposition.
package prover

import "math/bits"

// Set is a fixed-universe bitset. The zero Set is unusable; construct
// with NewSet, Full or Empty.
type Set struct {
	words []uint64
	n     int
}

// NewSet returns an empty set over a universe of n elements.
func NewSet(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Full returns the set containing every element of the universe.
func Full(n int) *Set {
	s := NewSet(n)
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
	return s
}

func (s *Set) trim() {
	if s.n%64 != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(s.n%64)) - 1
	}
}

// Universe returns the universe size.
func (s *Set) Universe() int { return s.n }

// Add inserts element i.
func (s *Set) Add(i int) {
	if i < 0 || i >= s.n {
		return
	}
	s.words[i/64] |= 1 << uint(i%64)
}

// AddRange inserts every element in [lo, hi] (clipped to the universe).
func (s *Set) AddRange(lo, hi int) {
	if lo < 0 {
		lo = 0
	}
	if hi >= s.n {
		hi = s.n - 1
	}
	if lo > hi {
		return
	}
	loW, hiW := lo/64, hi/64
	loMask := ^uint64(0) << uint(lo%64)
	hiMask := ^uint64(0) >> uint(63-hi%64)
	if loW == hiW {
		s.words[loW] |= loMask & hiMask
		return
	}
	s.words[loW] |= loMask
	for w := loW + 1; w < hiW; w++ {
		s.words[w] = ^uint64(0)
	}
	s.words[hiW] |= hiMask
}

// Has reports whether element i is present.
func (s *Set) Has(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/64]&(1<<uint(i%64)) != 0
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of elements.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a copy of the set.
func (s *Set) Clone() *Set {
	return &Set{words: append([]uint64(nil), s.words...), n: s.n}
}

// IntersectWith removes elements not in o (in place).
func (s *Set) IntersectWith(o *Set) *Set {
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
	return s
}

// UnionWith adds elements of o (in place).
func (s *Set) UnionWith(o *Set) *Set {
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
	return s
}

// MinusWith removes elements of o (in place).
func (s *Set) MinusWith(o *Set) *Set {
	for i := range s.words {
		s.words[i] &^= o.words[i]
	}
	return s
}

// Complement flips the set within its universe (in place).
func (s *Set) Complement() *Set {
	for i := range s.words {
		s.words[i] = ^s.words[i]
	}
	s.trim()
	return s
}

// Intersects reports whether s and o share an element.
func (s *Set) Intersects(o *Set) bool {
	for i := range s.words {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every element of s is in o.
func (s *Set) SubsetOf(o *Set) bool {
	for i := range s.words {
		if s.words[i]&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Elems appends the elements in ascending order to dst and returns it.
func (s *Set) Elems(dst []int) []int {
	for i := 0; i < s.n; i++ {
		if s.Has(i) {
			dst = append(dst, i)
		}
	}
	return dst
}
