package prover

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dimred/internal/caltime"
	"dimred/internal/expr"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(130)
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("fresh set not empty")
	}
	s.Add(0)
	s.Add(64)
	s.Add(129)
	s.Add(-1)  // ignored
	s.Add(130) // ignored
	if s.Count() != 3 || !s.Has(0) || !s.Has(64) || !s.Has(129) || s.Has(1) {
		t.Fatalf("set contents wrong: %v", s.Elems(nil))
	}
	f := Full(130)
	if f.Count() != 130 {
		t.Fatalf("Full count = %d", f.Count())
	}
	if !s.SubsetOf(f) || f.SubsetOf(s) {
		t.Error("subset relation broken")
	}
	c := f.Clone().MinusWith(s)
	if c.Count() != 127 || c.Has(64) {
		t.Error("MinusWith broken")
	}
	if !c.Intersects(f) || c.Intersects(s) {
		t.Error("Intersects broken")
	}
	comp := s.Clone().Complement()
	if comp.Count() != 127 || comp.Has(0) || !comp.Has(1) {
		t.Error("Complement broken")
	}
	u := s.Clone().UnionWith(comp)
	if u.Count() != 130 {
		t.Error("UnionWith broken")
	}
	i := s.Clone().IntersectWith(comp)
	if !i.Empty() {
		t.Error("IntersectWith broken")
	}
}

func TestSetAddRangeClipping(t *testing.T) {
	s := NewSet(10)
	s.AddRange(-5, 3)
	if s.Count() != 4 || !s.Has(0) || !s.Has(3) {
		t.Errorf("AddRange low clip: %v", s.Elems(nil))
	}
	s2 := NewSet(10)
	s2.AddRange(8, 99)
	if s2.Count() != 2 || !s2.Has(9) {
		t.Errorf("AddRange high clip: %v", s2.Elems(nil))
	}
	s3 := NewSet(10)
	s3.AddRange(5, 4) // empty range
	if !s3.Empty() {
		t.Error("empty AddRange added elements")
	}
}

func TestSetLaws(t *testing.T) {
	mk := func(bitsIn []uint16) *Set {
		s := NewSet(200)
		for _, b := range bitsIn {
			s.Add(int(b) % 200)
		}
		return s
	}
	f := func(aBits, bBits []uint16) bool {
		a, b := mk(aBits), mk(bBits)
		inter := a.Clone().IntersectWith(b)
		if !inter.SubsetOf(a) || !inter.SubsetOf(b) {
			return false
		}
		union := a.Clone().UnionWith(b)
		if !a.SubsetOf(union) || !b.SubsetOf(union) {
			return false
		}
		// |A| + |B| = |A∪B| + |A∩B|
		if a.Count()+b.Count() != union.Count()+inter.Count() {
			return false
		}
		minus := a.Clone().MinusWith(b)
		return minus.Count() == a.Count()-inter.Count() && !minus.Intersects(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func mustDay(t *testing.T, s string) caltime.Day {
	t.Helper()
	d, err := caltime.ParseDay(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func testHorizon(t *testing.T) Horizon {
	return Horizon{
		Min:       mustDay(t, "1999/1/1"),
		Max:       mustDay(t, "2001/12/31"),
		MaxOffset: 400,
	}
}

func TestTimeAtomDaysAt(t *testing.T) {
	hz := testHorizon(t)
	now := mustDay(t, "2000/11/5")
	month, _ := caltime.ParsePeriod("2000/5")

	// Time.month <= NOW - 6 months at 2000/11/5 selects days up to 2000/5/31.
	atom := TimeAtom{
		Unit:  caltime.UnitMonth,
		Op:    expr.OpLE,
		Exprs: []caltime.Expr{caltime.NowExpr().Minus(caltime.Span{N: 6, Unit: caltime.UnitMonth})},
	}
	s := atom.DaysAt(now, hz)
	if !s.Has(hz.DayIndex(month.Last())) {
		t.Error("2000/5/31 should satisfy")
	}
	if s.Has(hz.DayIndex(month.Last() + 1)) {
		t.Error("2000/6/1 should not satisfy")
	}
	if !s.Has(0) {
		t.Error("horizon start should satisfy (no lower bound)")
	}

	// Strict version excludes all of 2000/5.
	atom.Op = expr.OpLT
	s = atom.DaysAt(now, hz)
	if s.Has(hz.DayIndex(month.First())) {
		t.Error("strict <: 2000/5/1 should not satisfy")
	}
	if !s.Has(hz.DayIndex(month.First() - 1)) {
		t.Error("strict <: 2000/4/30 should satisfy")
	}

	// Equality selects exactly the period.
	atom.Op = expr.OpEQ
	s = atom.DaysAt(now, hz)
	if s.Count() != 31 {
		t.Errorf("= 2000/5 selects %d days, want 31", s.Count())
	}
	atom.Op = expr.OpNE
	if got := atom.DaysAt(now, hz).Count(); got != hz.Days()-31 {
		t.Errorf("!= selects %d days", got)
	}
	atom.Op = expr.OpGT
	s = atom.DaysAt(now, hz)
	if s.Has(hz.DayIndex(month.Last())) || !s.Has(hz.DayIndex(month.Last()+1)) {
		t.Error("> boundary wrong")
	}
	atom.Op = expr.OpGE
	s = atom.DaysAt(now, hz)
	if !s.Has(hz.DayIndex(month.First())) || s.Has(hz.DayIndex(month.First()-1)) {
		t.Error(">= boundary wrong")
	}
}

func TestTimeAtomInSet(t *testing.T) {
	hz := testHorizon(t)
	q4, _ := caltime.ParsePeriod("1999Q4")
	q1, _ := caltime.ParsePeriod("2000Q1")
	atom := TimeAtom{
		Unit: caltime.UnitQuarter,
		Op:   expr.OpIn,
		Exprs: []caltime.Expr{
			caltime.AnchorExpr(q4), caltime.AnchorExpr(q1),
		},
	}
	s := atom.DaysAt(0, hz)
	if got := s.Count(); got != 92+91 { // 1999Q4 has 92 days, 2000Q1 has 91
		t.Errorf("in-set selects %d days", got)
	}
	atom.Op = expr.OpNotIn
	if got := atom.DaysAt(0, hz).Count(); got != hz.Days()-92-91 {
		t.Errorf("not-in selects %d days", got)
	}
}

// nowLE builds the atom "month <= NOW - n months".
func nowLE(n int64) TimeAtom {
	return TimeAtom{
		Unit:  caltime.UnitMonth,
		Op:    expr.OpLE,
		Exprs: []caltime.Expr{caltime.NowExpr().Minus(caltime.Span{N: n, Unit: caltime.UnitMonth})},
	}
}

// nowGT builds the atom "month > NOW - n months".
func nowGT(n int64) TimeAtom {
	return TimeAtom{
		Unit:  caltime.UnitMonth,
		Op:    expr.OpGT,
		Exprs: []caltime.Expr{caltime.NowExpr().Minus(caltime.Span{N: n, Unit: caltime.UnitMonth})},
	}
}

// leafSet builds a bitset over a universe of 4 leaf values.
func leafSet(elems ...int) *Set {
	s := NewSet(4)
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// regionOf builds a two-dimensional region: dim 0 is time with the given
// atoms, dim 1 is a 4-value leaf dimension.
func regionOf(atoms []TimeAtom, leaves *Set) Region {
	return Region{Dims: []DimConstraint{
		{IsTime: true, Time: atoms},
		{Fixed: leaves},
	}}
}

var testUniverses = []int{0, 4}

func TestOverlapsDisjointLeaves(t *testing.T) {
	hz := testHorizon(t)
	a := regionOf([]TimeAtom{nowLE(6)}, leafSet(0, 1))
	b := regionOf([]TimeAtom{nowLE(6)}, leafSet(2, 3))
	if ok, _ := Overlaps(a, b, hz, testUniverses); ok {
		t.Error("disjoint leaf sets should not overlap")
	}
	b2 := regionOf([]TimeAtom{nowLE(6)}, leafSet(1, 2))
	if ok, _ := Overlaps(a, b2, hz, testUniverses); !ok {
		t.Error("sharing leaf 1 should overlap")
	}
}

func TestOverlapsMovingWindows(t *testing.T) {
	hz := testHorizon(t)
	// a: months (NOW-12, NOW-6]; b: months <= NOW-12. The windows abut
	// but never share a day at the same t.
	a := regionOf([]TimeAtom{nowGT(12), nowLE(6)}, nil)
	b := regionOf([]TimeAtom{nowLE(12)}, nil)
	if ok, at := Overlaps(a, b, hz, testUniverses); ok {
		t.Errorf("abutting moving windows overlap at %v", at)
	}
	// Widening b by a month makes them overlap.
	b2 := regionOf([]TimeAtom{nowLE(11)}, nil)
	if ok, _ := Overlaps(a, b2, hz, testUniverses); !ok {
		t.Error("overlapping moving windows not detected")
	}
}

func TestOverlapsAnchoredVsMoving(t *testing.T) {
	hz := testHorizon(t)
	dec99, _ := caltime.ParsePeriod("1999/12")
	anchored := regionOf([]TimeAtom{{
		Unit: caltime.UnitMonth, Op: expr.OpEQ,
		Exprs: []caltime.Expr{caltime.AnchorExpr(dec99)},
	}}, nil)
	moving := regionOf([]TimeAtom{nowLE(6)}, nil)
	// For large enough NOW, months <= NOW-6 includes 1999/12.
	if ok, _ := Overlaps(anchored, moving, hz, testUniverses); !ok {
		t.Error("anchored month should eventually fall under the moving bound")
	}
	// An anchored month beyond the horizon can never be reached.
	far, _ := caltime.ParsePeriod("2030/1")
	anchoredFar := regionOf([]TimeAtom{{
		Unit: caltime.UnitMonth, Op: expr.OpEQ,
		Exprs: []caltime.Expr{caltime.AnchorExpr(far)},
	}}, nil)
	if ok, _ := Overlaps(anchoredFar, moving, hz, testUniverses); ok {
		t.Error("month outside the horizon should not overlap")
	}
}

func TestOverlapsFalseRegion(t *testing.T) {
	hz := testHorizon(t)
	a := regionOf(nil, nil)
	f := Region{False: true}
	if ok, _ := Overlaps(a, f, hz, testUniverses); ok {
		t.Error("false region overlaps")
	}
	if SatisfiableAt(f, hz.Min, hz, testUniverses) {
		t.Error("false region satisfiable")
	}
	if !SatisfiableAt(a, hz.Min, hz, testUniverses) {
		t.Error("unconstrained region unsatisfiable")
	}
}

func TestCoversAtProduct(t *testing.T) {
	hz := testHorizon(t)
	now := mustDay(t, "2000/11/5")

	// a constrains leaves {0,1} with months <= NOW-6.
	a := regionOf([]TimeAtom{nowLE(6)}, leafSet(0, 1))
	// b1 covers leaf 0 fully in time, b2 covers leaf 1 fully in time.
	b1 := regionOf(nil, leafSet(0))
	b2 := regionOf(nil, leafSet(1))
	if !CoversAt(a, []Region{b1, b2}, now, hz, testUniverses) {
		t.Error("split cover not detected")
	}
	if CoversAt(a, []Region{b1}, now, hz, testUniverses) {
		t.Error("partial cover accepted")
	}

	// Cross cover: b3 covers leaf {0,1} but only old months; b4 covers
	// everything recent. Jointly they cover a.
	b3 := regionOf([]TimeAtom{nowLE(12)}, leafSet(0, 1))
	b4 := regionOf([]TimeAtom{nowGT(12)}, leafSet(0, 1, 2, 3))
	if !CoversAt(a, []Region{b3, b4}, now, hz, testUniverses) {
		t.Error("time-partitioned cover not detected")
	}
	if CoversAt(a, []Region{b3}, now, hz, testUniverses) {
		t.Error("old-months-only cover accepted")
	}
	// Nothing to cover: empty a is always covered.
	aEmpty := regionOf([]TimeAtom{nowLE(6)}, leafSet())
	if !CoversAt(aEmpty, nil, now, hz, testUniverses) {
		t.Error("empty region should be covered by nothing")
	}
}

func TestCoversAlwaysSweep(t *testing.T) {
	hz := Horizon{Min: mustDay(t, "1999/10/1"), Max: mustDay(t, "2000/6/30"), MaxOffset: 400}

	// The paper's Figure 2 situation: a1 alone (months in (NOW-12, NOW-6])
	// does not keep covering cells that fall over its moving lower bound,
	// but adding a2 (months <= NOW-12, expressed here at month unit) does.
	a1 := regionOf([]TimeAtom{nowGT(12), nowLE(6)}, leafSet(0, 1, 2, 3))
	a2 := regionOf([]TimeAtom{nowLE(12)}, leafSet(0, 1, 2, 3))

	// Escape obligation: what a1 stops selecting must be covered by a2.
	// We approximate the spec-level check here by requiring that the
	// union {a1, a2} covers everything <= NOW-6 at every t.
	target := regionOf([]TimeAtom{nowLE(6)}, leafSet(0, 1, 2, 3))
	ok, _ := CoversAlways(target, []Region{a1, a2}, hz, testUniverses)
	if !ok {
		t.Error("a1 plus a2 should cover all old cells at every t")
	}
	ok, at := CoversAlways(target, []Region{a1}, hz, testUniverses)
	if ok {
		t.Error("a1 alone should fail coverage")
	}
	_ = at
}

func TestCoversProductOrthants(t *testing.T) {
	// Pure set-level sanity: {0,1}x{0,1} covered by {0}x{0,1} and
	// {1}x{0,1} but not by {0}x{0,1} and {1}x{0}.
	mk := func(elems ...int) *Set {
		s := NewSet(2)
		for _, e := range elems {
			s.Add(e)
		}
		return s
	}
	a := []*Set{mk(0, 1), mk(0, 1)}
	if !coversProduct(a, [][]*Set{{mk(0), mk(0, 1)}, {mk(1), mk(0, 1)}}) {
		t.Error("exact partition not detected")
	}
	if coversProduct(a, [][]*Set{{mk(0), mk(0, 1)}, {mk(1), mk(0)}}) {
		t.Error("missing corner accepted")
	}
	if !coversProduct(a, [][]*Set{{mk(0, 1), mk(0, 1)}}) {
		t.Error("superset not detected")
	}
	if coversProduct(a, nil) {
		t.Error("cover by nothing accepted")
	}
}

func TestCoversProductRandomizedAgainstEnumeration(t *testing.T) {
	// Property: coversProduct agrees with brute-force enumeration over a
	// small universe.
	rng := rand.New(rand.NewSource(11))
	mk := func(n int) *Set {
		s := NewSet(3)
		for i := 0; i < 3; i++ {
			if rng.Intn(2) == 0 {
				s.Add(i)
			}
		}
		if s.Empty() {
			s.Add(n % 3)
		}
		return s
	}
	for trial := 0; trial < 300; trial++ {
		a := []*Set{mk(trial), mk(trial + 1)}
		var bs [][]*Set
		for k := 0; k < rng.Intn(3)+1; k++ {
			bs = append(bs, []*Set{mk(k), mk(k + trial)})
		}
		want := true
		for x := 0; x < 3 && want; x++ {
			for y := 0; y < 3 && want; y++ {
				if !a[0].Has(x) || !a[1].Has(y) {
					continue
				}
				covered := false
				for _, b := range bs {
					if b[0].Has(x) && b[1].Has(y) {
						covered = true
						break
					}
				}
				if !covered {
					want = false
				}
			}
		}
		if got := coversProduct(a, bs); got != want {
			t.Fatalf("trial %d: coversProduct = %v, enumeration says %v", trial, got, want)
		}
	}
}

func TestHorizonHelpers(t *testing.T) {
	hz := testHorizon(t)
	if hz.Days() != int(hz.Max-hz.Min)+1 {
		t.Error("Days wrong")
	}
	if hz.DayIndex(hz.Min) != 0 || hz.DayIndex(hz.Max) != hz.Days()-1 {
		t.Error("DayIndex boundaries wrong")
	}
	if hz.DayIndex(hz.Min-1) != -1 || hz.DayIndex(hz.Max+1) != hz.Days() {
		t.Error("DayIndex clamping wrong")
	}
	if hz.SweepStart() >= hz.Min || hz.SweepEnd() <= hz.Max {
		t.Error("sweep must extend beyond the horizon")
	}
	bad := Horizon{Min: 5, Max: 4}
	if bad.Valid() {
		t.Error("degenerate horizon valid")
	}
}
