package prover

import (
	"fmt"

	"dimred/internal/caltime"
	"dimred/internal/expr"
)

// Horizon bounds the day range over which time constraints are decided:
// [Min, Max] must cover every day the model can reference, and MaxOffset
// is the largest |NOW ± spans| offset (in days) appearing in any
// predicate under consideration. NOW is swept over
// [Min - MaxOffset - 2, Max + MaxOffset + 2]; beyond that range every
// NOW-relative window has saturated against the model, so the sweep is
// exhaustive.
type Horizon struct {
	Min, Max  caltime.Day
	MaxOffset int64
}

// Days returns the number of days in the horizon (the time universe).
func (h Horizon) Days() int { return int(h.Max-h.Min) + 1 }

// SweepStart returns the first NOW binding of the exhaustive sweep.
func (h Horizon) SweepStart() caltime.Day { return h.Min - caltime.Day(h.MaxOffset) - 2 }

// SweepEnd returns the last NOW binding of the exhaustive sweep.
func (h Horizon) SweepEnd() caltime.Day { return h.Max + caltime.Day(h.MaxOffset) + 2 }

// Valid reports whether the horizon is non-degenerate.
func (h Horizon) Valid() bool { return h.Max >= h.Min }

// DayIndex converts a day to an index in the time universe; out-of-range
// days clamp to -1 / Days().
func (h Horizon) DayIndex(d caltime.Day) int {
	if d < h.Min {
		return -1
	}
	if d > h.Max {
		return h.Days()
	}
	return int(d - h.Min)
}

// TimeAtom is one time constraint of a DNF disjunct: a comparison
// ("Time.month <= NOW - 6 months", Op in LT..GT with a single
// expression) or a membership test (Op In/NotIn with the member
// expressions). Unit is the calendar unit of the referenced category.
type TimeAtom struct {
	Unit  caltime.Unit
	Op    expr.Op
	Exprs []caltime.Expr
}

// NowRelative reports whether the atom's bounds move with NOW.
func (a TimeAtom) NowRelative() bool {
	for _, e := range a.Exprs {
		if e.IsNowRelative() {
			return true
		}
	}
	return false
}

// MaxOffsetDays returns the largest NOW offset of the atom's expressions.
func (a TimeAtom) MaxOffsetDays() int64 {
	var m int64
	for _, e := range a.Exprs {
		if o := e.MaxOffsetDays(); o > m {
			m = o
		}
	}
	return m
}

// DaysAt materializes the set of day indices satisfying the atom with
// NOW bound to now, over the horizon.
func (a TimeAtom) DaysAt(now caltime.Day, hz Horizon) *Set {
	s := NewSet(hz.Days())
	switch a.Op {
	case expr.OpIn, expr.OpNotIn:
		for _, e := range a.Exprs {
			p := e.EvalPeriod(now, a.Unit)
			s.AddRange(hz.DayIndex(p.First()), hz.DayIndex(p.Last()))
		}
		if a.Op == expr.OpNotIn {
			s.Complement()
		}
		return s
	}
	p := a.Exprs[0].EvalPeriod(now, a.Unit)
	switch a.Op {
	case expr.OpLT:
		s.AddRange(0, hz.DayIndex(p.First()-1))
	case expr.OpLE:
		s.AddRange(0, hz.DayIndex(p.Last()))
	case expr.OpEQ:
		s.AddRange(hz.DayIndex(p.First()), hz.DayIndex(p.Last()))
	case expr.OpNE:
		s.AddRange(hz.DayIndex(p.First()), hz.DayIndex(p.Last()))
		s.Complement()
	case expr.OpGE:
		s.AddRange(hz.DayIndex(p.First()), hz.Days()-1)
	case expr.OpGT:
		s.AddRange(hz.DayIndex(p.Last()+1), hz.Days()-1)
	default:
		panic(fmt.Sprintf("prover: TimeAtom.DaysAt: bad op %v", a.Op))
	}
	return s
}

// DimConstraint is the constraint of one DNF disjunct on one dimension.
// For non-time dimensions, Fixed is a leaf-value bitset (nil means
// unconstrained). For the time dimension, Time is a conjunction of time
// atoms (empty means unconstrained) and Fixed is nil.
type DimConstraint struct {
	Fixed  *Set
	Time   []TimeAtom
	IsTime bool
}

// Region is one DNF disjunct compiled against a schema: the conjunction
// of its per-dimension constraints. A Region with False set selects
// nothing.
type Region struct {
	Dims  []DimConstraint
	False bool
}

// MaxOffsetDays returns the largest NOW offset appearing in the region.
func (r Region) MaxOffsetDays() int64 {
	var m int64
	for _, dc := range r.Dims {
		for _, a := range dc.Time {
			if o := a.MaxOffsetDays(); o > m {
				m = o
			}
		}
	}
	return m
}

// NowRelative reports whether any constraint moves with NOW.
func (r Region) NowRelative() bool {
	for _, dc := range r.Dims {
		for _, a := range dc.Time {
			if a.NowRelative() {
				return true
			}
		}
	}
	return false
}

// At materializes the region at NOW = now as one bitset per dimension.
// universes[i] is the leaf-universe size of dimension i (ignored for the
// time dimension, whose universe is the horizon). A nil return means the
// region is empty at now.
func (r Region) At(now caltime.Day, hz Horizon, universes []int) []*Set {
	if r.False {
		return nil
	}
	out := make([]*Set, len(r.Dims))
	for i, dc := range r.Dims {
		var s *Set
		if dc.IsTime {
			s = Full(hz.Days())
			for _, a := range dc.Time {
				s.IntersectWith(a.DaysAt(now, hz))
			}
		} else if dc.Fixed != nil {
			s = dc.Fixed.Clone()
		} else {
			s = Full(universes[i])
		}
		if s.Empty() {
			return nil
		}
		out[i] = s
	}
	return out
}

// Overlaps decides the paper's line-4 check of the noncrossing algorithm:
// does there exist a time t at which regions a and b select a common
// cell. It returns the first witnessing t when found.
func Overlaps(a, b Region, hz Horizon, universes []int) (bool, caltime.Day) {
	return OverlapsShifted(a, b, 0, hz, universes)
}

// OverlapsShifted decides whether there exists a time t at which region
// a (materialized at NOW = t) and region b (materialized at NOW = t +
// shift days) select a common cell. The subcube engine uses shift = 1 to
// detect migration edges: a cell leaving a's region can enter b's the
// next day even when the regions never overlap at the same instant.
func OverlapsShifted(a, b Region, shift caltime.Day, hz Horizon, universes []int) (bool, caltime.Day) {
	if a.False || b.False {
		return false, 0
	}
	if !hz.Valid() {
		return false, 0
	}
	// Non-time dimensions are t-independent: check them once.
	for i := range a.Dims {
		if a.Dims[i].IsTime {
			continue
		}
		sa, sb := a.Dims[i].Fixed, b.Dims[i].Fixed
		if sa != nil && sb != nil && !sa.Intersects(sb) {
			return false, 0
		}
		if (sa != nil && sa.Empty()) || (sb != nil && sb.Empty()) {
			return false, 0
		}
	}
	// If neither region is NOW-relative a single evaluation decides.
	sweepStart, sweepEnd := hz.SweepStart(), hz.SweepEnd()
	if !a.NowRelative() && !b.NowRelative() {
		sweepEnd = sweepStart
	}
	for t := sweepStart; t <= sweepEnd; t++ {
		if overlapAt(a, b, t, shift, hz, universes) {
			return true, t
		}
	}
	return false, 0
}

func overlapAt(a, b Region, t, shift caltime.Day, hz Horizon, universes []int) bool {
	as := a.At(t, hz, universes)
	if as == nil {
		return false
	}
	bs := b.At(t+shift, hz, universes)
	if bs == nil {
		return false
	}
	for i := range as {
		if !as[i].Intersects(bs[i]) {
			return false
		}
	}
	return true
}

// SatisfiableAt reports whether the region selects any cell at NOW = now.
func SatisfiableAt(r Region, now caltime.Day, hz Horizon, universes []int) bool {
	return r.At(now, hz, universes) != nil
}

// CoversAt decides whether every cell selected by region a at NOW = now
// is selected by some region in bs at now: the coverage obligation of
// the paper's Eq. 23 check, decided by orthant decomposition of the
// product space.
func CoversAt(a Region, bs []Region, now caltime.Day, hz Horizon, universes []int) bool {
	return CoversAtTimes(a, now, bs, now, hz, universes)
}

// CoversAtTimes generalizes CoversAt to different NOW bindings for the
// two sides: it decides whether every cell selected by a at NOW = ta is
// selected by some region in bs at NOW = tb. The Growing check uses it
// with tb = ta + 1 day: cells an action selects today must still be
// aggregated at least as high tomorrow.
func CoversAtTimes(a Region, ta caltime.Day, bs []Region, tb caltime.Day, hz Horizon, universes []int) bool {
	as := a.At(ta, hz, universes)
	if as == nil {
		return true // nothing to cover
	}
	var mats [][]*Set
	for _, b := range bs {
		if m := b.At(tb, hz, universes); m != nil {
			mats = append(mats, m)
		}
	}
	return coversProduct(as, mats)
}

// coversProduct reports whether the product set given by dims is covered
// by the union of the product sets in bs. It removes bs[0] from the
// product via orthant decomposition and recurses on the pieces.
func coversProduct(dims []*Set, bs [][]*Set) bool {
	empty := false
	for _, d := range dims {
		if d.Empty() {
			empty = true
			break
		}
	}
	if empty {
		return true
	}
	if len(bs) == 0 {
		return false
	}
	b := bs[0]
	rest := bs[1:]
	// Decompose dims \ b into orthants: for each dimension i, the piece
	// where dims 0..i-1 are inside b and dim i is outside b.
	for i := range dims {
		piece := make([]*Set, len(dims))
		degenerate := false
		for j := range dims {
			switch {
			case j < i:
				piece[j] = dims[j].Clone().IntersectWith(b[j])
			case j == i:
				piece[j] = dims[j].Clone().MinusWith(b[j])
			default:
				piece[j] = dims[j]
			}
			if piece[j].Empty() {
				degenerate = true
				break
			}
		}
		if degenerate {
			continue
		}
		if !coversProduct(piece, rest) {
			return false
		}
	}
	return true
}

// CoversAlways decides coverage at every NOW binding of the horizon
// sweep. It returns the first violating t when coverage fails.
func CoversAlways(a Region, bs []Region, hz Horizon, universes []int) (bool, caltime.Day) {
	if !hz.Valid() {
		return true, 0
	}
	sweepStart, sweepEnd := hz.SweepStart(), hz.SweepEnd()
	nowFree := !a.NowRelative()
	for _, b := range bs {
		nowFree = nowFree && !b.NowRelative()
	}
	if nowFree {
		sweepEnd = sweepStart
	}
	for t := sweepStart; t <= sweepEnd; t++ {
		if !CoversAt(a, bs, t, hz, universes) {
			return false, t
		}
	}
	return true, 0
}
