package prover

import (
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/expr"
)

func benchHorizon() Horizon {
	return Horizon{Min: caltime.Date(1999, 1, 1), Max: caltime.Date(2001, 12, 31), MaxOffset: 400}
}

func BenchmarkTimeAtomDaysAt(b *testing.B) {
	hz := benchHorizon()
	atom := TimeAtom{
		Unit:  caltime.UnitMonth,
		Op:    expr.OpLE,
		Exprs: []caltime.Expr{caltime.NowExpr().Minus(caltime.Span{N: 6, Unit: caltime.UnitMonth})},
	}
	now := caltime.Date(2000, 11, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = atom.DaysAt(now, hz)
	}
}

func BenchmarkOverlapsSweep(b *testing.B) {
	hz := benchHorizon()
	mk := func(lo, hi int64) Region {
		return Region{Dims: []DimConstraint{{IsTime: true, Time: []TimeAtom{
			{Unit: caltime.UnitMonth, Op: expr.OpGT, Exprs: []caltime.Expr{caltime.NowExpr().Minus(caltime.Span{N: lo, Unit: caltime.UnitMonth})}},
			{Unit: caltime.UnitMonth, Op: expr.OpLE, Exprs: []caltime.Expr{caltime.NowExpr().Minus(caltime.Span{N: hi, Unit: caltime.UnitMonth})}},
		}}, {Fixed: nil}}}
	}
	a, c := mk(12, 6), mk(24, 12)
	universes := []int{0, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := Overlaps(a, c, hz, universes); ok {
			b.Fatal("abutting windows should not overlap")
		}
	}
}
