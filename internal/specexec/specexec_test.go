package specexec_test

import (
	"fmt"
	"math/rand"
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/mdm"
	"dimred/internal/spec"
	"dimred/internal/specexec"
	"dimred/internal/workload"
)

// candidatePool mirrors the random-spec pool of package spec's
// soundness tests: varied granularities, anchored and NOW-relative
// windows, value restrictions and a deletion action.
var candidatePool = []string{
	`aggregate [Time.month, URL.domain] where Time.month <= NOW - 2 months`,
	`aggregate [Time.month, URL.domain] where NOW - 8 months < Time.month and Time.month <= NOW - 2 months`,
	`aggregate [Time.month, URL.url] where URL.domain_grp = ".com" and Time.month <= NOW - 1 month`,
	`aggregate [Time.quarter, URL.domain] where Time.quarter <= NOW - 2 quarters`,
	`aggregate [Time.quarter, URL.domain_grp] where Time.quarter <= NOW - 3 quarters`,
	`aggregate [Time.year, URL.domain_grp] where Time.year <= NOW - 1 year`,
	`aggregate [Time.week, URL.domain] where URL.domain_grp = ".edu" and Time.week <= NOW - 10 weeks`,
	`aggregate [Time.month, URL.domain_grp] where URL.domain_grp = ".org" and Time.month <= NOW - 3 months`,
	`aggregate [Time.month, URL.domain] where Time.month <= 2000/3`,
	`delete where Time.year <= NOW - 2 years`,
	`aggregate [Time.day, URL.domain] where URL.domain_grp = ".com" and Time.day <= NOW - 10 days`,
}

func buildClickEnv(t testing.TB) (*workload.ClickObject, *spec.Env) {
	t.Helper()
	obj, err := workload.BuildClickMO(workload.ClickConfig{
		Seed: 7, Start: caltime.Date(2000, 1, 1), Days: 120,
		ClicksPerDay: 5, Domains: 9, URLsPerDomain: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	env, err := spec.NewEnv(obj.Schema, "Time", obj.Time)
	if err != nil {
		t.Fatal(err)
	}
	return obj, env
}

// boundaryDays returns evaluation days that straddle every calendar
// boundary the pool's windows can pivot on: a dense daily sweep over
// the data range plus the first day (±1) of every month for two more
// years, so month, quarter and year windows flip inside the sampled
// set rather than between samples.
func boundaryDays() []caltime.Day {
	var days []caltime.Day
	for d := caltime.Date(2000, 1, 1); d <= caltime.Date(2000, 7, 15); d++ {
		days = append(days, d)
	}
	for y := 2000; y <= 2002; y++ {
		for m := 1; m <= 12; m++ {
			first := caltime.Date(y, m, 1)
			days = append(days, first-1, first, first+1)
		}
	}
	return days
}

// sampleCells draws base-granularity cells from the MO plus, for each,
// its roll-up to the aggregation level an accepted spec assigns at a
// mid-stream day — the coarser cells the subcube engine routes.
func sampleCells(t *testing.T, obj *workload.ClickObject, s *spec.Spec, stride int) [][]mdm.ValueID {
	t.Helper()
	schema := obj.Schema
	mid := caltime.Date(2000, 9, 1)
	var cells [][]mdm.ValueID
	for f := 0; f < obj.MO.Len(); f += stride {
		cell := obj.MO.Refs(mdm.FactID(f))
		cells = append(cells, cell)
		if s.DeletedBy(cell, mid) != nil {
			continue
		}
		level, _ := s.AggLevel(cell, mid)
		up := make([]mdm.ValueID, len(cell))
		coarser := false
		for i, d := range schema.Dims {
			up[i] = d.AncestorAt(cell[i], level[i])
			if up[i] == mdm.NoValue {
				t.Fatalf("no ancestor for %v at %v", cell, level)
			}
			if up[i] != cell[i] {
				coarser = true
			}
		}
		if coarser {
			cells = append(cells, up)
		}
	}
	return cells
}

// compareCell checks every router entry point against the interpreted
// specification for one (cell, day) pair.
func compareCell(t *testing.T, s *spec.Spec, r *specexec.Router, cell []mdm.ValueID, at caltime.Day) {
	t.Helper()
	if got, want := r.DeletedBy(cell), s.DeletedBy(cell, at); got != want {
		t.Fatalf("DeletedBy(%v) at %v: compiled %v, interpreted %v", cell, at, got, want)
	}
	n := len(cell)
	level := make(mdm.Granularity, n)
	resp := make([]*spec.Action, n)
	r.AggLevelInto(cell, level, resp)
	wantLevel, wantResp := s.AggLevel(cell, at)
	for i := range level {
		if level[i] != wantLevel[i] {
			t.Fatalf("AggLevel(%v) at %v dim %d: compiled %v, interpreted %v", cell, at, i, level, wantLevel)
		}
		if resp[i] != wantResp[i] {
			t.Fatalf("AggLevel resp(%v) at %v dim %d: compiled %v, interpreted %v", cell, at, i, resp[i], wantResp[i])
		}
	}
	var wantSat []*spec.Action
	for k, a := range s.Actions() {
		sat := a.SatisfiedBy(cell, at)
		if got := r.Satisfied(k, cell); got != sat {
			t.Fatalf("Satisfied(%d, %v) at %v: compiled %v, interpreted %v", k, cell, at, got, sat)
		}
		if !a.IsDelete() && sat {
			wantSat = append(wantSat, a)
		}
	}
	gotSat := r.AppendSatisfied(nil, cell)
	if len(gotSat) != len(wantSat) {
		t.Fatalf("AppendSatisfied(%v) at %v: compiled %d actions, interpreted %d", cell, at, len(gotSat), len(wantSat))
	}
	for i := range gotSat {
		if gotSat[i] != wantSat[i] {
			t.Fatalf("AppendSatisfied(%v) at %v entry %d: compiled %s, interpreted %s",
				cell, at, i, gotSat[i].Name(), wantSat[i].Name())
		}
	}
}

// TestRouterDifferential draws random specifications from the pool and
// checks, for every sampled cell (base and rolled-up) and every
// boundary-straddling evaluation day, that the compiled router agrees
// with the interpreted specification on DeletedBy, AggLevel (levels
// and responsibility), per-action SatisfiedBy and the satisfied-action
// list.
func TestRouterDifferential(t *testing.T) {
	obj, env := buildClickEnv(t)
	rng := rand.New(rand.NewSource(41))
	days := boundaryDays()
	accepted := 0
	for trial := 0; trial < 25 && accepted < 8; trial++ {
		perm := rng.Perm(len(candidatePool))
		n := 1 + rng.Intn(4)
		var actions []*spec.Action
		for i := 0; i < n; i++ {
			actions = append(actions, spec.MustCompileString(fmt.Sprintf("r%d", i), candidatePool[perm[i]], env))
		}
		s, err := spec.New(env, actions...)
		if err != nil {
			continue // rejected by the decision procedures
		}
		accepted++
		cells := sampleCells(t, obj, s, 11)
		prog := specexec.Compile(s)
		for _, at := range days {
			r := prog.At(at)
			if r.Day() != at {
				t.Fatalf("Router.Day() = %v, want %v", r.Day(), at)
			}
			for _, cell := range cells {
				compareCell(t, s, r, cell, at)
			}
		}
	}
	if accepted == 0 {
		t.Fatal("no random spec accepted; pool too hostile")
	}
	t.Logf("verified %d accepted specs over %d days", accepted, len(days))
}

// TestRouterOutOfDomainFallback: values added to a dimension after
// compilation are outside the bitset domain; the router must detect
// them and agree with the interpreted path instead of misprobing.
func TestRouterOutOfDomainFallback(t *testing.T) {
	obj, env := buildClickEnv(t)
	s, err := spec.New(env,
		spec.MustCompileString("m", `aggregate [Time.month, URL.domain] where Time.month <= NOW - 2 months`, env),
		spec.MustCompileString("del", `delete where Time.year <= NOW - 2 years`, env))
	if err != nil {
		t.Fatal(err)
	}
	prog := specexec.Compile(s)

	// Grow both dimensions past the compile-time snapshot.
	newURL, err := obj.URL.EnsureURL("http://www.latecomer.com/page/0")
	if err != nil {
		t.Fatal(err)
	}
	newDay := obj.Time.EnsureDay(caltime.Date(2005, 6, 1))

	days := []caltime.Day{
		caltime.Date(2000, 3, 1), caltime.Date(2000, 12, 31),
		caltime.Date(2002, 1, 1), caltime.Date(2005, 7, 1), caltime.Date(2008, 1, 1),
	}
	oldDay := obj.MO.Refs(0)[0]
	oldURL := obj.MO.Refs(0)[1]
	cells := [][]mdm.ValueID{
		{oldDay, newURL},
		{newDay, oldURL},
		{newDay, newURL},
	}
	for _, at := range days {
		r := prog.At(at)
		for _, cell := range cells {
			compareCell(t, s, r, cell, at)
		}
	}
}

// TestRouterProbesAllocationFree pins the tentpole's allocation
// contract: for in-domain cells, DeletedBy, AggLevelInto and Satisfied
// allocate nothing per probe.
func TestRouterProbesAllocationFree(t *testing.T) {
	obj, env := buildClickEnv(t)
	s, err := spec.New(env,
		spec.MustCompileString("m", `aggregate [Time.month, URL.domain] where Time.month <= NOW - 2 months`, env),
		spec.MustCompileString("q", `aggregate [Time.quarter, URL.domain_grp] where Time.quarter <= NOW - 4 quarters`, env),
		spec.MustCompileString("del", `delete where Time.year <= NOW - 2 years`, env))
	if err != nil {
		t.Fatal(err)
	}
	r := specexec.Compile(s).At(caltime.Date(2000, 9, 1))
	cell := obj.MO.Refs(0)
	n := len(cell)
	level := make(mdm.Granularity, n)
	resp := make([]*spec.Action, n)
	sat := make([]*spec.Action, 0, len(s.Actions()))
	var sink int
	allocs := testing.AllocsPerRun(1000, func() {
		if r.DeletedBy(cell) != nil {
			sink++
		}
		r.AggLevelInto(cell, level, resp)
		if r.Satisfied(0, cell) {
			sink++
		}
		sat = r.AppendSatisfied(sat[:0], cell)
	})
	if allocs != 0 {
		t.Fatalf("router probe allocated %.1f times per run, want 0", allocs)
	}
	_ = sink
}

// TestProgramAccounting checks the program's introspection surface:
// the bitset byte gauge is positive for a spec with plain tests, and
// Spec returns the compiled specification.
func TestProgramAccounting(t *testing.T) {
	_, env := buildClickEnv(t)
	s, err := spec.New(env,
		spec.MustCompileString("m", `aggregate [Time.month, URL.url] where URL.domain_grp = ".com" and Time.month <= NOW - 1 month`, env))
	if err != nil {
		t.Fatal(err)
	}
	prog := specexec.Compile(s)
	if prog.Spec() != s {
		t.Fatal("Program.Spec() lost the specification")
	}
	if prog.BitsetBytes() <= 0 {
		t.Fatalf("BitsetBytes() = %d, want > 0 for a spec with a plain URL test", prog.BitsetBytes())
	}
}
