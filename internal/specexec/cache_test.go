package specexec_test

import (
	"sync"
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/obs"
	"dimred/internal/spec"
	"dimred/internal/specexec"
)

// cacheSpec builds a one-action spec plus a second action that the
// decision procedures accept as an insertion, so tests can drive the
// generation forward.
func cacheSpec(t *testing.T) (*spec.Spec, *spec.Action) {
	t.Helper()
	_, env := buildClickEnv(t)
	s, err := spec.New(env,
		spec.MustCompileString("m", `aggregate [Time.month, URL.domain] where Time.month <= NOW - 2 months`, env))
	if err != nil {
		t.Fatal(err)
	}
	return s, spec.MustCompileString("del", `delete where Time.year <= NOW - 2 years`, env)
}

// TestCacheGenerationKeyed pins the cache contract: an unchanged
// (spec, generation) pair reuses the compiled program, a committed
// mutation forces exactly one recompile, and a rejected mutation —
// which leaves the generation alone — does not.
func TestCacheGenerationKeyed(t *testing.T) {
	s, del := cacheSpec(t)
	met := obs.NewMetrics()
	c := specexec.NewCache(met)

	p1 := c.ProgramFor(s)
	if p2 := c.ProgramFor(s); p2 != p1 {
		t.Fatal("second ProgramFor with unchanged generation recompiled")
	}
	snap := met.Snapshot()
	if snap.ProgramCompiles != 1 || snap.ProgramCacheMisses != 1 || snap.ProgramCacheHits != 1 {
		t.Fatalf("after 2 lookups: compiles=%d misses=%d hits=%d, want 1/1/1",
			snap.ProgramCompiles, snap.ProgramCacheMisses, snap.ProgramCacheHits)
	}
	if met.BitsetBytes.Load() != p1.BitsetBytes() {
		t.Fatalf("BitsetBytes gauge = %d, want the retained program's %d",
			met.BitsetBytes.Load(), p1.BitsetBytes())
	}

	// A rejected mutation leaves the generation — and the cache — alone.
	gen := s.Generation()
	if err := s.Insert(nil); err == nil {
		t.Fatal("Insert(nil) unexpectedly accepted")
	}
	if s.Generation() != gen {
		t.Fatalf("rejected Insert bumped the generation: %d -> %d", gen, s.Generation())
	}
	if c.ProgramFor(s) != p1 {
		t.Fatal("rejected Insert invalidated the cache")
	}

	// A committed mutation bumps the generation and forces one recompile.
	if err := s.Insert(del); err != nil {
		t.Fatal(err)
	}
	if s.Generation() != gen+1 {
		t.Fatalf("Insert bumped generation to %d, want %d", s.Generation(), gen+1)
	}
	p3 := c.ProgramFor(s)
	if p3 == p1 {
		t.Fatal("ProgramFor returned the stale pre-mutation program")
	}
	if p4 := c.ProgramFor(s); p4 != p3 {
		t.Fatal("post-mutation program not cached")
	}
	if got := met.Snapshot().ProgramCompiles; got != 2 {
		t.Fatalf("ProgramCompiles = %d after one mutation, want 2", got)
	}

	// Delete is a committed mutation too.
	if err := s.Delete(nil, caltime.Date(2000, 9, 1), "del"); err != nil {
		t.Fatal(err)
	}
	if s.Generation() != gen+2 {
		t.Fatalf("Delete bumped generation to %d, want %d", s.Generation(), gen+2)
	}
	if c.ProgramFor(s) == p3 {
		t.Fatal("ProgramFor returned the stale pre-Delete program")
	}
}

// TestCacheRouterDay checks the day-keyed router slots: same day reuses
// the pinned router, other days pin their own, a committed spec
// mutation invalidates every pinned router, and negative days (before
// the epoch) index safely.
func TestCacheRouterDay(t *testing.T) {
	s, del := cacheSpec(t)
	met := obs.NewMetrics()
	c := specexec.NewCache(met)

	d := caltime.Date(2000, 9, 1)
	r1 := c.RouterAt(s, d)
	if r1.Day() != d {
		t.Fatalf("RouterAt pinned day %v, want %v", r1.Day(), d)
	}
	if r2 := c.RouterAt(s, d); r2 != r1 {
		t.Fatal("same-day RouterAt re-pinned a new router")
	}
	if got := met.Snapshot().RouterCacheHits; got != 1 {
		t.Fatalf("RouterCacheHits = %d after one reuse, want 1", got)
	}

	// A different day pins its own router without evicting r1 (distinct
	// slot for adjacent days).
	r3 := c.RouterAt(s, d+1)
	if r3 == r1 || r3.Day() != d+1 {
		t.Fatalf("RouterAt(d+1) = day %v (same router %v)", r3.Day(), r3 == r1)
	}
	if c.RouterAt(s, d) != r1 {
		t.Fatal("pinning an adjacent day evicted the original router")
	}

	// Days before the epoch are negative; the slot index must not be.
	neg := caltime.Day(-3)
	if r := c.RouterAt(s, neg); r.Day() != neg {
		t.Fatalf("RouterAt(%v) pinned day %v", neg, r.Day())
	}

	// A committed mutation drops every pinned router with the program.
	if err := s.Insert(del); err != nil {
		t.Fatal(err)
	}
	r4 := c.RouterAt(s, d)
	if r4 == r1 {
		t.Fatal("spec mutation did not invalidate the pinned router")
	}
	if r4.Day() != d {
		t.Fatalf("post-mutation router pinned day %v, want %v", r4.Day(), d)
	}
}

// TestCacheConcurrentLookups hammers one cold cache from many
// goroutines (run under -race in CI): duplicate compiles on the
// publication race are fine, but every caller must get a program for
// the right spec and a router for the day it asked.
func TestCacheConcurrentLookups(t *testing.T) {
	s, _ := cacheSpec(t)
	c := specexec.NewCache(obs.NewMetrics())
	days := []caltime.Day{
		caltime.Date(2000, 3, 1), caltime.Date(2000, 9, 1),
		caltime.Date(2001, 1, 1), caltime.Date(2002, 6, 15),
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if p := c.ProgramFor(s); p.Spec() != s {
					errs <- "ProgramFor returned a program for another spec"
					return
				}
				d := days[(g+i)%len(days)]
				if r := c.RouterAt(s, d); r.Day() != d {
					errs <- "RouterAt returned a router pinned to another day"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
