package specexec

import (
	"sync/atomic"

	"dimred/internal/caltime"
	"dimred/internal/obs"
	"dimred/internal/spec"
)

// routerSlots sizes the per-program day-keyed router cache. Queries
// between two clock advances all ask for the same evaluation day, so a
// handful of direct-mapped slots (day mod routerSlots) covers the
// steady state plus tests that hop between a few nearby days.
const routerSlots = 4

// cacheEntry is one published cache state: the program compiled for one
// (specification pointer, generation) pair plus its day-pinned routers.
// Entries are immutable except for the router slots, which only ever go
// from nil (or a stale day) to a router derived from the same program —
// any value a reader observes is correct for the day it carries.
type cacheEntry struct {
	sp      *spec.Spec
	gen     uint64
	prog    *Program
	routers [routerSlots]atomic.Pointer[Router]
}

// Cache memoizes the compiled Program of the most recent specification
// state it has seen, keyed on (specification pointer, generation): the
// generation is bumped by every Spec mutator, so an unchanged key
// proves the action set is unchanged and the program may be reused.
// Day-pinned Routers are cached per day alongside the program.
//
// Lookups are a single atomic pointer load, so they are cheap under the
// warehouse's read lock. Fills are compute-then-swap: the lock-free
// publish never holds a lock during compilation, and two goroutines
// racing to fill simply compile twice — both programs are correct (the
// generation cannot change mid-race, mutators being externally
// serialized against compilation), one wins the publish and the other
// stays private to its caller. Correctness never depends on which.
//
// The cache retains exactly one program; pointing it at a different
// specification (or a new generation) replaces the entry. The optional
// metric set records hits, misses and the retained bitset bytes.
type Cache struct {
	cur atomic.Pointer[cacheEntry]
	met *obs.Metrics // nil disables instrumentation
}

// NewCache creates an empty cache recording into met (which may be nil).
func NewCache(met *obs.Metrics) *Cache { return &Cache{met: met} }

// SetMetrics redirects the cache's instrumentation to m (nil disables
// it). It is not synchronized against concurrent lookups: the
// epoch-snapshot warehouse calls it only while the cube set owning the
// cache is off the published read path.
func (c *Cache) SetMetrics(m *obs.Metrics) { c.met = m }

// entryFor returns the cache entry for the specification's current
// generation, compiling and publishing a fresh program on miss.
func (c *Cache) entryFor(sp *spec.Spec) *cacheEntry {
	gen := sp.Generation()
	old := c.cur.Load()
	if old != nil && old.sp == sp && old.gen == gen {
		if c.met != nil {
			c.met.ProgramCacheHits.Inc()
		}
		return old
	}
	e := &cacheEntry{sp: sp, gen: gen, prog: Compile(sp)}
	if c.met != nil {
		c.met.ProgramCacheMisses.Inc()
		c.met.ProgramCompiles.Inc()
	}
	if c.cur.CompareAndSwap(old, e) {
		// BitsetBytes gauges what the cache retains, so only the
		// published program counts; a lost race leaves the winner's
		// figure in place.
		if c.met != nil {
			c.met.BitsetBytes.Set(e.prog.BitsetBytes())
		}
	}
	return e
}

// ProgramFor returns the compiled program for the specification's
// current action set, reusing the cached one when the generation is
// unchanged.
func (c *Cache) ProgramFor(sp *spec.Spec) *Program { return c.entryFor(sp).prog }

// RouterAt returns the day-pinned router for the specification at
// evaluation day t, reusing both the compiled program and — when t was
// recently pinned — the router itself. Routers are immutable and shared
// across goroutines, so handing the same *Router to concurrent queries
// is safe (the subcube evaluator already shares one router across its
// per-cube goroutines).
func (c *Cache) RouterAt(sp *spec.Spec, t caltime.Day) *Router {
	e := c.entryFor(sp)
	slot := &e.routers[int(uint64(t)%routerSlots)]
	if r := slot.Load(); r != nil && r.Day() == t {
		if c.met != nil {
			c.met.RouterCacheHits.Inc()
		}
		return r
	}
	//dimred:allow publishcheck At only reads the program to build a fresh router; its summary is conservative because pinDisjunct appends program-derived masks into its result slice
	r := e.prog.At(t)
	slot.Store(r)
	return r
}
