// Package specexec compiles a reduction specification into an
// executable SpecProgram: per action, per DNF disjunct, per constrained
// dimension, a bitset over that dimension's ValueID space marking the
// values whose verdict is true. The interpreted path (package spec)
// re-derives every verdict per row per call — walking AncestorAt chains
// and, below the constrained category, whole DrillDown descents; the
// compiled program performs each of those walks once per distinct
// dimension value and turns the per-row AggLevel/DeletedBy/SatisfiedBy
// checks into a handful of word-indexed probes with zero allocations.
//
// Time stays explicit. NOW-relative time tests cannot be folded into
// compile-time bitsets — their right-hand sides move with the
// evaluation day — so Compile records them symbolically and
// Program.At(t) resolves them into a day-pinned Router. The Router is
// a pure function of (Program, t): it never reads a clock, so the
// explicit-time contract of Definitions 2–4 survives compilation, and
// one Router may be shared read-only by any number of goroutines.
//
// Values added to a dimension after compilation are outside the bitset
// domain; the Router detects them (the per-dimension domain size is
// recorded at compile time) and falls back to the interpreted path for
// that cell, so a stale program is never wrong, only slower.
package specexec

import (
	"dimred/internal/caltime"
	"dimred/internal/mdm"
	"dimred/internal/spec"
)

// bitset is a fixed-capacity bit vector over one dimension's ValueID
// space.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

func (b bitset) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b bitset) intersect(o bitset) {
	for w := range b {
		b[w] &= o[w]
	}
}

// dimMask is one probe of a compiled disjunct: the cell's value for
// dimension dim must be set in bits.
type dimMask struct {
	dim  int
	bits bitset
}

// timeTest identifies a NOW-relative (or anchored) time test kept
// symbolic at compile time, to be resolved by Program.At.
type timeTest struct {
	disjunct, test int
}

// progDisjunct is one compiled DNF disjunct: the intersection of its
// plain tests as per-dimension bitsets, plus the time tests awaiting a
// day.
type progDisjunct struct {
	never bool
	plain []dimMask
	time  []int // test indices within the disjunct, resolved by At
}

// progAction is one compiled action.
type progAction struct {
	src       *spec.Action
	isDelete  bool
	target    mdm.Granularity
	disjuncts []progDisjunct
}

// Program is a compiled (Spec, Env) pair. It is immutable after
// Compile; obtain a day-pinned Router with At. Because Spec.Insert and
// Spec.Delete mutate the specification in place, a Program is stale as
// soon as the specification's Generation changes — the engine reuses
// one through a generation-keyed Cache, so compilation happens once
// per spec mutation instead of once per synchronization, reduction or
// unsynchronized query, and costs one verdict per (test, dimension
// value) instead of one per (test, row).
type Program struct {
	sp    *spec.Spec
	env   *spec.Env
	acts  []progAction
	nVals []int // per dimension: domain size at compile time
	bytes int64 // bitset bytes held by the compile-time masks
}

// Compile builds the program for the specification's current action
// set. Every plain (non-time) test of every disjunct is evaluated once
// per value of its dimension — ancestor lookup or conservative
// descendant descent included — and materialized as a bitset.
func Compile(sp *spec.Spec) *Program {
	env := sp.Env()
	p := &Program{sp: sp, env: env, nVals: make([]int, len(env.Schema.Dims))}
	for i, d := range env.Schema.Dims {
		p.nVals[i] = d.NumValues()
	}
	for _, a := range sp.Actions() {
		pa := progAction{src: a, isDelete: a.IsDelete(), target: a.Target()}
		for i := 0; i < a.NumDisjuncts(); i++ {
			pd := progDisjunct{never: a.DisjunctNever(i)}
			for j := 0; j < a.NumTests(i) && !pd.never; j++ {
				dim, isTime := a.TestShape(i, j)
				switch dim {
				case spec.TestConstTrue:
					continue
				case spec.TestConstFalse:
					pd.never = true
					continue
				}
				if isTime {
					pd.time = append(pd.time, j)
					continue
				}
				bits := p.testMask(a, i, j, dim)
				merged := false
				for _, m := range pd.plain {
					if m.dim == dim {
						m.bits.intersect(bits)
						merged = true
						break
					}
				}
				if !merged {
					pd.plain = append(pd.plain, dimMask{dim: dim, bits: bits})
					p.bytes += int64(len(bits)) * 8
				}
			}
			pa.disjuncts = append(pa.disjuncts, pd)
		}
		p.acts = append(p.acts, pa)
	}
	return p
}

// testMask materializes plain test (i, j) of action a as a bitset over
// dimension dim's value space.
func (p *Program) testMask(a *spec.Action, i, j, dim int) bitset {
	n := p.nVals[dim]
	bits := newBitset(n)
	for v := 0; v < n; v++ {
		if a.PlainTestVerdict(i, j, mdm.ValueID(v)) {
			bits.set(v)
		}
	}
	return bits
}

// BitsetBytes returns the bytes held by the program's compile-time
// bitsets (the static masks; day-pinned time masks are per-Router and
// transient).
func (p *Program) BitsetBytes() int64 { return p.bytes }

// Spec returns the specification the program was compiled from.
func (p *Program) Spec() *spec.Spec { return p.sp }

// routerDisjunct is a fully day-pinned disjunct: a cell satisfies it
// iff every mask contains the cell's value for the mask's dimension.
type routerDisjunct struct {
	never bool
	masks []dimMask
}

type routerAction struct {
	src       *spec.Action
	isDelete  bool
	target    mdm.Granularity
	disjuncts []routerDisjunct
}

// Router is a Program pinned to one evaluation day: every NOW-relative
// window is resolved to a concrete bitset. Routers are immutable and
// safe for concurrent use; the probe methods allocate nothing.
type Router struct {
	p    *Program
	t    caltime.Day
	acts []routerAction
}

// At resolves the program at evaluation day t: each time test becomes
// a bitset over the time dimension's value space (one verdict per
// value, NOW bound to t), intersected with the disjunct's static mask
// for that dimension. Disjuncts without time tests share the
// compile-time masks without copying.
func (p *Program) At(t caltime.Day) *Router {
	r := &Router{p: p, t: t, acts: make([]routerAction, len(p.acts))}
	for k := range p.acts {
		pa := &p.acts[k]
		ra := routerAction{src: pa.src, isDelete: pa.isDelete, target: pa.target,
			disjuncts: make([]routerDisjunct, len(pa.disjuncts))}
		for di := range pa.disjuncts {
			pd := &pa.disjuncts[di]
			if pd.never {
				ra.disjuncts[di] = routerDisjunct{never: true}
				continue
			}
			if len(pd.time) == 0 {
				ra.disjuncts[di] = routerDisjunct{masks: pd.plain}
				continue
			}
			ra.disjuncts[di] = routerDisjunct{masks: p.pinDisjunct(pa.src, di, pd, t)}
		}
		r.acts[k] = ra
	}
	return r
}

// pinDisjunct combines the disjunct's static masks with its time tests
// resolved at t.
func (p *Program) pinDisjunct(a *spec.Action, di int, pd *progDisjunct, t caltime.Day) []dimMask {
	td := p.env.TimeDim
	n := p.nVals[td]
	timeBits := newBitset(n)
	for w := range timeBits {
		timeBits[w] = ^uint64(0)
	}
	for _, j := range pd.time {
		jb := newBitset(n)
		for v := 0; v < n; v++ {
			if a.TimeTestVerdict(di, j, mdm.ValueID(v), t) {
				jb.set(v)
			}
		}
		timeBits.intersect(jb)
	}
	masks := make([]dimMask, 0, len(pd.plain)+1)
	placed := false
	for _, m := range pd.plain {
		if m.dim == td {
			combined := newBitset(n)
			copy(combined, m.bits)
			combined.intersect(timeBits)
			masks = append(masks, dimMask{dim: td, bits: combined})
			placed = true
			continue
		}
		masks = append(masks, m)
	}
	if !placed {
		masks = append(masks, dimMask{dim: td, bits: timeBits})
	}
	return masks
}

// Day returns the evaluation day the router is pinned to.
func (r *Router) Day() caltime.Day { return r.t }

// inDomain reports whether every cell value lies inside the bitset
// domain recorded at compile time. Values added afterwards route the
// whole cell to the interpreted fallback.
func (r *Router) inDomain(cell []mdm.ValueID) bool {
	for i, n := range r.p.nVals {
		if v := cell[i]; v < 0 || int(v) >= n {
			return false
		}
	}
	return true
}

// actionSatisfied probes one compiled action's disjuncts against an
// in-domain cell.
func (r *Router) actionSatisfied(ra *routerAction, cell []mdm.ValueID) bool {
	for di := range ra.disjuncts {
		rd := &ra.disjuncts[di]
		if rd.never {
			continue
		}
		ok := true
		for _, m := range rd.masks {
			if !m.bits.has(int(cell[m.dim])) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// Satisfied reports whether the cell satisfies action k (in
// Spec.Actions order) at the router's day — the compiled
// Action.SatisfiedBy.
func (r *Router) Satisfied(k int, cell []mdm.ValueID) bool {
	if !r.inDomain(cell) {
		return r.acts[k].src.SatisfiedBy(cell, r.t)
	}
	return r.actionSatisfied(&r.acts[k], cell)
}

// DeletedBy returns the first deletion action the cell satisfies at
// the router's day, or nil — the compiled Spec.DeletedBy. It allocates
// nothing.
func (r *Router) DeletedBy(cell []mdm.ValueID) *spec.Action {
	if !r.inDomain(cell) {
		return r.p.sp.DeletedBy(cell, r.t)
	}
	for k := range r.acts {
		ra := &r.acts[k]
		if ra.isDelete && r.actionSatisfied(ra, cell) {
			return ra.src
		}
	}
	return nil
}

// AggLevelInto computes the cell's aggregation level at the router's
// day into caller-provided scratch — the compiled Spec.AggLevel with
// the per-call level/resp allocations hoisted out. level and resp must
// have one entry per dimension; resp may be nil when responsibility is
// not needed. It allocates nothing.
func (r *Router) AggLevelInto(cell []mdm.ValueID, level mdm.Granularity, resp []*spec.Action) {
	dims := r.p.env.Schema.Dims
	for i, d := range dims {
		level[i] = d.CategoryOf(cell[i])
	}
	if resp != nil {
		for i := range resp {
			resp[i] = nil
		}
	}
	if !r.inDomain(cell) {
		lv, rs := r.p.sp.AggLevel(cell, r.t)
		copy(level, lv)
		if resp != nil {
			copy(resp, rs)
		}
		return
	}
	for k := range r.acts {
		ra := &r.acts[k]
		if ra.isDelete || !r.actionSatisfied(ra, cell) {
			continue
		}
		for i, d := range dims {
			if d.CatLE(level[i], ra.target[i]) && level[i] != ra.target[i] {
				level[i] = ra.target[i]
				if resp != nil {
					resp[i] = ra.src
				}
			}
		}
	}
}

// AppendSatisfied appends, in Spec.Actions order, every non-deletion
// action the cell satisfies at the router's day. Reduce uses it to
// build Spec_gran(f, t) with one probe pass instead of evaluating
// SpecGran and then AggLevel over the same actions.
func (r *Router) AppendSatisfied(dst []*spec.Action, cell []mdm.ValueID) []*spec.Action {
	if !r.inDomain(cell) {
		for k := range r.acts {
			ra := &r.acts[k]
			if !ra.isDelete && ra.src.SatisfiedBy(cell, r.t) {
				dst = append(dst, ra.src)
			}
		}
		return dst
	}
	for k := range r.acts {
		ra := &r.acts[k]
		if !ra.isDelete && r.actionSatisfied(ra, cell) {
			dst = append(dst, ra.src)
		}
	}
	return dst
}
