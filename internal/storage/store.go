// Package storage provides an append-only columnar fact store with
// tombstone deletion and byte accounting. It is the physical layer
// beneath the subcube engine (Section 7's implementation strategy) and
// the baselines: dimension references are stored as 32-bit dictionary
// keys per column, measures as 64-bit floats per column, which matches
// how star-schema fact tables are laid out in practice and makes the
// paper's storage-gain claims measurable.
package storage

import (
	"fmt"

	"dimred/internal/mdm"
)

// RowID identifies a row within one Store.
type RowID int32

// Layout describes the per-row cost model of a store.
type Layout struct {
	DimCols  int // 4 bytes each
	MeasCols int // 8 bytes each
	// RowOverhead models per-row metadata (row id, validity); the
	// default of 8 bytes is applied when zero.
	RowOverhead int
}

// RowBytes returns the modeled size of one row.
func (l Layout) RowBytes() int64 {
	ov := l.RowOverhead
	if ov == 0 {
		ov = 8
	}
	return int64(4*l.DimCols + 8*l.MeasCols + ov)
}

// Store is a columnar fact store. The zero value is unusable; construct
// with New.
type Store struct {
	layout Layout
	refs   [][]mdm.ValueID
	meas   [][]float64
	base   []int64
	dead   []bool
	nDead  int
}

// New creates an empty store with the given layout.
func New(layout Layout) *Store {
	return &Store{
		layout: layout,
		refs:   make([][]mdm.ValueID, layout.DimCols),
		meas:   make([][]float64, layout.MeasCols),
	}
}

// Layout returns the store's layout.
func (s *Store) Layout() Layout { return s.layout }

// Clone returns a deep copy of the store: same rows, same RowIDs, same
// tombstones, with no columns shared. Mutating either store afterwards
// leaves the other untouched.
func (s *Store) Clone() *Store {
	c := &Store{
		layout: s.layout,
		refs:   make([][]mdm.ValueID, len(s.refs)),
		meas:   make([][]float64, len(s.meas)),
		base:   append([]int64(nil), s.base...),
		dead:   append([]bool(nil), s.dead...),
		nDead:  s.nDead,
	}
	for i, col := range s.refs {
		c.refs[i] = append([]mdm.ValueID(nil), col...)
	}
	for j, col := range s.meas {
		c.meas[j] = append([]float64(nil), col...)
	}
	return c
}

// Append adds a row and returns its id. base counts the user-level facts
// the row represents (at least 1).
func (s *Store) Append(refs []mdm.ValueID, meas []float64, base int64) (RowID, error) {
	if len(refs) != s.layout.DimCols || len(meas) != s.layout.MeasCols {
		return 0, fmt.Errorf("storage: Append: row shape (%d, %d) does not match layout (%d, %d)",
			len(refs), len(meas), s.layout.DimCols, s.layout.MeasCols)
	}
	if base < 1 {
		base = 1
	}
	id := RowID(len(s.base))
	for i := range s.refs {
		s.refs[i] = append(s.refs[i], refs[i])
	}
	for j := range s.meas {
		s.meas[j] = append(s.meas[j], meas[j])
	}
	s.base = append(s.base, base)
	s.dead = append(s.dead, false)
	return id, nil
}

// Delete tombstones a row. Deleting a dead or out-of-range row is a
// no-op.
func (s *Store) Delete(r RowID) {
	if r < 0 || int(r) >= len(s.dead) || s.dead[r] {
		return
	}
	s.dead[r] = true
	s.nDead++
}

// Alive reports whether the row exists and is not deleted.
func (s *Store) Alive(r RowID) bool {
	return r >= 0 && int(r) < len(s.dead) && !s.dead[r]
}

// Rows returns the total number of slots, dead or alive.
func (s *Store) Rows() int { return len(s.base) }

// Live returns the number of live rows.
func (s *Store) Live() int { return len(s.base) - s.nDead }

// Dead returns the number of tombstoned rows awaiting compaction.
func (s *Store) Dead() int { return s.nDead }

// Bytes returns the modeled size of the live data.
func (s *Store) Bytes() int64 { return int64(s.Live()) * s.layout.RowBytes() }

// Stats is a point-in-time accounting of one store, surfaced by the
// observability layer: live and dead row counts, modeled live bytes,
// and the bytes held by tombstones until the next compaction.
type Stats struct {
	Rows      int   // total slots, dead or alive
	Live      int   // live rows
	Dead      int   // tombstoned rows
	Bytes     int64 // modeled size of the live data
	DeadBytes int64 // modeled size pinned by tombstones
}

// Stats reports the store's current accounting.
func (s *Store) Stats() Stats {
	return Stats{
		Rows:      len(s.base),
		Live:      s.Live(),
		Dead:      s.nDead,
		Bytes:     s.Bytes(),
		DeadBytes: int64(s.nDead) * s.layout.RowBytes(),
	}
}

// Ref returns dimension column i of row r.
func (s *Store) Ref(r RowID, i int) mdm.ValueID { return s.refs[i][r] }

// Refs copies row r's dimension columns into dst (allocating if nil).
func (s *Store) Refs(r RowID, dst []mdm.ValueID) []mdm.ValueID {
	if dst == nil {
		dst = make([]mdm.ValueID, s.layout.DimCols)
	}
	for i := range s.refs {
		dst[i] = s.refs[i][r]
	}
	return dst
}

// Measure returns measure column j of row r.
func (s *Store) Measure(r RowID, j int) float64 { return s.meas[j][r] }

// SetMeasure overwrites measure column j of row r (used by in-place
// aggregation when rows merge into a subcube cell).
func (s *Store) SetMeasure(r RowID, j int, v float64) { s.meas[j][r] = v }

// Base returns the user-fact count of row r.
func (s *Store) Base(r RowID) int64 { return s.base[r] }

// AddBase increases the user-fact count of row r.
func (s *Store) AddBase(r RowID, n int64) { s.base[r] += n }

// Scan calls fn for every live row in id order until fn returns false.
func (s *Store) Scan(fn func(r RowID) bool) {
	for r := range s.base {
		if s.dead[r] {
			continue
		}
		if !fn(RowID(r)) {
			return
		}
	}
}

// Compact removes tombstoned rows, invalidating all previously issued
// RowIDs. It returns a mapping from old to new ids (mdm.NoValue-like -1
// for deleted rows) so indexes can be rebuilt.
func (s *Store) Compact() []RowID {
	remap := make([]RowID, len(s.base))
	w := 0
	for r := range s.base {
		if s.dead[r] {
			remap[r] = -1
			continue
		}
		remap[r] = RowID(w)
		if w != r {
			for i := range s.refs {
				s.refs[i][w] = s.refs[i][r]
			}
			for j := range s.meas {
				s.meas[j][w] = s.meas[j][r]
			}
			s.base[w] = s.base[r]
		}
		w++
	}
	for i := range s.refs {
		s.refs[i] = s.refs[i][:w]
	}
	for j := range s.meas {
		s.meas[j] = s.meas[j][:w]
	}
	s.base = s.base[:w]
	s.dead = s.dead[:w]
	for r := range s.dead {
		s.dead[r] = false
	}
	s.nDead = 0
	return remap
}

// DimensionBytes models the storage of a dimension table: per value, its
// name, one 4-byte surrogate key, 8 bytes of ordering/metadata, and a
// 4-byte parent key per immediate ancestor category.
func DimensionBytes(d *mdm.Dimension) int64 {
	var total int64
	for c := 0; c < d.NumCategories(); c++ {
		cid := mdm.CategoryID(c)
		parents := int64(len(d.Anc(cid)))
		for _, v := range d.ValuesIn(cid) {
			total += int64(len(d.ValueName(v))) + 4 + 8 + 4*parents
		}
	}
	return total
}

// MOBytes models the storage of an MO's fact table under this package's
// layout.
func MOBytes(mo *mdm.MO) int64 {
	l := Layout{DimCols: mo.Schema().NumDims(), MeasCols: len(mo.Schema().Measures)}
	return int64(mo.Len()) * l.RowBytes()
}
