package storage

import (
	"testing"
	"testing/quick"

	"dimred/internal/mdm"
)

func newTestStore() *Store {
	return New(Layout{DimCols: 2, MeasCols: 3})
}

func TestAppendScan(t *testing.T) {
	s := newTestStore()
	r1, err := s.Append([]mdm.ValueID{1, 2}, []float64{1, 2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Append([]mdm.ValueID{3, 4}, []float64{4, 5, 6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows() != 2 || s.Live() != 2 {
		t.Fatal("counts wrong")
	}
	if s.Ref(r2, 1) != 4 || s.Measure(r1, 2) != 3 || s.Base(r2) != 2 {
		t.Error("reads wrong")
	}
	refs := s.Refs(r1, nil)
	if refs[0] != 1 || refs[1] != 2 {
		t.Error("Refs wrong")
	}
	var seen []RowID
	s.Scan(func(r RowID) bool { seen = append(seen, r); return true })
	if len(seen) != 2 {
		t.Errorf("scan saw %v", seen)
	}
	// Early stop.
	n := 0
	s.Scan(func(r RowID) bool { n++; return false })
	if n != 1 {
		t.Error("scan did not stop")
	}
}

func TestAppendShapeError(t *testing.T) {
	s := newTestStore()
	if _, err := s.Append([]mdm.ValueID{1}, []float64{1, 2, 3}, 1); err == nil {
		t.Error("short refs accepted")
	}
	if _, err := s.Append([]mdm.ValueID{1, 2}, []float64{1}, 1); err == nil {
		t.Error("short measures accepted")
	}
}

func TestDeleteAndBytes(t *testing.T) {
	s := newTestStore()
	rb := s.Layout().RowBytes()
	if rb != 4*2+8*3+8 {
		t.Errorf("RowBytes = %d", rb)
	}
	var rows []RowID
	for i := 0; i < 10; i++ {
		r, _ := s.Append([]mdm.ValueID{mdm.ValueID(i), 0}, []float64{0, 0, 0}, 1)
		rows = append(rows, r)
	}
	if s.Bytes() != 10*rb {
		t.Errorf("Bytes = %d", s.Bytes())
	}
	s.Delete(rows[3])
	s.Delete(rows[3]) // idempotent
	s.Delete(RowID(99))
	s.Delete(RowID(-1))
	if s.Live() != 9 || s.Bytes() != 9*rb {
		t.Errorf("after delete: live=%d bytes=%d", s.Live(), s.Bytes())
	}
	if s.Alive(rows[3]) || !s.Alive(rows[4]) {
		t.Error("Alive wrong")
	}
	count := 0
	s.Scan(func(r RowID) bool {
		if r == rows[3] {
			t.Error("scan visited dead row")
		}
		count++
		return true
	})
	if count != 9 {
		t.Errorf("scan count = %d", count)
	}
}

func TestSetMeasureAndAddBase(t *testing.T) {
	s := newTestStore()
	r, _ := s.Append([]mdm.ValueID{0, 0}, []float64{1, 2, 3}, 1)
	s.SetMeasure(r, 1, 42)
	s.AddBase(r, 4)
	if s.Measure(r, 1) != 42 || s.Base(r) != 5 {
		t.Error("update wrong")
	}
}

func TestCompact(t *testing.T) {
	s := newTestStore()
	var rows []RowID
	for i := 0; i < 6; i++ {
		r, _ := s.Append([]mdm.ValueID{mdm.ValueID(i), mdm.ValueID(i * 10)}, []float64{float64(i), 0, 0}, int64(i+1))
		rows = append(rows, r)
	}
	s.Delete(rows[0])
	s.Delete(rows[2])
	s.Delete(rows[5])
	remap := s.Compact()
	if s.Rows() != 3 || s.Live() != 3 {
		t.Fatalf("after compact rows=%d live=%d", s.Rows(), s.Live())
	}
	if remap[0] != -1 || remap[2] != -1 || remap[5] != -1 {
		t.Error("dead rows should remap to -1")
	}
	// Surviving rows keep their data.
	for old, newID := range remap {
		if newID < 0 {
			continue
		}
		if s.Ref(newID, 0) != mdm.ValueID(old) || s.Base(newID) != int64(old+1) {
			t.Errorf("row %d remapped to %d with wrong data", old, newID)
		}
	}
	// Compacting an already-compact store is the identity mapping.
	remap2 := s.Compact()
	for i, r := range remap2 {
		if int(r) != i {
			t.Error("second compact moved rows")
		}
	}
}

func TestCompactPropertyPreservesLiveRows(t *testing.T) {
	f := func(kills []uint8) bool {
		s := newTestStore()
		const n = 40
		for i := 0; i < n; i++ {
			if _, err := s.Append([]mdm.ValueID{mdm.ValueID(i), 0}, []float64{float64(i), 0, 0}, 1); err != nil {
				return false
			}
		}
		for _, k := range kills {
			s.Delete(RowID(int(k) % n))
		}
		live := s.Live()
		var sum float64
		s.Scan(func(r RowID) bool { sum += s.Measure(r, 0); return true })
		s.Compact()
		if s.Live() != live || s.Rows() != live {
			return false
		}
		var sum2 float64
		s.Scan(func(r RowID) bool { sum2 += s.Measure(r, 0); return true })
		return sum == sum2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDimensionBytesGrowsWithValues(t *testing.T) {
	d := mdm.NewDimension("X")
	bot := d.MustAddCategory("leaf", false)
	d.MustFinalize()
	before := DimensionBytes(d)
	d.MustAddValue(bot, "some-value", 0, nil)
	after := DimensionBytes(d)
	if after <= before {
		t.Errorf("DimensionBytes did not grow: %d -> %d", before, after)
	}
}

func TestMOBytes(t *testing.T) {
	d := mdm.NewDimension("X")
	bot := d.MustAddCategory("leaf", false)
	d.MustFinalize()
	v := d.MustAddValue(bot, "v", 0, nil)
	schema, err := mdm.NewSchema("F", []*mdm.Dimension{d}, []mdm.Measure{{Name: "m", Agg: mdm.AggSum}})
	if err != nil {
		t.Fatal(err)
	}
	mo := mdm.NewMO(schema)
	if MOBytes(mo) != 0 {
		t.Error("empty MO has bytes")
	}
	if _, err := mo.AddFact([]mdm.ValueID{v}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if MOBytes(mo) != 4+8+8 {
		t.Errorf("MOBytes = %d", MOBytes(mo))
	}
}
