package storage

import (
	"testing"

	"dimred/internal/mdm"
)

func BenchmarkAppend(b *testing.B) {
	s := New(Layout{DimCols: 2, MeasCols: 4})
	refs := []mdm.ValueID{1, 2}
	meas := []float64{1, 2, 3, 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Append(refs, meas, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScan(b *testing.B) {
	s := New(Layout{DimCols: 2, MeasCols: 4})
	for i := 0; i < 10000; i++ {
		if _, err := s.Append([]mdm.ValueID{mdm.ValueID(i), 0}, []float64{1, 2, 3, 4}, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum float64
		s.Scan(func(r RowID) bool { sum += s.Measure(r, 0); return true })
	}
}

func BenchmarkCompactHalfDead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := New(Layout{DimCols: 2, MeasCols: 4})
		for j := 0; j < 10000; j++ {
			r, _ := s.Append([]mdm.ValueID{mdm.ValueID(j), 0}, []float64{1, 2, 3, 4}, 1)
			if j%2 == 0 {
				s.Delete(r)
			}
		}
		b.StartTimer()
		s.Compact()
	}
}
