package dims

import (
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/mdm"
)

func TestTimeDimSparseInsert(t *testing.T) {
	td := NewTimeDim()
	d1, _ := caltime.ParseDay("1999/12/4")
	v1 := td.EnsureDay(d1)
	if v1 != td.EnsureDay(d1) {
		t.Error("EnsureDay not idempotent")
	}
	// Ancestors exist and carry the paper's notation.
	m := td.AncestorAt(v1, td.Month)
	if td.ValueName(m) != "1999/12" {
		t.Errorf("month ancestor = %q", td.ValueName(m))
	}
	w := td.AncestorAt(v1, td.Week)
	if td.ValueName(w) != "1999W48" {
		t.Errorf("week ancestor = %q", td.ValueName(w))
	}
	q := td.AncestorAt(v1, td.Quarter)
	if td.ValueName(q) != "1999Q4" {
		t.Errorf("quarter ancestor = %q", td.ValueName(q))
	}
	y := td.AncestorAt(v1, td.Year)
	if td.ValueName(y) != "1999" {
		t.Errorf("year ancestor = %q", td.ValueName(y))
	}
	// Sparse: only the inserted day exists.
	if got := len(td.ValuesIn(td.Day)); got != 1 {
		t.Errorf("day values = %d, want 1", got)
	}
	// A second day in the same month shares ancestors.
	d2, _ := caltime.ParseDay("1999/12/31")
	v2 := td.EnsureDay(d2)
	if td.AncestorAt(v2, td.Month) != m {
		t.Error("same-month days should share the month value")
	}
	if td.AncestorAt(v2, td.Week) == w {
		t.Error("different weeks should not share the week value")
	}
	min, max, ok := td.Range()
	if !ok || min != d1 || max != d2 {
		t.Errorf("Range = %v %v %v", min, max, ok)
	}
}

func TestTimeDimUnitMapping(t *testing.T) {
	td := NewTimeDim()
	for _, u := range []caltime.Unit{caltime.UnitDay, caltime.UnitWeek, caltime.UnitMonth, caltime.UnitQuarter, caltime.UnitYear} {
		c := td.CategoryForUnit(u)
		if c == mdm.NoCategory {
			t.Fatalf("no category for %v", u)
		}
		back, ok := td.UnitForCategory(c)
		if !ok || back != u {
			t.Errorf("unit round-trip %v -> %v", u, back)
		}
	}
	if _, ok := td.UnitForCategory(td.Dimension.Top()); ok {
		t.Error("TOP should have no unit")
	}
}

func TestTimeDimPeriodOfValue(t *testing.T) {
	td := NewTimeDim()
	d, _ := caltime.ParseDay("2000/1/4")
	v := td.EnsureDay(d)
	q := td.AncestorAt(v, td.Quarter)
	p, ok := td.PeriodOfValue(q)
	if !ok || p.String() != "2000Q1" {
		t.Errorf("PeriodOfValue = %v %v", p, ok)
	}
	if _, ok := td.PeriodOfValue(td.TopValueID()); ok {
		t.Error("top value should have no period")
	}
	pv, ok := td.PeriodValue(p)
	if !ok || pv != q {
		t.Errorf("PeriodValue = %v %v", pv, ok)
	}
}

func TestSplitURL(t *testing.T) {
	cases := []struct{ raw, dom, grp string }{
		{"http://www.cnn.com/health", "cnn.com", ".com"},
		{"http://www.cc.gatech.edu/", "gatech.edu", ".edu"},
		{"www.amazon.com/exec/x", "amazon.com", ".com"},
		{"cnn.com", "cnn.com", ".com"},
	}
	for _, c := range cases {
		dom, grp, err := SplitURL(c.raw)
		if err != nil {
			t.Fatalf("SplitURL(%q): %v", c.raw, err)
		}
		if dom != c.dom || grp != c.grp {
			t.Errorf("SplitURL(%q) = %q, %q; want %q, %q", c.raw, dom, grp, c.dom, c.grp)
		}
	}
	for _, bad := range []string{"localhost", "", "http:///x"} {
		if _, _, err := SplitURL(bad); err == nil {
			t.Errorf("SplitURL(%q) succeeded", bad)
		}
	}
}

func TestURLDim(t *testing.T) {
	ud := NewURLDim()
	v1 := ud.MustEnsureURL("http://www.cnn.com/health")
	v2 := ud.MustEnsureURL("http://www.cnn.com/")
	if v1 == v2 {
		t.Error("distinct urls share a value")
	}
	if ud.AncestorAt(v1, ud.Domain) != ud.AncestorAt(v2, ud.Domain) {
		t.Error("same-domain urls should share the domain value")
	}
	if ud.MustEnsureURL("http://www.cnn.com/health") != v1 {
		t.Error("EnsureURL not idempotent")
	}
	g := ud.AncestorAt(v1, ud.Group)
	if ud.ValueName(g) != ".com" {
		t.Errorf("group = %q", ud.ValueName(g))
	}
}

func TestLinearDim(t *testing.T) {
	ld, err := NewLinearDim("Product", "product", "category", "department")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := ld.Ensure("widget-1", "widgets", "hardware")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ld.Ensure("widget-2", "widgets", "hardware")
	if err != nil {
		t.Fatal(err)
	}
	if ld.AncestorAt(p1, ld.Levels[1]) != ld.AncestorAt(p2, ld.Levels[1]) {
		t.Error("same category should be shared")
	}
	// Conflicting roll-up is rejected.
	if _, err := ld.Ensure("widget-1", "gadgets", "hardware"); err == nil {
		t.Error("conflicting roll-up accepted")
	}
	// Wrong arity.
	if _, err := ld.Ensure("a", "b"); err == nil {
		t.Error("wrong path arity accepted")
	}
	if _, err := NewLinearDim("Empty"); err == nil {
		t.Error("empty linear dimension accepted")
	}
}

func TestPaperMO(t *testing.T) {
	p := MustPaperMO()
	if p.MO.Len() != 7 {
		t.Fatalf("paper MO has %d facts, want 7", p.MO.Len())
	}
	// Dimension cardinalities from Figure 1 / Table 2.
	if got := len(p.Time.ValuesIn(p.Time.Day)); got != 5 {
		t.Errorf("days = %d, want 5", got)
	}
	if got := len(p.Time.ValuesIn(p.Time.Week)); got != 5 {
		t.Errorf("weeks = %d, want 5", got)
	}
	if got := len(p.Time.ValuesIn(p.Time.Month)); got != 3 {
		t.Errorf("months = %d, want 3", got)
	}
	if got := len(p.Time.ValuesIn(p.Time.Quarter)); got != 2 {
		t.Errorf("quarters = %d, want 2", got)
	}
	if got := len(p.Time.ValuesIn(p.Time.Year)); got != 2 {
		t.Errorf("years = %d, want 2", got)
	}
	if got := len(p.URL.ValuesIn(p.URL.URL)); got != 4 {
		t.Errorf("urls = %d, want 4", got)
	}
	if got := len(p.URL.ValuesIn(p.URL.Domain)); got != 3 {
		t.Errorf("domains = %d, want 3", got)
	}
	if got := len(p.URL.ValuesIn(p.URL.Group)); got != 2 {
		t.Errorf("domain groups = %d, want 2", got)
	}

	// fact_1: 1999/12/4, www.cnn.com/health, dwell 2335.
	f1 := p.Facts[1]
	if p.MO.Measure(f1, 1) != 2335 {
		t.Errorf("fact_1 dwell = %v", p.MO.Measure(f1, 1))
	}
	day := p.Time.ValueName(p.MO.Ref(f1, 0))
	if day != "1999/12/4" {
		t.Errorf("fact_1 day = %q", day)
	}
	// fact_6 is the only .edu fact.
	f6 := p.Facts[6]
	grpVal, _ := p.URL.ValueByName(p.URL.Group, ".edu")
	if !p.MO.CharacterizedBy(f6, 1, grpVal) {
		t.Error("fact_6 should be characterized by .edu")
	}
	for i := 0; i < 6; i++ {
		if p.MO.CharacterizedBy(p.Facts[i], 1, grpVal) {
			t.Errorf("fact_%d should not be .edu", i)
		}
	}
	// Total dwell time across the MO (sum of Table 2 column): 4165.
	if got := p.MO.TotalMeasure(1); got != 677+2335+154+12+654+301+32 {
		t.Errorf("total dwell = %v", got)
	}
}
