package dims

import (
	"dimred/internal/caltime"
	"dimred/internal/mdm"
)

// PaperURLs are the four url values of Appendix A, Table 2, in url_id
// order (601..604).
var PaperURLs = []string{
	"http://www.cc.gatech.edu/",
	"http://www.cnn.com/",
	"http://www.cnn.com/health",
	"http://www.amazon.com/exec/obidos/tg/browse/-/465600/ref=b_tn_un/107-2047155-8802158",
}

// paperFact describes one row of the Click fact table of Table 2.
type paperFact struct {
	day                              string
	url                              int // index into PaperURLs
	numberOf, dwell, delivery, sizeK float64
}

var paperFacts = []paperFact{
	{"1999/11/23", 3, 1, 677, 2, 34}, // fact_0
	{"1999/12/4", 2, 1, 2335, 5, 52}, // fact_1
	{"1999/12/4", 1, 1, 154, 2, 42},  // fact_2
	{"1999/12/31", 3, 1, 12, 1, 34},  // fact_3
	{"2000/1/4", 1, 1, 654, 4, 47},   // fact_4
	{"2000/1/4", 2, 1, 301, 6, 52},   // fact_5
	{"2000/1/20", 0, 1, 32, 1, 12},   // fact_6
}

// PaperObject bundles the running example of the paper: the
// multidimensional object of Appendix A together with its dimensions.
// Measures: Number_of, Dwell_time, Delivery_time, Datasize (in kB), all
// with default aggregate function SUM, as in the paper.
type PaperObject struct {
	MO     *mdm.MO
	Schema *mdm.Schema
	Time   *TimeDim
	URL    *URLDim
	Facts  []mdm.FactID // fact_0 .. fact_6
}

// PaperMO constructs the example MO exactly as printed in Appendix A:
// seven click facts over the sparse Time dimension (five days and their
// ancestors) and the URL dimension (four urls, three domains, two domain
// groups). Fact f is named "fact_<i>" as in the figures.
func PaperMO() (*PaperObject, error) {
	td := NewTimeDim()
	ud := NewURLDim()

	urls := make([]mdm.ValueID, len(PaperURLs))
	for i, raw := range PaperURLs {
		v, err := ud.EnsureURL(raw)
		if err != nil {
			return nil, err
		}
		urls[i] = v
	}

	schema, err := mdm.NewSchema("Click",
		[]*mdm.Dimension{td.Dimension, ud.Dimension},
		[]mdm.Measure{
			{Name: "Number_of", Agg: mdm.AggSum},
			{Name: "Dwell_time", Agg: mdm.AggSum},
			{Name: "Delivery_time", Agg: mdm.AggSum},
			{Name: "Datasize", Agg: mdm.AggSum},
		})
	if err != nil {
		return nil, err
	}
	mo := mdm.NewMO(schema)
	facts := make([]mdm.FactID, 0, len(paperFacts))
	for _, pf := range paperFacts {
		d, err := caltime.ParseDay(pf.day)
		if err != nil {
			return nil, err
		}
		dv := td.EnsureDay(d)
		f, err := mo.AddFact([]mdm.ValueID{dv, urls[pf.url]},
			[]float64{pf.numberOf, pf.dwell, pf.delivery, pf.sizeK})
		if err != nil {
			return nil, err
		}
		facts = append(facts, f)
	}
	return &PaperObject{MO: mo, Schema: schema, Time: td, URL: ud, Facts: facts}, nil
}

// MustPaperMO panics if PaperMO fails; the dataset is a compile-time
// constant, so failure indicates a programming error.
func MustPaperMO() *PaperObject {
	p, err := PaperMO()
	if err != nil {
		panic(err)
	}
	return p
}
