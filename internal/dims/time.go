// Package dims builds concrete dimensions for the data model: the
// paper's Time dimension with its parallel week/month hierarchies, the
// URL dimension of the ISP example, a generic linear hierarchy builder,
// and the exact multidimensional object of Appendix A.
package dims

import (
	"fmt"
	"strings"

	"dimred/internal/caltime"
	"dimred/internal/mdm"
)

// TimeDim is the paper's Time dimension:
//
//	day <_Time month <_Time quarter <_Time year <_Time TOP
//	day <_Time week  <_Time TOP
//
// Values are added sparsely: EnsureDay inserts one day and exactly the
// ancestor periods it needs, so the dimension contains only the periods
// the data references — as in the paper's Appendix A example, where
// quarter 1999Q4 "consists of only 3 days".
type TimeDim struct {
	*mdm.Dimension
	Day, Week, Month, Quarter, Year mdm.CategoryID

	byPeriod map[caltime.Period]mdm.ValueID
	min, max caltime.Day
	any      bool
}

// NewTimeDim constructs the Time dimension schema with no values.
func NewTimeDim() *TimeDim {
	d := mdm.NewDimension("Time")
	day := d.MustAddCategory("day", true)
	week := d.MustAddCategory("week", true)
	month := d.MustAddCategory("month", true)
	quarter := d.MustAddCategory("quarter", true)
	year := d.MustAddCategory("year", true)
	mustContain(d, day, week)
	mustContain(d, day, month)
	mustContain(d, month, quarter)
	mustContain(d, quarter, year)
	d.MustFinalize()
	return &TimeDim{
		Dimension: d,
		Day:       day, Week: week, Month: month, Quarter: quarter, Year: year,
		byPeriod: make(map[caltime.Period]mdm.ValueID),
	}
}

func mustContain(d *mdm.Dimension, lo, hi mdm.CategoryID) {
	if err := d.Contains(lo, hi); err != nil {
		panic(err)
	}
}

// CategoryForUnit maps a calendar unit to the corresponding category.
func (t *TimeDim) CategoryForUnit(u caltime.Unit) mdm.CategoryID {
	switch u {
	case caltime.UnitDay:
		return t.Day
	case caltime.UnitWeek:
		return t.Week
	case caltime.UnitMonth:
		return t.Month
	case caltime.UnitQuarter:
		return t.Quarter
	case caltime.UnitYear:
		return t.Year
	}
	return mdm.NoCategory
}

// UnitForCategory maps a category of this dimension back to its calendar
// unit; ok is false for the top category.
func (t *TimeDim) UnitForCategory(c mdm.CategoryID) (caltime.Unit, bool) {
	switch c {
	case t.Day:
		return caltime.UnitDay, true
	case t.Week:
		return caltime.UnitWeek, true
	case t.Month:
		return caltime.UnitMonth, true
	case t.Quarter:
		return caltime.UnitQuarter, true
	case t.Year:
		return caltime.UnitYear, true
	}
	return 0, false
}

// EnsureDay inserts (or finds) the value for day d, creating ancestor
// week, month, quarter and year values as needed, and returns its id.
func (t *TimeDim) EnsureDay(d caltime.Day) mdm.ValueID {
	dp := caltime.PeriodOf(d, caltime.UnitDay)
	if v, ok := t.byPeriod[dp]; ok {
		return v
	}
	yearV := t.ensurePeriod(caltime.PeriodOf(d, caltime.UnitYear), nil)
	quarterV := t.ensurePeriod(caltime.PeriodOf(d, caltime.UnitQuarter),
		map[mdm.CategoryID]mdm.ValueID{t.Year: yearV})
	monthV := t.ensurePeriod(caltime.PeriodOf(d, caltime.UnitMonth),
		map[mdm.CategoryID]mdm.ValueID{t.Quarter: quarterV})
	weekV := t.ensurePeriod(caltime.PeriodOf(d, caltime.UnitWeek), nil)
	dayV := t.ensurePeriod(dp, map[mdm.CategoryID]mdm.ValueID{t.Week: weekV, t.Month: monthV})
	if !t.any || d < t.min {
		t.min = d
	}
	if !t.any || d > t.max {
		t.max = d
	}
	t.any = true
	return dayV
}

func (t *TimeDim) ensurePeriod(p caltime.Period, parents map[mdm.CategoryID]mdm.ValueID) mdm.ValueID {
	if v, ok := t.byPeriod[p]; ok {
		return v
	}
	v := t.MustAddValue(t.CategoryForUnit(p.Unit), p.String(), p.Index, parents)
	t.byPeriod[p] = v
	return v
}

// PeriodValue looks up the value for a period; ok is false if the period
// was never inserted.
func (t *TimeDim) PeriodValue(p caltime.Period) (mdm.ValueID, bool) {
	v, ok := t.byPeriod[p]
	return v, ok
}

// DayValue looks up the value for a day.
func (t *TimeDim) DayValue(d caltime.Day) (mdm.ValueID, bool) {
	return t.PeriodValue(caltime.PeriodOf(d, caltime.UnitDay))
}

// PeriodOfValue returns the calendar period a value of this dimension
// denotes; ok is false for the top value.
func (t *TimeDim) PeriodOfValue(v mdm.ValueID) (caltime.Period, bool) {
	u, ok := t.UnitForCategory(t.CategoryOf(v))
	if !ok {
		return caltime.Period{}, false
	}
	return caltime.Period{Unit: u, Index: t.ValueOrd(v)}, true
}

// Range returns the smallest and largest day ever inserted; ok is false
// when the dimension has no day values. The soundness decision procedure
// uses this to bound its time horizon.
func (t *TimeDim) Range() (min, max caltime.Day, ok bool) {
	return t.min, t.max, t.any
}

// TimeDimFrom wraps an existing mdm.Dimension with the Time-dimension
// calendar interpretation, rebuilding the period index from the stored
// values. The dimension must have the five standard category names; it
// is used when restoring a snapshot.
func TimeDimFrom(d *mdm.Dimension) (*TimeDim, error) {
	t := &TimeDim{Dimension: d, byPeriod: make(map[caltime.Period]mdm.ValueID)}
	for name, dst := range map[string]*mdm.CategoryID{
		"day": &t.Day, "week": &t.Week, "month": &t.Month,
		"quarter": &t.Quarter, "year": &t.Year,
	} {
		c, ok := d.CategoryByName(name)
		if !ok {
			return nil, fmt.Errorf("dims: TimeDimFrom: dimension %s has no category %q", d.Name(), name)
		}
		*dst = c
	}
	for c := 0; c < d.NumCategories(); c++ {
		cid := mdm.CategoryID(c)
		u, ok := t.UnitForCategory(cid)
		if !ok {
			continue
		}
		for _, v := range d.ValuesIn(cid) {
			p := caltime.Period{Unit: u, Index: d.ValueOrd(v)}
			t.byPeriod[p] = v
			if u == caltime.UnitDay {
				day := caltime.Day(p.Index)
				if !t.any || day < t.min {
					t.min = day
				}
				if !t.any || day > t.max {
					t.max = day
				}
				t.any = true
			}
		}
	}
	return t, nil
}

// URLDim is the ISP example's URL dimension:
// url <_URL domain <_URL domain_grp <_URL TOP.
type URLDim struct {
	*mdm.Dimension
	URL, Domain, Group mdm.CategoryID
}

// NewURLDim constructs the URL dimension schema with no values.
func NewURLDim() *URLDim {
	d := mdm.NewDimension("URL")
	url := d.MustAddCategory("url", false)
	dom := d.MustAddCategory("domain", false)
	grp := d.MustAddCategory("domain_grp", false)
	mustContain(d, url, dom)
	mustContain(d, dom, grp)
	d.MustFinalize()
	return &URLDim{Dimension: d, URL: url, Domain: dom, Group: grp}
}

// SplitURL derives (domain, domain group) from a URL string the way the
// Appendix A data does: strip the scheme and path, drop a leading "www."
// style host label so "www.cnn.com/health" belongs to domain "cnn.com",
// and let the final label give the domain group ".com".
func SplitURL(raw string) (domain, group string, err error) {
	host := raw
	if i := strings.Index(host, "://"); i >= 0 {
		host = host[i+3:]
	}
	if i := strings.IndexByte(host, '/'); i >= 0 {
		host = host[:i]
	}
	host = strings.TrimSuffix(host, ".")
	labels := strings.Split(host, ".")
	if len(labels) < 2 || labels[len(labels)-1] == "" {
		return "", "", fmt.Errorf("dims: cannot derive domain from URL %q", raw)
	}
	domain = strings.Join(labels[len(labels)-2:], ".")
	group = "." + labels[len(labels)-1]
	return domain, group, nil
}

// EnsureURL inserts (or finds) the value for a URL, creating its domain
// and domain-group ancestors as needed.
func (u *URLDim) EnsureURL(raw string) (mdm.ValueID, error) {
	if v, ok := u.ValueByName(u.URL, raw); ok {
		return v, nil
	}
	domain, group, err := SplitURL(raw)
	if err != nil {
		return mdm.NoValue, err
	}
	gv, ok := u.ValueByName(u.Group, group)
	if !ok {
		gv = u.MustAddValue(u.Group, group, 0, nil)
	}
	dv, ok := u.ValueByName(u.Domain, domain)
	if !ok {
		dv = u.MustAddValue(u.Domain, domain, 0, map[mdm.CategoryID]mdm.ValueID{u.Group: gv})
	}
	return u.AddValue(u.URL, raw, 0, map[mdm.CategoryID]mdm.ValueID{u.Domain: dv})
}

// MustEnsureURL panics if EnsureURL fails.
func (u *URLDim) MustEnsureURL(raw string) mdm.ValueID {
	v, err := u.EnsureURL(raw)
	if err != nil {
		panic(err)
	}
	return v
}

// LinearDim is a generic strictly linear hierarchy (bottom level first),
// used by the retail example for dimensions such as
// product < category < department.
type LinearDim struct {
	*mdm.Dimension
	Levels []mdm.CategoryID // bottom first
}

// NewLinearDim constructs a linear dimension with the given level names,
// bottom level first.
func NewLinearDim(name string, levels ...string) (*LinearDim, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("dims: linear dimension %s needs at least one level", name)
	}
	d := mdm.NewDimension(name)
	ids := make([]mdm.CategoryID, len(levels))
	for i, lv := range levels {
		id, err := d.AddCategory(lv, false)
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}
	for i := 0; i+1 < len(ids); i++ {
		if err := d.Contains(ids[i], ids[i+1]); err != nil {
			return nil, err
		}
	}
	if err := d.Finalize(); err != nil {
		return nil, err
	}
	return &LinearDim{Dimension: d, Levels: ids}, nil
}

// Ensure inserts (or finds) a leaf value given the full path of names,
// bottom level first ("widget-17", "widgets", "hardware"), and returns
// the leaf value id.
func (l *LinearDim) Ensure(path ...string) (mdm.ValueID, error) {
	if len(path) != len(l.Levels) {
		return mdm.NoValue, fmt.Errorf("dims: %s.Ensure needs %d names, got %d", l.Name(), len(l.Levels), len(path))
	}
	parent := mdm.NoValue
	for i := len(path) - 1; i >= 0; i-- {
		cat := l.Levels[i]
		v, ok := l.ValueByName(cat, path[i])
		if !ok {
			parents := map[mdm.CategoryID]mdm.ValueID{}
			if parent != mdm.NoValue {
				parents[l.Levels[i+1]] = parent
			}
			var err error
			v, err = l.AddValue(cat, path[i], 0, parents)
			if err != nil {
				return mdm.NoValue, err
			}
		} else if parent != mdm.NoValue && l.AncestorAt(v, l.Levels[i+1]) != parent {
			return mdm.NoValue, fmt.Errorf("dims: %s value %q already rolls up to %q, not %q",
				l.Name(), path[i], l.ValueName(l.AncestorAt(v, l.Levels[i+1])), path[i+1])
		}
		parent = v
	}
	return parent, nil
}
