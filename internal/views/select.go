package views

import (
	"sort"

	"dimred/internal/mdm"
	"dimred/internal/spec"
	"dimred/internal/storage"
)

// Candidate is one granularity the greedy selector may materialize,
// scored from the observed query-shape trace.
type Candidate struct {
	Key   string
	Gran  mdm.Granularity
	Count int64 // observed view-eligible queries at this shape
	// EstRows and EstBytes bound the view's size from the dimension
	// value universes; Build re-checks the actual size against the
	// budget after materializing.
	EstRows  int64
	EstBytes int64
	// Benefit is the classic benefit-per-byte score: rows a query at
	// this shape no longer scans, times how often the shape is asked,
	// per estimated view row retained.
	Benefit float64
}

// Candidates scores the observed shape counts against the base row
// count. Shapes that fail to decode (a schema change since recording)
// or estimate no saving over scanning the base subcubes are dropped.
func Candidates(env *spec.Env, counts map[string]int64, baseRows int64, layout storage.Layout) []Candidate {
	cands := make([]Candidate, 0, len(counts))
	for key, count := range counts {
		if count <= 0 {
			continue
		}
		g, err := spec.DecodeGran(env, key)
		if err != nil {
			continue
		}
		estRows := spec.EstimateCells(env, g)
		if estRows > baseRows {
			estRows = baseRows
		}
		saved := baseRows - estRows
		if saved <= 0 || estRows <= 0 {
			continue
		}
		cands = append(cands, Candidate{
			Key:      key,
			Gran:     g,
			Count:    count,
			EstRows:  estRows,
			EstBytes: estRows * layout.RowBytes(),
			Benefit:  float64(count) * float64(saved) / float64(estRows),
		})
	}
	return cands
}

// Select greedily picks candidates by descending benefit per byte
// until the byte budget or the view-count cap is exhausted; a
// candidate whose estimate overflows the remaining budget is skipped
// and the scan continues, so a cheap high-benefit view behind an
// expensive one still lands. Ties break on the shape key, keeping the
// selection deterministic for a given trace.
func Select(cands []Candidate, cfg Config) []Candidate {
	cfg = cfg.withDefaults()
	sorted := append([]Candidate(nil), cands...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Benefit != sorted[j].Benefit {
			return sorted[i].Benefit > sorted[j].Benefit
		}
		return sorted[i].Key < sorted[j].Key
	})
	var picked []Candidate
	var spent int64
	for _, c := range sorted {
		if len(picked) >= cfg.MaxViews {
			break
		}
		if spent+c.EstBytes > cfg.MaxBytes {
			continue
		}
		picked = append(picked, c)
		spent += c.EstBytes
	}
	return picked
}
