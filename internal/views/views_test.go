package views

import (
	"testing"

	"dimred/internal/caltime"
	"dimred/internal/dims"
	"dimred/internal/mdm"
	"dimred/internal/obs"
	"dimred/internal/query"
	"dimred/internal/spec"
	"dimred/internal/storage"
	"dimred/internal/subcube"
)

// paperCubes builds a cube set over the paper's Appendix A object under
// the a1/a2 specification, loaded with the seven example facts.
func paperCubes(t *testing.T) (*spec.Env, *subcube.CubeSet) {
	t.Helper()
	p := dims.MustPaperMO()
	env, err := spec.NewEnv(p.Schema, "Time", p.Time)
	if err != nil {
		t.Fatal(err)
	}
	a1 := spec.MustCompileString("a1",
		`aggregate [Time.month, URL.domain] where URL.domain_grp = ".com" and NOW - 12 months < Time.month and Time.month <= NOW - 6 months`, env)
	a2 := spec.MustCompileString("a2",
		`aggregate [Time.quarter, URL.domain] where URL.domain_grp = ".com" and Time.quarter <= NOW - 4 quarters`, env)
	sp, err := spec.New(env, a1, a2)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := subcube.New(sp)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.InsertMO(p.MO); err != nil {
		t.Fatal(err)
	}
	return env, cs
}

func granOf(t *testing.T, env *spec.Env, refs ...string) mdm.Granularity {
	t.Helper()
	g, err := env.Schema.ParseGranularity(refs)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func candOf(t *testing.T, env *spec.Env, refs ...string) Candidate {
	t.Helper()
	g := granOf(t, env, refs...)
	return Candidate{Key: spec.EncodeGran(g), Gran: g}
}

func TestSelectGreedyBenefitPerByte(t *testing.T) {
	cands := []Candidate{
		{Key: "a", EstBytes: 100, Benefit: 5},
		{Key: "b", EstBytes: 100, Benefit: 9},
		{Key: "c", EstBytes: 300, Benefit: 7},
		{Key: "d", EstBytes: 100, Benefit: 7}, // ties with c on benefit; key breaks it
	}
	picked := Select(cands, Config{MaxBytes: 300, MaxViews: 8})
	got := make([]string, len(picked))
	for i, c := range picked {
		got[i] = c.Key
	}
	// b (9) first, then c (300 bytes) overflows the remaining 200 and is
	// skipped, then d (100) and a (100) fill the budget.
	want := []string{"b", "d", "a"}
	if len(got) != len(want) {
		t.Fatalf("picked %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("picked %v, want %v", got, want)
		}
	}
	if p2 := Select(cands, Config{MaxBytes: 300, MaxViews: 1}); len(p2) != 1 || p2[0].Key != "b" {
		t.Fatalf("MaxViews=1 picked %v", p2)
	}
}

func TestCandidatesScoring(t *testing.T) {
	env, _ := paperCubes(t)
	layout := storage.Layout{DimCols: env.Schema.NumDims(), MeasCols: len(env.Schema.Measures)}
	month := granOf(t, env, "Time.month", "URL.domain")
	bottom := env.Schema.BottomGranularity()
	counts := map[string]int64{
		spec.EncodeGran(month):  10,
		spec.EncodeGran(bottom): 50,
		"not-a-key":             99, // undecodable: dropped
	}
	// The bottom shape's cell estimate (20 = 5 days × 4 urls) caps at the
	// base row count, so it estimates no saving and is dropped; the
	// month shape (9 cells) keeps an 11-row saving.
	cands := Candidates(env, counts, 20, layout)
	if len(cands) != 1 || cands[0].Key != spec.EncodeGran(month) {
		t.Fatalf("got candidates %+v, want only the month shape", cands)
	}
	c := cands[0]
	if c.Count != 10 || c.Benefit <= 0 || c.EstRows != 9 || c.EstBytes != 9*layout.RowBytes() {
		t.Fatalf("bad candidate: %+v", c)
	}
	// Against a huge base everything decodable saves rows.
	if got := Candidates(env, counts, 1_000_000, layout); len(got) != 2 {
		t.Fatalf("got %d candidates against a large base, want 2: %+v", len(got), got)
	}
}

func TestBuildAndAnswerMatchesBasePath(t *testing.T) {
	env, cs := paperCubes(t)
	at := caltime.Date(2000, 5, 1)
	if _, err := cs.Sync(at); err != nil {
		t.Fatal(err)
	}
	met := obs.NewMetrics()
	gen := cs.Spec().Generation()
	cands := []Candidate{
		candOf(t, env, "Time.quarter", "URL.domain"),
		candOf(t, env, "Time.year", "URL.domain_grp"),
	}
	set := Build(env, cs, cands, at, Config{}, met)
	if set == nil || set.Len() != 2 {
		t.Fatalf("built %d views, want 2", set.Len())
	}
	if met.ViewBuilds.Load() != 2 {
		t.Fatalf("ViewBuilds = %d, want 2", met.ViewBuilds.Load())
	}
	// Views are sorted smallest first.
	vs := set.Views()
	for i := 1; i < len(vs); i++ {
		if vs[i-1].Rows() > vs[i].Rows() {
			t.Fatalf("views not sorted by rows: %d then %d", vs[i-1].Rows(), vs[i].Rows())
		}
	}

	for _, target := range []mdm.Granularity{
		granOf(t, env, "Time.quarter", "URL.domain"),
		granOf(t, env, "Time.quarter", "URL.domain_grp"),
		granOf(t, env, "Time.year", "URL.TOP"),
	} {
		q := subcube.Query{Target: target, Sel: query.Conservative, Agg: query.Availability}
		served, ok := set.Answer(env.Schema, q, at, gen)
		if !ok {
			t.Fatalf("no view served %s", env.Schema.GranString(target))
		}
		base, err := cs.Evaluate(q, at)
		if err != nil {
			t.Fatal(err)
		}
		if served.DumpCells() != base.DumpCells() {
			t.Errorf("view answer diverged at %s:\nview:\n%s\nbase:\n%s",
				env.Schema.GranString(target), served.DumpCells(), base.DumpCells())
		}
	}

	// A target below every view falls through.
	if _, ok := set.Answer(env.Schema, subcube.Query{
		Target: granOf(t, env, "Time.month", "URL.domain"),
		Sel:    query.Conservative, Agg: query.Availability,
	}, at, gen); ok {
		t.Error("month-level query served from quarter-level views")
	}
	// Staleness: wrong clock or wrong generation is skipped, not served.
	q := subcube.Query{Target: granOf(t, env, "Time.year", "URL.TOP"),
		Sel: query.Conservative, Agg: query.Availability}
	if _, ok := set.Answer(env.Schema, q, at+1, gen); ok {
		t.Error("served at a clock the set was not built at")
	}
	if _, ok := set.Answer(env.Schema, q, at, gen+1); ok {
		t.Error("served under a spec generation the set was not built under")
	}
}

func TestBuildRespectsByteBudget(t *testing.T) {
	env, cs := paperCubes(t)
	at := caltime.Date(2000, 5, 1)
	if _, err := cs.Sync(at); err != nil {
		t.Fatal(err)
	}
	met := obs.NewMetrics()
	cands := []Candidate{
		candOf(t, env, "Time.quarter", "URL.domain"),
		candOf(t, env, "Time.year", "URL.domain_grp"),
	}
	full := Build(env, cs, cands, at, Config{}, met)
	if full == nil || full.Len() != 2 {
		t.Fatalf("unbudgeted build made %d views", full.Len())
	}
	// A budget that only fits the smaller view drops the larger one.
	smallest := full.Views()[0].Bytes()
	tight := Build(env, cs, cands, at, Config{MaxBytes: smallest}, met)
	if tight == nil {
		t.Fatal("tight build returned nil")
	}
	if tight.Bytes() > smallest {
		t.Fatalf("tight build retains %d bytes over budget %d", tight.Bytes(), smallest)
	}
	// A budget below every view materializes nothing.
	if got := Build(env, cs, cands, at, Config{MaxBytes: 1}, met); got != nil {
		t.Fatalf("1-byte budget built %d views", got.Len())
	}
}

func TestBuildSkipsMixedGranularityViews(t *testing.T) {
	env, cs := paperCubes(t)
	// Sync far in the future: a1/a2 fold the paper facts up to month and
	// quarter, so a week-level view would have to keep folded rows above
	// its own granularity — not the pure distributive fold — and must be
	// rejected.
	at := caltime.Date(2001, 6, 1)
	if _, err := cs.Sync(at); err != nil {
		t.Fatal(err)
	}
	met := obs.NewMetrics()
	set := Build(env, cs, []Candidate{candOf(t, env, "Time.week", "URL.url")}, at, Config{}, met)
	if set != nil {
		t.Fatalf("mixed-granularity view was materialized: %d views", set.Len())
	}
	if met.ViewBuilds.Load() != 0 {
		t.Fatalf("ViewBuilds = %d for a skipped view", met.ViewBuilds.Load())
	}
}
