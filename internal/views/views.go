// Package views implements a budgeted set of materialized rollup views
// over the category-type lattice (ROADMAP item 3; Gray et al.'s data
// cube, the hierarchical-datacube reduced representations). The subcube
// DAG stores facts at the specification's granularities; every query
// still folds them up to its requested Group_high level. Because the
// default aggregate functions are distributive (Definition 6, enforced
// by the purity analyzer), the two-step fold α[G_q](α[G](O)) equals the
// direct α[G_q](O) whenever G <=_g G_q — so a view materialized once at
// G answers every query at or above G exactly, for a fraction of the
// scan.
//
// A greedy selector picks which granularities to materialize by
// observed benefit: query-shape frequencies from the obs trace times
// estimated rows saved, per estimated byte, capped by a configurable
// byte budget (the ViewBytes gauge accounts the spend). Views are built
// with the existing parallel evaluation machinery on the unpublished
// working side and published inside the immutable snapshot, so readers
// never observe a half-built view; a stale view (older clock, older
// spec generation) is skipped, never served.
package views

import (
	"sort"

	"dimred/internal/caltime"
	"dimred/internal/mdm"
	"dimred/internal/obs"
	"dimred/internal/query"
	"dimred/internal/spec"
	"dimred/internal/storage"
	"dimred/internal/subcube"
)

// Default budget: enough for every rollup level of a mid-size schema
// while staying far below the base cube storage.
const (
	DefaultMaxBytes int64 = 4 << 20
	DefaultMaxViews       = 8
)

// Config bounds the materialized view set.
type Config struct {
	// MaxBytes caps the modeled bytes the view set may retain
	// (<= 0 selects DefaultMaxBytes).
	MaxBytes int64
	// MaxViews caps how many granularities are materialized
	// (<= 0 selects DefaultMaxViews).
	MaxViews int
}

func (c Config) withDefaults() Config {
	if c.MaxBytes <= 0 {
		c.MaxBytes = DefaultMaxBytes
	}
	if c.MaxViews <= 0 {
		c.MaxViews = DefaultMaxViews
	}
	return c
}

// View is one materialized rollup: the full warehouse content
// aggregated to a single granularity. Every fact of a built view sits
// at (or below) the view granularity — Build rejects mixtures — so any
// query at a level the granularity rolls up to folds it exactly.
type View struct {
	gran  mdm.Granularity
	key   string
	mo    *mdm.MO
	rows  int
	bytes int64
}

// Gran returns the view's granularity.
func (v *View) Gran() mdm.Granularity { return v.gran }

// Key returns the view's shape key (spec.EncodeGran of the granularity).
func (v *View) Key() string { return v.key }

// Rows returns the view's fact count.
func (v *View) Rows() int { return v.rows }

// Bytes returns the view's modeled storage bytes.
func (v *View) Bytes() int64 { return v.bytes }

// MO returns the materialized aggregate. Treat it as read-only: once
// the set is published inside a snapshot it is shared by lock-free
// readers.
func (v *View) MO() *mdm.MO { return v.mo }

// Set is one published generation of materialized views, built in a
// single commit and frozen: the clock and specification generation it
// was built at gate every serve, so a reader holding a snapshot whose
// views predate its cubes (impossible today) or querying at another
// clock falls back to the base subcubes.
type Set struct {
	builtAt caltime.Day
	gen     uint64
	views   []*View // sorted by rows ascending, key ascending
	bytes   int64
}

// BuiltAt returns the clock the set was materialized at.
func (s *Set) BuiltAt() caltime.Day { return s.builtAt }

// Generation returns the specification generation the set was built
// under.
func (s *Set) Generation() uint64 { return s.gen }

// Len returns the number of materialized views.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.views)
}

// Bytes returns the modeled bytes the set retains.
func (s *Set) Bytes() int64 {
	if s == nil {
		return 0
	}
	return s.bytes
}

// Views returns the materialized views, smallest first.
func (s *Set) Views() []*View { return s.views }

// Build materializes the candidate granularities from cs at clock t,
// using the cube set's own parallel evaluation machinery, and returns
// them as a frozen Set stamped with cs's specification generation.
//
// Candidates are built in selection order; one whose actual size would
// overflow the byte budget is dropped (the estimate undershot), as is
// one whose availability aggregation had to keep a fact above the view
// granularity (e.g. a week-level view over month-folded rows): such a
// mixed view is not the pure distributive fold α[G](O), so reuse at
// coarser levels is no longer covered by the Definition 6 argument.
// Per-view failures never fail the build — the query path falls back to
// the base subcubes — and met counts each materialized view in
// ViewBuilds. The caller is responsible for pointing cs's own
// instrumentation at a discard metric set if the builds must not be
// accounted as user queries.
func Build(env *spec.Env, cs *subcube.CubeSet, cands []Candidate, t caltime.Day, cfg Config, met *obs.Metrics) *Set {
	cfg = cfg.withDefaults()
	layout := storage.Layout{DimCols: env.Schema.NumDims(), MeasCols: len(env.Schema.Measures)}
	set := &Set{builtAt: t, gen: cs.Spec().Generation()}
	for _, cand := range cands {
		if len(set.views) >= cfg.MaxViews {
			break
		}
		mo, err := cs.Evaluate(subcube.Query{
			Target: cand.Gran,
			Sel:    query.Conservative,
			Agg:    query.Availability,
		}, t)
		if err != nil {
			continue
		}
		if !uniformAt(env.Schema, mo, cand.Gran) {
			continue
		}
		bytes := int64(mo.Len()) * layout.RowBytes()
		if set.bytes+bytes > cfg.MaxBytes {
			continue
		}
		set.views = append(set.views, &View{
			gran:  cand.Gran,
			key:   cand.Key,
			mo:    mo,
			rows:  mo.Len(),
			bytes: bytes,
		})
		set.bytes += bytes
		met.ViewBuilds.Inc()
	}
	if len(set.views) == 0 {
		return nil
	}
	sort.Slice(set.views, func(i, j int) bool {
		if set.views[i].rows != set.views[j].rows {
			return set.views[i].rows < set.views[j].rows
		}
		return set.views[i].key < set.views[j].key
	})
	return set
}

// uniformAt reports whether every fact of mo sits at or below g — the
// precondition for the view to be the pure distributive fold α[g](O).
func uniformAt(schema *mdm.Schema, mo *mdm.MO, g mdm.Granularity) bool {
	for f := 0; f < mo.Len(); f++ {
		if !schema.GranLE(mo.Gran(mdm.FactID(f)), g) {
			return false
		}
	}
	return true
}

// Answer tries to answer q from the smallest fresh ancestor view: the
// set must have been built at exactly clock t under specification
// generation gen (staleness is never observable — a stale set is
// skipped, not served), and the view's granularity must roll up to the
// query target. The views are kept sorted smallest-first, so the first
// eligible one minimizes the rows folded. The caller has already
// checked q.ViewEligible; an aggregation error reports a miss so the
// base path recomputes (and surfaces the real error, if any).
func (s *Set) Answer(schema *mdm.Schema, q subcube.Query, t caltime.Day, gen uint64) (*mdm.MO, bool) {
	if s == nil || s.builtAt != t || s.gen != gen {
		return nil, false
	}
	if len(q.Target) != schema.NumDims() {
		return nil, false
	}
	for _, v := range s.views {
		if !spec.RollupReachableSchema(schema, v.gran, q.Target) {
			continue
		}
		mo, err := query.Aggregate(v.mo, q.Target, q.Agg)
		if err != nil {
			return nil, false
		}
		return mo, true
	}
	return nil, false
}
