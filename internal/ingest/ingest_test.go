package ingest

import (
	"fmt"
	"sync"
	"testing"

	"dimred/internal/mdm"
)

func row(i int) ([]mdm.ValueID, []float64) {
	return []mdm.ValueID{mdm.ValueID(i), mdm.ValueID(i * 2)}, []float64{float64(i), 1}
}

func TestBufferAppendDrain(t *testing.T) {
	b := NewBuffer(4)
	const n = 100
	for i := 0; i < n; i++ {
		refs, meas := row(i)
		b.Append(refs, meas)
	}
	if got := b.Pending(); got != n {
		t.Fatalf("Pending = %d, want %d", got, n)
	}
	rows := b.Drain()
	if len(rows) != n {
		t.Fatalf("Drain returned %d rows, want %d", len(rows), n)
	}
	if got := b.Pending(); got != 0 {
		t.Fatalf("Pending after drain = %d, want 0", got)
	}
	if again := b.Drain(); len(again) != 0 {
		t.Fatalf("second Drain returned %d rows, want 0", len(again))
	}
	// Every appended row came back exactly once.
	seen := map[float64]int{}
	for _, r := range rows {
		seen[r.Meas[0]]++
	}
	for i := 0; i < n; i++ {
		if seen[float64(i)] != 1 {
			t.Fatalf("row %d drained %d times", i, seen[float64(i)])
		}
	}
}

func TestBufferCopiesCallerSlices(t *testing.T) {
	b := NewBuffer(1)
	refs := []mdm.ValueID{1, 2}
	meas := []float64{3, 4}
	b.Append(refs, meas)
	refs[0], meas[0] = 99, 99
	rows := b.Drain()
	if rows[0].Refs[0] != 1 || rows[0].Meas[0] != 3 {
		t.Fatalf("drained row aliases caller memory: %+v", rows[0])
	}
}

func TestBufferConcurrentAppendDrain(t *testing.T) {
	b := NewBuffer(8)
	const producers, perProducer = 8, 200
	var wg sync.WaitGroup
	var drained []Row
	var mu sync.Mutex
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			rows := b.Drain()
			mu.Lock()
			drained = append(drained, rows...)
			mu.Unlock()
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for i := 0; i < perProducer; i++ {
				refs, meas := row(p*perProducer + i)
				b.Append(refs, meas)
			}
		}(p)
	}
	pwg.Wait()
	close(stop)
	wg.Wait()
	rest := b.Drain()
	if total := len(drained) + len(rest); total != producers*perProducer {
		t.Fatalf("drained %d rows total, want %d", total, producers*perProducer)
	}
}

func TestCompactorFoldsEverything(t *testing.T) {
	b := NewBuffer(4)
	var mu sync.Mutex
	folded := 0
	c := StartCompactor(b, Config{MinBatch: 1}, func(rows []Row) error {
		mu.Lock()
		folded += len(rows)
		mu.Unlock()
		return nil
	})
	const n = 500
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				refs, meas := row(p*n/4 + i)
				b.Append(refs, meas)
			}
		}(p)
	}
	wg.Wait()
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	if folded != n {
		t.Fatalf("folded %d rows, want %d", folded, n)
	}
	if b.Pending() != 0 {
		t.Fatalf("Pending after Stop = %d", b.Pending())
	}
}

func TestCompactorMinBatchHoldsUntilStop(t *testing.T) {
	b := NewBuffer(2)
	var mu sync.Mutex
	var batches []int
	c := StartCompactor(b, Config{MinBatch: 100}, func(rows []Row) error {
		mu.Lock()
		batches = append(batches, len(rows))
		mu.Unlock()
		return nil
	})
	for i := 0; i < 3; i++ {
		refs, meas := row(i)
		b.Append(refs, meas)
	}
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	// Below MinBatch nothing folds until the final drain on Stop.
	if len(batches) != 1 || batches[0] != 3 {
		t.Fatalf("batches = %v, want one final batch of 3", batches)
	}
}

func TestCompactorReportsFirstFoldError(t *testing.T) {
	b := NewBuffer(1)
	calls := 0
	done := make(chan struct{}, 4)
	c := StartCompactor(b, Config{MinBatch: 1}, func(rows []Row) error {
		calls++
		done <- struct{}{}
		if calls == 1 {
			return fmt.Errorf("poisoned batch %d", calls)
		}
		return nil
	})
	refs, meas := row(1)
	b.Append(refs, meas)
	<-done // first batch folded (and failed)
	b.Append(refs, meas)
	<-done // a later batch still folds
	if err := c.Stop(); err == nil || err.Error() != "poisoned batch 1" {
		t.Fatalf("Stop error = %v, want the first fold failure", err)
	}
	if calls < 2 {
		t.Fatalf("compactor stopped folding after an error (calls=%d)", calls)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.WithDefaults()
	if cfg.Shards != DefaultShards || cfg.MinBatch != 1 {
		t.Fatalf("defaults = %+v", cfg)
	}
	cfg = Config{Shards: 3, MinBatch: 7}.WithDefaults()
	if cfg.Shards != 3 || cfg.MinBatch != 7 {
		t.Fatalf("explicit config overwritten: %+v", cfg)
	}
}
