// Package ingest provides the streaming side of the warehouse: sharded
// append-only delta buffers that absorb out-of-order fact arrivals
// without touching the served snapshot, and a background compactor that
// periodically drains the buffered deltas and folds them into the
// subcube DAG through the warehouse's sync-carrying commit path.
//
// The package is deliberately ignorant of warehouse semantics: a Row is
// an opaque (refs, meas) pair, and the fold callback owns validation,
// late-arrival classification and the actual commit. That keeps the
// buffer lock-order trivial — shard mutexes here are always leaves,
// never held across the fold — and keeps evaluation time out of the
// package entirely (it is on the wallclock/nowflow restricted lists).
package ingest

import (
	"sync"
	"sync/atomic"

	"dimred/internal/mdm"
)

// Row is one buffered fact: bottom-granularity dimension references and
// the measure vector. Append deep-copies both slices, so a Row never
// aliases caller memory.
type Row struct {
	Refs []mdm.ValueID
	Meas []float64
}

// Config bounds a Buffer/Compactor pair.
type Config struct {
	// Shards is the number of independent append shards; more shards
	// mean less contention between concurrent producers. Zero or
	// negative selects the default.
	Shards int
	// MinBatch is the minimum number of buffered facts before the
	// compactor folds (the final fold on Stop drains regardless). Zero
	// or negative selects the default of 1 — fold as soon as anything
	// is buffered; the fold itself group-commits whatever accumulated
	// while the previous fold held the writer lock.
	MinBatch int
}

// DefaultShards is the shard count used when Config.Shards is unset.
const DefaultShards = 8

// WithDefaults returns cfg with unset fields replaced by defaults.
func (cfg Config) WithDefaults() Config {
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.MinBatch <= 0 {
		cfg.MinBatch = 1
	}
	return cfg
}

// shard is one append lane. rows is guarded by mu.
type shard struct {
	mu   sync.Mutex
	rows []Row
}

// Buffer is a sharded append-only delta buffer. Appends pick a shard
// round-robin and hold only that shard's mutex; Drain swaps every
// shard's slice out under its lock and concatenates, so producers are
// never blocked behind a fold. The doorbell wakes the compactor without
// ever blocking an appender.
type Buffer struct {
	shards   []*shard
	next     atomic.Uint64
	pending  atomic.Int64
	doorbell chan struct{}
}

// NewBuffer creates a buffer with the given shard count (<=0 selects
// DefaultShards).
func NewBuffer(shards int) *Buffer {
	if shards <= 0 {
		shards = DefaultShards
	}
	b := &Buffer{
		shards:   make([]*shard, shards),
		doorbell: make(chan struct{}, 1),
	}
	for i := range b.shards {
		b.shards[i] = &shard{}
	}
	return b
}

// Append buffers one fact. The refs and meas slices are copied, so the
// caller may reuse them. Safe for any number of concurrent producers.
func (b *Buffer) Append(refs []mdm.ValueID, meas []float64) {
	r := Row{
		Refs: append([]mdm.ValueID(nil), refs...),
		Meas: append([]float64(nil), meas...),
	}
	s := b.shards[b.next.Add(1)%uint64(len(b.shards))]
	s.mu.Lock()
	s.rows = append(s.rows, r)
	s.mu.Unlock()
	b.pending.Add(1)
	b.ring()
}

// ring wakes the compactor if it is idle; a full doorbell means a wake
// is already queued, so the append never blocks.
func (b *Buffer) ring() {
	select {
	case b.doorbell <- struct{}{}:
	default:
	}
}

// Drain atomically swaps out every shard's buffered rows and returns
// them in shard order. Rows appended concurrently with a Drain land in
// either this batch or the next, never in both and never lost.
func (b *Buffer) Drain() []Row {
	var out []Row
	for _, s := range b.shards {
		s.mu.Lock()
		rows := s.rows
		s.rows = nil
		s.mu.Unlock()
		out = append(out, rows...)
	}
	b.pending.Add(int64(-len(out)))
	return out
}

// Pending reports the number of buffered facts not yet drained. It is a
// monitoring value: concurrent appends and drains may skew it by the
// rows in flight.
func (b *Buffer) Pending() int64 { return b.pending.Load() }

// Compactor folds a Buffer's deltas in the background. One goroutine
// waits on the buffer's doorbell and, once at least MinBatch facts have
// accumulated, drains the buffer and hands the batch to the fold
// callback. Folds are strictly sequential, so the callback may take the
// warehouse writer lock without further coordination; facts that arrive
// while a fold is running simply accumulate and group-commit in the
// next round.
type Compactor struct {
	buf      *Buffer
	fold     func([]Row) error
	minBatch int
	stop     chan struct{}
	done     chan struct{}

	// mu guards firstErr, the first fold failure; later batches still
	// fold (one bad batch must not wedge the stream).
	mu       sync.Mutex
	firstErr error
}

// StartCompactor spawns the background compaction loop over buf. The
// fold callback receives each drained batch in arrival order (per
// shard) and is never called concurrently with itself. Call Stop
// exactly once to drain the final batch and join the goroutine.
func StartCompactor(buf *Buffer, cfg Config, fold func([]Row) error) *Compactor {
	cfg = cfg.WithDefaults()
	c := &Compactor{
		buf:      buf,
		fold:     fold,
		minBatch: cfg.MinBatch,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	//dimred:detached compaction loop runs for the warehouse lifetime; Stop joins it on the done channel before the warehouse closes
	go c.loop()
	return c
}

// loop is the compactor goroutine: wait for the doorbell, fold when
// enough is buffered, and on stop fold whatever remains before
// signalling done.
func (c *Compactor) loop() {
	defer close(c.done)
	for {
		select {
		case <-c.stop:
			c.foldNow()
			return
		case <-c.buf.doorbell:
			if c.buf.Pending() >= int64(c.minBatch) {
				c.foldNow()
			}
		}
	}
}

// foldNow drains and folds one batch, recording the first failure.
func (c *Compactor) foldNow() {
	rows := c.buf.Drain()
	if len(rows) == 0 {
		return
	}
	if err := c.fold(rows); err != nil {
		c.mu.Lock()
		if c.firstErr == nil {
			c.firstErr = err
		}
		c.mu.Unlock()
	}
}

// Stop signals the loop, waits for the final fold to finish, and
// returns the first fold error (nil when every batch folded cleanly).
// Stop must be called exactly once.
func (c *Compactor) Stop() error {
	close(c.stop)
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.firstErr
}
