package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewShadow builds the shadow analyzer, a dependency-free cut of
// x/tools' vet shadow pass. It reports a variable declaration that
// shadows a function-local variable of identical type from an
// enclosing scope when the shadowed variable is still referenced after
// the shadowing declaration — the shape where an assignment to the
// inner name silently fails to update the value the later code reads.
// Package-level names, the blank identifier and differently typed
// re-declarations are not reported, and neither is the name "err":
// the `if err := f(); err != nil` and closure-local error idioms are
// ubiquitous and benign, and that exemption is what every production
// deployment of the x/tools pass configures anyway (its noise on err
// is why vet does not enable shadow by default).
func NewShadow() *Analyzer {
	a := &Analyzer{
		Name: "shadow",
		Doc:  "inner declarations must not shadow a still-live outer variable of the same type",
	}
	a.Run = func(u *Unit) []Diagnostic {
		// lastUse[v] is the end of the rightmost reference to v.
		lastUse := map[*types.Var]token.Pos{}
		grow := func(id *ast.Ident, obj types.Object) {
			if v, ok := obj.(*types.Var); ok && id.End() > lastUse[v] {
				lastUse[v] = id.End()
			}
		}
		for id, obj := range u.Info.Uses {
			grow(id, obj)
		}
		for id, obj := range u.Info.Defs {
			if obj != nil {
				grow(id, obj)
			}
		}

		var ds []Diagnostic
		pkgScope := u.Pkg.Scope()
		check := func(id *ast.Ident) {
			if id.Name == "_" || id.Name == "err" {
				return
			}
			obj, ok := u.Info.Defs[id].(*types.Var)
			if !ok || obj.Parent() == nil || obj.Parent().Parent() == nil {
				return
			}
			_, outer := obj.Parent().Parent().LookupParent(id.Name, id.Pos())
			ov, ok := outer.(*types.Var)
			if !ok || ov == obj {
				return
			}
			if ov.Parent() == types.Universe || ov.Parent() == pkgScope {
				return
			}
			if !types.Identical(obj.Type(), ov.Type()) {
				return // two names for two different things is deliberate
			}
			if lastUse[ov] <= id.End() {
				return // the outer variable is dead past this point
			}
			ds = append(ds, u.Diag(id.Pos(), "declaration of %q shadows declaration at %s, and the outer variable is used afterwards",
				id.Name, u.Fset.Position(ov.Pos())))
		}
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if n.Tok != token.DEFINE {
						return true
					}
					for _, lhs := range n.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							check(id)
						}
					}
				case *ast.GenDecl:
					if n.Tok != token.VAR {
						return true
					}
					for _, spec := range n.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, id := range vs.Names {
							check(id)
						}
					}
				}
				return true
			})
		}
		return ds
	}
	return a
}
