package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFromSrc parses src (a full file), builds the CFG of the first
// function declaration and returns it.
func buildFromSrc(t *testing.T, src string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return BuildCFG(fd.Body)
		}
	}
	t.Fatal("no function in source")
	return nil
}

// blocksByKind indexes the graph's blocks by kind.
func blocksByKind(g *CFG, kind string) []*Block {
	var out []*Block
	for _, b := range g.Blocks {
		if b.Kind == kind {
			out = append(out, b)
		}
	}
	return out
}

func oneBlock(t *testing.T, g *CFG, kind string) *Block {
	t.Helper()
	bs := blocksByKind(g, kind)
	if len(bs) != 1 {
		t.Fatalf("want exactly one %q block, got %d\n%s", kind, len(bs), g.dump())
	}
	return bs[0]
}

func hasEdge(from, to *Block) bool {
	for _, s := range from.Succs {
		if s == to {
			return true
		}
	}
	return false
}

// reachable computes the blocks reachable from the entry.
func reachable(g *CFG) map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

func TestCFGIfElse(t *testing.T) {
	g := buildFromSrc(t, `package p
func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}`)
	entry := g.Entry
	then := oneBlock(t, g, "if.then")
	els := oneBlock(t, g, "if.else")
	done := oneBlock(t, g, "if.done")
	if !hasEdge(entry, then) || !hasEdge(entry, els) {
		t.Fatalf("cond block must branch to then and else\n%s", g.dump())
	}
	if !hasEdge(then, done) || !hasEdge(els, done) {
		t.Fatalf("both branches must rejoin at if.done\n%s", g.dump())
	}
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit unreachable\n%s", g.dump())
	}
}

func TestCFGIfWithoutElse(t *testing.T) {
	g := buildFromSrc(t, `package p
func f(c bool) {
	if c {
		_ = 1
	}
}`)
	done := oneBlock(t, g, "if.done")
	if !hasEdge(g.Entry, done) {
		t.Fatalf("if without else needs a direct cond->done edge\n%s", g.dump())
	}
}

func TestCFGForLoop(t *testing.T) {
	g := buildFromSrc(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if i == 3 {
			continue
		}
		if i == 7 {
			break
		}
		s += i
	}
	return s
}`)
	head := oneBlock(t, g, "for.head")
	body := oneBlock(t, g, "for.body")
	post := oneBlock(t, g, "for.post")
	done := oneBlock(t, g, "for.done")
	if !hasEdge(head, body) || !hasEdge(head, done) {
		t.Fatalf("loop head must branch to body and done\n%s", g.dump())
	}
	if !hasEdge(post, head) {
		t.Fatalf("post must loop back to head\n%s", g.dump())
	}
	// continue jumps to post, break to done.
	foundCont, foundBreak := false, false
	for _, b := range g.Blocks {
		if b.Kind == "if.then" {
			if hasEdge(b, post) {
				foundCont = true
			}
			if hasEdge(b, done) {
				foundBreak = true
			}
		}
	}
	if !foundCont || !foundBreak {
		t.Fatalf("continue->post (%v) and break->done (%v) edges missing\n%s", foundCont, foundBreak, g.dump())
	}
}

func TestCFGRange(t *testing.T) {
	g := buildFromSrc(t, `package p
func f(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}`)
	head := oneBlock(t, g, "range.head")
	body := oneBlock(t, g, "range.body")
	done := oneBlock(t, g, "range.done")
	if !hasEdge(head, body) || !hasEdge(head, done) || !hasEdge(body, head) {
		t.Fatalf("range edges wrong\n%s", g.dump())
	}
	if len(head.Nodes) != 1 {
		t.Fatalf("range head must hold the range clause, got %d nodes", len(head.Nodes))
	}
	if _, ok := head.Nodes[0].(*ast.RangeStmt); !ok {
		t.Fatalf("range head node is %T, want *ast.RangeStmt", head.Nodes[0])
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g := buildFromSrc(t, `package p
func f(x int) int {
	r := 0
	switch x {
	case 1:
		r = 1
		fallthrough
	case 2:
		r += 2
	default:
		r = 9
	}
	return r
}`)
	bodies := blocksByKind(g, "case.body")
	if len(bodies) != 3 {
		t.Fatalf("want 3 case bodies, got %d\n%s", len(bodies), g.dump())
	}
	if !hasEdge(bodies[0], bodies[1]) {
		t.Fatalf("fallthrough edge case1->case2 missing\n%s", g.dump())
	}
	done := oneBlock(t, g, "switch.done")
	for i := 1; i < 3; i++ {
		if !hasEdge(bodies[i], done) {
			t.Fatalf("case body %d must reach switch.done\n%s", i, g.dump())
		}
	}
	// With a default clause there is no head->done edge.
	if hasEdge(g.Entry, done) {
		t.Fatalf("switch with default must not fall through the head\n%s", g.dump())
	}
}

func TestCFGSwitchNoDefault(t *testing.T) {
	g := buildFromSrc(t, `package p
func f(x int) {
	switch x {
	case 1:
		_ = 1
	}
}`)
	done := oneBlock(t, g, "switch.done")
	if !hasEdge(g.Entry, done) {
		t.Fatalf("switch without default needs head->done edge\n%s", g.dump())
	}
}

func TestCFGGoto(t *testing.T) {
	g := buildFromSrc(t, `package p
func f(n int) int {
	i := 0
loop:
	if i < n {
		i++
		goto loop
	}
	return i
}`)
	label := oneBlock(t, g, "label.loop")
	// The goto inside if.then must edge back to the label block.
	back := false
	for _, b := range blocksByKind(g, "if.then") {
		if hasEdge(b, label) {
			back = true
		}
	}
	if !back {
		t.Fatalf("goto must edge back to its label block\n%s", g.dump())
	}
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit unreachable\n%s", g.dump())
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	g := buildFromSrc(t, `package p
func f(m [][]int) int {
	s := 0
outer:
	for _, row := range m {
		for _, x := range row {
			if x < 0 {
				break outer
			}
			s += x
		}
	}
	return s
}`)
	dones := blocksByKind(g, "range.done")
	if len(dones) != 2 {
		t.Fatalf("want 2 range.done blocks, got %d", len(dones))
	}
	// The labeled break must target the *outer* loop's done block: the
	// outer done is the one whose successor chain reaches Exit without
	// passing another range head.
	hit := false
	for _, b := range blocksByKind(g, "if.then") {
		for _, d := range dones {
			if hasEdge(b, d) {
				hit = true
			}
		}
	}
	if !hit {
		t.Fatalf("labeled break edge missing\n%s", g.dump())
	}
}

func TestCFGDefer(t *testing.T) {
	g := buildFromSrc(t, `package p
func f(c bool) int {
	defer cleanup()
	if c {
		return 1
	}
	return 2
}
func cleanup() {}`)
	if len(g.Defers) != 1 {
		t.Fatalf("want 1 collected defer, got %d", len(g.Defers))
	}
	db := oneBlock(t, g, "defers")
	if !hasEdge(db, g.Exit) {
		t.Fatalf("defers block must edge to exit\n%s", g.dump())
	}
	// Every exit predecessor is the defers block: both returns route
	// through it.
	if len(g.Exit.Preds) != 1 || g.Exit.Preds[0] != db {
		t.Fatalf("all paths must exit through the defers block\n%s", g.dump())
	}
	if len(db.Preds) < 2 {
		t.Fatalf("both return paths should reach the defers block, got %d preds", len(db.Preds))
	}
}

func TestCFGSelect(t *testing.T) {
	g := buildFromSrc(t, `package p
func f(a, b chan int) int {
	select {
	case x := <-a:
		return x
	case <-b:
	}
	return 0
}`)
	bodies := blocksByKind(g, "select.body")
	if len(bodies) != 2 {
		t.Fatalf("want 2 select bodies, got %d\n%s", len(bodies), g.dump())
	}
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit unreachable\n%s", g.dump())
	}
}

func TestCFGTypeSwitch(t *testing.T) {
	g := buildFromSrc(t, `package p
func f(v any) int {
	switch v.(type) {
	case int:
		return 1
	case string:
		return 2
	}
	return 0
}`)
	bodies := blocksByKind(g, "case.body")
	if len(bodies) != 2 {
		t.Fatalf("want 2 case bodies, got %d\n%s", len(bodies), g.dump())
	}
	done := oneBlock(t, g, "switch.done")
	if !hasEdge(g.Entry, done) {
		t.Fatalf("type switch without default needs head->done edge\n%s", g.dump())
	}
}

func TestCFGDeadCodeAfterReturn(t *testing.T) {
	g := buildFromSrc(t, `package p
func f() int {
	return 1
	_ = 2
}`)
	r := reachable(g)
	if !r[g.Exit] {
		t.Fatal("exit unreachable")
	}
	// The statement after return sits in a block with no predecessors.
	for _, b := range g.Blocks {
		if b.Kind == "unreachable" && len(b.Nodes) > 0 && r[b] {
			t.Fatalf("dead code block must be unreachable\n%s", g.dump())
		}
	}
}

func TestCFGDumpStable(t *testing.T) {
	g := buildFromSrc(t, `package p
func f(c bool) {
	if c {
		_ = 1
	}
}`)
	d := g.dump()
	if !strings.Contains(d, "entry:") || !strings.Contains(d, "if.then") {
		t.Fatalf("dump missing expected blocks:\n%s", d)
	}
}
