package lint

import (
	"go/ast"
	"go/types"
)

// DefaultWallclockRestricted lists the packages (by path suffix) in
// which the ambient wall clock is forbidden: the semantic packages,
// where every evaluation takes an explicit caltime.Day per the paper's
// NOW-relative semantics (Section 4.2), and the engine packages whose
// stage timing must flow through the obs.Clock seam so tests can fake
// it. internal/obs itself is the sanctioned wall-clock owner.
var DefaultWallclockRestricted = []string{
	"internal/core",
	"internal/spec",
	"internal/specexec",
	"internal/expr",
	"internal/mdm",
	"internal/query",
	"internal/prover",
	"internal/caltime",
	"internal/sched",
	"internal/subcube",
	"internal/views",
	"internal/warehouse",
	"internal/ingest",
}

// forbiddenTimeFuncs are the time-package entry points that read the
// ambient clock. Constructors like NewTicker are deliberately absent:
// none of the restricted packages may import them for other reasons,
// and the three below are the ones that smuggle an implicit NOW.
var forbiddenTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Tick":  true,
}

// NewWallclock builds the wallclock analyzer for the given restricted
// package-path suffixes.
func NewWallclock(restricted []string) *Analyzer {
	a := &Analyzer{
		Name: "wallclock",
		Doc: "forbid time.Now/time.Since/time.Tick in semantic packages; " +
			"evaluation time must be an explicit parameter and stage timing must use the obs.Clock seam",
	}
	a.Run = func(u *Unit) []Diagnostic {
		if !pathMatches(u.Path, restricted) {
			return nil
		}
		var ds []Diagnostic
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(u.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
					return true
				}
				if forbiddenTimeFuncs[fn.Name()] {
					ds = append(ds, u.Diag(call.Pos(),
						"call to time.%s in semantic package %s: evaluation time must flow in as a parameter (wall-clock timing goes through obs.Clock)",
						fn.Name(), u.Path))
				}
				return true
			})
		}
		return ds
	}
	return a
}

// calleeFunc resolves a call's static callee, or nil for indirect
// calls, conversions and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}
