package lint_test

import (
	"testing"

	"dimred/internal/lint"
	"dimred/internal/lint/linttest"
)

// TestLockOrderCycle: two functions acquiring the same two mutexes in
// opposite orders form a cycle in the may-hold-while-acquiring
// relation; the finding carries a deterministic trace starting at the
// lexicographically smallest lock.
func TestLockOrderCycle(t *testing.T) {
	linttest.Run(t, []*lint.Analyzer{lint.NewLockOrder()}, map[string]string{
		"lib/lib.go": `package lib

import "sync"

type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	n  int
}

var a A
var b B

// AB acquires a then b; the deferred unlock holds a for the whole body.
func AB() {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want "lock-order cycle: lib.A.mu -> lib.B.mu -> lib.A.mu \\(lib.A.mu -> lib.B.mu at lib.go:22, lib.B.mu -> lib.A.mu at lib.go:32\\)"
	b.n++
	b.mu.Unlock()
	a.n++
}

// BA acquires b then a — the reverse order.
func BA() {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
	b.n++
}
`,
	})
}

// TestLockOrderAcyclic: a consistent a-then-b order everywhere, a lock
// released on every path before the next acquisition, and sequential
// (non-nested) locking are all clean.
func TestLockOrderAcyclic(t *testing.T) {
	linttest.Run(t, []*lint.Analyzer{lint.NewLockOrder()}, map[string]string{
		"lib/lib.go": `package lib

import "sync"

type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	n  int
}

var a A
var b B

// Chain1 and Chain2 agree on the a-then-b order: an acyclic chain.
func Chain1() {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

func Chain2() {
	a.mu.Lock()
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	a.n++
	a.mu.Unlock()
}

// CondRelease unlocks a on every path before taking b: no edge beyond
// the consistent a-then-b order.
func CondRelease(flag bool) {
	a.mu.Lock()
	if flag {
		a.n++
		a.mu.Unlock()
	} else {
		a.mu.Unlock()
	}
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// Sequential releases a before b: no hold-while-acquiring edge at all.
func Sequential() {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}
`,
	})
}

// TestLockOrderConditionalHold: a lock released on only one branch is
// dropped by the must-hold meet after the merge — the analysis claims
// no a-then-b edge, so the reverse order elsewhere stays clean (the
// meet is what keeps conditional unlocks from fabricating deadlocks).
func TestLockOrderConditionalHold(t *testing.T) {
	linttest.Run(t, []*lint.Analyzer{lint.NewLockOrder()}, map[string]string{
		"lib/lib.go": `package lib

import "sync"

type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	n  int
}

var a A
var b B

// MaybeHold releases a on one branch only; after the merge the
// must-hold set no longer contains a, so acquiring b adds no edge.
func MaybeHold(flag bool) {
	a.mu.Lock()
	if flag {
		a.mu.Unlock()
	}
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	if !flag {
		a.mu.Unlock()
	}
}

// Reverse orders b before a.
func Reverse() {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
}
`,
	})
}

// TestLockOrderInterprocedural: the cycle closes through a call chain —
// one side holds A and calls a helper whose may-acquire set contains B,
// the other side holds B inside a *Locked method whose boundary assumes
// A... closed through the convention edges, not a direct double Lock.
func TestLockOrderInterprocedural(t *testing.T) {
	linttest.Run(t, []*lint.Analyzer{lint.NewLockOrder()}, map[string]string{
		"lib/lib.go": `package lib

import "sync"

type C struct {
	mu sync.Mutex
	n  int
}

type D struct {
	mu sync.Mutex
	n  int
}

var c C
var d D

// pokeLocked asserts c.mu is held (the Locked convention seeds the
// boundary), then acquires d.mu: edge C.mu -> D.mu.
func (x *C) pokeLocked() {
	d.mu.Lock() // want "lock-order cycle: lib.C.mu -> lib.D.mu -> lib.C.mu \\(lib.C.mu -> lib.D.mu at lib.go:21, lib.D.mu -> lib.C.mu at lib.go:44\\)"
	d.n++
	d.mu.Unlock()
}

func UsePoke() {
	c.mu.Lock()
	c.pokeLocked()
	c.mu.Unlock()
}

// lockC is the helper whose may-acquire set carries C.mu upward.
func lockC() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// ReverseViaCall holds d.mu and calls lockC: edge D.mu -> C.mu through
// the callee's may-acquire summary.
func ReverseViaCall() {
	d.mu.Lock()
	defer d.mu.Unlock()
	lockC()
}
`,
	})
}

// TestLockOrderSelfDeadlock: re-acquiring a mutex already held is a
// cycle of length one — and, at the field granularity the analysis
// works at, so is hand-over-hand locking of two instances of one type.
func TestLockOrderSelfDeadlock(t *testing.T) {
	linttest.Run(t, []*lint.Analyzer{lint.NewLockOrder()}, map[string]string{
		"lib/lib.go": `package lib

import "sync"

type A struct {
	mu sync.Mutex
	n  int
}

var a A

func Double() {
	a.mu.Lock()
	a.mu.Lock() // want "lock-order cycle: lib.A.mu -> lib.A.mu \\(lib.A.mu -> lib.A.mu at lib.go:14\\)"
	a.n += 2
	a.mu.Unlock()
	a.mu.Unlock()
}
`,
	})
}
