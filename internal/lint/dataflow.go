package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file holds the generic iterative dataflow solver and its
// canonical client, reaching definitions. Analyzers instantiate
// Problem with their own fact lattice (taint sets for nowflow,
// locksets for lockfield, definition bitsets here) and get a
// flow-sensitive fixpoint over the CFG from cfg.go.

// Direction selects forward (facts flow entry→exit along Succs) or
// backward (exit→entry along Preds) propagation.
type Direction int

const (
	Forward Direction = iota
	Backward
)

// Problem is one dataflow problem over a CFG. The fact type F must be
// treated as immutable by Transfer and Merge: both return fresh (or
// shared) values and never mutate their arguments — the solver caches
// and compares facts across iterations.
type Problem[F any] struct {
	Dir Direction
	// Boundary is the fact entering the start block (Entry for
	// Forward, Exit for Backward).
	Boundary F
	// Transfer pushes a fact through one block.
	Transfer func(b *Block, in F) F
	// Merge joins facts at a control-flow confluence.
	Merge func(x, y F) F
	// Equal decides fixpoint convergence.
	Equal func(x, y F) bool
}

// Solve runs the worklist algorithm to fixpoint and returns the fact
// at each block's entry (Forward) or exit (Backward). Blocks
// unreachable from the start block are absent from the result; for a
// finite-height lattice with monotone Transfer/Merge the loop
// terminates.
func Solve[F any](g *CFG, p Problem[F]) map[*Block]F {
	start := g.Entry
	next := func(b *Block) []*Block { return b.Succs }
	prev := func(b *Block) []*Block { return b.Preds }
	if p.Dir == Backward {
		start = g.Exit
		next, prev = prev, next
	}

	in := map[*Block]F{start: p.Boundary}
	out := map[*Block]F{}
	computed := map[*Block]bool{}
	queue := []*Block{start}
	queued := map[*Block]bool{start: true}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		queued[b] = false

		o := p.Transfer(b, in[b])
		if computed[b] && p.Equal(out[b], o) {
			continue
		}
		out[b] = o
		computed[b] = true

		for _, s := range next(b) {
			var acc F
			first := true
			for _, pr := range prev(s) {
				po, ok := out[pr]
				if !ok {
					continue
				}
				if first {
					acc, first = po, false
				} else {
					acc = p.Merge(acc, po)
				}
			}
			if first {
				continue
			}
			old, seen := in[s]
			if seen && p.Equal(old, acc) {
				continue
			}
			in[s] = acc
			if !queued[s] {
				queued[s] = true
				queue = append(queue, s)
			}
		}
	}
	return in
}

// ---------------------------------------------------------------------
// Reaching definitions.

// Def is one definition of a function-local variable: a parameter, a
// declaration, an assignment, a range clause binding or an inc/dec.
type Def struct {
	Var  *types.Var
	Node ast.Node // the defining node (nil for parameters/receivers)
	// Rhs is the defining expression when the definition is a simple
	// one-to-one assignment or initialization (v = rhs); nil otherwise
	// (parameters, multi-value assignments, range bindings, inc/dec,
	// zero-value declarations).
	Rhs ast.Expr
}

// defBits is a bitset over the definition index space.
type defBits []uint64

func newDefBits(n int) defBits { return make(defBits, (n+63)/64) }

func (d defBits) set(i int)      { d[i/64] |= 1 << (i % 64) }
func (d defBits) clear(i int)    { d[i/64] &^= 1 << (i % 64) }
func (d defBits) has(i int) bool { return d[i/64]&(1<<(i%64)) != 0 }

func (d defBits) clone() defBits {
	c := make(defBits, len(d))
	copy(c, d)
	return c
}

func (d defBits) union(o defBits) defBits {
	c := d.clone()
	for i := range o {
		c[i] |= o[i]
	}
	return c
}

func (d defBits) equal(o defBits) bool {
	if len(d) != len(o) {
		return false
	}
	for i := range d {
		if d[i] != o[i] {
			return false
		}
	}
	return true
}

// ReachingDefs computes which definitions of each function-local
// variable may reach each program point. Variables it does not track
// (package-level, closed-over, field bases) have no definitions; a
// DefsAt query for them returns nil, which clients must treat as
// "unknown".
type ReachingDefs struct {
	g     *CFG
	defs  []Def
	byVar map[*types.Var][]int
	in    map[*Block]defBits
}

// NewReachingDefs builds and solves reaching definitions for a
// function. recv/params come from the declaration (may be nil for
// tests over bare bodies).
func NewReachingDefs(info *types.Info, decl *ast.FuncDecl, g *CFG) *ReachingDefs {
	rd := &ReachingDefs{g: g, byVar: map[*types.Var][]int{}}

	addDef := func(v *types.Var, node ast.Node, rhs ast.Expr) {
		if v == nil {
			return
		}
		rd.byVar[v] = append(rd.byVar[v], len(rd.defs))
		rd.defs = append(rd.defs, Def{Var: v, Node: node, Rhs: rhs})
	}
	paramVar := func(id *ast.Ident) *types.Var {
		v, _ := info.Defs[id].(*types.Var)
		return v
	}
	if decl != nil {
		if decl.Recv != nil {
			for _, f := range decl.Recv.List {
				for _, name := range f.Names {
					addDef(paramVar(name), nil, nil)
				}
			}
		}
		if decl.Type.Params != nil {
			for _, f := range decl.Type.Params.List {
				for _, name := range f.Names {
					addDef(paramVar(name), nil, nil)
				}
			}
		}
		if decl.Type.Results != nil {
			for _, f := range decl.Type.Results.List {
				for _, name := range f.Names {
					addDef(paramVar(name), nil, nil)
				}
			}
		}
	}

	// Collect definitions from block nodes, in block order.
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			forEachDef(info, n, addDef)
		}
	}

	boundary := newDefBits(len(rd.defs))
	for i, d := range rd.defs {
		if d.Node == nil { // parameters reach the entry
			boundary.set(i)
		}
	}

	rd.in = Solve(g, Problem[defBits]{
		Dir:      Forward,
		Boundary: boundary,
		Merge:    defBits.union,
		Equal:    defBits.equal,
		Transfer: func(b *Block, in defBits) defBits {
			cur := in.clone()
			for _, n := range b.Nodes {
				rd.transferNode(info, n, cur)
			}
			return cur
		},
	})
	return rd
}

// transferNode kills and gens the definitions made by one node,
// mutating bits in place (callers pass a private clone).
func (rd *ReachingDefs) transferNode(info *types.Info, n ast.Node, bits defBits) {
	forEachDef(info, n, func(v *types.Var, node ast.Node, rhs ast.Expr) {
		idxs := rd.byVar[v]
		for _, i := range idxs {
			bits.clear(i)
		}
		for _, i := range idxs {
			if rd.defs[i].Node == node {
				bits.set(i)
			}
		}
	})
}

// forEachDef enumerates the variable definitions a single CFG node
// makes. Function literals are opaque.
func forEachDef(info *types.Info, n ast.Node, f func(v *types.Var, node ast.Node, rhs ast.Expr)) {
	defOrUse := func(id *ast.Ident) *types.Var {
		if v, ok := info.Defs[id].(*types.Var); ok {
			return v
		}
		v, _ := info.Uses[id].(*types.Var)
		return v
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		// v += x redefines v but x is not the defining expression.
		oneToOne := len(n.Lhs) == len(n.Rhs) &&
			(n.Tok == token.ASSIGN || n.Tok == token.DEFINE)
		for i, lhs := range n.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			var rhs ast.Expr
			if oneToOne {
				rhs = n.Rhs[i]
			}
			f(defOrUse(id), n, rhs)
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, s := range gd.Specs {
			vs, ok := s.(*ast.ValueSpec)
			if !ok {
				continue
			}
			oneToOne := len(vs.Values) == len(vs.Names)
			for i, name := range vs.Names {
				if name.Name == "_" {
					continue
				}
				var rhs ast.Expr
				if oneToOne {
					rhs = vs.Values[i]
				}
				f(defOrUse(name), n, rhs)
			}
		}
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
			f(defOrUse(id), n, nil)
		}
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if e == nil {
				continue
			}
			if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name != "_" {
				f(defOrUse(id), n, nil)
			}
		}
	}
}

// DefsAt returns the definitions of v that may reach the program point
// just before `at` within block b (at==nil: the block entry). nil
// means v is not tracked (not a function-local this analysis saw
// defined); an empty non-nil slice means tracked but nothing reaches
// (dead code).
func (rd *ReachingDefs) DefsAt(info *types.Info, b *Block, at ast.Node, v *types.Var) []Def {
	idxs := rd.byVar[v]
	if idxs == nil {
		return nil
	}
	bits, ok := rd.in[b]
	if !ok {
		return []Def{} // unreachable block
	}
	cur := bits.clone()
	for _, n := range b.Nodes {
		if n == at {
			break
		}
		rd.transferNode(info, n, cur)
	}
	out := []Def{}
	for _, i := range idxs {
		if cur.has(i) {
			out = append(out, rd.defs[i])
		}
	}
	return out
}
