// Package linttest is a self-contained stand-in for x/tools'
// analysistest: it materializes a scratch module from in-memory file
// contents, loads and analyzes it with internal/lint, and checks the
// produced diagnostics against `// want "regex"` expectations embedded
// in the sources. A line may carry several want clauses; every
// diagnostic must match a want on its line and every want must be
// matched by a diagnostic.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"dimred/internal/lint"
)

// wantRE matches one `// want "..." "..."` comment tail.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// quotedRE extracts the individual quoted patterns of a want clause.
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// Diagnostics writes files (path → content, relative to the module
// root) into a fresh module, runs the analyzers over ./..., and
// returns the raw diagnostics without want-checking — for tests that
// assert on counts or messages directly. A go.mod declaring module
// "lintfix" is supplied automatically unless files contains one.
func Diagnostics(t *testing.T, analyzers []*lint.Analyzer, files map[string]string) []lint.Diagnostic {
	t.Helper()
	diags, _ := diagnose(t, analyzers, files)
	return diags
}

// diagnose materializes the scratch module, loads it and runs the
// analyzers, returning the diagnostics and the (symlink-resolved)
// module root.
func diagnose(t *testing.T, analyzers []*lint.Analyzer, files map[string]string) ([]lint.Diagnostic, string) {
	t.Helper()
	dir := t.TempDir()
	// go list reports build-cache-resolved, symlink-free paths.
	if resolved, err := filepath.EvalSymlinks(dir); err == nil {
		dir = resolved
	}
	if _, ok := files["go.mod"]; !ok {
		if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module lintfix\n\ngo 1.24\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for rel, content := range files {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	units, err := lint.Load(dir, "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return lint.Run(units, analyzers), dir
}

// Run is Diagnostics plus want-checking: it reports any mismatch
// between the produced diagnostics and the `// want "regex"`
// expectations embedded in the sources as test errors.
func Run(t *testing.T, analyzers []*lint.Analyzer, files map[string]string) {
	t.Helper()
	diags, dir := diagnose(t, analyzers, files)

	type want struct {
		re      *regexp.Regexp
		raw     string
		matched bool
	}
	wants := map[string]map[int][]*want{} // rel file → line → clauses
	for rel, content := range files {
		if !strings.HasSuffix(rel, ".go") {
			continue
		}
		for i, line := range strings.Split(content, "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, q := range quotedRE.FindAllString(m[1], -1) {
				pat, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %s: %v", rel, i+1, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", rel, i+1, pat, err)
				}
				if wants[rel] == nil {
					wants[rel] = map[int][]*want{}
				}
				wants[rel][i+1] = append(wants[rel][i+1], &want{re: re, raw: pat})
			}
		}
	}

	for _, d := range diags {
		rel, err := filepath.Rel(dir, d.Pos.Filename)
		if err != nil || strings.HasPrefix(rel, "..") {
			t.Errorf("diagnostic outside module: %s", d)
			continue
		}
		rel = filepath.ToSlash(rel)
		matched := false
		for _, w := range wants[rel][d.Pos.Line] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for rel, byLine := range wants {
		for line, ws := range byLine {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s:%d: no diagnostic matched want %q", rel, line, w.raw)
				}
			}
		}
	}
	if t.Failed() {
		var b strings.Builder
		for _, d := range diags {
			fmt.Fprintf(&b, "  %s\n", d)
		}
		t.Logf("all diagnostics:\n%s", b.String())
	}
}
