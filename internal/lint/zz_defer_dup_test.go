package lint_test

import (
	"testing"

	"dimred/internal/lint"
	"dimred/internal/lint/linttest"
)

func TestNowflowDeferDup(t *testing.T) {
	diags := linttest.Diagnostics(t, []*lint.Analyzer{lint.NewNowflow(lint.DefaultNowflowRestricted)}, map[string]string{
		"internal/caltime/caltime.go": `package caltime

type Day int32

func Date(y, m, d int) Day { return Day(y*366 + m*31 + d) }
`,
		"internal/spec/s.go": `package spec

import "lintfix/internal/caltime"

func Eval(t caltime.Day) {}

func Bad() {
	defer Eval(caltime.Date(2020, 1, 2))
}
`,
	})
	for _, d := range diags {
		t.Logf("%s", d)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1", len(diags))
	}
}
