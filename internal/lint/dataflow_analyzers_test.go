package lint_test

import (
	"testing"

	"dimred/internal/lint"
	"dimred/internal/lint/linttest"
)

func TestPurity(t *testing.T) {
	linttest.Run(t, []*lint.Analyzer{lint.NewPurity()}, map[string]string{
		"internal/obs/obs.go": `package obs

type Clock interface{ Now() int64 }
`,
		"internal/core/agg.go": `package core

import (
	"time"

	"lintfix/internal/obs"
)

var cache = map[string]float64{}
var total float64

//dimred:aggregate
func MergeSum(a, b float64) float64 { return a + b } // pure: fine

//dimred:aggregate
func BadGlobal(a float64) float64 {
	total += a // want "aggregate function BadGlobal writes package variable total"
	return total
}

//dimred:aggregate
func BadClock() int64 {
	return time.Now().Unix() // want "aggregate function BadClock calls time.Now"
}

//dimred:aggregate
func BadObsClock(c obs.Clock) int64 {
	return c.Now() // want "aggregate function BadObsClock reads the clock via obs.Now"
}

//dimred:aggregate
func BadMapRange(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m { // want "ranges over a map"
		s += v
	}
	return s
}

//dimred:aggregate
func BadTransitive(a float64) float64 { return helper(a) }

func helper(a float64) float64 {
	cache["x"] = a // want "helper writes package variable cache; it is reachable from aggregate function BadTransitive"
	return a
}

//dimred:aggregate
func BadPointerWrite(a float64) float64 {
	p := &total
	*p = a // want "writes package variable total through a pointer"
	return a
}

// Unmarked functions are free to do any of this.
func UnmarkedFree(m map[string]float64) {
	total = 1
	for k := range m {
		cache[k] = 0
	}
}

//dimred:aggregate
func Suppressed(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m { //dimred:allow purity fixture exercises suppression
		s += v
	}
	return s
}

//dimred:aggregate
func SortedFoldOK(keys []string, m map[string]float64) float64 {
	s := 0.0
	for _, k := range keys { // slice iteration is deterministic: fine
		s += m[k]
	}
	return s
}
`,
	})
}

func TestNowflow(t *testing.T) {
	linttest.Run(t, []*lint.Analyzer{lint.NewNowflow(lint.DefaultNowflowRestricted)}, map[string]string{
		"internal/caltime/caltime.go": `package caltime

type Day int64

func Date(y, m, d int) Day           { return Day(y*372 + m*31 + d) }
func ParseDay(s string) (Day, error) { return 0, nil }
`,
		"internal/spec/spec.go": `package spec

import "lintfix/internal/caltime"

type Action struct{ cutoff caltime.Day }

func (a *Action) Applies(t caltime.Day) bool { return t >= a.cutoff }

func EvalOK(a *Action, now caltime.Day) bool {
	return a.Applies(now) // explicit parameter: blessed
}

func EvalBadLiteral(a *Action) bool {
	return a.Applies(caltime.Day(7)) // want "ad-hoc caltime.Day passed as evaluation time"
}

func EvalBadDate(a *Action) bool {
	t := caltime.Date(2024, 1, 1)
	return a.Applies(t) // want "ad-hoc caltime.Day passed as evaluation time"
}

func EvalBadZero(a *Action) bool {
	var t caltime.Day
	return a.Applies(t) // want "ad-hoc caltime.Day passed as evaluation time"
}

func EvalOffsetOK(a *Action, now caltime.Day) bool {
	t := now - 30 // arithmetic anchored at a parameter: blessed
	return a.Applies(t)
}

func EvalReassignedOK(a *Action, now caltime.Day) bool {
	t := caltime.Date(2024, 1, 1)
	t = now // kills the ad-hoc definition before the use
	return a.Applies(t)
}

func EvalBranchBad(a *Action, now caltime.Day, c bool) bool {
	t := now
	if c {
		t = caltime.Date(2000, 1, 1)
	}
	return a.Applies(t) // want "ad-hoc caltime.Day passed as evaluation time"
}

func EvalDataDrivenOK(a *Action, days []caltime.Day) bool {
	for _, d := range days {
		if a.Applies(d) { // range over stored data: blessed
			return true
		}
	}
	return false
}

func EvalFieldOK(a *Action, s *Sched) bool {
	return a.Applies(s.now) // field read: blessed
}

type Sched struct{ now caltime.Day }

func (s *Sched) SetBad() {
	s.now = caltime.Date(1999, 1, 1) // want "assigned an ad-hoc day"
}

func (s *Sched) SetOK(t caltime.Day) {
	s.now = t
}

func EvalSuppressed(a *Action) bool {
	return a.Applies(caltime.Day(7)) //dimred:allow nowflow fixture exercises suppression
}
`,
		"internal/report/report.go": `package report

import "lintfix/internal/caltime"

func at(t caltime.Day) bool { return t > 0 }

// report is not a restricted package: fixed days are allowed here.
func Fixed() bool { return at(caltime.Day(7)) }
`,
	})
}

func TestLockField(t *testing.T) {
	linttest.Run(t, []*lint.Analyzer{lint.NewLockField()}, map[string]string{
		"internal/warehouse/wh.go": `package warehouse

import "sync"

type W struct {
	mu     sync.RWMutex
	loaded bool
	rows   int
	Count  int
}

func (w *W) SetLoaded(v bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.loaded = v
}

func (w *W) Loaded() bool {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.loaded
}

func (w *W) IncCount() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.Count++
}

func (w *W) BadRead() bool {
	return w.loaded // want "read of field .*W.loaded without holding"
}

func (w *W) BadWrite() {
	w.loaded = true // want "write of field .*W.loaded without holding"
}

func (w *W) BadReadLockForWrite() {
	w.mu.RLock()
	defer w.mu.RUnlock()
	w.loaded = true // want "write of field .*W.loaded without holding"
}

func (w *W) BranchyOK(v bool) {
	w.mu.Lock()
	if v {
		w.loaded = v
	}
	w.mu.Unlock()
}

func (w *W) addRowsLocked(n int) {
	w.rows += n // boundary: the Locked suffix says the caller holds mu
}

func (w *W) AddRows(n int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.addRowsLocked(n)
}

func (w *W) BadLockedCall(n int) {
	w.addRowsLocked(n) // want "call to addRowsLocked"
}

func New() *W {
	w := &W{}
	w.loaded = true // fresh allocation: exempt
	return w
}

// Restore is the snapshot-load regression shape: the object comes out
// of a constructor call, so it is not provably fresh here — the
// unlocked write is flagged.
func Restore() *W {
	w := New()
	w.loaded = true // want "write of field .*W.loaded without holding"
	return w
}

func Zeroed() int {
	var w W
	w.rows = 3 // zero-value local: exempt
	return w.rows
}

func (w *W) Suppressed() bool {
	return w.loaded //dimred:allow lockfield fixture exercises suppression
}

// snap is published to lock-free readers behind an atomic pointer.
//
//dimred:immutable
type snap struct {
	rows int
	day  int
}

func NewSnap(rows int) *snap {
	s := &snap{rows: rows}
	s.day = 1 // fresh allocation: construction is allowed
	return s
}

func (w *W) Republish(old *snap) *snap {
	w.mu.Lock()
	defer w.mu.Unlock()
	old.day++ // want "write to field .*snap.day of //dimred:immutable-marked type snap"
	return old
}

func ReadSnap(s *snap) int {
	return s.rows // reads never need a lock on an immutable type
}
`,
		"internal/client/client.go": `package client

import "lintfix/internal/warehouse"

// The guard is inferred module-wide: an unlocked read in another
// package is still a race.
func Peek(w *warehouse.W) int {
	return w.Count // want "read of field .*W.Count without holding"
}
`,
	})
}
