package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// NewLockOrder builds the lockorder analyzer: deadlock freedom by
// acyclicity of the may-hold-while-acquiring relation.
//
// The lockset dataflow behind lockfield already knows which mutex
// fields are held at every program point — including the *Locked
// convention's callee-side assumption and deferred Unlocks acting on
// the CFG's exit paths. lockorder derives a lock-acquisition graph
// from it: an edge A → B whenever a function acquires B while A is
// held, either directly (b.mu.Lock() under a.mu) or through a call to
// a module function whose transitive may-acquire set contains B. Any
// cycle in that graph is a deadlock two goroutines can realize by
// interleaving, and is reported once per cyclic component with a
// deterministic trace (the walk starts at the lexicographically
// smallest lock and always takes the smallest in-component successor).
//
// Locks are identified per field of a struct type (pkg.Type.field),
// not per instance — the same granularity lockfield guards at. The
// self-edge this produces when two instances of one type are locked
// hand-over-hand is reported as a cycle of length one: instance-
// ordered locking of sibling objects needs an explicit order the
// analysis cannot see, so it is exactly the pattern to review.
// May-acquire sets include locks taken inside function literals —
// a closure that locks runs with whatever its spawner holds on at
// least one interleaving.
func NewLockOrder() *Analyzer {
	a := &Analyzer{
		Name: "lockorder",
		Doc: "the may-hold-while-acquiring relation over mutex fields must stay acyclic; " +
			"a cycle is a deadlock concurrent goroutines can reach",
	}
	a.RunModule = func(units []*Unit) []Diagnostic {
		lf := collectLockFacts(units)
		if len(lf.acquires) == 0 && len(lf.heldCalls) == 0 {
			return nil
		}
		may := mayAcquireSets(moduleCallGraph(units))

		// The acquisition graph, with the earliest witness per edge.
		type edgeInfo struct {
			unit *Unit
			pos  token.Pos
			posn token.Position
		}
		edges := map[string]map[string]*edgeInfo{}
		addEdge := func(from, to string, u *Unit, pos token.Pos) {
			if edges[from] == nil {
				edges[from] = map[string]*edgeInfo{}
			}
			posn := u.Fset.Position(pos)
			old := edges[from][to]
			if old == nil || posBefore(posn, old.posn) {
				edges[from][to] = &edgeInfo{unit: u, pos: pos, posn: posn}
			}
		}
		for _, aq := range lf.acquires {
			for held := range aq.held {
				addEdge(held, aq.key, aq.unit, aq.pos)
			}
		}
		for _, hc := range lf.heldCalls {
			for to := range may[hc.callee] {
				for held := range hc.held {
					addEdge(held, to, hc.unit, hc.pos)
				}
			}
		}
		if len(edges) == 0 {
			return nil
		}

		var ds []Diagnostic
		for _, scc := range lockSCCs(edges) {
			cyclic := len(scc) > 1 || edges[scc[0]][scc[0]] != nil
			if !cyclic {
				continue
			}
			trace := cycleTrace(scc, edges)
			names := make([]string, len(trace))
			for i, k := range trace {
				names[i] = shortLockKey(k)
			}
			var details []string
			for i := 0; i+1 < len(trace); i++ {
				ei := edges[trace[i]][trace[i+1]]
				details = append(details, fmt.Sprintf("%s -> %s at %s:%d",
					shortLockKey(trace[i]), shortLockKey(trace[i+1]),
					filepath.Base(ei.posn.Filename), ei.posn.Line))
			}
			first := edges[trace[0]][trace[1]]
			ds = append(ds, first.unit.Diag(first.pos,
				"lock-order cycle: %s (%s); acquire these mutexes in one consistent order everywhere",
				strings.Join(names, " -> "), strings.Join(details, ", ")))
		}
		return ds
	}
	return a
}

// mayAcquireSets computes, per function, the mutex field keys its body
// or any transitive module callee may acquire (flow-insensitive,
// function literals included).
func mayAcquireSets(cg *CallGraph) map[string]map[string]bool {
	direct := map[string][]string{}
	for _, key := range cg.keys {
		node := cg.Nodes[key]
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if k, op, ok := mutexOp(node.Unit.Info, call); ok && (op == "Lock" || op == "RLock") {
					direct[key] = append(direct[key], k)
				}
			}
			return true
		})
	}
	may := map[string]map[string]bool{}
	for _, scc := range cg.SCCs() {
		for changed := true; changed; {
			changed = false
			for _, key := range scc {
				set := may[key]
				if set == nil {
					set = map[string]bool{}
					may[key] = set
				}
				before := len(set)
				for _, k := range direct[key] {
					set[k] = true
				}
				for _, callee := range cg.Nodes[key].Calls {
					for k := range may[callee] {
						set[k] = true
					}
				}
				if len(set) != before {
					changed = true
				}
			}
		}
	}
	return may
}

// lockSCCs runs Tarjan over the acquisition graph, returning each
// strongly connected component sorted internally, components ordered by
// their smallest lock key.
func lockSCCs[E any](edges map[string]map[string]*E) [][]string {
	nodeSet := map[string]bool{}
	succ := map[string][]string{}
	for from, tos := range edges {
		nodeSet[from] = true
		for to := range tos {
			nodeSet[to] = true
			succ[from] = append(succ[from], to)
		}
	}
	var nodes []string
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, ss := range succ {
		sort.Strings(ss)
	}

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succ[v] {
			if _, visited := index[w]; !visited {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Strings(scc)
			sccs = append(sccs, scc)
		}
	}
	for _, n := range nodes {
		if _, visited := index[n]; !visited {
			strongconnect(n)
		}
	}
	sort.Slice(sccs, func(i, j int) bool { return sccs[i][0] < sccs[j][0] })
	return sccs
}

// cycleTrace walks a cyclic component deterministically: start at the
// smallest key, always take the smallest in-component successor, stop
// when a node repeats, and return the closed cycle (first and last
// element equal).
func cycleTrace[E any](scc []string, edges map[string]map[string]*E) []string {
	inSCC := map[string]bool{}
	for _, k := range scc {
		inSCC[k] = true
	}
	seenAt := map[string]int{}
	path := []string{scc[0]}
	seenAt[scc[0]] = 0
	for {
		cur := path[len(path)-1]
		next := ""
		for to := range edges[cur] {
			if inSCC[to] && (next == "" || to < next) {
				next = to
			}
		}
		if next == "" {
			return path // cannot happen in a cyclic SCC; defensive
		}
		if at, seen := seenAt[next]; seen {
			return append(path[at:], next)
		}
		seenAt[next] = len(path)
		path = append(path, next)
	}
}

// posBefore orders token positions across files.
func posBefore(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// shortLockKey trims the directory part of a pkg.Type.field lock key,
// leaving pkgname.Type.field.
func shortLockKey(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}
