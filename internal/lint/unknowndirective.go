package lint

import (
	"go/ast"
	"strings"
	"unicode"
)

// NewUnknownDirective builds the unknowndirective analyzer: every
// comment beginning with "//dimred:" must name a directive from the
// registry in directives.go, sit on a node kind where that directive
// has meaning, carry well-formed arguments, and not repeat a directive
// already attached to the same declaration. The analyzers consuming
// directives all match exact prefixes, so a misspelled or misplaced
// one is silently ignored — the annotation the author relied on simply
// never takes effect. This analyzer turns that silent hole into a
// blocking finding.
//
// analyzerNames is the set of valid first arguments of an allow
// directive; All() passes the bundle's own names.
func NewUnknownDirective(analyzerNames []string) *Analyzer {
	names := map[string]bool{}
	for _, n := range analyzerNames {
		names[n] = true
	}
	a := &Analyzer{
		Name: "unknowndirective",
		Doc: "every dimred directive comment must be registered, well-placed and " +
			"well-formed; a typo'd directive silently disables the check it configures",
	}
	a.Run = func(u *Unit) []Diagnostic {
		var ds []Diagnostic
		for _, f := range u.Files {
			dc := &directiveChecker{u: u, f: f, analyzers: names}
			dc.classify()
			dc.check()
			ds = append(ds, dc.diags...)
		}
		return ds
	}
	return a
}

const directivePrefix = "//dimred:"

type directiveChecker struct {
	u         *Unit
	f         *ast.File
	analyzers map[string]bool

	ctx     map[*ast.Comment]directiveContext
	attach  map[*ast.Comment]ast.Node // declaration a doc/line comment belongs to
	goLines map[int]bool
	diags   []Diagnostic
}

// classify maps each comment to the most specific syntactic position it
// occupies: struct-type doc, named-struct field doc/line comment, or
// function doc. Everything else stays a plain line. Go-statement lines
// are collected separately, since the detached directive attaches by
// line, not by comment group.
func (dc *directiveChecker) classify() {
	dc.ctx = map[*ast.Comment]directiveContext{}
	dc.attach = map[*ast.Comment]ast.Node{}
	dc.goLines = map[int]bool{}

	mark := func(cg *ast.CommentGroup, ctx directiveContext, owner ast.Node) {
		if cg == nil {
			return
		}
		for _, c := range cg.List {
			dc.ctx[c] = ctx
			dc.attach[c] = owner
		}
	}
	for _, decl := range dc.f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			mark(d.Doc, ctxFuncDoc, d)
		case *ast.GenDecl:
			for _, s := range d.Specs {
				ts, ok := s.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, isStruct := ts.Type.(*ast.StructType)
				if !isStruct {
					continue
				}
				mark(ts.Doc, ctxStructDoc, ts)
				if ts.Doc == nil && len(d.Specs) == 1 {
					mark(d.Doc, ctxStructDoc, ts)
				}
				for _, field := range st.Fields.List {
					mark(field.Doc, ctxFieldDoc, field)
					mark(field.Comment, ctxFieldDoc, field)
				}
			}
		}
	}
	ast.Inspect(dc.f, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			dc.goLines[dc.u.Fset.Position(g.Pos()).Line] = true
		}
		return true
	})
}

func (dc *directiveChecker) check() {
	// seen tracks directives per attachment point — the owning
	// declaration for doc/line comments (a field's doc and trailing
	// comment share one), the comment group otherwise.
	seen := map[ast.Node]map[string]bool{}
	for _, cg := range dc.f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			name, args := splitDirective(rest)
			if name == "" {
				dc.diag(c, "empty dimred directive; expected //dimred:<name>")
				continue
			}
			spec := directiveByName(name)
			if spec == nil {
				msg := "unknown directive //dimred:" + name
				if s := closestDirective(name); s != "" {
					msg += "; did you mean //dimred:" + s + "?"
				}
				dc.diag(c, "%s", msg)
				continue
			}

			owner := dc.attach[c]
			if owner == nil {
				owner = cg
			}
			if seen[owner] == nil {
				seen[owner] = map[string]bool{}
			}
			if seen[owner][name] {
				dc.diag(c, "duplicate //dimred:%s on one declaration; the analyzers read the first, so a second is dead weight or a conflict", name)
			}
			seen[owner][name] = true

			if !dc.contextOK(c, spec) {
				dc.diag(c, "//dimred:%s has no effect here; it must be %s", name, spec.where)
			}
			dc.checkArgs(c, spec, args)
		}
	}
}

// contextOK reports whether the comment sits where the directive takes
// effect: its classified position, a go-statement line for ctxGoStmt,
// or anywhere for ctxAnyLine.
func (dc *directiveChecker) contextOK(c *ast.Comment, spec *directiveSpec) bool {
	line := dc.u.Fset.Position(c.Pos()).Line
	for _, ctx := range spec.contexts {
		switch ctx {
		case ctxAnyLine:
			return true
		case ctxGoStmt:
			if dc.goLines[line] || dc.goLines[line+1] {
				return true
			}
		default:
			if dc.ctx[c] == ctx {
				return true
			}
		}
	}
	return false
}

func (dc *directiveChecker) checkArgs(c *ast.Comment, spec *directiveSpec, args string) {
	fields := strings.Fields(args)
	switch {
	case spec.wantsAnalyzer:
		if len(fields) == 0 {
			dc.diag(c, "//dimred:%s suppresses nothing without '<analyzer> <reason>'", spec.name)
			return
		}
		if !dc.analyzers[fields[0]] {
			dc.diag(c, "//dimred:%s names unknown analyzer %q", spec.name, fields[0])
		}
		if len(fields) < 2 {
			dc.diag(c, "//dimred:%s %s is missing the mandatory reason", spec.name, fields[0])
		}
	case spec.wantsReason:
		// A directive whose reason is policed by its consuming analyzer
		// (shared → clonecheck) is not double-reported here.
		if spec.reasonOwner == "" && len(fields) == 0 {
			dc.diag(c, "//dimred:%s is missing the mandatory reason", spec.name)
		}
	default:
		if len(fields) > 0 {
			dc.diag(c, "//dimred:%s takes no argument; trailing text disables the exact-match directive", spec.name)
		}
	}
}

func (dc *directiveChecker) diag(c *ast.Comment, format string, args ...any) {
	dc.diags = append(dc.diags, dc.u.Diag(c.Pos(), format, args...))
}

// splitDirective cuts "name rest..." at the first whitespace rune.
func splitDirective(rest string) (name, args string) {
	i := strings.IndexFunc(rest, unicode.IsSpace)
	if i < 0 {
		return rest, ""
	}
	return rest[:i], rest[i:]
}

// closestDirective suggests a registered directive within Levenshtein
// distance 2 of the misspelling, or "".
func closestDirective(name string) string {
	best, bestDist := "", 3
	for _, spec := range knownDirectives {
		if d := editDistance(name, spec.name); d < bestDist {
			best, bestDist = spec.name, d
		}
	}
	return best
}

func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
