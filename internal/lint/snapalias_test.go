package lint_test

import (
	"testing"

	"dimred/internal/lint"
	"dimred/internal/lint/linttest"
)

// TestSnapAlias exercises the interprocedural escape analysis: writes
// through values derived from a //dimred:immutable type must be flagged
// wherever the derivation happened — a getter's return, an argument
// passed down a call chain, a closure capture, a bound method value —
// while fresh allocations, reference-free value copies, //dimred:shared
// fields and //dimred:allow suppressions stay silent.
func TestSnapAlias(t *testing.T) {
	linttest.Run(t, []*lint.Analyzer{lint.NewSnapAlias()}, map[string]string{
		"snaplib/snaplib.go": `package snaplib

// Snap is the fixture's published snapshot.
//
//dimred:immutable
type Snap struct {
	Rows map[string]int
	List []int
	//dimred:shared the metric object is internally synchronized
	Met *Metrics
	SK  *Sink
}

type Metrics struct{ N map[string]int }

type Sink struct{ Rows map[string]int }

// Wipe mutates its receiver, so binding it to a snapshot-derived
// receiver is as good as the write.
func (k *Sink) Wipe() { clear(k.Rows) }

// Rows escapes the snapshot's row map to the caller.
func Rows(s *Snap) map[string]int { return s.Rows }
`,
		"use/use.go": `package use

import "lintfix/snaplib"

func setN(m map[string]int) { m["n"] = 9 }

func BadEscapedMap(s *snaplib.Snap) {
	m := snaplib.Rows(s)
	m["k"] = 1 // want "write through a value derived from //dimred:immutable type Snap"
}

func BadDirectElem(s *snaplib.Snap) {
	s.List[0] = 7 // want "write through a value derived from //dimred:immutable type Snap"
}

func BadViaCalls(s *snaplib.Snap) {
	setN(snaplib.Rows(s)) // want "call to setN mutates a value derived from //dimred:immutable type Snap"
}

func BadClosure(s *snaplib.Snap) func() {
	return func() {
		delete(s.Rows, "x") // want "delete on a value derived from //dimred:immutable type Snap"
	}
}

func BadCalledMethod(s *snaplib.Snap) {
	s.SK.Wipe() // want "call to Wipe mutates a value derived from //dimred:immutable type Snap"
}

func BadMethodValue(s *snaplib.Snap) func() {
	return s.SK.Wipe // want "method value Wipe may write through a value derived from //dimred:immutable type Snap"
}

func OKShared(s *snaplib.Snap) {
	s.Met.N["x"]++ // derivation stops at the reviewed //dimred:shared field
}

func OKFresh() *snaplib.Snap {
	s := &snaplib.Snap{Rows: map[string]int{}}
	s.Rows["x"] = 1 // fresh allocation: nothing published yet
	return s
}

func OKValueCopy(s *snaplib.Snap) []int {
	var out []int
	for _, v := range s.List {
		out = append(out, v) // ints are copied whole, never aliased
	}
	return out
}

func OKSuppressed(s *snaplib.Snap) {
	//dimred:allow snapalias fixture-sanctioned replay-side mutation
	delete(s.Rows, "x")
}
`,
	})
}

// TestSnapAliasUnmarkedModule: with no //dimred:immutable type in the
// module the analyzer must stay silent (and skip the summary pass).
func TestSnapAliasUnmarkedModule(t *testing.T) {
	diags := linttest.Diagnostics(t, []*lint.Analyzer{lint.NewSnapAlias()}, map[string]string{
		"core/core.go": `package core

type S struct{ M map[string]int }

func Mutate(s *S) { s.M["k"] = 1 }
`,
	})
	if len(diags) != 0 {
		t.Fatalf("expected no diagnostics without marked types, got %v", diags)
	}
}
