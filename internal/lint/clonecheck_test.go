package lint_test

import (
	"testing"

	"dimred/internal/lint"
	"dimred/internal/lint/linttest"
)

// TestCloneCheck exercises deep-copy exhaustiveness: every field of a
// struct built inside a Clone method must be present in the literal or
// assigned in the body, and a verbatim copy of a reference-carrying
// field is accepted only when the field is reference-free or annotated
// //dimred:shared with a reason. A reason-less annotation is itself a
// finding.
func TestCloneCheck(t *testing.T) {
	linttest.Run(t, []*lint.Analyzer{lint.NewCloneCheck()}, map[string]string{
		"core/clone.go": `package core

type metrics struct{ n map[string]int }

// good clones every field: rows rebuilt, name copied by value, met
// deliberately shared with a reviewed reason.
type good struct {
	rows map[string]int
	name string
	//dimred:shared the metric substrate is internally synchronized
	met *metrics
}

func (g *good) Clone() *good {
	c := &good{name: g.name, met: g.met}
	c.rows = make(map[string]int, len(g.rows))
	for k, v := range g.rows {
		c.rows[k] = v
	}
	return c
}

// forgot omits its reference field entirely.
type forgot struct {
	rows map[string]int
	n    int
}

func (f *forgot) Clone() *forgot {
	return &forgot{n: f.n} // want "Clone of forgot does not copy field rows"
}

// aliased copies the map verbatim without an annotation.
type aliased struct {
	rows map[string]int
}

func (a *aliased) Clone() *aliased {
	return &aliased{rows: a.rows} // want "Clone of aliased aliases reference field rows"
}

// noreason carries a bare //dimred:shared, which is useless as a
// reviewed decision.
type noreason struct {
	//dimred:shared
	met *metrics // want "is missing the mandatory reason"
}

// pair/outer: nested literals are checked independently.
type pair struct {
	a []int
	b []int
}

type outer struct {
	p pair
	n int
}

func (o *outer) Clone() *outer {
	return &outer{
		n: o.n,
		p: pair{ // want "Clone of pair does not copy field b"
			a: append([]int(nil), o.p.a...),
		},
	}
}

// arr clones through the copy builtin, which counts as handling.
type arr struct {
	base []int64
}

func (a *arr) Clone() *arr {
	c := &arr{}
	c.base = make([]int64, len(a.base))
	copy(c.base, a.base)
	return c
}
`,
	})
}
