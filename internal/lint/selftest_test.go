package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"dimred/internal/lint"
)

// moduleRoot walks up from the working directory to the go.mod root.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found above test working directory")
		}
		dir = parent
	}
}

// TestRepoIsLintClean is the suite's own gate: the full analyzer set
// must produce zero findings on the real module. A failure here is a
// real violation somewhere in the tree — fix it (or annotate it with a
// reasoned //dimred:allow), don't touch this test.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module; skipped in -short mode")
	}
	root := moduleRoot(t)
	units, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatalf("load %s: %v", root, err)
	}
	if len(units) == 0 {
		t.Fatal("loaded zero packages")
	}
	for _, d := range lint.Run(units, lint.All()) {
		t.Errorf("finding on clean tree: %s", d)
	}
}
