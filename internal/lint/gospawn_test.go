package lint_test

import (
	"testing"

	"dimred/internal/lint"
	"dimred/internal/lint/linttest"
)

// TestGoSpawnJoins exercises the join/termination proof: WaitGroup
// Done/Wait pairs (including a WaitGroup handed to the literal as an
// argument), a ranged channel the spawner closes, a result send the
// spawner receives, and a reasoned detached directive are all accepted;
// a bare literal and a named-function spawn are leaks.
func TestGoSpawnJoins(t *testing.T) {
	linttest.Run(t, []*lint.Analyzer{lint.NewGoSpawn()}, map[string]string{
		"lib/lib.go": `package lib

import "sync"

// Joined uses the canonical WaitGroup pair.
func Joined() int {
	var wg sync.WaitGroup
	n := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		n++
	}()
	wg.Wait()
	return n
}

// WgParam hands the WaitGroup to the literal as an argument; the join
// proof translates the parameter back to the spawn-site argument.
func WgParam() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func(w *sync.WaitGroup) {
		defer w.Done()
	}(&wg)
	wg.Wait()
}

// ChanClosed ranges over a channel the spawner closes.
func ChanClosed() {
	ch := make(chan int)
	go func() {
		for range ch {
		}
	}()
	ch <- 1
	close(ch)
}

// ResultRecv receives the goroutine's single result.
func ResultRecv() int {
	ch := make(chan int)
	go func() { ch <- 42 }()
	return <-ch
}

// Detached declares its intent with a reason.
func Detached() {
	//dimred:detached fixture stand-in for a process-lifetime ticker
	go func() {
		for {
		}
	}()
}

// Leaked has no join edge and no directive.
func Leaked() {
	go func() { // want "goroutine has no provable join or termination edge"
	}()
}

// NamedLeak spawns a named function; the proof cannot look inside it.
func NamedLeak() {
	go helper() // want "goroutine has no provable join or termination edge"
}

func helper() {}

// WrongChan closes one channel but the goroutine waits on another.
func WrongChan() {
	a := make(chan int)
	b := make(chan int)
	go func() { // want "goroutine has no provable join or termination edge"
		<-a
	}()
	close(b)
}
`,
	})
}

// TestGoSpawnHandoff: snapshot-derived state must not cross the spawn
// boundary — not as a capture, not as an argument, not as the bound
// receiver of a named spawn. The detached directive waives only the
// join requirement, never the handoff checks.
func TestGoSpawnHandoff(t *testing.T) {
	linttest.Run(t, []*lint.Analyzer{lint.NewGoSpawn()}, map[string]string{
		"lib/lib.go": `package lib

// Snap is the published snapshot.
//
//dimred:immutable
type Snap struct {
	Rows map[string]int
}

func (s *Snap) work() {}

// CapturedRows captures a map escaped from the snapshot.
func CapturedRows(s *Snap) {
	rows := s.Rows
	done := make(chan struct{})
	go func() { // want "goroutine captures rows, derived from //dimred:immutable type Snap"
		_ = rows
		close(done)
	}()
	<-done
}

// HandedRows passes the escaped map as a spawn argument.
func HandedRows(s *Snap) {
	done := make(chan struct{})
	go func(m map[string]int) { // want "goroutine is handed a value derived from //dimred:immutable type Snap"
		_ = m
		close(done)
	}(s.Rows)
	<-done
}

// BoundReceiver spawns a method bound to the snapshot itself; the
// directive satisfies the join rule but not the handoff rule.
func BoundReceiver(s *Snap) {
	//dimred:detached fixture exercises receiver handoff
	go s.work() // want "goroutine is handed a value derived from //dimred:immutable type Snap"
}

// FreshCapture captures a locally built map: fine.
func FreshCapture() {
	rows := map[string]int{}
	done := make(chan struct{})
	go func() {
		rows["k"] = 1
		close(done)
	}()
	<-done
}
`,
	})
}

// TestGoSpawnGuards: a goroutine body starts holding nothing, so a
// field the module guards with a mutex must take the guard inside the
// body — holding it at the spawn site does not count.
func TestGoSpawnGuards(t *testing.T) {
	linttest.Run(t, []*lint.Analyzer{lint.NewGoSpawn()}, map[string]string{
		"lib/lib.go": `package lib

import "sync"

type Store struct {
	mu sync.Mutex
	n  int
}

var st Store

// Set writes n under mu, establishing the guard.
func Set(v int) {
	st.mu.Lock()
	st.n = v
	st.mu.Unlock()
}

// BadSpawn reads the guarded field lock-free inside the goroutine.
func BadSpawn() {
	done := make(chan struct{})
	go func() {
		_ = st.n // want "read of field lintfix/lib.Store.n inside a goroutine without holding Store.mu"
		close(done)
	}()
	<-done
}

// HeldAtSpawn holds the guard across the go statement; the body still
// runs without it.
func HeldAtSpawn() {
	done := make(chan struct{})
	st.mu.Lock()
	go func() {
		st.n++ // want "write of field lintfix/lib.Store.n inside a goroutine without holding Store.mu"
		close(done)
	}()
	st.mu.Unlock()
	<-done
}

// GoodSpawn takes the guard inside the body.
func GoodSpawn() {
	done := make(chan struct{})
	go func() {
		st.mu.Lock()
		st.n++
		st.mu.Unlock()
		close(done)
	}()
	<-done
}
`,
	})
}
