package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"dimred/internal/lint"
)

// loadScratch materializes a scratch module and loads it with lint.Load.
func loadScratch(t *testing.T, files map[string]string) []*lint.Unit {
	t.Helper()
	dir := t.TempDir()
	if resolved, err := filepath.EvalSymlinks(dir); err == nil {
		dir = resolved
	}
	if _, ok := files["go.mod"]; !ok {
		files["go.mod"] = "module lintfix\n\ngo 1.24\n"
	}
	for rel, content := range files {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	units, err := lint.Load(dir, "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return units
}

const callGraphFixture = `package core

func Leaf() int { return 1 }

func Caller() int { return Leaf() }

func Rec(n int) int {
	if n == 0 {
		return 0
	}
	return Rec(n - 1)
}

func MutA(n int) int {
	if n == 0 {
		return 0
	}
	return MutB(n - 1)
}

func MutB(n int) int { return MutA(n) }

type T struct{ n int }

func (t *T) M() int { return t.n }

func MethodValue(t *T) func() int { return t.M }

func InClosure() int {
	f := func() int { return Leaf() }
	return f()
}
`

// TestCallGraphEdges checks the three edge forms: direct calls,
// method/function values, and references inside function literals.
func TestCallGraphEdges(t *testing.T) {
	units := loadScratch(t, map[string]string{"core/core.go": callGraphFixture})
	cg := lint.BuildCallGraph(units)

	calls := func(key string) map[string]bool {
		t.Helper()
		node := cg.Nodes[key]
		if node == nil {
			t.Fatalf("no call-graph node for %q", key)
		}
		set := map[string]bool{}
		for _, c := range node.Calls {
			set[c] = true
		}
		return set
	}

	if !calls("lintfix/core.Caller")["lintfix/core.Leaf"] {
		t.Error("Caller → Leaf edge missing (direct call)")
	}
	if !calls("lintfix/core.Rec")["lintfix/core.Rec"] {
		t.Error("Rec → Rec self-edge missing (recursion)")
	}
	if !calls("lintfix/core.MutA")["lintfix/core.MutB"] || !calls("lintfix/core.MutB")["lintfix/core.MutA"] {
		t.Error("MutA ↔ MutB edges missing (mutual recursion)")
	}
	if !calls("lintfix/core.MethodValue")["(*lintfix/core.T).M"] {
		t.Error("MethodValue → (*T).M edge missing (method value)")
	}
	if !calls("lintfix/core.InClosure")["lintfix/core.Leaf"] {
		t.Error("InClosure → Leaf edge missing (reference inside a function literal)")
	}
}

// TestCallGraphSCCs checks bottom-up (callee-first) emission order and
// component grouping: mutually recursive functions share one SCC, a
// self-recursive function is its own SCC, and every callee's SCC is
// emitted before its caller's.
func TestCallGraphSCCs(t *testing.T) {
	units := loadScratch(t, map[string]string{"core/core.go": callGraphFixture})
	cg := lint.BuildCallGraph(units)

	sccIndex := map[string]int{}
	for i, scc := range cg.SCCs() {
		for _, key := range scc {
			if prev, dup := sccIndex[key]; dup {
				t.Fatalf("%s appears in SCCs %d and %d", key, prev, i)
			}
			sccIndex[key] = i
		}
	}
	for key := range cg.Nodes {
		if _, ok := sccIndex[key]; !ok {
			t.Errorf("node %s missing from SCC emission", key)
		}
	}

	if sccIndex["lintfix/core.MutA"] != sccIndex["lintfix/core.MutB"] {
		t.Error("mutually recursive MutA and MutB should share an SCC")
	}
	if sccIndex["lintfix/core.MutA"] == sccIndex["lintfix/core.Leaf"] {
		t.Error("MutA/MutB and Leaf must not share an SCC")
	}

	// Bottom-up: every edge must land in the same or an earlier SCC.
	for key, node := range cg.Nodes {
		for _, callee := range node.Calls {
			if _, isNode := sccIndex[callee]; !isNode {
				continue
			}
			if sccIndex[callee] > sccIndex[key] {
				t.Errorf("edge %s → %s goes to a later SCC (%d > %d); order is not bottom-up",
					key, callee, sccIndex[callee], sccIndex[key])
			}
		}
	}
}
