package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SharedDirective marks a struct field that a Clone deliberately shares
// between the original and the copy instead of deep-copying, with a
// mandatory one-line reason:
//
//	//dimred:shared <reason>
//
// clonecheck accepts a direct copy of an annotated reference field, and
// snapalias stops deriving immutability through it: the annotation is a
// reviewed claim that the shared object is safe to reach from both
// sides of a publish boundary (e.g. it is internally synchronized, or
// frozen by construction).
const SharedDirective = "//dimred:shared"

// DetachedDirective marks a go statement whose goroutine intentionally
// has no join or termination edge, with a mandatory reason:
//
//	//dimred:detached <reason>
//
// on the go statement's line or the line directly above it. gospawn
// accepts the annotation in place of a provable sync.WaitGroup pair or
// channel close.
const DetachedDirective = "//dimred:detached"

// ReplayDirective marks a function as part of the epoch protocol's
// drain-then-replay side, with a mandatory reason:
//
//	//dimred:replay <reason>
//
// as a full line of the function's doc comment. publishcheck exempts
// such functions from the no-writes-after-publish rule; they redirect
// retired state under the writer lock after readers have drained.
const ReplayDirective = "//dimred:replay"

// directiveContext classifies the syntactic positions where a
// //dimred: directive takes effect.
type directiveContext int

const (
	ctxAnyLine   directiveContext = iota // keyed to a source line, wherever it is
	ctxStructDoc                         // full line of a struct type's doc comment
	ctxFieldDoc                          // doc or line comment of a named struct's field
	ctxFuncDoc                           // full line of a function's doc comment
	ctxGoStmt                            // the go statement's line, or the line above
)

// directiveSpec is one entry of the directive registry.
type directiveSpec struct {
	name          string
	wantsAnalyzer bool   // first argument must name a registered analyzer
	wantsReason   bool   // mandatory free-text reason
	reasonOwner   string // analyzer that reports a missing reason itself ("" = unknowndirective does)
	contexts      []directiveContext
	where         string // human description of the required position
}

// knownDirectives is the registry every //dimred: comment is validated
// against. A directive missing from this table is a typo, and a typo'd
// directive is a silent soundness hole — the analyzer it was meant to
// configure never sees it — so unknowndirective makes any unregistered
// or malformed //dimred: comment a blocking finding.
var knownDirectives = []directiveSpec{
	{name: "allow", wantsAnalyzer: true, wantsReason: true,
		contexts: []directiveContext{ctxAnyLine},
		where:    "the offending line or the line directly above it"},
	{name: "aggregate",
		contexts: []directiveContext{ctxFuncDoc},
		where:    "a function's doc comment"},
	{name: "immutable",
		contexts: []directiveContext{ctxStructDoc},
		where:    "a struct type's doc comment"},
	{name: "shared", wantsReason: true, reasonOwner: "clonecheck",
		contexts: []directiveContext{ctxFieldDoc},
		where:    "a struct field's doc or line comment"},
	{name: "detached", wantsReason: true,
		contexts: []directiveContext{ctxGoStmt},
		where:    "a go statement's line or the line directly above it"},
	{name: "replay", wantsReason: true,
		contexts: []directiveContext{ctxFuncDoc},
		where:    "a function's doc comment"},
}

func directiveByName(name string) *directiveSpec {
	for i := range knownDirectives {
		if knownDirectives[i].name == name {
			return &knownDirectives[i]
		}
	}
	return nil
}

// collectReplayFuncs returns the //dimred:replay-annotated functions of
// the loaded units, keyed by types.Func.FullName, with their reasons.
// A reasonless replay directive confers nothing (and is itself an
// unknowndirective finding).
func collectReplayFuncs(units []*Unit) map[string]string {
	replay := map[string]string{}
	for _, u := range units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					rest, ok := strings.CutPrefix(c.Text, ReplayDirective+" ")
					if !ok || strings.TrimSpace(rest) == "" {
						continue
					}
					if fn, ok := u.Info.Defs[fd.Name].(*types.Func); ok {
						replay[fn.FullName()] = strings.TrimSpace(rest)
					}
				}
			}
		}
	}
	return replay
}

// detachedReasons maps source lines carrying a reasoned
// //dimred:detached directive, per file, so gospawn can match them to
// go statements on the same or the following line.
func detachedReasons(u *Unit, f *ast.File) map[int]string {
	out := map[int]string{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, DetachedDirective+" ")
			if !ok || strings.TrimSpace(rest) == "" {
				continue
			}
			out[u.Fset.Position(c.Pos()).Line] = strings.TrimSpace(rest)
		}
	}
	return out
}

// collectImmutableTypes returns the //dimred:immutable-marked struct
// types of the loaded units, keyed like owners (pkg.Type). The
// directive must be a full line of the type's doc comment.
func collectImmutableTypes(units []*Unit) map[string]bool {
	immutable := map[string]bool{}
	for _, u := range units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, s := range gd.Specs {
					ts, ok := s.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil && len(gd.Specs) == 1 {
						doc = gd.Doc
					}
					if docHasDirective(doc, ImmutableDirective) {
						immutable[u.Pkg.Path()+"."+ts.Name.Name] = true
					}
				}
			}
		}
	}
	return immutable
}

// sharedField is one //dimred:shared-annotated struct field.
type sharedField struct {
	unit   *Unit
	pos    token.Pos
	reason string // "" when the mandatory reason is missing
}

// collectSharedFields returns the //dimred:shared-annotated struct
// fields of the loaded units, keyed pkg.Type.field. The directive sits
// in the field's doc comment or trailing line comment.
func collectSharedFields(units []*Unit) map[string]sharedField {
	shared := map[string]sharedField{}
	for _, u := range units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, s := range gd.Specs {
					ts, ok := s.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					owner := u.Pkg.Path() + "." + ts.Name.Name
					for _, field := range st.Fields.List {
						reason, ok := sharedDirectiveOf(field)
						if !ok {
							continue
						}
						for _, name := range field.Names {
							shared[owner+"."+name.Name] = sharedField{
								unit: u, pos: name.Pos(), reason: reason,
							}
						}
					}
				}
			}
		}
	}
	return shared
}

// sharedDirectiveOf extracts a //dimred:shared directive's reason from
// a struct field's doc or line comment.
func sharedDirectiveOf(field *ast.Field) (reason string, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if c.Text != SharedDirective && !strings.HasPrefix(c.Text, SharedDirective+" ") {
				continue
			}
			return strings.TrimSpace(strings.TrimPrefix(c.Text, SharedDirective)), true
		}
	}
	return "", false
}
