package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// SharedDirective marks a struct field that a Clone deliberately shares
// between the original and the copy instead of deep-copying, with a
// mandatory one-line reason:
//
//	//dimred:shared <reason>
//
// clonecheck accepts a direct copy of an annotated reference field, and
// snapalias stops deriving immutability through it: the annotation is a
// reviewed claim that the shared object is safe to reach from both
// sides of a publish boundary (e.g. it is internally synchronized, or
// frozen by construction).
const SharedDirective = "//dimred:shared"

// collectImmutableTypes returns the //dimred:immutable-marked struct
// types of the loaded units, keyed like owners (pkg.Type). The
// directive must be a full line of the type's doc comment.
func collectImmutableTypes(units []*Unit) map[string]bool {
	immutable := map[string]bool{}
	for _, u := range units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, s := range gd.Specs {
					ts, ok := s.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil && len(gd.Specs) == 1 {
						doc = gd.Doc
					}
					if docHasDirective(doc, ImmutableDirective) {
						immutable[u.Pkg.Path()+"."+ts.Name.Name] = true
					}
				}
			}
		}
	}
	return immutable
}

// sharedField is one //dimred:shared-annotated struct field.
type sharedField struct {
	unit   *Unit
	pos    token.Pos
	reason string // "" when the mandatory reason is missing
}

// collectSharedFields returns the //dimred:shared-annotated struct
// fields of the loaded units, keyed pkg.Type.field. The directive sits
// in the field's doc comment or trailing line comment.
func collectSharedFields(units []*Unit) map[string]sharedField {
	shared := map[string]sharedField{}
	for _, u := range units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, s := range gd.Specs {
					ts, ok := s.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					owner := u.Pkg.Path() + "." + ts.Name.Name
					for _, field := range st.Fields.List {
						reason, ok := sharedDirectiveOf(field)
						if !ok {
							continue
						}
						for _, name := range field.Names {
							shared[owner+"."+name.Name] = sharedField{
								unit: u, pos: name.Pos(), reason: reason,
							}
						}
					}
				}
			}
		}
	}
	return shared
}

// sharedDirectiveOf extracts a //dimred:shared directive's reason from
// a struct field's doc or line comment.
func sharedDirectiveOf(field *ast.Field) (reason string, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if c.Text != SharedDirective && !strings.HasPrefix(c.Text, SharedDirective+" ") {
				continue
			}
			return strings.TrimSpace(strings.TrimPrefix(c.Text, SharedDirective)), true
		}
	}
	return "", false
}
