package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewPublishCheck builds the publishcheck analyzer: immutability from
// the moment of publication. Storing a value into an atomic.Pointer is
// the left-right commit's publish step — from that instant, lock-free
// readers may hold the value, and the publisher has given up its right
// to mutate it. publishcheck enforces the handoff: in any function that
// publishes through atomic.Pointer Store/Swap/CompareAndSwap — itself
// or via a module callee, closed transitively over the call graph — no
// path after the publish may write into published state, not directly,
// not via a mutating builtin, and not by calling a module function
// whose escape summary writes the argument — unless the writer is
// annotated //dimred:replay with a reason (the sanctioned
// replay-into-standby path of the left-right protocol).
//
// Two complementary views decide what "published state" means at a
// write site. The value handed to the publish call is tracked by
// variable identity, closed over the declaration's bindings — this
// catches the freshly built value a publisher must stop touching the
// moment it stores it. And any value derived from a type that is
// published anywhere in the module (the atomic.Pointer element types)
// is tracked by the same origin analysis snapalias uses — this catches
// the retired snapshot a commit path keeps writing after the swap, the
// exact pattern the replay annotation exists for. Derivation stops at
// //dimred:shared fields, whose objects are reviewed as safe to mutate
// while shared.
//
// Flow sensitivity comes from the CFG: a may-published fact is solved
// forward (OR at merges), a publish takes effect strictly after its own
// statement, and deferred calls are interpreted in the spliced defers
// block, where every completed publish is visible. Function literals
// have their own CFGs and are checked only when they publish (directly
// or through callees) themselves; a closure that captures published
// state and writes it later is snapalias's problem when the type is
// also //dimred:immutable.
func NewPublishCheck() *Analyzer {
	a := &Analyzer{
		Name: "publishcheck",
		Doc: "after a value is stored into an atomic.Pointer, no path may write into it except " +
			"functions annotated " + ReplayDirective + "; readers hold published values lock-free",
	}
	a.RunModule = func(units []*Unit) []Diagnostic {
		cg := moduleCallGraph(units)

		// Which types get published, and which functions publish
		// directly.
		publishedTypes := map[string]bool{}
		direct := map[string]bool{}
		for _, key := range cg.keys {
			node := cg.Nodes[key]
			ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if _, _, tk, ok := atomicPublish(node.Unit.Info, call); ok {
						publishedTypes[tk] = true
						direct[key] = true
					}
				}
				return true
			})
		}
		if len(publishedTypes) == 0 {
			return nil
		}
		mayPublish := map[string]bool{}
		for _, scc := range cg.SCCs() {
			for changed := true; changed; {
				changed = false
				for _, key := range scc {
					if mayPublish[key] {
						continue
					}
					p := direct[key]
					for _, callee := range cg.Nodes[key].Calls {
						p = p || mayPublish[callee]
					}
					if p {
						mayPublish[key] = true
						changed = true
					}
				}
			}
		}

		shared := collectSharedFields(units)
		// Summaries over an empty marked set: pure which-parameters-may-
		// this-write facts, with no type-derived offense short-circuit
		// (a marked set diverts marked writes away from writesParam).
		summaries := escapeSummariesFor(units, nil, shared)
		replay := collectReplayFuncs(units)

		var ds []Diagnostic
		for _, key := range cg.keys {
			if !mayPublish[key] {
				continue
			}
			if replay[key] != "" {
				continue // reasoned replay path: exempt end to end
			}
			c := &publishCheck{node: cg.Nodes[key], shared: shared,
				summaries: summaries, replay: replay,
				publishedTypes: publishedTypes, mayPublish: mayPublish}
			ds = append(ds, c.check()...)
		}
		return ds
	}
	return a
}

type publishCheck struct {
	node           *CGNode
	shared         map[string]sharedField
	summaries      map[string]*escapeSummary
	replay         map[string]string
	publishedTypes map[string]bool
	mayPublish     map[string]bool

	fa      *snapAnalysis
	aliased map[*types.Var]bool
	diags   []Diagnostic
}

func (c *publishCheck) check() []Diagnostic {
	decl := c.node.Decl

	// Origin view: values derived from a published type, via the same
	// machinery snapalias uses, with the published types as the marked
	// set.
	c.fa = newSnapAnalysis(c.node, c.publishedTypes, c.shared, c.summaries)
	c.fa.seedParams()
	for c.fa.propagate() {
	}

	// Identity view: the declaration's own publish arguments, closed
	// over its bindings.
	roots := map[*types.Var]bool{}
	typeName := ""
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if val, tn, _, ok := atomicPublish(c.node.Unit.Info, call); ok {
			typeName = tn
			if v := c.rootVar(val); v != nil {
				roots[v] = true
			}
		}
		return true
	})
	c.propagateAliases(roots)

	// Each body (the declaration's and every literal's) is its own CFG;
	// check the ones that can complete a publish.
	c.checkBody(decl.Body, typeName)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			c.checkBody(lit.Body, typeName)
		}
		return true
	})
	return c.diags
}

// propagateAliases closes the published roots over the declaration's
// simple bindings: a variable bound from an expression rooted at a
// published value aliases it.
func (c *publishCheck) propagateAliases(roots map[*types.Var]bool) {
	c.aliased = roots
	for changed := true; changed; {
		changed = false
		bind := func(lhs ast.Expr, rhs ast.Expr) {
			v := c.identVar(lhs)
			if v == nil || c.aliased[v] {
				return
			}
			if r := c.rootVar(rhs); r != nil && c.aliased[r] {
				c.aliased[v] = true
				changed = true
			}
		}
		ast.Inspect(c.node.Decl.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) == len(st.Rhs) {
					for i, lhs := range st.Lhs {
						bind(lhs, st.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(st.Names) == len(st.Values) {
					for i, name := range st.Names {
						bind(name, st.Values[i])
					}
				}
			}
			return true
		})
	}
}

// nodePublishes reports whether executing one CFG node can complete a
// publish: an atomic.Pointer store, or a call to a module function
// that may publish transitively.
func (c *publishCheck) nodePublishes(n ast.Node) bool {
	info := c.node.Unit.Info
	found := false
	inspectNoFuncLit(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if _, _, _, ok := atomicPublish(info, call); ok {
			found = true
		} else if fn := calleeFunc(info, call); fn != nil && c.mayPublish[fn.FullName()] {
			found = true
		}
		return !found
	})
	return found
}

// checkBody solves the may-published fact over one body's CFG and
// reports every post-publish write into published state. The publish
// becomes effective strictly after its statement; deferred calls are
// interpreted in the defers block, where every completed publish on
// the path is visible.
func (c *publishCheck) checkBody(body *ast.BlockStmt, typeName string) {
	g := BuildCFG(body)
	in := Solve(g, Problem[bool]{
		Dir:   Forward,
		Merge: func(x, y bool) bool { return x || y },
		Equal: func(x, y bool) bool { return x == y },
		Transfer: func(b *Block, f bool) bool {
			for _, n := range b.Nodes {
				if _, isDefer := n.(*ast.DeferStmt); isDefer && b.Kind != "defers" {
					continue
				}
				if c.nodePublishes(n) {
					f = true
				}
			}
			return f
		},
	})
	for _, b := range g.Blocks {
		f, reachable := in[b]
		if !reachable {
			continue
		}
		for _, n := range b.Nodes {
			if ds, isDefer := n.(*ast.DeferStmt); isDefer {
				if b.Kind == "defers" && f {
					c.scanWrites(ds.Call, typeName)
				}
				continue // inline defers run at exit, in the defers block
			}
			if f {
				c.scanWrites(n, typeName)
			}
			if c.nodePublishes(n) {
				f = true
			}
		}
	}
}

// published decides whether an expression reaches published state —
// by identity (an alias of a value this declaration publishes) or by
// origin (derived from a type the module publishes) — and returns the
// type name to report.
func (c *publishCheck) published(e ast.Expr, typeName string) (string, bool) {
	if o := c.fa.exprOrigins(e); o.immut {
		return o.immutType, true
	}
	if v := c.rootVar(e); v != nil && c.aliased[v] {
		return typeName, true
	}
	return "", false
}

// scanWrites reports writes into published state within one CFG node:
// direct stores through selector/index/deref, inc/dec, mutating
// builtins, and calls whose escape summary writes a published argument
// (unless the callee is the annotated replay path).
func (c *publishCheck) scanWrites(n ast.Node, typeName string) {
	u := c.node.Unit
	checkTarget := func(pos token.Pos, e ast.Expr) {
		if tn, hit := c.published(e, typeName); hit {
			c.diags = append(c.diags, u.Diag(pos,
				"write into a %s value after its atomic.Pointer publish; lock-free readers may "+
					"already hold it, and only %s functions may replay into published state",
				tn, ReplayDirective))
		}
	}
	inspectNoFuncLit(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				switch t := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					if sel := u.Info.Selections[t]; sel != nil && sel.Kind() == types.FieldVal {
						checkTarget(t.Pos(), t.X)
					}
				case *ast.IndexExpr:
					checkTarget(t.Pos(), t.X)
				case *ast.StarExpr:
					checkTarget(t.Pos(), t.X)
				}
			}
		case *ast.IncDecStmt:
			switch t := ast.Unparen(x.X).(type) {
			case *ast.SelectorExpr:
				checkTarget(t.Pos(), t.X)
			case *ast.IndexExpr:
				checkTarget(t.Pos(), t.X)
			case *ast.StarExpr:
				checkTarget(t.Pos(), t.X)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := u.Info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "append", "copy", "delete", "clear":
						if len(x.Args) > 0 {
							checkTarget(x.Pos(), x.Args[0])
						}
					}
					return true
				}
			}
			fn := calleeFunc(u.Info, x)
			if fn == nil {
				return true
			}
			s := c.summaries[fn.FullName()]
			if s == nil || s.writesParam == 0 || c.replay[fn.FullName()] != "" {
				return true
			}
			for bit := 0; bit < 64 && s.writesParam>>bit != 0; bit++ {
				if s.writesParam&(1<<bit) == 0 {
					continue
				}
				for _, arg := range callBitExprs(x, fn, bit) {
					if tn, hit := c.published(arg, typeName); hit {
						c.diags = append(c.diags, u.Diag(x.Pos(),
							"call to %s mutates a %s value after its atomic.Pointer publish; "+
								"annotate the callee '%s <reason>' if it is the sanctioned replay path",
							fn.Name(), tn, ReplayDirective))
					}
				}
			}
		}
		return true
	})
}

// rootVar chases an expression to the variable its referent is reached
// through (nil when untracked). Derivation stops at //dimred:shared
// fields: their objects are reviewed as safe to mutate while shared.
func (c *publishCheck) rootVar(e ast.Expr) *types.Var {
	info := c.node.Unit.Info
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return c.identVar(x)
	case *ast.SelectorExpr:
		if sel := info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
			if _, key, ok := fieldOwnerKey(info, x); ok {
				if _, isShared := c.shared[key]; isShared {
					return nil
				}
			}
			return c.rootVar(x.X)
		}
	case *ast.StarExpr:
		return c.rootVar(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return c.rootVar(x.X)
		}
	case *ast.IndexExpr:
		return c.rootVar(x.X)
	case *ast.SliceExpr:
		return c.rootVar(x.X)
	case *ast.TypeAssertExpr:
		return c.rootVar(x.X)
	}
	return nil
}

func (c *publishCheck) identVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	info := c.node.Unit.Info
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// atomicPublish classifies a call as an atomic.Pointer publish and
// returns the value expression being published, the element type's
// name (for messages) and its pkg.Type key (for the published-type
// set). Store and Swap publish their first argument, CompareAndSwap
// its second.
func atomicPublish(info *types.Info, call *ast.CallExpr) (val ast.Expr, typeName, typeKey string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", "", false
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil, "", "", false
	}
	var argIdx int
	switch fn.Name() {
	case "Store", "Swap":
		argIdx = 0
	case "CompareAndSwap":
		argIdx = 1
	default:
		return nil, "", "", false
	}
	tv, hasType := info.Types[sel.X]
	if !hasType || tv.Type == nil {
		return nil, "", "", false
	}
	t := tv.Type
	for {
		p, isPtr := t.(*types.Pointer)
		if !isPtr {
			break
		}
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil ||
		named.Obj().Pkg().Path() != "sync/atomic" || named.Obj().Name() != "Pointer" {
		return nil, "", "", false
	}
	targs := named.TypeArgs()
	if targs == nil || targs.Len() != 1 {
		return nil, "", "", false
	}
	elem := targs.At(0)
	for {
		p, isPtr := elem.(*types.Pointer)
		if !isPtr {
			break
		}
		elem = p.Elem()
	}
	en, isNamed := elem.(*types.Named)
	if !isNamed || en.Obj().Pkg() == nil {
		return nil, "", "", false
	}
	if argIdx >= len(call.Args) {
		return nil, "", "", false
	}
	return call.Args[argIdx], en.Obj().Name(),
		en.Obj().Pkg().Path() + "." + en.Obj().Name(), true
}
