package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewAtomicField builds the atomicfield analyzer: a struct field
// accessed through sync/atomic anywhere in the module must be accessed
// atomically everywhere. Two idioms are covered:
//
//   - classic fields (plain integer fields driven through
//     atomic.AddInt64(&s.f, ...) and friends): every other access to
//     the same field must also be an &s.f argument to a sync/atomic
//     call — a plain load or store is a race;
//   - wrapper fields (atomic.Int64, atomic.Bool, ...): the field may
//     only be used as a method receiver or have its address taken —
//     reading or copying the wrapper value bypasses the atomic API
//     (obs counters are exactly this shape).
//
// Field identity is matched by package path + receiver type name +
// field name, so source-checked and export-data views of the same
// field agree. Accesses through embedded promotions resolve to the
// promoting type and are not correlated with direct accesses.
func NewAtomicField() *Analyzer {
	a := &Analyzer{
		Name: "atomicfield",
		Doc:  "fields accessed via sync/atomic must be accessed atomically everywhere",
	}
	a.RunModule = func(units []*Unit) []Diagnostic {
		// Phase 1: collect every classic field that some sync/atomic
		// call targets, module-wide.
		classic := map[string]bool{}
		for _, u := range units {
			for _, f := range u.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || !isAtomicCall(u.Info, call) || len(call.Args) == 0 {
						return true
					}
					if sel, ok := addrOfSelector(call.Args[0]); ok {
						if key, ok := fieldKey(u.Info, sel); ok {
							classic[key] = true
						}
					}
					return true
				})
			}
		}

		// Phase 2: flag non-atomic accesses to classic fields and
		// value uses of atomic wrapper fields.
		var ds []Diagnostic
		for _, u := range units {
			for _, f := range u.Files {
				parents := parentMap(f)
				ast.Inspect(f, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					key, isField := fieldKey(u.Info, sel)
					if !isField {
						return true
					}
					if classic[key] && !isAtomicArg(u.Info, sel, parents) {
						ds = append(ds, u.Diag(sel.Pos(),
							"non-atomic access to field %s, which is accessed with sync/atomic elsewhere in the module", key))
						return true
					}
					if isAtomicWrapperType(u.Info.Selections[sel].Type()) && !inAtomicSafeContext(sel, parents) {
						ds = append(ds, u.Diag(sel.Pos(),
							"field %s has an atomic type but is used as a plain value; call its atomic methods instead", key))
					}
					return true
				})
			}
		}
		return ds
	}
	return a
}

// isAtomicCall reports whether call statically targets a function of
// package sync/atomic.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" && fn.Type().(*types.Signature).Recv() == nil
}

// addrOfSelector matches the expression &x.f.
func addrOfSelector(e ast.Expr) (*ast.SelectorExpr, bool) {
	un, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil, false
	}
	sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
	return sel, ok
}

// fieldKey names a field selection as pkgpath.Recv.field; ok is false
// when sel is not a struct-field selection.
func fieldKey(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	recv := s.Recv()
	if p, isPtr := recv.(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	tn := named.Obj()
	pkg := ""
	if tn.Pkg() != nil {
		pkg = tn.Pkg().Path()
	}
	return pkg + "." + tn.Name() + "." + s.Obj().Name(), true
}

// isAtomicArg reports whether sel occurs as &sel passed directly to a
// sync/atomic call — the only sanctioned access to a classic field.
func isAtomicArg(info *types.Info, sel *ast.SelectorExpr, parents map[ast.Node]ast.Node) bool {
	p := skipParens(parents, sel)
	un, ok := p.(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return false
	}
	call, ok := skipParens(parents, un).(*ast.CallExpr)
	return ok && isAtomicCall(info, call)
}

// inAtomicSafeContext reports whether an atomic-wrapper-typed
// expression is used safely: as the receiver of a method call, as an
// operand of &, as the base of an index that is itself used safely, or
// as a len/cap argument.
func inAtomicSafeContext(e ast.Expr, parents map[ast.Node]ast.Node) bool {
	switch p := skipParens(parents, e).(type) {
	case *ast.SelectorExpr:
		return p.X == e || parenBase(p.X) == e // method selection x.f.Load
	case *ast.UnaryExpr:
		return p.Op == token.AND
	case *ast.IndexExpr:
		if parenBase(p.X) != e {
			return false
		}
		return inAtomicSafeContext(p, parents)
	case *ast.CallExpr:
		if id, ok := ast.Unparen(p.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
			return true
		}
	}
	return false
}

func skipParens(parents map[ast.Node]ast.Node, n ast.Node) ast.Node {
	p := parents[n]
	for {
		par, ok := p.(*ast.ParenExpr)
		if !ok {
			return p
		}
		p = parents[par]
	}
}

func parenBase(e ast.Expr) ast.Expr { return ast.Unparen(e) }

// isAtomicWrapperType reports whether t is one of sync/atomic's
// wrapper types (atomic.Int64, atomic.Bool, atomic.Pointer[T], ...) or
// an array of them.
func isAtomicWrapperType(t types.Type) bool {
	switch tt := t.(type) {
	case *types.Array:
		return isAtomicWrapperType(tt.Elem())
	case *types.Named:
		tn := tt.Obj()
		return tn.Pkg() != nil && tn.Pkg().Path() == "sync/atomic"
	}
	return false
}
