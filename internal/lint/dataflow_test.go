package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typecheckFunc parses and type-checks src and returns the first
// function declaration with its type info.
func typecheckFunc(t *testing.T, src string) (*ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "df_test.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return fd, info
		}
	}
	t.Fatal("no function in source")
	return nil, nil
}

// findVar looks up a function-local variable by name via the Defs map.
func findVar(t *testing.T, info *types.Info, name string) *types.Var {
	t.Helper()
	for id, obj := range info.Defs {
		if id.Name == name {
			if v, ok := obj.(*types.Var); ok {
				return v
			}
		}
	}
	t.Fatalf("variable %q not found", name)
	return nil
}

// returnBlock finds the block and node of the first return statement.
func returnBlock(t *testing.T, g *CFG) (*Block, ast.Node) {
	t.Helper()
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				return b, n
			}
		}
	}
	t.Fatal("no return statement in CFG")
	return nil, nil
}

func TestReachingDefsKill(t *testing.T) {
	fd, info := typecheckFunc(t, `package p
func f() int {
	x := 1
	x = 2
	return x
}`)
	g := BuildCFG(fd.Body)
	rd := NewReachingDefs(info, fd, g)
	b, ret := returnBlock(t, g)
	defs := rd.DefsAt(info, b, ret, findVar(t, info, "x"))
	if len(defs) != 1 {
		t.Fatalf("want exactly 1 reaching def after kill, got %d", len(defs))
	}
	lit, ok := ast.Unparen(defs[0].Rhs).(*ast.BasicLit)
	if !ok || lit.Value != "2" {
		t.Fatalf("reaching def should be x = 2, got %v", defs[0].Rhs)
	}
}

func TestReachingDefsBranchMerge(t *testing.T) {
	fd, info := typecheckFunc(t, `package p
func f(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}`)
	g := BuildCFG(fd.Body)
	rd := NewReachingDefs(info, fd, g)
	b, ret := returnBlock(t, g)
	defs := rd.DefsAt(info, b, ret, findVar(t, info, "x"))
	if len(defs) != 2 {
		t.Fatalf("both branch definitions must reach the merge, got %d", len(defs))
	}
}

func TestReachingDefsLoop(t *testing.T) {
	fd, info := typecheckFunc(t, `package p
func f(n int) int {
	x := 0
	for i := 0; i < n; i++ {
		x = i
	}
	return x
}`)
	g := BuildCFG(fd.Body)
	rd := NewReachingDefs(info, fd, g)
	b, ret := returnBlock(t, g)
	defs := rd.DefsAt(info, b, ret, findVar(t, info, "x"))
	if len(defs) != 2 {
		t.Fatalf("init and loop-body definitions must both reach the exit, got %d", len(defs))
	}
}

func TestReachingDefsParams(t *testing.T) {
	fd, info := typecheckFunc(t, `package p
func f(a int) int {
	return a
}`)
	g := BuildCFG(fd.Body)
	rd := NewReachingDefs(info, fd, g)
	b, ret := returnBlock(t, g)
	defs := rd.DefsAt(info, b, ret, findVar(t, info, "a"))
	if len(defs) != 1 {
		t.Fatalf("parameter definition must reach, got %d", len(defs))
	}
	if defs[0].Node != nil || defs[0].Rhs != nil {
		t.Fatalf("parameter defs carry no node/rhs, got %+v", defs[0])
	}
}

func TestReachingDefsUntrackedVar(t *testing.T) {
	fd, info := typecheckFunc(t, `package p
var g int
func f() int {
	return g
}`)
	cfg := BuildCFG(fd.Body)
	rd := NewReachingDefs(info, fd, cfg)
	b, ret := returnBlock(t, cfg)
	var gv *types.Var
	for id, obj := range info.Uses {
		if id.Name == "g" {
			gv, _ = obj.(*types.Var)
		}
	}
	if gv == nil {
		t.Fatal("package var g not found")
	}
	if defs := rd.DefsAt(info, b, ret, gv); defs != nil {
		t.Fatalf("package-level vars are untracked; want nil, got %v", defs)
	}
}

// TestSolveBackwardLiveness exercises the Backward direction with a
// from-scratch liveness problem: x is live entering the branch (one
// path returns it) but dead after the trailing dead store.
func TestSolveBackwardLiveness(t *testing.T) {
	fd, info := typecheckFunc(t, `package p
func f(c bool) int {
	x := 1
	if c {
		return x
	}
	x = 9
	return 0
}`)
	g := BuildCFG(fd.Body)

	type live = map[*types.Var]bool
	use := func(n ast.Node, s live) {
		inspectNoFuncLit(n, func(x ast.Node) bool {
			if id, ok := x.(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok {
					s[v] = true
				}
			}
			return true
		})
	}
	out := Solve(g, Problem[live]{
		Dir:      Backward,
		Boundary: live{},
		Merge: func(a, b live) live {
			c := live{}
			for k := range a {
				c[k] = true
			}
			for k := range b {
				c[k] = true
			}
			return c
		},
		Equal: func(a, b live) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(b *Block, in live) live {
			cur := live{}
			for k := range in {
				cur[k] = true
			}
			// Backward: process nodes in reverse (kill defs, gen uses).
			for i := len(b.Nodes) - 1; i >= 0; i-- {
				n := b.Nodes[i]
				if as, ok := n.(*ast.AssignStmt); ok {
					for _, lhs := range as.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							if v, ok := info.Defs[id].(*types.Var); ok {
								delete(cur, v)
							}
						}
					}
					for _, rhs := range as.Rhs {
						use(rhs, cur)
					}
					continue
				}
				use(n, cur)
			}
			return cur
		},
	})

	// Under Backward orientation, out[b] is the fact at b's *exit*.
	xv := findVar(t, info, "x")
	if !out[g.Entry][xv] {
		t.Fatal("x must be live at the entry block's exit: the then-branch returns it")
	}
	// The block holding the dead store x = 9: x is dead at its exit.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN {
				continue
			}
			if out[b][xv] {
				t.Fatal("x must be dead after the trailing dead store")
			}
		}
	}
}
