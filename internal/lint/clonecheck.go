package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// clonecheck enforces deep-copy exhaustiveness for the engine's Clone
// methods. The left-right commit protocol rebuilds the working side
// from a Clone of the published cube set; a field the Clone forgets —
// typically one added to a struct months after the Clone was written —
// silently aliases state across the publish boundary, which is exactly
// the class of bug no test notices until a concurrent reader does.
//
// For every composite literal of a module-declared struct type inside a
// method named Clone (or clone), each field of the struct must be:
//
//   - present in the literal or assigned somewhere in the body
//     (c.refs[i] = ..., copy(c.base, ...) and append-into count), and
//   - not a *direct copy* of a reference-carrying field: a value
//     rows: s.rows that reads another struct's field verbatim is
//     accepted only when the field's type is reference-free (no
//     pointers, slices, maps, channels, funcs or interfaces at any
//     depth — such values are copied whole) or when the field is
//     annotated //dimred:shared with a reason.
//
// Values produced any other way (a Clone call, append/make, a nested
// literal, an explicit nil reset) are taken as deliberate: the check
// guards against the two silent failure shapes — omission and verbatim
// aliasing — not against wrong deep-copy logic, which fixtures and
// round-trip tests cover.
//
// A //dimred:shared directive without a reason is itself a finding:
// the annotation is only useful as a reviewed, explained decision.

// NewCloneCheck builds the clonecheck analyzer.
func NewCloneCheck() *Analyzer {
	a := &Analyzer{
		Name: "clonecheck",
		Doc: "every field of a struct built inside a Clone method must be cloned, copied " +
			"by reference-free value, or annotated " + SharedDirective + " with a reason",
	}
	a.RunModule = func(units []*Unit) []Diagnostic {
		modulePkgs := map[string]bool{}
		for _, u := range units {
			modulePkgs[u.Path] = true
		}
		shared := collectSharedFields(units)

		var ds []Diagnostic
		var sharedKeys []string
		for key := range shared {
			sharedKeys = append(sharedKeys, key)
		}
		sort.Strings(sharedKeys)
		for _, key := range sharedKeys {
			if sf := shared[key]; sf.reason == "" {
				ds = append(ds, sf.unit.Diag(sf.pos,
					"%s on %s is missing the mandatory reason", SharedDirective, key))
			}
		}

		for _, u := range units {
			for _, f := range u.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil || fd.Recv == nil {
						continue
					}
					if fd.Name.Name != "Clone" && fd.Name.Name != "clone" {
						continue
					}
					ds = append(ds, checkCloneBody(u, fd, modulePkgs, shared)...)
				}
			}
		}
		return ds
	}
	return a
}

// cloneFieldHandling records how a Clone body touches one struct field
// outside the composite literal.
type cloneFieldHandling struct {
	direct []ast.Expr // whole-field assignments: rhs candidates for the alias check
	other  bool       // indexed/element-wise/multi-value assignment or copy builtin
}

// checkCloneBody verifies deep-copy exhaustiveness for every module
// struct literal in one Clone method.
func checkCloneBody(u *Unit, fd *ast.FuncDecl, modulePkgs map[string]bool, shared map[string]sharedField) []Diagnostic {
	assigned := map[*types.Var]*cloneFieldHandling{}
	handle := func(v *types.Var) *cloneFieldHandling {
		if assigned[v] == nil {
			assigned[v] = &cloneFieldHandling{}
		}
		return assigned[v]
	}
	// Pass 1: field assignments and copy builtins anywhere in the body.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				v, wrapped := assignedField(u.Info, lhs)
				if v == nil {
					continue
				}
				if wrapped || len(st.Lhs) != len(st.Rhs) {
					handle(v).other = true
				} else {
					handle(v).direct = append(handle(v).direct, st.Rhs[i])
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok && len(st.Args) > 0 {
				if b, ok := u.Info.Uses[id].(*types.Builtin); ok && b.Name() == "copy" {
					if v, _ := assignedField(u.Info, st.Args[0]); v != nil {
						handle(v).other = true
					}
				}
			}
		}
		return true
	})

	// Pass 2: exhaustiveness over every module struct literal.
	var ds []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		tv, ok := u.Info.Types[cl]
		if !ok {
			return true
		}
		named, ok := tv.Type.(*types.Named)
		if !ok || named.Obj().Pkg() == nil || !modulePkgs[named.Obj().Pkg().Path()] {
			return true
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			return true
		}
		owner := named.Obj().Pkg().Path() + "." + named.Obj().Name()
		typeName := named.Obj().Name()

		positional := len(cl.Elts) > 0
		byKey := map[string]ast.Expr{}
		for _, elt := range cl.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				positional = false
				if id, ok := kv.Key.(*ast.Ident); ok {
					byKey[id.Name] = kv.Value
				}
			}
		}

		checkDirect := func(field *types.Var, rhs ast.Expr) {
			sel, ok := ast.Unparen(rhs).(*ast.SelectorExpr)
			if !ok {
				return // built, not copied: deliberate
			}
			if s := u.Info.Selections[sel]; s == nil || s.Kind() != types.FieldVal {
				return
			}
			key := owner + "." + field.Name()
			if _, isShared := shared[key]; isShared {
				return
			}
			if refFree(field.Type()) {
				return
			}
			ds = append(ds, u.Diag(rhs.Pos(),
				"Clone of %s aliases reference field %s (%s); deep-copy it or annotate %s with a reason",
				typeName, field.Name(), field.Type().String(), SharedDirective))
		}

		for i := 0; i < st.NumFields(); i++ {
			field := st.Field(i)
			if field.Name() == "_" {
				continue
			}
			switch {
			case positional:
				if i < len(cl.Elts) {
					checkDirect(field, cl.Elts[i])
				}
			case byKey[field.Name()] != nil:
				checkDirect(field, byKey[field.Name()])
			case assigned[field] != nil:
				for _, rhs := range assigned[field].direct {
					checkDirect(field, rhs)
				}
			default:
				ds = append(ds, u.Diag(cl.Pos(),
					"Clone of %s does not copy field %s; every field must be cloned, copied, or annotated %s",
					typeName, field.Name(), SharedDirective))
			}
		}
		return true
	})
	return ds
}

// assignedField resolves an assignment target (or copy destination) to
// the struct field it stores into, unwrapping element writes:
// c.refs[i] = ... handles refs, *c.p = ... handles p. wrapped reports
// whether the write went through such an unwrap (an element write, not
// a whole-field copy).
func assignedField(info *types.Info, lhs ast.Expr) (v *types.Var, wrapped bool) {
	e := ast.Unparen(lhs)
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
			wrapped = true
			continue
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
			wrapped = true
			continue
		}
		break
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil, false
	}
	f, ok := s.Obj().(*types.Var)
	if !ok {
		return nil, false
	}
	return f, wrapped
}

// refFree reports whether values of t carry no references: assigning
// such a value copies it whole, so a direct field copy cannot alias.
// Strings are immutable and count as reference-free.
func refFree(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if !refFree(u.Field(i).Type()) {
				return false
			}
		}
		return true
	case *types.Array:
		return refFree(u.Elem())
	}
	return false
}
