package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// InvariantConfig tells the invariantcall analyzer where the guarded
// state and its checkers live. Package paths are suffix-matched so the
// analyzer also works inside test fixture modules.
type InvariantConfig struct {
	// SpecPkg is the package-path suffix holding the specification
	// type, e.g. "internal/spec".
	SpecPkg string
	// SpecType is the struct whose Field is the guarded action set.
	SpecType string
	// Field is the action-set field name.
	Field string
	// Checkers are the function names (in SpecPkg) that discharge the
	// paper's proof obligations; every exported mutator must reach all
	// of them.
	Checkers []string
	// GenBump is a method name (in SpecPkg) that records a committed
	// mutation of the guarded field — the generation bump that
	// invalidates compiled-program caches keyed on the specification
	// generation. Every exported mutator must reach it; empty disables
	// the check.
	GenBump string
}

// DefaultInvariantConfig guards Spec.actions with the operational
// NonCrossing (Section 5.2) and Growing (Section 5.3, Eq. 23) checks —
// the obligations the paper hands to a theorem prover, which the
// insert/delete operators of Definitions 3–4 must discharge — and with
// the bumpGeneration discipline the specexec program cache relies on:
// a mutator that commits without bumping the generation would leave
// stale compiled programs looking fresh.
var DefaultInvariantConfig = InvariantConfig{
	SpecPkg:  "internal/spec",
	SpecType: "Spec",
	Field:    "actions",
	Checkers: []string{"CheckNonCrossing", "CheckGrowing"},
	GenBump:  "bumpGeneration",
}

// funcFacts is what invariantcall records per function declaration.
type funcFacts struct {
	writesField bool            // assigns the guarded field directly
	checks      map[string]bool // checker names invoked directly
	calls       []string        // static callees inside the module
	pos         *ast.FuncDecl
	unit        *Unit
}

// NewInvariantCall builds the invariantcall analyzer: any exported
// function that (transitively) mutates the guarded action-set field
// must also (transitively) invoke every configured checker. The call
// graph is static — calls through function values or interfaces are
// not followed — which is exactly the discipline the spec package's
// insert/delete operators already obey.
func NewInvariantCall(cfg InvariantConfig) *Analyzer {
	a := &Analyzer{
		Name: "invariantcall",
		Doc:  "exported mutators of the spec action set must invoke the NonCrossing/Growing checkers and bump the spec generation",
	}
	a.RunModule = func(units []*Unit) []Diagnostic {
		modulePkgs := map[string]bool{}
		for _, u := range units {
			modulePkgs[u.Path] = true
		}
		checkerSet := map[string]bool{}
		for _, c := range cfg.Checkers {
			checkerSet[c] = true
		}
		if cfg.GenBump != "" {
			checkerSet[cfg.GenBump] = true
		}

		facts := map[string]*funcFacts{}
		for _, u := range units {
			for _, f := range u.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					fn, ok := u.Info.Defs[fd.Name].(*types.Func)
					if !ok {
						continue
					}
					ff := &funcFacts{checks: map[string]bool{}, pos: fd, unit: u}
					ast.Inspect(fd.Body, func(n ast.Node) bool {
						switch n := n.(type) {
						case *ast.AssignStmt:
							for _, lhs := range n.Lhs {
								if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok && isGuardedField(u.Info, sel, cfg) {
									ff.writesField = true
								}
							}
						case *ast.CallExpr:
							callee := calleeFunc(u.Info, n)
							if callee == nil || callee.Pkg() == nil {
								return true
							}
							if checkerSet[callee.Name()] && pathMatches(callee.Pkg().Path(), []string{cfg.SpecPkg}) {
								ff.checks[callee.Name()] = true
							}
							if modulePkgs[callee.Pkg().Path()] {
								ff.calls = append(ff.calls, callee.FullName())
							}
						}
						return true
					})
					facts[fn.FullName()] = ff
				}
			}
		}

		reaches := newReachability(facts)
		var ds []Diagnostic
		for key, ff := range facts {
			if !ff.pos.Name.IsExported() {
				continue
			}
			if !reaches.check(key, func(f *funcFacts) bool { return f.writesField }) {
				continue
			}
			var missing []string
			for _, checker := range cfg.Checkers {
				if !reaches.check(key, func(f *funcFacts) bool { return f.checks[checker] }) {
					missing = append(missing, checker)
				}
			}
			if len(missing) > 0 {
				ds = append(ds, ff.unit.Diag(ff.pos.Pos(),
					"exported %s mutates the %s.%s action set without invoking %s",
					ff.pos.Name.Name, cfg.SpecType, cfg.Field, strings.Join(missing, " and ")))
			}
			if cfg.GenBump != "" && !reaches.check(key, func(f *funcFacts) bool { return f.checks[cfg.GenBump] }) {
				ds = append(ds, ff.unit.Diag(ff.pos.Pos(),
					"exported %s mutates the %s.%s action set without bumping the spec generation (call %s)",
					ff.pos.Name.Name, cfg.SpecType, cfg.Field, cfg.GenBump))
			}
		}
		return ds
	}
	return a
}

// isGuardedField matches a selector of cfg.Field on cfg.SpecType in a
// package whose path ends with cfg.SpecPkg.
func isGuardedField(info *types.Info, sel *ast.SelectorExpr, cfg InvariantConfig) bool {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal || s.Obj().Name() != cfg.Field {
		return false
	}
	recv := s.Recv()
	if p, isPtr := recv.(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != cfg.SpecType || named.Obj().Pkg() == nil {
		return false
	}
	return pathMatches(named.Obj().Pkg().Path(), []string{cfg.SpecPkg})
}

// reachability memoizes "does some function reachable from key satisfy
// a predicate" queries over the static call graph.
type reachability struct {
	facts map[string]*funcFacts
}

func newReachability(facts map[string]*funcFacts) *reachability {
	return &reachability{facts: facts}
}

func (r *reachability) check(key string, pred func(*funcFacts) bool) bool {
	return r.dfs(key, pred, map[string]bool{})
}

func (r *reachability) dfs(key string, pred func(*funcFacts) bool, seen map[string]bool) bool {
	if seen[key] {
		return false
	}
	seen[key] = true
	ff, ok := r.facts[key]
	if !ok {
		return false
	}
	if pred(ff) {
		return true
	}
	for _, callee := range ff.calls {
		if r.dfs(callee, pred, seen) {
			return true
		}
	}
	return false
}
