// Package lint is the repository's domain-invariant static-analysis
// suite. It mirrors the golang.org/x/tools go/analysis architecture —
// analyzers receive a type-checked package and report position-tagged
// diagnostics — but is built entirely on the standard library's go/ast
// and go/types (the module carries no external dependencies, so the
// x/tools framework itself is off the table).
//
// The custom analyzers encode invariants of the reproduced paper that
// the compiler cannot check on its own:
//
//   - wallclock: NOW-relative semantics (Section 4.2) require every
//     semantic evaluation to take an explicit evaluation time, so the
//     ambient clock (time.Now and friends) is forbidden in semantic
//     packages; the obs.Clock seam is the only sanctioned source.
//   - atomicfield: the obs metric substrate is read concurrently from
//     scan paths, so a field accessed through sync/atomic anywhere
//     must be accessed atomically everywhere.
//   - invariantcall: every exported mutation of a specification's
//     action set must discharge the NonCrossing (Section 5.2) and
//     Growing (Section 5.3, Eq. 23) obligations.
//   - errwrap: error chains must stay inspectable (%w, no silently
//     discarded error results in internal/ and cmd/).
//
// Three further analyzers are flow-sensitive, built on the package's
// own CFG construction (cfg.go) and dataflow solver (dataflow.go):
//
//   - purity: functions marked //dimred:aggregate — the distributive
//     default aggregates Definition 6's Group_high folds in arbitrary
//     order — must not write package state, read the clock, or range
//     over maps, transitively over the module call graph.
//   - nowflow: a taint analysis ensuring every caltime.Day used as an
//     evaluation time descends from an explicit t/now parameter or
//     clock seam, never from a literal or ad-hoc construction.
//   - lockfield: a lockset analysis ensuring a struct field written
//     under a sync.Mutex/RWMutex is accessed under that mutex
//     everywhere (mutex-guarded complement of atomicfield).
//
// Two analyzers are interprocedural, built on a module-wide call graph
// (callgraph.go) with per-function escape summaries computed bottom-up
// in SCC order:
//
//   - snapalias: references derived from //dimred:immutable values —
//     getter returns, field reads, arguments, closure captures — must
//     never reach a write; the summaries carry the obligation across
//     function boundaries, where lockfield's store-site check cannot
//     see it.
//   - clonecheck: every field of a struct built inside a Clone method
//     must be provably cloned, copied by reference-free value, or
//     annotated //dimred:shared with a reason — a forgotten field
//     aliases state across the left-right publish boundary.
//
// Findings can be suppressed in source with a comment on the offending
// line or the line directly above it:
//
//	//dimred:allow <analyzer> <reason>
//
// The reason is mandatory; a bare allow comment suppresses nothing.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Diagnostic is one finding: a position, the analyzer that produced it
// and a human-readable message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Analyzer is one static-analysis pass. Exactly one of Run (invoked
// once per package) or RunModule (invoked once with every loaded
// package, for cross-package invariants) is set.
type Analyzer struct {
	Name string
	Doc  string
	// Run analyzes a single package.
	Run func(u *Unit) []Diagnostic
	// RunModule analyzes the whole loaded package set at once.
	RunModule func(us []*Unit) []Diagnostic
}

// Run executes the analyzers over the loaded units, drops findings
// suppressed by //dimred:allow comments, deduplicates identical
// findings (the CFG splices deferred calls into a dedicated defers
// block, so a sink inside a defer is visited twice), and returns the
// rest sorted by position.
func Run(units []*Unit, analyzers []*Analyzer) []Diagnostic {
	ds, _ := RunStats(units, analyzers)
	return ds
}

// AnalyzerStat records one analyzer's contribution to a run: its wall
// time and how many unique findings it produced, split into survivors
// and //dimred:allow-suppressed.
type AnalyzerStat struct {
	Name       string
	Elapsed    time.Duration
	Findings   int // unique findings surviving suppression
	Suppressed int // unique findings silenced by //dimred:allow
}

// RunStats is Run with per-analyzer statistics. The analyzers execute
// concurrently on a worker pool bounded by GOMAXPROCS — safe because
// units are read-only after Load and the shared interprocedural
// substrates (call graph, escape summaries, lock facts) are memoized
// behind mutexes — while results are collected per analyzer and folded
// in declaration order, so the output is byte-identical to a serial
// run.
func RunStats(units []*Unit, analyzers []*Analyzer) ([]Diagnostic, []AnalyzerStat) {
	allows := collectAllows(units)
	results := make([][]Diagnostic, len(analyzers))
	stats := make([]AnalyzerStat, len(analyzers))

	workers := min(len(analyzers), runtime.GOMAXPROCS(0))
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				a := analyzers[i]
				start := time.Now()
				var ds []Diagnostic
				if a.RunModule != nil {
					ds = a.RunModule(units)
				} else {
					for _, u := range units {
						ds = append(ds, a.Run(u)...)
					}
				}
				for j := range ds {
					ds[j].Analyzer = a.Name
				}
				results[i] = ds
				stats[i] = AnalyzerStat{Name: a.Name, Elapsed: time.Since(start)}
			}
		}()
	}
	for i := range analyzers {
		idx <- i
	}
	close(idx)
	wg.Wait()

	seen := map[Diagnostic]bool{}
	var kept []Diagnostic
	for i, ds := range results {
		for _, d := range ds {
			if seen[d] {
				continue
			}
			seen[d] = true
			if allows.covers(d) {
				stats[i].Suppressed++
				continue
			}
			stats[i].Findings++
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, stats
}

// allowSet records, per file and line, which analyzers an in-source
// //dimred:allow comment silences.
type allowSet map[string]map[int]map[string]bool

const allowPrefix = "//dimred:allow "

// Allow is one //dimred:allow directive found in the source tree, for
// the suppression audit (dimredlint -audit).
type Allow struct {
	Pos      token.Position
	Analyzer string
	Reason   string
}

// Audit returns every well-formed //dimred:allow directive in the
// loaded units, sorted by position. It is the basis of the
// suppression audit: each entry is a finding someone chose to silence,
// with the mandatory reason on record.
func Audit(units []*Unit) []Allow {
	var out []Allow
	for _, u := range units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, allowPrefix)
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						continue // a reason is mandatory
					}
					out = append(out, Allow{
						Pos:      u.Fset.Position(c.Pos()),
						Analyzer: fields[0],
						Reason:   strings.Join(fields[1:], " "),
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}

// AuditEscapes widens the audit to every reasoned escape hatch in the
// tree: //dimred:allow suppressions plus the analyzer-specific
// //dimred:detached (gospawn waives its join proof) and //dimred:replay
// (publishcheck waives post-publish writes) directives, each attributed
// to the analyzer it silences. Unlike plain allows these directives
// never suppress by line — the analyzers interpret them themselves —
// but they are the same kind of reviewed decision, so the suppression
// budget counts them.
func AuditEscapes(units []*Unit) []Allow {
	out := Audit(units)
	escapes := []struct{ directive, analyzer string }{
		{DetachedDirective, "gospawn"},
		{ReplayDirective, "publishcheck"},
	}
	for _, u := range units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, e := range escapes {
						rest, ok := strings.CutPrefix(c.Text, e.directive)
						if !ok || rest == "" || strings.TrimSpace(rest) == "" {
							continue
						}
						if rest[0] != ' ' && rest[0] != '\t' {
							continue // a longer directive name, not this one
						}
						out = append(out, Allow{
							Pos:      u.Fset.Position(c.Pos()),
							Analyzer: e.analyzer,
							Reason:   strings.TrimSpace(rest),
						})
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}

// collectAllows reduces the audit view to the per-line suppression
// lookup Run uses. A directive silences findings on its own line and
// on the line below (so it can sit either at the end of the offending
// line or on its own line above it).
func collectAllows(units []*Unit) allowSet {
	set := allowSet{}
	for _, al := range Audit(units) {
		byLine := set[al.Pos.Filename]
		if byLine == nil {
			byLine = map[int]map[string]bool{}
			set[al.Pos.Filename] = byLine
		}
		if byLine[al.Pos.Line] == nil {
			byLine[al.Pos.Line] = map[string]bool{}
		}
		byLine[al.Pos.Line][al.Analyzer] = true
	}
	return set
}

func (s allowSet) covers(d Diagnostic) bool {
	byLine := s[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	return byLine[d.Pos.Line][d.Analyzer] || byLine[d.Pos.Line-1][d.Analyzer]
}

// pathMatches reports whether a package import path is, or ends with,
// one of the given path suffixes ("internal/core" matches both
// "dimred/internal/core" and a test module's "x/internal/core").
func pathMatches(pkgPath string, suffixes []string) bool {
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// parentMap maps every node of the file to its syntactic parent.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	m := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			m[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return m
}
