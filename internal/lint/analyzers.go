package lint

// All returns every analyzer the dimredlint multichecker bundles, with
// the repository's default configuration: the domain-invariant passes
// (the dataflow-powered purity/nowflow/lockfield trio among them), the
// interprocedural call-graph passes (snapalias, clonecheck, and the
// concurrency-soundness wall of lockorder, gospawn and publishcheck),
// the directive hygiene pass (unknowndirective, fed every bundled
// analyzer name so it can validate //dimred:allow targets), plus the
// stdlib reimplementations of the x/tools nilness and shadow vet
// passes (the module deliberately carries no external dependencies, so
// the x/tools originals cannot be vendored).
func All() []*Analyzer {
	as := []*Analyzer{
		NewWallclock(DefaultWallclockRestricted),
		NewAtomicField(),
		NewInvariantCall(DefaultInvariantConfig),
		NewErrwrap(),
		NewPurity(),
		NewNowflow(DefaultNowflowRestricted),
		NewLockField(),
		NewSnapAlias(),
		NewCloneCheck(),
		NewLockOrder(),
		NewGoSpawn(),
		NewPublishCheck(),
		NewNilness(),
		NewShadow(),
	}
	names := make([]string, 0, len(as)+1)
	for _, a := range as {
		names = append(names, a.Name)
	}
	names = append(names, "unknowndirective")
	return append(as, NewUnknownDirective(names))
}
