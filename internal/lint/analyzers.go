package lint

// All returns every analyzer the dimredlint multichecker bundles, with
// the repository's default configuration: the domain-invariant passes
// (the dataflow-powered purity/nowflow/lockfield trio among them) plus
// the stdlib reimplementations of the x/tools nilness and shadow vet
// passes (the module deliberately carries no external dependencies, so
// the x/tools originals cannot be vendored).
func All() []*Analyzer {
	return []*Analyzer{
		NewWallclock(DefaultWallclockRestricted),
		NewAtomicField(),
		NewInvariantCall(DefaultInvariantConfig),
		NewErrwrap(),
		NewPurity(),
		NewNowflow(DefaultNowflowRestricted),
		NewLockField(),
		NewSnapAlias(),
		NewCloneCheck(),
		NewNilness(),
		NewShadow(),
	}
}
