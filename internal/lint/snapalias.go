package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// snapalias is the interprocedural escape analysis behind the epoch-
// snapshot publish boundary. lockfield's //dimred:immutable check flags
// direct stores to fields of a marked type; snapalias closes the gap
// that check leaves: a map, slice or pointer *derived* from a marked
// value (a getter's return, a field read, an argument passed down a
// call chain, a capture in a closure) aliases published state, and a
// write through the alias races with pinned lock-free readers just as
// surely as a direct field store.
//
// The analysis is summary-based. Every declared function gets an
// escape summary — which parameters it may write through, which
// parameters its results may alias, and whether a result may alias
// //dimred:immutable state — computed bottom-up over the module call
// graph in SCC order (mutually recursive functions iterate to a joint
// fixpoint). Within a function, a flow-insensitive origin analysis
// tags every variable with the parameters and marked types its value
// may derive from; function literals are analyzed as part of their
// enclosing declaration, so closure captures and goroutine bodies are
// covered.
//
// A write (assignment through a selector/index/dereference, inc/dec,
// the append/copy/delete/clear builtins, a call whose summary writes a
// parameter, or a method value bound to a receiver its method writes)
// is an offense when the written value derives from a marked type, and
// otherwise contributes to the enclosing function's writes-parameter
// summary so the offense surfaces at the call site that supplies the
// marked value.
//
// Derivation stops at struct fields annotated //dimred:shared: the
// annotation is a reviewed claim that the field's object is safe to
// mutate while shared (internally synchronized, or redirected before
// the writes happen). Mutations made through sync/atomic are invisible
// by construction — atomic methods are stdlib calls with no summary —
// which is exactly the sanctioned-mutation carve-out atomicfield
// polices. Dynamic calls (interface methods, untracked function
// values) are not followed, and aliases stored into unmarked heap
// objects are not tracked; those limits match the rest of the suite.

// escapeSummary is one function's interprocedural escape facts.
// Parameter bits: the receiver (when present) is bit 0 and parameters
// follow; without a receiver, parameters start at bit 0. Functions
// beyond 64 parameters fall off the analysis silently.
type escapeSummary struct {
	writesParam  uint64 // may write through the parameter
	returnsParam uint64 // a result may alias the parameter
	returnsImmut bool   // a result may alias //dimred:immutable state
	immutType    string // representative marked type, for diagnostics
}

// origin records what a value may derive from.
type origin struct {
	params    uint64
	immut     bool
	immutType string
}

func (o origin) or(p origin) origin {
	o.params |= p.params
	if p.immut && !o.immut {
		o.immut = true
		o.immutType = p.immutType
	}
	return o
}

func (o origin) empty() bool { return o.params == 0 && !o.immut }

// NewSnapAlias builds the snapalias analyzer.
func NewSnapAlias() *Analyzer {
	a := &Analyzer{
		Name: "snapalias",
		Doc: "references derived from " + ImmutableDirective + " values (returns, parameters, " +
			"closures) must never reach a write; published snapshots are read by lock-free pinned readers",
	}
	a.RunModule = func(units []*Unit) []Diagnostic {
		immutable := collectImmutableTypes(units)
		if len(immutable) == 0 {
			return nil
		}
		shared := collectSharedFields(units)
		cg := moduleCallGraph(units)
		summaries := escapeSummariesFor(units, immutable, shared)

		// Reporting pass with the final summaries.
		var ds []Diagnostic
		for _, key := range cg.keys {
			fa := newSnapAnalysis(cg.Nodes[key], immutable, shared, summaries)
			fa.report = true
			fa.run()
			ds = append(ds, fa.diags...)
		}
		return ds
	}
	return a
}

// computeEscapeSummaries runs the bottom-up summary fixpoint: callee
// SCCs first, each SCC iterated until its summaries stop growing. The
// marked set decides what "derives from published state" means —
// snapalias marks the //dimred:immutable types, publishcheck the types
// stored into an atomic.Pointer.
func computeEscapeSummaries(cg *CallGraph, marked map[string]bool, shared map[string]sharedField) map[string]*escapeSummary {
	summaries := map[string]*escapeSummary{}
	for _, scc := range cg.SCCs() {
		for changed := true; changed; {
			changed = false
			for _, key := range scc {
				fa := newSnapAnalysis(cg.Nodes[key], marked, shared, summaries)
				sum := fa.run()
				if old := summaries[key]; old == nil || *old != sum {
					summaries[key] = &sum
					changed = true
				}
			}
		}
	}
	return summaries
}

// escapeSummariesFor memoizes computeEscapeSummaries per (module,
// marked set): snapalias and gospawn share the //dimred:immutable set,
// so the fixpoint runs once for both even when the analyzers run
// concurrently.
var sumCache struct {
	mu       sync.Mutex
	key      *Unit
	byMarked map[string]map[string]*escapeSummary
}

func escapeSummariesFor(units []*Unit, marked map[string]bool, shared map[string]sharedField) map[string]*escapeSummary {
	if len(units) == 0 {
		return map[string]*escapeSummary{}
	}
	cg := moduleCallGraph(units)
	mk := markedKey(marked)
	sumCache.mu.Lock()
	defer sumCache.mu.Unlock()
	if sumCache.key != units[0] {
		sumCache.key = units[0]
		sumCache.byMarked = map[string]map[string]*escapeSummary{}
	}
	if s, ok := sumCache.byMarked[mk]; ok {
		return s
	}
	s := computeEscapeSummaries(cg, marked, shared)
	sumCache.byMarked[mk] = s
	return s
}

func markedKey(marked map[string]bool) string {
	keys := make([]string, 0, len(marked))
	for k := range marked {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

// snapAnalysis analyzes one function declaration.
type snapAnalysis struct {
	u         *Unit
	decl      *ast.FuncDecl
	immutable map[string]bool
	shared    map[string]sharedField
	summaries map[string]*escapeSummary
	report    bool
	// onWrite, when set, observes every marked-derived write instead of
	// emitting the default snapalias diagnostic (publishcheck renders
	// its own messages and applies its own flow-sensitivity).
	onWrite func(pos token.Pos, o origin, kind writeKind, opName string)

	state map[*types.Var]origin
	sum   escapeSummary
	diags []Diagnostic
}

func newSnapAnalysis(node *CGNode, immutable map[string]bool, shared map[string]sharedField, summaries map[string]*escapeSummary) *snapAnalysis {
	return &snapAnalysis{
		u:         node.Unit,
		decl:      node.Decl,
		immutable: immutable,
		shared:    shared,
		summaries: summaries,
		state:     map[*types.Var]origin{},
	}
}

func (fa *snapAnalysis) run() escapeSummary {
	fa.seedParams()
	for fa.propagate() {
	}
	fa.scanWrites()
	fa.scanReturns()
	return fa.sum
}

// seedParams assigns parameter bits (receiver first) and seeds each
// parameter's origin: its own bit, plus marked-type derivation when the
// parameter's type is (a pointer to) a //dimred:immutable type.
func (fa *snapAnalysis) seedParams() {
	bit := 0
	seedList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			n := len(field.Names)
			if n == 0 {
				n = 1 // unnamed parameter still occupies a position
			}
			for i := 0; i < n; i++ {
				if i < len(field.Names) {
					if v, ok := fa.u.Info.Defs[field.Names[i]].(*types.Var); ok && bit < 64 && !refFree(v.Type()) {
						o := origin{params: 1 << bit}
						fa.state[v] = o.or(fa.typeOrigin(v.Type()))
					}
				}
				bit++
			}
		}
	}
	seedList(fa.decl.Recv)
	seedList(fa.decl.Type.Params)
}

// propagate applies every assignment-like binding in the body once
// (function literals included) and reports whether any origin grew.
func (fa *snapAnalysis) propagate() bool {
	changed := false
	bind := func(lhs ast.Expr, o origin) {
		if o.empty() {
			return
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		v := fa.varOf(id)
		if v == nil {
			return
		}
		merged := fa.state[v].or(o)
		if merged != fa.state[v] {
			fa.state[v] = merged
			changed = true
		}
	}
	ast.Inspect(fa.decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i, lhs := range st.Lhs {
					bind(lhs, fa.exprOrigins(st.Rhs[i]))
				}
			} else if len(st.Rhs) == 1 {
				o := fa.exprOrigins(st.Rhs[0])
				for _, lhs := range st.Lhs {
					bind(lhs, o)
				}
			}
		case *ast.ValueSpec:
			if len(st.Names) == len(st.Values) {
				for i, name := range st.Names {
					bind(name, fa.exprOrigins(st.Values[i]))
				}
			} else if len(st.Values) == 1 {
				o := fa.exprOrigins(st.Values[0])
				for _, name := range st.Names {
					bind(name, o)
				}
			}
		case *ast.RangeStmt:
			o := fa.exprOrigins(st.X)
			if st.Key != nil {
				bind(st.Key, o)
			}
			if st.Value != nil {
				bind(st.Value, o)
			}
		}
		return true
	})
	return changed
}

// scanWrites finds every write in the body (function literals included)
// and classifies it: an offense when the written value derives from a
// marked type, a writes-parameter summary bit when it derives from a
// parameter.
func (fa *snapAnalysis) scanWrites() {
	// Selector identifiers consumed as call targets are calls, not
	// method values.
	calledSels := map[*ast.Ident]bool{}
	ast.Inspect(fa.decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				calledSels[sel.Sel] = true
			}
		}
		return true
	})

	ast.Inspect(fa.decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				fa.checkLValue(lhs)
			}
		case *ast.IncDecStmt:
			fa.checkLValue(x.X)
		case *ast.CallExpr:
			fa.checkCall(x)
		case *ast.SelectorExpr:
			// A method value binds its receiver; if the method writes
			// through it, the binding is as good as the write.
			if calledSels[x.Sel] {
				return true
			}
			sel := fa.u.Info.Selections[x]
			if sel == nil || sel.Kind() != types.MethodVal {
				return true
			}
			fn, ok := fa.u.Info.Uses[x.Sel].(*types.Func)
			if !ok {
				return true
			}
			if s := fa.summaries[fn.FullName()]; s != nil && s.writesParam&1 != 0 {
				fa.recordWrite(x.Pos(), fa.exprOrigins(x.X), writeMethodValue, fn.Name())
			}
		}
		return true
	})
}

// checkLValue treats an assignment target that reaches through a
// selector, index or dereference as a write to the container object.
// A plain identifier target only rebinds a variable.
func (fa *snapAnalysis) checkLValue(lhs ast.Expr) {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if sel := fa.u.Info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
			fa.recordWrite(x.Pos(), fa.exprOrigins(x.X), writeDirect, "")
		}
	case *ast.IndexExpr:
		fa.recordWrite(x.Pos(), fa.exprOrigins(x.X), writeDirect, "")
	case *ast.StarExpr:
		fa.recordWrite(x.Pos(), fa.exprOrigins(x.X), writeDirect, "")
	}
}

// checkCall applies callee write effects at a call site: mutating
// builtins write their first argument, and a summarized callee's
// writes-parameter bits map back to the receiver and argument
// expressions supplied here.
func (fa *snapAnalysis) checkCall(call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := fa.u.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append", "copy", "delete", "clear":
				if len(call.Args) > 0 {
					fa.recordWrite(call.Pos(), fa.exprOrigins(call.Args[0]), writeBuiltin, b.Name())
				}
			}
			return
		}
	}
	fn := calleeFunc(fa.u.Info, call)
	if fn == nil {
		return
	}
	s := fa.summaries[fn.FullName()]
	if s == nil || s.writesParam == 0 {
		return
	}
	for bit := 0; bit < 64; bit++ {
		if s.writesParam&(1<<bit) == 0 {
			continue
		}
		for _, arg := range callBitExprs(call, fn, bit) {
			fa.recordWrite(call.Pos(), fa.exprOrigins(arg), writeCall, fn.Name())
		}
	}
}

// writeKind classifies how a marked-derived value is mutated, so the
// two consumers of the write scan (snapalias, publishcheck) can render
// kind-appropriate messages.
type writeKind int

const (
	writeDirect      writeKind = iota // assignment/inc-dec through selector, index, deref
	writeBuiltin                      // append/copy/delete/clear
	writeCall                         // call whose summary writes the argument
	writeMethodValue                  // method value bound to a receiver its method writes
)

// writeMessage renders one marked-derived write for diagnostics.
func writeMessage(kind writeKind, opName, directive, typeName string) string {
	switch kind {
	case writeBuiltin:
		return fmt.Sprintf("%s on a value derived from %s type %s", opName, directive, typeName)
	case writeCall:
		return fmt.Sprintf("call to %s mutates a value derived from %s type %s", opName, directive, typeName)
	case writeMethodValue:
		return fmt.Sprintf("method value %s may write through a value derived from %s type %s", opName, directive, typeName)
	default:
		return fmt.Sprintf("write through a value derived from %s type %s", directive, typeName)
	}
}

// recordWrite classifies one write given the written value's origins:
// an offense when it derives from a marked type, a writes-parameter
// summary bit when it derives from a parameter.
func (fa *snapAnalysis) recordWrite(pos token.Pos, o origin, kind writeKind, opName string) {
	if o.immut {
		if fa.onWrite != nil {
			fa.onWrite(pos, o, kind, opName)
		} else if fa.report {
			fa.diags = append(fa.diags, fa.u.Diag(pos,
				"%s; published instances are read by lock-free pinned readers",
				writeMessage(kind, opName, ImmutableDirective, o.immutType)))
		}
		return
	}
	fa.sum.writesParam |= o.params
}

// scanReturns folds return-value origins into the summary. Returns
// inside function literals belong to the literal, not this function.
func (fa *snapAnalysis) scanReturns() {
	fold := func(o origin) {
		fa.sum.returnsParam |= o.params
		if o.immut && !fa.sum.returnsImmut {
			fa.sum.returnsImmut = true
			fa.sum.immutType = o.immutType
		}
	}
	inspectNoFuncLit(fa.decl.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(ret.Results) == 0 {
			// Bare return with named results: fold their tracked state.
			if res := fa.decl.Type.Results; res != nil {
				for _, field := range res.List {
					for _, name := range field.Names {
						if v, ok := fa.u.Info.Defs[name].(*types.Var); ok {
							fold(fa.state[v])
						}
					}
				}
			}
			return true
		}
		for _, e := range ret.Results {
			fold(fa.exprOrigins(e))
		}
		return true
	})
}

// exprOrigins computes what an expression's value may derive from.
// Values of reference-free types (ints, strings, structs and arrays of
// such) are copied, never aliased: they derive from nothing, however
// they were computed — this is what keeps a fresh slice of value ids
// drilled out of a marked structure from counting as the structure.
func (fa *snapAnalysis) exprOrigins(e ast.Expr) origin {
	if tv, ok := fa.u.Info.Types[e]; ok && tv.Type != nil && refFree(tv.Type) {
		return origin{}
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		v := fa.varOf(x)
		if v == nil {
			return origin{}
		}
		if o, tracked := fa.state[v]; tracked {
			return o
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			// Package-level variable: only its type can tell us anything.
			return fa.typeOrigin(v.Type())
		}
		return origin{}
	case *ast.SelectorExpr:
		sel := fa.u.Info.Selections[x]
		if sel == nil {
			// Qualified identifier (pkg.V).
			if v, ok := fa.u.Info.Uses[x.Sel].(*types.Var); ok {
				return fa.typeOrigin(v.Type())
			}
			return origin{}
		}
		if sel.Kind() != types.FieldVal {
			return origin{}
		}
		if _, key, ok := fieldOwnerKey(fa.u.Info, x); ok {
			if _, isShared := fa.shared[key]; isShared {
				return origin{} // derivation stops at a reviewed shared field
			}
		}
		return fa.exprOrigins(x.X).or(fa.typeOrigin(sel.Type()))
	case *ast.IndexExpr:
		return fa.exprOrigins(x.X).or(fa.exprTypeOrigin(e))
	case *ast.SliceExpr:
		return fa.exprOrigins(x.X)
	case *ast.StarExpr:
		return fa.exprOrigins(x.X).or(fa.exprTypeOrigin(e))
	case *ast.UnaryExpr:
		switch x.Op {
		case token.AND:
			return fa.exprOrigins(x.X)
		case token.ARROW:
			return fa.exprTypeOrigin(e)
		}
		return origin{}
	case *ast.TypeAssertExpr:
		return fa.exprOrigins(x.X).or(fa.exprTypeOrigin(e))
	case *ast.CallExpr:
		return fa.callOrigins(x)
	case *ast.CompositeLit:
		return origin{} // fresh allocation: nothing published yet
	}
	return origin{}
}

// callOrigins computes a call result's origins from the callee summary
// (which arguments the results may alias), the special append builtin
// (its result aliases every argument), conversions (which preserve
// aliasing), and the result type itself.
func (fa *snapAnalysis) callOrigins(call *ast.CallExpr) origin {
	var o origin
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := fa.u.Info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" {
				for _, a := range call.Args {
					o = o.or(fa.exprOrigins(a))
				}
			}
			return o
		}
	}
	if tv, ok := fa.u.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		// Conversion: pointer/slice conversions preserve aliasing.
		return fa.exprOrigins(call.Args[0]).or(fa.exprTypeOrigin(call))
	}
	if fn := calleeFunc(fa.u.Info, call); fn != nil {
		if s := fa.summaries[fn.FullName()]; s != nil {
			for bit := 0; bit < 64 && s.returnsParam>>bit != 0; bit++ {
				if s.returnsParam&(1<<bit) == 0 {
					continue
				}
				for _, arg := range callBitExprs(call, fn, bit) {
					o = o.or(fa.exprOrigins(arg))
				}
			}
			if s.returnsImmut {
				o = o.or(origin{immut: true, immutType: s.immutType})
			}
		}
	}
	return o.or(fa.exprTypeOrigin(call))
}

// exprTypeOrigin is typeOrigin over an expression's static type.
func (fa *snapAnalysis) exprTypeOrigin(e ast.Expr) origin {
	if tv, ok := fa.u.Info.Types[e]; ok && tv.Type != nil {
		return fa.typeOrigin(tv.Type)
	}
	return origin{}
}

// typeOrigin reports marked-type derivation from a static type: a
// value typed as (a pointer to) a //dimred:immutable type aliases
// published state wherever it came from. Tuples derive when any
// element does.
func (fa *snapAnalysis) typeOrigin(t types.Type) origin {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if o := fa.typeOrigin(tup.At(i).Type()); o.immut {
				return o
			}
		}
		return origin{}
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return origin{}
	}
	if fa.immutable[named.Obj().Pkg().Path()+"."+named.Obj().Name()] {
		return origin{immut: true, immutType: named.Obj().Name()}
	}
	return origin{}
}

func (fa *snapAnalysis) varOf(id *ast.Ident) *types.Var {
	if v, ok := fa.u.Info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := fa.u.Info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// callBitExprs maps a summary parameter bit back to the expressions
// supplied for it at a call site: the receiver expression for bit 0 of
// a method, the matching argument otherwise, and every trailing
// argument for a variadic final parameter.
func callBitExprs(call *ast.CallExpr, fn *types.Func, bit int) []ast.Expr {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	off := 0
	if sig.Recv() != nil {
		if bit == 0 {
			if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
				return []ast.Expr{sel.X}
			}
			return nil
		}
		off = 1
	}
	i := bit - off
	np := sig.Params().Len()
	if i < 0 || i >= np {
		return nil
	}
	if sig.Variadic() && i == np-1 {
		if i < len(call.Args) {
			return call.Args[i:]
		}
		return nil
	}
	if i < len(call.Args) {
		return []ast.Expr{call.Args[i]}
	}
	return nil
}
