package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewNilness builds the nilness analyzer, a dependency-free cut of
// x/tools' SSA-based nilness pass covering its highest-signal shape:
// inside a branch that has just established `x == nil` (or the else
// arm of `x != nil`), any dereference of x — field selection through a
// pointer, slice/array indexing, star deref, call of a nil function,
// or method call on a nil interface — is a guaranteed panic.
// The scan stops at the first reassignment of x inside the branch.
func NewNilness() *Analyzer {
	a := &Analyzer{
		Name: "nilness",
		Doc:  "flag guaranteed nil dereferences inside nil-check branches",
	}
	a.Run = func(u *Unit) []Diagnostic {
		var ds []Diagnostic
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ifs, ok := n.(*ast.IfStmt)
				if !ok {
					return true
				}
				id, op := nilComparison(u.Info, ifs.Cond)
				if id == nil {
					return true
				}
				obj, ok := u.Info.Uses[id].(*types.Var)
				if !ok {
					return true
				}
				var body *ast.BlockStmt
				switch {
				case op == token.EQL:
					body = ifs.Body
				case op == token.NEQ:
					body, _ = ifs.Else.(*ast.BlockStmt)
				}
				if body == nil {
					return true
				}
				ds = append(ds, derefsWhileNil(u, body, obj)...)
				return true
			})
		}
		return ds
	}
	return a
}

// nilComparison matches `x == nil`, `nil == x`, `x != nil`, `nil != x`
// where x is a plain identifier of a nilable type.
func nilComparison(info *types.Info, cond ast.Expr) (*ast.Ident, token.Token) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return nil, token.ILLEGAL
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	if info.Types[y].IsNil() {
		if id, ok := x.(*ast.Ident); ok {
			return id, bin.Op
		}
	}
	if info.Types[x].IsNil() {
		if id, ok := y.(*ast.Ident); ok {
			return id, bin.Op
		}
	}
	return nil, token.ILLEGAL
}

// derefsWhileNil reports dereferences of obj within body that occur
// before any reassignment of obj.
func derefsWhileNil(u *Unit, body *ast.BlockStmt, obj *types.Var) []Diagnostic {
	var ds []Diagnostic
	reassigned := token.Pos(-1)
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && u.Info.Uses[id] == obj {
					if reassigned < 0 || as.Pos() < reassigned {
						reassigned = as.Pos()
					}
				}
			}
		}
		// Taking the address of obj may repoint it through an alias;
		// treat it like a reassignment from that point on.
		if un, ok := n.(*ast.UnaryExpr); ok && un.Op == token.AND {
			if id, ok := ast.Unparen(un.X).(*ast.Ident); ok && u.Info.Uses[id] == obj {
				if reassigned < 0 || un.Pos() < reassigned {
					reassigned = un.Pos()
				}
			}
		}
		return true
	})
	live := func(pos token.Pos) bool { return reassigned < 0 || pos < reassigned }

	isObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && u.Info.Uses[id] == obj
	}
	t := obj.Type().Underlying()
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if !isObj(n.X) || !live(n.Pos()) {
				return true
			}
			switch t.(type) {
			case *types.Pointer:
				ds = append(ds, u.Diag(n.Pos(), "field or method access on %s, which is nil here", obj.Name()))
			case *types.Interface:
				if sel, ok := u.Info.Selections[n]; ok && sel.Kind() == types.MethodVal {
					ds = append(ds, u.Diag(n.Pos(), "method call on %s, which is a nil interface here", obj.Name()))
				}
			}
		case *ast.IndexExpr:
			if !isObj(n.X) || !live(n.Pos()) {
				return true
			}
			switch t.(type) {
			case *types.Slice, *types.Pointer, *types.Array:
				ds = append(ds, u.Diag(n.Pos(), "index of %s, which is nil here", obj.Name()))
			}
		case *ast.StarExpr:
			if isObj(n.X) && live(n.Pos()) {
				if _, ok := t.(*types.Pointer); ok {
					ds = append(ds, u.Diag(n.Pos(), "dereference of %s, which is nil here", obj.Name()))
				}
			}
		case *ast.CallExpr:
			if isObj(n.Fun) && live(n.Pos()) {
				if _, ok := t.(*types.Signature); ok {
					ds = append(ds, u.Diag(n.Pos(), "call of %s, which is a nil function here", obj.Name()))
				}
			}
		}
		return true
	})
	return ds
}
