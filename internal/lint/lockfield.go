package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// ImmutableDirective marks a struct type whose instances are published
// to lock-free readers (the warehouse's epoch snapshots): after
// construction, no field of the type may ever be written. The lockfield
// analyzer flags every write to a field of a marked type whose base
// object is not provably a fresh, unshared allocation — mutating a
// published instance would race with readers that pinned it without
// taking any lock.
const ImmutableDirective = "//dimred:immutable"

// NewLockField builds the lockfield analyzer: mutex-discipline
// checking for the engine's shared state, closing the gap atomicfield
// leaves for fields guarded by a sync.Mutex/RWMutex instead of
// sync/atomic.
//
// The analysis runs a forward lockset dataflow (which mutex fields
// are held, and at what strength, at each program point) over the CFG
// of every function in the module, then infers guards: a field
// written while a write lock on a mutex of the *same* struct is held
// is considered guarded by that mutex. Every other access to a
// guarded field must then hold the guard — at write strength for
// writes, at least read strength (RLock) for reads.
//
// Conventions and exemptions:
//
//   - methods whose name ends in "Locked" are callee-side annotated:
//     their bodies assume every mutex field of the receiver is held
//     (the caller's obligation), and every *call* to such a method
//     must hold those mutexes at least at read strength;
//   - accesses through a local variable that reaching-definitions
//     proves freshly allocated in this function (x := T{...},
//     x := &T{...}, x := new(T), var x T) are exempt: nothing else
//     can see the object yet, so constructors stay lock-free;
//   - deferred Unlock/RUnlock calls take effect on the function's
//     exit paths (the CFG's defers block), so a Lock at the top plus
//     a deferred Unlock holds for the whole body;
//   - function literals are opaque (a goroutine body has its own
//     control flow); locks taken or released inside one are not seen;
//   - types marked //dimred:immutable in their doc comment are
//     frozen after construction: any write to their fields outside a
//     fresh allocation is flagged, no lock excuses it — holding a
//     writer lock does not help readers that pin such objects without
//     one.
func NewLockField() *Analyzer {
	a := &Analyzer{
		Name: "lockfield",
		Doc: "a struct field written under a sync.Mutex/RWMutex Lock must be accessed " +
			"under that lock everywhere (reads may hold RLock)",
	}
	a.RunModule = func(units []*Unit) []Diagnostic {
		immutable := collectImmutableTypes(units)
		lf := collectLockFacts(units)
		accesses, guards := lf.accesses, lf.guards

		// Every non-exempt access to a guarded field must
		// hold one of its guards at the required strength, and no
		// non-exempt write may touch an immutable type at all.
		var ds []Diagnostic
		for _, a := range accesses {
			if a.write && !a.exempt && immutable[a.owner] {
				ds = append(ds, a.unit.Diag(a.pos,
					"write to field %s of %s-marked type %s outside its construction; "+
						"published instances are read by lock-free pinned readers",
					a.key, ImmutableDirective, shortOwner(a.owner)))
			}
		}
		for _, a := range accesses {
			gs := guards[a.key]
			if len(gs) == 0 || a.exempt {
				continue
			}
			need := lockRead
			verb := "read"
			if a.write {
				need = lockWrite
				verb = "write"
			}
			ok := false
			for lock := range gs {
				if a.locks[lock] >= need {
					ok = true
					break
				}
			}
			if !ok {
				ds = append(ds, a.unit.Diag(a.pos,
					"%s of field %s without holding %s, which guards it elsewhere in the module",
					verb, a.key, guardNames(gs, a.owner)))
			}
		}
		for _, c := range lf.lockedCalls {
			var missing []string
			for _, lock := range lf.ownerMutexes[c.owner] {
				if c.locks[lock] < lockRead {
					missing = append(missing, lock)
				}
			}
			if len(missing) > 0 {
				sort.Strings(missing)
				ds = append(ds, c.unit.Diag(c.pos,
					"call to %s (the Locked suffix asserts the caller holds the receiver's locks) without holding %s",
					c.name, shortLockList(missing, c.owner)))
			}
		}
		return ds
	}
	return a
}

const (
	lockRead  = 1
	lockWrite = 2
)

// lockSet maps mutex field keys to the strength held.
type lockSet map[string]int

func (s lockSet) clone() lockSet {
	c := make(lockSet, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// lockMeet intersects two locksets at the weaker strength: a lock is
// held after a merge only if held on every incoming path.
func lockMeet(a, b lockSet) lockSet {
	c := lockSet{}
	for k, v := range a {
		if bv, ok := b[k]; ok {
			if bv < v {
				v = bv
			}
			c[k] = v
		}
	}
	return c
}

func lockSetEqual(a, b lockSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// lockFacts is the module-wide lockset evidence three analyzers share:
// lockfield consumes the field accesses and inferred guards, lockorder
// the acquisition and held-call events, gospawn the guards (a goroutine
// body must hold a guarded field's guard itself). Computed once per
// module; the cache mirrors cgCache.
type lockFacts struct {
	ownerMutexes map[string][]string
	accesses     []lockAccess
	lockedCalls  []lockedCall
	acquires     []lockAcquire
	heldCalls    []heldCall
	guards       map[string]map[string]bool
}

var lockFactsCache struct {
	mu    sync.Mutex
	key   *Unit
	facts *lockFacts
}

// collectLockFacts runs the per-function lockset dataflow over every
// declaration in the module and memoizes the result.
func collectLockFacts(units []*Unit) *lockFacts {
	if len(units) == 0 {
		return &lockFacts{guards: map[string]map[string]bool{}}
	}
	lockFactsCache.mu.Lock()
	defer lockFactsCache.mu.Unlock()
	if lockFactsCache.key == units[0] {
		return lockFactsCache.facts
	}
	modulePkgs := map[string]bool{}
	for _, u := range units {
		modulePkgs[u.Path] = true
	}
	lf := &lockFacts{ownerMutexes: collectOwnerMutexes(units)}
	for _, u := range units {
		for _, f := range u.Files {
			parents := parentMap(f)
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				la := &lockAnalysis{u: u, fd: fd, body: fd.Body, parents: parents,
					ownerMutexes: lf.ownerMutexes, modulePkgs: modulePkgs}
				la.run()
				lf.accesses = append(lf.accesses, la.accesses...)
				lf.lockedCalls = append(lf.lockedCalls, la.lockedCalls...)
				lf.acquires = append(lf.acquires, la.acquires...)
				lf.heldCalls = append(lf.heldCalls, la.heldCalls...)
			}
		}
	}
	lf.guards = inferGuards(lf.accesses)
	lockFactsCache.key, lockFactsCache.facts = units[0], lf
	return lf
}

// collectOwnerMutexes maps each module struct (pkg.Type) to its mutex
// field keys, the basis of the *Locked convention.
func collectOwnerMutexes(units []*Unit) map[string][]string {
	ownerMutexes := map[string][]string{}
	for _, u := range units {
		scope := u.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			owner := u.Pkg.Path() + "." + tn.Name()
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if isMutexType(f.Type()) {
					ownerMutexes[owner] = append(ownerMutexes[owner], owner+"."+f.Name())
				}
			}
		}
	}
	return ownerMutexes
}

// inferGuards derives the guarded-field map: a field is guarded by a
// mutex of its own struct that is write-held at some non-exempt write.
func inferGuards(accesses []lockAccess) map[string]map[string]bool {
	guards := map[string]map[string]bool{}
	for _, a := range accesses {
		if !a.write || a.exempt {
			continue
		}
		for lock, level := range a.locks {
			if level >= lockWrite && strings.HasPrefix(lock, a.owner+".") {
				if guards[a.key] == nil {
					guards[a.key] = map[string]bool{}
				}
				guards[a.key][lock] = true
			}
		}
	}
	return guards
}

// lockAccess is one field access with its lock context.
type lockAccess struct {
	unit   *Unit
	pos    token.Pos
	key    string // pkg.Type.field
	owner  string // pkg.Type
	write  bool
	exempt bool // base object freshly allocated in this function
	locks  lockSet
}

// lockedCall is a call to a *Locked-suffixed method.
type lockedCall struct {
	unit  *Unit
	pos   token.Pos
	name  string
	owner string
	locks lockSet
}

// lockAcquire is one Lock/RLock on a mutex field, with the locks
// already held when it executes — one potential edge of lockorder's
// lock-acquisition graph.
type lockAcquire struct {
	unit *Unit
	pos  token.Pos
	key  string
	held lockSet
}

// heldCall is a call to a module-internal function made with at least
// one mutex field held; lockorder closes it against the callee's
// may-acquire summary.
type heldCall struct {
	unit   *Unit
	pos    token.Pos
	callee string // types.Func.FullName
	held   lockSet
}

type lockAnalysis struct {
	u            *Unit
	fd           *ast.FuncDecl // nil when analyzing a bare body (goroutine literal)
	body         *ast.BlockStmt
	parents      map[ast.Node]ast.Node
	ownerMutexes map[string][]string
	modulePkgs   map[string]bool

	g         *CFG
	rd        *ReachingDefs
	recording bool // final pass: log acquire/held-call events

	accesses    []lockAccess
	lockedCalls []lockedCall
	acquires    []lockAcquire
	heldCalls   []heldCall
}

func (la *lockAnalysis) run() {
	la.g = BuildCFG(la.body)

	boundary := lockSet{}
	if la.fd != nil && strings.HasSuffix(la.fd.Name.Name, "Locked") {
		if owner := receiverOwner(la.u, la.fd); owner != "" {
			for _, lock := range la.ownerMutexes[owner] {
				boundary[lock] = lockWrite
			}
		}
	}

	in := Solve(la.g, Problem[lockSet]{
		Dir:      Forward,
		Boundary: boundary,
		Merge:    lockMeet,
		Equal:    lockSetEqual,
		Transfer: func(b *Block, in lockSet) lockSet {
			cur := in.clone()
			for _, n := range b.Nodes {
				la.transfer(b, n, cur)
			}
			return cur
		},
	})

	la.recording = true
	for _, blk := range la.g.Blocks {
		facts, ok := in[blk]
		if !ok {
			continue // unreachable
		}
		cur := facts.clone()
		for _, n := range blk.Nodes {
			if blk.Kind != "defers" {
				la.scanNode(blk, n, cur)
			}
			la.transfer(blk, n, cur)
		}
	}
	la.recording = false
}

// transfer applies the lock operations a node performs, mutating set.
// Deferred calls act in the defers block, not where they appear.
func (la *lockAnalysis) transfer(blk *Block, n ast.Node, set lockSet) {
	if d, ok := n.(*ast.DeferStmt); ok {
		if blk.Kind == "defers" {
			la.applyLockOp(d.Call, set)
		}
		return
	}
	for _, part := range shallowParts(n) {
		inspectNoFuncLit(part, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				la.applyLockOp(call, set)
			}
			return true
		})
	}
}

// mutexOp classifies call as a Lock/RLock/Unlock/RUnlock on a mutex
// struct field, returning the field key and the operation name.
func mutexOp(info *types.Info, call *ast.CallExpr) (key, op string, ok bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	base, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	key, isField := fieldKey(info, base)
	if !isField || !isMutexType(info.Selections[base].Type()) {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return key, fn.Name(), true
	}
	return "", "", false
}

// applyLockOp interprets call if it is a Lock/RLock/Unlock/RUnlock on
// a mutex struct field.
func (la *lockAnalysis) applyLockOp(call *ast.CallExpr, set lockSet) {
	key, op, ok := mutexOp(la.u.Info, call)
	if !ok {
		return
	}
	switch op {
	case "Lock":
		if la.recording {
			la.acquires = append(la.acquires, lockAcquire{
				unit: la.u, pos: call.Pos(), key: key, held: set.clone(),
			})
		}
		set[key] = lockWrite
	case "RLock":
		if la.recording {
			la.acquires = append(la.acquires, lockAcquire{
				unit: la.u, pos: call.Pos(), key: key, held: set.clone(),
			})
		}
		if set[key] < lockRead {
			set[key] = lockRead
		}
	case "Unlock", "RUnlock":
		delete(set, key)
	}
}

// scanNode records the field accesses and *Locked calls in one node
// under the current lockset.
func (la *lockAnalysis) scanNode(blk *Block, n ast.Node, set lockSet) {
	for _, part := range shallowParts(n) {
		inspectNoFuncLit(part, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.SelectorExpr:
				la.recordAccess(blk, x, set)
			case *ast.CallExpr:
				la.recordLockedCall(x, set)
				la.recordHeldCall(x, set)
			}
			return true
		})
	}
}

// recordHeldCall logs a module-internal call made with locks held —
// the raw material of lockorder's interprocedural edges.
func (la *lockAnalysis) recordHeldCall(call *ast.CallExpr, set lockSet) {
	if len(set) == 0 {
		return
	}
	fn := calleeFunc(la.u.Info, call)
	if fn == nil || fn.Pkg() == nil || !la.modulePkgs[fn.Pkg().Path()] {
		return
	}
	la.heldCalls = append(la.heldCalls, heldCall{
		unit: la.u, pos: call.Pos(), callee: fn.FullName(), held: set.clone(),
	})
}

func (la *lockAnalysis) recordAccess(blk *Block, sel *ast.SelectorExpr, set lockSet) {
	owner, key, ok := fieldOwnerKey(la.u.Info, sel)
	if !ok {
		return
	}
	if isMutexType(la.u.Info.Selections[sel].Type()) {
		return // the mutex itself is operated, not guarded
	}
	la.accesses = append(la.accesses, lockAccess{
		unit:   la.u,
		pos:    sel.Pos(),
		key:    key,
		owner:  owner,
		write:  isWriteContext(la.parents, sel),
		exempt: la.freshBase(blk, sel),
		locks:  set.clone(),
	})
}

func (la *lockAnalysis) recordLockedCall(call *ast.CallExpr, set lockSet) {
	fn := calleeFunc(la.u.Info, call)
	if fn == nil || !strings.HasSuffix(fn.Name(), "Locked") {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	owner := namedOwner(sig.Recv().Type())
	if owner == "" || len(la.ownerMutexes[owner]) == 0 {
		return
	}
	la.lockedCalls = append(la.lockedCalls, lockedCall{
		unit:  la.u,
		pos:   call.Pos(),
		name:  fn.Name(),
		owner: owner,
		locks: set.clone(),
	})
}

// freshBase reports whether the root of sel's base chain is a local
// variable all of whose reaching definitions are fresh allocations —
// the object cannot be shared yet, so lock discipline does not apply.
func (la *lockAnalysis) freshBase(blk *Block, sel *ast.SelectorExpr) bool {
	e := ast.Expr(sel)
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
			continue
		case *ast.IndexExpr:
			e = x.X
			continue
		case *ast.StarExpr:
			e = x.X
			continue
		case *ast.Ident:
			v, _ := la.u.Info.Uses[x].(*types.Var)
			if v == nil {
				if dv, ok := la.u.Info.Defs[x].(*types.Var); ok {
					v = dv
				}
			}
			if v == nil {
				return false
			}
			if la.rd == nil {
				la.rd = NewReachingDefs(la.u.Info, la.fd, la.g)
			}
			at := enclosingBlockNode(blk, sel)
			defs := la.rd.DefsAt(la.u.Info, blk, at, v)
			if len(defs) == 0 {
				return false // untracked (package var, closure) or dead
			}
			for _, d := range defs {
				if !freshDef(d) {
					return false
				}
			}
			return true
		default:
			return false
		}
	}
}

// enclosingBlockNode finds the top-level node of blk that contains n,
// so reaching definitions can replay the block up to it.
func enclosingBlockNode(blk *Block, n ast.Node) ast.Node {
	for _, bn := range blk.Nodes {
		if containsNode(bn, n) {
			return bn
		}
	}
	return nil
}

// freshDef reports whether a definition provably yields a freshly
// allocated, unshared object: x := T{...}, x := &T{...}, x := new(T),
// or a zero-value var declaration.
func freshDef(d Def) bool {
	if d.Rhs == nil {
		if _, isDecl := d.Node.(*ast.DeclStmt); isDecl {
			return true // var x T with no initializer
		}
		return false // parameter, range binding, multi-assign
	}
	switch rhs := ast.Unparen(d.Rhs).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if rhs.Op != token.AND {
			return false
		}
		_, isLit := ast.Unparen(rhs.X).(*ast.CompositeLit)
		return isLit
	case *ast.CallExpr:
		if id, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// isWriteContext reports whether sel is written: an assignment LHS, an
// inc/dec operand, or has its address taken (conservatively a write).
func isWriteContext(parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	switch p := skipParens(parents, sel).(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == ast.Expr(sel) {
				return true
			}
		}
	case *ast.IncDecStmt:
		return ast.Unparen(p.X) == ast.Expr(sel)
	case *ast.UnaryExpr:
		return p.Op == token.AND
	}
	return false
}

// fieldOwnerKey is fieldKey plus the owning struct's key.
func fieldOwnerKey(info *types.Info, sel *ast.SelectorExpr) (owner, key string, ok bool) {
	s, found := info.Selections[sel]
	if !found || s.Kind() != types.FieldVal {
		return "", "", false
	}
	owner = namedOwner(s.Recv())
	if owner == "" {
		return "", "", false
	}
	return owner, owner + "." + s.Obj().Name(), true
}

// namedOwner renders a (possibly pointer-to) named type as pkg.Type.
func namedOwner(t types.Type) string {
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// receiverOwner returns the pkg.Type key of fd's receiver, or "".
func receiverOwner(u *Unit, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	tv, ok := u.Info.Types[fd.Recv.List[0].Type]
	if !ok {
		return ""
	}
	return namedOwner(tv.Type)
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex
// (possibly behind a pointer).
func isMutexType(t types.Type) bool {
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	return tn.Pkg() != nil && tn.Pkg().Path() == "sync" &&
		(tn.Name() == "Mutex" || tn.Name() == "RWMutex")
}

// guardNames renders a guard set (or, with nil gs, nothing) for
// diagnostics, trimming the shared owner prefix for readability.
func guardNames(gs map[string]bool, owner string) string {
	var names []string
	for g := range gs {
		names = append(names, strings.TrimPrefix(g, ownerPkgPrefix(owner)))
	}
	sort.Strings(names)
	return strings.Join(names, " or ")
}

func shortLockList(locks []string, owner string) string {
	var names []string
	for _, l := range locks {
		names = append(names, strings.TrimPrefix(l, ownerPkgPrefix(owner)))
	}
	return strings.Join(names, " and ")
}

// ownerPkgPrefix strips pkg path from pkg.Type, leaving "Type." as the
// prefix diagnostics keep.
func ownerPkgPrefix(owner string) string {
	if i := strings.LastIndex(owner, "."); i >= 0 {
		return owner[:i+1]
	}
	return ""
}

// shortOwner renders pkg.Type as just Type for diagnostics.
func shortOwner(owner string) string {
	if i := strings.LastIndex(owner, "."); i >= 0 {
		return owner[i+1:]
	}
	return owner
}

// docHasDirective reports whether a doc comment contains the directive
// as a full comment line.
func docHasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}
