package lint_test

import (
	"testing"

	"dimred/internal/lint"
	"dimred/internal/lint/linttest"
)

// TestPublishCheckDirect: the atomic.Pointer store is the publish
// boundary — building the value before the store is legal, any write
// after it (direct store, builtin, inc/dec, alias, deferred call) is
// flagged, and flow merges are may-published.
func TestPublishCheckDirect(t *testing.T) {
	linttest.Run(t, []*lint.Analyzer{lint.NewPublishCheck()}, map[string]string{
		"lib/lib.go": `package lib

import "sync/atomic"

type snap struct {
	rows map[string]int
	n    int
}

type W struct {
	cur atomic.Pointer[snap]
}

// Build fills the snapshot before publishing: legal.
func (w *W) Build() {
	next := &snap{rows: map[string]int{}}
	next.rows["k"] = 1
	next.n = 7
	w.cur.Store(next)
}

// BadPost writes into the value it just published.
func (w *W) BadPost() {
	next := &snap{rows: map[string]int{}}
	w.cur.Store(next)
	next.rows["k"] = 1 // want "write into a snap value after its atomic.Pointer publish"
}

// BadAlias writes through an alias taken before the publish.
func (w *W) BadAlias() {
	next := &snap{rows: map[string]int{}}
	rows := next.rows
	w.cur.Store(next)
	delete(rows, "k") // want "write into a snap value after its atomic.Pointer publish"
}

// BadBranch publishes on one branch only; the merge is may-published.
func (w *W) BadBranch(flag bool) {
	next := &snap{rows: map[string]int{}}
	if flag {
		w.cur.Store(next)
	}
	next.n++ // want "write into a snap value after its atomic.Pointer publish"
}

// BadSwap publishes via Swap.
func (w *W) BadSwap() {
	next := &snap{}
	_ = w.cur.Swap(next)
	next.n = 1 // want "write into a snap value after its atomic.Pointer publish"
}

// BadCAS publishes via CompareAndSwap; the new value is the second
// argument.
func (w *W) BadCAS(old *snap) {
	next := &snap{}
	if w.cur.CompareAndSwap(old, next) {
		next.n = 1 // want "write into a snap value after its atomic.Pointer publish"
	}
}

// FreshAfter publishes, then builds a different value: legal.
func (w *W) FreshAfter() {
	w.cur.Store(&snap{})
	other := &snap{rows: map[string]int{}}
	other.rows["k"] = 1
}
`,
	})
}

// TestPublishCheckInterprocedural: a post-publish call whose escape
// summary writes the published argument is the same offense at the call
// site; //dimred:replay on the callee (the sanctioned replay path) or on
// the publisher itself waives it. Deferred mutations run after every
// publish on the path.
func TestPublishCheckInterprocedural(t *testing.T) {
	linttest.Run(t, []*lint.Analyzer{lint.NewPublishCheck()}, map[string]string{
		"lib/lib.go": `package lib

import "sync/atomic"

type snap struct {
	rows map[string]int
}

type W struct {
	cur atomic.Pointer[snap]
}

func fill(s *snap) { s.rows["z"] = 9 }

// replayInto is the sanctioned replay path.
//
//dimred:replay the standby side absorbs the same ops before the next swap
func replayInto(s *snap) { s.rows["z"] = 9 }

// BadViaCall hands the published value to a writer.
func (w *W) BadViaCall() {
	next := &snap{rows: map[string]int{}}
	w.cur.Store(next)
	fill(next) // want "call to fill mutates a snap value after its atomic.Pointer publish"
}

// ReplayCallee is clean: the callee carries the replay annotation.
func (w *W) ReplayCallee() {
	next := &snap{rows: map[string]int{}}
	w.cur.Store(next)
	replayInto(next)
}

// commit is exempt end to end: the publisher itself is the annotated
// replay path.
//
//dimred:replay commit replays pending ops into the standby copy
func (w *W) commit() {
	next := &snap{rows: map[string]int{}}
	w.cur.Store(next)
	next.rows["k"] = 1
}

// BadDeferred mutates in a deferred call, which runs post-publish.
func (w *W) BadDeferred() {
	next := &snap{rows: map[string]int{}}
	defer fill(next) // want "call to fill mutates a snap value after its atomic.Pointer publish"
	w.cur.Store(next)
}

// PreCall is legal: the writer runs before the publish.
func (w *W) PreCall() {
	next := &snap{rows: map[string]int{}}
	fill(next)
	w.cur.Store(next)
}
`,
	})
}

// TestPublishCheckPublishViaHelper: the publish may live in a module
// callee — the caller is gated from the call onward — and a value typed
// as a published type (the retired snapshot a swap helper returns) is
// published state by origin, not just by identity with a publish
// argument. Writes into the publisher's own unpublished state stay
// legal.
func TestPublishCheckPublishViaHelper(t *testing.T) {
	linttest.Run(t, []*lint.Analyzer{lint.NewPublishCheck()}, map[string]string{
		"lib/lib.go": `package lib

import "sync/atomic"

type snap struct {
	rows map[string]int
	n    int
}

type metrics struct{ rebuilds int }

type W struct {
	cur     atomic.Pointer[snap]
	working *snap
	met     metrics
}

func fill(s *snap) { s.rows["z"] = 9 }

// swap publishes the working side and returns the retired snapshot.
func (w *W) swap() *snap {
	old := w.cur.Load()
	w.cur.Store(w.working)
	return old
}

// BadCommit writes into the retired snapshot after the helper's publish.
func (w *W) BadCommit() {
	retired := w.swap()
	retired.n = 1 // want "write into a snap value after its atomic.Pointer publish"
}

// BadCommitCall hands the retired snapshot to a writer after the
// helper's publish.
func (w *W) BadCommitCall() {
	retired := w.swap()
	fill(retired) // want "call to fill mutates a snap value after its atomic.Pointer publish"
}

// Replayer mirrors the left-right commit: annotated, so its replay into
// the retired side is sanctioned end to end.
//
//dimred:replay fixture stand-in for the drained-reader replay of the left-right protocol
func (w *W) Replayer() {
	retired := w.swap()
	retired.n = 1
}

// MetricsAfter is clean: post-publish writes land in the publisher's own
// metrics, not in published state.
func (w *W) MetricsAfter() {
	w.swap()
	w.met.rebuilds++
}

// BeforeHelper is clean: the write precedes the publishing call.
func (w *W) BeforeHelper() {
	w.working.n = 2
	w.swap()
}
`,
	})
}
