package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Unit is one loaded, parsed and type-checked package.
type Unit struct {
	Path  string // import path
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Diag builds a diagnostic at pos. The analyzer name is filled in by
// the driver.
func (u *Unit) Diag(pos token.Pos, format string, args ...any) Diagnostic {
	return Diagnostic{Pos: u.Fset.Position(pos), Message: fmt.Sprintf(format, args...)}
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load lists, parses and type-checks the packages matched by patterns
// in the module rooted at (or containing) dir. It shells out to
// `go list -export -deps -json`, which compiles dependencies and hands
// back export-data files; imports are then resolved through the gc
// importer, so only the matched packages themselves are type-checked
// from source. Test files are not loaded: the invariants the analyzers
// encode live in the production tree.
func Load(dir string, patterns ...string) ([]*Unit, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly,Standard,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list: %w\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("lint: go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			pkg := p
			targets = append(targets, &pkg)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var units []*Unit
	for _, p := range targets {
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: typecheck %s: %w", p.ImportPath, err)
		}
		units = append(units, &Unit{Path: p.ImportPath, Fset: fset, Files: files, Pkg: pkg, Info: info})
	}
	return units, nil
}
