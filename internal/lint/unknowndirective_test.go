package lint_test

import (
	"strings"
	"testing"

	"dimred/internal/lint"
	"dimred/internal/lint/linttest"
)

func newUnknownDirective() *lint.Analyzer {
	var names []string
	for _, a := range lint.All() {
		names = append(names, a.Name)
	}
	return lint.NewUnknownDirective(names)
}

// TestUnknownDirectiveNames exercises the registry lookup: misspelled
// directives are flagged with a did-you-mean suggestion, and every
// registered directive in its proper position stays silent.
func TestUnknownDirectiveNames(t *testing.T) {
	linttest.Run(t, []*lint.Analyzer{newUnknownDirective()}, map[string]string{
		"lib/lib.go": `package lib

import "sync"

// Snap is published.
//
//dimred:immutable
type Snap struct {
	//dimred:shared the map is frozen after construction
	Rows map[string]int
}

// Fold folds.
//
//dimred:aggregate
func Fold(a, b int) int { return a + b }

// Bad is misspelled.
//
//dimred:immutible // want "unknown directive //dimred:immutible; did you mean //dimred:immutable\\?"
type Bad struct{ N int }

// Share is misspelled.
type Share struct {
	Rows map[string]int //dimred:share fine reason // want "unknown directive //dimred:share; did you mean //dimred:shared\\?"
}

func spawn(wg *sync.WaitGroup) {
	wg.Add(1)
	//dimred:detached fixture goroutine lives for the process
	go loop()
	//dimred:detachd forever // want "unknown directive //dimred:detachd; did you mean //dimred:detached\\?"
	go loop()
}

func loop() {}
`,
	})
}

// TestUnknownDirectiveContexts: a well-spelled directive on the wrong
// node kind has no effect, so it is flagged with the position where it
// would have one.
func TestUnknownDirectiveContexts(t *testing.T) {
	linttest.Run(t, []*lint.Analyzer{newUnknownDirective()}, map[string]string{
		"lib/lib.go": `package lib

// Alias is not a struct, and immutable only reads struct docs.
//
//dimred:immutable // want "//dimred:immutable has no effect here; it must be a struct type's doc comment" "//dimred:immutable takes no argument"
type Alias = map[string]int

// Fold carries a field directive.
//
//dimred:shared misplaced reason // want "//dimred:shared has no effect here; it must be a struct field's doc or line comment"
func Fold(a, b int) int { return a + b }

// S carries a func directive.
//
//dimred:aggregate // want "//dimred:aggregate has no effect here; it must be a function's doc comment" "//dimred:aggregate takes no argument"
type S struct{ N int }

//dimred:detached not actually above a go statement // want "//dimred:detached has no effect here; it must be a go statement's line or the line directly above it"
var x = 1

//dimred:replay replays outside any function doc // want "//dimred:replay has no effect here; it must be a function's doc comment"
var y = 2
`,
	})
}

// TestUnknownDirectiveArgs pins the argument validation on cases where
// a trailing want-comment would distort the directive's own argument
// text: empty and whitespace-only reasons, multi-line reasons, bare and
// misdirected allows, duplicate directives.
func TestUnknownDirectiveArgs(t *testing.T) {
	diags := linttest.Diagnostics(t, []*lint.Analyzer{newUnknownDirective()}, map[string]string{
		"lib/lib.go": "package lib\n\n" +
			"import \"sync\"\n\n" +
			"func spawn(wg *sync.WaitGroup) {\n" +
			"\twg.Add(1)\n" +
			"\t//dimred:detached\n" + // empty reason
			"\tgo loop()\n" +
			"\t//dimred:detached \t \n" + // whitespace-only reason
			"\tgo loop()\n" +
			"\t//dimred:detached\n" + // a reason on the go line's own comment does not attach
			"\tgo loop() // because the workers drain at exit\n" +
			"}\n\n" +
			"func loop() {}\n\n" +
			"//dimred:allow\n" + // bare allow suppresses nothing
			"var a = 1\n\n" +
			"//dimred:allow wallclock\n" + // missing reason
			"var b = 2\n\n" +
			"//dimred:allow nosuchanalyzer the reason is fine\n" +
			"var c = 3\n\n" +
			"// D doc.\n" +
			"//\n" +
			"//dimred:aggregate with trailing text\n" +
			"func D(x, y int) int { return x + y }\n\n" +
			"// E doc.\n" +
			"//\n" +
			"//dimred:aggregate\n" +
			"//dimred:aggregate\n" + // duplicate on one declaration
			"func E(x, y int) int { return x + y }\n",
	})
	wants := []string{
		"//dimred:detached is missing the mandatory reason",
		"//dimred:detached is missing the mandatory reason",
		"//dimred:detached is missing the mandatory reason",
		"//dimred:allow suppresses nothing without '<analyzer> <reason>'",
		"//dimred:allow wallclock is missing the mandatory reason",
		"names unknown analyzer \"nosuchanalyzer\"",
		"//dimred:aggregate takes no argument",
		"duplicate //dimred:aggregate on one declaration",
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Message)
	}
	if len(got) != len(wants) {
		t.Fatalf("got %d findings, want %d:\n%s", len(got), len(wants), strings.Join(got, "\n"))
	}
	for i, w := range wants {
		if !strings.Contains(got[i], w) {
			t.Errorf("finding %d = %q, want containing %q", i, got[i], w)
		}
	}
}

// TestUnknownDirectiveSharedReasonOwnership: a reasonless shared
// directive is clonecheck's finding, not unknowndirective's — exactly
// one analyzer reports each defect.
func TestUnknownDirectiveSharedReasonOwnership(t *testing.T) {
	files := map[string]string{
		"lib/lib.go": `package lib

type S struct {
	//dimred:shared
	Rows map[string]int
}

// Clone copies S.
func (s *S) Clone() *S {
	return &S{Rows: s.Rows}
}
`,
	}
	if ds := linttest.Diagnostics(t, []*lint.Analyzer{newUnknownDirective()}, files); len(ds) != 0 {
		t.Errorf("unknowndirective reported %d findings on a reasonless shared, want 0 (clonecheck owns it): %v", len(ds), ds)
	}
	ds := linttest.Diagnostics(t, []*lint.Analyzer{lint.NewCloneCheck()}, files)
	found := false
	for _, d := range ds {
		if strings.Contains(d.Message, "missing the mandatory reason") {
			found = true
		}
	}
	if !found {
		t.Errorf("clonecheck did not flag the reasonless shared: %v", ds)
	}
}
