package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"sync"
)

// This file builds the module-wide call graph the interprocedural
// analyzers (snapalias, clonecheck, purity) share. Nodes are the
// function and method declarations of the loaded units, keyed by
// types.Func.FullName(); edges are the module-internal functions a body
// references. Three reference forms produce edges:
//
//   - direct calls (f(x), recv.M(x)), resolved through types.Info.Uses;
//   - method values and function values (g := recv.M; hof(f)) — the
//     referenced function runs eventually, so its effects belong in the
//     caller's closure;
//   - calls and references inside function literals, attributed to the
//     enclosing declaration: a closure is part of the function that
//     builds it, whether it runs inline, deferred, or on a goroutine.
//
// Dynamic dispatch (interface methods, calls through untracked function
// values) stays invisible, matching the rest of the suite: summaries
// over such edges would be vacuous anyway, and the engine's hot paths
// are monomorphic.

// CGNode is one declared function in the module call graph.
type CGNode struct {
	Unit  *Unit
	Decl  *ast.FuncDecl
	Fn    *types.Func
	Calls []string // FullNames of referenced module functions, deduped, sorted
}

// CallGraph is the module-wide static call graph.
type CallGraph struct {
	Nodes map[string]*CGNode
	keys  []string // sorted node keys, for deterministic traversal
}

// BuildCallGraph constructs the call graph over every function declared
// in the loaded units.
func BuildCallGraph(units []*Unit) *CallGraph {
	modulePkgs := map[string]bool{}
	for _, u := range units {
		modulePkgs[u.Path] = true
	}

	cg := &CallGraph{Nodes: map[string]*CGNode{}}
	for _, u := range units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := u.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &CGNode{Unit: u, Decl: fd, Fn: fn}
				node.Calls = referencedFuncs(u.Info, fd.Body, modulePkgs)
				cg.Nodes[fn.FullName()] = node
			}
		}
	}
	for k := range cg.Nodes {
		cg.keys = append(cg.keys, k)
	}
	sort.Strings(cg.keys)
	return cg
}

// Six analyzers (purity, snapalias, clonecheck, lockorder, gospawn,
// publishcheck) walk the same graph, and the parallel runner may ask
// for it concurrently, so one lint run builds it once. Units are never
// mutated after Load, which makes memoization sound; the cache keys on
// the leading unit (unique per Load) and remembers only the latest
// module, so scratch test modules do not accumulate.
var cgCache struct {
	mu    sync.Mutex
	key   *Unit
	graph *CallGraph
}

// moduleCallGraph returns the (memoized) call graph for a loaded unit
// set.
func moduleCallGraph(units []*Unit) *CallGraph {
	if len(units) == 0 {
		return &CallGraph{Nodes: map[string]*CGNode{}}
	}
	cgCache.mu.Lock()
	defer cgCache.mu.Unlock()
	if cgCache.key == units[0] {
		return cgCache.graph
	}
	g := BuildCallGraph(units)
	cgCache.key, cgCache.graph = units[0], g
	return g
}

// referencedFuncs collects the FullNames of module-internal functions a
// body references: call targets plus method/function values. Function
// literals are descended into — their references belong to the
// enclosing declaration.
func referencedFuncs(info *types.Info, body *ast.BlockStmt, modulePkgs map[string]bool) []string {
	set := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := info.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil || !modulePkgs[fn.Pkg().Path()] {
			return true
		}
		set[fn.FullName()] = true
		return true
	})
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SCCs returns the graph's strongly connected components in bottom-up
// (callee-first) order: every edge out of a component lands in an
// earlier one, so summaries computed in emission order see their
// callees' summaries already final (mutually recursive functions share
// a component and iterate to a joint fixpoint). The order is
// deterministic: Tarjan's algorithm, roots visited in sorted key order.
func (cg *CallGraph) SCCs() [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true

		for _, w := range cg.Nodes[v].Calls {
			if _, isNode := cg.Nodes[w]; !isNode {
				continue // external or dynamic: no summary to order
			}
			if _, visited := index[w]; !visited {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}

		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Strings(scc)
			sccs = append(sccs, scc)
		}
	}

	for _, k := range cg.keys {
		if _, visited := index[k]; !visited {
			strongconnect(k)
		}
	}
	return sccs
}
