package lint

import (
	"strings"
	"testing"
)

// TestDirectiveRegistry pins the registry's internal consistency: the
// directive constants the analyzers match against must agree with the
// registry names, every entry must be renderable in a finding, and the
// reason-ownership escape (shared → clonecheck) must point at a real
// analyzer.
func TestDirectiveRegistry(t *testing.T) {
	analyzerNames := map[string]bool{}
	for _, a := range All() {
		analyzerNames[a.Name] = true
	}

	seen := map[string]bool{}
	for _, spec := range knownDirectives {
		if spec.name == "" || strings.ContainsAny(spec.name, " \t") {
			t.Errorf("registry entry %q: names must be single tokens", spec.name)
		}
		if seen[spec.name] {
			t.Errorf("duplicate registry entry %q", spec.name)
		}
		seen[spec.name] = true
		if len(spec.contexts) == 0 {
			t.Errorf("//dimred:%s has no valid context", spec.name)
		}
		if spec.where == "" {
			t.Errorf("//dimred:%s has no position description for findings", spec.name)
		}
		if spec.reasonOwner != "" {
			if !spec.wantsReason {
				t.Errorf("//dimred:%s has a reason owner but wants no reason", spec.name)
			}
			if !analyzerNames[spec.reasonOwner] {
				t.Errorf("//dimred:%s reason owner %q is not a registered analyzer", spec.name, spec.reasonOwner)
			}
		}
		if directiveByName(spec.name) == nil {
			t.Errorf("directiveByName(%q) = nil", spec.name)
		}
	}

	// The constants the consuming analyzers match with must round-trip
	// through the registry, or the two views of "known" drift apart.
	for directive, name := range map[string]string{
		ImmutableDirective:             "immutable",
		SharedDirective:                "shared",
		AggregateDirective:             "aggregate",
		DetachedDirective:              "detached",
		ReplayDirective:                "replay",
		strings.TrimSpace(allowPrefix): "allow",
	} {
		if directive != directivePrefix+name {
			t.Errorf("directive constant %q does not match registry name %q", directive, name)
		}
		if directiveByName(name) == nil {
			t.Errorf("constant %q has no registry entry %q", directive, name)
		}
	}

	if directiveByName("immutible") != nil {
		t.Error("directiveByName accepted a misspelling")
	}
	if s := closestDirective("immutible"); s != "immutable" {
		t.Errorf("closestDirective(immutible) = %q, want immutable", s)
	}
	if s := closestDirective("zzzzz"); s != "" {
		t.Errorf("closestDirective(zzzzz) = %q, want no suggestion", s)
	}
}
