package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AggregateDirective marks a function as a distributive default
// aggregate in the sense of the paper's Definition 6: Group_high may
// fold partial results in any association and any order, so the
// marked function — and everything it (statically) calls — must be
// referentially transparent. The purity analyzer enforces three
// concrete obligations over that transitive closure:
//
//   - no writes to package-level state (including writes through a
//     pointer that reaching-definitions shows aliases a package var);
//   - no ambient wall clock (time.Now/Since/Tick, or the obs.Clock
//     seam — an aggregate's value may not depend on when it runs);
//   - no iteration over a map (Go randomizes map order, so any
//     order-sensitive fold over a map is nondeterministic; iterate a
//     sorted slice instead).
//
// Purity is inferred over the module call graph (callgraph.go): the
// closure follows direct calls, calls made inside function literals,
// and referenced method/function values, so a sort.Slice comparator or
// a stored callback no longer hides an impurity. Dynamic dispatch
// through interfaces remains invisible, matching invariantcall.
const AggregateDirective = "//dimred:aggregate"

// purityFacts is what the purity analyzer records per function.
type purityFacts struct {
	unit     *Unit
	decl     *ast.FuncDecl
	marked   bool
	offenses []purityOffense
}

type purityOffense struct {
	unit *Unit
	node ast.Node
	desc string
}

// NewPurity builds the purity analyzer.
func NewPurity() *Analyzer {
	a := &Analyzer{
		Name: "purity",
		Doc: "functions marked " + AggregateDirective + " (distributive aggregates, Def. 6) must not " +
			"write package state, read the clock, or range over maps — transitively",
	}
	a.RunModule = func(units []*Unit) []Diagnostic {
		cg := moduleCallGraph(units)

		facts := map[string]*purityFacts{}
		var roots []string
		for _, key := range cg.keys {
			node := cg.Nodes[key]
			pf := collectPurityFacts(node.Unit, node.Decl)
			facts[key] = pf
			if pf.marked {
				roots = append(roots, key)
			}
		}
		sort.Strings(roots)

		// For each marked root, walk the static call graph and report
		// every offense in its closure. An offense site reachable from
		// several roots is reported once, blamed on the first root in
		// sorted order.
		reported := map[ast.Node]bool{}
		var ds []Diagnostic
		for _, root := range roots {
			rootName := facts[root].decl.Name.Name
			seen := map[string]bool{}
			var walk func(key string)
			walk = func(key string) {
				if seen[key] {
					return
				}
				seen[key] = true
				pf, ok := facts[key]
				if !ok {
					return
				}
				for _, off := range pf.offenses {
					if reported[off.node] {
						continue
					}
					reported[off.node] = true
					if key == root {
						ds = append(ds, off.unit.Diag(off.node.Pos(),
							"aggregate function %s %s; distributive aggregates (Def. 6) must be pure",
							rootName, off.desc))
					} else {
						ds = append(ds, off.unit.Diag(off.node.Pos(),
							"%s %s; it is reachable from aggregate function %s and must be pure (Def. 6)",
							pf.decl.Name.Name, off.desc, rootName))
					}
				}
				for _, callee := range cg.Nodes[key].Calls {
					walk(callee)
				}
			}
			walk(root)
		}
		return ds
	}
	return a
}

// hasDirective reports whether a function declaration's doc comment
// carries the given marker directive.
func hasDirective(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// collectPurityFacts gathers one function's purity offenses. Function
// literals are scanned as part of their enclosing declaration — the
// call graph attributes a closure's calls to the function that builds
// it, so its direct effects must count here too. The pointer-aliasing
// check (*p = x against reaching definitions) stays limited to the
// declaration's own body: the CFG does not model closure control flow.
func collectPurityFacts(u *Unit, fd *ast.FuncDecl) *purityFacts {
	pf := &purityFacts{unit: u, decl: fd, marked: hasDirective(fd, AggregateDirective)}

	// Reaching definitions are built on demand, only when the body
	// contains a write through a pointer dereference.
	var rd *ReachingDefs
	var cfg *CFG
	reach := func() *ReachingDefs {
		if rd == nil {
			cfg = BuildCFG(fd.Body)
			rd = NewReachingDefs(u.Info, fd, cfg)
		}
		return rd
	}
	blockOf := func(n ast.Node) *Block {
		for _, blk := range cfg.Blocks {
			for _, bn := range blk.Nodes {
				if containsNode(bn, n) {
					return blk
				}
			}
		}
		return nil
	}

	offend := func(n ast.Node, desc string) {
		pf.offenses = append(pf.offenses, purityOffense{unit: u, node: n, desc: desc})
	}
	checkWrite := func(lhs ast.Expr, stmt ast.Node, inClosure bool) {
		lhs = ast.Unparen(lhs)
		if star, ok := lhs.(*ast.StarExpr); ok {
			if inClosure {
				return // no CFG inside a closure: skip the alias check
			}
			// *p = x: consult reaching definitions of p; flag only
			// when a reaching def provably aliases a package var.
			id, ok := ast.Unparen(star.X).(*ast.Ident)
			if !ok {
				return
			}
			v, _ := u.Info.Uses[id].(*types.Var)
			if v == nil {
				return
			}
			r := reach()
			blk := blockOf(stmt)
			if blk == nil {
				return
			}
			for _, def := range r.DefsAt(u.Info, blk, stmt, v) {
				if def.Rhs == nil {
					continue
				}
				if un, ok := ast.Unparen(def.Rhs).(*ast.UnaryExpr); ok && un.Op == token.AND {
					if pv := packageLevelBase(u.Info, un.X); pv != nil {
						offend(stmt, "writes package variable "+pv.Name()+" through a pointer")
						return
					}
				}
			}
			return
		}
		if pv := packageLevelBase(u.Info, lhs); pv != nil {
			offend(stmt, "writes package variable "+pv.Name())
		}
	}

	// scanBody visits one function body's own nodes, then recurses into
	// its directly nested function literals with inClosure set: a
	// closure's direct effects belong to the declaration that builds
	// it, matching the call graph's attribution of its calls.
	var scanBody func(body ast.Node, inClosure bool)
	scanBody = func(body ast.Node, inClosure bool) {
		inspectNoFuncLit(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkWrite(lhs, n, inClosure)
				}
			case *ast.IncDecStmt:
				checkWrite(n.X, n, inClosure)
			case *ast.RangeStmt:
				if tv, ok := u.Info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						offend(n, "ranges over a map (iteration order is randomized)")
					}
				}
			case *ast.CallExpr:
				fn := calleeFunc(u.Info, n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				pkgPath := fn.Pkg().Path()
				if pkgPath == "time" && forbiddenTimeFuncs[fn.Name()] {
					offend(n, "calls time."+fn.Name())
				}
				if pathMatches(pkgPath, []string{"internal/obs"}) && (fn.Name() == "Now" || fn.Name() == "Since") {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
						offend(n, "reads the clock via obs."+fn.Name())
					}
				}
			}
			return true
		})
		ast.Inspect(body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok && n != body {
				scanBody(fl.Body, true)
				return false
			}
			return true
		})
	}
	scanBody(fd.Body, false)
	return pf
}

// packageLevelBase resolves the root identifier of an lvalue chain
// (v, v.f, v[i], v.f[i].g, ...) and returns it when it names a
// package-level variable; nil otherwise.
func packageLevelBase(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := info.Uses[x].(*types.Var)
			if v != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v
			}
			return nil
		case *ast.SelectorExpr:
			// Qualified package var (pkg.V) or field chain (v.f).
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					v, _ := info.Uses[x.Sel].(*types.Var)
					if v != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
						return v
					}
					return nil
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// containsNode reports whether needle is root or a descendant of root.
func containsNode(root, needle ast.Node) bool {
	if root == needle {
		return true
	}
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == needle {
			found = true
		}
		return !found
	})
	return found
}
