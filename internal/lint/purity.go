package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AggregateDirective marks a function as a distributive default
// aggregate in the sense of the paper's Definition 6: Group_high may
// fold partial results in any association and any order, so the
// marked function — and everything it (statically) calls — must be
// referentially transparent. The purity analyzer enforces three
// concrete obligations over that transitive closure:
//
//   - no writes to package-level state (including writes through a
//     pointer that reaching-definitions shows aliases a package var);
//   - no ambient wall clock (time.Now/Since/Tick, or the obs.Clock
//     seam — an aggregate's value may not depend on when it runs);
//   - no iteration over a map (Go randomizes map order, so any
//     order-sensitive fold over a map is nondeterministic; iterate a
//     sorted slice instead).
//
// The call graph is static: calls through function values and
// interface methods are not followed, matching invariantcall.
const AggregateDirective = "//dimred:aggregate"

// purityFacts is what the purity analyzer records per function.
type purityFacts struct {
	unit     *Unit
	decl     *ast.FuncDecl
	marked   bool
	calls    []string // static module-internal callees, FullName
	offenses []purityOffense
}

type purityOffense struct {
	unit *Unit
	node ast.Node
	desc string
}

// NewPurity builds the purity analyzer.
func NewPurity() *Analyzer {
	a := &Analyzer{
		Name: "purity",
		Doc: "functions marked " + AggregateDirective + " (distributive aggregates, Def. 6) must not " +
			"write package state, read the clock, or range over maps — transitively",
	}
	a.RunModule = func(units []*Unit) []Diagnostic {
		modulePkgs := map[string]bool{}
		for _, u := range units {
			modulePkgs[u.Path] = true
		}

		facts := map[string]*purityFacts{}
		var roots []string
		for _, u := range units {
			for _, f := range u.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					fn, ok := u.Info.Defs[fd.Name].(*types.Func)
					if !ok {
						continue
					}
					pf := collectPurityFacts(u, fd, modulePkgs)
					facts[fn.FullName()] = pf
					if pf.marked {
						roots = append(roots, fn.FullName())
					}
				}
			}
		}
		sort.Strings(roots)

		// For each marked root, walk the static call graph and report
		// every offense in its closure. An offense site reachable from
		// several roots is reported once, blamed on the first root in
		// sorted order.
		reported := map[ast.Node]bool{}
		var ds []Diagnostic
		for _, root := range roots {
			rootName := facts[root].decl.Name.Name
			seen := map[string]bool{}
			var walk func(key string)
			walk = func(key string) {
				if seen[key] {
					return
				}
				seen[key] = true
				pf, ok := facts[key]
				if !ok {
					return
				}
				for _, off := range pf.offenses {
					if reported[off.node] {
						continue
					}
					reported[off.node] = true
					if key == root {
						ds = append(ds, off.unit.Diag(off.node.Pos(),
							"aggregate function %s %s; distributive aggregates (Def. 6) must be pure",
							rootName, off.desc))
					} else {
						ds = append(ds, off.unit.Diag(off.node.Pos(),
							"%s %s; it is reachable from aggregate function %s and must be pure (Def. 6)",
							pf.decl.Name.Name, off.desc, rootName))
					}
				}
				for _, callee := range pf.calls {
					walk(callee)
				}
			}
			walk(root)
		}
		return ds
	}
	return a
}

// hasDirective reports whether a function declaration's doc comment
// carries the given marker directive.
func hasDirective(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// collectPurityFacts gathers one function's calls and purity offenses.
// Function literals are opaque: effects inside a closure belong to the
// closure, which the static call graph does not follow anyway.
func collectPurityFacts(u *Unit, fd *ast.FuncDecl, modulePkgs map[string]bool) *purityFacts {
	pf := &purityFacts{unit: u, decl: fd, marked: hasDirective(fd, AggregateDirective)}

	// Reaching definitions are built on demand, only when the body
	// contains a write through a pointer dereference.
	var rd *ReachingDefs
	var cfg *CFG
	reach := func() *ReachingDefs {
		if rd == nil {
			cfg = BuildCFG(fd.Body)
			rd = NewReachingDefs(u.Info, fd, cfg)
		}
		return rd
	}
	blockOf := func(n ast.Node) *Block {
		for _, blk := range cfg.Blocks {
			for _, bn := range blk.Nodes {
				if containsNode(bn, n) {
					return blk
				}
			}
		}
		return nil
	}

	offend := func(n ast.Node, desc string) {
		pf.offenses = append(pf.offenses, purityOffense{unit: u, node: n, desc: desc})
	}
	checkWrite := func(lhs ast.Expr, stmt ast.Node) {
		lhs = ast.Unparen(lhs)
		if star, ok := lhs.(*ast.StarExpr); ok {
			// *p = x: consult reaching definitions of p; flag only
			// when a reaching def provably aliases a package var.
			id, ok := ast.Unparen(star.X).(*ast.Ident)
			if !ok {
				return
			}
			v, _ := u.Info.Uses[id].(*types.Var)
			if v == nil {
				return
			}
			r := reach()
			blk := blockOf(stmt)
			if blk == nil {
				return
			}
			for _, def := range r.DefsAt(u.Info, blk, stmt, v) {
				if def.Rhs == nil {
					continue
				}
				if un, ok := ast.Unparen(def.Rhs).(*ast.UnaryExpr); ok && un.Op == token.AND {
					if pv := packageLevelBase(u.Info, un.X); pv != nil {
						offend(stmt, "writes package variable "+pv.Name()+" through a pointer")
						return
					}
				}
			}
			return
		}
		if pv := packageLevelBase(u.Info, lhs); pv != nil {
			offend(stmt, "writes package variable "+pv.Name())
		}
	}

	inspectNoFuncLit(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(lhs, n)
			}
		case *ast.IncDecStmt:
			checkWrite(n.X, n)
		case *ast.RangeStmt:
			if tv, ok := u.Info.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					offend(n, "ranges over a map (iteration order is randomized)")
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(u.Info, n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			pkgPath := fn.Pkg().Path()
			if pkgPath == "time" && forbiddenTimeFuncs[fn.Name()] {
				offend(n, "calls time."+fn.Name())
			}
			if pathMatches(pkgPath, []string{"internal/obs"}) && (fn.Name() == "Now" || fn.Name() == "Since") {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					offend(n, "reads the clock via obs."+fn.Name())
				}
			}
			if modulePkgs[pkgPath] {
				pf.calls = append(pf.calls, fn.FullName())
			}
		}
		return true
	})
	return pf
}

// packageLevelBase resolves the root identifier of an lvalue chain
// (v, v.f, v[i], v.f[i].g, ...) and returns it when it names a
// package-level variable; nil otherwise.
func packageLevelBase(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := info.Uses[x].(*types.Var)
			if v != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v
			}
			return nil
		case *ast.SelectorExpr:
			// Qualified package var (pkg.V) or field chain (v.f).
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					v, _ := info.Uses[x.Sel].(*types.Var)
					if v != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
						return v
					}
					return nil
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// containsNode reports whether needle is root or a descendant of root.
func containsNode(root, needle ast.Node) bool {
	if root == needle {
		return true
	}
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == needle {
			found = true
		}
		return !found
	})
	return found
}
