package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// NewErrwrap builds the errwrap analyzer:
//
//   - a fmt.Errorf call whose arguments include an error but whose
//     format string has no %w verb breaks the error chain (errors.Is /
//     errors.As stop working) — flagged everywhere;
//   - an expression statement that drops a function's error result is
//     flagged in internal/ and cmd/ packages. The fmt print family and
//     writes to strings.Builder / bytes.Buffer are exempt — print-path
//     errors are unactionable diagnostics output, and the builders are
//     documented to never fail; anything else needs an explicit `_ =`
//     or a //dimred:allow.
func NewErrwrap() *Analyzer {
	a := &Analyzer{
		Name: "errwrap",
		Doc:  "fmt.Errorf must wrap errors with %w; error results must not be silently discarded",
	}
	a.Run = func(u *Unit) []Diagnostic {
		var ds []Diagnostic
		errType := types.Universe.Lookup("error").Type()
		checkDiscard := strings.Contains(u.Path, "/internal/") || strings.Contains(u.Path, "/cmd/") ||
			strings.HasPrefix(u.Path, "internal/") || strings.HasPrefix(u.Path, "cmd/")
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if d, bad := errorfWithoutW(u, n, errType); bad {
						ds = append(ds, d)
					}
				case *ast.ExprStmt:
					if !checkDiscard {
						return true
					}
					call, ok := n.X.(*ast.CallExpr)
					if !ok {
						return true
					}
					if d, bad := discardedError(u, call, errType); bad {
						ds = append(ds, d)
					}
				}
				return true
			})
		}
		return ds
	}
	return a
}

// errorfWithoutW flags fmt.Errorf("... no %w ...", ..., err, ...).
func errorfWithoutW(u *Unit, call *ast.CallExpr, errType types.Type) (Diagnostic, bool) {
	fn := calleeFunc(u.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" || len(call.Args) < 2 {
		return Diagnostic{}, false
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		return Diagnostic{}, false
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil || strings.Contains(format, "%w") {
		return Diagnostic{}, false
	}
	for _, arg := range call.Args[1:] {
		t := u.Info.Types[arg].Type
		if t != nil && types.AssignableTo(t, errType) {
			return u.Diag(call.Pos(), "fmt.Errorf formats an error argument without %%w; the cause is lost to errors.Is/errors.As"), true
		}
	}
	return Diagnostic{}, false
}

// discardedError flags a statement-position call whose final result is
// an error, modulo the documented-infallible exemptions.
func discardedError(u *Unit, call *ast.CallExpr, errType types.Type) (Diagnostic, bool) {
	t := u.Info.Types[call].Type
	if t == nil {
		return Diagnostic{}, false
	}
	var last types.Type
	switch tt := t.(type) {
	case *types.Tuple:
		if tt.Len() == 0 {
			return Diagnostic{}, false
		}
		last = tt.At(tt.Len() - 1).Type()
	default:
		last = tt
	}
	if !types.Identical(last, errType) {
		return Diagnostic{}, false
	}
	if exemptDiscard(u, call) {
		return Diagnostic{}, false
	}
	return u.Diag(call.Pos(), "error result discarded; handle it, assign it to _ explicitly, or annotate //dimred:allow errwrap <reason>"), true
}

// exemptDiscard recognizes the calls whose error result is documented
// to always be nil or is unactionable: the fmt print family (report
// and diagnostics output) and the strings.Builder / bytes.Buffer write
// methods.
func exemptDiscard(u *Unit, call *ast.CallExpr) bool {
	fn := calleeFunc(u.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	case "strings", "bytes":
		recv := fn.Type().(*types.Signature).Recv()
		if recv == nil {
			return false
		}
		name := derefNamedName(recv.Type())
		return name == "Builder" || name == "Buffer"
	}
	return false
}

func derefNamedName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
