package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DefaultNowflowRestricted lists the packages (by path suffix) whose
// evaluation-time plumbing the nowflow analyzer polices: the
// specification semantics, the synchronization scheduler and the
// physical subcube engine. These are the places where a caltime.Day
// is *the* NOW of Definitions 2–4 and must be threaded explicitly.
var DefaultNowflowRestricted = []string{
	"internal/spec",
	"internal/specexec",
	"internal/sched",
	"internal/subcube",
	"internal/views",
	"internal/ingest",
}

// NewNowflow builds the nowflow analyzer: a forward taint analysis
// sharpening the wallclock ban. The paper's semantics (Definitions
// 2–4, Section 4.2) make evaluation time an explicit parameter; a
// caltime.Day that reaches an evaluation-time position must therefore
// descend from a parameter, a field, or a clock seam — never from a
// literal or an ad-hoc construction conjured at the use site.
//
// Taint sources (ad-hoc days):
//   - any constant-valued expression of type caltime.Day (Day(7),
//     untyped literals adopting Day, named Day constants);
//   - caltime.Date / caltime.ParseDay calls whose arguments are all
//     constant;
//   - zero-value declarations (var t caltime.Day);
//   - reads of package-level Day variables.
//
// Everything else blesses: parameters, struct-field reads, results of
// other calls, range bindings, and arithmetic anchored at a blessed
// value (t-1 is an offset from t, not an ad-hoc day).
//
// Taint sinks:
//   - a call argument of type caltime.Day bound to a callee parameter
//     named t or now;
//   - an assignment of a tainted value to a Day-typed struct field
//     (persisted evaluation state such as Scheduler.now).
func NewNowflow(restricted []string) *Analyzer {
	a := &Analyzer{
		Name: "nowflow",
		Doc: "evaluation-time caltime.Day values must flow from an explicit t/now parameter " +
			"or clock seam, never from a literal or ad-hoc construction (Defs. 2-4)",
	}
	a.Run = func(u *Unit) []Diagnostic {
		if !pathMatches(u.Path, restricted) {
			return nil
		}
		var ds []Diagnostic
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ds = append(ds, nowflowFunc(u, fd)...)
			}
		}
		return ds
	}
	return a
}

// taintSet maps Day-typed local variables to "tainted" (ad-hoc
// origin). Absent means blessed.
type taintSet map[*types.Var]bool

func (s taintSet) clone() taintSet {
	c := make(taintSet, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func taintUnion(a, b taintSet) taintSet {
	c := a.clone()
	for k, v := range b {
		if v {
			c[k] = true
		}
	}
	return c
}

func taintEqual(a, b taintSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func nowflowFunc(u *Unit, fd *ast.FuncDecl) []Diagnostic {
	g := BuildCFG(fd.Body)
	nf := &nowflow{u: u}

	in := Solve(g, Problem[taintSet]{
		Dir:      Forward,
		Boundary: taintSet{},
		Merge:    taintUnion,
		Equal:    taintEqual,
		Transfer: func(b *Block, in taintSet) taintSet {
			cur := in.clone()
			for _, n := range b.Nodes {
				nf.transfer(n, cur)
			}
			return cur
		},
	})

	var ds []Diagnostic
	for _, blk := range g.Blocks {
		facts, ok := in[blk]
		if !ok {
			continue // unreachable
		}
		cur := facts.clone()
		for _, n := range blk.Nodes {
			ds = append(ds, nf.checkNode(n, cur)...)
			nf.transfer(n, cur)
		}
	}
	return ds
}

type nowflow struct {
	u *Unit
}

// isDayType reports whether t is (an alias of) caltime.Day.
func isDayType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	return tn.Name() == "Day" && tn.Pkg() != nil &&
		pathMatches(tn.Pkg().Path(), []string{"internal/caltime"})
}

// isCaltimeConstructor matches the caltime entry points that
// manufacture a Day from scalars.
func isCaltimeConstructor(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if !pathMatches(fn.Pkg().Path(), []string{"internal/caltime"}) {
		return false
	}
	return fn.Name() == "Date" || fn.Name() == "ParseDay"
}

// tainted reports whether e evaluates to an ad-hoc Day under the
// current taint facts.
func (nf *nowflow) tainted(e ast.Expr, set taintSet) bool {
	e = ast.Unparen(e)
	tv, ok := nf.u.Info.Types[e]
	if ok && tv.Value != nil {
		return isDayType(tv.Type)
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := nf.u.Info.Uses[e]
		v, ok := obj.(*types.Var)
		if !ok || !isDayType(v.Type()) {
			return false
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true // package-level Day variable: a pinned ad-hoc day
		}
		return set[v]
	case *ast.UnaryExpr:
		return nf.tainted(e.X, set)
	case *ast.BinaryExpr:
		// Arithmetic anchored at any blessed Day operand is blessed:
		// t-1 is an offset from t. Only all-ad-hoc arithmetic taints.
		if e.Op != token.ADD && e.Op != token.SUB {
			return false
		}
		lDay := nf.isDayExpr(e.X)
		rDay := nf.isDayExpr(e.Y)
		if !lDay && !rDay {
			return false
		}
		taint := true
		if lDay && !nf.tainted(e.X, set) {
			taint = false
		}
		if rDay && !nf.tainted(e.Y, set) {
			taint = false
		}
		return taint
	case *ast.CallExpr:
		// Conversion Day(x): taint follows the operand.
		if tv, ok := nf.u.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			if isDayType(tv.Type) {
				return nf.tainted(e.Args[0], set)
			}
			return false
		}
		fn := calleeFunc(nf.u.Info, e)
		if isCaltimeConstructor(fn) {
			allConst := true
			for _, arg := range e.Args {
				if atv, ok := nf.u.Info.Types[arg]; !ok || atv.Value == nil {
					allConst = false
					break
				}
			}
			return allConst
		}
		return false
	}
	return false
}

func (nf *nowflow) isDayExpr(e ast.Expr) bool {
	tv, ok := nf.u.Info.Types[e]
	return ok && tv.Type != nil && isDayType(tv.Type)
}

// transfer applies one CFG node's effect on the taint facts, mutating
// set in place (callers pass a private clone).
func (nf *nowflow) transfer(n ast.Node, set taintSet) {
	localDay := func(id *ast.Ident) *types.Var {
		var v *types.Var
		if dv, ok := nf.u.Info.Defs[id].(*types.Var); ok {
			v = dv
		} else if uv, ok := nf.u.Info.Uses[id].(*types.Var); ok {
			v = uv
		}
		if v == nil || !isDayType(v.Type()) {
			return nil
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return nil // package-level: handled as a source, not state
		}
		return v
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		oneToOne := len(n.Lhs) == len(n.Rhs) &&
			(n.Tok == token.ASSIGN || n.Tok == token.DEFINE)
		for i, lhs := range n.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			v := localDay(id)
			if v == nil {
				continue
			}
			switch {
			case oneToOne:
				if nf.tainted(n.Rhs[i], set) {
					set[v] = true
				} else {
					delete(set, v)
				}
			case n.Tok == token.ASSIGN || n.Tok == token.DEFINE:
				delete(set, v) // multi-value: a call result, blessed
			}
			// op=: the anchor does not change; leave the fact as is.
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, s := range gd.Specs {
			vs, ok := s.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				v := localDay(name)
				if v == nil {
					continue
				}
				switch {
				case len(vs.Values) == 0:
					set[v] = true // var t caltime.Day: the zero day is ad hoc
				case len(vs.Values) == len(vs.Names):
					if nf.tainted(vs.Values[i], set) {
						set[v] = true
					} else {
						delete(set, v)
					}
				default:
					delete(set, v)
				}
			}
		}
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if e == nil {
				continue
			}
			if id, ok := ast.Unparen(e).(*ast.Ident); ok {
				if v := localDay(id); v != nil {
					delete(set, v) // iterating stored data: blessed
				}
			}
		}
	}
}

// evalTimeParams are the parameter names that mark an argument
// position as "the evaluation time".
var evalTimeParams = map[string]bool{"t": true, "now": true}

// checkNode scans one CFG node for taint sinks under the given facts.
func (nf *nowflow) checkNode(n ast.Node, set taintSet) []Diagnostic {
	var ds []Diagnostic
	for _, part := range shallowParts(n) {
		inspectNoFuncLit(part, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.CallExpr:
				ds = append(ds, nf.checkCall(x, set)...)
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if !ok || len(x.Lhs) != len(x.Rhs) {
						continue
					}
					key, isField := fieldKey(nf.u.Info, sel)
					if !isField || !nf.isDayExpr(lhs) {
						continue
					}
					if x.Tok == token.ASSIGN && nf.tainted(x.Rhs[i], set) {
						ds = append(ds, nf.u.Diag(x.Rhs[i].Pos(),
							"caltime.Day field %s is assigned an ad-hoc day; evaluation time must flow from an explicit t/now parameter or clock seam", key))
					}
				}
			}
			return true
		})
	}
	return ds
}

func (nf *nowflow) checkCall(call *ast.CallExpr, set taintSet) []Diagnostic {
	fn := calleeFunc(nf.u.Info, call)
	if fn == nil || isCaltimeConstructor(fn) {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params() == nil {
		return nil
	}
	var ds []Diagnostic
	np := sig.Params().Len()
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= np-1 {
			pi = np - 1
		}
		if pi >= np {
			break
		}
		p := sig.Params().At(pi)
		pt := p.Type()
		if sig.Variadic() && pi == np-1 {
			if sl, ok := pt.(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if !evalTimeParams[p.Name()] || !isDayType(pt) {
			continue
		}
		if nf.tainted(arg, set) {
			ds = append(ds, nf.u.Diag(arg.Pos(),
				"ad-hoc caltime.Day passed as evaluation time %q of %s; thread the caller's explicit t/now (Defs. 2-4)",
				p.Name(), fn.Name()))
		}
	}
	return ds
}
