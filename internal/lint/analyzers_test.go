package lint_test

import (
	"testing"

	"dimred/internal/lint"
	"dimred/internal/lint/linttest"
)

func TestWallclock(t *testing.T) {
	linttest.Run(t, []*lint.Analyzer{lint.NewWallclock(lint.DefaultWallclockRestricted)}, map[string]string{
		"internal/core/core.go": `package core

import "time"

func Eval() time.Time {
	return time.Now() // want "call to time.Now in semantic package"
}

func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "call to time.Since"
}

func Ticker() <-chan time.Time {
	return time.Tick(time.Second) // want "call to time.Tick"
}

func SuppressedSameLine() time.Time {
	return time.Now() //dimred:allow wallclock fixture exercises same-line suppression
}

func SuppressedLineAbove() time.Time {
	//dimred:allow wallclock fixture exercises line-above suppression
	return time.Now()
}

func NoReason() time.Time {
	//dimred:allow wallclock
	return time.Now() // want "call to time.Now"
}

func ExplicitParameter(t0 time.Time) time.Time {
	return t0.Add(time.Hour) // methods on an explicit time are fine
}
`,
		"internal/util/util.go": `package util

import "time"

// util is not a restricted package: the ambient clock is allowed.
func Stamp() time.Time { return time.Now() }
`,
	})
}

func TestAtomicField(t *testing.T) {
	linttest.Run(t, []*lint.Analyzer{lint.NewAtomicField()}, map[string]string{
		"a/a.go": `package a

import "sync/atomic"

type Stats struct {
	N int64
	W atomic.Int64
}

func (s *Stats) Inc()            { atomic.AddInt64(&s.N, 1) }
func (s *Stats) Load() int64     { return atomic.LoadInt64(&s.N) }
func (s *Stats) WrappedOK() int64 { return s.W.Load() }
func (s *Stats) BadPlain() int64 { return s.N } // want "non-atomic access to field lintfix/a.Stats.N"
func (s *Stats) BadStore(v int64) { s.N = v } // want "non-atomic access to field lintfix/a.Stats.N"
func (s *Stats) BadCopy() atomic.Int64 { return s.W } // want "atomic type but is used as a plain value"
func (s *Stats) Suppressed() int64 {
	return s.N //dimred:allow atomicfield fixture exercises suppression
}

type Hist struct {
	buckets [4]atomic.Int64
}

func (h *Hist) Observe(i int) { h.buckets[i].Add(1) } // index + method call is fine
func (h *Hist) Len() int      { return len(h.buckets) }
`,
		"b/b.go": `package b

import "lintfix/a"

// The module-wide view: package b never touches sync/atomic itself,
// but a's field is atomic, so a plain read here is a race.
func Read(s *a.Stats) int64  { return s.N } // want "non-atomic access to field lintfix/a.Stats.N"
func ReadOK(s *a.Stats) int64 { return s.Load() }
`,
	})
}

func TestInvariantCall(t *testing.T) {
	linttest.Run(t, []*lint.Analyzer{lint.NewInvariantCall(lint.DefaultInvariantConfig)}, map[string]string{
		"internal/spec/spec.go": `package spec

type Action struct{ Name string }

type Spec struct {
	actions []*Action
	gen     uint64
}

func CheckNonCrossing(as []*Action) error { return nil }
func CheckGrowing(as []*Action) error     { return nil }

func (s *Spec) bumpGeneration() { s.gen++ }

// Insert is the honest operator: both obligations are discharged
// before the action set changes, and the commit bumps the generation.
func (s *Spec) Insert(a *Action) error {
	cand := append(s.actions, a)
	if err := CheckNonCrossing(cand); err != nil {
		return err
	}
	if err := CheckGrowing(cand); err != nil {
		return err
	}
	s.actions = cand
	s.bumpGeneration()
	return nil
}

// Wrapped mutates only through Insert, so the checkers and the bump
// are reached transitively.
func (s *Spec) Wrapped(a *Action) error { return s.Insert(a) }

func (s *Spec) Hack(a *Action) { // want "exported Hack mutates the Spec.actions action set without invoking CheckNonCrossing and CheckGrowing" "without bumping the spec generation"
	s.actions = append(s.actions, a)
}

func (s *Spec) HalfChecked(a *Action) error { // want "without invoking CheckGrowing" "without bumping the spec generation"
	cand := append(s.actions, a)
	if err := CheckNonCrossing(cand); err != nil {
		return err
	}
	s.actions = cand
	return nil
}

// Forgetful discharges both proof obligations but commits without
// bumping the generation — the stale-cache hazard the GenBump rule
// exists for.
func (s *Spec) Forgetful(a *Action) error { // want "exported Forgetful mutates the Spec.actions action set without bumping the spec generation \\(call bumpGeneration\\)"
	cand := append(s.actions, a)
	if err := CheckNonCrossing(cand); err != nil {
		return err
	}
	if err := CheckGrowing(cand); err != nil {
		return err
	}
	s.actions = cand
	return nil
}

func (s *Spec) setRaw(as []*Action) { s.actions = as }

func (s *Spec) Sneaky(as []*Action) { // want "exported Sneaky mutates the Spec.actions action set" "without bumping the spec generation"
	s.setRaw(as)
}

//dimred:allow invariantcall fixture exercises suppression
func (s *Spec) Restore(as []*Action) { s.setRaw(as) }
`,
	})
}

func TestErrwrap(t *testing.T) {
	linttest.Run(t, []*lint.Analyzer{lint.NewErrwrap()}, map[string]string{
		"internal/e/e.go": `package e

import (
	"errors"
	"fmt"
	"os"
)

var errBase = errors.New("base")

func Wrap() error {
	return fmt.Errorf("ctx: %v", errBase) // want "fmt.Errorf formats an error argument without %w"
}

func WrapOK() error {
	return fmt.Errorf("ctx: %w", errBase)
}

func NotAnError(n int) error {
	return fmt.Errorf("n=%v", n) // no error argument: nothing to wrap
}

func Drop() {
	os.Remove("nope") // want "error result discarded"
}

func DropExplicit() {
	_ = os.Remove("nope")
}

func PrintFamilyExempt() {
	fmt.Println("hello")
	fmt.Fprintf(os.Stderr, "oops\n")
}

func Suppressed() {
	os.Remove("nope") //dimred:allow errwrap fixture exercises suppression
}
`,
		// Outside internal/ and cmd/, only the %w rule applies.
		"pub/pub.go": `package pub

import (
	"fmt"
	"os"
)

func Drop() {
	os.Remove("nope") // discard check is scoped to internal/ and cmd/
}

func Wrap(err error) error {
	return fmt.Errorf("ctx: %v", err) // want "without %w"
}
`,
	})
}

func TestShadow(t *testing.T) {
	linttest.Run(t, []*lint.Analyzer{lint.NewShadow()}, map[string]string{
		"internal/s/s.go": `package s

func Shadowed() int {
	x := 1
	if x > 0 {
		x := 2 // want "declaration of \"x\" shadows declaration"
		_ = x
	}
	return x
}

func ErrIdiomExempt() error {
	var err error
	if err := probe(); err != nil {
		return err
	}
	return err
}

func DifferentTypeDeliberate() int {
	x := 1
	{
		x := "two different things"
		_ = x
	}
	return x
}

func OuterDeadAfter() {
	y := 1
	_ = y
	{
		y := 2
		_ = y
	}
}

func probe() error { return nil }
`,
	})
}

func TestNilness(t *testing.T) {
	linttest.Run(t, []*lint.Analyzer{lint.NewNilness()}, map[string]string{
		"internal/n/n.go": `package n

type T struct{ F int }

func Deref(p *T) int {
	if p == nil {
		return p.F // want "field or method access on p, which is nil here"
	}
	return p.F
}

func ElseArm(f func()) {
	if f != nil {
		f()
	} else {
		f() // want "call of f, which is a nil function here"
	}
}

func Index(s []int) int {
	if nil == s {
		return s[0] // want "index of s, which is nil here"
	}
	return s[0]
}

func ReassignedFirst(p *T) int {
	if p == nil {
		p = &T{}
		return p.F
	}
	return p.F
}

func Interface(v interface{ M() }) {
	if v == nil {
		v.M() // want "method call on v, which is a nil interface here"
	}
}
`,
	})
}
