package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// This file builds intraprocedural control-flow graphs over go/ast
// function bodies. The CFG is the substrate for the dataflow solver in
// dataflow.go and, through it, for the purity, nowflow and lockfield
// analyzers. It deliberately stays syntactic: blocks hold the original
// ast.Nodes in execution order, so analyzer transfer functions keep
// full access to type information via the Unit.
//
// Modeling decisions:
//
//   - One synthetic Exit block terminates every path (returns, panics
//     are not modeled, falling off the end).
//   - defer statements appear in their block (their arguments are
//     evaluated there) and are additionally collected into CFG.Defers;
//     when any exist, a dedicated defers block is spliced in front of
//     Exit so every function-exit path runs them. Transfer functions
//     that care about call effects (locksets) skip the inline
//     *ast.DeferStmt and interpret the deferred calls in that block.
//   - Function literals are opaque: the builder does not descend into
//     *ast.FuncLit bodies (a nested closure has its own CFG), and
//     analyzers use inspectNoFuncLit to match.
//   - select/switch case expressions are evaluated in the head block;
//     each clause body gets its own block. fallthrough chains switch
//     clause bodies.
//   - goto/break/continue/labels are fully wired; blocks that become
//     unreachable (e.g. code after return) stay in Blocks with no
//     predecessors, and the solver simply never visits them.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	// Defers lists every defer statement in the function in source
	// order; when non-empty, the last block before Exit is the defers
	// block holding exactly these nodes.
	Defers []*ast.DeferStmt
}

// Block is one basic block: a maximal straight-line sequence of nodes.
// Nodes holds statements and, for control-flow heads, the governing
// expression (an if/for condition, a switch tag, a range statement).
type Block struct {
	Index int
	Kind  string // "entry", "exit", "if.then", "for.head", ... for debugging
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

func (b *Block) String() string { return fmt.Sprintf("b%d(%s)", b.Index, b.Kind) }

// BuildCFG constructs the control-flow graph of a function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{g: &CFG{}, labels: map[string]*labelInfo{}}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = &Block{Kind: "exit"} // indexed after building
	b.cur = b.g.Entry
	b.stmt(body)
	b.jump(b.g.Exit) // fall off the end
	if len(b.g.Defers) > 0 {
		b.spliceDefers()
	}
	b.g.Exit.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, b.g.Exit)
	return b.g
}

// labelInfo tracks one label: the block a goto jumps to, and — while
// the labeled loop/switch is being built — the break/continue targets.
type labelInfo struct {
	target     *Block // the labeled statement's own block (goto target)
	breakTo    *Block
	continueTo *Block
}

type cfgBuilder struct {
	g          *CFG
	cur        *Block
	labels     map[string]*labelInfo
	breakTo    *Block
	continueTo *Block
	fallTo     *Block // fallthrough target inside a switch clause
	curLabel   string // pending label naming the next loop/switch
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func addEdge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump ends the current block with an edge to target and leaves the
// builder in a fresh, unreachable block (which later statements may
// make reachable via labels).
func (b *cfgBuilder) jump(target *Block) {
	addEdge(b.cur, target)
	b.cur = b.newBlock("unreachable")
}

func (b *cfgBuilder) add(n ast.Node) { b.cur.Nodes = append(b.cur.Nodes, n) }

// registerLabel records the break/continue targets of a labeled
// loop/switch under its label.
func (b *cfgBuilder) registerLabel(label string, breakTo, continueTo *Block) {
	if label == "" {
		return
	}
	li := b.labels[label]
	li.breakTo = breakTo
	li.continueTo = continueTo
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.curLabel = ""
		for _, st := range s.List {
			b.stmt(st)
		}

	case *ast.IfStmt:
		b.curLabel = ""
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		done := b.newBlock("if.done")
		then := b.newBlock("if.then")
		addEdge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		addEdge(b.cur, done)
		if s.Else != nil {
			els := b.newBlock("if.else")
			addEdge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			addEdge(b.cur, done)
		} else {
			addEdge(cond, done)
		}
		b.cur = done

	case *ast.ForStmt:
		label := b.curLabel
		b.curLabel = ""
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock("for.head")
		addEdge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		addEdge(head, body)
		if s.Cond != nil {
			addEdge(head, done)
		}
		var post *Block
		contTo := head
		if s.Post != nil {
			post = b.newBlock("for.post")
			contTo = post
		}
		b.registerLabel(label, done, contTo)
		savedB, savedC := b.breakTo, b.continueTo
		b.breakTo, b.continueTo = done, contTo
		b.cur = body
		b.stmt(s.Body)
		addEdge(b.cur, contTo)
		b.breakTo, b.continueTo = savedB, savedC
		if post != nil {
			b.cur = post
			b.stmt(s.Post)
			addEdge(b.cur, head)
		}
		b.cur = done

	case *ast.RangeStmt:
		label := b.curLabel
		b.curLabel = ""
		head := b.newBlock("range.head")
		addEdge(b.cur, head)
		head.Nodes = append(head.Nodes, s) // the range clause itself
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		addEdge(head, body)
		addEdge(head, done)
		b.registerLabel(label, done, head)
		savedB, savedC := b.breakTo, b.continueTo
		b.breakTo, b.continueTo = done, head
		b.cur = body
		b.stmt(s.Body)
		addEdge(b.cur, head)
		b.breakTo, b.continueTo = savedB, savedC
		b.cur = done

	case *ast.SwitchStmt:
		label := b.curLabel
		b.curLabel = ""
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(s.Body.List, label, func(cc *ast.CaseClause, head *Block) {
			for _, e := range cc.List {
				head.Nodes = append(head.Nodes, e)
			}
		})

	case *ast.TypeSwitchStmt:
		label := b.curLabel
		b.curLabel = ""
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(s.Body.List, label, nil)

	case *ast.SelectStmt:
		label := b.curLabel
		b.curLabel = ""
		head := b.cur
		done := b.newBlock("select.done")
		b.registerLabel(label, done, nil)
		savedB := b.breakTo
		b.breakTo = done
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock("select.body")
			addEdge(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			for _, st := range cc.Body {
				b.stmt(st)
			}
			addEdge(b.cur, done)
		}
		b.breakTo = savedB
		b.cur = done

	case *ast.LabeledStmt:
		li := b.labels[s.Label.Name]
		if li == nil {
			li = &labelInfo{}
			b.labels[s.Label.Name] = li
		}
		if li.target == nil {
			li.target = b.newBlock("label." + s.Label.Name)
		}
		addEdge(b.cur, li.target)
		b.cur = li.target
		b.curLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.curLabel = ""

	case *ast.BranchStmt:
		b.curLabel = ""
		switch s.Tok {
		case token.BREAK:
			target := b.breakTo
			if s.Label != nil {
				if li := b.labels[s.Label.Name]; li != nil && li.breakTo != nil {
					target = li.breakTo
				}
			}
			if target != nil {
				b.jump(target)
			}
		case token.CONTINUE:
			target := b.continueTo
			if s.Label != nil {
				if li := b.labels[s.Label.Name]; li != nil && li.continueTo != nil {
					target = li.continueTo
				}
			}
			if target != nil {
				b.jump(target)
			}
		case token.GOTO:
			li := b.labels[s.Label.Name]
			if li == nil {
				li = &labelInfo{}
				b.labels[s.Label.Name] = li
			}
			if li.target == nil {
				li.target = b.newBlock("label." + s.Label.Name)
			}
			b.jump(li.target)
		case token.FALLTHROUGH:
			if b.fallTo != nil {
				b.jump(b.fallTo)
			}
		}

	case *ast.ReturnStmt:
		b.curLabel = ""
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.DeferStmt:
		b.curLabel = ""
		b.g.Defers = append(b.g.Defers, s)
		b.add(s)

	case nil:
		// nothing

	default:
		// ExprStmt, AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt,
		// EmptyStmt: straight-line.
		b.curLabel = ""
		b.add(s)
	}
}

// switchClauses builds the shared clause structure of switch and type
// switch statements. headExprs, when non-nil, appends a clause's case
// expressions to the evaluation block.
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, label string, headExprs func(*ast.CaseClause, *Block)) {
	head := b.cur
	done := b.newBlock("switch.done")
	b.registerLabel(label, done, nil)
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		if headExprs != nil {
			headExprs(cc, head)
		}
		bodies[i] = b.newBlock("case.body")
		addEdge(head, bodies[i])
	}
	if !hasDefault {
		addEdge(head, done)
	}
	savedB, savedF := b.breakTo, b.fallTo
	b.breakTo = done
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.fallTo = nil
		if i+1 < len(bodies) {
			b.fallTo = bodies[i+1]
		}
		b.cur = bodies[i]
		for _, st := range cc.Body {
			b.stmt(st)
		}
		addEdge(b.cur, done)
	}
	b.breakTo, b.fallTo = savedB, savedF
	b.cur = done
}

// spliceDefers inserts a block holding every defer statement between
// all Exit predecessors and Exit, so exit-path analyses (locksets) see
// the deferred calls run.
func (b *cfgBuilder) spliceDefers() {
	db := b.newBlock("defers")
	for _, n := range b.g.Defers {
		db.Nodes = append(db.Nodes, n)
	}
	preds := b.g.Exit.Preds
	b.g.Exit.Preds = nil
	for _, p := range preds {
		for i, s := range p.Succs {
			if s == b.g.Exit {
				p.Succs[i] = db
			}
		}
		db.Preds = append(db.Preds, p)
	}
	addEdge(db, b.g.Exit)
}

// dump renders the graph shape for tests: one "kind -> succkinds" line
// per block that is reachable or non-empty.
func (g *CFG) dump() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		if len(blk.Nodes) == 0 && len(blk.Preds) == 0 && len(blk.Succs) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%s:", blk.Kind)
		for _, s := range blk.Succs {
			fmt.Fprintf(&sb, " %s", s.Kind)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// shallowParts returns the parts of a CFG node that execute at that
// node. Almost every node is its own part; a RangeStmt is special
// because the builder stores the whole statement in the head block
// while its body statements live in the body block — only the ranged
// operand executes at the head.
func shallowParts(n ast.Node) []ast.Node {
	if r, ok := n.(*ast.RangeStmt); ok {
		if r.X != nil {
			return []ast.Node{r.X}
		}
		return nil
	}
	return []ast.Node{n}
}

// inspectNoFuncLit walks n like ast.Inspect but does not descend into
// function literals: a closure body has its own control flow and must
// not leak effects into the enclosing function's analysis.
func inspectNoFuncLit(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}
