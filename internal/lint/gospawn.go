package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NewGoSpawn builds the gospawn analyzer: goroutine discipline for the
// streaming-ingest era. Every go statement must satisfy two contracts:
//
//  1. No unsafe state crosses the spawn boundary. A goroutine may
//     outlive the epoch pin that made a snapshot safe to read, so
//     neither its arguments nor its captures may carry a snapalias
//     immutable origin; and a field the module guards with a mutex
//     (lockfield's inferred guards) must be accessed under that guard
//     inside the body — locks held at the spawn site do not extend
//     into the asynchronous body.
//
//  2. The goroutine provably terminates or is reasoned about. The
//     spawner (or a sibling goroutine of the same declaration) must
//     exhibit a join or termination edge: a sync.WaitGroup Done/Wait
//     pair, a channel the body ranges/receives that the spawner
//     closes, a result send the spawner receives, or a done-channel
//     close the spawner receives. Otherwise the go statement needs a
//     reasoned //dimred:detached directive on its line or the line
//     above — background compaction must not silently leak goroutines.
//
// The join proof is syntactic (matching WaitGroup/channel identity
// chains, literal parameters translated to spawn-site arguments), not
// a reachability argument; spawning a named function is never provable
// and always needs the directive. The directive waives only the join
// requirement — capture and guard findings stand regardless.
func NewGoSpawn() *Analyzer {
	a := &Analyzer{
		Name: "gospawn",
		Doc: "every go statement needs a provable join/termination edge (WaitGroup pair, " +
			"channel close or result receive) or a reasoned " + DetachedDirective + "; goroutines " +
			"must not capture snapshot-derived references or guarded fields without their guard",
	}
	a.RunModule = func(units []*Unit) []Diagnostic {
		immutable := collectImmutableTypes(units)
		shared := collectSharedFields(units)
		cg := moduleCallGraph(units)
		var summaries map[string]*escapeSummary
		if len(immutable) > 0 {
			summaries = escapeSummariesFor(units, immutable, shared)
		}
		lf := collectLockFacts(units)

		var ds []Diagnostic
		for _, key := range cg.keys {
			c := &goSpawnCheck{node: cg.Nodes[key], immutable: immutable,
				shared: shared, summaries: summaries, lf: lf}
			ds = append(ds, c.check()...)
		}
		return ds
	}
	return a
}

type goSpawnCheck struct {
	node      *CGNode
	immutable map[string]bool
	shared    map[string]sharedField
	summaries map[string]*escapeSummary
	lf        *lockFacts

	fa    *snapAnalysis
	diags []Diagnostic
}

func (c *goSpawnCheck) check() []Diagnostic {
	decl := c.node.Decl
	var goStmts []*ast.GoStmt
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			goStmts = append(goStmts, g)
		}
		return true
	})
	if len(goStmts) == 0 {
		return nil
	}

	u := c.node.Unit
	file := fileOf(u, decl.Pos())
	if file == nil {
		return nil
	}
	detached := detachedReasons(u, file)
	parents := parentMap(file)
	if c.summaries != nil {
		c.fa = newSnapAnalysis(c.node, c.immutable, c.shared, c.summaries)
		c.fa.seedParams()
		for c.fa.propagate() {
		}
	}

	for _, g := range goStmts {
		lit, _ := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		c.checkHandoff(g, lit)
		if lit != nil {
			c.checkGuards(lit, parents)
		}
		line := u.Fset.Position(g.Pos()).Line
		if _, ok := detached[line]; ok {
			continue
		}
		if _, ok := detached[line-1]; ok {
			continue
		}
		if lit == nil || !c.joined(decl, g, lit) {
			c.diags = append(c.diags, u.Diag(g.Pos(),
				"goroutine has no provable join or termination edge (sync.WaitGroup Done/Wait "+
					"pair, channel close, or result receive in the spawner); annotate the go "+
					"statement '%s <reason>' if detaching is intended", DetachedDirective))
		}
	}
	return c.diags
}

// checkHandoff flags snapshot-derived state crossing the spawn
// boundary: arguments and the bound receiver at the go call, and free
// variables the literal captures.
func (c *goSpawnCheck) checkHandoff(g *ast.GoStmt, lit *ast.FuncLit) {
	if c.fa == nil {
		return
	}
	u := c.node.Unit
	handed := func(e ast.Expr) {
		if o := c.fa.exprOrigins(e); o.immut {
			c.diags = append(c.diags, u.Diag(g.Pos(),
				"goroutine is handed a value derived from %s type %s; the goroutine may outlive "+
					"the epoch pin that makes the snapshot safe to read", ImmutableDirective, o.immutType))
		}
	}
	for _, arg := range g.Call.Args {
		handed(arg)
	}
	if lit == nil {
		if sel, ok := ast.Unparen(g.Call.Fun).(*ast.SelectorExpr); ok {
			handed(sel.X)
		}
		return
	}
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := u.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // literal-local
		}
		if o := c.fa.exprOrigins(id); o.immut {
			seen[v] = true
			c.diags = append(c.diags, u.Diag(g.Pos(),
				"goroutine captures %s, derived from %s type %s; the goroutine may outlive "+
					"the epoch pin that makes the snapshot safe to read", v.Name(), ImmutableDirective, o.immutType))
		}
		return true
	})
}

// checkGuards runs the lockset dataflow over the literal body with an
// empty boundary — a goroutine starts holding nothing, whatever the
// spawn site held — and requires every access to a module-guarded
// field to hold its guard inside the body.
func (c *goSpawnCheck) checkGuards(lit *ast.FuncLit, parents map[ast.Node]ast.Node) {
	u := c.node.Unit
	la := &lockAnalysis{u: u, body: lit.Body, parents: parents, ownerMutexes: c.lf.ownerMutexes}
	la.run()
	for _, acc := range la.accesses {
		gs := c.lf.guards[acc.key]
		if len(gs) == 0 || acc.exempt {
			continue
		}
		need, verb := lockRead, "read"
		if acc.write {
			need, verb = lockWrite, "write"
		}
		held := false
		for lock := range gs {
			if acc.locks[lock] >= need {
				held = true
				break
			}
		}
		if !held {
			c.diags = append(c.diags, u.Diag(acc.pos,
				"%s of field %s inside a goroutine without holding %s, which guards it elsewhere "+
					"in the module; locks held at the spawn site do not extend into the asynchronous body",
				verb, acc.key, guardNames(gs, acc.owner)))
		}
	}
}

// joined reports whether the goroutine literal has a syntactic join or
// termination edge with its spawner: Done/Wait on one WaitGroup, a
// body receive matched by a spawner close, or a body send/close
// matched by a spawner receive. The spawner side is the enclosing
// declaration minus the literal itself, so a sibling closer goroutine
// counts.
func (c *goSpawnCheck) joined(decl *ast.FuncDecl, g *ast.GoStmt, lit *ast.FuncLit) bool {
	u := c.node.Unit
	params := litParams(u, lit)

	// translate maps a key rooted at a literal parameter to the
	// spawn-site argument supplied for it.
	translate := func(k string) string {
		if k == "" {
			return ""
		}
		for i, pv := range params {
			if pv == nil || i >= len(g.Call.Args) {
				continue
			}
			pk := varKey(pv)
			if k == pk || strings.HasPrefix(k, pk+".") {
				ak := chainKey(u.Info, g.Call.Args[i])
				if ak == "" {
					return ""
				}
				return ak + strings.TrimPrefix(k, pk)
			}
		}
		return k
	}

	done := map[string]bool{}
	bodyRecv := map[string]bool{}
	bodySend := map[string]bool{}
	bodyClose := map[string]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		c.joinEvent(n, func(kind string, e ast.Expr) {
			k := translate(chainKey(u.Info, e))
			if k == "" {
				return
			}
			switch kind {
			case "done":
				done[k] = true
			case "recv":
				bodyRecv[k] = true
			case "send":
				bodySend[k] = true
			case "close":
				bodyClose[k] = true
			}
		})
		return true
	})
	if len(done)+len(bodyRecv)+len(bodySend)+len(bodyClose) == 0 {
		return false
	}

	joined := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if n == ast.Node(lit) {
			return false // the goroutine cannot join itself
		}
		if joined {
			return false
		}
		c.joinEvent(n, func(kind string, e ast.Expr) {
			k := chainKey(u.Info, e)
			if k == "" {
				return
			}
			switch kind {
			case "wait":
				joined = joined || done[k]
			case "close":
				joined = joined || bodyRecv[k]
			case "recv":
				joined = joined || bodySend[k] || bodyClose[k]
			}
		})
		return true
	})
	return joined
}

// joinEvent classifies one node as a join-relevant event and reports
// it: WaitGroup Done/Wait, channel receive (unary or range), channel
// send, channel close.
func (c *goSpawnCheck) joinEvent(n ast.Node, emit func(kind string, e ast.Expr)) {
	info := c.node.Unit.Info
	switch x := n.(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "close" && len(x.Args) == 1 {
				emit("close", x.Args[0])
			}
			return
		}
		fn := calleeFunc(info, x)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return
		}
		sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		switch fn.Name() {
		case "Done":
			emit("done", sel.X)
		case "Wait":
			emit("wait", sel.X)
		}
	case *ast.UnaryExpr:
		if x.Op == token.ARROW && isChanExpr(info, x.X) {
			emit("recv", x.X)
		}
	case *ast.RangeStmt:
		if isChanExpr(info, x.X) {
			emit("recv", x.X)
		}
	case *ast.SendStmt:
		emit("send", x.Chan)
	}
}

// isChanExpr reports whether e's static type is a channel.
func isChanExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// chainKey renders an expression naming a WaitGroup or channel as a
// stable key rooted at variable identity ("" when untracked).
func chainKey(info *types.Info, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return varKey(v)
		}
		if v, ok := info.Defs[x].(*types.Var); ok {
			return varKey(v)
		}
	case *ast.SelectorExpr:
		if base := chainKey(info, x.X); base != "" {
			return base + "." + x.Sel.Name
		}
	case *ast.StarExpr:
		return chainKey(info, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return chainKey(info, x.X)
		}
	case *ast.IndexExpr:
		if base := chainKey(info, x.X); base != "" {
			return base + "[]" // elements share one key
		}
	}
	return ""
}

func varKey(v *types.Var) string { return fmt.Sprintf("v@%d", v.Pos()) }

// litParams lists the literal's parameter variables in positional
// order (nil for unnamed positions).
func litParams(u *Unit, lit *ast.FuncLit) []*types.Var {
	if lit.Type.Params == nil {
		return nil
	}
	var out []*types.Var
	for _, f := range lit.Type.Params.List {
		if len(f.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range f.Names {
			v, _ := u.Info.Defs[name].(*types.Var)
			out = append(out, v)
		}
	}
	return out
}

// fileOf finds the unit file containing pos.
func fileOf(u *Unit, pos token.Pos) *ast.File {
	for _, f := range u.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
