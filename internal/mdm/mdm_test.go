package mdm

import (
	"strings"
	"testing"
	"testing/quick"
)

// buildURLDim constructs the paper's URL dimension shape by hand:
// url < domain < domain_grp < TOP, with the Appendix A values.
func buildURLDim(t *testing.T) (*Dimension, map[string]ValueID) {
	t.Helper()
	d := NewDimension("URL")
	url := d.MustAddCategory("url", false)
	dom := d.MustAddCategory("domain", false)
	grp := d.MustAddCategory("domain_grp", false)
	if err := d.Contains(url, dom); err != nil {
		t.Fatal(err)
	}
	if err := d.Contains(dom, grp); err != nil {
		t.Fatal(err)
	}
	d.MustFinalize()

	vals := make(map[string]ValueID)
	vals[".com"] = d.MustAddValue(grp, ".com", 0, nil)
	vals[".edu"] = d.MustAddValue(grp, ".edu", 0, nil)
	vals["cnn.com"] = d.MustAddValue(dom, "cnn.com", 0, map[CategoryID]ValueID{grp: vals[".com"]})
	vals["amazon.com"] = d.MustAddValue(dom, "amazon.com", 0, map[CategoryID]ValueID{grp: vals[".com"]})
	vals["gatech.edu"] = d.MustAddValue(dom, "gatech.edu", 0, map[CategoryID]ValueID{grp: vals[".edu"]})
	vals["www.cnn.com/"] = d.MustAddValue(url, "www.cnn.com/", 0, map[CategoryID]ValueID{dom: vals["cnn.com"]})
	vals["www.cnn.com/health"] = d.MustAddValue(url, "www.cnn.com/health", 0, map[CategoryID]ValueID{dom: vals["cnn.com"]})
	vals["www.amazon.com/ex"] = d.MustAddValue(url, "www.amazon.com/ex", 0, map[CategoryID]ValueID{dom: vals["amazon.com"]})
	vals["www.cc.gatech.edu/"] = d.MustAddValue(url, "www.cc.gatech.edu/", 0, map[CategoryID]ValueID{dom: vals["gatech.edu"]})
	return d, vals
}

// buildMiniTimeDim constructs a tiny Time-shaped dimension with the
// non-linear hierarchy day < {week, month}, month < TOP-chain.
func buildMiniTimeDim(t *testing.T) (*Dimension, map[string]ValueID) {
	t.Helper()
	d := NewDimension("Time")
	day := d.MustAddCategory("day", true)
	week := d.MustAddCategory("week", true)
	month := d.MustAddCategory("month", true)
	quarter := d.MustAddCategory("quarter", true)
	if err := d.Contains(day, week); err != nil {
		t.Fatal(err)
	}
	if err := d.Contains(day, month); err != nil {
		t.Fatal(err)
	}
	if err := d.Contains(month, quarter); err != nil {
		t.Fatal(err)
	}
	d.MustFinalize()

	vals := make(map[string]ValueID)
	vals["1999Q4"] = d.MustAddValue(quarter, "1999Q4", 0, nil)
	vals["1999/11"] = d.MustAddValue(month, "1999/11", 0, map[CategoryID]ValueID{quarter: vals["1999Q4"]})
	vals["1999/12"] = d.MustAddValue(month, "1999/12", 1, map[CategoryID]ValueID{quarter: vals["1999Q4"]})
	vals["1999W47"] = d.MustAddValue(week, "1999W47", 0, nil)
	vals["1999W48"] = d.MustAddValue(week, "1999W48", 1, nil)
	vals["d1"] = d.MustAddValue(day, "1999/11/23", 10, map[CategoryID]ValueID{week: vals["1999W47"], month: vals["1999/11"]})
	vals["d2"] = d.MustAddValue(day, "1999/12/4", 21, map[CategoryID]ValueID{week: vals["1999W48"], month: vals["1999/12"]})
	return d, vals
}

func TestDimensionCategoryOrder(t *testing.T) {
	d, _ := buildURLDim(t)
	url, _ := d.CategoryByName("url")
	dom, _ := d.CategoryByName("domain")
	grp, _ := d.CategoryByName("domain_grp")
	top := d.Top()

	if d.Bottom() != url {
		t.Errorf("bottom = %v, want url", d.Bottom())
	}
	if !d.CatLE(url, dom) || !d.CatLE(dom, grp) || !d.CatLE(url, top) {
		t.Error("expected url <= domain <= domain_grp <= TOP")
	}
	if d.CatLE(grp, url) {
		t.Error("domain_grp <= url should be false")
	}
	if !d.Linear() {
		t.Error("URL dimension should be linear")
	}
	if got := d.Anc(dom); len(got) != 1 || got[0] != grp {
		t.Errorf("Anc(domain) = %v, want [domain_grp]", got)
	}
}

func TestDimensionNonLinear(t *testing.T) {
	d, _ := buildMiniTimeDim(t)
	week, _ := d.CategoryByName("week")
	month, _ := d.CategoryByName("month")
	if d.Linear() {
		t.Error("Time dimension should be non-linear")
	}
	if d.CatComparable(week, month) {
		t.Error("week and month should be incomparable")
	}
	day, _ := d.CategoryByName("day")
	if got := d.GLB(week, month); got != day {
		t.Errorf("GLB(week, month) = %s, want day", d.Category(got).Name)
	}
	quarter, _ := d.CategoryByName("quarter")
	if got := d.GLB(week, quarter); got != day {
		t.Errorf("GLB(week, quarter) = %s, want day", d.Category(got).Name)
	}
	if got := d.GLB(month, quarter); got != month {
		t.Errorf("GLB(month, quarter) = %s, want month", d.Category(got).Name)
	}
}

func TestGLBIsGreatestLowerBound(t *testing.T) {
	d, _ := buildMiniTimeDim(t)
	n := d.NumCategories()
	for c1 := 0; c1 < n; c1++ {
		for c2 := 0; c2 < n; c2++ {
			g := d.GLB(CategoryID(c1), CategoryID(c2))
			if !d.CatLE(g, CategoryID(c1)) || !d.CatLE(g, CategoryID(c2)) {
				t.Fatalf("GLB(%d,%d)=%d is not a lower bound", c1, c2, g)
			}
			for c3 := 0; c3 < n; c3++ {
				if d.CatLE(CategoryID(c3), CategoryID(c1)) && d.CatLE(CategoryID(c3), CategoryID(c2)) {
					if !d.CatLE(CategoryID(c3), g) {
						t.Fatalf("GLB(%d,%d)=%d not greatest: %d is a larger lower bound", c1, c2, g, c3)
					}
				}
			}
		}
	}
}

func TestFinalizeErrors(t *testing.T) {
	// Cycle.
	d := NewDimension("X")
	a := d.MustAddCategory("a", false)
	b := d.MustAddCategory("b", false)
	if err := d.Contains(a, b); err != nil {
		t.Fatal(err)
	}
	if err := d.Contains(b, a); err != nil {
		t.Fatal(err)
	}
	if err := d.Finalize(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not detected: %v", err)
	}

	// Multiple bottoms.
	d2 := NewDimension("Y")
	a2 := d2.MustAddCategory("a", false)
	b2 := d2.MustAddCategory("b", false)
	c2 := d2.MustAddCategory("c", false)
	if err := d2.Contains(a2, c2); err != nil {
		t.Fatal(err)
	}
	if err := d2.Contains(b2, c2); err != nil {
		t.Fatal(err)
	}
	if err := d2.Finalize(); err == nil {
		t.Error("multiple bottoms not detected")
	}

	// Empty dimension.
	d3 := NewDimension("Z")
	if err := d3.Finalize(); err == nil {
		t.Error("empty dimension not detected")
	}

	// Self-containment.
	d4 := NewDimension("W")
	a4 := d4.MustAddCategory("a", false)
	if err := d4.Contains(a4, a4); err == nil {
		t.Error("self-containment not detected")
	}
}

func TestAddValueErrors(t *testing.T) {
	d, vals := buildURLDim(t)
	url, _ := d.CategoryByName("url")
	dom, _ := d.CategoryByName("domain")

	// Missing parent.
	if _, err := d.AddValue(url, "orphan", 0, nil); err == nil {
		t.Error("missing parent not detected")
	}
	// Parent in wrong category.
	if _, err := d.AddValue(url, "bad", 0, map[CategoryID]ValueID{dom: vals[".com"]}); err == nil {
		t.Error("wrong-category parent not detected")
	}
	// Duplicate name.
	if _, err := d.AddValue(dom, "cnn.com", 0, map[CategoryID]ValueID{d.CategoryOf(vals[".com"]): vals[".com"]}); err == nil {
		t.Error("duplicate value not detected")
	}
	// Value before finalize.
	d2 := NewDimension("V")
	c := d2.MustAddCategory("c", false)
	if _, err := d2.AddValue(c, "x", 0, nil); err == nil {
		t.Error("AddValue before Finalize not detected")
	}
}

func TestAncestorAtAndValueLE(t *testing.T) {
	d, vals := buildURLDim(t)
	dom, _ := d.CategoryByName("domain")
	grp, _ := d.CategoryByName("domain_grp")
	week := CategoryID(99) // not a category; AncestorAt is never called with it

	_ = week
	h := vals["www.cnn.com/health"]
	if got := d.AncestorAt(h, dom); got != vals["cnn.com"] {
		t.Errorf("ancestor(health, domain) = %v", d.ValueName(got))
	}
	if got := d.AncestorAt(h, grp); got != vals[".com"] {
		t.Errorf("ancestor(health, domain_grp) = %v", d.ValueName(got))
	}
	if got := d.AncestorAt(h, d.Top()); got != d.TopValueID() {
		t.Errorf("ancestor(health, TOP) = %v", got)
	}
	if !d.ValueLE(h, vals["cnn.com"]) || !d.ValueLE(h, vals[".com"]) || !d.ValueLE(h, h) {
		t.Error("ValueLE containment chain broken")
	}
	if d.ValueLE(vals["cnn.com"], h) {
		t.Error("ValueLE should not hold downwards")
	}
	if d.ValueLE(vals["cnn.com"], vals[".edu"]) {
		t.Error("cnn.com <= .edu should be false")
	}
}

func TestAncestorAtNonLinear(t *testing.T) {
	d, vals := buildMiniTimeDim(t)
	week, _ := d.CategoryByName("week")
	month, _ := d.CategoryByName("month")
	quarter, _ := d.CategoryByName("quarter")

	d2 := vals["d2"] // 1999/12/4
	if got := d.AncestorAt(d2, week); got != vals["1999W48"] {
		t.Errorf("week ancestor = %s", d.ValueName(got))
	}
	if got := d.AncestorAt(d2, month); got != vals["1999/12"] {
		t.Errorf("month ancestor = %s", d.ValueName(got))
	}
	if got := d.AncestorAt(d2, quarter); got != vals["1999Q4"] {
		t.Errorf("quarter ancestor = %s", d.ValueName(got))
	}
	// A quarter value has no week ancestor.
	if got := d.AncestorAt(vals["1999Q4"], week); got != NoValue {
		t.Errorf("quarter's week ancestor = %v, want NoValue", got)
	}
	// A week value has no month/quarter ancestor.
	if got := d.AncestorAt(vals["1999W48"], quarter); got != NoValue {
		t.Errorf("week's quarter ancestor = %v, want NoValue", got)
	}
}

func TestDrillDown(t *testing.T) {
	d, vals := buildMiniTimeDim(t)
	day, _ := d.CategoryByName("day")
	month, _ := d.CategoryByName("month")

	got := d.DrillDown(vals["1999Q4"], day)
	if len(got) != 2 || got[0] != vals["d1"] || got[1] != vals["d2"] {
		t.Errorf("DrillDown(1999Q4, day) = %v", got)
	}
	got = d.DrillDown(vals["1999Q4"], month)
	if len(got) != 2 {
		t.Errorf("DrillDown(1999Q4, month) = %v", got)
	}
	// Same category: singleton.
	got = d.DrillDown(vals["d1"], day)
	if len(got) != 1 || got[0] != vals["d1"] {
		t.Errorf("DrillDown(d1, day) = %v", got)
	}
	// Not below: empty.
	week, _ := d.CategoryByName("week")
	if got := d.DrillDown(vals["1999/12"], week); got != nil {
		t.Errorf("DrillDown(month, week) = %v, want nil", got)
	}
}

func TestDrillDownAncestorAdjunction(t *testing.T) {
	// Property: w in DrillDown(v, c) iff AncestorAt(w, cat(v)) == v.
	d, _ := buildMiniTimeDim(t)
	for v := 0; v < d.NumValues(); v++ {
		vid := ValueID(v)
		for c := 0; c < d.NumCategories(); c++ {
			cid := CategoryID(c)
			if !d.CatLE(cid, d.CategoryOf(vid)) {
				continue
			}
			set := make(map[ValueID]bool)
			for _, w := range d.DrillDown(vid, cid) {
				set[w] = true
			}
			for _, w := range d.ValuesIn(cid) {
				want := d.AncestorAt(w, d.CategoryOf(vid)) == vid
				if set[w] != want {
					t.Fatalf("adjunction fails: v=%s c=%s w=%s drill=%v anc=%v",
						d.ValueName(vid), d.Category(cid).Name, d.ValueName(w), set[w], want)
				}
			}
		}
	}
}

func TestSubdimension(t *testing.T) {
	d, _ := buildURLDim(t)
	sub, err := d.Subdimension("domain_grp")
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumCategories() != 2 { // domain_grp + TOP
		t.Errorf("subdimension categories = %d, want 2", sub.NumCategories())
	}
	grp, ok := sub.CategoryByName("domain_grp")
	if !ok {
		t.Fatal("domain_grp missing from subdimension")
	}
	if got := len(sub.ValuesIn(grp)); got != 2 {
		t.Errorf("subdimension domain_grp values = %d, want 2", got)
	}
	if sub.Bottom() != grp {
		t.Error("subdimension bottom should be domain_grp")
	}
	// Unknown category is rejected.
	if _, err := d.Subdimension("nope"); err == nil {
		t.Error("unknown category accepted")
	}
}

func TestSubdimensionSkipsLevels(t *testing.T) {
	// Retain url and domain_grp: the cover edge url < domain_grp must be
	// synthesized and ancestors re-linked across the removed domain level.
	d, vals := buildURLDim(t)
	sub, err := d.Subdimension("url", "domain_grp")
	if err != nil {
		t.Fatal(err)
	}
	url, _ := sub.CategoryByName("url")
	grp, _ := sub.CategoryByName("domain_grp")
	h, ok := sub.ValueByName(url, "www.cnn.com/health")
	if !ok {
		t.Fatal("value missing in subdimension")
	}
	a := sub.AncestorAt(h, grp)
	if sub.ValueName(a) != ".com" {
		t.Errorf("re-linked ancestor = %q, want .com", sub.ValueName(a))
	}
	_ = vals
}

func TestSchemaAndGranularity(t *testing.T) {
	ud, _ := buildURLDim(t)
	td, _ := buildMiniTimeDim(t)
	s, err := NewSchema("Click", []*Dimension{td, ud}, []Measure{
		{Name: "Number_of", Agg: AggSum},
		{Name: "Dwell_time", Agg: AggSum},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.DimIndex("URL") != 1 || s.DimIndex("Time") != 0 || s.DimIndex("X") != -1 {
		t.Error("DimIndex broken")
	}
	if s.MeasureIndex("Dwell_time") != 1 || s.MeasureIndex("zzz") != -1 {
		t.Error("MeasureIndex broken")
	}

	g, err := s.ParseGranularity([]string{"Time.month", "URL.domain"})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.GranString(g); got != "(Time.month, URL.domain)" {
		t.Errorf("GranString = %q", got)
	}
	g2, _ := s.ParseGranularity([]string{"Time.quarter", "URL.domain"})
	if !s.GranLE(g, g2) || s.GranLE(g2, g) {
		t.Error("granularity order broken")
	}
	bot := s.BottomGranularity()
	if !s.GranLE(bot, g) {
		t.Error("bottom should be below everything")
	}

	max, err := s.MaxGranularity([]Granularity{bot, g, g2})
	if err != nil {
		t.Fatal(err)
	}
	if !s.GranEq(max, g2) {
		t.Errorf("MaxGranularity = %s, want %s", s.GranString(max), s.GranString(g2))
	}

	// Incomparable set: (week, url) vs (month, domain).
	gw, _ := s.ParseGranularity([]string{"Time.week", "URL.url"})
	if _, err := s.MaxGranularity([]Granularity{gw, g}); err == nil {
		t.Error("incomparable maximum not detected")
	}

	// Parse errors.
	for _, bad := range [][]string{
		{"Time.month"},
		{"Time.month", "URL.nope"},
		{"Nope.month", "URL.domain"},
		{"Time.month", "Time.week"},
		{"Timemonth", "URL.domain"},
	} {
		if _, err := s.ParseGranularity(bad); err == nil {
			t.Errorf("ParseGranularity(%v) succeeded", bad)
		}
	}
}

func TestSchemaValidation(t *testing.T) {
	ud, _ := buildURLDim(t)
	if _, err := NewSchema("", []*Dimension{ud}, nil); err == nil {
		t.Error("empty fact type accepted")
	}
	if _, err := NewSchema("F", nil, nil); err == nil {
		t.Error("no dimensions accepted")
	}
	if _, err := NewSchema("F", []*Dimension{ud, ud}, nil); err == nil {
		t.Error("duplicate dimension accepted")
	}
	if _, err := NewSchema("F", []*Dimension{ud}, []Measure{{Name: "m"}, {Name: "m"}}); err == nil {
		t.Error("duplicate measure accepted")
	}
	unfin := NewDimension("U")
	unfin.MustAddCategory("c", false)
	if _, err := NewSchema("F", []*Dimension{unfin}, nil); err == nil {
		t.Error("unfinalized dimension accepted")
	}
}

func TestMOBasics(t *testing.T) {
	ud, uv := buildURLDim(t)
	td, tv := buildMiniTimeDim(t)
	s, err := NewSchema("Click", []*Dimension{td, ud}, []Measure{
		{Name: "Number_of", Agg: AggSum},
		{Name: "Dwell_time", Agg: AggSum},
	})
	if err != nil {
		t.Fatal(err)
	}
	mo := NewMO(s)
	f, err := mo.AddFact([]ValueID{tv["d2"], uv["www.cnn.com/health"]}, []float64{1, 2335})
	if err != nil {
		t.Fatal(err)
	}
	if mo.Len() != 1 {
		t.Fatal("Len != 1")
	}
	if mo.Measure(f, 1) != 2335 {
		t.Error("measure wrong")
	}
	g := mo.Gran(f)
	if td.Category(g[0]).Name != "day" || ud.Category(g[1]).Name != "url" {
		t.Errorf("Gran = %s", s.GranString(g))
	}
	if !mo.CharacterizedBy(f, 1, uv["cnn.com"]) || !mo.CharacterizedBy(f, 1, uv[".com"]) {
		t.Error("characterization broken")
	}
	if mo.CharacterizedBy(f, 1, uv[".edu"]) {
		t.Error("false characterization")
	}

	// Non-bottom insert must fail via AddFact but work via AddFactAt.
	if _, err := mo.AddFact([]ValueID{tv["1999/12"], uv["cnn.com"]}, []float64{1, 5}); err == nil {
		t.Error("non-bottom AddFact accepted")
	}
	af, err := mo.AddFactAt([]ValueID{tv["1999/12"], uv["cnn.com"]}, []float64{2, 2489}, 2, "fact_12")
	if err != nil {
		t.Fatal(err)
	}
	if mo.Name(af) != "fact_12" || mo.BaseCount(af) != 2 {
		t.Error("AddFactAt metadata broken")
	}
	if got := mo.CellString(af); got != "1999/12, cnn.com" {
		t.Errorf("CellString = %q", got)
	}

	// Arity errors.
	if _, err := mo.AddFact([]ValueID{tv["d2"]}, []float64{1, 1}); err == nil {
		t.Error("bad ref arity accepted")
	}
	if _, err := mo.AddFact([]ValueID{tv["d2"], uv["www.cnn.com/"]}, []float64{1}); err == nil {
		t.Error("bad measure arity accepted")
	}
	if _, err := mo.AddFact([]ValueID{ValueID(999), uv["www.cnn.com/"]}, []float64{1, 1}); err == nil {
		t.Error("bad value id accepted")
	}

	// Clone independence.
	c := mo.Clone()
	c.SetName(f, "renamed")
	if mo.Name(f) == "renamed" {
		t.Error("Clone shares name storage")
	}
	if c.Len() != mo.Len() {
		t.Error("Clone length differs")
	}

	// TotalMeasure sums Dwell_time.
	if got := mo.TotalMeasure(1); got != 2335+2489 {
		t.Errorf("TotalMeasure = %v", got)
	}
	if !strings.Contains(mo.Dump(), "fact_12: 1999/12, cnn.com") {
		t.Errorf("Dump missing row:\n%s", mo.Dump())
	}
}

func TestAggKind(t *testing.T) {
	cases := []struct {
		k        AggKind
		initOf5  float64
		merge5_3 float64
		name     string
	}{
		{AggSum, 5, 8, "SUM"},
		{AggCount, 1, 8, "COUNT"},
		{AggMin, 5, 3, "MIN"},
		{AggMax, 5, 5, "MAX"},
	}
	for _, c := range cases {
		if got := c.k.Init(5); got != c.initOf5 {
			t.Errorf("%v.Init(5) = %v", c.k, got)
		}
		if got := c.k.Merge(5, 3); got != c.merge5_3 {
			t.Errorf("%v.Merge(5,3) = %v", c.k, got)
		}
		if c.k.String() != c.name {
			t.Errorf("String = %q, want %q", c.k.String(), c.name)
		}
	}
}

func TestAggMergeAssociativeCommutative(t *testing.T) {
	// Property: distributivity requires Merge to be associative and
	// commutative for every aggregate kind.
	f := func(a, b, c int16, kindRaw uint8) bool {
		k := AggKind(kindRaw % 4)
		x, y, z := float64(a), float64(b), float64(c)
		if k.Merge(x, y) != k.Merge(y, x) {
			return false
		}
		return k.Merge(k.Merge(x, y), z) == k.Merge(x, k.Merge(y, z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
