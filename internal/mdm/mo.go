package mdm

import (
	"fmt"
	"sort"
	"strings"
)

// FactID identifies a fact within one MO.
type FactID int32

// MO is a multidimensional object O = (S, F, D, R, M): a schema, a set of
// facts, dimensions, fact-dimension relations, and measure values. Facts
// are stored columnar: refs[i][f] is the dimension value fact f maps to
// directly in dimension i (the relation R_i), and meas[j][f] is the value
// of measure j.
//
// The paper requires user-inserted facts to map to bottom-category
// values; facts created by reduction or aggregation may map to values of
// any category. The floors field records the insert granularity, which
// aggregate formation lowers to the result granularity (the result MO's
// dimensions are subdimensions per Definition 6).
type MO struct {
	//dimred:shared dimensions are immutable once populated for an analysis; clones deliberately share the schema
	schema *Schema
	refs   [][]ValueID
	meas   [][]float64
	// baseCount[f] is the number of user-inserted facts aggregated into f
	// (1 for user-inserted facts). It feeds provenance reporting and the
	// COUNT aggregate.
	baseCount []int64
	// names[f] is an optional display label ("fact_03"); empty entries
	// render as "fact_<id>".
	names  []string
	floors Granularity
}

// NewMO creates an empty MO over the schema, accepting user inserts at
// the bottom granularity.
func NewMO(s *Schema) *MO {
	m := &MO{
		schema: s,
		refs:   make([][]ValueID, len(s.Dims)),
		meas:   make([][]float64, len(s.Measures)),
		floors: s.BottomGranularity(),
	}
	return m
}

// Schema returns the MO's fact schema.
func (m *MO) Schema() *Schema { return m.schema }

// Len returns the number of facts.
func (m *MO) Len() int {
	if len(m.refs) == 0 {
		return 0
	}
	return len(m.refs[0])
}

// Floors returns the granularity at which AddFact accepts facts: the
// bottom granularity for a base MO, the result granularity for an MO
// produced by aggregate formation.
func (m *MO) Floors() Granularity { return m.floors }

// SetFloors overrides the insert granularity; used by the query algebra
// when building result MOs over subdimensions.
func (m *MO) SetFloors(g Granularity) { m.floors = g }

// AddFact inserts a user fact: refs must be values of the floor
// (normally bottom) categories, one per dimension, and measures must
// supply every measure. Returns the new fact's id.
func (m *MO) AddFact(refs []ValueID, measures []float64) (FactID, error) {
	if err := m.checkFact(refs, measures); err != nil {
		return 0, err
	}
	for i, d := range m.schema.Dims {
		if got := d.CategoryOf(refs[i]); got != m.floors[i] {
			return 0, fmt.Errorf("mdm: AddFact: dimension %s value %q is in category %s, want %s",
				d.Name(), d.ValueName(refs[i]), d.Category(got).Name, d.Category(m.floors[i]).Name)
		}
	}
	return m.push(refs, measures, 1, ""), nil
}

// AddFactAt inserts a fact at any granularity, as the reduction and
// aggregation operators do. base is the number of user facts the new fact
// represents; name is an optional display label.
func (m *MO) AddFactAt(refs []ValueID, measures []float64, base int64, name string) (FactID, error) {
	if err := m.checkFact(refs, measures); err != nil {
		return 0, err
	}
	if base < 1 {
		base = 1
	}
	return m.push(refs, measures, base, name), nil
}

func (m *MO) checkFact(refs []ValueID, measures []float64) error {
	if len(refs) != len(m.schema.Dims) {
		return fmt.Errorf("mdm: fact needs %d dimension values, got %d", len(m.schema.Dims), len(refs))
	}
	if len(measures) != len(m.schema.Measures) {
		return fmt.Errorf("mdm: fact needs %d measures, got %d", len(m.schema.Measures), len(measures))
	}
	for i, d := range m.schema.Dims {
		if refs[i] < 0 || int(refs[i]) >= d.NumValues() {
			return fmt.Errorf("mdm: fact has invalid value id %d for dimension %s", refs[i], d.Name())
		}
	}
	return nil
}

func (m *MO) push(refs []ValueID, measures []float64, base int64, name string) FactID {
	id := FactID(m.Len())
	for i := range m.refs {
		m.refs[i] = append(m.refs[i], refs[i])
	}
	for j := range m.meas {
		m.meas[j] = append(m.meas[j], measures[j])
	}
	m.baseCount = append(m.baseCount, base)
	m.names = append(m.names, name)
	return id
}

// Ref returns the value fact f maps to directly in dimension i.
func (m *MO) Ref(f FactID, i int) ValueID { return m.refs[i][f] }

// Refs copies fact f's direct dimension values into a new slice.
func (m *MO) Refs(f FactID) []ValueID {
	out := make([]ValueID, len(m.refs))
	for i := range m.refs {
		out[i] = m.refs[i][f]
	}
	return out
}

// Measure returns measure j of fact f.
func (m *MO) Measure(f FactID, j int) float64 { return m.meas[j][f] }

// Measures copies fact f's measures into a new slice.
func (m *MO) Measures(f FactID) []float64 {
	out := make([]float64, len(m.meas))
	for j := range m.meas {
		out[j] = m.meas[j][f]
	}
	return out
}

// SetMeasure overwrites measure j of fact f; used by engines that merge
// partial aggregates in place.
func (m *MO) SetMeasure(f FactID, j int, v float64) { m.meas[j][f] = v }

// BaseCount returns how many user-inserted facts f represents.
func (m *MO) BaseCount(f FactID) int64 { return m.baseCount[f] }

// AddBaseCount increases the user-fact count of f.
func (m *MO) AddBaseCount(f FactID, n int64) { m.baseCount[f] += n }

// Name returns the fact's display label.
func (m *MO) Name(f FactID) string {
	if m.names[f] != "" {
		return m.names[f]
	}
	return fmt.Sprintf("fact_%d", f)
}

// SetName assigns a display label to fact f.
func (m *MO) SetName(f FactID, name string) { m.names[f] = name }

// Gran returns the granularity of fact f: the tuple of categories of the
// values it maps to directly (the paper's function Gran, Eq. 10).
func (m *MO) Gran(f FactID) Granularity {
	g := make(Granularity, len(m.refs))
	for i, d := range m.schema.Dims {
		g[i] = d.CategoryOf(m.refs[i][f])
	}
	return g
}

// CharacterizedBy reports f ~> v in dimension i: v is the direct value or
// an ancestor of it.
func (m *MO) CharacterizedBy(f FactID, i int, v ValueID) bool {
	return m.schema.Dims[i].ValueLE(m.refs[i][f], v)
}

// CellString renders a fact's cell the way the figures do, e.g.
// "1999Q4, cnn.com".
func (m *MO) CellString(f FactID) string {
	var b strings.Builder
	for i, d := range m.schema.Dims {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(d.ValueName(m.refs[i][f]))
	}
	return b.String()
}

// Clone returns a deep copy of the MO's fact data (dimensions are shared,
// as they are immutable once populated for a given analysis).
func (m *MO) Clone() *MO {
	c := &MO{
		schema:    m.schema,
		refs:      make([][]ValueID, len(m.refs)),
		meas:      make([][]float64, len(m.meas)),
		baseCount: append([]int64(nil), m.baseCount...),
		names:     append([]string(nil), m.names...),
		floors:    append(Granularity(nil), m.floors...),
	}
	for i := range m.refs {
		c.refs[i] = append([]ValueID(nil), m.refs[i]...)
	}
	for j := range m.meas {
		c.meas[j] = append([]float64(nil), m.meas[j]...)
	}
	return c
}

// TotalMeasure folds measure j across all facts with its default
// aggregate function; used by conservation-law tests and experiments.
func (m *MO) TotalMeasure(j int) float64 {
	agg := m.schema.Measures[j].Agg
	var acc float64
	first := true
	for f := 0; f < m.Len(); f++ {
		v := agg.Init(m.meas[j][f])
		if agg == AggCount {
			v = float64(m.baseCount[f])
		}
		if first {
			acc, first = v, false
		} else {
			acc = agg.Merge(acc, v)
		}
	}
	return acc
}

// Dump renders the fact set sorted by cell, one fact per line, for the
// experiment harness and tests that compare against the paper's figures.
func (m *MO) Dump() string {
	type row struct {
		cell string
		line string
	}
	rows := make([]row, 0, m.Len())
	for f := 0; f < m.Len(); f++ {
		fid := FactID(f)
		var b strings.Builder
		fmt.Fprintf(&b, "%s: %s |", m.Name(fid), m.CellString(fid))
		for j := range m.schema.Measures {
			fmt.Fprintf(&b, " %s=%v", m.schema.Measures[j].Name, m.meas[j][f])
		}
		rows = append(rows, row{m.CellString(fid), b.String()})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].cell < rows[j].cell })
	var b strings.Builder
	for _, r := range rows {
		b.WriteString(r.line)
		b.WriteByte('\n')
	}
	return b.String()
}

// DumpCells renders the fact set sorted by cell with measures and base
// counts but without the display names, which encode the provenance of
// the physical plan (which intermediate facts merged into the result),
// not data. Differential tests compare two plans for the same query —
// e.g. a view-served answer against the base-path answer — for byte
// equality of everything semantic.
func (m *MO) DumpCells() string {
	lines := make([]string, 0, m.Len())
	for f := 0; f < m.Len(); f++ {
		fid := FactID(f)
		var b strings.Builder
		fmt.Fprintf(&b, "%s |", m.CellString(fid))
		for j := range m.schema.Measures {
			fmt.Fprintf(&b, " %s=%v", m.schema.Measures[j].Name, m.meas[j][f])
		}
		fmt.Fprintf(&b, " | base=%d", m.baseCount[f])
		lines = append(lines, b.String())
	}
	sort.Strings(lines)
	var b strings.Builder
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}
