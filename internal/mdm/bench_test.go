package mdm

import (
	"fmt"
	"testing"
)

// benchDim builds a 3-level dimension with fan-out 10 at each level.
func benchDim(b *testing.B) (*Dimension, []ValueID) {
	b.Helper()
	d := NewDimension("D")
	leaf := d.MustAddCategory("leaf", false)
	mid := d.MustAddCategory("mid", false)
	top := d.MustAddCategory("grp", false)
	if err := d.Contains(leaf, mid); err != nil {
		b.Fatal(err)
	}
	if err := d.Contains(mid, top); err != nil {
		b.Fatal(err)
	}
	d.MustFinalize()
	var leaves []ValueID
	for g := 0; g < 10; g++ {
		gv := d.MustAddValue(top, fmt.Sprintf("g%d", g), 0, nil)
		for m := 0; m < 10; m++ {
			mv := d.MustAddValue(mid, fmt.Sprintf("m%d-%d", g, m), 0, map[CategoryID]ValueID{top: gv})
			for l := 0; l < 10; l++ {
				leaves = append(leaves, d.MustAddValue(leaf, fmt.Sprintf("l%d-%d-%d", g, m, l), 0, map[CategoryID]ValueID{mid: mv}))
			}
		}
	}
	return d, leaves
}

func BenchmarkAncestorAt(b *testing.B) {
	d, leaves := benchDim(b)
	grp, _ := d.CategoryByName("grp")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.AncestorAt(leaves[i%len(leaves)], grp)
	}
}

func BenchmarkDrillDown(b *testing.B) {
	d, _ := benchDim(b)
	grp, _ := d.CategoryByName("grp")
	leaf, _ := d.CategoryByName("leaf")
	g0 := d.ValuesIn(grp)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.DrillDown(g0, leaf)
	}
}

func BenchmarkValueLE(b *testing.B) {
	d, leaves := benchDim(b)
	grp, _ := d.CategoryByName("grp")
	g0 := d.ValuesIn(grp)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.ValueLE(leaves[i%len(leaves)], g0)
	}
}

func BenchmarkAddFact(b *testing.B) {
	d, leaves := benchDim(b)
	schema, err := NewSchema("F", []*Dimension{d}, []Measure{{Name: "m", Agg: AggSum}})
	if err != nil {
		b.Fatal(err)
	}
	mo := NewMO(schema)
	refs := []ValueID{leaves[0]}
	meas := []float64{1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refs[0] = leaves[i%len(leaves)]
		if _, err := mo.AddFact(refs, meas); err != nil {
			b.Fatal(err)
		}
	}
}
