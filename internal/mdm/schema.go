package mdm

import (
	"fmt"
	"strings"
)

// AggKind is a distributive default aggregate function for a measure. The
// paper requires default aggregate functions to be distributive so that
// reduction (and the two-step combination of subcube query results) can
// aggregate repeatedly without error.
type AggKind int

const (
	AggSum AggKind = iota
	AggCount
	AggMin
	AggMax
)

var aggNames = [...]string{"SUM", "COUNT", "MIN", "MAX"}

// String returns the function name, e.g. "SUM".
func (a AggKind) String() string {
	if a < AggSum || a > AggMax {
		return fmt.Sprintf("AggKind(%d)", int(a))
	}
	return aggNames[a]
}

// Init lifts a base measure value into the aggregate domain: COUNT of a
// single fact is 1, every other function starts from the value itself.
//
//dimred:aggregate
func (a AggKind) Init(x float64) float64 {
	if a == AggCount {
		return 1
	}
	return x
}

// Merge combines two partial aggregates. Distributivity means repeated
// merging in any association order yields the same result, which the
// property tests verify; the purity analyzer statically holds Merge (and
// everything it calls) to the referential-transparency precondition.
//
//dimred:aggregate
func (a AggKind) Merge(x, y float64) float64 {
	switch a {
	case AggSum, AggCount:
		return x + y
	case AggMin:
		if y < x {
			return y
		}
		return x
	case AggMax:
		if y > x {
			return y
		}
		return x
	}
	panic(fmt.Sprintf("mdm: Merge: bad AggKind %d", a))
}

// Measure is a measure type: a name plus its default aggregate function.
type Measure struct {
	Name string
	Agg  AggKind
}

// Schema is an n-dimensional fact schema S = (F, D, M): a fact type name,
// dimension types (here carried by the Dimension instances) and measure
// types.
type Schema struct {
	FactType string
	Dims     []*Dimension
	Measures []Measure
}

// NewSchema builds a schema after validating that all dimensions are
// finalized and names are unique.
func NewSchema(factType string, dims []*Dimension, measures []Measure) (*Schema, error) {
	if factType == "" {
		return nil, fmt.Errorf("mdm: schema: empty fact type")
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("mdm: schema: no dimensions")
	}
	seen := make(map[string]bool)
	for _, d := range dims {
		if d == nil || !d.Finalized() {
			return nil, fmt.Errorf("mdm: schema: dimension not finalized")
		}
		if seen[d.Name()] {
			return nil, fmt.Errorf("mdm: schema: duplicate dimension %q", d.Name())
		}
		seen[d.Name()] = true
	}
	mseen := make(map[string]bool)
	for _, m := range measures {
		if m.Name == "" {
			return nil, fmt.Errorf("mdm: schema: empty measure name")
		}
		if mseen[m.Name] {
			return nil, fmt.Errorf("mdm: schema: duplicate measure %q", m.Name)
		}
		mseen[m.Name] = true
	}
	return &Schema{FactType: factType, Dims: dims, Measures: measures}, nil
}

// NumDims returns the number of dimensions n.
func (s *Schema) NumDims() int { return len(s.Dims) }

// DimIndex resolves a dimension by name; -1 when absent.
func (s *Schema) DimIndex(name string) int {
	for i, d := range s.Dims {
		if d.Name() == name {
			return i
		}
	}
	return -1
}

// MeasureIndex resolves a measure by name; -1 when absent.
func (s *Schema) MeasureIndex(name string) int {
	for i, m := range s.Measures {
		if m.Name == name {
			return i
		}
	}
	return -1
}

// Granularity is an n-tuple of categories, one per dimension, e.g.
// (Time.quarter, URL.domain). It is the "level of detail" of a fact.
type Granularity []CategoryID

// GranLE reports g1 <=_g g2 pointwise (Eq. 6). Both granularities must
// have one category per schema dimension.
func (s *Schema) GranLE(g1, g2 Granularity) bool {
	for i := range s.Dims {
		if !s.Dims[i].CatLE(g1[i], g2[i]) {
			return false
		}
	}
	return true
}

// GranEq reports pointwise equality.
func (s *Schema) GranEq(g1, g2 Granularity) bool {
	for i := range g1 {
		if g1[i] != g2[i] {
			return false
		}
	}
	return true
}

// BottomGranularity returns the tuple of bottom categories.
func (s *Schema) BottomGranularity() Granularity {
	g := make(Granularity, len(s.Dims))
	for i, d := range s.Dims {
		g[i] = d.Bottom()
	}
	return g
}

// MaxGranularity returns the maximum of a non-empty set of granularities
// under <=_g (the function max_{<=_g} of Section 4.2). It fails if the
// set has no maximum, which a NonCrossing specification never produces.
func (s *Schema) MaxGranularity(gs []Granularity) (Granularity, error) {
	if len(gs) == 0 {
		return nil, fmt.Errorf("mdm: MaxGranularity of empty set")
	}
	// One pass picks the maximum if one exists (when the true maximum M is
	// reached, best <=_g M holds, so best becomes M and never changes
	// afterwards); a verification pass detects sets with no maximum.
	best := gs[0]
	for _, g := range gs[1:] {
		if s.GranLE(best, g) {
			best = g
		}
	}
	for _, g := range gs {
		if !s.GranLE(g, best) {
			return nil, fmt.Errorf("mdm: granularity set has no maximum: %s and %s are incomparable",
				s.GranString(g), s.GranString(best))
		}
	}
	return best, nil
}

// GranString renders a granularity as the paper writes it, e.g.
// "(Time.quarter, URL.domain)".
func (s *Schema) GranString(g Granularity) string {
	var b strings.Builder
	b.WriteByte('(')
	for i, d := range s.Dims {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(d.Name())
		b.WriteByte('.')
		b.WriteString(d.Category(g[i]).Name)
	}
	b.WriteByte(')')
	return b.String()
}

// ParseGranularity resolves "Time.month, URL.domain"-style category
// references, one per dimension, in dimension order.
func (s *Schema) ParseGranularity(refs []string) (Granularity, error) {
	if len(refs) != len(s.Dims) {
		return nil, fmt.Errorf("mdm: granularity needs %d categories, got %d", len(s.Dims), len(refs))
	}
	g := make(Granularity, len(s.Dims))
	used := make([]bool, len(s.Dims))
	for _, ref := range refs {
		dot := strings.IndexByte(ref, '.')
		if dot < 0 {
			return nil, fmt.Errorf("mdm: category reference %q must be Dim.category", ref)
		}
		di := s.DimIndex(strings.TrimSpace(ref[:dot]))
		if di < 0 {
			return nil, fmt.Errorf("mdm: unknown dimension in %q", ref)
		}
		if used[di] {
			return nil, fmt.Errorf("mdm: duplicate dimension in granularity: %q", ref)
		}
		c, ok := s.Dims[di].CategoryByName(strings.TrimSpace(ref[dot+1:]))
		if !ok {
			return nil, fmt.Errorf("mdm: unknown category in %q", ref)
		}
		g[di] = c
		used[di] = true
	}
	for i, u := range used {
		if !u {
			return nil, fmt.Errorf("mdm: granularity missing a category for dimension %s", s.Dims[i].Name())
		}
	}
	return g, nil
}
